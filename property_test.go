// Property tests for the batch detectors: the chunked detector degenerates
// to the plain one when a single chunk covers the series, and detection is
// bit-for-bit deterministic in its seed — across runs and across
// parallelism settings (run under -race to catch scheduling-dependent
// nondeterminism).
package egi_test

import (
	"math"
	"math/rand"
	"testing"

	"egi"
	"egi/internal/core"
	"egi/internal/timeseries"
)

// propSeries builds a noisy periodic series with one planted discontinuity.
func propSeries(length, period int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.15*rng.NormFloat64()
	}
	p := length/2 + rng.Intn(length/4)
	for i := p; i < p+period && i < length; i++ {
		s[i] = 1.4 - 2.8*math.Abs(float64(i-p)/float64(period)-0.5)
	}
	return s
}

func resultsEqual(t *testing.T, name string, a, b *egi.Result) {
	t.Helper()
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths differ: %d vs %d", name, len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("%s: curve[%d] differs: %v vs %v", name, i, a.Curve[i], b.Curve[i])
		}
	}
	if len(a.Anomalies) != len(b.Anomalies) {
		t.Fatalf("%s: anomaly counts differ: %d vs %d", name, len(a.Anomalies), len(b.Anomalies))
	}
	for i := range a.Anomalies {
		if a.Anomalies[i] != b.Anomalies[i] {
			t.Fatalf("%s: anomaly %d differs: %+v vs %+v", name, i, a.Anomalies[i], b.Anomalies[i])
		}
	}
}

// TestDetectChunkedEqualsDetectWhenChunkCoversSeries: for any chunk length
// at or beyond the series length, DetectChunked is Detect, byte for byte.
func TestDetectChunkedEqualsDetectWhenChunkCoversSeries(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		series := propSeries(1200, 60, seed)
		opts := egi.Options{Window: 60, EnsembleSize: 12, Seed: seed}
		batch, err := egi.Detect(series, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunkLen := range []int{len(series), len(series) + 1, 10 * len(series)} {
			chunked, err := egi.DetectChunked(series, opts, chunkLen)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, "chunked", batch, chunked)
		}
	}
}

// TestDetectDeterministicAcrossRuns: equal Seed means byte-identical
// Result on repeated runs of the public API.
func TestDetectDeterministicAcrossRuns(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		series := propSeries(1000, 50, seed)
		opts := egi.Options{Window: 50, EnsembleSize: 15, Seed: seed}
		first, err := egi.Detect(series, opts)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			again, err := egi.Detect(series, opts)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, "rerun", first, again)
		}
	}
}

// TestDetectDeterministicAcrossParallelism: the concurrency level of the
// member computations must not leak into the result. Run with -race to
// catch unsynchronized writes along the way.
func TestDetectDeterministicAcrossParallelism(t *testing.T) {
	series := propSeries(1500, 60, 99)
	cfg := core.Config{Window: 60, Size: 20, Seed: 99}
	var first *core.Result
	for _, par := range []int{1, 2, 4, 16} {
		c := cfg
		c.Parallelism = par
		res, err := core.Detect(timeseries.Series(series), c)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		for i := range first.Curve {
			if res.Curve[i] != first.Curve[i] {
				t.Fatalf("parallelism %d: curve[%d] differs: %v vs %v",
					par, i, res.Curve[i], first.Curve[i])
			}
		}
		if len(res.Candidates) != len(first.Candidates) {
			t.Fatalf("parallelism %d: candidate counts differ", par)
		}
		for i := range first.Candidates {
			if res.Candidates[i] != first.Candidates[i] {
				t.Fatalf("parallelism %d: candidate %d differs: %+v vs %+v",
					par, i, res.Candidates[i], first.Candidates[i])
			}
		}
		for i := range first.Members {
			if res.Members[i] != first.Members[i] {
				t.Fatalf("parallelism %d: member %d differs: %+v vs %+v",
					par, i, res.Members[i], first.Members[i])
			}
		}
	}
}
