package egi

import (
	"errors"
	"fmt"
	"path/filepath"

	"egi/internal/manager"
	"egi/internal/router"
)

// ErrNotSharded rejects shard-administration calls (Resize, Drain,
// RouterStats) on a Manager built with NewManager rather than
// NewShardedManager.
var ErrNotSharded = errors.New("egi: manager is not sharded")

// shardName names the i-th in-process shard; also its DataDir
// subdirectory, so names must stay stable across restarts.
func shardName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// NewShardedManager is NewManager scaled out: it runs shards in-process
// manager shards behind a rendezvous-hashing router, each shard holding
// a deterministic subset of the streams (its own DataDir subdirectory
// when opts.DataDir is set, its own locks and limits — MaxStreams and
// MaxBytes apply PER SHARD). The result serves the exact same Manager
// API; streams land on shards by id hash, Resize and Drain move them
// between shards live, and StreamStats/Stats name each stream's shard.
// With shards == 1 it is identical to NewManager.
func NewShardedManager(shards int, opts ManagerOptions) (*Manager, error) {
	if shards < 1 {
		return nil, fmt.Errorf("egi: shards must be >= 1, got %d", shards)
	}
	if shards == 1 {
		return NewManager(opts)
	}
	if opts.Stream.OnAnomaly != nil {
		return nil, ErrManagerCallback
	}
	b := manager.NewBroker()
	mk := func(i int) (router.Member, error) {
		cfg := manager.Config{
			Stream:        opts.Stream.config(),
			MaxStreams:    opts.MaxStreams,
			MaxBytes:      opts.MaxBytes,
			IdleAfter:     opts.IdleAfter,
			SnapshotEvery: opts.SnapshotEvery,
			Fsync:         opts.Fsync,
			Events:        b,
		}
		if opts.DataDir != "" {
			cfg.DataDir = filepath.Join(opts.DataDir, shardName(i))
		}
		m, err := manager.New(cfg)
		if err != nil {
			return router.Member{}, err
		}
		return router.Member{Name: shardName(i), Host: m}, nil
	}
	members := make([]router.Member, 0, shards)
	for i := 0; i < shards; i++ {
		m, err := mk(i)
		if err != nil {
			for _, prev := range members {
				_ = prev.Host.Close()
			}
			b.Close()
			return nil, fmt.Errorf("egi: creating shard %d: %w", i, err)
		}
		members = append(members, m)
	}
	r, err := router.New(router.Config{Members: members, Grow: mk})
	if err != nil {
		for _, m := range members {
			_ = m.Host.Close()
		}
		b.Close()
		return nil, err
	}
	return &Manager{h: r, r: r, b: b}, nil
}

// Resize grows or shrinks a sharded manager to n shards, live: streams
// whose placement changed (~1/M per shard added or removed) are
// quiesced one at a time, their snapshot + WAL tail shipped to the new
// shard, and resumed there; all other streams keep serving untouched.
// Fails with ErrNotSharded on a single-shard Manager.
func (m *Manager) Resize(n int) error {
	if m.r == nil {
		return ErrNotSharded
	}
	return m.r.Resize(n)
}

// Drain migrates every stream off the named shard onto the remaining
// shards, live, leaving the shard empty but still part of the set (a
// shrinking Resize removes it). Fails with ErrNotSharded on a
// single-shard Manager.
func (m *Manager) Drain(shard string) error {
	if m.r == nil {
		return ErrNotSharded
	}
	return m.r.Drain(shard)
}

// ShardStats is one shard's slice of RouterStats.
type ShardStats struct {
	// Name is the shard name (also the stream placement label).
	Name string
	// Draining reports the shard is being emptied.
	Draining bool
	// Streams is the shard's live stream count.
	Streams int
	// MemoryBytes is the shard's rolled-up memory footprint.
	MemoryBytes int64
}

// RouterStats is a point-in-time snapshot of a sharded manager's
// placement and migration counters.
type RouterStats struct {
	// Version is the placement-table generation; it bumps on every
	// Resize or Drain.
	Version uint64
	// Shards lists per-shard placement state.
	Shards []ShardStats
	// Pinned is the number of streams placed by pin (not yet migrated to
	// their rendezvous owner) rather than by hash.
	Pinned int
	// Lookups counts routing resolutions since start.
	Lookups int64
	// Migrations counts committed stream moves since start.
	Migrations int64
	// MigrationBytes sums the state bytes of committed moves.
	MigrationBytes int64
	// MigrationFailures counts moves that failed before commit (the
	// stream stayed on its source shard).
	MigrationFailures int64
}

// RouterStats snapshots the routing tier of a sharded manager. Fails
// with ErrNotSharded on a single-shard Manager.
func (m *Manager) RouterStats() (RouterStats, error) {
	if m.r == nil {
		return RouterStats{}, ErrNotSharded
	}
	mt := m.r.Metrics()
	out := RouterStats{
		Version:           mt.Version,
		Shards:            make([]ShardStats, len(mt.Members)),
		Pinned:            mt.Pinned,
		Lookups:           mt.Lookups,
		Migrations:        mt.Migrations,
		MigrationBytes:    mt.MigrationBytes,
		MigrationFailures: mt.MigrationFailures,
	}
	for i, mm := range mt.Members {
		out.Shards[i] = ShardStats{Name: mm.Name, Draining: mm.Draining, Streams: mm.Streams, MemoryBytes: mm.Bytes}
	}
	return out, nil
}
