package egi_test

import (
	"math"
	"math/rand"
	"testing"

	"egi"
)

func synthetic(length, period, anomalyPos int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.05*rng.NormFloat64()
	}
	for i := anomalyPos; i < anomalyPos+period && i < length; i++ {
		s[i] = 1.2 - 2.4*math.Abs(float64(i-anomalyPos)/float64(period)-0.5) + 0.05*rng.NormFloat64()
	}
	return s
}

func TestDetectPublicAPI(t *testing.T) {
	s := synthetic(3000, 60, 1500, 1)
	res, err := egi.Detect(s, egi.Options{Window: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) == 0 {
		t.Fatal("no anomalies")
	}
	top := res.Anomalies[0]
	if d := math.Abs(float64(top.Pos - 1500)); d > 60 {
		t.Errorf("top anomaly at %d, planted at 1500", top.Pos)
	}
	if len(res.Curve) != len(s) {
		t.Errorf("curve length %d, want %d", len(res.Curve), len(s))
	}
	for _, v := range res.Curve {
		if v < 0 || v > 1 {
			t.Fatalf("curve value %v outside [0,1]", v)
		}
	}
}

func TestDetectSinglePublicAPI(t *testing.T) {
	s := synthetic(2000, 50, 1000, 2)
	res, err := egi.DetectSingle(s, 50, 5, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Anomalies) == 0 {
		t.Fatal("no anomalies")
	}
	for _, a := range res.Anomalies {
		if a.Length != 50 {
			t.Errorf("anomaly length %d, want 50", a.Length)
		}
	}
}

func TestDiscordsPublicAPI(t *testing.T) {
	s := synthetic(1500, 50, 700, 3)
	ds, err := egi.Discords(s, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("no discords")
	}
	if d := math.Abs(float64(ds[0].Pos - 700)); d > 50 {
		t.Errorf("top discord at %d, planted at 700", ds[0].Pos)
	}
}

func TestVariableLengthAnomaliesPublicAPI(t *testing.T) {
	s := synthetic(2000, 50, 1000, 6)
	as, err := egi.VariableLengthAnomalies(s, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 {
		t.Fatal("no anomalies")
	}
	hit := false
	for _, a := range as {
		if a.Pos < 1000+50 && 1000 < a.Pos+a.Length {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no variable-length anomaly overlaps the planted one: %+v", as)
	}
	if _, err := egi.VariableLengthAnomalies(nil, 10, 3); err == nil {
		t.Error("nil series should error")
	}
}

func TestDetectChunkedPublicAPI(t *testing.T) {
	s := synthetic(6000, 50, 4000, 9)
	res, err := egi.DetectChunked(s, egi.Options{Window: 50, EnsembleSize: 15, Seed: 2}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, a := range res.Anomalies {
		if a.Pos < 4000+50 && 4000 < a.Pos+a.Length {
			hit = true
		}
	}
	if !hit {
		t.Errorf("chunked detection missed planted anomaly: %+v", res.Anomalies)
	}
	if _, err := egi.DetectChunked(s, egi.Options{Window: 50}, 60); err == nil {
		t.Error("tiny chunk should error")
	}
}

func TestMotifsPublicAPI(t *testing.T) {
	s := synthetic(2000, 50, 1000, 8)
	ms, err := egi.Motifs(s, 50, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no motifs in periodic data")
	}
	if len(ms[0].Occurrences) < 2 {
		t.Errorf("top motif has %d occurrences", len(ms[0].Occurrences))
	}
	if _, err := egi.Motifs(s, 50, 4, 4, 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestDetectErrorsArePropagated(t *testing.T) {
	if _, err := egi.Detect(nil, egi.Options{Window: 10}); err == nil {
		t.Error("nil series should error")
	}
	if _, err := egi.Detect([]float64{1, 2, 3}, egi.Options{Window: 0}); err == nil {
		t.Error("zero window should error")
	}
	if _, err := egi.Detect([]float64{1, 2, 3}, egi.Options{Window: 10}); err == nil {
		t.Error("window beyond series should error")
	}
	if _, err := egi.DetectSingle([]float64{1, 2, 3}, 2, 5, 5, 3); err == nil {
		t.Error("w > window should error")
	}
	if _, err := egi.Discords([]float64{1, 2, 3}, 2, 3); err == nil {
		t.Error("too-short series should error for discords")
	}
}

func TestDetectDeterministic(t *testing.T) {
	s := synthetic(1200, 40, 600, 4)
	r1, err := egi.Detect(s, egi.Options{Window: 40, Seed: 5, EnsembleSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := egi.Detect(s, egi.Options{Window: 40, Seed: 5, EnsembleSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Anomalies) != len(r2.Anomalies) {
		t.Fatal("anomaly counts differ")
	}
	for i := range r1.Anomalies {
		if r1.Anomalies[i] != r2.Anomalies[i] {
			t.Fatalf("anomaly %d differs", i)
		}
	}
}
