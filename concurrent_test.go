package egi_test

import (
	"sync"
	"testing"

	"egi"
)

// TestConcurrentStreamFanIn: many producers push into one detector; every
// point lands (Total), events arrive on the channel in stream order, and
// Flush closes the channel. Run under -race this also proves the locking.
func TestConcurrentStreamFanIn(t *testing.T) {
	series := quickstartSeries()
	const producers = 8

	cs, err := egi.ConcurrentStream(egi.StreamOptions{
		Window: 80,
		BufLen: 800,
		Seed:   42,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}

	var events []egi.Anomaly
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range cs.Events() {
			events = append(events, a)
		}
	}()

	// Each producer pushes a contiguous slice as atomic batches, so the
	// interleaving across producers is arbitrary but every point arrives.
	var wg sync.WaitGroup
	chunk := (len(series) + producers - 1) / producers
	for p := 0; p < producers; p++ {
		lo := p * chunk
		hi := lo + chunk
		if hi > len(series) {
			hi = len(series)
		}
		wg.Add(1)
		go func(xs []float64) {
			defer wg.Done()
			for len(xs) > 0 {
				k := 16
				if k > len(xs) {
					k = len(xs)
				}
				if err := cs.PushBatch(xs[:k]); err != nil {
					t.Errorf("PushBatch: %v", err)
					return
				}
				xs = xs[k:]
			}
		}(series[lo:hi])
	}
	wg.Wait()
	if got := cs.Total(); got != len(series) {
		t.Fatalf("Total = %d, want %d", got, len(series))
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	<-done

	for i := 1; i < len(events); i++ {
		if events[i].Pos <= events[i-1].Pos {
			t.Errorf("events out of stream order: %+v after %+v", events[i], events[i-1])
		}
	}
	// Flush is idempotent; pushes after it fail.
	if err := cs.Flush(); err != nil {
		t.Fatalf("second Flush: %v", err)
	}
	if err := cs.Push(1); err == nil {
		t.Error("Push after Flush should error")
	}
	if _, err := cs.Anomalies(); err != nil {
		t.Errorf("Anomalies after Flush: %v", err)
	}
}

// TestConcurrentStreamMatchesSequential: a single producer through the
// concurrent wrapper is bit-identical to a plain Streamer — the wrapper
// adds locking and a channel, not semantics.
func TestConcurrentStreamMatchesSequential(t *testing.T) {
	series := quickstartSeries()
	opts := egi.StreamOptions{Window: 80, BufLen: 800, Seed: 7}

	cs, err := egi.ConcurrentStream(opts, len(series))
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	var concEvents []egi.Anomaly
	for a := range cs.Events() {
		concEvents = append(concEvents, a)
	}

	var seqEvents []egi.Anomaly
	seqOpts := opts
	seqOpts.OnAnomaly = func(a egi.Anomaly) { seqEvents = append(seqEvents, a) }
	s, err := egi.Stream(seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	if len(concEvents) != len(seqEvents) {
		t.Fatalf("%d events concurrent, %d sequential", len(concEvents), len(seqEvents))
	}
	for i := range concEvents {
		if concEvents[i] != seqEvents[i] {
			t.Fatalf("event %d: %+v vs %+v", i, concEvents[i], seqEvents[i])
		}
	}
}

// TestConcurrentStreamRejectsCallback: OnAnomaly and the channel cannot
// both be delivery paths.
func TestConcurrentStreamRejectsCallback(t *testing.T) {
	_, err := egi.ConcurrentStream(egi.StreamOptions{
		Window:    80,
		OnAnomaly: func(egi.Anomaly) {},
	}, 0)
	if err == nil {
		t.Fatal("OnAnomaly should be rejected")
	}
}
