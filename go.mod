module egi

go 1.24
