package egi_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"egi"
)

// TestManagerMatchesStreamer: events delivered through a Manager
// subscription are identical to a plain Streamer fed the same points, per
// stream, including the flush-on-close tail.
func TestManagerMatchesStreamer(t *testing.T) {
	opts := egi.StreamOptions{Window: 50, BufLen: 400, EnsembleSize: 8, Seed: 21}
	m, err := egi.NewManager(egi.ManagerOptions{Stream: opts})
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := m.Subscribe("", 0)
	defer cancel()
	got := map[string][]egi.Anomaly{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			got[ev.Stream] = append(got[ev.Stream], ev.Anomaly)
		}
	}()

	want := map[string][]egi.Anomaly{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("stream-%d", i)
		series := synthetic(2500, 50, 900+60*i, int64(31+i))

		direct := opts
		direct.OnAnomaly = func(a egi.Anomaly) { want[id] = append(want[id], a) }
		s, err := egi.Stream(direct)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PushBatch(series); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}

		if err := m.PushBatch(id, series); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	events2, cancel2 := m.Subscribe("", 0)
	defer cancel2()
	if _, ok := <-events2; ok {
		t.Fatal("subscription to a closed manager delivered an event")
	}

	var total int
	for id, w := range want {
		total += len(w)
		g := got[id]
		if len(g) != len(w) {
			t.Fatalf("%s: %d managed events, %d direct events", id, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: event %d = %+v, want %+v", id, i, g[i], w[i])
			}
		}
	}
	if total == 0 {
		t.Fatal("fixtures produced no events; test is vacuous")
	}
}

// TestManagerLimitsAndAccounting: the public surface enforces MaxStreams,
// reports footprints, and cleans up on CloseStream.
func TestManagerLimitsAndAccounting(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{
		Stream:     egi.StreamOptions{Window: 50, EnsembleSize: 6, Seed: 3},
		MaxStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	series := synthetic(600, 50, 300, 9)
	if err := m.PushBatch("a", series); err != nil {
		t.Fatal(err)
	}
	if err := m.PushBatch("b", series); err != nil {
		t.Fatal(err)
	}
	// No IdleAfter: nothing is evictable, the third stream is rejected.
	if err := m.Push("c", 1); !errors.Is(err, egi.ErrTooManyStreams) {
		t.Fatalf("over-limit open: %v, want ErrTooManyStreams", err)
	}
	st := m.Stats()
	if len(st.Streams) != 2 || m.Len() != 2 {
		t.Fatalf("stats report %d streams, Len %d, want 2", len(st.Streams), m.Len())
	}
	if st.TotalBytes <= 0 || m.MemoryFootprint() != st.TotalBytes {
		t.Fatalf("accounting: TotalBytes %d, MemoryFootprint %d", st.TotalBytes, m.MemoryFootprint())
	}
	for _, s := range st.Streams {
		if s.Points != int64(len(series)) {
			t.Fatalf("%s: %d points, want %d", s.ID, s.Points, len(series))
		}
		if s.MemoryBytes <= 0 {
			t.Fatalf("%s: footprint %d", s.ID, s.MemoryBytes)
		}
	}
	final, err := m.CloseStream("a")
	if err != nil {
		t.Fatal(err)
	}
	if final.Points != int64(len(series)) {
		t.Fatalf("final stats: %d points, want %d", final.Points, len(series))
	}
	if err := m.Push("c", 1); err != nil {
		t.Fatalf("open after explicit close: %v", err)
	}
	if _, err := m.StreamStats("a"); !errors.Is(err, egi.ErrUnknownStream) {
		t.Fatalf("closed stream still visible: %v", err)
	}
}

// TestManagerIdleEviction: streams idle past IdleAfter are evicted by
// EvictIdle with their final stats returned; active streams survive.
func TestManagerIdleEviction(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{
		Stream:    egi.StreamOptions{Window: 50, EnsembleSize: 6, Seed: 3},
		IdleAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	series := synthetic(600, 50, 300, 9)
	if err := m.PushBatch("old", series); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	if err := m.PushBatch("fresh", series); err != nil {
		t.Fatal(err)
	}
	evicted := m.EvictIdle()
	if len(evicted) != 1 || evicted[0].ID != "old" {
		t.Fatalf("EvictIdle = %+v, want exactly old", evicted)
	}
	if _, err := m.StreamStats("fresh"); err != nil {
		t.Fatalf("active stream evicted: %v", err)
	}
	st := m.Stats()
	if st.Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", st.Evicted)
	}
}

// TestManagerConcurrent: concurrent producers over shared and disjoint
// streams with a live subscriber; the race detector is the assertion.
func TestManagerConcurrent(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: egi.StreamOptions{Window: 50, EnsembleSize: 6, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := m.Subscribe("", 512)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range events {
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", g%3)
			series := synthetic(1200, 50, 600, int64(g%3))
			for i := 0; i < len(series); i += 50 {
				if err := m.PushBatch(id, series[i:i+50]); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestManagerRejectsCallbackTemplate: the template's OnAnomaly must be nil.
func TestManagerRejectsCallbackTemplate(t *testing.T) {
	_, err := egi.NewManager(egi.ManagerOptions{
		Stream: egi.StreamOptions{Window: 50, OnAnomaly: func(egi.Anomaly) {}},
	})
	if !errors.Is(err, egi.ErrManagerCallback) {
		t.Fatalf("err = %v, want ErrManagerCallback", err)
	}
}
