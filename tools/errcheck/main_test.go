package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile writes one source file under dir, creating parents.
func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDirFlagsDiscards(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `// Package a exercises the checker.
package a

import "os"

func fails() error { return nil }

func pure() int { return 1 }

func uses() {
	fails()               // flagged: bare statement
	go fails()            // flagged: goroutine result vanishes
	defer fails()         // flagged: deferred result vanishes
	os.Remove("x")        // flagged: tuple-free stdlib error
	_ = fails()           // passes: explicit, reviewable discard
	if err := fails(); err != nil { // passes: handled
		_ = err
	}
	pure()    // passes: no error in the signature
	println() // passes: built-in, no error
}
`)
	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Fatalf("got %d findings, want 4:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	wantSubstrings := []string{"fails", "fails", "fails", "os.Remove"}
	for _, want := range wantSubstrings {
		var hit bool
		for _, f := range findings {
			if strings.Contains(f, want) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("no finding mentions %q:\n%s", want, strings.Join(findings, "\n"))
		}
	}
}

func TestCheckDirMultiValueReturns(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `// Package a exercises tuple returns.
package a

func pair() (int, error) { return 0, nil }

func uses() {
	pair()       // flagged: the error is the second value
	n, _ := pair()
	_ = n
}
`)
	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "pair") {
		t.Fatalf("got findings %v, want one for pair", findings)
	}
}

func TestCheckDirSkipsTests(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", "// Package a is clean.\npackage a\n")
	writeFile(t, dir, "a_test.go", `package a

import "os"

func helper() { os.Remove("x") }
`)
	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("test files gated: %v", findings)
	}
}

func TestCheckDirCleanPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `// Package a handles all of its errors.
package a

import "os"

func uses() error {
	if err := os.Remove("x"); err != nil {
		return err
	}
	return nil
}
`)
	findings, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("clean package reported: %v", findings)
	}
}
