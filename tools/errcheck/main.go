// Command errcheck is the repository's discarded-error gate: it fails
// (exit code 1) when a call whose result includes an error is used as a
// bare statement — the error silently vanishes. The durability packages
// are the reason this gate exists: a swallowed write/sync/close error in
// the WAL or the manager turns a recoverable disk fault into silent data
// loss.
//
// Usage:
//
//	go run ./tools/errcheck [patterns...]
//
// With no patterns it checks ./internal/wal and ./internal/manager, the
// packages where an unobserved error is a durability bug by definition.
// Assigning the error to blank (`_ = f()`) passes: it is a visible,
// reviewable statement that the error was considered and dropped on
// purpose. Bare `go f()` and `defer f()` with an error-returning f are
// flagged like bare calls; test files are exempt.
//
// Calls are judged by their type-checked signature (go/types with a
// source importer). If type information for a call cannot be resolved,
// the call is skipped rather than guessed at — the gate prefers a false
// negative over failing the build on checker limitations.
//
// Exit codes: 0 all checks pass, 1 findings were reported, 2 the checker
// itself failed (bad pattern, unparsable file).
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./internal/wal", "./internal/manager"}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "errcheck:", err)
		os.Exit(2)
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "errcheck:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("errcheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// expand resolves "./..."-style patterns into the set of directories that
// contain .go files, skipping testdata and hidden directories.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		root, recursive := p, false
		if strings.HasSuffix(p, "/...") {
			root, recursive = strings.TrimSuffix(p, "/..."), true
		}
		if root == "" {
			root = "."
		}
		if !recursive {
			add(filepath.Clean(root))
			continue
		}
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				base := filepath.Base(path)
				if base == "testdata" || (len(base) > 1 && strings.HasPrefix(base, ".")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir type-checks one directory's non-test package and reports every
// call statement that discards an error.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var findings []string
	for _, pkg := range pkgs {
		var files []*ast.File
		for _, f := range pkg.Files {
			files = append(files, f)
		}
		info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "source", nil),
			// Partial type information is still useful: record what
			// resolves and keep going.
			Error: func(error) {},
		}
		_, _ = conf.Check(dir, fset, files, info)
		for _, f := range files {
			findings = append(findings, checkFile(fset, f, info)...)
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// checkFile walks one file for bare call, go, and defer statements whose
// callee returns an error.
func checkFile(fset *token.FileSet, f *ast.File, info *types.Info) []string {
	var findings []string
	report := func(call *ast.CallExpr, how string) {
		p := fset.Position(call.Pos())
		findings = append(findings, fmt.Sprintf("%s:%d: %s discards the error from %s", p.Filename, p.Line, how, callName(call)))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && returnsError(call, info) {
				report(call, "statement")
			}
		case *ast.GoStmt:
			if returnsError(st.Call, info) {
				report(st.Call, "go statement")
			}
		case *ast.DeferStmt:
			if returnsError(st.Call, info) {
				report(st.Call, "defer statement")
			}
		}
		return true
	})
	return findings
}

// returnsError reports whether the type-checked result of call includes an
// error. Calls whose type did not resolve are skipped (never flagged).
func returnsError(call *ast.CallExpr, info *types.Info) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// isErrorType reports whether t is the built-in error interface (or an
// alias of it).
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders a readable name for the callee: the selector path for
// method and package calls, the identifier for plain calls, and a generic
// label otherwise.
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return "(...)." + fn.Sel.Name
	default:
		return "function value"
	}
}
