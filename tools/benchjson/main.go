// Command benchjson converts `go test -bench` output into the repo's
// benchmark-trajectory JSON (BENCH_stream.json): a JSON array with one
// object per benchmark result line, carrying the benchmark name (with the
// machine-dependent -GOMAXPROCS suffix stripped so files diff cleanly
// across machines), iteration count, ns/op, and — when -benchmem or
// b.ReportMetric emitted them — bytes/op, allocs/op and any custom
// metrics.
//
// Repeated runs of the same benchmark (`-count=N`, or names colliding
// after the suffix strip) are merged into one object: per-op values are
// averaged weighted by each run's iteration count, iterations are
// summed, and a "runs" field records how many lines merged. Before this,
// later lines silently replaced earlier ones in downstream tooling that
// indexed by name, so `-count` runs compared only their last (often
// noisiest-cache) measurement.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem . | go run ./tools/benchjson > BENCH_stream.json
//	go run ./tools/benchjson -compare old.json new.json [-threshold 0.25]
//
// In the default mode it reads stdin and writes JSON to stdout. If the
// input contains no benchmark result lines at all it exits nonzero
// instead of emitting an empty array, so a misconfigured CI bench job
// fails loudly rather than committing an empty trajectory point.
//
// -compare loads two trajectory files and prints a per-benchmark delta
// table (ns/op, B/op, allocs/op; benchmarks present in only one file are
// listed but never gate). It exits nonzero when any shared benchmark's
// ns/op grew by more than -threshold (a fraction: 0.25 allows +25%), so
// CI can run it as a regression tripwire — or, without a gate, as a
// plain report by setting the threshold high.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line's parsed measurements — or, after merge,
// the iteration-weighted combination of several runs of one benchmark.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	// Runs counts the result lines merged into this entry; omitted for a
	// single run.
	Runs int64 `json:"runs,omitempty"`
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends to
// benchmark names (e.g. "BenchmarkFoo/case-8" -> "BenchmarkFoo/case").
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i+1 == len(name) {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// parse extracts every benchmark result line from r, in input order.
func parse(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		res := result{Name: stripProcs(f[0]), Iterations: iters}
		sawNs := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", f[i], sc.Text())
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
				sawNs = true
			case "B/op":
				b := v
				res.BytesPerOp = &b
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		if !sawNs {
			return nil, fmt.Errorf("benchjson: no ns/op in line %q", sc.Text())
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("benchjson: no benchmark result lines in input")
	}
	return out, nil
}

// merge combines repeated results for the same benchmark name into one
// entry per name, preserving first-occurrence order. Per-op values are
// averaged weighted by each run's iteration count — the same weighting
// `go test` itself would produce had it timed all the iterations as one
// run — and iterations are summed. Optional measurements (B/op,
// allocs/op, custom metrics) are weighted over only the runs that
// reported them.
func merge(results []result) []result {
	type acc struct {
		r       result
		runs    int64
		ns      float64 // sum of ns/op * iterations
		bytes   float64
		bIters  int64 // iterations of runs reporting B/op
		allocs  float64
		aIters  int64
		metrics map[string]float64 // unit -> weighted sum
		mIters  map[string]int64
	}
	var order []string
	accs := make(map[string]*acc)
	for _, r := range results {
		a, ok := accs[r.Name]
		if !ok {
			a = &acc{r: result{Name: r.Name}}
			accs[r.Name] = a
			order = append(order, r.Name)
		}
		w := float64(r.Iterations)
		a.runs++
		a.r.Iterations += r.Iterations
		a.ns += r.NsPerOp * w
		if r.BytesPerOp != nil {
			a.bytes += *r.BytesPerOp * w
			a.bIters += r.Iterations
		}
		if r.AllocsPerOp != nil {
			a.allocs += *r.AllocsPerOp * w
			a.aIters += r.Iterations
		}
		for unit, v := range r.Metrics {
			if a.metrics == nil {
				a.metrics = make(map[string]float64)
				a.mIters = make(map[string]int64)
			}
			a.metrics[unit] += v * w
			a.mIters[unit] += r.Iterations
		}
	}
	out := make([]result, 0, len(order))
	for _, name := range order {
		a := accs[name]
		r := a.r
		if r.Iterations > 0 {
			r.NsPerOp = a.ns / float64(r.Iterations)
		}
		if a.bIters > 0 {
			b := a.bytes / float64(a.bIters)
			r.BytesPerOp = &b
		}
		if a.aIters > 0 {
			al := a.allocs / float64(a.aIters)
			r.AllocsPerOp = &al
		}
		for unit, sum := range a.metrics {
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = sum / float64(a.mIters[unit])
		}
		if a.runs > 1 {
			r.Runs = a.runs
		}
		out = append(out, r)
	}
	return out
}

// loadResults reads one trajectory file (the JSON this tool emits).
func loadResults(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rs []result
	if err := json.NewDecoder(f).Decode(&rs); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	byName := make(map[string]result, len(rs))
	for _, r := range rs {
		byName[r.Name] = r
	}
	return byName, nil
}

// delta formats a relative change; n==0 && o==0 is a clean "=".
func delta(o, n float64) string {
	switch {
	case o == n:
		return "="
	case o == 0:
		return "new"
	default:
		return fmt.Sprintf("%+.1f%%", (n-o)/o*100)
	}
}

// optional reads a possibly-absent measurement as a value.
func optional(p *float64) float64 {
	if p == nil {
		return 0
	}
	return *p
}

// compare prints the per-benchmark delta table between two trajectory
// maps to w and returns the names whose ns/op regressed past threshold.
func compare(w io.Writer, prev, cur map[string]result, threshold float64) []string {
	names := make([]string, 0, len(prev)+len(cur))
	for n := range prev {
		names = append(names, n)
	}
	for n := range cur {
		if _, ok := prev[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var regressed []string
	tw := bufio.NewWriter(w)
	defer tw.Flush()
	fmt.Fprintf(tw, "%-60s %14s %14s %9s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns/op", "ΔB/op", "Δallocs")
	for _, name := range names {
		o, inOld := prev[name]
		n, inNew := cur[name]
		switch {
		case !inNew:
			fmt.Fprintf(tw, "%-60s %14.0f %14s %9s %9s %9s\n", name, o.NsPerOp, "-", "gone", "", "")
		case !inOld:
			fmt.Fprintf(tw, "%-60s %14s %14.0f %9s %9s %9s\n", name, "-", n.NsPerOp, "new", "", "")
		default:
			mark := ""
			if o.NsPerOp > 0 && (n.NsPerOp-o.NsPerOp)/o.NsPerOp > threshold {
				mark = "  << REGRESSION"
				regressed = append(regressed, name)
			}
			fmt.Fprintf(tw, "%-60s %14.0f %14.0f %9s %9s %9s%s\n",
				name, o.NsPerOp, n.NsPerOp,
				delta(o.NsPerOp, n.NsPerOp),
				delta(optional(o.BytesPerOp), optional(n.BytesPerOp)),
				delta(optional(o.AllocsPerOp), optional(n.AllocsPerOp)),
				mark)
		}
	}
	return regressed
}

func main() {
	comparePaths := flag.Bool("compare", false,
		"compare two trajectory JSON files (old new) instead of reading bench output from stdin")
	threshold := flag.Float64("threshold", 0.25,
		"with -compare: allowed fractional ns/op growth before exiting nonzero (0.25 = +25%)")
	flag.Parse()

	if *comparePaths {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		oldR, err := loadResults(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		newR, err := loadResults(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		regressed := compare(os.Stdout, oldR, newR, *threshold)
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%: %s\n",
				len(regressed), *threshold*100, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merge(results)); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
