package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: egi
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamPush/buflen=2000         	  260127	      4532 ns/op	     222 B/op	       8 allocs/op
BenchmarkStreamPush/buflen=2000/hop=100 	   30469	     38383 ns/op	    2404 B/op	      47 allocs/op
BenchmarkManagerPush/streams=8-8        	  200000	      6000 ns/op	     300 B/op	      10 allocs/op
BenchmarkTable4Score/Trace-8            	       1	1234567 ns/op	         0.850 avg_score	         0.900 hit_rate
PASS
ok  	egi	8.835s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkStreamPush/buflen=2000" || first.Iterations != 260127 ||
		first.NsPerOp != 4532 || first.BytesPerOp == nil || *first.BytesPerOp != 222 ||
		first.AllocsPerOp == nil || *first.AllocsPerOp != 8 {
		t.Fatalf("first result parsed wrong: %+v", first)
	}
	// The -GOMAXPROCS suffix is stripped; a /hop=NNN sub-bench name is not.
	if got[1].Name != "BenchmarkStreamPush/buflen=2000/hop=100" {
		t.Fatalf("hop sub-bench name: %q", got[1].Name)
	}
	if got[2].Name != "BenchmarkManagerPush/streams=8" {
		t.Fatalf("procs suffix not stripped: %q", got[2].Name)
	}
	metrics := got[3].Metrics
	if metrics["avg_score"] != 0.85 || metrics["hit_rate"] != 0.9 {
		t.Fatalf("custom metrics parsed wrong: %+v", metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("goos: linux\nPASS\n")); err == nil {
		t.Fatal("input without benchmark lines should error")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo/case-16":    "BenchmarkFoo/case",
		"BenchmarkFoo/hop=100":    "BenchmarkFoo/hop=100",
		"BenchmarkFoo/n=2000-128": "BenchmarkFoo/n=2000",
		"BenchmarkBar":            "BenchmarkBar",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
