package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: egi
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamPush/buflen=2000         	  260127	      4532 ns/op	     222 B/op	       8 allocs/op
BenchmarkStreamPush/buflen=2000/hop=100 	   30469	     38383 ns/op	    2404 B/op	      47 allocs/op
BenchmarkManagerPush/streams=8-8        	  200000	      6000 ns/op	     300 B/op	      10 allocs/op
BenchmarkTable4Score/Trace-8            	       1	1234567 ns/op	         0.850 avg_score	         0.900 hit_rate
PASS
ok  	egi	8.835s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkStreamPush/buflen=2000" || first.Iterations != 260127 ||
		first.NsPerOp != 4532 || first.BytesPerOp == nil || *first.BytesPerOp != 222 ||
		first.AllocsPerOp == nil || *first.AllocsPerOp != 8 {
		t.Fatalf("first result parsed wrong: %+v", first)
	}
	// The -GOMAXPROCS suffix is stripped; a /hop=NNN sub-bench name is not.
	if got[1].Name != "BenchmarkStreamPush/buflen=2000/hop=100" {
		t.Fatalf("hop sub-bench name: %q", got[1].Name)
	}
	if got[2].Name != "BenchmarkManagerPush/streams=8" {
		t.Fatalf("procs suffix not stripped: %q", got[2].Name)
	}
	metrics := got[3].Metrics
	if metrics["avg_score"] != 0.85 || metrics["hit_rate"] != 0.9 {
		t.Fatalf("custom metrics parsed wrong: %+v", metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("goos: linux\nPASS\n")); err == nil {
		t.Fatal("input without benchmark lines should error")
	}
}

// Repeated `-count=N` lines for one benchmark must merge into a single
// iteration-weighted entry, not last-write-win.
func TestMergeDuplicates(t *testing.T) {
	input := `BenchmarkFoo-8   100   10 ns/op   40 B/op   2 allocs/op
BenchmarkFoo-8   300   20 ns/op   80 B/op   4 allocs/op
BenchmarkBar-8   50   5 ns/op
`
	parsed, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	got := merge(parsed)
	if len(got) != 2 {
		t.Fatalf("merged to %d results, want 2", len(got))
	}
	foo := got[0]
	if foo.Name != "BenchmarkFoo" || foo.Iterations != 400 || foo.Runs != 2 {
		t.Fatalf("merged foo accounting wrong: %+v", foo)
	}
	// Weighted by iterations: (100*10 + 300*20) / 400 = 17.5, not the
	// last run's 20 or the unweighted mean 15.
	if foo.NsPerOp != 17.5 {
		t.Fatalf("merged ns/op = %v, want 17.5", foo.NsPerOp)
	}
	if foo.BytesPerOp == nil || *foo.BytesPerOp != 70 {
		t.Fatalf("merged B/op = %v, want 70", foo.BytesPerOp)
	}
	if foo.AllocsPerOp == nil || *foo.AllocsPerOp != 3.5 {
		t.Fatalf("merged allocs/op = %v, want 3.5", foo.AllocsPerOp)
	}
	bar := got[1]
	if bar.Name != "BenchmarkBar" || bar.Runs != 0 || bar.NsPerOp != 5 {
		t.Fatalf("single-run bar altered by merge: %+v", bar)
	}
}

// Optional measurements reported by only some runs are averaged over
// exactly the runs that reported them.
func TestMergePartialMeasurements(t *testing.T) {
	input := `BenchmarkFoo-8   100   10 ns/op   0.5 hit_rate
BenchmarkFoo-8   100   30 ns/op   64 B/op
`
	parsed, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	got := merge(parsed)
	if len(got) != 1 {
		t.Fatalf("merged to %d results, want 1", len(got))
	}
	f := got[0]
	if f.NsPerOp != 20 {
		t.Fatalf("ns/op = %v, want 20", f.NsPerOp)
	}
	if f.BytesPerOp == nil || *f.BytesPerOp != 64 {
		t.Fatalf("B/op = %v, want 64 (from the one run that reported it)", f.BytesPerOp)
	}
	if f.Metrics["hit_rate"] != 0.5 {
		t.Fatalf("hit_rate = %v, want 0.5", f.Metrics["hit_rate"])
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo/case-16":    "BenchmarkFoo/case",
		"BenchmarkFoo/hop=100":    "BenchmarkFoo/hop=100",
		"BenchmarkFoo/n=2000-128": "BenchmarkFoo/n=2000",
		"BenchmarkBar":            "BenchmarkBar",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func fp(v float64) *float64 { return &v }

func TestCompare(t *testing.T) {
	prev := map[string]result{
		"BenchmarkA":    {Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: fp(100), AllocsPerOp: fp(4)},
		"BenchmarkB":    {Name: "BenchmarkB", NsPerOp: 2000},
		"BenchmarkGone": {Name: "BenchmarkGone", NsPerOp: 10},
	}
	cur := map[string]result{
		"BenchmarkA":   {Name: "BenchmarkA", NsPerOp: 1100, BytesPerOp: fp(50), AllocsPerOp: fp(4)},
		"BenchmarkB":   {Name: "BenchmarkB", NsPerOp: 2600},
		"BenchmarkNew": {Name: "BenchmarkNew", NsPerOp: 5},
	}
	var out strings.Builder
	regressed := compare(&out, prev, cur, 0.25)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v, want [BenchmarkB] (+30%% past the 25%% threshold)", regressed)
	}
	got := out.String()
	for _, want := range []string{"+10.0%", "+30.0%", "-50.0%", "new", "gone", "REGRESSION"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table lacks %q:\n%s", want, got)
		}
	}
	// A 10%% bar also catches BenchmarkA; a loose bar catches nothing.
	if r := compare(&strings.Builder{}, prev, cur, 0.05); len(r) != 2 {
		t.Fatalf("5%% threshold: regressed = %v, want 2 entries", r)
	}
	if r := compare(&strings.Builder{}, prev, cur, 10); len(r) != 0 {
		t.Fatalf("1000%% threshold: regressed = %v, want none", r)
	}
}

func TestCompareEqualAndZero(t *testing.T) {
	prev := map[string]result{"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 1000}}
	cur := map[string]result{"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 1000}}
	var out strings.Builder
	if r := compare(&out, prev, cur, 0); len(r) != 0 {
		t.Fatalf("identical runs regressed: %v", r)
	}
	if !strings.Contains(out.String(), "=") {
		t.Fatalf("equal values not marked '=':\n%s", out.String())
	}
}
