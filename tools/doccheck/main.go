// Command doccheck is the repository's documentation gate: it fails (exit
// code 1) when a package is missing its package-level doc comment, or when
// an exported identifier is missing a doc comment.
//
// Usage:
//
//	go run ./tools/doccheck [-exported-all] [patterns...]
//
// With no patterns it checks ./... . By default every package must carry a
// package doc comment, and every exported identifier of every non-main,
// non-internal package (i.e. the public API) must carry a doc comment;
// -exported-all extends the exported-identifier rule to internal packages
// too. Test files are exempt, as are struct fields and interface methods
// (godoc renders those inline with their parent type).
//
// Exit codes: 0 all checks pass, 1 findings were reported, 2 the checker
// itself failed (bad pattern, unparsable file).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	exportedAll := flag.Bool("exported-all", false, "require doc comments on exported identifiers in internal packages too (default: public packages only)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := checkDir(dir, *exportedAll)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("doccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// expand resolves "./..."-style patterns into the set of directories that
// contain .go files, skipping testdata and hidden directories.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		root, recursive := p, false
		if strings.HasSuffix(p, "/...") {
			root, recursive = strings.TrimSuffix(p, "/..."), true
		}
		if root == "" {
			root = "."
		}
		if !recursive {
			add(filepath.Clean(root))
			continue
		}
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() {
				base := filepath.Base(path)
				if base == "testdata" || (len(base) > 1 && strings.HasPrefix(base, ".")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one directory's package and reports its findings.
func checkDir(dir string, exportedAll bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var findings []string
	for name, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		// Exported-identifier docs: the public API always, internal
		// packages only under -exported-all; main packages never (their
		// surface is the command, documented by the package comment).
		if name == "main" {
			continue
		}
		if !exportedAll && strings.Contains(filepath.ToSlash(dir), "internal/") {
			continue
		}
		findings = append(findings, checkExported(fset, pkg)...)
	}
	sort.Strings(findings)
	return findings, nil
}

// hasPackageDoc reports whether any file of the package carries a package
// doc comment.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// checkExported reports every exported top-level identifier that carries no
// doc comment. For grouped declarations (var/const blocks, factored type
// blocks) a doc comment on the group suffices.
func checkExported(fset *token.FileSet, pkg *ast.Package) []string {
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && receiverExported(d) && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						if groupDoc || s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								report(s.Pos(), declKind(d.Tok), n.Name)
							}
						}
					}
				}
			}
		}
	}
	return findings
}

// receiverExported reports whether a method's receiver type is itself
// exported (methods on unexported types are not part of the API surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
