package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile writes one source file under dir, creating parents.
func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDirMissingPackageDoc(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", "package a\n\n// F does f.\nfunc F() {}\n")
	findings, err := checkDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "no package doc comment") {
		t.Fatalf("got findings %v, want one missing-package-doc finding", findings)
	}

	writeFile(t, dir, "doc.go", "// Package a is documented.\npackage a\n")
	findings, err = checkDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("documented package still reported: %v", findings)
	}
}

func TestCheckDirUndocumentedExported(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", `// Package a is documented.
package a

func Undocumented() {}

// Documented is fine.
func Documented() {}

type Bare struct{}

// Grouped declarations pass on a group comment.
var (
	GroupedA = 1
	GroupedB = 2
)

const Loose = 3

type hidden struct{}

func (hidden) Method() {}

func internalHelper() {}
`)
	findings, err := checkDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range findings {
		if !strings.Contains(f, "has no doc comment") {
			t.Errorf("unexpected finding: %s", f)
		}
		names = append(names, f[strings.Index(f, "exported "):])
	}
	want := []string{
		"exported const Loose has no doc comment",
		"exported function Undocumented has no doc comment",
		"exported type Bare has no doc comment",
	}
	if len(names) != len(want) {
		t.Fatalf("got findings %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("finding %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestCheckDirInternalGating(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "internal", "x")
	writeFile(t, base, filepath.Join("internal", "x", "x.go"),
		"// Package x is documented.\npackage x\n\nfunc Undocumented() {}\n")

	// Default: internal packages only need the package doc.
	findings, err := checkDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("internal package gated without -exported-all: %v", findings)
	}

	// -exported-all extends the exported rule to internal packages.
	findings, err = checkDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "function Undocumented") {
		t.Fatalf("got findings %v, want one undocumented-function finding", findings)
	}
}

func TestCheckDirMainPackageExempt(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "main.go",
		"// Command tool is documented.\npackage main\n\nfunc Exported() {}\n")
	findings, err := checkDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("main package exported identifiers gated: %v", findings)
	}
}

func TestExpand(t *testing.T) {
	base := t.TempDir()
	writeFile(t, base, "a.go", "package a\n")
	writeFile(t, base, filepath.Join("sub", "b.go"), "package b\n")
	writeFile(t, base, filepath.Join("testdata", "skip.go"), "package skip\n")
	writeFile(t, base, filepath.Join(".hidden", "skip.go"), "package skip\n")
	writeFile(t, base, filepath.Join("empty", "note.txt"), "no go files\n")

	dirs, err := expand([]string{base + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{base, filepath.Join(base, "sub")}
	if len(dirs) != len(want) {
		t.Fatalf("got dirs %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Errorf("dir %d = %q, want %q", i, dirs[i], want[i])
		}
	}

	// A bare directory pattern passes through without walking.
	dirs, err = expand([]string{filepath.Join(base, "sub")})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != filepath.Join(base, "sub") {
		t.Fatalf("bare pattern: got %v", dirs)
	}
}
