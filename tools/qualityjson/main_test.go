package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"egi/internal/quality"
)

func mkCell(corpus, config string, f1, lat float64) quality.Cell {
	return quality.Cell{
		Corpus: corpus, Family: corpus, Config: config,
		Window: 100, Truth: 3, TP: 2, FP: 0, FN: 1,
		Precision: 1, Recall: f1, F1: f1, MedianLatency: lat,
	}
}

func cellMap(cs ...quality.Cell) map[string]quality.Cell {
	m := make(map[string]quality.Cell, len(cs))
	for _, c := range cs {
		m[c.Key()] = c
	}
	return m
}

func TestCompareClean(t *testing.T) {
	prev := cellMap(mkCell("drift", "defaults", 0.8, 1000))
	cur := cellMap(mkCell("drift", "defaults", 0.78, 1100)) // within both thresholds
	var out strings.Builder
	if reg := compare(&out, prev, cur, 0.05, 0.25); len(reg) != 0 {
		t.Fatalf("clean comparison regressed: %v", reg)
	}
	if !strings.Contains(out.String(), "drift|defaults") {
		t.Fatalf("delta table missing the cell:\n%s", out.String())
	}
}

func TestCompareF1Regression(t *testing.T) {
	prev := cellMap(mkCell("drift", "defaults", 0.8, 1000))
	cur := cellMap(mkCell("drift", "defaults", 0.7, 1000))
	var out strings.Builder
	reg := compare(&out, prev, cur, 0.05, 0.25)
	if len(reg) != 1 || reg[0] != "drift|defaults" {
		t.Fatalf("got regressed %v, want [drift|defaults]", reg)
	}
	if !strings.Contains(out.String(), "F1 REGRESSION") {
		t.Fatalf("table missing F1 REGRESSION mark:\n%s", out.String())
	}
}

func TestCompareLatencyRegression(t *testing.T) {
	prev := cellMap(mkCell("burst", "tight", 0.9, 1000))
	cur := cellMap(mkCell("burst", "tight", 0.9, 1400)) // +40% > 25%
	var out strings.Builder
	reg := compare(&out, prev, cur, 0.05, 0.25)
	if len(reg) != 1 {
		t.Fatalf("got regressed %v, want one latency regression", reg)
	}
	if !strings.Contains(out.String(), "LATENCY REGRESSION") {
		t.Fatalf("table missing LATENCY REGRESSION mark:\n%s", out.String())
	}
	// The -1 "no detections" sentinel never trips the latency gate.
	prev = cellMap(mkCell("burst", "tight", 0.9, -1))
	cur = cellMap(mkCell("burst", "tight", 0.9, 5000))
	if reg := compare(&out, prev, cur, 0.05, 0.25); len(reg) != 0 {
		t.Fatalf("sentinel latency gated: %v", reg)
	}
}

func TestCompareOneSidedCellsNeverGate(t *testing.T) {
	prev := cellMap(mkCell("drift", "defaults", 0.9, 1000))
	cur := cellMap(mkCell("seasonality", "defaults", 0.1, 9000))
	var out strings.Builder
	if reg := compare(&out, prev, cur, 0.05, 0.25); len(reg) != 0 {
		t.Fatalf("one-sided cells gated: %v", reg)
	}
	s := out.String()
	if !strings.Contains(s, "gone") || !strings.Contains(s, "new") {
		t.Fatalf("table missing gone/new markers:\n%s", s)
	}
}

// writeReport encodes a one-cell report to a temp file.
func writeReport(t *testing.T, dir, name string, c quality.Cell) string {
	t.Helper()
	rep := &quality.Report{Schema: quality.Schema, Grid: []quality.Cell{c}}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", mkCell("drift", "defaults", 0.8, 1000))
	samePath := writeReport(t, dir, "same.json", mkCell("drift", "defaults", 0.8, 1000))
	worsePath := writeReport(t, dir, "worse.json", mkCell("drift", "defaults", 0.6, 1000))

	var stdout, stderr strings.Builder
	if code := run([]string{"-compare", oldPath, samePath}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("identical reports: exit %d, stderr: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-compare", oldPath, worsePath}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("regressed report: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "regressed") {
		t.Fatalf("stderr missing regression summary: %s", stderr.String())
	}

	// A wider threshold lets the same drop through.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-compare", "-threshold", "0.3", oldPath, worsePath}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("wide threshold: exit %d, want 0", code)
	}
}

func TestRunUsageAndInputErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-compare", "only-one.json"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("-compare with one arg: exit %d, want 2", code)
	}
	if code := run([]string{"-compare", "/no/such/old.json", "/no/such/new.json"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("missing files: exit %d, want 2", code)
	}
	if code := run(nil, strings.NewReader("not json"), &stdout, &stderr); code != 2 {
		t.Fatalf("garbage stdin: exit %d, want 2", code)
	}
}

func TestRunRenderStdin(t *testing.T) {
	rep := &quality.Report{Schema: quality.Schema, Grid: []quality.Cell{mkCell("drift", "defaults", 0.8, 1000)}}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if code := run(nil, strings.NewReader(string(data)), &stdout, &stderr); code != 0 {
		t.Fatalf("render: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "drift") {
		t.Fatalf("rendered table missing cell:\n%s", stdout.String())
	}
}
