// Command qualityjson renders and compares the repo's detection-quality
// trajectory files (BENCH_quality.json, written by `egibench -exp quality
// -out`). It is the quality twin of tools/benchjson: where benchjson
// guards ns/op, qualityjson guards precision/recall/F1 and
// latency-to-detection, so a perf PR cannot silently buy speed with worse
// or later detections.
//
// Usage:
//
//	qualityjson < BENCH_quality.json
//	qualityjson -compare old.json new.json [-threshold 0.05] [-latency-threshold 0.25]
//
// The default mode reads one report from stdin and prints its tables. With
// -compare it joins the two reports' cells (corpus + configuration +
// rebase setting) and prints a per-cell delta table; it exits nonzero when
// any shared cell's F1 dropped by more than -threshold (absolute, 0.05 =
// five F1 points) or its median latency-to-detection grew by more than
// -latency-threshold (a fraction: 0.25 allows +25%), so CI can run it as a
// regression tripwire — or as a plain report with `|| true`. Cells present
// in only one file are listed but never gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"egi/internal/quality"
)

// loadReport reads one BENCH_quality.json file.
func loadReport(path string) (*quality.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := quality.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// cells flattens a report into key->cell, grid and sweep together.
func cells(r *quality.Report) map[string]quality.Cell {
	out := make(map[string]quality.Cell, len(r.Grid)+len(r.RebaseSweep))
	for _, c := range append(append([]quality.Cell(nil), r.Grid...), r.RebaseSweep...) {
		out[c.Key()] = c
	}
	return out
}

// fmtLat renders a median latency, "-" for the -1 sentinel.
func fmtLat(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// compare prints the per-cell delta table and returns the keys that
// regressed: an F1 drop of more than f1Drop (absolute), or a median
// latency growth of more than latGrow (fractional; only when both cells
// detected something).
func compare(w io.Writer, prev, cur map[string]quality.Cell, f1Drop, latGrow float64) []string {
	keys := make([]string, 0, len(prev)+len(cur))
	for k := range prev {
		keys = append(keys, k)
	}
	for k := range cur {
		if _, ok := prev[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var regressed []string
	tw := bufio.NewWriter(w)
	defer tw.Flush()
	fmt.Fprintf(tw, "%-50s %9s %9s %7s %12s %12s\n", "cell", "old F1", "new F1", "ΔF1", "old latency", "new latency")
	for _, k := range keys {
		o, inOld := prev[k]
		n, inNew := cur[k]
		switch {
		case !inNew:
			fmt.Fprintf(tw, "%-50s %9.3f %9s %7s %12s %12s\n", k, o.F1, "-", "gone", fmtLat(o.MedianLatency), "-")
		case !inOld:
			fmt.Fprintf(tw, "%-50s %9s %9.3f %7s %12s %12s\n", k, "-", n.F1, "new", "-", fmtLat(n.MedianLatency))
		default:
			mark := ""
			if o.F1-n.F1 > f1Drop {
				mark = "  << F1 REGRESSION"
				regressed = append(regressed, k)
			} else if o.MedianLatency >= 0 && n.MedianLatency >= 0 && o.MedianLatency > 0 &&
				(n.MedianLatency-o.MedianLatency)/o.MedianLatency > latGrow {
				mark = "  << LATENCY REGRESSION"
				regressed = append(regressed, k)
			}
			fmt.Fprintf(tw, "%-50s %9.3f %9.3f %+7.3f %12s %12s%s\n",
				k, o.F1, n.F1, n.F1-o.F1, fmtLat(o.MedianLatency), fmtLat(n.MedianLatency), mark)
		}
	}
	return regressed
}

// run is the command body; it returns the process exit code (0 clean, 1
// regression found, 2 usage or input error) so tests can exercise the
// gating behavior directly.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qualityjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	comparePaths := fs.Bool("compare", false,
		"compare two quality trajectory files (old new) instead of rendering stdin")
	threshold := fs.Float64("threshold", 0.05,
		"with -compare: allowed absolute F1 drop before exiting nonzero (0.05 = five F1 points)")
	latThreshold := fs.Float64("latency-threshold", 0.25,
		"with -compare: allowed fractional median-latency growth before exiting nonzero (0.25 = +25%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *comparePaths {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "qualityjson: -compare needs exactly two files: old.json new.json")
			return 2
		}
		oldR, err := loadReport(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "qualityjson:", err)
			return 2
		}
		newR, err := loadReport(fs.Arg(1))
		if err != nil {
			fmt.Fprintln(stderr, "qualityjson:", err)
			return 2
		}
		regressed := compare(stdout, cells(oldR), cells(newR), *threshold, *latThreshold)
		if len(regressed) > 0 {
			fmt.Fprintf(stderr, "qualityjson: %d cell(s) regressed: %s\n",
				len(regressed), strings.Join(regressed, ", "))
			return 1
		}
		return 0
	}

	data, err := io.ReadAll(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "qualityjson:", err)
		return 2
	}
	r, err := quality.Decode(data)
	if err != nil {
		fmt.Fprintln(stderr, "qualityjson:", err)
		return 2
	}
	quality.WriteTable(stdout, r)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
