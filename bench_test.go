// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7) at bench-friendly sizes; run the full-size versions with
// cmd/egibench. Each benchmark reports, besides time and allocations, the
// headline metric of its experiment via b.ReportMetric (avg_score,
// hit_rate, or wins) so the paper-vs-measured comparison is visible
// directly in the bench output.
//
// Index (see DESIGN.md §3 for the full mapping):
//
//	BenchmarkFig1ParamSensitivity  — Fig. 1
//	BenchmarkTable4Score           — Table 4 (and 5: hit rate is reported)
//	BenchmarkTable6WTL             — Table 6
//	BenchmarkTable7Ranges          — Tables 7–9 (one setting per sub-bench)
//	BenchmarkTable10N              — Tables 10–11
//	BenchmarkTable12Tau            — Table 12
//	BenchmarkTable13Window         — Tables 13–14
//	BenchmarkFig8Scalability       — Fig. 8
//	BenchmarkFig9CaseStudy         — Fig. 9
//	BenchmarkSec75MultiAnomaly     — §7.5
//	BenchmarkAblation*             — design-choice ablations (DESIGN.md §4)
package egi_test

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"egi"
	"egi/internal/core"
	"egi/internal/eval"
	"egi/internal/gen"
	"egi/internal/grammar"
	"egi/internal/matrixprofile"
	"egi/internal/sax"
	"egi/internal/timeseries"
	"egi/internal/ucrsim"
)

// benchSeries/benchSize keep one iteration around a second on a laptop
// core; cmd/egibench runs the paper-size versions (25 series, N=50).
const (
	benchSeries = 3
	benchSize   = 15
	benchSeed   = 20200330
)

// benchDatasets returns the small datasets used by the per-table benches;
// StarLightCurve (21k points per series) is exercised by its own benches.
func benchDatasets(b *testing.B) []*ucrsim.Dataset {
	b.Helper()
	names := []string{"TwoLeadECG", "Wafer", "Trace"}
	out := make([]*ucrsim.Dataset, len(names))
	for i, n := range names {
		d, err := ucrsim.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = d
	}
	return out
}

func BenchmarkFig1ParamSensitivity(b *testing.B) {
	ds, err := gen.Dishwasher(20, 200, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var worst, best float64
	for i := 0; i < b.N; i++ {
		worst, best = 2, -1
		for w := 2; w <= 10; w++ {
			for a := 2; a <= 10; a++ {
				res, err := grammar.Detect(ds.Series, ds.CycleLen, sax.Params{W: w, A: a}, nil, 3)
				if err != nil {
					b.Fatal(err)
				}
				var cands []int
				for _, c := range res.Candidates {
					cands = append(cands, c.Pos)
				}
				s := eval.BestScore(cands, ds.Anomaly.Pos, ds.Anomaly.Length)
				if s < worst {
					worst = s
				}
				if s > best {
					best = s
				}
			}
		}
	}
	b.ReportMetric(best-worst, "grid_score_spread")
}

func BenchmarkTable4Score(b *testing.B) {
	detectors := []eval.Detector{
		eval.Ensemble(eval.EnsembleOptions{Size: benchSize}),
		eval.GIRandom(0, 0),
		eval.GIFix(),
		eval.GISelect(0, 0),
		eval.Discord(),
	}
	for _, d := range benchDatasets(b) {
		b.Run(d.Name, func(b *testing.B) {
			var ensScore, ensHit float64
			for i := 0; i < b.N; i++ {
				res, err := eval.RunDataset(d, detectors, eval.RunConfig{
					NumSeries: benchSeries, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				ensScore = res[0].AvgScore()
				ensHit = res[0].HitRate()
			}
			b.ReportMetric(ensScore, "avg_score")
			b.ReportMetric(ensHit, "hit_rate")
		})
	}
}

func BenchmarkTable6WTL(b *testing.B) {
	detectors := []eval.Detector{
		eval.Ensemble(eval.EnsembleOptions{Size: benchSize}),
		eval.GIFix(),
	}
	for _, d := range benchDatasets(b) {
		b.Run(d.Name, func(b *testing.B) {
			var wins float64
			for i := 0; i < b.N; i++ {
				res, err := eval.RunDataset(d, detectors, eval.RunConfig{
					NumSeries: benchSeries, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				w, _, _, err := eval.WTL(res[0].Scores, res[1].Scores, 0)
				if err != nil {
					b.Fatal(err)
				}
				wins = float64(w)
			}
			b.ReportMetric(wins, "wins_vs_gifix")
		})
	}
}

// BenchmarkTable7Ranges covers Tables 7–9: the ensemble with varied
// parameter ranges (wmax, amax) against the best GI baseline.
func BenchmarkTable7Ranges(b *testing.B) {
	settings := []struct {
		name       string
		wmax, amax int
	}{
		{"w5a5", 5, 5},     // Table 7 row 1
		{"w10a10", 10, 10}, // Tables 7-9 shared row
		{"w15a10", 15, 10}, // Table 8 row 3
		{"w10a15", 10, 15}, // Table 9 row 3
	}
	d, err := ucrsim.ByName("Trace")
	if err != nil {
		b.Fatal(err)
	}
	for _, set := range settings {
		b.Run(set.name, func(b *testing.B) {
			var wins float64
			for i := 0; i < b.N; i++ {
				ss, err := eval.NewSeriesSet(d, benchSeries, 1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				baseline, err := ss.Run(eval.GIFix(), benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				ens, err := ss.Run(eval.Ensemble(eval.EnsembleOptions{
					Size: benchSize, WMax: set.wmax, AMax: set.amax,
				}), benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				w, _, _, err := eval.WTL(ens.Scores, baseline.Scores, 0)
				if err != nil {
					b.Fatal(err)
				}
				wins = float64(w)
			}
			b.ReportMetric(wins, "wins")
		})
	}
}

func BenchmarkTable10N(b *testing.B) {
	sizes := []int{5, 10, 25, 50}
	d, err := ucrsim.ByName("Wafer")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var score50 float64
	for i := 0; i < b.N; i++ {
		ss, err := eval.NewSeriesSet(d, benchSeries, 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		bySize, _, err := ss.SweepSizeTau(0, 0, 50, sizes, nil, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		score50 = bySize[50].AvgScore()
	}
	b.ReportMetric(score50, "avg_score_N50")
}

func BenchmarkTable12Tau(b *testing.B) {
	taus := []float64{0.05, 0.2, 0.4, 1.0}
	d, err := ucrsim.ByName("TwoLeadECG")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		ss, err := eval.NewSeriesSet(d, benchSeries, 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		_, byTau, err := ss.SweepSizeTau(0, 0, benchSize, nil, taus, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		spread = byTau[0.05].AvgScore() - byTau[1.0].AvgScore()
	}
	b.ReportMetric(spread, "tau5_minus_tau100")
}

func BenchmarkTable13Window(b *testing.B) {
	d, err := ucrsim.ByName("Wafer")
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.6, 0.8, 1.0} {
		b.Run(fmt.Sprintf("frac%.1f", frac), func(b *testing.B) {
			det := eval.Ensemble(eval.EnsembleOptions{Size: benchSize})
			var score float64
			for i := 0; i < b.N; i++ {
				ss, err := eval.NewSeriesSet(d, benchSeries, frac, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				ms, err := ss.Run(det, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				score = ms.AvgScore()
			}
			b.ReportMetric(score, "avg_score")
		})
	}
}

// BenchmarkFig8Scalability contrasts the linear-time ensemble with the
// quadratic STOMP baseline at growing lengths. The time column IS the
// result here: ensemble sub-bench times should grow linearly with length,
// STOMP quadratically.
func BenchmarkFig8Scalability(b *testing.B) {
	const window = 300
	for _, n := range []int{5000, 10000, 20000} {
		s, err := gen.RandomWalk(n, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Ensemble/n=%d", n), func(b *testing.B) {
			cfg := core.DefaultConfig(window)
			cfg.Size = benchSize
			cfg.Seed = benchSeed
			for i := 0; i < b.N; i++ {
				if _, err := core.Detect(s, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("STOMP/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrixprofile.STOMP(s, window, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9CaseStudy(b *testing.B) {
	fs, err := gen.FridgeFreezer(50000, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(fs.CycleLen)
	cfg.Size = benchSize
	cfg.Seed = benchSeed
	cfg.TopK = 2
	b.ResetTimer()
	var matched float64
	for i := 0; i < b.N; i++ {
		res, err := core.Detect(fs.Series, cfg)
		if err != nil {
			b.Fatal(err)
		}
		matched = 0
		for _, c := range res.Candidates {
			for _, gt := range fs.Anomalies {
				if c.Pos < gt.Pos+gt.Length && gt.Pos < c.Pos+c.Length {
					matched++
				}
			}
		}
	}
	b.ReportMetric(matched, "planted_found_of_2")
}

func BenchmarkSec75MultiAnomaly(b *testing.B) {
	d, err := ucrsim.ByName("StarLightCurve")
	if err != nil {
		b.Fatal(err)
	}
	det := eval.Ensemble(eval.EnsembleOptions{Size: benchSize})
	b.ResetTimer()
	var detected float64
	for i := 0; i < b.N; i++ {
		results, err := eval.RunMultiAnomaly(d, det, 2, 20, 2, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		detected = 0
		for _, r := range results {
			detected += float64(r.Detected)
		}
	}
	b.ReportMetric(detected, "detected_of_4")
}

// BenchmarkDetect measures the end-to-end batch detector on one fixed
// series: the headline "linear in the series length" cost per point. The
// CI benchmark job tracks it (with -benchmem) alongside BenchmarkStreamPush
// as the batch/stream pair over the shared engine.
func BenchmarkDetect(b *testing.B) {
	const window = 100
	for _, length := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", length), func(b *testing.B) {
			series := make([]float64, length)
			for i := range series {
				series[i] = math.Sin(2*math.Pi*float64(i)/window) +
					0.3*math.Sin(float64(i)*0.7391)
			}
			opts := egi.Options{Window: window, EnsembleSize: benchSize, Seed: benchSeed}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := egi.Detect(series, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamPush measures the amortized per-point cost of the
// streaming detector (the time column is ns per pushed point, since each
// iteration pushes exactly one point). Re-induction runs once per hop —
// the default hop grows with the buffer — so the amortized cost must stay
// roughly flat as BufLen grows: sublinear in buffer length, the property
// that makes the detector viable on continuous traffic.
func BenchmarkStreamPush(b *testing.B) {
	const window = 100
	for _, bufLen := range []int{500, 1000, 2000, 4000} {
		b.Run(fmt.Sprintf("buflen=%d", bufLen), func(b *testing.B) {
			s, err := egi.Stream(egi.StreamOptions{
				Window:       window,
				BufLen:       bufLen,
				EnsembleSize: benchSize,
				Seed:         benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Precompute one buffer's worth of signal to cycle through,
			// so point generation stays out of the measurement.
			points := make([]float64, bufLen)
			for i := range points {
				points[i] = math.Sin(2 * math.Pi * float64(i) / window)
			}
			// Noise breaks the exact periodicity without a per-push RNG
			// call: a second incommensurate sinusoid.
			for i := range points {
				points[i] += 0.3 * math.Sin(float64(i)*0.7391)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Push(points[i%bufLen]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
	// Small hops re-induce much more often; incremental re-discretization
	// and amortized grammar induction in the engine keep the extra cost
	// far below proportional (only the hop's new suffix windows are
	// re-encoded, and only the hop's new tokens re-induced, per run).
	// hop=1 is the extreme: a full ensemble run per pushed point. The CI
	// bench job records all of these — hop=1, the default hop above, and
	// hop=100 — in BENCH_stream.json per PR.
	const bufLen = 2000
	for _, hop := range []int{500, 100, 1} {
		b.Run(fmt.Sprintf("buflen=%d/hop=%d", bufLen, hop), func(b *testing.B) {
			s, err := egi.Stream(egi.StreamOptions{
				Window:       window,
				BufLen:       bufLen,
				Hop:          hop,
				EnsembleSize: benchSize,
				Seed:         benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			points := make([]float64, bufLen)
			for i := range points {
				points[i] = math.Sin(2*math.Pi*float64(i)/window) +
					0.3*math.Sin(float64(i)*0.7391)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Push(points[i%bufLen]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkManagerPush measures serving-layer throughput: the amortized
// per-point cost of pushing round-robin across N concurrent streams of one
// egi.Manager (per-stream locking, footprint roll-up after every push, and
// the event broker all included). Together with BenchmarkStreamPush it
// separates detector cost from serving overhead; the CI bench job tracks
// both in BENCH_stream.json.
func BenchmarkManagerPush(b *testing.B) {
	const (
		window = 100
		bufLen = 1000
	)
	for _, streams := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			m, err := egi.NewManager(egi.ManagerOptions{
				Stream: egi.StreamOptions{
					Window:       window,
					BufLen:       bufLen,
					EnsembleSize: benchSize,
					Seed:         benchSeed,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			ids := make([]string, streams)
			for i := range ids {
				ids[i] = fmt.Sprintf("s%02d", i)
			}
			points := make([]float64, bufLen)
			for i := range points {
				points[i] = math.Sin(2*math.Pi*float64(i)/window) +
					0.3*math.Sin(float64(i)*0.7391)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Push(ids[i%streams], points[(i/streams)%bufLen]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchWave precomputes length+pad points of the benchmarks' two-sinusoid
// signal so batch slices can wrap without a modulo per point.
func benchWave(length, pad, window int) []float64 {
	points := make([]float64, length+pad)
	for i := range points {
		points[i] = math.Sin(2*math.Pi*float64(i)/float64(window)) +
			0.3*math.Sin(float64(i)*0.7391)
	}
	return points
}

// BenchmarkStreamPushBatch measures the detector's batch ingest fast path:
// one PushBatchN per iteration instead of one Push per point. The ns/point
// metric is directly comparable with BenchmarkStreamPush's time column —
// the gap is the per-point call, bounds-check, and run-boundary accounting
// the batch path amortizes across each run segment.
func BenchmarkStreamPushBatch(b *testing.B) {
	const (
		window = 100
		bufLen = 1000
		batch  = 256
	)
	s, err := egi.Stream(egi.StreamOptions{
		Window:       window,
		BufLen:       bufLen,
		EnsembleSize: benchSize,
		Seed:         benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	points := benchWave(bufLen, batch, window)
	b.ResetTimer()
	off := 0
	for i := 0; i < b.N; i++ {
		if err := s.PushBatch(points[off : off+batch]); err != nil {
			b.Fatal(err)
		}
		off = (off + batch) % bufLen
	}
	b.StopTimer()
	pts := float64(b.N) * batch
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/pts, "ns/point")
	b.ReportMetric(pts/b.Elapsed().Seconds(), "points/s")
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManagerPushParallel is the contended serving benchmark:
// GOMAXPROCS producers push 256-point batches round-robin across N
// streams of one Manager, so it measures what BenchmarkManagerPush (one
// goroutine, one point per call) cannot — shard-map and accounting
// contention under parallel ingest. The aggregate points/s metric is the
// serving layer's headline number: with the sharded stream table it must
// scale with cores (the acceptance bar is ≥10× the serial per-point
// baseline at 32 streams on 8 cores).
//
// Each sub-benchmark pins GOMAXPROCS itself rather than relying on the
// -cpu flag: b.Run names are computed when the parent registers its
// children, before the harness applies each -cpu value, so a name built
// from runtime.GOMAXPROCS(0) would label every -cpu pass with the same
// (wrong) count — and after tools/benchjson strips the -cpu suffix,
// three different core counts would merge into one trajectory entry.
// Pinning inside the child makes the procs=N label truthful and turns
// any extra -cpu passes into additional samples of the same workload.
func BenchmarkManagerPushParallel(b *testing.B) {
	const (
		window = 100
		bufLen = 1000
		batch  = 256
	)
	for _, streams := range []int{1, 8, 32} {
		for _, procs := range []int{1, 4, 8} {
			benchManagerPushParallel(b, streams, procs, window, bufLen, batch)
		}
	}
}

// benchManagerPushParallel runs one (streams, procs) cell of the
// contended serving benchmark with GOMAXPROCS pinned to procs.
func benchManagerPushParallel(b *testing.B, streams, procs, window, bufLen, batch int) {
	b.Run(fmt.Sprintf("streams=%d/procs=%d", streams, procs), func(b *testing.B) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		m, err := egi.NewManager(egi.ManagerOptions{
			Stream: egi.StreamOptions{
				Window:       window,
				BufLen:       bufLen,
				EnsembleSize: benchSize,
				Seed:         benchSeed,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		ids := make([]string, streams)
		for i := range ids {
			ids[i] = fmt.Sprintf("s%02d", i)
			if err := m.Open(ids[i]); err != nil {
				b.Fatal(err)
			}
		}
		points := benchWave(bufLen, batch, window)
		var producer atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Stagger producers across the streams so every stream is
			// hit and neighboring producers mostly use different ids.
			n := int(producer.Add(1)) - 1
			off := 0
			for pb.Next() {
				if _, err := m.PushBatchN(ids[n%streams], points[off:off+batch]); err != nil {
					b.Error(err) // Error, not Fatal: safe off the main goroutine
					return
				}
				n++
				off = (off + batch) % bufLen
			}
		})
		b.StopTimer()
		pts := float64(b.N) * float64(batch)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/pts, "ns/point")
		b.ReportMetric(pts/b.Elapsed().Seconds(), "points/s")
	})
}

// BenchmarkRouterPushParallel is BenchmarkManagerPushParallel through
// the routed serving tier: the same GOMAXPROCS producers push the same
// 256-point batches round-robin across 32 streams, but the Manager is
// built with NewShardedManager(M), so every call resolves its shard by
// rendezvous hash and crosses a per-stream latch before it reaches a
// stream table. The shards=1 cell is the unrouted baseline (a sharded
// manager of one collapses to NewManager), so the delta to shards=4/8
// is the router's whole cost: on a single contended table the routing
// layer must be ~free, and once the per-shard tables are the bottleneck
// more shards must not slow ingest down. Sub-benchmarks pin GOMAXPROCS
// themselves for the same b.Run-naming reason as the manager benchmark.
func BenchmarkRouterPushParallel(b *testing.B) {
	const (
		window  = 100
		bufLen  = 1000
		batch   = 256
		streams = 32
	)
	for _, shards := range []int{1, 4, 8} {
		for _, procs := range []int{1, 4, 8} {
			benchRouterPushParallel(b, shards, streams, procs, window, bufLen, batch)
		}
	}
}

// benchRouterPushParallel runs one (shards, procs) cell of the routed
// serving benchmark with GOMAXPROCS pinned to procs.
func benchRouterPushParallel(b *testing.B, shards, streams, procs, window, bufLen, batch int) {
	b.Run(fmt.Sprintf("shards=%d/procs=%d", shards, procs), func(b *testing.B) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		m, err := egi.NewShardedManager(shards, egi.ManagerOptions{
			Stream: egi.StreamOptions{
				Window:       window,
				BufLen:       bufLen,
				EnsembleSize: benchSize,
				Seed:         benchSeed,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		ids := make([]string, streams)
		for i := range ids {
			ids[i] = fmt.Sprintf("s%02d", i)
			if err := m.Open(ids[i]); err != nil {
				b.Fatal(err)
			}
		}
		points := benchWave(bufLen, batch, window)
		var producer atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Stagger producers across the streams so every stream is
			// hit and neighboring producers mostly use different ids.
			n := int(producer.Add(1)) - 1
			off := 0
			for pb.Next() {
				if _, err := m.PushBatchN(ids[n%streams], points[off:off+batch]); err != nil {
					b.Error(err) // Error, not Fatal: safe off the main goroutine
					return
				}
				n++
				off = (off + batch) % bufLen
			}
		})
		b.StopTimer()
		pts := float64(b.N) * float64(batch)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/pts, "ns/point")
		b.ReportMetric(pts/b.Elapsed().Seconds(), "points/s")
	})
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationMultiResSAX quantifies the §6.2 claim: the shared
// multi-resolution discretization vs running the naive SAX per member.
func BenchmarkAblationMultiResSAX(b *testing.B) {
	s, err := gen.ECG(20000, 200, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	f, err := timeseries.NewFeatures(s)
	if err != nil {
		b.Fatal(err)
	}
	mr, err := sax.NewMultiResolver(10)
	if err != nil {
		b.Fatal(err)
	}
	var params []sax.Params
	for w := 2; w <= 6; w++ {
		for a := 2; a <= 5; a++ {
			params = append(params, sax.Params{W: w, A: a})
		}
	}
	b.Run("multires", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sax.DiscretizeMany(f, 200, params, mr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range params {
				if _, err := sax.NaiveDiscretize(s, 200, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationCombiner compares the paper's median combiner with the
// mean, and BenchmarkAblationNormalizer compares divide-by-max with
// min-max normalization, on the same member curves.
func BenchmarkAblationCombiner(b *testing.B) {
	benchCombine(b, "median", core.CombineMedian, core.NormalizeMax)
	benchCombine(b, "mean", core.CombineMean, core.NormalizeMax)
}

func BenchmarkAblationNormalizer(b *testing.B) {
	benchCombine(b, "max", core.CombineMedian, core.NormalizeMax)
	benchCombine(b, "minmax", core.CombineMedian, core.NormalizeMinMax)
}

func benchCombine(b *testing.B, name string, comb core.Combiner, norm core.Normalizer) {
	b.Run(name, func(b *testing.B) {
		d, err := ucrsim.ByName("Trace")
		if err != nil {
			b.Fatal(err)
		}
		det := eval.Ensemble(eval.EnsembleOptions{Size: benchSize, Combine: comb, Normalize: norm})
		var score float64
		for i := 0; i < b.N; i++ {
			ss, err := eval.NewSeriesSet(d, benchSeries, 1, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			ms, err := ss.Run(det, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			score = ms.AvgScore()
		}
		b.ReportMetric(score, "avg_score")
	})
}
