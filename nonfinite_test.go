package egi_test

import (
	"errors"
	"math"
	"testing"

	"egi"
)

// nonFiniteSeries injects NaN and ±Inf points into a copy of the
// quickstart series at a fixed stride, returning the corrupted series and
// the indices of the injected points.
func nonFiniteSeries() (corrupted []float64, injected []int) {
	series := quickstartSeries()
	corrupted = append([]float64(nil), series...)
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for i := 37; i < len(corrupted); i += 211 {
		corrupted[i] = bad[len(injected)%len(bad)]
		injected = append(injected, i)
	}
	return corrupted, injected
}

// TestStreamNonFiniteReject: the default policy fails the batch at the
// first non-finite point, with everything before it applied — the
// accepted count is the exact resume coordinate.
func TestStreamNonFiniteReject(t *testing.T) {
	corrupted, injected := nonFiniteSeries()
	s, err := egi.Stream(egi.StreamOptions{Window: 80, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.PushBatchN(corrupted)
	if !errors.Is(err, egi.ErrNonFinite) {
		t.Fatalf("PushBatchN err = %v, want ErrNonFinite", err)
	}
	if n != injected[0] {
		t.Fatalf("accepted %d points, want %d (index of first NaN)", n, injected[0])
	}
	if s.Total() != injected[0] {
		t.Fatalf("Total = %d after rejection, want %d", s.Total(), injected[0])
	}
	// A single non-finite Push is rejected the same way.
	if err := s.Push(math.Inf(1)); !errors.Is(err, egi.ErrNonFinite) {
		t.Fatalf("Push(+Inf) err = %v, want ErrNonFinite", err)
	}
	// The stream is not poisoned: finite points still flow.
	if err := s.Push(corrupted[0]); err != nil {
		t.Fatalf("finite push after rejection: %v", err)
	}
}

// TestStreamNonFiniteClamp: clamped non-finite points behave exactly as
// if the last finite value had been sent — bit-identical events and
// rankings versus a stream fed the manually repaired series.
func TestStreamNonFiniteClamp(t *testing.T) {
	corrupted, injected := nonFiniteSeries()
	repaired := append([]float64(nil), corrupted...)
	for _, i := range injected {
		repaired[i] = repaired[i-1] // injection never hits index 0
	}

	var got, want []egi.Anomaly
	opts := egi.StreamOptions{Window: 80, Seed: 42, NonFinite: egi.NonFiniteClamp,
		OnAnomaly: func(a egi.Anomaly) { got = append(got, a) }}
	s, err := egi.Stream(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NonFinite = egi.NonFiniteReject
	opts.OnAnomaly = func(a egi.Anomaly) { want = append(want, a) }
	ref, err := egi.Stream(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PushBatch(corrupted); err != nil {
		t.Fatalf("clamping stream rejected the batch: %v", err)
	}
	if err := ref.PushBatch(repaired); err != nil {
		t.Fatal(err)
	}
	if s.Total() != ref.Total() {
		t.Fatalf("Total = %d, want %d", s.Total(), ref.Total())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d events with clamping, %d with the repaired series", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestStreamNonFiniteDrop: dropped points vanish — the stream is
// bit-identical to one fed only the finite points, including leading
// non-finite points before any finite value has arrived.
func TestStreamNonFiniteDrop(t *testing.T) {
	corrupted, _ := nonFiniteSeries()
	// Lead with garbage: drop must discard these too (clamp has nothing
	// to hold yet and also drops them; reject would fail).
	corrupted = append([]float64{math.NaN(), math.Inf(-1)}, corrupted...)
	var finite []float64
	for _, x := range corrupted {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			finite = append(finite, x)
		}
	}

	var got, want []egi.Anomaly
	opts := egi.StreamOptions{Window: 80, Seed: 42, NonFinite: egi.NonFiniteDrop,
		OnAnomaly: func(a egi.Anomaly) { got = append(got, a) }}
	s, err := egi.Stream(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.NonFinite = egi.NonFiniteReject
	opts.OnAnomaly = func(a egi.Anomaly) { want = append(want, a) }
	ref, err := egi.Stream(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PushBatch(corrupted); err != nil {
		t.Fatalf("dropping stream rejected the batch: %v", err)
	}
	if err := ref.PushBatch(finite); err != nil {
		t.Fatal(err)
	}
	if s.Total() != ref.Total() {
		t.Fatalf("Total = %d (dropped points counted?), want %d", s.Total(), ref.Total())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d events with dropping, %d with the finite-only series", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestManagerNonFinite: the policy flows through the manager template,
// and PushBatchN reports the applied prefix on a rejection — the
// manager-level contract egiserve's "accepted" field relies on.
func TestManagerNonFinite(t *testing.T) {
	corrupted, injected := nonFiniteSeries()
	m, err := egi.NewManager(egi.ManagerOptions{
		Stream: egi.StreamOptions{Window: 80, Seed: 42}, // reject by default
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	n, err := m.PushBatchN("s", corrupted)
	if !errors.Is(err, egi.ErrNonFinite) {
		t.Fatalf("PushBatchN err = %v, want ErrNonFinite", err)
	}
	if n != injected[0] {
		t.Fatalf("accepted %d, want %d", n, injected[0])
	}
	st, err := m.StreamStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != int64(injected[0]) {
		t.Fatalf("stats.Points = %d, want %d", st.Points, injected[0])
	}

	// With a dropping template the same batch is consumed in full.
	md, err := egi.NewManager(egi.ManagerOptions{
		Stream: egi.StreamOptions{Window: 80, Seed: 42, NonFinite: egi.NonFiniteDrop},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	n, err = md.PushBatchN("s", corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(corrupted) {
		t.Fatalf("dropping manager consumed %d of %d", n, len(corrupted))
	}
	st, err = md.StreamStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != int64(len(corrupted)-len(injected)) {
		t.Fatalf("stats.Points = %d, want %d kept points", st.Points, len(corrupted)-len(injected))
	}
}
