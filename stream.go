package egi

import (
	"egi/internal/stream"
)

// NonFinitePolicy selects how a streaming detector treats NaN and ±Inf
// points at the ingest boundary. Real telemetry produces them — sensor
// dropouts encoded as NaN, log-of-zero infinities — and a policy decides
// per stream whether they are errors or noise.
type NonFinitePolicy = stream.NonFinitePolicy

// The non-finite ingest policies.
const (
	// NonFiniteReject (the default) rejects a non-finite point with
	// ErrNonFinite; nothing after it in the batch is applied.
	NonFiniteReject = stream.NonFiniteReject
	// NonFiniteClamp substitutes the most recent finite point, holding
	// the signal's last value through a dropout. Leading non-finite
	// points (no finite value yet) are dropped.
	NonFiniteClamp = stream.NonFiniteClamp
	// NonFiniteDrop silently skips non-finite points; stream positions
	// count only the points that were kept.
	NonFiniteDrop = stream.NonFiniteDrop
)

// ErrNonFinite is returned (wrapped) by Push/PushBatch when a NaN or ±Inf
// point arrives under the NonFiniteReject policy.
var ErrNonFinite = stream.ErrNonFinite

// StreamOptions configures Stream, the online detector. Only Window is
// required; zero values select defaults. The ensemble fields mean exactly
// what they mean in Options.
type StreamOptions struct {
	// Window is the sliding window length n — the scale of the anomalies
	// sought. Required.
	Window int
	// BufLen is the ring buffer capacity: every re-induction sees exactly
	// the last BufLen points, which is also the memory bound and the
	// horizon of Anomalies. Default 10x Window; minimum 4x Window.
	BufLen int
	// Hop is the number of points between ensemble re-inductions. The
	// default, BufLen-Window+1, matches the DetectChunked chunk stride
	// (amortized cost per point independent of BufLen); smaller hops
	// lower detection latency at proportionally higher cost.
	Hop int
	// Threshold is the stitched window-score level at or below which a
	// dip is reported through OnAnomaly, in (0, 1]. Scores are
	// normalized rule densities; lower = more anomalous. The zero value
	// selects the 0.2 default; use a tiny positive value to report only
	// near-zero-density windows.
	Threshold float64
	// AdaptiveQuantile, when set (in (0, 1)), makes the event threshold
	// adaptive: instead of the fixed Threshold, a window is reported
	// when its score falls at or below the running q-quantile of all
	// finalized window scores so far (e.g. 0.05 reports the lowest ~5%).
	// This tracks signals whose baseline density drifts, where any fixed
	// level is either deaf or noisy. The fixed Threshold still applies
	// while the quantile estimator warms up (its first max(5, ceil(2/q))
	// scores).
	AdaptiveQuantile float64
	// OnAnomaly, when non-nil, receives each confirmed anomaly event
	// synchronously, in stream order. Pos counts from the first point
	// pushed. Events are confirmed — an emitted anomaly never changes —
	// at a delay of roughly BufLen points behind the stream head; use a
	// smaller Hop and BufLen for tighter latency.
	OnAnomaly func(Anomaly)

	// NonFinite selects how NaN/±Inf points are treated: rejected with
	// ErrNonFinite (the default), clamped to the last finite value, or
	// dropped. See NonFinitePolicy.
	NonFinite NonFinitePolicy

	// RebaseEvery bounds how many hop runs a member's resumable grammar
	// may span before it is rebuilt over the live buffer alone. The zero
	// value selects the adaptive default — per-run induction at the
	// default Hop (preserving the DetectChunked identity), amortized
	// O(hop)-per-run induction with history capped at about two buffers
	// at smaller hops. K >= 1 rebases every K runs instead: larger K
	// keeps more cross-hop grammar context (rules may span up to K hops)
	// at proportionally more retained memory; K = 1 re-induces every run
	// from scratch, the pre-amortization behavior.
	RebaseEvery int

	// Ensemble knobs (see Options): zero values take the paper defaults.
	EnsembleSize int
	WMax, AMax   int
	Tau          float64
	TopK         int
	Seed         int64
}

// Streamer is a push-based anomaly detector over an unbounded series, with
// memory bounded by its ring buffer. Points go in through Push/PushBatch;
// confirmed anomalies come out through the OnAnomaly callback, and the
// current horizon's ranking through Anomalies. It is the online equivalent
// of DetectChunked: with the default Hop its stitched density curve is
// identical to DetectChunked's over the same points, and a Streamer whose
// buffer never overflows reproduces Detect exactly once Flush is called.
//
// A Streamer is not safe for concurrent use.
type Streamer struct {
	d *stream.Detector
}

// Stream creates a streaming detector.
//
// Quick start:
//
//	s, err := egi.Stream(egi.StreamOptions{
//		Window: 100,
//		OnAnomaly: func(a egi.Anomaly) {
//			fmt.Printf("anomaly at %d (len %d), density %.3f\n", a.Pos, a.Length, a.Density)
//		},
//	})
//	if err != nil { ... }
//	for x := range points {
//		if err := s.Push(x); err != nil { ... }
//	}
//	if err := s.Flush(); err != nil { ... }
func Stream(opts StreamOptions) (*Streamer, error) {
	d, err := stream.New(opts.config())
	if err != nil {
		return nil, err
	}
	return &Streamer{d: d}, nil
}

// config maps the public options onto the internal detector configuration
// — the one conversion point shared by Stream, RestoreStream and
// NewManager.
func (opts StreamOptions) config() stream.Config {
	cfg := stream.Config{
		Window:           opts.Window,
		BufLen:           opts.BufLen,
		Hop:              opts.Hop,
		Threshold:        opts.Threshold,
		AdaptiveQuantile: opts.AdaptiveQuantile,
		NonFinite:        opts.NonFinite,
		RebaseEvery:      opts.RebaseEvery,
		EnsembleSize:     opts.EnsembleSize,
		WMax:             opts.WMax,
		AMax:             opts.AMax,
		Tau:              opts.Tau,
		TopK:             opts.TopK,
		Seed:             opts.Seed,
	}
	if opts.OnAnomaly != nil {
		cb := opts.OnAnomaly
		cfg.OnEvent = func(e stream.Event) {
			cb(Anomaly{Pos: e.Pos, Length: e.Length, Density: e.Density})
		}
	}
	return cfg
}

// Snapshot serializes the streamer's complete resumable state into a
// versioned, checksummable payload. A streamer restored from it with
// RestoreStream (under the same options) continues the stream
// bit-identically — same events, same curve, same rankings — as if it had
// never stopped. Snapshotting does not disturb the streamer.
func (s *Streamer) Snapshot() []byte { return s.d.Snapshot() }

// RestoreStream reconstructs a streamer from a Snapshot payload. opts
// must carry the same detection configuration the snapshot was taken
// under (verified against a fingerprint embedded in the payload); only
// OnAnomaly may differ.
func RestoreStream(opts StreamOptions, snapshot []byte) (*Streamer, error) {
	d, err := stream.Restore(opts.config(), snapshot)
	if err != nil {
		return nil, err
	}
	return &Streamer{d: d}, nil
}

// Push appends one point to the stream, re-inducing the ensemble over the
// buffer when a hop boundary is crossed (which may invoke OnAnomaly).
// Non-finite points are handled per the NonFinite policy: rejected with
// ErrNonFinite by default.
func (s *Streamer) Push(x float64) error { return s.d.Push(x) }

// PushBatch pushes the points in order, stopping at the first error. It
// is bit-identical to calling Push per point but substantially cheaper:
// points between hop boundaries are appended to the ring in bulk, with
// the per-point boundary checks amortized across each run segment.
func (s *Streamer) PushBatch(xs []float64) error { return s.d.PushBatch(xs) }

// PushBatchN pushes the points in order, stopping at the first error, and
// reports how many were consumed. On error the count is the index of the
// offending point — everything before it is applied — so a caller can
// resend exactly the unapplied remainder.
func (s *Streamer) PushBatchN(xs []float64) (int, error) { return s.d.PushBatchN(xs) }

// Flush finishes the stream: the not-yet-covered tail is processed, every
// remaining window score is finalized, and a final OnAnomaly call is made
// for a dip still open at the end. After Flush, Push returns an error but
// Anomalies and Total remain usable. Flush is idempotent.
func (s *Streamer) Flush() error { return s.d.Flush() }

// Total returns the number of points pushed so far.
func (s *Streamer) Total() int { return s.d.Total() }

// MemoryFootprint is the streamer's retained-memory accounting in bytes:
// the ring buffer, the detection engine's member pipelines, resumable
// induction state and pooled scratch, and the stitch buffers — every
// bounded structure the detector owns, so under sustained pushing the
// footprint climbs to a plateau independent of the stream length. The number is a
// deterministic accounting of the owned buffers (not Go allocator truth);
// egi.Manager rolls it up across streams to enforce a byte budget.
func (s *Streamer) MemoryFootprint() int64 { return s.d.MemoryFootprint() }

// Anomalies returns the current top-K anomalies within the detector's
// retained horizon (the ring buffer span), ranked most anomalous first —
// the streaming analogue of Result.Anomalies. Anomalies that scrolled out
// of the horizon were already reported through OnAnomaly. It returns an
// error until the first re-induction has covered at least one window.
func (s *Streamer) Anomalies() ([]Anomaly, error) {
	evs, err := s.d.Anomalies()
	if err != nil {
		return nil, err
	}
	out := make([]Anomaly, len(evs))
	for i, e := range evs {
		out[i] = Anomaly{Pos: e.Pos, Length: e.Length, Density: e.Density}
	}
	return out, nil
}
