// Package egi is ensemble grammar induction for time series anomaly
// detection — a Go implementation of Gao, Lin & Brif, "Ensemble Grammar
// Induction For Detecting Anomalies in Time Series" (EDBT 2020).
//
// The detector finds anomalous subsequences of a univariate time series
// without committing to a single discretization parameter choice: it runs
// the grammar-induction pipeline (SAX discretization → numerosity
// reduction → Sequitur → rule density curve) for many random parameter
// combinations, keeps the most informative rule density curves, and
// combines them into an ensemble curve whose minima are the anomalies.
// The method is linear in the series length.
//
// Quick start:
//
//	result, err := egi.Detect(series, egi.Options{Window: 100})
//	if err != nil { ... }
//	for _, a := range result.Anomalies {
//		fmt.Printf("anomaly at %d (len %d), density %.3f\n", a.Pos, a.Length, a.Density)
//	}
//
// Besides the ensemble detector, the package exposes the single-run
// grammar-induction detector (DetectSingle) and the distance-based discord
// baseline (Discords) the paper compares against.
package egi

import (
	"egi/internal/core"
	"egi/internal/grammar"
	"egi/internal/matrixprofile"
	"egi/internal/rra"
	"egi/internal/sax"
	"egi/internal/timeseries"
)

// Anomaly is one detected anomalous subsequence.
type Anomaly struct {
	// Pos is the start index of the subsequence in the input series.
	Pos int
	// Length is the subsequence length (the sliding window length).
	Length int
	// Density is the mean ensemble rule density over the subsequence;
	// lower means more anomalous. For Discords this field instead holds
	// the 1-NN distance, where higher means more anomalous.
	Density float64
}

// Options configures Detect. Only Window is required; zero values select
// the paper's defaults (N=50 members, w,a ∈ [2,10], τ=40%, top 3).
type Options struct {
	// Window is the sliding window length n — roughly the scale of the
	// anomalies sought, e.g. one cycle of a periodic signal. Required.
	Window int
	// EnsembleSize is the number N of random (w,a) parameter combinations.
	EnsembleSize int
	// WMax and AMax bound the sampled PAA sizes and alphabet sizes.
	WMax, AMax int
	// Tau is the ensemble selectivity: the fraction of rule density
	// curves, ranked by descending standard deviation, kept (0 < τ <= 1).
	Tau float64
	// TopK is the number of ranked anomalies to return.
	TopK int
	// Seed makes detection deterministic; equal seeds, equal results.
	Seed int64
}

// Result is the outcome of an ensemble detection.
type Result struct {
	// Anomalies are the ranked candidates, most anomalous first. They
	// never overlap one another.
	Anomalies []Anomaly
	// Curve is the ensemble rule density curve, one value in [0,1] per
	// input point; anomalies live at its minima.
	Curve []float64
}

// Detect runs ensemble grammar induction (Algorithm 1 of the paper) on the
// series. It validates the input (non-empty, finite, longer than the
// window) and returns an error rather than panicking on degenerate input;
// a constant series yields ErrNoUsableCurves from the core package.
func Detect(series []float64, opts Options) (*Result, error) {
	cfg := core.Config{
		Window: opts.Window,
		Size:   opts.EnsembleSize,
		WMax:   opts.WMax,
		AMax:   opts.AMax,
		Tau:    opts.Tau,
		TopK:   opts.TopK,
		Seed:   opts.Seed,
	}
	res, err := core.Detect(timeseries.Series(series), cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Anomalies: fromCandidates(res.Candidates),
		Curve:     res.Curve,
	}, nil
}

// DetectSingle runs the single-parameter grammar-induction detector of
// GrammarViz (§5 of the paper) with PAA size w and alphabet size a. It is
// the building block the ensemble aggregates, exposed for comparison and
// for users who have tuned parameters.
func DetectSingle(series []float64, window, w, a, topK int) (*Result, error) {
	res, err := grammar.Detect(timeseries.Series(series), window, sax.Params{W: w, A: a}, nil, topK)
	if err != nil {
		return nil, err
	}
	return &Result{
		Anomalies: fromCandidates(res.Candidates),
		Curve:     res.Curve,
	}, nil
}

// Discords finds the top-k time series discords — subsequences with the
// largest 1-NN z-normalized distances — using the STOMP matrix profile,
// the quadratic-time baseline of the paper. In the returned anomalies,
// Density holds the 1-NN distance (higher = more anomalous).
func Discords(series []float64, window, k int) ([]Anomaly, error) {
	p, err := matrixprofile.STOMP(timeseries.Series(series), window, 0)
	if err != nil {
		return nil, err
	}
	ds := p.TopDiscords(k)
	out := make([]Anomaly, len(ds))
	for i, d := range ds {
		out[i] = Anomaly{Pos: d.Pos, Length: d.Length, Density: d.Dist}
	}
	return out, nil
}

// DetectChunked is Detect for very long series: the input is processed in
// overlapping chunks of chunkLen points, bounding memory to one chunk at
// a time, and the per-chunk ensemble curves are stitched before ranking.
// With chunkLen >= len(series) it is identical to Detect.
func DetectChunked(series []float64, opts Options, chunkLen int) (*Result, error) {
	cfg := core.Config{
		Window: opts.Window,
		Size:   opts.EnsembleSize,
		WMax:   opts.WMax,
		AMax:   opts.AMax,
		Tau:    opts.Tau,
		TopK:   opts.TopK,
		Seed:   opts.Seed,
	}
	res, err := core.DetectChunked(timeseries.Series(series), cfg, chunkLen)
	if err != nil {
		return nil, err
	}
	return &Result{
		Anomalies: fromCandidates(res.Candidates),
		Curve:     res.Curve,
	}, nil
}

// VariableLengthAnomalies runs the Rare Rule Anomaly (RRA) algorithm of
// Senin et al. (EDBT 2015), the paper's predecessor method: grammar rule
// intervals become variable-length discord candidates, refined by an exact
// 1-NN distance search. Unlike Detect, the returned anomalies have their
// natural lengths (not the window length); Density holds the refined 1-NN
// distance, where higher means more anomalous.
func VariableLengthAnomalies(series []float64, window, topK int) ([]Anomaly, error) {
	as, err := rra.Detect(timeseries.Series(series), rra.Config{Window: window, TopK: topK})
	if err != nil {
		return nil, err
	}
	out := make([]Anomaly, len(as))
	for i, a := range as {
		out[i] = Anomaly{Pos: a.Pos, Length: a.Length, Density: a.Dist}
	}
	return out, nil
}

// Motif is a repeated pattern: the time spans of all occurrences of one
// grammar rule. Grammar induction discovers motifs and anomalies from the
// same structure — rules that repeat are motifs, stretches covered by no
// rule are anomalies.
type Motif struct {
	// Rule renders the underlying grammar rule, e.g. "R2 -> ab bc aa".
	Rule string
	// Occurrences holds the [start, end) spans in the input series.
	Occurrences [][2]int
}

// Motifs discovers the top-k most frequent repeated patterns at scale
// window, using a single grammar-induction run with PAA size w and
// alphabet size a (the GrammarViz motif view the paper builds on).
func Motifs(series []float64, window, w, a, k int) ([]Motif, error) {
	ms, err := grammar.FindMotifs(series, window, sax.Params{W: w, A: a}, k)
	if err != nil {
		return nil, err
	}
	out := make([]Motif, len(ms))
	for i, m := range ms {
		out[i] = Motif{Rule: m.RuleString, Occurrences: m.Occurrences}
	}
	return out, nil
}

func fromCandidates(cands []grammar.Candidate) []Anomaly {
	out := make([]Anomaly, len(cands))
	for i, c := range cands {
		out[i] = Anomaly{Pos: c.Pos, Length: c.Length, Density: c.Density}
	}
	return out
}
