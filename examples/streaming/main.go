// Streaming: detect anomalies in a continuously arriving signal with the
// push-based egi.Stream API, and show that the online detector agrees with
// batch detection while touching each point only as it arrives.
//
// The stream is a noisy sine with three structurally different cycles
// planted along the way. The detector holds only a small ring buffer —
// far less than the whole stream — and reports each anomaly shortly after
// its neighborhood slides out of the buffer.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"egi"
)

const (
	length = 20000
	period = 80
	bufLen = 800
)

var planted = []int{4000, 11000, 17500}

func point(rng *rand.Rand, i int) float64 {
	for _, p := range planted {
		if i >= p && i < p+period {
			x := float64(i-p) / period
			return 1.5 - 3*math.Abs(x-0.5) + 0.1*rng.NormFloat64()
		}
	}
	return math.Sin(2*math.Pi*float64(i)/period) + 0.1*rng.NormFloat64()
}

func main() {
	fmt.Printf("streaming %d points through a %d-point buffer (%.1f%% of the stream)\n",
		length, bufLen, 100*float64(bufLen)/length)
	fmt.Printf("planted anomalies at %v, length %d each\n\n", planted, period)

	s, err := egi.Stream(egi.StreamOptions{
		Window: period,
		BufLen: bufLen,
		Seed:   42,
		OnAnomaly: func(a egi.Anomaly) {
			fmt.Printf("event: anomaly at %d (len %d), density %.4f%s\n",
				a.Pos, a.Length, a.Density, marker(a))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Points arrive one at a time; the detector re-induces the ensemble
	// over its buffer once per hop, so per-point cost stays O(1).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < length; i++ {
		if err := s.Push(point(rng, i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		log.Fatal(err)
	}

	// The final ranking covers the retained horizon — the tail of the
	// stream; earlier anomalies were already reported as events above.
	tops, err := s.Anomalies()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop anomalies within the final buffer horizon:")
	for rank, a := range tops {
		fmt.Printf("rank %d: position %d, length %d, density %.4f%s\n",
			rank+1, a.Pos, a.Length, a.Density, marker(a))
	}
}

func marker(a egi.Anomaly) string {
	for _, p := range planted {
		if a.Pos < p+period && p < a.Pos+a.Length {
			return "  <-- planted"
		}
	}
	return ""
}
