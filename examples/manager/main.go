// Multi-stream serving with egi.Manager: forty independent sensors push
// interleaved batches through one manager under a shared memory budget,
// a single subscription receives every confirmed anomaly tagged with its
// stream id, and idle streams are evicted with their memory reclaimed.
// This is the library-level shape of what cmd/egiserve exposes over HTTP.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"egi"
)

const (
	period   = 60
	nStreams = 40
	length   = 6000
)

// sensor synthesizes one stream's data: a noisy sine with an anomaly
// planted at a per-stream position.
func sensor(id int) []float64 {
	rng := rand.New(rand.NewSource(int64(1000 + id)))
	anomaly := 2000 + 97*id
	s := make([]float64, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/period) + 0.05*rng.NormFloat64()
	}
	for i := anomaly; i < anomaly+period && i < length; i++ {
		x := float64(i-anomaly) / period
		s[i] = 1.2 - 2.4*math.Abs(x-0.5) + 0.05*rng.NormFloat64()
	}
	return s
}

func main() {
	m, err := egi.NewManager(egi.ManagerOptions{
		Stream:     egi.StreamOptions{Window: period, BufLen: 8 * period, Seed: 42},
		MaxStreams: nStreams,
		MaxBytes:   256 << 20,
		IdleAfter:  time.Second,
	})
	if err != nil {
		panic(err)
	}

	// One subscription sees every stream's confirmed events.
	events, cancel := m.Subscribe("", 256)
	defer cancel()
	detected := make(map[string][]egi.StreamEvent)
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for ev := range events {
			detected[ev.Stream] = append(detected[ev.Stream], ev)
		}
	}()

	// Forty producers push their sensors' batches concurrently; the
	// manager serializes per stream and accounts memory across streams.
	var wg sync.WaitGroup
	for id := 0; id < nStreams; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := fmt.Sprintf("sensor-%02d", id)
			data := sensor(id)
			for i := 0; i < len(data); i += 250 {
				if err := m.PushBatch(name, data[i:i+250]); err != nil {
					panic(err)
				}
			}
		}(id)
	}
	wg.Wait()

	st := m.Stats()
	fmt.Printf("%d streams, %.1f MiB total footprint (budget %.0f MiB)\n",
		len(st.Streams), float64(st.TotalBytes)/(1<<20), 256.0)

	// Close flushes every stream — the remaining confirmed events arrive
	// before the subscription channel closes.
	if err := m.Close(); err != nil {
		panic(err)
	}
	<-consumed

	ids := make([]string, 0, len(detected))
	for id := range detected {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, ev := range detected[id] {
			fmt.Printf("%s: anomaly at %d (len %d, density %.3f)\n",
				id, ev.Anomaly.Pos, ev.Anomaly.Length, ev.Anomaly.Density)
		}
	}
}
