// Multiple-anomaly detection (§7.5 of the paper): long star-light-curve
// series with two planted anomalies each; the ensemble's top-3 candidates
// should cover both. Reproduces the experiment's protocol on ten series.
//
// Run with:
//
//	go run ./examples/multianomaly
package main

import (
	"fmt"
	"log"
	"math/rand"

	"egi"
	"egi/internal/ucrsim"
)

func main() {
	d, err := ucrsim.ByName("StarLightCurve")
	if err != nil {
		log.Fatal(err)
	}

	both, one := 0, 0
	for si := 0; si < 10; si++ {
		// 40 normal instances + 2 planted anomalies = 43008 points, the
		// paper's series length for this experiment.
		planted, err := d.GenerateMulti(rand.New(rand.NewSource(int64(si))), 40, 2)
		if err != nil {
			log.Fatal(err)
		}
		res, err := egi.Detect(planted.Series, egi.Options{
			Window: d.SegmentLength,
			Seed:   int64(si),
		})
		if err != nil {
			log.Fatal(err)
		}
		detected := 0
		for _, gt := range planted.Anomalies {
			for _, a := range res.Anomalies {
				if a.Pos < gt.Pos+gt.Length && gt.Pos < a.Pos+a.Length {
					detected++
					break
				}
			}
		}
		fmt.Printf("series %d (%d points): detected %d of %d planted anomalies\n",
			si, len(planted.Series), detected, len(planted.Anomalies))
		switch detected {
		case 2:
			both++
		case 1:
			one++
		}
	}
	fmt.Printf("\nsummary: both anomalies in %d/10 series, exactly one in %d/10\n", both, one)
}
