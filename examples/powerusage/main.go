// Power usage case study (§7.4 of the paper): detect anomalous events in
// a very long fridge-freezer electricity usage trace with a one-cycle
// window. The series contains two planted anomalies of different kinds and
// lengths — a distorted compressor cycle and an episode of spikes — which
// is exactly the variable-length situation that makes fixed-length discord
// search awkward and the grammar ensemble attractive.
//
// Run with:
//
//	go run ./examples/powerusage            # 150k points
//	go run ./examples/powerusage -full      # the paper's 600k points
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"egi"
	"egi/internal/gen"
)

func main() {
	full := flag.Bool("full", false, "use the paper's 600k-point series")
	flag.Parse()

	length := 150000
	if *full {
		length = 600000
	}
	fs, err := gen.FridgeFreezer(length, 2020)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series: %d points; window: %d (one compressor cycle)\n", length, fs.CycleLen)
	for _, a := range fs.Anomalies {
		fmt.Printf("planted %-16s at %7d, length %d\n", a.Kind, a.Pos, a.Length)
	}
	fmt.Println()

	start := time.Now()
	res, err := egi.Detect(fs.Series, egi.Options{
		Window: fs.CycleLen,
		TopK:   2,
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection took %.1fs\n", time.Since(start).Seconds())

	for rank, a := range res.Anomalies {
		verdict := "does not match a planted anomaly"
		for _, gt := range fs.Anomalies {
			if a.Pos < gt.Pos+gt.Length && gt.Pos < a.Pos+a.Length {
				verdict = "matches the planted " + gt.Kind
			}
		}
		fmt.Printf("top-%d anomaly at %d (density %.4f): %s\n", rank+1, a.Pos, a.Density, verdict)
	}
}
