// ECG anomaly detection: find a premature-beat-like anomaly in a long
// synthetic electrocardiogram — the Fig. 4 scenario of the paper — and
// compare the ensemble detector against the single-run detector and the
// distance-based discord baseline.
//
// Run with:
//
//	go run ./examples/ecg
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"egi"
	"egi/internal/gen"
)

const beat = 200 // nominal beat length in samples

func main() {
	// 40,000 samples (~200 beats) of synthetic ECG.
	series, err := gen.ECG(40000, beat, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Plant a premature, malformed beat: the QRS complex arrives early and
	// inverted, like the premature heart beat highlighted in the paper.
	rng := rand.New(rand.NewSource(3))
	anomalyPos := 23000
	for i := 0; i < beat; i++ {
		x := float64(i) / beat
		d := (x - 0.3) / 0.04
		series[anomalyPos+i] = -1.1*math.Exp(-0.5*d*d) + 0.4*x + 0.03*rng.NormFloat64()
	}
	fmt.Printf("planted premature beat at %d (length %d)\n\n", anomalyPos, beat)

	report := func(name string, anomalies []egi.Anomaly) {
		fmt.Printf("%s:\n", name)
		for rank, a := range anomalies {
			marker := ""
			if a.Pos < anomalyPos+beat && anomalyPos < a.Pos+a.Length {
				marker = "  <-- the planted beat"
			}
			fmt.Printf("  rank %d: position %d, score %.4f%s\n", rank+1, a.Pos, a.Density, marker)
		}
		fmt.Println()
	}

	// Ensemble grammar induction (linear time).
	res, err := egi.Detect(series, egi.Options{Window: beat, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	report("ensemble grammar induction", res.Anomalies)

	// A single fixed-parameter run — this is what the ensemble improves on
	// when the parameter guess is wrong.
	single, err := egi.DetectSingle(series, beat, 4, 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	report("single run (w=4, a=4)", single.Anomalies)

	// Distance-based discords (quadratic time).
	discords, err := egi.Discords(series, beat, 3)
	if err != nil {
		log.Fatal(err)
	}
	report("STOMP discords", discords)
}
