// Motif discovery: the flip side of grammar-based anomaly detection.
// Grammar rules that repeat are motifs; stretches no rule covers are
// anomalies. This example finds both in one synthetic power-usage series
// using the public egi API.
//
// Run with:
//
//	go run ./examples/motifs
package main

import (
	"fmt"
	"log"

	"egi"
	"egi/internal/gen"
)

func main() {
	// Dishwasher-style power cycles: 20 cycles, one anomalously short.
	ds, err := gen.Dishwasher(20, 200, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series: %d points, cycle length %d, anomalous cycle at %d\n\n",
		len(ds.Series), ds.CycleLen, ds.Anomaly.Pos)

	// Motifs: the repeated cycle structure.
	motifs, err := egi.Motifs(ds.Series, ds.CycleLen, 4, 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top motifs (repeated patterns):")
	for rank, m := range motifs {
		fmt.Printf("  %d. %s — %d occurrences, first at %d..%d\n",
			rank+1, m.Rule, len(m.Occurrences), m.Occurrences[0][0], m.Occurrences[0][1])
	}

	// Anomalies: what the motifs do NOT cover.
	res, err := egi.Detect(ds.Series, egi.Options{Window: ds.CycleLen, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop anomalies (rarely-covered subsequences):")
	for rank, a := range res.Anomalies {
		marker := ""
		if a.Pos < ds.Anomaly.Pos+ds.Anomaly.Length && ds.Anomaly.Pos < a.Pos+a.Length {
			marker = "  <-- the short cycle"
		}
		fmt.Printf("  %d. position %d, density %.4f%s\n", rank+1, a.Pos, a.Density, marker)
	}
}
