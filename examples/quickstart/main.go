// Quickstart: detect a planted anomaly in a noisy periodic signal with the
// ensemble detector, using only the public egi API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"egi"
)

func main() {
	// Build a noisy sine wave with one structurally different cycle: a
	// triangular pulse replacing the sinusoid at position 2000.
	const (
		length  = 4000
		period  = 80
		planted = 2000
	)
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, length)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/period) + 0.1*rng.NormFloat64()
	}
	for i := planted; i < planted+period; i++ {
		x := float64(i-planted) / period
		series[i] = 1.5 - 3*math.Abs(x-0.5) + 0.1*rng.NormFloat64()
	}

	// Detect. Window = one cycle; everything else uses the paper's
	// defaults (50 ensemble members, w,a in [2,10], tau = 40%).
	result, err := egi.Detect(series, egi.Options{Window: period, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planted anomaly: position %d, length %d\n\n", planted, period)
	for rank, a := range result.Anomalies {
		marker := ""
		if a.Pos < planted+period && planted < a.Pos+a.Length {
			marker = "  <-- overlaps the planted anomaly"
		}
		fmt.Printf("rank %d: position %d, length %d, density %.4f%s\n",
			rank+1, a.Pos, a.Length, a.Density, marker)
	}

	// The ensemble rule density curve is returned too; its minimum sits
	// inside the anomaly.
	argmin, min := 0, math.Inf(1)
	for i, v := range result.Curve {
		if v < min {
			argmin, min = i, v
		}
	}
	fmt.Printf("\ncurve minimum %.4f at position %d\n", min, argmin)
}
