package egi_test

import (
	"math"
	"math/rand"
	"testing"

	"egi"
)

// quickstartSeries reproduces examples/quickstart: a noisy sine with one
// triangular pulse planted at position 2000.
func quickstartSeries() []float64 {
	const (
		length  = 4000
		period  = 80
		planted = 2000
	)
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, length)
	for i := range series {
		series[i] = math.Sin(2*math.Pi*float64(i)/period) + 0.1*rng.NormFloat64()
	}
	for i := planted; i < planted+period; i++ {
		x := float64(i-planted) / period
		series[i] = 1.5 - 3*math.Abs(x-0.5) + 0.1*rng.NormFloat64()
	}
	return series
}

// TestStreamMatchesDetectOnQuickstart: pushing the quickstart series
// point-by-point through a stream whose buffer holds it finds exactly the
// same top-3 anomalies as batch Detect — positions, lengths and densities.
func TestStreamMatchesDetectOnQuickstart(t *testing.T) {
	series := quickstartSeries()
	const period = 80

	batch, err := egi.Detect(series, egi.Options{Window: period, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	s, err := egi.Stream(egi.StreamOptions{Window: period, BufLen: len(series), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range series {
		if err := s.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Anomalies()
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(batch.Anomalies) {
		t.Fatalf("stream found %d anomalies, batch %d", len(got), len(batch.Anomalies))
	}
	for i := range got {
		if got[i] != batch.Anomalies[i] {
			t.Errorf("anomaly %d: stream %+v, batch %+v", i, got[i], batch.Anomalies[i])
		}
	}
	if got[0].Pos >= 2000+period || got[0].Pos+got[0].Length <= 2000 {
		t.Errorf("top anomaly %+v does not cover the planted pulse at 2000", got[0])
	}
}

// TestStreamBoundedBufferReportsScrolledAnomaly: with a buffer a fraction
// of the stream, the planted anomaly is reported as an event by the time
// the stream ends even though it left the buffer long before.
func TestStreamBoundedBufferReportsScrolledAnomaly(t *testing.T) {
	series := quickstartSeries()
	const period = 80

	var events []egi.Anomaly
	s, err := egi.Stream(egi.StreamOptions{
		Window:    period,
		BufLen:    800,
		Seed:      42,
		OnAnomaly: func(a egi.Anomaly) { events = append(events, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range events {
		if e.Pos < 2000+period && 2000 < e.Pos+e.Length {
			found = true
		}
	}
	if !found {
		t.Errorf("planted anomaly at 2000 not covered by any event: %v", events)
	}
}
