package egi_test

import (
	"fmt"
	"math"
	"sort"

	"egi"
)

// exampleSeries synthesizes a clean periodic signal with one anomalous
// pulse planted at position 1200 — deterministic, so the example outputs
// are stable.
func exampleSeries() []float64 {
	const period, anomaly = 60, 1200
	s := make([]float64, 3000)
	for i := range s {
		s[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	for i := anomaly; i < anomaly+period; i++ {
		x := float64(i-anomaly)/period - 0.5
		s[i] = 1.2 - 2.4*math.Abs(x)
	}
	return s
}

// ExampleDetect runs the batch ensemble detector over a series with one
// planted anomaly and prints the top-ranked finding.
func ExampleDetect() {
	series := exampleSeries()
	result, err := egi.Detect(series, egi.Options{Window: 60, Seed: 1})
	if err != nil {
		fmt.Println("detect:", err)
		return
	}
	top := result.Anomalies[0]
	fmt.Printf("top anomaly near 1200: pos in [1140,1260] = %v, length = %d\n",
		top.Pos >= 1140 && top.Pos <= 1260, top.Length)
	// Output:
	// top anomaly near 1200: pos in [1140,1260] = true, length = 60
}

// ExampleStream pushes the same series through the online detector one
// point at a time; the planted anomaly is reported as a confirmed event
// while the stream is still running, with memory bounded by the ring
// buffer.
func ExampleStream() {
	var events []egi.Anomaly
	s, err := egi.Stream(egi.StreamOptions{
		Window: 60,
		BufLen: 600, // memory bound: the detector retains 600 points
		Seed:   1,
		OnAnomaly: func(a egi.Anomaly) {
			events = append(events, a)
		},
	})
	if err != nil {
		fmt.Println("stream:", err)
		return
	}
	for _, x := range exampleSeries() {
		if err := s.Push(x); err != nil {
			fmt.Println("push:", err)
			return
		}
	}
	if err := s.Flush(); err != nil {
		fmt.Println("flush:", err)
		return
	}
	ok := len(events) > 0
	for _, e := range events {
		ok = ok && e.Pos >= 1140 && e.Pos <= 1260 && e.Length == 60
	}
	fmt.Printf("confirmed events near 1200: %v\n", ok)
	// Output:
	// confirmed events near 1200: true
}

// ExampleManager serves three independent streams through one Manager:
// each stream gets the anomaly planted at a different position, one
// subscription receives every confirmed event tagged with its stream id,
// and Close flushes all streams before the event channel ends.
func ExampleManager() {
	m, err := egi.NewManager(egi.ManagerOptions{
		Stream:   egi.StreamOptions{Window: 60, BufLen: 600, Seed: 1},
		MaxBytes: 64 << 20, // shared memory budget for all streams
	})
	if err != nil {
		fmt.Println("manager:", err)
		return
	}
	events, cancel := m.Subscribe("", 64) // "" = all streams
	defer cancel()
	firstEvent := map[string]int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			if _, seen := firstEvent[ev.Stream]; !seen {
				firstEvent[ev.Stream] = ev.Anomaly.Pos
			}
		}
	}()

	base := exampleSeries()
	for i, id := range []string{"sensor-a", "sensor-b", "sensor-c"} {
		series := make([]float64, len(base))
		copy(series, base)
		// Move the pulse: clear it at 1200, replant at 1200+300*i.
		for j := 1200; j < 1260; j++ {
			series[j] = math.Sin(2 * math.Pi * float64(j) / 60)
		}
		at := 1200 + 300*i
		for j := at; j < at+60; j++ {
			x := float64(j-at)/60 - 0.5
			series[j] = 1.2 - 2.4*math.Abs(x)
		}
		if err := m.PushBatch(id, series); err != nil {
			fmt.Println("push:", err)
			return
		}
	}
	if err := m.Close(); err != nil { // flushes every stream first
		fmt.Println("close:", err)
		return
	}
	<-done

	ids := make([]string, 0, len(firstEvent))
	for id := range firstEvent {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		at := 1200 + 300*(int(id[len(id)-1]-'a'))
		near := firstEvent[id] >= at-60 && firstEvent[id] <= at+60
		fmt.Printf("%s: event near %d = %v\n", id, at, near)
	}
	// Output:
	// sensor-a: event near 1200 = true
	// sensor-b: event near 1500 = true
	// sensor-c: event near 1800 = true
}
