package egi

import (
	"errors"
	"sync"
)

// DefaultEventBuffer is the capacity of a ConcurrentStreamer's event
// channel when ConcurrentStream is not given one.
const DefaultEventBuffer = 256

// ErrConcurrentCallback is returned by ConcurrentStream when OnAnomaly is
// set: the concurrent wrapper delivers events through its channel instead.
var ErrConcurrentCallback = errors.New("egi: ConcurrentStream delivers events via Events(); OnAnomaly must be nil")

// ConcurrentStreamer is a goroutine-safe Streamer: many producers can Push
// into one detector concurrently, and confirmed anomalies are delivered
// through a channel instead of a callback. Internally every mutating call
// holds one mutex (the underlying detector is strictly sequential — points
// are totally ordered by whoever wins the lock), so this wrapper is for
// fan-in convenience, not for parallel speedup of a single stream.
//
//	cs, _ := egi.ConcurrentStream(egi.StreamOptions{Window: 100}, 0)
//	go func() {
//		for a := range cs.Events() {
//			log.Printf("anomaly at %d", a.Pos)
//		}
//	}()
//	// ... many goroutines: cs.Push(x) ...
//	cs.Flush() // closes Events
//
// Events are handed to the channel outside the detector lock, so the
// consumer may freely call Total, Anomalies or any other method from its
// receive loop. If the channel buffer fills, the producer that generated
// the surplus events blocks until the consumer catches up (backpressure,
// never loss) — but other producers and readers are not held up.
type ConcurrentStreamer struct {
	mu      sync.Mutex // guards s and pending
	s       *Streamer
	pending []Anomaly // events emitted under mu, awaiting delivery
	spare   []Anomaly // recycled backing array for pending

	sendMu sync.Mutex // serializes channel sends and close
	events chan Anomaly
	closed bool // events closed; guarded by sendMu
}

// ConcurrentStream creates a goroutine-safe streaming detector. eventBuf
// sets the event channel capacity; <= 0 selects DefaultEventBuffer.
// opts.OnAnomaly must be nil — events arrive on Events().
func ConcurrentStream(opts StreamOptions, eventBuf int) (*ConcurrentStreamer, error) {
	if opts.OnAnomaly != nil {
		return nil, ErrConcurrentCallback
	}
	if eventBuf <= 0 {
		eventBuf = DefaultEventBuffer
	}
	cs := &ConcurrentStreamer{events: make(chan Anomaly, eventBuf)}
	opts.OnAnomaly = func(a Anomaly) { cs.pending = append(cs.pending, a) }
	s, err := Stream(opts)
	if err != nil {
		return nil, err
	}
	cs.s = s
	return cs, nil
}

// Events returns the channel on which confirmed anomalies arrive, in
// stream order. It is closed by Flush.
func (cs *ConcurrentStreamer) Events() <-chan Anomaly { return cs.events }

// drain moves pending events onto the channel. It runs outside cs.mu (so
// a full channel never wedges the detector) and under cs.sendMu (so sends
// from racing producers stay in stream order: each drainer flushes the
// whole queue, and the queue is FIFO).
func (cs *ConcurrentStreamer) drain() {
	cs.sendMu.Lock()
	defer cs.sendMu.Unlock()
	for {
		cs.mu.Lock()
		batch := cs.pending
		cs.pending = cs.spare[:0]
		cs.spare = batch[:0]
		cs.mu.Unlock()
		if len(batch) == 0 {
			return
		}
		if cs.closed {
			return // post-Flush stragglers: nothing may be sent anymore
		}
		for _, a := range batch {
			cs.events <- a
		}
	}
}

// Push appends one point to the stream. Points from concurrent producers
// are ordered by lock acquisition.
func (cs *ConcurrentStreamer) Push(x float64) error {
	cs.mu.Lock()
	err := cs.s.Push(x)
	cs.mu.Unlock()
	cs.drain()
	return err
}

// PushBatch pushes the points as one atomic run: no other producer's
// points interleave with the batch.
func (cs *ConcurrentStreamer) PushBatch(xs []float64) error {
	cs.mu.Lock()
	err := cs.s.PushBatch(xs)
	cs.mu.Unlock()
	cs.drain()
	return err
}

// Flush finishes the stream (delivering any final events) and closes the
// event channel. Like Streamer.Flush it is idempotent; pushes after Flush
// fail.
func (cs *ConcurrentStreamer) Flush() error {
	cs.mu.Lock()
	err := cs.s.Flush()
	cs.mu.Unlock()
	cs.drain()
	cs.sendMu.Lock()
	if !cs.closed {
		cs.closed = true
		close(cs.events)
	}
	cs.sendMu.Unlock()
	return err
}

// Total returns the number of points pushed so far.
func (cs *ConcurrentStreamer) Total() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.s.Total()
}

// MemoryFootprint is the underlying streamer's retained-memory accounting
// in bytes; see Streamer.MemoryFootprint.
func (cs *ConcurrentStreamer) MemoryFootprint() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.s.MemoryFootprint()
}

// Anomalies returns the current top-K ranking within the detector's
// retained horizon; see Streamer.Anomalies.
func (cs *ConcurrentStreamer) Anomalies() ([]Anomaly, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.s.Anomalies()
}
