package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"egi"
)

// sensorSeries synthesizes one stream's data: a noisy sine with a
// triangular pulse planted per stream.
func sensorSeries(length, period int, seed int64, planted ...int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.1*rng.NormFloat64()
	}
	for _, p := range planted {
		for i := p; i < p+period && i < length; i++ {
			x := float64(i-p) / float64(period)
			s[i] = 1.5 - 3*math.Abs(x-0.5) + 0.1*rng.NormFloat64()
		}
	}
	return s
}

// testOptions is the per-stream detector template used across the
// integration test and its direct-detector ground truth.
func testOptions() egi.StreamOptions {
	return egi.StreamOptions{Window: 40, BufLen: 320, EnsembleSize: 8, Seed: 17}
}

// directEvents is the ground truth: a plain egi.Stream over the same
// points, flushed at the end.
func directEvents(t *testing.T, series []float64) []egi.Anomaly {
	t.Helper()
	var out []egi.Anomaly
	opts := testOptions()
	opts.OnAnomaly = func(a egi.Anomaly) { out = append(out, a) }
	s, err := egi.Stream(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return out
}

// ndjsonBody renders points one JSON document per line, alternating bare
// numbers and {"value": x} objects to exercise both forms.
func ndjsonBody(points []float64) io.Reader {
	var b bytes.Buffer
	for i, x := range points {
		if i%2 == 0 {
			fmt.Fprintf(&b, "%v\n", x)
		} else {
			fmt.Fprintf(&b, "{\"value\": %v}\n", x)
		}
	}
	return &b
}

// jsonBody renders points as one JSON array.
func jsonBody(t *testing.T, points []float64) io.Reader {
	t.Helper()
	b, err := json.Marshal(points)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func post(t *testing.T, client *http.Client, url string, body io.Reader, contentType string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// sseReader consumes one /v1/events response body, collecting anomaly
// events per stream until the server ends the stream.
type sseReader struct {
	mu     sync.Mutex
	events map[string][]egi.Anomaly
	done   chan struct{}
	err    error
}

func newSSEReader(body io.Reader) *sseReader {
	r := &sseReader{events: map[string][]egi.Anomaly{}, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev eventJSON
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				r.err = err
				return
			}
			r.mu.Lock()
			r.events[ev.Stream] = append(r.events[ev.Stream], egi.Anomaly{Pos: ev.Pos, Length: ev.Length, Density: ev.Density})
			r.mu.Unlock()
		}
		r.err = sc.Err()
	}()
	return r
}

// listResponse mirrors the GET /v1/streams payload.
type listResponse struct {
	Streams    []streamStatsJSON `json:"streams"`
	TotalBytes int64             `json:"total_bytes"`
	Evicted    int64             `json:"evicted"`
	MaxBytes   int64             `json:"max_bytes"`
}

func getList(t *testing.T, client *http.Client, base string) listResponse {
	t.Helper()
	resp, err := client.Get(base + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr listResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

// TestServeManyStreams is the end-to-end acceptance test: 32 concurrent
// streams ingest over HTTP (NDJSON and JSON-array bodies), and the SSE
// firehose must deliver, per stream, exactly the events egi.Stream
// produces on the same points — while the rolled-up memory stays inside
// the configured budget and idle streams get swept out.
func TestServeManyStreams(t *testing.T) {
	const (
		nStreams  = 32
		maxBytes  = 256 << 20
		idleAfter = 300 * time.Millisecond
	)
	m, err := egi.NewManager(egi.ManagerOptions{
		Stream:     testOptions(),
		MaxStreams: nStreams,
		MaxBytes:   maxBytes,
		IdleAfter:  idleAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := newServer(m, "value", 4096, 0, limits{MaxStreams: nStreams, MaxBytes: maxBytes})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	client := ts.Client()

	// Attach the SSE firehose before any ingest so no event can be missed.
	sseResp, err := client.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	sse := newSSEReader(sseResp.Body)

	// Ground truth and ingest: 32 producers, batched pushes, both body
	// formats. Series are long enough for several hops plus a flush tail.
	series := make(map[string][]float64, nStreams)
	var wg sync.WaitGroup
	errCh := make(chan error, nStreams)
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("sensor-%02d", i)
		series[id] = sensorSeries(3000, 40, int64(500+i), 800+13*i, 2200)
		wg.Add(1)
		go func(i int, id string, data []float64) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/streams/%s/points", ts.URL, id)
			for off := 0; off < len(data); off += 250 {
				batch := data[off : off+250]
				var resp *http.Response
				if i%2 == 0 {
					resp = post(t, client, url, ndjsonBody(batch), "application/x-ndjson")
				} else {
					resp = post(t, client, url, jsonBody(t, batch), "application/json")
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%s: status %d: %s", id, resp.StatusCode, body)
					return
				}
			}
		}(i, id, series[id])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// All 32 streams live, memory inside the budget, accounting sane.
	lr := getList(t, client, ts.URL)
	if len(lr.Streams) != nStreams {
		t.Fatalf("%d live streams, want %d", len(lr.Streams), nStreams)
	}
	if lr.TotalBytes <= 0 || lr.TotalBytes > maxBytes {
		t.Fatalf("total_bytes %d outside (0, %d]", lr.TotalBytes, int64(maxBytes))
	}
	var sum int64
	for _, st := range lr.Streams {
		if st.Points != int64(len(series[st.ID])) {
			t.Fatalf("%s: %d points, want %d", st.ID, st.Points, len(series[st.ID]))
		}
		if st.MemoryBytes <= 0 {
			t.Fatalf("%s: memory_bytes %d", st.ID, st.MemoryBytes)
		}
		sum += st.MemoryBytes
	}
	if sum != lr.TotalBytes {
		t.Fatalf("total_bytes %d != sum of streams %d", lr.TotalBytes, sum)
	}

	// Idle eviction: start the sweeper exactly as run() does, only now,
	// so a slow producer goroutine can't lose its stream mid-ingest to
	// the aggressive test schedule. With ingest stopped it must reclaim
	// every stream — flushing each, so the final events reach the
	// firehose.
	sweepCtx, stopSweep := context.WithCancel(context.Background())
	defer stopSweep()
	go srv.sweep(sweepCtx, 50*time.Millisecond)
	deadline := time.Now().Add(15 * time.Second)
	for {
		lr = getList(t, client, ts.URL)
		if len(lr.Streams) == 0 && lr.Evicted >= nStreams {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle sweep incomplete: %d live, %d evicted", len(lr.Streams), lr.Evicted)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if lr.TotalBytes != 0 {
		t.Fatalf("total_bytes %d after every stream was evicted", lr.TotalBytes)
	}

	// Shut down: subscriber channels close, the SSE body ends.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sse.done:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not end after manager close")
	}
	if sse.err != nil {
		t.Fatalf("SSE reader: %v", sse.err)
	}

	// The acceptance bar: per stream, SSE-delivered events are identical
	// to egi.Stream over the same points — same positions, lengths,
	// densities, same order.
	var total int
	for id, data := range series {
		want := directEvents(t, data)
		got := sse.events[id]
		if len(got) != len(want) {
			t.Fatalf("%s: %d SSE events, %d direct events (%v vs %v)", id, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: event %d = %+v, want %+v", id, i, got[i], want[i])
			}
		}
		total += len(want)
	}
	if total < nStreams {
		t.Fatalf("only %d events across %d streams; fixture too quiet", total, nStreams)
	}
}

// TestIngestErrors: malformed bodies are 400 with a line-precise message,
// unknown streams 404, and a stream cap with nothing idle is 429.
func TestIngestErrors(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions(), MaxStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 16, 0, limits{MaxStreams: 1}).handler())
	defer ts.Close()
	client := ts.Client()

	// Malformed NDJSON: line number and content in the error.
	resp := post(t, client, ts.URL+"/v1/streams/a/points", strings.NewReader("1.5\nbogus\n"), "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed NDJSON: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "line 2") || !strings.Contains(string(body), "bogus") {
		t.Fatalf("malformed NDJSON error lacks line/content: %s", body)
	}
	// The failed parse pushed nothing — not even the valid first line.
	resp, err = client.Get(ts.URL + "/v1/streams/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream created by rejected body: status %d", resp.StatusCode)
	}

	// NaN is not valid JSON: rejected at parse, again pushing nothing.
	resp = post(t, client, ts.URL+"/v1/streams/a/points", strings.NewReader("1\nNaN\n"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN ingest: status %d", resp.StatusCode)
	}

	// Empty body.
	resp = post(t, client, ts.URL+"/v1/streams/a/points", strings.NewReader(""), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: status %d", resp.StatusCode)
	}

	// Stream cap: create "a" for real; the second stream is then
	// rejected with 429 (nothing is idle-evictable).
	resp = post(t, client, ts.URL+"/v1/streams/a/points", strings.NewReader("1\n2\n"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid ingest: status %d", resp.StatusCode)
	}
	resp = post(t, client, ts.URL+"/v1/streams/b/points", strings.NewReader("1\n2\n"), "")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit stream: status %d: %s", resp.StatusCode, body)
	}

	// Trailing content after a JSON array must be rejected, not dropped.
	resp = post(t, client, ts.URL+"/v1/streams/a/points",
		strings.NewReader("[1,2][3,4]"), "application/json")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("concatenated arrays: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "trailing") {
		t.Fatalf("concatenated arrays error: %s", body)
	}

	// Unknown stream stats and delete are 404.
	resp, err = client.Get(ts.URL + "/v1/streams/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stats: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/nope", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown delete: status %d", resp.StatusCode)
	}
}

// TestDeleteFlushesStream: DELETE closes the stream, returns its final
// stats, and frees its slot under MaxStreams.
func TestDeleteFlushesStream(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions(), MaxStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 16, 0, limits{MaxStreams: 1}).handler())
	defer ts.Close()
	client := ts.Client()

	data := sensorSeries(1000, 40, 1, 500)
	resp := post(t, client, ts.URL+"/v1/streams/a/points", jsonBody(t, data), "application/json")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/a", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var closed struct {
		Closed string          `json:"closed"`
		Stats  streamStatsJSON `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&closed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if closed.Closed != "a" || closed.Stats.Points != int64(len(data)) {
		t.Fatalf("close response %+v", closed)
	}

	// The slot is free again.
	resp = post(t, client, ts.URL+"/v1/streams/b/points", strings.NewReader("1\n2\n"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after delete: status %d", resp.StatusCode)
	}
}

// TestIngestBodyCap: a body over -max-body is rejected with 413 before
// anything is pushed — one oversized POST can't bypass the memory budget.
func TestIngestBodyCap(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 16, 1024, limits{}).handler())
	defer ts.Close()
	client := ts.Client()

	big := strings.Repeat("1.25\n", 1000) // ~5 KB > 1 KB cap
	resp := post(t, client, ts.URL+"/v1/streams/a/points", strings.NewReader(big), "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d: %s", resp.StatusCode, body)
	}
	if m.Len() != 0 {
		t.Fatalf("oversized body created a stream")
	}

	// Under the cap still works.
	resp = post(t, client, ts.URL+"/v1/streams/a/points", strings.NewReader("1\n2\n"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after cap rejection: status %d", resp.StatusCode)
	}
}

// TestHealthz: the liveness endpoint reports stream count and footprint.
func TestHealthz(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 16, 0, limits{}).handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string `json:"status"`
		Streams int    `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz: %+v", h)
	}
}

// TestUsageAndFlags: -h prints usage and exits 0 (ErrHelp), a missing
// -window is a configuration error.
func TestUsageAndFlags(t *testing.T) {
	if err := run([]string{"-h"}, io.Discard); err == nil || !strings.Contains(err.Error(), "help") {
		t.Fatalf("-h: err = %v, want flag.ErrHelp", err)
	}
	if err := run([]string{}, io.Discard); err == nil || !strings.Contains(err.Error(), "-window") {
		t.Fatalf("missing window: err = %v", err)
	}
	if err := run([]string{"-window", "50", "-tau", "7"}, io.Discard); err == nil {
		t.Fatal("bad tau accepted")
	}
}

// TestPprofHandler: the optional profiling mux serves the standard pprof
// index and is never part of the public API handler.
func TestPprofHandler(t *testing.T) {
	ts := httptest.NewServer(pprofHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles: %q", body)
	}

	// The public API handler must not expose the profiling endpoints.
	m, err := egi.NewManager(egi.ManagerOptions{Stream: egi.StreamOptions{Window: 20}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	api := httptest.NewServer(newServer(m, "value", 16, 0, limits{}).handler())
	defer api.Close()
	resp2, err := api.Client().Get(api.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("public API handler serves /debug/pprof/")
	}
}
