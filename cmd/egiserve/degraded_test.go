package main

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"hash/crc32"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"egi"
)

// TestRetryAfterHeaders: retryable rejections carry a Retry-After hint —
// a short one on overload (429), a longer one on shutdown (503) — so
// well-behaved clients back off instead of hammering.
func TestRetryAfterHeaders(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions(), MaxStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(m, "value", 16, 0, limits{MaxStreams: 1}).handler())
	defer ts.Close()
	client := ts.Client()

	resp := post(t, client, ts.URL+"/v1/streams/a/points", jsonBody(t, sensorSeries(50, 40, 1)), "application/json")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first stream: status %d", resp.StatusCode)
	}
	// The only slot is taken and nothing is idle: overload.
	resp = post(t, client, ts.URL+"/v1/streams/b/points", jsonBody(t, sensorSeries(50, 40, 2)), "application/json")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit stream: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("429 Retry-After = %q, want \"1\"", got)
	}
	// Shutdown: the manager is closed under the still-running server.
	m.Close()
	resp = post(t, client, ts.URL+"/v1/streams/a/points", jsonBody(t, sensorSeries(50, 40, 1)), "application/json")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown ingest: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("503 Retry-After = %q, want \"5\"", got)
	}
}

// TestStatsAlias: GET /v1/stats serves the stream listing under its
// monitoring-friendly alias and always carries the rolled-up health
// tallies, zero or not.
func TestStatsAlias(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 16, 0, limits{}).handler())
	defer ts.Close()
	client := ts.Client()

	resp := post(t, client, ts.URL+"/v1/streams/s/points", jsonBody(t, sensorSeries(80, 40, 3)), "application/json")
	resp.Body.Close()
	resp, err = client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"streams", "degraded_streams", "quarantined_streams"} {
		if _, ok := body[key]; !ok {
			t.Fatalf("/v1/stats response missing %q: %v", key, body)
		}
	}
	if got := body["degraded_streams"].(float64); got != 0 {
		t.Fatalf("degraded_streams = %v, want 0", got)
	}
}

// walRecord frames one WAL points record claiming to start at position
// pos, using the store's wire framing (u32 len | u32 CRC-32C | payload).
func walRecord(pos uint64, pts []float64) []byte {
	payload := []byte{1} // recPoints
	payload = binary.AppendUvarint(payload, pos)
	payload = binary.AppendUvarint(payload, uint64(len(pts)))
	for _, x := range pts {
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(x))
	}
	rec := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	return append(rec, payload...)
}

// TestQuarantineSurfacesOverHTTP: a stream whose persisted log is corrupt
// beyond the torn-tail case is quarantined at startup rather than aborting
// the server. The whole failure path is visible over HTTP — healthz turns
// "degraded" and lists the recovery failure, the stats listing flags the
// stream, ingest into it is a 500 — and DELETE clears it, returning
// healthz to "ok".
func TestQuarantineSurfacesOverHTTP(t *testing.T) {
	dir := t.TempDir()
	opts := egi.ManagerOptions{Stream: testOptions(), DataDir: dir, SnapshotEvery: 100}
	m1, err := egi.NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.PushBatch("good", sensorSeries(200, 40, 4)); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a corrupt sibling: its first record claims position 5,
	// a gap no valid writer produces — checksums pass, replay cannot.
	bad := filepath.Join(dir, hex.EncodeToString([]byte("bad")))
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "wal-0.log"), walRecord(5, []float64{1, 2, 3}), 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := egi.NewManager(opts)
	if err != nil {
		t.Fatalf("recovery with one corrupt stream must still start: %v", err)
	}
	defer m2.Close()
	ts := httptest.NewServer(newServer(m2, "value", 16, 0, limits{}).handler())
	defer ts.Close()
	client := ts.Client()

	getHealthz := func() map[string]any {
		t.Helper()
		resp, err := client.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /healthz: status %d", resp.StatusCode)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	hz := getHealthz()
	if hz["status"] != "degraded" || hz["quarantined_streams"].(float64) != 1 {
		t.Fatalf("healthz with quarantined stream = %v", hz)
	}
	fails, ok := hz["recovery_failures"].([]any)
	if !ok || len(fails) != 1 {
		t.Fatalf("recovery_failures = %v, want one entry", hz["recovery_failures"])
	}
	entry := fails[0].(map[string]any)
	if entry["stream"] != "bad" || !strings.Contains(entry["error"].(string), "corrupt") {
		t.Fatalf("recovery failure entry = %v", entry)
	}

	// The stats listing flags the stream individually.
	lr := getList(t, client, ts.URL)
	var found bool
	for _, st := range lr.Streams {
		if st.ID == "bad" {
			found = true
			if !st.Quarantined || st.Fault == "" {
				t.Fatalf("quarantined stream stats = %+v", st)
			}
		} else if st.Quarantined || st.Degraded {
			t.Fatalf("healthy stream flagged: %+v", st)
		}
	}
	if !found {
		t.Fatalf("quarantined stream missing from listing: %+v", lr.Streams)
	}

	// Ingest into the tombstone is a server-side error; the healthy
	// sibling keeps working.
	resp := post(t, client, ts.URL+"/v1/streams/bad/points", jsonBody(t, []float64{1, 2, 3}), "application/json")
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("ingest into quarantined stream: status %d, want 500", resp.StatusCode)
	}
	resp = post(t, client, ts.URL+"/v1/streams/good/points", jsonBody(t, sensorSeries(80, 40, 5)), "application/json")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest into healthy stream: status %d", resp.StatusCode)
	}

	// DELETE discards the broken state and clears the health signal.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE quarantined stream: status %d", resp.StatusCode)
	}
	hz = getHealthz()
	if hz["status"] != "ok" || hz["quarantined_streams"].(float64) != 0 {
		t.Fatalf("healthz after deleting the tombstone = %v", hz)
	}
}

// TestFormatEvent: the SSE encoder names anomaly and health frames
// distinctly so clients can subscribe to either without sniffing fields.
func TestFormatEvent(t *testing.T) {
	kind, data, err := formatEvent(egi.StreamEvent{
		Stream:  "s",
		Anomaly: egi.Anomaly{Pos: 7, Length: 3, Density: 0.5},
	})
	if err != nil || kind != "anomaly" {
		t.Fatalf("anomaly frame = (%q, %v)", kind, err)
	}
	var ev eventJSON
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Stream != "s" || ev.Pos != 7 || ev.Length != 3 || ev.Density != 0.5 {
		t.Fatalf("anomaly frame body = %+v", ev)
	}

	kind, data, err = formatEvent(egi.StreamEvent{
		Stream: "s",
		Health: egi.HealthDegraded,
		Cause:  "disk full",
	})
	if err != nil || kind != "health" {
		t.Fatalf("health frame = (%q, %v)", kind, err)
	}
	var h healthJSON
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Stream != "s" || h.State != "degraded" || h.Cause != "disk full" {
		t.Fatalf("health frame body = %+v", h)
	}
}
