// Command egiserve is the multi-stream anomaly detection server: a
// long-lived HTTP service multiplexing many independent streams through
// one egi.Manager, with per-stream memory accounting, configurable limits
// and idle-stream eviction. It turns the streaming detector library into
// the serving layer: points go in over HTTP, confirmed anomaly events
// come out over a Server-Sent Events firehose, and every stream's memory
// is bounded and observable.
//
// Usage:
//
//	egiserve -window 900 [-addr :8080] [-buflen 9000] [-hop 0] \
//	         [-threshold 0.2] [-adaptive 0] [-field value] [-nonfinite reject] \
//	         [-max-streams 0] [-max-bytes 0] [-idle-after 10m] [-sweep 1m] \
//	         [-data-dir ""] [-snapshot-every 8192] [-fsync] [-shards 1] \
//	         [-pprof-addr localhost:6060]
//
// Endpoints:
//
//	POST   /v1/streams/{id}/points    ingest; NDJSON body (one point per
//	                                  line: bare number or object whose
//	                                  -field member holds the value), or a
//	                                  JSON array of numbers with
//	                                  Content-Type: application/json. The
//	                                  stream is created on first use.
//	GET    /v1/streams                all live streams' stats (points,
//	                                  events, memory, health flags) +
//	                                  rolled-up totals and degraded /
//	                                  quarantined counts
//	GET    /v1/stats                  alias of GET /v1/streams
//	GET    /v1/streams/{id}           one stream's stats + current top-K
//	DELETE /v1/streams/{id}           flush and close the stream; with
//	                                  -data-dir, also deletes its
//	                                  persisted state
//	POST   /v1/streams/{id}/snapshot  force a durability checkpoint now
//	                                  (requires -data-dir)
//	GET    /v1/streams/{id}/replay    re-derive recent events from the
//	                                  persisted state as NDJSON (requires
//	                                  -data-dir)
//	GET    /v1/events[?stream=id]     SSE firehose of confirmed events
//	                                  (`event: anomaly`) and stream health
//	                                  transitions (`event: health`)
//	GET    /healthz                   liveness summary; status "degraded"
//	                                  when any stream is degraded or
//	                                  quarantined
//	GET    /metrics                   Prometheus text exposition: stream /
//	                                  point / event / memory gauges, health
//	                                  tallies, ingest and eviction counters,
//	                                  and per-shard + migration metrics in
//	                                  -shards mode
//	POST   /v1/admin/resize           {"shards": N} — grow or shrink the
//	                                  shard set live (requires -shards)
//	POST   /v1/admin/drain            {"shard": name} — migrate every
//	                                  stream off one shard (requires
//	                                  -shards)
//
// With -shards M (M > 1), the server runs M in-process manager shards
// behind a rendezvous-hashing router: each stream lives on exactly one
// shard (its own -data-dir subdirectory, its own locks; -max-streams and
// -max-bytes apply per shard), stats name each stream's shard, and the
// admin endpoints rebalance live — affected streams are quiesced one at
// a time, their snapshot + WAL tail shipped, and resumed bit-identically
// on the new shard.
//
// Ingest accepts per-stream setting overrides as query parameters on the
// first push (window, buflen, hop, threshold, rebase_every), e.g.
// POST /v1/streams/{id}/points?window=300&threshold=0.4. Overrides bind
// at create time and travel with the stream across restarts and shard
// moves; pushing with overrides to an existing stream whose settings
// differ is rejected with 409 and zero points applied.
//
// Ingest responses are JSON; limit rejections (stream cap reached with
// nothing idle, memory budget exhausted) are 429, shutdown is 503, and
// malformed bodies are 400 with a line-precise error. 429 and 503
// responses carry a Retry-After header. Every ingest error body carries
// "accepted" — how many leading points of the batch were applied — so
// clients resend exactly the unapplied remainder.
//
// Durability failures (disk full, I/O errors) degrade a stream instead of
// failing its pushes: detection continues in memory, the /v1/streams and
// /healthz surfaces flag the stream, an `event: health` frame announces
// the transition, and the server retries with capped backoff until a
// checkpoint heals the log. A stream whose detector panics is
// quarantined: pushes return 500 until it is deleted or the process
// restarts.
//
// With -data-dir set, streams are durable: accepted points are
// write-ahead logged under that directory with a snapshot checkpoint
// every -snapshot-every points, idle-evicted streams hibernate to disk
// and resume transparently on their next push, and a restart recovers
// every stream bit-identically — same future events, same rankings — as
// if the process had never stopped. -fsync extends the guarantee from
// process death to power loss at the cost of one fsync per ingest.
//
// -nonfinite selects the NaN/±Inf ingest policy for every stream:
// "reject" (the default) fails the batch at the offending point, "clamp"
// substitutes the last finite value, "drop" skips them.
//
// With -pprof-addr set, a second HTTP listener serves the standard
// net/http/pprof profiling endpoints under /debug/pprof/ on that address
// only — keep it on localhost or a private interface; it is never mixed
// into the public API listener. Off by default.
//
// On SIGINT/SIGTERM the server shuts down gracefully: every stream is
// flushed, the resulting final events are delivered to connected SSE
// subscribers, and only then do the event streams end.
//
// Exit codes: 0 on clean shutdown (or -h), 1 on configuration or listen
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"egi"
)

// pprofHandler builds the standard net/http/pprof mux on a dedicated
// handler instead of polluting http.DefaultServeMux, so the profiling
// endpoints exist only on the -pprof-addr listener.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "egiserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("egiserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling")
		window     = fs.Int("window", 0, "sliding window length n, the anomaly scale (required)")
		bufLen     = fs.Int("buflen", 0, "per-stream ring buffer capacity (default 10x window)")
		hop        = fs.Int("hop", 0, "points between re-inductions (default buflen-window+1)")
		threshold  = fs.Float64("threshold", 0, "event threshold on the [0,1] density score (default 0.2)")
		adaptive   = fs.Float64("adaptive", 0, "adaptive event threshold: running quantile of the score curve in (0,1), e.g. 0.05; 0 keeps the fixed -threshold")
		rebase     = fs.Int("rebase-every", 0, "hop runs between per-stream grammar rebases; 0 = adaptive (per-run at the default hop, amortized at smaller hops), 1 = re-induce every run")
		field      = fs.String("field", "value", "NDJSON object member holding the value")
		nonFinite  = fs.String("nonfinite", "reject", "NaN/Inf ingest policy: reject, clamp (hold last finite value), or drop")
		maxStreams = fs.Int("max-streams", 0, "maximum live streams; 0 = unlimited")
		maxBytes   = fs.Int64("max-bytes", 0, "total memory budget across streams, in bytes; 0 = unlimited")
		idleAfter  = fs.Duration("idle-after", 10*time.Minute, "idle time before a stream may be evicted; 0 disables eviction")
		sweepEvery = fs.Duration("sweep", time.Minute, "how often to sweep for idle streams")
		dataDir    = fs.String("data-dir", "", "durability directory: write-ahead log + snapshots per stream; empty = in-memory only")
		snapEvery  = fs.Int("snapshot-every", 0, "accepted points between snapshot checkpoints per stream (default 8192; requires -data-dir)")
		fsync      = fs.Bool("fsync", false, "fsync the write-ahead log after every ingest (survive power loss, not just crashes)")
		shards     = fs.Int("shards", 1, "in-process manager shards behind a rendezvous-hashing router; limits apply per shard, /v1/admin/{resize,drain} rebalance live")
		eventBuf   = fs.Int("event-buffer", 1024, "per-SSE-subscription event channel capacity")
		maxBody    = fs.Int64("max-body", defaultMaxBody, "maximum ingest request body size, in bytes")
		size       = fs.Int("size", 0, "ensemble size N (default 50)")
		wmax       = fs.Int("wmax", 0, "maximum PAA size (default 10)")
		amax       = fs.Int("amax", 0, "maximum alphabet size (default 10)")
		tau        = fs.Float64("tau", 0, "ensemble selectivity in (0,1] (default 0.4)")
		topK       = fs.Int("topk", 0, "size of per-stream rankings (default 3)")
		seed       = fs.Int64("seed", 0, "random seed shared by every stream's detector")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `egiserve — multi-stream anomaly detection server

Usage: egiserve -window N [flags]

Endpoints:
  POST   /v1/streams/{id}/points    ingest NDJSON (bare numbers or objects
                                    with the -field member) or, with
                                    Content-Type: application/json, a JSON
                                    array of numbers; creates the stream
  GET    /v1/streams                live stream stats + rolled-up totals
  GET    /v1/stats                  alias of GET /v1/streams
  GET    /v1/streams/{id}           one stream's stats + current top-K
  DELETE /v1/streams/{id}           flush and close the stream (and delete
                                    its persisted state under -data-dir)
  POST   /v1/streams/{id}/snapshot  force a durability checkpoint now
  GET    /v1/streams/{id}/replay    re-derive recent events from disk
  GET    /v1/events[?stream=id]     SSE firehose of confirmed events and
                                    stream health transitions
  GET    /healthz                   liveness summary (+ degraded streams)
  GET    /metrics                   Prometheus text exposition
  POST   /v1/admin/resize           {"shards": N} — resize the shard set
  POST   /v1/admin/drain            {"shard": name} — empty one shard

With -shards M, the server runs M manager shards behind a rendezvous-
hashing router (limits per shard); ingest accepts per-stream overrides
as query parameters (window, buflen, hop, threshold, rebase_every),
rejected with 409 if the stream exists with different settings.
Limit rejections are HTTP 429, shutdown 503 (both with Retry-After),
malformed bodies 400; every ingest error body carries "accepted", the
applied-prefix length. With -data-dir, streams are write-ahead logged and
recovered bit-identically across restarts; evicted streams hibernate and
resume on the next push. Durability failures degrade a stream (detection
continues in memory, flagged in stats, retried with backoff) instead of
failing ingest.
With -pprof-addr, net/http/pprof is served on that (private) address.
Exit codes: 0 clean shutdown or -h, 1 configuration or listen errors.

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *window < 2 {
		return errors.New("-window is required and must be >= 2")
	}
	var policy egi.NonFinitePolicy
	switch strings.ToLower(strings.TrimSpace(*nonFinite)) {
	case "reject":
		policy = egi.NonFiniteReject
	case "clamp":
		policy = egi.NonFiniteClamp
	case "drop":
		policy = egi.NonFiniteDrop
	default:
		return fmt.Errorf("-nonfinite must be reject, clamp or drop (got %q)", *nonFinite)
	}

	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", *shards)
	}
	m, err := egi.NewShardedManager(*shards, egi.ManagerOptions{
		Stream: egi.StreamOptions{
			Window:           *window,
			BufLen:           *bufLen,
			Hop:              *hop,
			Threshold:        *threshold,
			AdaptiveQuantile: *adaptive,
			NonFinite:        policy,
			RebaseEvery:      *rebase,
			EnsembleSize:     *size,
			WMax:             *wmax,
			AMax:             *amax,
			Tau:              *tau,
			TopK:             *topK,
			Seed:             *seed,
		},
		MaxStreams:    *maxStreams,
		MaxBytes:      *maxBytes,
		IdleAfter:     *idleAfter,
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
		Fsync:         *fsync,
	})
	if err != nil {
		return err
	}
	// A stream directory that failed to recover is skipped (and
	// quarantined), not fatal: one corrupt directory must not keep every
	// healthy stream offline. Surface each skip at startup — it is also
	// visible in /healthz until the operator resolves it.
	for _, f := range m.RecoveryFailures() {
		fmt.Fprintf(stdout, "egiserve: stream %q failed to recover, quarantined: %v\n", f.Stream, f.Err)
	}

	srv := newServer(m, *field, *eventBuf, *maxBody, limits{MaxStreams: *maxStreams, MaxBytes: *maxBytes})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Optional profiling listener, fully separate from the public API so
	// the pprof endpoints can stay on a private interface. Bind it before
	// serving traffic: a bad -pprof-addr is a configuration error.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: pprofHandler()}
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			m.Close()
			return fmt.Errorf("pprof listen: %w", err)
		}
		go func() { _ = pprofSrv.Serve(ln) }()
		defer pprofSrv.Close()
		fmt.Fprintf(stdout, "egiserve pprof on http://%s/debug/pprof/\n", ln.Addr())
	}
	if *idleAfter > 0 && *sweepEvery > 0 {
		go srv.sweep(ctx, *sweepEvery)
	}

	listenErr := make(chan error, 1)
	go func() { listenErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "egiserve listening on %s (window=%d buflen=%d shards=%d)\n", *addr, *window, *bufLen, *shards)

	select {
	case err := <-listenErr:
		m.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: flush every stream first — the final confirmed
	// events reach SSE subscribers and close their event streams — then
	// drain the HTTP server.
	fmt.Fprintln(stdout, "egiserve: shutting down, flushing streams")
	m.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
