package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"egi"
)

// TestIngestRejectsJSONNull is the regression test for the ingest
// boundary bug: `[1, null, 3]` used to decode with the null silently
// becoming 0.0 — a fabricated point poisoning the stream. It must be a
// 400 naming the element, with nothing applied.
func TestIngestRejectsJSONNull(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 16, 0, limits{}).handler())
	defer ts.Close()

	resp := post(t, ts.Client(), ts.URL+"/v1/streams/a/points",
		strings.NewReader("[1, null, 3]"), "application/json")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("null element: status %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Error    string `json:"error"`
		Accepted int    `json:"accepted"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body not JSON: %s", body)
	}
	if !strings.Contains(e.Error, "element 1") || !strings.Contains(e.Error, "null") {
		t.Fatalf("error does not locate the null: %q", e.Error)
	}
	if e.Accepted != 0 {
		t.Fatalf("accepted = %d for a rejected body, want 0", e.Accepted)
	}
	// Nothing was applied — not even the valid leading element.
	if m.Len() != 0 {
		t.Fatal("rejected body created a stream")
	}
}

// TestIngestErrorsReportAccepted: every ingest error body carries the
// applied-prefix count, so clients know the exact resume coordinate.
func TestIngestErrorsReportAccepted(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions(), MaxStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 16, 0, limits{MaxStreams: 1}).handler())
	defer ts.Close()
	client := ts.Client()

	readAccepted := func(resp *http.Response) (int, string) {
		t.Helper()
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var e struct {
			Error    string `json:"error"`
			Accepted *int   `json:"accepted"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Accepted == nil {
			t.Fatalf("error body lacks accepted count: %s", body)
		}
		return *e.Accepted, e.Error
	}

	// Parse failure after valid lines: nothing is applied (the body is
	// parsed in full before any push).
	resp := post(t, client, ts.URL+"/v1/streams/a/points", strings.NewReader("1\n2\nbogus\n"), "")
	if n, _ := readAccepted(resp); n != 0 {
		t.Fatalf("parse failure accepted = %d, want 0", n)
	}

	// Limit rejection: the batch is rejected outright with accepted 0.
	resp = post(t, client, ts.URL+"/v1/streams/a/points", strings.NewReader("1\n2\n"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid ingest: status %d", resp.StatusCode)
	}
	resp = post(t, client, ts.URL+"/v1/streams/b/points", strings.NewReader("1\n"), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit: status %d", resp.StatusCode)
	}
	if n, _ := readAccepted(resp); n != 0 {
		t.Fatalf("over-limit accepted = %d, want 0", n)
	}
}

// ingestBatches pushes data through the HTTP ingest endpoint in fixed
// batches, failing the test on any non-200.
func ingestBatches(t *testing.T, client *http.Client, url string, data []float64) {
	t.Helper()
	for off := 0; off < len(data); off += 250 {
		end := off + 250
		if end > len(data) {
			end = len(data)
		}
		resp := post(t, client, url, jsonBody(t, data[off:end]), "application/json")
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest batch at %d: status %d: %s", off, resp.StatusCode, body)
		}
	}
}

// TestServerDurabilityRestart is the serving-layer acceptance test for
// the durable-streams work: ingest part of a series against a -data-dir
// server, stop it, start a fresh server over the same directory, ingest
// the rest — the combined SSE events must be exactly what an
// uninterrupted detector produces, and the snapshot/replay endpoints
// must work along the way.
func TestServerDurabilityRestart(t *testing.T) {
	dir := t.TempDir()
	series := sensorSeries(3000, 40, 99, 700, 2300)
	const cut = 2000
	open := func() (*egi.Manager, *httptest.Server) {
		m, err := egi.NewManager(egi.ManagerOptions{
			Stream: testOptions(), DataDir: dir, SnapshotEvery: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, httptest.NewServer(newServer(m, "value", 4096, 0, limits{}).handler())
	}

	// Phase 1: ingest the head, checkpoint on demand, inspect replay.
	m1, ts1 := open()
	sseResp, err := ts1.Client().Get(ts1.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	sse1 := newSSEReader(sseResp.Body)
	ingestBatches(t, ts1.Client(), ts1.URL+"/v1/streams/s/points", series[:cut])

	resp := post(t, ts1.Client(), ts1.URL+"/v1/streams/s/snapshot", nil, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "snapshotted") {
		t.Fatalf("snapshot endpoint: status %d: %s", resp.StatusCode, body)
	}

	// More points after the checkpoint give replay a tail to re-derive.
	ingestBatches(t, ts1.Client(), ts1.URL+"/v1/streams/s/points", series[cut:cut+500])
	resp, err = ts1.Client().Get(ts1.URL + "/v1/streams/s/replay")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay endpoint: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var summary struct {
		Replayed int  `json:"replayed_points"`
		Done     bool `json:"done"`
	}
	lines := 0
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &summary); err != nil {
			t.Fatalf("replay line %d not JSON: %s", lines, sc.Text())
		}
	}
	resp.Body.Close()
	if lines == 0 || !summary.Done || summary.Replayed != 500 {
		t.Fatalf("replay summary = %+v over %d lines, want done with 500 replayed", summary, lines)
	}

	// Stop phase 1. Close hibernates the durable stream — no flush — so
	// phase 2 resumes it exactly where it stopped. The manager closes
	// first: that ends the SSE handler, which ts1.Close waits for.
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	<-sse1.done
	ts1.Close()

	// Phase 2: a fresh server over the same directory recovers the stream.
	m2, ts2 := open()
	defer ts2.Close()
	var stats struct {
		Stats streamStatsJSON `json:"stats"`
	}
	resp, err = ts2.Client().Get(ts2.URL + "/v1/streams/s")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Stats.Points != cut+500 {
		t.Fatalf("recovered stream has %d points, want %d", stats.Stats.Points, cut+500)
	}

	sseResp2, err := ts2.Client().Get(ts2.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	sse2 := newSSEReader(sseResp2.Body)
	ingestBatches(t, ts2.Client(), ts2.URL+"/v1/streams/s/points", series[cut+500:])

	// Terminal close: flush (final events reach SSE) and delete the
	// persisted state.
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/streams/s", nil)
	resp, err = ts2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	<-sse2.done

	// The acceptance bar: events across the restart are exactly the
	// uninterrupted detector's, in order, bit for bit.
	want := directEvents(t, series)
	got := append(append([]egi.Anomaly(nil), sse1.events["s"]...), sse2.events["s"]...)
	if len(got) != len(want) {
		t.Fatalf("%d events across restart, %d uninterrupted (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// DELETE was terminal: no persisted state survives it.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d entries left in the data dir after DELETE", len(entries))
	}
}

// TestReplayRequiresDataDir: the durability endpoints refuse cleanly on
// an in-memory server instead of pretending.
func TestReplayRequiresDataDir(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 16, 0, limits{}).handler())
	defer ts.Close()

	resp := post(t, ts.Client(), ts.URL+"/v1/streams/s/snapshot", nil, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("snapshot without -data-dir: status %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/streams/s/replay")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replay without -data-dir: status %d", resp.StatusCode)
	}
}

// TestSSEHeartbeatLifecycle runs the event stream with compressed timers:
// heartbeats must keep arriving well past several write-deadline windows
// (each successful write clears its deadline), and the stream must end
// promptly when the manager closes.
func TestSSEHeartbeatLifecycle(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(m, "value", 16, 0, limits{})
	srv.sseWriteTimeout = 75 * time.Millisecond
	srv.heartbeatEvery = 25 * time.Millisecond
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	pings := make(chan struct{}, 64)
	done := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": ping") {
				pings <- struct{}{}
			}
		}
		done <- sc.Err()
	}()

	// Ten heartbeats span several deadline windows; a stale (uncleared)
	// deadline or a stopped ticker would cut the stream short.
	deadline := time.After(5 * time.Second)
	for i := 0; i < 10; i++ {
		select {
		case <-pings:
		case <-deadline:
			t.Fatalf("only %d heartbeats before timeout", i)
		}
	}

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SSE body ended with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not end after manager close")
	}
}

// TestRunFlags covers the new CLI surface: a bad -nonfinite value is a
// configuration error before anything listens.
func TestRunFlags(t *testing.T) {
	if err := run([]string{"-window", "50", "-nonfinite", "sometimes"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "nonfinite") {
		t.Fatalf("bad -nonfinite: err = %v", err)
	}
	if err := run([]string{"-window", "50", "-snapshot-every", "-1"}, io.Discard); err == nil {
		t.Fatal("negative -snapshot-every accepted")
	}
}
