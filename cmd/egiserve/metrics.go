package main

// GET /metrics: Prometheus text exposition (version 0.0.4), hand-rolled
// from the manager/stream/router stats the server already keeps — no
// client library, no new dependency. Gauges derive from live-stream
// snapshots; counters (evictions, migrations, ingest totals, routing
// lookups) come from monotonic sources so scrapes survive stream churn.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"egi"
)

// promWriter accumulates one exposition. Families are written HELP line,
// TYPE line, then samples — the order the text format requires.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		fmt.Fprintf(&p.b, "%s{%s} %g\n", name, labels, v)
	} else {
		fmt.Fprintf(&p.b, "%s %g\n", name, v)
	}
}

// promLabel renders one label pair, escaping the value per the text
// format (backslash, double quote, newline).
func promLabel(key, val string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return fmt.Sprintf(`%s="%s"`, key, r.Replace(val))
}

// metrics handles GET /metrics with the Prometheus text exposition of
// the serving stats: stream counts, point/event/memory totals, health
// tallies, the process-lifetime ingest counter, and — in -shards mode —
// per-shard placement plus the router's migration counters.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	var points, events int64
	for _, ss := range st.Streams {
		points += ss.Points
		events += ss.Events
	}

	p := &promWriter{}
	p.family("egi_streams", "Live streams.", "gauge")
	p.sample("egi_streams", "", float64(len(st.Streams)))
	p.family("egi_stream_points", "Points held by live streams (resets when a stream closes).", "gauge")
	p.sample("egi_stream_points", "", float64(points))
	p.family("egi_stream_events", "Confirmed anomaly events across live streams.", "gauge")
	p.sample("egi_stream_events", "", float64(events))
	p.family("egi_memory_bytes", "Rolled-up memory footprint across live streams.", "gauge")
	p.sample("egi_memory_bytes", "", float64(st.TotalBytes))
	p.family("egi_streams_degraded", "Live streams in degraded (memory-only) durability mode.", "gauge")
	p.sample("egi_streams_degraded", "", float64(st.Degraded))
	p.family("egi_streams_quarantined", "Quarantined tombstone streams.", "gauge")
	p.sample("egi_streams_quarantined", "", float64(st.Quarantined))
	p.family("egi_recovery_failures", "Stream directories skipped by startup recovery.", "gauge")
	p.sample("egi_recovery_failures", "", float64(len(s.m.RecoveryFailures())))
	p.family("egi_streams_evicted_total", "Streams evicted for idleness or budget since start.", "counter")
	p.sample("egi_streams_evicted_total", "", float64(st.Evicted))
	p.family("egi_ingest_points_total", "Points accepted over HTTP ingest since start.", "counter")
	p.sample("egi_ingest_points_total", "", float64(s.ingested.Load()))

	if rs, err := s.m.RouterStats(); err == nil {
		shards := append([]egi.ShardStats(nil), rs.Shards...)
		sort.Slice(shards, func(i, j int) bool { return shards[i].Name < shards[j].Name })
		p.family("egi_shard_streams", "Live streams per serving shard.", "gauge")
		for _, sh := range shards {
			p.sample("egi_shard_streams", promLabel("shard", sh.Name), float64(sh.Streams))
		}
		p.family("egi_shard_memory_bytes", "Memory footprint per serving shard.", "gauge")
		for _, sh := range shards {
			p.sample("egi_shard_memory_bytes", promLabel("shard", sh.Name), float64(sh.MemoryBytes))
		}
		p.family("egi_shard_draining", "1 while the shard is being drained.", "gauge")
		for _, sh := range shards {
			v := 0.0
			if sh.Draining {
				v = 1
			}
			p.sample("egi_shard_draining", promLabel("shard", sh.Name), v)
		}
		p.family("egi_router_placement_version", "Placement-table generation; bumps on resize or drain.", "gauge")
		p.sample("egi_router_placement_version", "", float64(rs.Version))
		p.family("egi_router_pinned_streams", "Streams placed by pin instead of rendezvous hash.", "gauge")
		p.sample("egi_router_pinned_streams", "", float64(rs.Pinned))
		p.family("egi_router_lookups_total", "Routing resolutions since start.", "counter")
		p.sample("egi_router_lookups_total", "", float64(rs.Lookups))
		p.family("egi_router_migrations_total", "Committed stream migrations since start.", "counter")
		p.sample("egi_router_migrations_total", "", float64(rs.Migrations))
		p.family("egi_router_migration_bytes_total", "State bytes shipped by committed migrations.", "counter")
		p.sample("egi_router_migration_bytes_total", "", float64(rs.MigrationBytes))
		p.family("egi_router_migration_failures_total", "Migrations that failed before commit.", "counter")
		p.sample("egi_router_migration_failures_total", "", float64(rs.MigrationFailures))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, p.b.String())
}
