package main

// Shard administration endpoints, live only in -shards mode (a
// single-shard server answers them with 409 ErrNotSharded):
//
//	POST /v1/admin/resize {"shards": N}    grow or shrink the shard set
//	POST /v1/admin/drain  {"shard": name}  empty one shard onto the rest
//
// Both migrate affected streams live — each stream is quiesced, its
// snapshot + WAL tail shipped, and resumed on its new shard — and
// return the router's post-operation placement snapshot.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"egi"
)

// routerStatsJSON is the wire form of egi.RouterStats.
type routerStatsJSON struct {
	Version           uint64          `json:"version"`
	Shards            []shardStatJSON `json:"shards"`
	Pinned            int             `json:"pinned"`
	Lookups           int64           `json:"lookups"`
	Migrations        int64           `json:"migrations"`
	MigrationBytes    int64           `json:"migration_bytes"`
	MigrationFailures int64           `json:"migration_failures"`
}

// shardStatJSON is one shard's slice of routerStatsJSON.
type shardStatJSON struct {
	Name        string `json:"name"`
	Draining    bool   `json:"draining,omitempty"`
	Streams     int    `json:"streams"`
	MemoryBytes int64  `json:"memory_bytes"`
}

func toRouterStatsJSON(rs egi.RouterStats) routerStatsJSON {
	out := routerStatsJSON{
		Version:           rs.Version,
		Shards:            make([]shardStatJSON, len(rs.Shards)),
		Pinned:            rs.Pinned,
		Lookups:           rs.Lookups,
		Migrations:        rs.Migrations,
		MigrationBytes:    rs.MigrationBytes,
		MigrationFailures: rs.MigrationFailures,
	}
	for i, sh := range rs.Shards {
		out.Shards[i] = shardStatJSON{Name: sh.Name, Draining: sh.Draining, Streams: sh.Streams, MemoryBytes: sh.MemoryBytes}
	}
	return out
}

// adminErrorCode maps shard-administration errors: ErrNotSharded is a
// 409 (the server is running without -shards), everything else falls
// back to the shared mapping.
func adminErrorCode(err error) int {
	if errors.Is(err, egi.ErrNotSharded) {
		return http.StatusConflict
	}
	return errorCode(err)
}

// adminResize handles POST /v1/admin/resize: change the shard count
// live. Partial failure (some streams could not move) is a 500 whose
// body still carries the router snapshot — unmoved streams keep serving
// on their old shards, pinned, and the next resize or drain retries.
func (s *server) adminResize(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Shards int `json:"shards"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing resize request: %w", err))
		return
	}
	if req.Shards < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shards must be >= 1 (got %d)", req.Shards))
		return
	}
	err := s.m.Resize(req.Shards)
	s.writeAdminResult(w, err)
}

// adminDrain handles POST /v1/admin/drain: migrate every stream off one
// shard, leaving it empty (and still in the set — shrink with resize to
// remove it).
func (s *server) adminDrain(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Shard string `json:"shard"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing drain request: %w", err))
		return
	}
	if req.Shard == "" {
		writeError(w, http.StatusBadRequest, errors.New("shard name required"))
		return
	}
	err := s.m.Drain(req.Shard)
	s.writeAdminResult(w, err)
}

// writeAdminResult reports a resize/drain outcome with the router's
// current placement snapshot attached — on failure too, so the operator
// sees exactly which shards hold what.
func (s *server) writeAdminResult(w http.ResponseWriter, opErr error) {
	rs, statsErr := s.m.RouterStats()
	if opErr != nil {
		code := adminErrorCode(opErr)
		if code == http.StatusBadRequest {
			// Migration failures are server-side conditions, not client
			// mistakes.
			code = http.StatusInternalServerError
		}
		setRetryAfter(w, code)
		body := map[string]any{"error": opErr.Error()}
		if statsErr == nil {
			body["router"] = toRouterStatsJSON(rs)
		}
		writeJSON(w, code, body)
		return
	}
	if statsErr != nil {
		writeError(w, adminErrorCode(statsErr), statsErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"router": toRouterStatsJSON(rs)})
}
