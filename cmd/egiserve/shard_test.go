package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"egi"
)

// promSample matches one exposition sample line: a metric name, an
// optional label set, and a number.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?$`)

// scrape fetches /metrics, validates the text exposition line by line,
// and returns the samples keyed by their full name{labels} token.
func scrape(t *testing.T, client *http.Client, base string) map[string]float64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	seenHelp, seenType := map[string]bool{}, map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if h, ok := strings.CutPrefix(line, "# HELP "); ok {
			seenHelp[strings.SplitN(h, " ", 2)[0]] = true
			continue
		}
		if ty, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(ty)
			if len(fields) != 2 || (fields[1] != "gauge" && fields[1] != "counter") {
				t.Fatalf("bad TYPE line: %q", line)
			}
			seenType[fields[0]] = true
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("bad sample line: %q", line)
		}
		sp := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		key := line[:sp]
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !seenHelp[name] || !seenType[name] {
			t.Fatalf("sample %q precedes its HELP/TYPE lines", line)
		}
		out[key] = v
	}
	return out
}

// TestMetricsExposition: /metrics serves valid Prometheus text format
// with the serving gauges and the monotonic ingest counter, no client
// library involved.
func TestMetricsExposition(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 4096, 0, limits{}).handler())
	defer ts.Close()
	client := ts.Client()

	for i, id := range []string{"a", "b"} {
		data := sensorSeries(500, 40, int64(i), 200)
		resp := post(t, client, fmt.Sprintf("%s/v1/streams/%s/points", ts.URL, id), jsonBody(t, data), "application/json")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", id, resp.StatusCode)
		}
	}

	samples := scrape(t, client, ts.URL)
	if got := samples["egi_streams"]; got != 2 {
		t.Fatalf("egi_streams = %g, want 2", got)
	}
	if got := samples["egi_ingest_points_total"]; got != 1000 {
		t.Fatalf("egi_ingest_points_total = %g, want 1000", got)
	}
	if got := samples["egi_stream_points"]; got != 1000 {
		t.Fatalf("egi_stream_points = %g, want 1000", got)
	}
	if got := samples["egi_memory_bytes"]; got <= 0 {
		t.Fatalf("egi_memory_bytes = %g", got)
	}
	for _, name := range []string{"egi_streams_degraded", "egi_streams_quarantined", "egi_streams_evicted_total", "egi_recovery_failures"} {
		if got, ok := samples[name]; !ok || got != 0 {
			t.Fatalf("%s = %g (present %v), want 0", name, got, ok)
		}
	}
	// A single-shard server exposes no router families.
	for key := range samples {
		if strings.HasPrefix(key, "egi_shard_") || strings.HasPrefix(key, "egi_router_") {
			t.Fatalf("router metric %q on a single-shard server", key)
		}
	}
}

// adminPost posts a JSON body to an admin endpoint and decodes the
// response into out, returning the status code.
func adminPost(t *testing.T, client *http.Client, url string, req any, out any) int {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, client, url, bytes.NewReader(b), "application/json")
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestShardedServingAndAdmin: a -shards server spreads streams over the
// shard set, names each stream's shard in stats, keeps listings sorted,
// exposes per-shard metrics, and resizes and drains live through the
// admin endpoints without losing a point.
func TestShardedServingAndAdmin(t *testing.T) {
	m, err := egi.NewShardedManager(3, egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 4096, 0, limits{}).handler())
	defer ts.Close()
	client := ts.Client()

	const nStreams, nPoints = 12, 300
	for i := 0; i < nStreams; i++ {
		// Deliberately ingest in reverse order; the listing must sort.
		id := fmt.Sprintf("sensor-%02d", nStreams-1-i)
		data := sensorSeries(nPoints, 40, int64(i), 100)
		resp := post(t, client, fmt.Sprintf("%s/v1/streams/%s/points", ts.URL, id), jsonBody(t, data), "application/json")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", id, resp.StatusCode)
		}
	}

	lr := getList(t, client, ts.URL)
	if len(lr.Streams) != nStreams {
		t.Fatalf("%d streams listed, want %d", len(lr.Streams), nStreams)
	}
	shardsUsed := map[string]int{}
	for i, st := range lr.Streams {
		if i > 0 && lr.Streams[i-1].ID >= st.ID {
			t.Fatalf("listing out of order: %q before %q", lr.Streams[i-1].ID, st.ID)
		}
		if st.Shard == "" {
			t.Fatalf("%s: no shard in stats", st.ID)
		}
		shardsUsed[st.Shard]++
	}
	if len(shardsUsed) < 2 {
		t.Fatalf("all streams on one shard: %v", shardsUsed)
	}

	samples := scrape(t, client, ts.URL)
	var perShard float64
	for name, n := range shardsUsed {
		key := fmt.Sprintf(`egi_shard_streams{shard="%s"}`, name)
		if got := samples[key]; got != float64(n) {
			t.Fatalf("%s = %g, want %d", key, samples[key], n)
		}
		perShard += samples[key]
	}
	if perShard != nStreams {
		t.Fatalf("shard stream gauges sum to %g, want %d", perShard, nStreams)
	}
	if samples["egi_router_migrations_total"] != 0 {
		t.Fatalf("migrations before any admin call: %g", samples["egi_router_migrations_total"])
	}

	// Grow to 4 shards, live.
	var grown struct {
		Router routerStatsJSON `json:"router"`
	}
	if code := adminPost(t, client, ts.URL+"/v1/admin/resize", map[string]int{"shards": 4}, &grown); code != http.StatusOK {
		t.Fatalf("resize status %d", code)
	}
	if len(grown.Router.Shards) != 4 {
		t.Fatalf("%d shards after resize, want 4: %+v", len(grown.Router.Shards), grown.Router)
	}
	if grown.Router.Version < 2 {
		t.Fatalf("placement version %d after resize, want >= 2", grown.Router.Version)
	}

	// Drain the busiest shard; its streams move and keep serving.
	busiest, most := "", -1
	for _, sh := range grown.Router.Shards {
		if sh.Streams > most {
			busiest, most = sh.Name, sh.Streams
		}
	}
	var drained struct {
		Router routerStatsJSON `json:"router"`
	}
	if code := adminPost(t, client, ts.URL+"/v1/admin/drain", map[string]string{"shard": busiest}, &drained); code != http.StatusOK {
		t.Fatalf("drain status %d", code)
	}
	for _, sh := range drained.Router.Shards {
		if sh.Name == busiest {
			if sh.Streams != 0 || !sh.Draining {
				t.Fatalf("drained shard %+v", sh)
			}
		}
	}
	if drained.Router.Migrations < int64(most) {
		t.Fatalf("migrations %d after draining %d streams", drained.Router.Migrations, most)
	}

	// Every stream survived both operations with every point intact.
	lr = getList(t, client, ts.URL)
	if len(lr.Streams) != nStreams {
		t.Fatalf("%d streams after resize+drain, want %d", len(lr.Streams), nStreams)
	}
	for _, st := range lr.Streams {
		if st.Points != nPoints {
			t.Fatalf("%s: %d points after resize+drain, want %d", st.ID, st.Points, nPoints)
		}
		if st.Shard == busiest {
			t.Fatalf("%s still on drained shard %s", st.ID, busiest)
		}
	}

	// Bad admin requests.
	if code := adminPost(t, client, ts.URL+"/v1/admin/resize", map[string]int{"shards": 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("resize to 0: status %d", code)
	}
	if code := adminPost(t, client, ts.URL+"/v1/admin/drain", map[string]string{"shard": "nope"}, nil); code == http.StatusOK {
		t.Fatal("draining an unknown shard succeeded")
	}
}

// TestAdminNotSharded: shard administration on a single-shard server is
// a 409, not a crash or a silent no-op.
func TestAdminNotSharded(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 4096, 0, limits{}).handler())
	defer ts.Close()
	client := ts.Client()

	if code := adminPost(t, client, ts.URL+"/v1/admin/resize", map[string]int{"shards": 2}, nil); code != http.StatusConflict {
		t.Fatalf("resize on single-shard server: status %d, want 409", code)
	}
	if code := adminPost(t, client, ts.URL+"/v1/admin/drain", map[string]string{"shard": "shard-000"}, nil); code != http.StatusConflict {
		t.Fatalf("drain on single-shard server: status %d, want 409", code)
	}
}

// TestIngestOverrides: query-parameter overrides create the stream with
// pinned settings; repeating them is idempotent, conflicting ones are a
// 409, malformed ones a 400 — and a rejected request pushes nothing.
func TestIngestOverrides(t *testing.T) {
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(newServer(m, "value", 4096, 0, limits{}).handler())
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/v1/streams/s/points"

	resp := post(t, client, url+"?threshold=0.5", strings.NewReader("1\n2\n3\n"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest with overrides: status %d", resp.StatusCode)
	}
	resp = post(t, client, url+"?threshold=0.5", strings.NewReader("4\n5\n"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat ingest with same overrides: status %d", resp.StatusCode)
	}
	resp = post(t, client, url, strings.NewReader("6\n"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest without overrides on overridden stream: status %d", resp.StatusCode)
	}

	resp = post(t, client, url+"?threshold=0.4", strings.NewReader("7\n"), "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting overrides: status %d: %s", resp.StatusCode, body)
	}

	for _, q := range []string{"?threshold=2", "?threshold=abc", "?window=0", "?window=abc", "?hop=-1", "?rebase_every=x"} {
		resp = post(t, client, url+q, strings.NewReader("8\n"), "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	// Rejected requests pushed nothing: 3+2+1 accepted points total.
	resp, err2 := client.Get(ts.URL + "/v1/streams/s")
	if err2 != nil {
		t.Fatal(err2)
	}
	var st struct {
		Stats streamStatsJSON `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Stats.Points != 6 {
		t.Fatalf("points = %d, want 6", st.Stats.Points)
	}
}
