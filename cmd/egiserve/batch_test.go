package main

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"egi"
)

// ingestHarness is one manager + server + SSE firehose, so two of them
// can be fed the same series with different request chunking.
type ingestHarness struct {
	m   *egi.Manager
	ts  *httptest.Server
	sse *sseReader
}

func newIngestHarness(t *testing.T) *ingestHarness {
	t.Helper()
	m, err := egi.NewManager(egi.ManagerOptions{Stream: testOptions()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(m, "value", 4096, 0, limits{}).handler())
	resp, err := ts.Client().Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE subscribe: status %d", resp.StatusCode)
	}
	t.Cleanup(ts.Close)
	return &ingestHarness{m: m, ts: ts, sse: newSSEReader(resp.Body)}
}

// postChunk posts one ingest request and returns (status, accepted).
func (h *ingestHarness) postChunk(t *testing.T, id string, body io.Reader, contentType string) (int, int) {
	t.Helper()
	resp := post(t, h.ts.Client(), h.ts.URL+"/v1/streams/"+id+"/points", body, contentType)
	defer resp.Body.Close()
	var out struct {
		Pushed   int `json:"pushed"`
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding ingest response: %v", err)
	}
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, out.Pushed
	}
	return resp.StatusCode, out.Accepted
}

// TestIngestChunkingInvariant is the HTTP layer of the batch==per-point
// property: the same series POSTed as one big request must produce
// exactly the same accepted counts, SSE-delivered events, and final
// stats as the same series drip-fed in many small requests (mixing
// NDJSON and JSON-array bodies). Request chunking is a transport detail;
// the detector must not be able to see it.
func TestIngestChunkingInvariant(t *testing.T) {
	big := newIngestHarness(t)
	small := newIngestHarness(t)
	const id = "sensor"
	series := sensorSeries(1400, 40, 23, 500, 1100)

	// One request carrying everything.
	status, accepted := big.postChunk(t, id, jsonBody(t, series), "application/json")
	if status != http.StatusOK || accepted != len(series) {
		t.Fatalf("big POST: status %d accepted %d, want 200/%d", status, accepted, len(series))
	}

	// The same series in many small requests of random size and format.
	rng := rand.New(rand.NewSource(4))
	total := 0
	for off := 0; off < len(series); {
		n := 1 + rng.Intn(13)
		if off+n > len(series) {
			n = len(series) - off
		}
		chunk := series[off : off+n]
		var st, acc int
		if rng.Intn(2) == 0 {
			st, acc = small.postChunk(t, id, ndjsonBody(chunk), "")
		} else {
			st, acc = small.postChunk(t, id, jsonBody(t, chunk), "application/json")
		}
		if st != http.StatusOK || acc != n {
			t.Fatalf("small POST at %d: status %d accepted %d, want 200/%d", off, st, acc, n)
		}
		total += acc
		off += n
	}
	if total != len(series) {
		t.Fatalf("small POSTs accepted %d points, want %d", total, len(series))
	}

	// DELETE flushes the stream; closing the managers ends the SSE
	// bodies so the readers finish with every delivered event.
	for _, h := range []*ingestHarness{big, small} {
		resp, err := http.NewRequest(http.MethodDelete, h.ts.URL+"/v1/streams/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.ts.Client().Do(resp)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Stats streamStatsJSON `json:"stats"`
		}
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if out.Stats.Points != int64(len(series)) {
			t.Fatalf("final stats count %d points, want %d", out.Stats.Points, len(series))
		}
		h.m.Close()
		select {
		case <-h.sse.done:
		case <-time.After(10 * time.Second):
			t.Fatal("SSE reader did not finish after manager close")
		}
	}

	evBig, evSmall := big.sse.events[id], small.sse.events[id]
	if len(evBig) == 0 {
		t.Fatal("fixture emitted no events; the comparison proved nothing")
	}
	if len(evBig) != len(evSmall) {
		t.Fatalf("event counts diverge: %d from one big POST vs %d from small POSTs", len(evBig), len(evSmall))
	}
	for i := range evBig {
		if evBig[i] != evSmall[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, evBig[i], evSmall[i])
		}
	}
}

// TestIngestNonFiniteBoundary pins the ingest boundary for non-finite
// points: JSON cannot carry NaN/Inf, so a body smuggling one (an
// overflowing literal, a bare NaN) is rejected at parse with accepted=0
// and NOTHING applied — whether it arrives as one big batch or a small
// one. This is why a mid-batch detector non-finite error is unreachable
// over HTTP under the default reject policy: the transport rejects the
// whole request first, and the accepted count says so.
func TestIngestNonFiniteBoundary(t *testing.T) {
	h := newIngestHarness(t)
	const id = "sensor"
	if st, acc := h.postChunk(t, id, ndjsonBody([]float64{1, 2, 3}), ""); st != http.StatusOK || acc != 3 {
		t.Fatalf("seed POST: status %d accepted %d", st, acc)
	}
	for _, body := range []string{
		"4\n5\nNaN\n6\n",   // bare NaN mid-batch
		"4\n5\n1e999\n6\n", // overflows float64 → would be +Inf
		"4\n{\"value\": -1e999}\n",
	} {
		st, acc := h.postChunk(t, id, strings.NewReader(body), "")
		if st != http.StatusBadRequest || acc != 0 {
			t.Fatalf("non-finite body %q: status %d accepted %d, want 400/0", body, st, acc)
		}
	}
	// Nothing from the rejected bodies reached the stream.
	resp, err := h.ts.Client().Get(h.ts.URL + "/v1/streams/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Stats streamStatsJSON `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Points != 3 {
		t.Fatalf("stream holds %d points after rejected bodies, want 3", out.Stats.Points)
	}
	h.m.Close()
}
