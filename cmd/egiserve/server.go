package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"egi"
	"egi/internal/ndjson"
)

// server wires one egi.Manager to the HTTP surface. All handler state
// lives in the manager; the server itself only holds configuration.
type server struct {
	m        *egi.Manager
	field    string // NDJSON object member holding the value
	eventBuf int    // per-SSE-subscription channel capacity
	maxBody  int64  // ingest request body cap, bytes
	limits   limits

	// sseWriteTimeout bounds each SSE write: a client that stops reading
	// (full TCP window) fails its next write instead of wedging the
	// handler — and with it event delivery and graceful shutdown —
	// forever. The deadline is cleared after each successful write so it
	// bounds one write, not the connection. heartbeatEvery paces the
	// comment frames that keep idle connections alive. Both are fields
	// (defaulting to 30s/15s) so tests can compress them.
	sseWriteTimeout time.Duration
	heartbeatEvery  time.Duration

	// ingested counts points accepted by this server process since start:
	// the monotonic egi_ingest_points_total counter on /metrics (stream
	// point counts reset when streams close; a counter must not).
	ingested atomic.Int64
}

// defaultMaxBody caps ingest bodies when -max-body is unset. Ingest
// parses the whole body before pushing, so the cap is what keeps a single
// request from dwarfing the per-stream memory the server accounts for.
const defaultMaxBody = 32 << 20

// limits echoes the configured bounds in /v1/streams responses so
// operators can read utilization against capacity from one call.
type limits struct {
	MaxStreams int   `json:"max_streams,omitempty"`
	MaxBytes   int64 `json:"max_bytes,omitempty"`
}

func newServer(m *egi.Manager, field string, eventBuf int, maxBody int64, lim limits) *server {
	if field == "" {
		field = "value"
	}
	if eventBuf <= 0 {
		eventBuf = 1024
	}
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	return &server{
		m: m, field: field, eventBuf: eventBuf, maxBody: maxBody, limits: lim,
		sseWriteTimeout: 30 * time.Second,
		heartbeatEvery:  15 * time.Second,
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/streams/{id}/points", s.ingest)
	mux.HandleFunc("POST /v1/streams/{id}/snapshot", s.snapshotStream)
	mux.HandleFunc("GET /v1/streams/{id}/replay", s.replayStream)
	mux.HandleFunc("GET /v1/streams", s.listStreams)
	mux.HandleFunc("GET /v1/stats", s.listStreams)
	mux.HandleFunc("GET /v1/streams/{id}", s.streamStats)
	mux.HandleFunc("DELETE /v1/streams/{id}", s.closeStream)
	mux.HandleFunc("GET /v1/events", s.events)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("POST /v1/admin/resize", s.adminResize)
	mux.HandleFunc("POST /v1/admin/drain", s.adminDrain)
	return mux
}

// sweep evicts idle streams every interval until the context ends; run
// starts it alongside the listener so idle streams are reclaimed even
// when no limit forces the issue.
func (s *server) sweep(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.m.EvictIdle()
		}
	}
}

// streamStatsJSON is the wire form of egi.StreamStats. The health fields
// are omitted entirely for healthy streams so the common case stays
// compact; a true "degraded" means the stream is accepting pushes in
// memory only while the server retries durability.
type streamStatsJSON struct {
	ID          string    `json:"id"`
	Points      int64     `json:"points"`
	Events      int64     `json:"events"`
	MemoryBytes int64     `json:"memory_bytes"`
	Created     time.Time `json:"created"`
	LastPush    time.Time `json:"last_push"`
	Degraded    bool      `json:"degraded,omitempty"`
	Quarantined bool      `json:"quarantined,omitempty"`
	Fault       string    `json:"fault,omitempty"`
	Shard       string    `json:"shard,omitempty"`
}

func toStatsJSON(st egi.StreamStats) streamStatsJSON {
	return streamStatsJSON{
		ID:          st.ID,
		Points:      st.Points,
		Events:      st.Events,
		MemoryBytes: st.MemoryBytes,
		Created:     st.Created,
		LastPush:    st.LastPush,
		Degraded:    st.Degraded,
		Quarantined: st.Quarantined,
		Fault:       st.Fault,
		Shard:       st.Shard,
	}
}

// eventJSON is the wire form of one confirmed anomaly event, both in SSE
// frames and in ranking responses (where Stream is omitted).
type eventJSON struct {
	Stream  string  `json:"stream,omitempty"`
	Pos     int     `json:"pos"`
	Length  int     `json:"length"`
	Density float64 `json:"density"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// setRetryAfter attaches a Retry-After header to retryable rejections:
// overload (429) is transient — a short pause and retry usually succeeds
// once eviction or the client's own backoff frees budget — while shutdown
// (503) wants a longer pause so clients re-resolve to a healthy replica.
// Must run before the status line is written.
func setRetryAfter(w http.ResponseWriter, code int) {
	switch code {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "5")
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	setRetryAfter(w, code)
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeIngestError reports an ingest failure together with the number of
// points that WERE applied before it — the client's resume coordinate: on
// a partial failure it must resend xs[accepted:], nothing more, nothing
// less.
func writeIngestError(w http.ResponseWriter, code int, err error, accepted int) {
	setRetryAfter(w, code)
	writeJSON(w, code, map[string]any{"error": err.Error(), "accepted": accepted})
}

// errorCode maps manager/detector errors onto HTTP statuses: limit
// rejections are 429 (back off and retry), shutdown is 503, a settings
// conflict with an existing stream is 409, a quarantined stream is a
// server-side 500 (the client's request was fine; the stream needs
// operator attention or a DELETE), everything else about the request's
// content is 400.
func errorCode(err error) int {
	switch {
	case errors.Is(err, egi.ErrTooManyStreams), errors.Is(err, egi.ErrOverBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, egi.ErrManagerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, egi.ErrUnknownStream):
		return http.StatusNotFound
	case errors.Is(err, egi.ErrStreamConfig):
		return http.StatusConflict
	case errors.Is(err, egi.ErrStreamQuarantined):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// parseOverrides reads per-stream setting overrides from ingest query
// parameters (window, buflen, hop, threshold, rebase_every). Absent
// parameters inherit the server's template; the zero value and false
// report no overrides at all.
func parseOverrides(q url.Values) (egi.StreamOverrides, bool, error) {
	var ov egi.StreamOverrides
	any := false
	intParam := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("query parameter %s must be a positive integer (got %q)", name, v)
		}
		*dst = n
		any = true
		return nil
	}
	if err := intParam("window", &ov.Window); err != nil {
		return ov, false, err
	}
	if err := intParam("buflen", &ov.BufLen); err != nil {
		return ov, false, err
	}
	if err := intParam("hop", &ov.Hop); err != nil {
		return ov, false, err
	}
	if err := intParam("rebase_every", &ov.RebaseEvery); err != nil {
		return ov, false, err
	}
	if v := q.Get("threshold"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || !(t > 0 && t <= 1) {
			return ov, false, fmt.Errorf("query parameter threshold must be in (0, 1] (got %q)", v)
		}
		ov.Threshold = t
		any = true
	}
	return ov, any, nil
}

// ingest handles POST /v1/streams/{id}/points: the body is either NDJSON
// (one point per line: a bare number, or an object whose configured field
// holds the value) or, with Content-Type application/json, one JSON array
// of numbers. The stream is created on first use; the response reports
// the accepted count and the stream's post-push accounting. Every error
// response also carries "accepted" — how many points were applied before
// the failure — so clients resend exactly the unapplied remainder.
func (s *server) ingest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	bufp := pointBufs.Get().(*[]float64)
	defer putPointBuf(bufp)
	points, err := parsePoints(body, r.Header.Get("Content-Type"), s.field, (*bufp)[:0])
	if cap(points) > cap(*bufp) {
		*bufp = points[:0] // keep the grown buffer for the next request
	}
	if err != nil {
		// The body is parsed in full before anything is pushed, so a
		// malformed body applies zero points.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeIngestError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes; split the batch", s.maxBody), 0)
			return
		}
		writeIngestError(w, http.StatusBadRequest, err, 0)
		return
	}
	if len(points) == 0 {
		writeIngestError(w, http.StatusBadRequest, errors.New("no points in request body"), 0)
		return
	}
	// Per-stream setting overrides ride on query parameters; they bind at
	// create time, so pushing with overrides to an existing stream whose
	// settings differ is a 409 with zero points applied.
	if ov, hasOv, err := parseOverrides(r.URL.Query()); err != nil {
		writeIngestError(w, http.StatusBadRequest, err, 0)
		return
	} else if hasOv {
		if err := s.m.OpenWith(id, ov); err != nil {
			writeIngestError(w, errorCode(err), err, 0)
			return
		}
	}
	accepted, err := s.m.PushBatchN(id, points)
	s.ingested.Add(int64(accepted))
	if err != nil {
		writeIngestError(w, errorCode(err), err, accepted)
		return
	}
	st, err := s.m.StreamStats(id)
	if err != nil {
		// The stream was evicted between push and stats; report the push.
		writeJSON(w, http.StatusOK, map[string]any{"stream": id, "pushed": accepted})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": id,
		"pushed": accepted,
		"stats":  toStatsJSON(st),
	})
}

// pointBufs pools ingest batch buffers: each request parses its whole
// body into one buffer and hands it to PushBatchN once, and the buffer's
// grown capacity is recycled for the next request instead of re-allocated.
// The manager copies what it keeps (ring, scratch, WAL record) before
// PushBatchN returns, so returning the buffer to the pool after the
// response is race-free.
var pointBufs = sync.Pool{New: func() any { b := make([]float64, 0, 1024); return &b }}

// putPointBuf recycles an ingest buffer, dropping oversized ones so one
// huge request does not pin its buffer in the pool for the process
// lifetime (the cap is 64k points, 512 KiB).
func putPointBuf(bufp *[]float64) {
	if cap(*bufp) > 1<<16 {
		return
	}
	*bufp = (*bufp)[:0]
	pointBufs.Put(bufp)
}

// parsePoints decodes an ingest body into buf (reusing its capacity).
// contentType application/json selects the JSON-array form; anything else
// is parsed as NDJSON. Both forms reject null and non-number elements
// with a position-precise error — encoding/json would otherwise skip a
// null, leaving the target element 0.0 and silently poisoning the stream
// with a fabricated point.
func parsePoints(r io.Reader, contentType, field string, buf []float64) ([]float64, error) {
	if ct, _, _ := strings.Cut(contentType, ";"); strings.TrimSpace(ct) == "application/json" {
		var raw []*float64
		dec := json.NewDecoder(r)
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("parsing JSON array body: %w", err)
		}
		// Decode stops after the first value; silently dropping trailing
		// content would acknowledge points that were never pushed.
		if _, err := dec.Token(); !errors.Is(err, io.EOF) {
			if err != nil {
				return nil, fmt.Errorf("reading after JSON array body: %w", err)
			}
			return nil, errors.New("trailing data after JSON array body")
		}
		points := buf
		for i, p := range raw {
			if p == nil {
				return nil, fmt.Errorf("JSON array element %d is null, not a number", i)
			}
			points = append(points, *p)
		}
		return points, nil
	}
	points := buf
	err := ndjson.ForEach(r, field, func(_ int, v float64) error {
		points = append(points, v)
		return nil
	})
	return points, err
}

// snapshotStream handles POST /v1/streams/{id}/snapshot: force a
// durability checkpoint of the stream right now, superseding its
// write-ahead log tail. Requires the server to run with -data-dir.
func (s *server) snapshotStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.SnapshotStream(id); err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	st, err := s.m.StreamStats(id)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"snapshotted": id, "stats": toStatsJSON(st)})
}

// replayStream handles GET /v1/streams/{id}/replay: re-derive the
// stream's recent events from its persisted state — restore the last
// checkpoint, re-push the logged tail — and stream them back as NDJSON,
// one object per event tagged with the hop (detection run) that confirmed
// it, followed by a summary line. The live stream is not disturbed;
// determinism makes the output exactly the events a crash-restart at the
// last checkpoint would re-announce. Requires -data-dir.
func (s *server) replayStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	wrote := false
	n, err := s.m.ReplayStream(id, func(hop int, a egi.Anomaly) error {
		wrote = true
		return enc.Encode(map[string]any{
			"hop": hop, "pos": a.Pos, "length": a.Length, "density": a.Density,
		})
	})
	if err != nil && !wrote {
		writeError(w, errorCode(err), err)
		return
	}
	summary := map[string]any{"stream": id, "replayed_points": n, "done": err == nil}
	if err != nil {
		summary["error"] = err.Error()
	}
	enc.Encode(summary)
}

// listStreams handles GET /v1/streams (and its alias GET /v1/stats):
// every live stream's accounting (sorted by id) plus the rolled-up
// totals, degraded/quarantined counts, and configured limits.
func (s *server) listStreams(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	sort.Slice(st.Streams, func(i, j int) bool { return st.Streams[i].ID < st.Streams[j].ID })
	streams := make([]streamStatsJSON, len(st.Streams))
	for i, s := range st.Streams {
		streams[i] = toStatsJSON(s)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"streams":             streams,
		"total_bytes":         st.TotalBytes,
		"evicted":             st.Evicted,
		"degraded_streams":    st.Degraded,
		"quarantined_streams": st.Quarantined,
		"max_streams":         s.limits.MaxStreams,
		"max_bytes":           s.limits.MaxBytes,
	})
}

// streamStats handles GET /v1/streams/{id}: one stream's accounting, plus
// its current top-K ranking when enough of the stream has been covered.
func (s *server) streamStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.m.StreamStats(id)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	resp := map[string]any{"stats": toStatsJSON(st)}
	if anomalies, err := s.m.Anomalies(id); err == nil {
		ranking := make([]eventJSON, len(anomalies))
		for i, a := range anomalies {
			ranking[i] = eventJSON{Pos: a.Pos, Length: a.Length, Density: a.Density}
		}
		resp["anomalies"] = ranking
	}
	writeJSON(w, http.StatusOK, resp)
}

// closeStream handles DELETE /v1/streams/{id}: flush the stream (its
// final events reach subscribers first), release its memory, and return
// its final accounting.
func (s *server) closeStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.m.CloseStream(id)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": id, "stats": toStatsJSON(st)})
}

// events handles GET /v1/events: a Server-Sent Events firehose of
// confirmed anomalies — every stream's, or one stream's with ?stream=id.
// Each anomaly is an `event: anomaly` frame holding an eventJSON
// document; stream health transitions (degraded, healed, quarantined)
// arrive as `event: health` frames so a monitor on the firehose sees a
// disk failure the moment a stream falls back to memory-only operation;
// comment heartbeats keep idle connections alive. The stream ends when the client
// disconnects or the server shuts down (after every detector has been
// flushed, so no confirmed event is lost to shutdown). Every write
// carries a deadline: a client that stops reading is disconnected — and
// its subscription canceled, releasing any backpressure it was exerting —
// rather than wedging delivery and graceful shutdown indefinitely.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer does not support streaming"))
		return
	}
	rc := http.NewResponseController(w)
	ch, cancel := s.m.Subscribe(r.URL.Query().Get("stream"), s.eventBuf)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	write := func(format string, args ...any) bool {
		rc.SetWriteDeadline(time.Now().Add(s.sseWriteTimeout))
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return false
		}
		if rc.Flush() != nil {
			return false
		}
		// Clear the deadline: it bounds one write, not the connection —
		// a healthy client left under a stale deadline would be cut off
		// mid-idle the next time the clock passes it.
		rc.SetWriteDeadline(time.Time{})
		return true
	}

	heartbeat := time.NewTicker(s.heartbeatEvery)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // manager closed: all streams flushed and delivered
			}
			kind, b, err := formatEvent(ev)
			if err != nil {
				return
			}
			if !write("event: %s\ndata: %s\n\n", kind, b) {
				return
			}
		case <-heartbeat.C:
			if !write(": ping\n\n") {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// healthJSON is the wire form of one SSE health-transition frame.
type healthJSON struct {
	Stream string `json:"stream"`
	State  string `json:"state"`
	Cause  string `json:"cause,omitempty"`
}

// formatEvent renders one subscription event as an SSE event name plus
// JSON data: health transitions as "health" frames, everything else as
// "anomaly" frames.
func formatEvent(ev egi.StreamEvent) (kind string, data []byte, err error) {
	if ev.Health != "" {
		data, err = json.Marshal(healthJSON{Stream: ev.Stream, State: ev.Health, Cause: ev.Cause})
		return "health", data, err
	}
	data, err = json.Marshal(eventJSON{
		Stream:  ev.Stream,
		Pos:     ev.Anomaly.Pos,
		Length:  ev.Anomaly.Length,
		Density: ev.Anomaly.Density,
	})
	return "anomaly", data, err
}

// healthz handles GET /healthz with a liveness summary. The status stays
// "ok" only while every stream is fully durable; any degraded or
// quarantined stream (including recovery failures from startup) flips it
// to "degraded" — still HTTP 200, because the process is serving, but a
// signal for monitors to page on. recovery_failures lists stream
// directories skipped at startup, if any.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	status := "ok"
	if st.Degraded > 0 || st.Quarantined > 0 {
		status = "degraded"
	}
	resp := map[string]any{
		"status":              status,
		"streams":             s.m.Len(),
		"total_bytes":         st.TotalBytes,
		"degraded_streams":    st.Degraded,
		"quarantined_streams": st.Quarantined,
	}
	if fails := s.m.RecoveryFailures(); len(fails) > 0 {
		list := make([]map[string]string, len(fails))
		for i, f := range fails {
			list[i] = map[string]string{"stream": f.Stream, "error": f.Err.Error()}
		}
		resp["recovery_failures"] = list
	}
	writeJSON(w, http.StatusOK, resp)
}
