package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// testSeries renders a periodic series with one planted anomaly in the
// given textual format.
func testSeries(t *testing.T, format string, length, period, anomalyPos int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var sb strings.Builder
	for i := 0; i < length; i++ {
		v := math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.05*rng.NormFloat64()
		if i >= anomalyPos && i < anomalyPos+period {
			v = 1.2 - 2.4*math.Abs(float64(i-anomalyPos)/float64(period)-0.5)
		}
		switch format {
		case "csv":
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		case "ndjson":
			fmt.Fprintf(&sb, `{"ts":%d,"value":%s}`, i, strconv.FormatFloat(v, 'g', -1, 64))
		case "ndjson-bare":
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

type row struct {
	kind    string
	pos     int
	length  int
	density float64
}

func parseRows(t *testing.T, out string) []row {
	t.Helper()
	var rows []row
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		f := strings.Split(sc.Text(), "\t")
		var r row
		var err error
		switch {
		case f[0] == "event" && len(f) == 4:
			r.kind = "event"
			r.pos, err = strconv.Atoi(f[1])
			if err == nil {
				r.length, err = strconv.Atoi(f[2])
			}
			if err == nil {
				r.density, err = strconv.ParseFloat(f[3], 64)
			}
		case f[0] == "top" && len(f) == 5:
			r.kind = "top"
			r.pos, err = strconv.Atoi(f[2])
			if err == nil {
				r.length, err = strconv.Atoi(f[3])
			}
			if err == nil {
				r.density, err = strconv.ParseFloat(f[4], 64)
			}
		default:
			t.Fatalf("bad output line %q", sc.Text())
		}
		if err != nil {
			t.Fatalf("parsing %q: %v", sc.Text(), err)
		}
		rows = append(rows, r)
	}
	return rows
}

func hasKindNear(rows []row, kind string, pos, slack int) bool {
	for _, r := range rows {
		if r.kind == kind && r.pos >= pos-slack && r.pos <= pos+slack {
			return true
		}
	}
	return false
}

// TestRunEmitsEventForScrolledOutAnomaly: an anomaly that left the ring
// buffer long before EOF must be reported as an event line.
func TestRunEmitsEventForScrolledOutAnomaly(t *testing.T) {
	const length, period, anomalyPos = 6000, 50, 1000
	in := testSeries(t, "csv", length, period, anomalyPos)
	var out strings.Builder
	err := run([]string{"-window", "50", "-buflen", "500", "-seed", "3", "-size", "10"},
		strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseRows(t, out.String())
	if !hasKindNear(rows, "event", anomalyPos, period) {
		t.Errorf("no event near the planted anomaly at %d:\n%s", anomalyPos, out.String())
	}
	var tops int
	for _, r := range rows {
		if r.kind == "top" {
			tops++
		}
	}
	if tops == 0 {
		t.Error("no final top ranking printed")
	}
}

// TestRunShortStreamTopMatchesAnomaly: a stream that fits in the buffer
// ranks the planted anomaly first.
func TestRunShortStreamTopMatchesAnomaly(t *testing.T) {
	const length, period, anomalyPos = 2000, 50, 1000
	for _, tc := range []struct {
		format string
		args   []string
	}{
		{"csv", []string{"-window", "50", "-seed", "3", "-size", "10", "-buflen", "2000"}},
		{"ndjson", []string{"-window", "50", "-seed", "3", "-size", "10", "-buflen", "2000", "-format", "ndjson"}},
		{"ndjson-bare", []string{"-window", "50", "-seed", "3", "-size", "10", "-buflen", "2000", "-format", "ndjson"}},
	} {
		in := testSeries(t, tc.format, length, period, anomalyPos)
		var out strings.Builder
		if err := run(tc.args, strings.NewReader(in), &out); err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		rows := parseRows(t, out.String())
		var top *row
		for i := range rows {
			if rows[i].kind == "top" {
				top = &rows[i]
				break
			}
		}
		if top == nil {
			t.Fatalf("%s: no top rows:\n%s", tc.format, out.String())
		}
		if d := top.pos - anomalyPos; d < -period || d > period {
			t.Errorf("%s: top anomaly at %d, planted at %d", tc.format, top.pos, anomalyPos)
		}
	}
}

// TestRunJSONOutput: -json turns every line into an NDJSON document.
func TestRunJSONOutput(t *testing.T) {
	in := testSeries(t, "csv", 2000, 50, 1000)
	var out strings.Builder
	err := run([]string{"-window", "50", "-seed", "3", "-size", "10", "-buflen", "2000", "-json"},
		strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	lines := 0
	for sc.Scan() {
		lines++
		text := sc.Text()
		if !strings.HasPrefix(text, `{"`) || !strings.Contains(text, `"pos"`) {
			t.Errorf("line %d is not an event/top document: %q", lines, text)
		}
	}
	if lines == 0 {
		t.Error("no JSON output")
	}
}

// TestRunQuotedCSV: the CSV path speaks real CSV — quoted fields with
// embedded commas in earlier columns don't shift the value column.
func TestRunQuotedCSV(t *testing.T) {
	plain := testSeries(t, "csv", 2000, 50, 1000)
	var in strings.Builder
	in.WriteString("label,value\n")
	for _, line := range strings.Split(strings.TrimSpace(plain), "\n") {
		fmt.Fprintf(&in, "\"sensor, rack 3\",%s\n", line)
	}
	var out strings.Builder
	err := run([]string{"-window", "50", "-col", "1", "-seed", "3", "-size", "10", "-buflen", "2000"},
		strings.NewReader(in.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	rows := parseRows(t, out.String())
	if !hasKindNear(rows, "top", 1000, 50) {
		t.Errorf("quoted CSV: no top anomaly near 1000:\n%s", out.String())
	}
}

// TestRunSkipsCSVHeader: a non-numeric first line is tolerated as a header.
func TestRunSkipsCSVHeader(t *testing.T) {
	in := "value\n" + testSeries(t, "csv", 2000, 50, 1000)
	var out strings.Builder
	err := run([]string{"-window", "50", "-seed", "3", "-size", "10", "-buflen", "2000"},
		strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(parseRows(t, out.String())) == 0 {
		t.Error("no output after header skip")
	}
}

func TestRunErrors(t *testing.T) {
	good := testSeries(t, "csv", 400, 50, 200)
	cases := []struct {
		name string
		args []string
		in   string
	}{
		{"missing window", []string{}, good},
		{"window too small", []string{"-window", "1"}, good},
		{"bad format", []string{"-window", "50", "-format", "xml"}, good},
		{"buffer too small", []string{"-window", "50", "-buflen", "100"}, good},
		{"hop too large", []string{"-window", "50", "-buflen", "200", "-hop", "600"}, good},
		{"bad threshold", []string{"-window", "50", "-threshold", "7"}, good},
		{"non-numeric line", []string{"-window", "50"}, "1\n2\nnope\n"},
		{"non-finite point", []string{"-window", "50"}, "1\n2\nNaN\n"},
		{"missing ndjson field", []string{"-window", "50", "-format", "ndjson"}, `{"other":1}` + "\n"},
		{"ndjson null member", []string{"-window", "50", "-format", "ndjson"}, `{"value":null}` + "\n"},
		{"ndjson bare null", []string{"-window", "50", "-format", "ndjson"}, "1\n2\nnull\n"},
		{"stream too short", []string{"-window", "50"}, "1\n2\n3\n"},
	}
	for _, tc := range cases {
		var out strings.Builder
		if err := run(tc.args, strings.NewReader(tc.in), &out); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// TestMalformedNDJSONReportsLine: a malformed NDJSON line must surface a
// line-precise error quoting the offending content — never a silent stop.
func TestMalformedNDJSONReportsLine(t *testing.T) {
	var out strings.Builder
	in := "1\n2.5\n{\"value\": \"broken\"}\n4\n"
	err := run([]string{"-window", "50", "-format", "ndjson"}, strings.NewReader(in), &out)
	if err == nil {
		t.Fatal("malformed NDJSON line accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") {
		t.Errorf("error %q does not name the offending line", msg)
	}
	if !strings.Contains(msg, "broken") {
		t.Errorf("error %q does not quote the offending content", msg)
	}
}

// TestHelpExitsCleanly: -h and --help surface flag.ErrHelp, which main
// maps to exit code 0 instead of reporting a phantom error.
func TestHelpExitsCleanly(t *testing.T) {
	for _, arg := range []string{"-h", "--help"} {
		err := run([]string{arg}, strings.NewReader(""), &strings.Builder{})
		if !errors.Is(err, flag.ErrHelp) {
			t.Fatalf("%s: err = %v, want flag.ErrHelp", arg, err)
		}
	}
}
