// Command egistream detects anomalies in a continuously arriving series:
// it reads points from stdin (CSV or NDJSON, one point per line), pushes
// them through the streaming ensemble detector, and prints anomaly events
// as they confirm — memory stays bounded by the ring buffer no matter how
// long the stream runs.
//
// Usage:
//
//	egistream -window 900 [-buflen 9000] [-hop 0] [-threshold 0.2] \
//	          [-adaptive 0] [-format csv|ndjson] [-col 0] [-field value] [-json]
//
// Input formats:
//
//	csv     one value per line, or CSV rows with the value in -col
//	ndjson  one JSON document per line: either a bare number or an
//	        object whose -field member holds the value
//
// Output: one line per confirmed event, "event pos length density"
// (tab-separated), followed after EOF by the final top-K ranking within
// the detector's retained horizon, "top rank pos length density". With
// -json both become NDJSON documents instead.
//
// A malformed input line (unparsable CSV field, invalid JSON, missing or
// non-numeric -field member, non-finite value) aborts the stream with a
// line-precise error on stderr and exit code 1; events confirmed before
// the bad line have already been printed.
//
// Exit codes: 0 on success (or -h), 1 on flag, input or detection errors.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"egi"
	"egi/internal/ndjson"
)

func main() {
	err := run(os.Args[1:], os.Stdin, os.Stdout)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "egistream:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("egistream", flag.ContinueOnError)
	var (
		window    = fs.Int("window", 0, "sliding window length n (required)")
		bufLen    = fs.Int("buflen", 0, "ring buffer capacity (default 10x window)")
		hop       = fs.Int("hop", 0, "points between re-inductions (default buflen-window+1)")
		threshold = fs.Float64("threshold", 0, "event threshold on the [0,1] density score (default 0.2)")
		adaptive  = fs.Float64("adaptive", 0, "adaptive event threshold: running quantile of the score curve in (0,1), e.g. 0.05; 0 keeps the fixed -threshold")
		rebase    = fs.Int("rebase-every", 0, "hop runs between grammar rebases; 0 = adaptive (per-run at the default hop, amortized at smaller hops), 1 = re-induce every run")
		format    = fs.String("format", "csv", "input format: csv | ndjson")
		col       = fs.Int("col", 0, "CSV column holding the values (0-based)")
		field     = fs.String("field", "value", "NDJSON object member holding the value")
		jsonOut   = fs.Bool("json", false, "emit NDJSON instead of tab-separated lines")
		size      = fs.Int("size", 0, "ensemble size N (default 50)")
		wmax      = fs.Int("wmax", 0, "maximum PAA size (default 10)")
		amax      = fs.Int("amax", 0, "maximum alphabet size (default 10)")
		tau       = fs.Float64("tau", 0, "ensemble selectivity in (0,1] (default 0.4)")
		topK      = fs.Int("topk", 0, "size of the final ranking (default 3)")
		seed      = fs.Int64("seed", 0, "random seed")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `egistream — streaming anomaly detection over stdin

Usage: egistream -window N [flags] < series

Input formats (-format):
  csv     one value per line, or CSV rows with the value in -col;
          a non-numeric first row is skipped as a header
  ndjson  one JSON document per line: a bare number, or an object
          whose -field member holds the value

Output: "event pos length density" per confirmed event, then after EOF
"top rank pos length density" for the final ranking; NDJSON with -json.
A malformed line aborts with a line-precise error on stderr.
Exit codes: 0 success or -h, 1 flag, input or detection errors.

Flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *window < 2 {
		return fmt.Errorf("-window is required and must be >= 2")
	}
	if *format != "csv" && *format != "ndjson" {
		return fmt.Errorf("unknown -format %q (want csv or ndjson)", *format)
	}

	out := bufio.NewWriter(stdout)
	defer out.Flush()
	emit := func(kind string, rank int, a egi.Anomaly) {
		if *jsonOut {
			doc := map[string]any{"type": kind, "pos": a.Pos, "length": a.Length, "density": a.Density}
			if kind == "top" {
				doc["rank"] = rank
			}
			b, _ := json.Marshal(doc)
			fmt.Fprintf(out, "%s\n", b)
			return
		}
		if kind == "top" {
			fmt.Fprintf(out, "top\t%d\t%d\t%d\t%.6f\n", rank, a.Pos, a.Length, a.Density)
			return
		}
		fmt.Fprintf(out, "event\t%d\t%d\t%.6f\n", a.Pos, a.Length, a.Density)
	}

	s, err := egi.Stream(egi.StreamOptions{
		Window:           *window,
		BufLen:           *bufLen,
		Hop:              *hop,
		Threshold:        *threshold,
		AdaptiveQuantile: *adaptive,
		RebaseEvery:      *rebase,
		EnsembleSize:     *size,
		WMax:             *wmax,
		AMax:             *amax,
		Tau:              *tau,
		TopK:             *topK,
		Seed:             *seed,
		OnAnomaly: func(a egi.Anomaly) {
			emit("event", 0, a)
			// Events should reach a live consumer promptly, not sit in
			// the write buffer until EOF.
			out.Flush()
		},
	})
	if err != nil {
		return err
	}

	if err := feed(s, stdin, *format, *col, *field); err != nil {
		return err
	}
	if err := s.Flush(); err != nil {
		return err
	}

	tops, err := s.Anomalies()
	if err != nil {
		return fmt.Errorf("stream too short for a ranking (%d points): %w", s.Total(), err)
	}
	for i, a := range tops {
		emit("top", i+1, a)
	}
	return nil
}

// feed parses points and pushes them into the stream as they are read.
func feed(s *egi.Streamer, r io.Reader, format string, col int, field string) error {
	if format == "ndjson" {
		return feedNDJSON(s, r, field)
	}
	return feedCSV(s, r, col)
}

// feedCSV streams CSV rows with the same dialect and header heuristic as
// timeseries.ReadCSV (which reads whole files; this pushes row by row).
func feedCSV(s *egi.Streamer, r io.Reader, col int) error {
	if col < 0 {
		return fmt.Errorf("negative column %d", col)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	row, pushed := 0, 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("reading CSV: %w", err)
		}
		row++
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue
		}
		if col >= len(rec) {
			return fmt.Errorf("row %d has %d columns, need column %d", row, len(rec), col)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[col]), 64)
		if err != nil {
			if row == 1 && pushed == 0 {
				continue // header row
			}
			return fmt.Errorf("row %d column %d: %w", row, col, err)
		}
		if err := s.Push(v); err != nil {
			return fmt.Errorf("row %d (after %d points applied): %w", row, pushed, err)
		}
		pushed++
	}
}

// feedNDJSON streams NDJSON lines; a push failure reports how many points
// were already applied, so a caller resuming the feed knows the exact
// stream position to restart from.
func feedNDJSON(s *egi.Streamer, r io.Reader, field string) error {
	applied := 0
	return ndjson.ForEach(r, field, func(_ int, v float64) error {
		// ForEach prefixes the line number; add the applied count here.
		if err := s.Push(v); err != nil {
			return fmt.Errorf("after %d points applied: %w", applied, err)
		}
		applied++
		return nil
	})
}
