package main

import (
	"fmt"
	"time"

	"egi/internal/core"
	"egi/internal/eval"
	"egi/internal/gen"
	"egi/internal/grammar"
	"egi/internal/matrixprofile"
	"egi/internal/sax"
	"egi/internal/timeseries"
	"egi/internal/ucrsim"
)

// expFig1 reproduces the motivating example: on a dishwasher-style power
// series with one anomalous short cycle, the single-run detector's Score
// varies wildly across the (w, a) grid while the ensemble is stable.
func expFig1(cfg benchConfig) error {
	ds, err := gen.Dishwasher(20, 200, cfg.seed)
	if err != nil {
		return err
	}
	window := ds.CycleLen
	fmt.Fprintln(cfg.out, "Fig 1: single-run GI Score across the (w,a) grid (dishwasher series)")
	fmt.Fprintf(cfg.out, "%-6s", "w\\a")
	for a := 2; a <= 10; a++ {
		fmt.Fprintf(cfg.out, "%8d", a)
	}
	fmt.Fprintln(cfg.out)
	best, worst := -1.0, 2.0
	for w := 2; w <= 10; w++ {
		fmt.Fprintf(cfg.out, "%-6d", w)
		for a := 2; a <= 10; a++ {
			res, err := grammar.Detect(ds.Series, window, sax.Params{W: w, A: a}, nil, eval.TopK)
			if err != nil {
				return err
			}
			var cands []int
			for _, c := range res.Candidates {
				cands = append(cands, c.Pos)
			}
			s := eval.BestScore(cands, ds.Anomaly.Pos, ds.Anomaly.Length)
			if s > best {
				best = s
			}
			if s < worst {
				worst = s
			}
			fmt.Fprintf(cfg.out, "%8.3f", s)
		}
		fmt.Fprintln(cfg.out)
	}
	ecfg := core.DefaultConfig(window)
	ecfg.Size = cfg.ensembleSize
	ecfg.Seed = cfg.seed
	res, err := core.Detect(ds.Series, ecfg)
	if err != nil {
		return err
	}
	var cands []int
	for _, c := range res.Candidates {
		cands = append(cands, c.Pos)
	}
	fmt.Fprintf(cfg.out, "grid best %.3f, grid worst %.3f, ensemble %.3f\n",
		best, worst, eval.BestScore(cands, ds.Anomaly.Pos, ds.Anomaly.Length))
	return nil
}

// expScalability reproduces Fig. 8: runtime of the ensemble vs STOMP as
// the series length grows, on random walk, ECG and EEG data.
func expScalability(cfg benchConfig) error {
	lengths := []int{5000, 10000, 20000, 40000}
	if cfg.full {
		lengths = []int{10000, 20000, 40000, 80000, 160000}
	}
	const window = 300
	kinds := []struct {
		name string
		make func(length int) (timeseries.Series, error)
	}{
		{"RW", func(n int) (timeseries.Series, error) { return gen.RandomWalk(n, cfg.seed) }},
		{"ECG", func(n int) (timeseries.Series, error) { return gen.ECG(n, 200, cfg.seed) }},
		{"EEG", func(n int) (timeseries.Series, error) { return gen.EEG(n, 256, cfg.seed) }},
	}
	fmt.Fprintln(cfg.out, "Fig 8: runtime (seconds) vs series length, window 300")
	fmt.Fprintf(cfg.out, "%-6s%-10s%14s%14s\n", "data", "length", "ensemble", "STOMP")
	for _, k := range kinds {
		for _, n := range lengths {
			s, err := k.make(n)
			if err != nil {
				return err
			}
			ecfg := core.DefaultConfig(window)
			ecfg.Size = cfg.ensembleSize
			ecfg.Seed = cfg.seed
			start := time.Now()
			if _, err := core.Detect(s, ecfg); err != nil {
				return fmt.Errorf("%s/%d ensemble: %w", k.name, n, err)
			}
			ensSec := time.Since(start).Seconds()
			start = time.Now()
			if _, err := matrixprofile.STOMP(s, window, 0); err != nil {
				return fmt.Errorf("%s/%d STOMP: %w", k.name, n, err)
			}
			stompSec := time.Since(start).Seconds()
			fmt.Fprintf(cfg.out, "%-6s%-10d%14.3f%14.3f\n", k.name, n, ensSec, stompSec)
		}
	}
	return nil
}

// expCaseStudy reproduces Fig. 9: the fridge-freezer power usage case
// study — a very long series, window 900, top-2 anomalies.
func expCaseStudy(cfg benchConfig) error {
	length := 150000
	if cfg.full {
		length = 600000
	}
	fs, err := gen.FridgeFreezer(length, cfg.seed)
	if err != nil {
		return err
	}
	ecfg := core.DefaultConfig(fs.CycleLen)
	ecfg.Size = cfg.ensembleSize
	ecfg.Seed = cfg.seed
	ecfg.TopK = 2
	start := time.Now()
	res, err := core.Detect(fs.Series, ecfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(cfg.out, "Fig 9: fridge-freezer case study, %d points, window %d, %.1fs\n",
		length, fs.CycleLen, elapsed.Seconds())
	for i, c := range res.Candidates {
		verdict := "MISS"
		for _, gt := range fs.Anomalies {
			if c.Pos < gt.Pos+gt.Length && gt.Pos < c.Pos+c.Length {
				verdict = "matches planted " + gt.Kind
			}
		}
		fmt.Fprintf(cfg.out, "top-%d anomaly at %d (density %.4f): %s\n", i+1, c.Pos, c.Density, verdict)
	}
	for _, gt := range fs.Anomalies {
		fmt.Fprintf(cfg.out, "planted %s at %d len %d\n", gt.Kind, gt.Pos, gt.Length)
	}
	return nil
}

// expMultiAnomaly reproduces §7.5: ten long StarLightCurve series with two
// planted anomalies each; report how many are found by the top-3.
func expMultiAnomaly(cfg benchConfig) error {
	d, err := ucrsim.ByName("StarLightCurve")
	if err != nil {
		return err
	}
	det := eval.Ensemble(eval.EnsembleOptions{Size: cfg.ensembleSize})
	// 40 normal + 2 anomalous instances = 42 segments of 1024 = 43008.
	results, err := eval.RunMultiAnomaly(d, det, 10, 40, 2, cfg.seed)
	if err != nil {
		return err
	}
	both, one, none := 0, 0, 0
	for i, r := range results {
		fmt.Fprintf(cfg.out, "series %d: detected %d of %d\n", i, r.Detected, r.Total)
		switch r.Detected {
		case 2:
			both++
		case 1:
			one++
		default:
			none++
		}
	}
	fmt.Fprintf(cfg.out, "Sec 7.5: both anomalies in %d/10 series, one in %d/10, none in %d/10\n",
		both, one, none)
	return nil
}
