package main

import (
	"fmt"

	"egi/internal/eval"
	"egi/internal/ucrsim"
)

// rangeSetting is one row of Tables 7–9: an (amax, wmax) combination for
// the ensemble's parameter ranges.
type rangeSetting struct {
	label      string
	wmax, amax int
}

func rangeSettings(table string) []rangeSetting {
	switch table {
	case "table7": // wmax = amax, both swept
		return []rangeSetting{
			{"amax=5,wmax=5", 5, 5},
			{"amax=10,wmax=10", 10, 10},
			{"amax=15,wmax=15", 15, 15},
			{"amax=20,wmax=20", 20, 20},
		}
	case "table8": // wmax swept, amax fixed at 10
		return []rangeSetting{
			{"amax=10,wmax=5", 5, 10},
			{"amax=10,wmax=10", 10, 10},
			{"amax=10,wmax=15", 15, 10},
			{"amax=10,wmax=20", 20, 10},
		}
	default: // table9: amax swept, wmax fixed at 10
		return []rangeSetting{
			{"amax=5,wmax=10", 10, 5},
			{"amax=10,wmax=10", 10, 10},
			{"amax=15,wmax=10", 10, 15},
			{"amax=20,wmax=10", 10, 20},
		}
	}
}

// expRangeSweep reproduces Tables 7–9: wins/ties/losses of the ensemble
// with varied parameter ranges against the best GI baseline (per series,
// the pointwise max of GI-Random, GI-Fix and GI-Select).
func expRangeSweep(table string) func(benchConfig) error {
	return func(cfg benchConfig) error {
		settings := rangeSettings(table)
		fmt.Fprintf(cfg.out, "%s: ensemble W/T/L vs best GI baseline\n", map[string]string{
			"table7": "Table 7", "table8": "Table 8", "table9": "Table 9",
		}[table])
		fmt.Fprintf(cfg.out, "%-20s", "Approach")
		for _, d := range ucrsim.All() {
			fmt.Fprintf(cfg.out, "%16s", d.Name)
		}
		fmt.Fprintln(cfg.out)

		rows := make(map[string][]string) // setting label -> per-dataset W/T/L
		for _, d := range ucrsim.All() {
			ss, err := eval.NewSeriesSet(d, cfg.numSeries, 1, cfg.seed)
			if err != nil {
				return err
			}
			baseDets := []eval.Detector{eval.GIRandom(0, 0), eval.GIFix(), eval.GISelect(0, 0)}
			baseScores := make([]eval.MethodScores, len(baseDets))
			for i, det := range baseDets {
				baseScores[i], err = ss.Run(det, cfg.seed)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", d.Name, det.Name, err)
				}
			}
			// Paper protocol: the single best GI method per dataset (by
			// average score), compared per series.
			best, err := eval.BestMethodByAvg(baseScores)
			if err != nil {
				return err
			}
			for _, set := range settings {
				det := eval.Ensemble(eval.EnsembleOptions{
					Size: cfg.ensembleSize, WMax: set.wmax, AMax: set.amax,
				})
				ens, err := ss.Run(det, cfg.seed)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", d.Name, set.label, err)
				}
				w, t, l, err := eval.WTL(ens.Scores, best.Scores, 0)
				if err != nil {
					return err
				}
				rows[set.label] = append(rows[set.label], fmt.Sprintf("%d/%d/%d", w, t, l))
			}
		}
		for _, set := range settings {
			fmt.Fprintf(cfg.out, "%-20s", set.label)
			for _, cell := range rows[set.label] {
				fmt.Fprintf(cfg.out, "%16s", cell)
			}
			fmt.Fprintln(cfg.out)
		}
		return nil
	}
}

// expSizeSweep reproduces Tables 10 and 11: Score and HitRate of the
// ensemble for N in {5, 10, 25, 50}, sharing member computations.
func expSizeSweep(cfg benchConfig) error {
	sizes := []int{5, 10, 25, 50}
	fmt.Fprintln(cfg.out, "Table 10 (average Score) and Table 11 (HitRate) vs ensemble size N")
	fmt.Fprintf(cfg.out, "%-16s", "Dataset")
	for _, n := range sizes {
		fmt.Fprintf(cfg.out, "  N=%-2d Score/Hit", n)
	}
	fmt.Fprintln(cfg.out)
	for _, d := range ucrsim.All() {
		ss, err := eval.NewSeriesSet(d, cfg.numSeries, 1, cfg.seed)
		if err != nil {
			return err
		}
		bySize, _, err := ss.SweepSizeTau(0, 0, 50, sizes, nil, cfg.seed)
		if err != nil {
			return fmt.Errorf("%s: %w", d.Name, err)
		}
		fmt.Fprintf(cfg.out, "%-16s", d.Name)
		for _, n := range sizes {
			ms := bySize[n]
			fmt.Fprintf(cfg.out, "  %6.4f/%4.2f", ms.AvgScore(), ms.HitRate())
		}
		fmt.Fprintln(cfg.out)
	}
	return nil
}

// expTauSweep reproduces Table 12: mean and standard deviation, over
// cfg.repeats repetitions, of the average Score for selectivities τ from
// 5% to 100%. Each repetition redraws the ensemble's random parameters.
func expTauSweep(cfg benchConfig) error {
	taus := []float64{0.05, 0.10, 0.20, 0.40, 0.80, 1.00}
	fmt.Fprintf(cfg.out, "Table 12: mean (std) of average Score over %d repeats, vs tau\n", cfg.repeats)
	fmt.Fprintf(cfg.out, "%-16s", "Dataset")
	for _, tau := range taus {
		fmt.Fprintf(cfg.out, "%16s", fmt.Sprintf("tau=%g%%", tau*100))
	}
	fmt.Fprintln(cfg.out)
	for _, d := range ucrsim.All() {
		ss, err := eval.NewSeriesSet(d, cfg.numSeries, 1, cfg.seed)
		if err != nil {
			return err
		}
		// avgScores[tauIdx][repeat]
		avgScores := make([][]float64, len(taus))
		for rep := 0; rep < cfg.repeats; rep++ {
			_, byTau, err := ss.SweepSizeTau(0, 0, cfg.ensembleSize, nil, taus, cfg.seed+int64(rep)*100003)
			if err != nil {
				return fmt.Errorf("%s rep %d: %w", d.Name, rep, err)
			}
			for ti, tau := range taus {
				avgScores[ti] = append(avgScores[ti], byTau[tau].AvgScore())
			}
		}
		fmt.Fprintf(cfg.out, "%-16s", d.Name)
		for ti := range taus {
			mean, std := eval.MeanStd(avgScores[ti])
			fmt.Fprintf(cfg.out, "%16s", fmt.Sprintf("%.4f(%.3f)", mean, std))
		}
		fmt.Fprintln(cfg.out)
	}
	return nil
}

// expWindowSweep reproduces Tables 13 and 14: ensemble Score and HitRate
// when the sliding window is 60–100% of the planted anomaly length.
func expWindowSweep(cfg benchConfig) error {
	fracs := []float64{0.6, 0.7, 0.8, 0.9, 1.0}
	fmt.Fprintln(cfg.out, "Table 13 (average Score) and Table 14 (HitRate) vs window fraction")
	fmt.Fprintf(cfg.out, "%-16s", "Dataset")
	for _, fr := range fracs {
		fmt.Fprintf(cfg.out, "  n=%.1fna Score/Hit", fr)
	}
	fmt.Fprintln(cfg.out)
	det := eval.Ensemble(eval.EnsembleOptions{Size: cfg.ensembleSize})
	for _, d := range ucrsim.All() {
		fmt.Fprintf(cfg.out, "%-16s", d.Name)
		for _, fr := range fracs {
			ss, err := eval.NewSeriesSet(d, cfg.numSeries, fr, cfg.seed)
			if err != nil {
				return err
			}
			ms, err := ss.Run(det, cfg.seed)
			if err != nil {
				return fmt.Errorf("%s n=%g: %w", d.Name, fr, err)
			}
			fmt.Fprintf(cfg.out, "  %8.4f/%4.2f", ms.AvgScore(), ms.HitRate())
		}
		fmt.Fprintln(cfg.out)
	}
	return nil
}
