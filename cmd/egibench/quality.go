package main

// The quality experiment: the streaming detection-quality harness
// (internal/quality) run over its standard corpus-family x configuration
// grid plus the RebaseEvery sweep, printed as tables and optionally
// written as the machine-readable BENCH_quality.json trajectory (-out).

import (
	"fmt"
	"os"

	"egi/internal/quality"
)

// expQuality runs the streaming quality harness. The default size is the
// committed-baseline size (and what CI regenerates); -full runs the
// extended sweep on longer series with more planted anomalies.
func expQuality(cfg benchConfig) error {
	spec := quality.CorpusSpec{Seed: cfg.seed, Periods: cfg.periods, Anomalies: cfg.anomalies}
	if cfg.full {
		if spec.Periods == 0 {
			spec.Periods = 150
		}
		if spec.Anomalies == 0 {
			spec.Anomalies = 12
		}
	}
	rep, err := quality.Generate(spec)
	if err != nil {
		return err
	}
	quality.WriteTable(cfg.out, rep)
	if cfg.qualityOut == "" {
		return nil
	}
	data, err := rep.Encode()
	if err != nil {
		return err
	}
	if cfg.qualityOut == "-" {
		_, err = cfg.out.Write(data)
		return err
	}
	if err := os.WriteFile(cfg.qualityOut, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "\nwrote %s\n", cfg.qualityOut)
	return nil
}
