package main

import (
	"fmt"

	"egi/internal/eval"
	"egi/internal/ucrsim"
)

// methodOrder fixes the column order of Tables 4–6.
var methodOrder = []string{"Ensemble", "GI-Random", "GI-Fix", "GI-Select", "Discord"}

// perfCache memoizes runAllMethods across the table4/5/6/fig10 views so
// `-exp all` pays for the §7.1 evaluation once. egibench is single-shot,
// so a plain package variable suffices.
var perfCache struct {
	numSeries    int
	seed         int64
	ensembleSize int
	results      map[string][]eval.MethodScores
}

// runAllMethods evaluates the five methods of §7.1.3 on every dataset and
// returns scores keyed by dataset name, in methodOrder.
func runAllMethods(cfg benchConfig) (map[string][]eval.MethodScores, error) {
	if perfCache.results != nil && perfCache.numSeries == cfg.numSeries &&
		perfCache.seed == cfg.seed && perfCache.ensembleSize == cfg.ensembleSize {
		return perfCache.results, nil
	}
	results, err := runAllMethodsUncached(cfg)
	if err != nil {
		return nil, err
	}
	perfCache.numSeries = cfg.numSeries
	perfCache.seed = cfg.seed
	perfCache.ensembleSize = cfg.ensembleSize
	perfCache.results = results
	return results, nil
}

func runAllMethodsUncached(cfg benchConfig) (map[string][]eval.MethodScores, error) {
	detectors := []eval.Detector{
		eval.Ensemble(eval.EnsembleOptions{Size: cfg.ensembleSize}),
		eval.GIRandom(0, 0),
		eval.GIFix(),
		eval.GISelect(0, 0),
		eval.Discord(),
	}
	out := make(map[string][]eval.MethodScores)
	for _, d := range ucrsim.All() {
		res, err := eval.RunDataset(d, detectors, eval.RunConfig{
			NumSeries: cfg.numSeries,
			Seed:      cfg.seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		out[d.Name] = res
	}
	return out, nil
}

// expPerformance renders one of the §7.1 views (table4, table5, table6,
// fig10) from a single evaluation run.
func expPerformance(view string) func(benchConfig) error {
	return func(cfg benchConfig) error {
		results, err := runAllMethods(cfg)
		if err != nil {
			return err
		}
		switch view {
		case "table4":
			fmt.Fprintln(cfg.out, "Table 4: average Score")
			fmt.Fprintf(cfg.out, "%-16s", "Dataset")
			for _, m := range methodOrder {
				fmt.Fprintf(cfg.out, "%12s", m)
			}
			fmt.Fprintln(cfg.out)
			for _, d := range ucrsim.All() {
				fmt.Fprintf(cfg.out, "%-16s", d.Name)
				for _, m := range results[d.Name] {
					fmt.Fprintf(cfg.out, "%12.4f", m.AvgScore())
				}
				fmt.Fprintln(cfg.out)
			}
		case "table5":
			fmt.Fprintln(cfg.out, "Table 5: HitRate")
			fmt.Fprintf(cfg.out, "%-16s", "Dataset")
			for _, m := range methodOrder {
				fmt.Fprintf(cfg.out, "%12s", m)
			}
			fmt.Fprintln(cfg.out)
			for _, d := range ucrsim.All() {
				fmt.Fprintf(cfg.out, "%-16s", d.Name)
				for _, m := range results[d.Name] {
					fmt.Fprintf(cfg.out, "%12.2f", m.HitRate())
				}
				fmt.Fprintln(cfg.out)
			}
		case "table6":
			fmt.Fprintln(cfg.out, "Table 6: wins/ties/losses of the ensemble vs each baseline")
			fmt.Fprintf(cfg.out, "%-12s", "Baseline")
			for _, d := range ucrsim.All() {
				fmt.Fprintf(cfg.out, "%16s", d.Name)
			}
			fmt.Fprintln(cfg.out)
			for bi := 1; bi < len(methodOrder); bi++ {
				fmt.Fprintf(cfg.out, "%-12s", methodOrder[bi])
				for _, d := range ucrsim.All() {
					ms := results[d.Name]
					w, t, l, err := eval.WTL(ms[0].Scores, ms[bi].Scores, 0)
					if err != nil {
						return err
					}
					fmt.Fprintf(cfg.out, "%16s", fmt.Sprintf("%d/%d/%d", w, t, l))
				}
				fmt.Fprintln(cfg.out)
			}
		case "fig10":
			fmt.Fprintln(cfg.out, "Fig 10: per-series (ensemble, baseline) Score pairs")
			for _, d := range ucrsim.All() {
				ms := results[d.Name]
				for bi := 1; bi < len(methodOrder); bi++ {
					fmt.Fprintf(cfg.out, "# %s vs %s\n", d.Name, methodOrder[bi])
					for si := range ms[0].Scores {
						fmt.Fprintf(cfg.out, "%.4f\t%.4f\n", ms[0].Scores[si], ms[bi].Scores[si])
					}
				}
			}
		default:
			return fmt.Errorf("unknown performance view %q", view)
		}
		return nil
	}
}
