package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"egi/internal/quality"
)

func TestRunQualitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_quality.json")
	var out strings.Builder
	err := run([]string{"-exp", "quality", "-periods", "20", "-anomalies", "2", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"detection quality", "RebaseEvery sweep", "drift/gunpoint", "rebase"} {
		if !strings.Contains(s, want) {
			t.Errorf("quality output missing %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := quality.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(quality.Families) * len(quality.GridConfigs()); len(rep.Grid) != want {
		t.Errorf("grid has %d cells, want %d", len(rep.Grid), want)
	}
	if want := len(quality.RebaseFamilies) * len(quality.RebaseValues); len(rep.RebaseSweep) != want {
		t.Errorf("rebase sweep has %d cells, want %d", len(rep.RebaseSweep), want)
	}
	for _, c := range append(append([]quality.Cell(nil), rep.Grid...), rep.RebaseSweep...) {
		if c.Precision < 0 || c.Precision > 1 || c.Recall < 0 || c.Recall > 1 || c.F1 < 0 || c.F1 > 1 {
			t.Errorf("cell %s: metrics out of range: %+v", c.Key(), c)
		}
		if c.TP+c.FP != c.Events {
			t.Errorf("cell %s: TP+FP=%d but Events=%d", c.Key(), c.TP+c.FP, c.Events)
		}
	}
}
