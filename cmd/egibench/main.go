// Command egibench regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic reproduction workloads. Each experiment
// prints rows in the layout of the corresponding table so paper-vs-measured
// comparison is direct; EXPERIMENTS.md records one such run.
//
// Usage:
//
//	egibench -exp table4            # Tables 4 (average Score)
//	egibench -exp table6 -series 25 # wins/ties/losses, 25 series per dataset
//	egibench -exp fig8 -full        # scalability up to 160k points
//	egibench -exp all               # everything at the configured size
//
// Experiments: fig1, table4, table5, table6, fig10, table7, table8,
// table9, table10 (with table11), table12, table13 (with table14), fig8,
// fig9, multi, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// benchConfig carries the shared experiment knobs.
type benchConfig struct {
	out          io.Writer
	numSeries    int    // series per dataset (paper: 25)
	seed         int64  // base random seed
	ensembleSize int    // ensemble size N (paper: 50)
	repeats      int    // Table 12 repetitions (paper: 20)
	full         bool   // run full-size fig8/fig9 and the extended quality sweep
	qualityOut   string // quality: BENCH_quality.json destination ("" = table only, "-" = stdout)
	periods      int    // quality: background repetitions per corpus (0 = spec default)
	anomalies    int    // quality: planted anomalies per corpus (0 = spec default)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "egibench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("egibench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id (required; see package comment)")
		series  = fs.Int("series", 25, "planted series per dataset")
		seed    = fs.Int64("seed", 20200330, "base random seed")
		size    = fs.Int("size", 50, "ensemble size N")
		repeats = fs.Int("repeats", 20, "repetitions for table12")
		full    = fs.Bool("full", false, "full-size fig8 (160k), fig9 (600k) and quality sweep")
		out     = fs.String("out", "", "quality: write BENCH_quality.json here (\"-\" = stdout; empty = table only)")
		periods = fs.Int("periods", 0, "quality: background repetitions per corpus (0 = default)")
		anoms   = fs.Int("anomalies", 0, "quality: planted anomalies per corpus (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exp == "" {
		return fmt.Errorf("-exp is required")
	}
	cfg := benchConfig{
		out:          stdout,
		numSeries:    *series,
		seed:         *seed,
		ensembleSize: *size,
		repeats:      *repeats,
		full:         *full,
		qualityOut:   *out,
		periods:      *periods,
		anomalies:    *anoms,
	}

	experiments := map[string]func(benchConfig) error{
		"fig1":    expFig1,
		"table4":  expPerformance("table4"),
		"table5":  expPerformance("table5"),
		"table6":  expPerformance("table6"),
		"fig10":   expPerformance("fig10"),
		"table7":  expRangeSweep("table7"),
		"table8":  expRangeSweep("table8"),
		"table9":  expRangeSweep("table9"),
		"table10": expSizeSweep,
		"table12": expTauSweep,
		"table13": expWindowSweep,
		"fig8":    expScalability,
		"fig9":    expCaseStudy,
		"multi":   expMultiAnomaly,
		"quality": expQuality,
	}
	if *exp == "all" {
		names := make([]string, 0, len(experiments))
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(stdout, "\n===== %s =====\n", name)
			start := time.Now()
			if err := experiments[name](cfg); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Fprintf(stdout, "[%s took %.1fs]\n", name, time.Since(start).Seconds())
		}
		return nil
	}
	fn, ok := experiments[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return fn(cfg)
}
