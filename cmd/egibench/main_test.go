package main

import (
	"strings"
	"testing"
)

func TestRunFig1(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig1", "-series", "1", "-size", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig 1") || !strings.Contains(s, "ensemble") {
		t.Errorf("unexpected fig1 output:\n%s", s)
	}
}

func TestRunTable13Small(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment smoke test")
	}
	var out strings.Builder
	if err := run([]string{"-exp", "table13", "-series", "1", "-size", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Table 13", "TwoLeadECG", "StarLightCurve"} {
		if !strings.Contains(s, want) {
			t.Errorf("table13 output missing %q:\n%s", want, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing -exp should error")
	}
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment should error")
	}
}
