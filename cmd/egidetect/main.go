// Command egidetect detects anomalies in a univariate time series read
// from a CSV file (or stdin) and prints the ranked candidates.
//
// Usage:
//
//	egidetect -window 900 [-input series.csv] [-col 0] [-method ensemble]
//
// Methods:
//
//	ensemble  ensemble grammar induction (the paper's proposed approach)
//	single    single-run grammar induction with fixed -w and -a
//	discord   STOMP matrix profile discords (distance-based baseline)
//	rra       rare rule anomaly: variable-length grammar discords
//
// Output: one line per anomaly, "rank pos length score", where score is
// the ensemble rule density (lower = more anomalous) for the grammar
// methods and the 1-NN distance (higher = more anomalous) for discord.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"egi"
	"egi/internal/plot"
	"egi/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "egidetect:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("egidetect", flag.ContinueOnError)
	var (
		input  = fs.String("input", "-", "input CSV file; - for stdin")
		col    = fs.Int("col", 0, "CSV column holding the values (0-based)")
		window = fs.Int("window", 0, "sliding window length n (required)")
		method = fs.String("method", "ensemble", "ensemble | single | discord | rra")
		topK   = fs.Int("topk", 3, "number of anomalies to report")
		size   = fs.Int("size", 0, "ensemble size N (default 50)")
		wmax   = fs.Int("wmax", 0, "maximum PAA size (default 10)")
		amax   = fs.Int("amax", 0, "maximum alphabet size (default 10)")
		tau    = fs.Float64("tau", 0, "ensemble selectivity in (0,1] (default 0.4)")
		seed   = fs.Int64("seed", 0, "random seed")
		w      = fs.Int("w", 4, "PAA size for -method single")
		a      = fs.Int("a", 4, "alphabet size for -method single")
		plotW  = fs.Int("plot", 0, "if > 0, print sparkline charts this many columns wide")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *window < 2 {
		return fmt.Errorf("-window is required and must be >= 2")
	}
	if *topK < 1 {
		return fmt.Errorf("-topk must be >= 1")
	}

	var r io.Reader = stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	series, err := timeseries.ReadCSV(r, *col)
	if err != nil {
		return err
	}

	var anomalies []egi.Anomaly
	var curve []float64
	switch *method {
	case "ensemble":
		res, err := egi.Detect(series, egi.Options{
			Window:       *window,
			EnsembleSize: *size,
			WMax:         *wmax,
			AMax:         *amax,
			Tau:          *tau,
			TopK:         *topK,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
		anomalies = res.Anomalies
		curve = res.Curve
	case "single":
		res, err := egi.DetectSingle(series, *window, *w, *a, *topK)
		if err != nil {
			return err
		}
		anomalies = res.Anomalies
		curve = res.Curve
	case "discord":
		anomalies, err = egi.Discords(series, *window, *topK)
		if err != nil {
			return err
		}
	case "rra":
		anomalies, err = egi.VariableLengthAnomalies(series, *window, *topK)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	for i, an := range anomalies {
		fmt.Fprintf(stdout, "%d\t%d\t%d\t%.6f\n", i+1, an.Pos, an.Length, an.Density)
	}
	if *plotW > 0 {
		if err := printPlots(stdout, series, curve, anomalies, *plotW); err != nil {
			return err
		}
	}
	return nil
}

// printPlots renders the series, the rule density curve (when the method
// produced one) and the anomaly locations as terminal sparklines.
func printPlots(stdout io.Writer, series timeseries.Series, curve []float64, anomalies []egi.Anomaly, width int) error {
	line, err := plot.Sparkline(series, width)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nseries  %s\n", line)
	if curve != nil {
		line, err = plot.Sparkline(curve, width)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "density %s\n", line)
	}
	spans := make([]plot.Span, len(anomalies))
	for i, a := range anomalies {
		spans[i] = plot.Span{Start: a.Pos, End: a.Pos + a.Length}
	}
	markers, err := plot.MarkerLine(spans, len(series), width)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "        %s\n", markers)
	return nil
}
