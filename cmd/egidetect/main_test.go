package main

import (
	"bufio"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeTestSeries writes a periodic series with a planted anomaly and
// returns its path and the anomaly position.
func writeTestSeries(t *testing.T) (path string, anomalyPos int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	const length, period = 2000, 50
	anomalyPos = 1000
	var sb strings.Builder
	for i := 0; i < length; i++ {
		v := math.Sin(2*math.Pi*float64(i)/period) + 0.05*rng.NormFloat64()
		if i >= anomalyPos && i < anomalyPos+period {
			v = 1.2 - 2.4*math.Abs(float64(i-anomalyPos)/period-0.5)
		}
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		sb.WriteByte('\n')
	}
	path = filepath.Join(t.TempDir(), "series.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o600); err != nil {
		t.Fatal(err)
	}
	return path, anomalyPos
}

func parseOutput(t *testing.T, out string) [][4]string {
	t.Helper()
	var rows [][4]string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 4 {
			t.Fatalf("bad output line %q", sc.Text())
		}
		rows = append(rows, [4]string{fields[0], fields[1], fields[2], fields[3]})
	}
	return rows
}

func TestRunAllMethods(t *testing.T) {
	path, anomalyPos := writeTestSeries(t)
	for _, method := range []string{"ensemble", "single", "discord", "rra"} {
		var out strings.Builder
		err := run([]string{"-input", path, "-window", "50", "-method", method, "-seed", "3"},
			strings.NewReader(""), &out)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		rows := parseOutput(t, out.String())
		if len(rows) == 0 {
			t.Fatalf("%s: no anomalies reported", method)
		}
		pos, err := strconv.Atoi(rows[0][1])
		if err != nil {
			t.Fatal(err)
		}
		if d := pos - anomalyPos; d < -50 || d > 50 {
			t.Errorf("%s: top anomaly at %d, planted at %d", method, pos, anomalyPos)
		}
	}
}

func TestRunReadsStdin(t *testing.T) {
	path, _ := writeTestSeries(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-window", "50"}, strings.NewReader(string(data)), &out); err != nil {
		t.Fatal(err)
	}
	if len(parseOutput(t, out.String())) == 0 {
		t.Error("no output from stdin input")
	}
}

func TestRunPlotOutput(t *testing.T) {
	path, _ := writeTestSeries(t)
	var out strings.Builder
	err := run([]string{"-input", path, "-window", "50", "-plot", "60", "-seed", "1"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"series", "density", "^"} {
		if !strings.Contains(s, want) {
			t.Errorf("plot output missing %q:\n%s", want, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path, _ := writeTestSeries(t)
	cases := [][]string{
		{"-input", path}, // missing window
		{"-input", path, "-window", "50", "-method", "nope"}, // bad method
		{"-input", "/does/not/exist", "-window", "50"},       // missing file
		{"-input", path, "-window", "50", "-topk", "0"},      // bad topk
		{"-input", path, "-window", "999999"},                // window too large
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}
