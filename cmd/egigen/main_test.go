package main

import (
	"strings"
	"testing"
)

func countLines(s string) int {
	return len(strings.Fields(s))
}

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		args      []string
		wantLines int  // 0 = just non-empty
		wantTruth bool // ground truth printed on stderr
	}{
		{[]string{"-kind", "rw", "-length", "500"}, 500, false},
		{[]string{"-kind", "ecg", "-length", "800"}, 800, false},
		{[]string{"-kind", "eeg", "-length", "300"}, 300, false},
		{[]string{"-kind", "fridge", "-length", "20000"}, 20000, true},
		{[]string{"-kind", "dishwasher", "-cycles", "5"}, 5 * 200, true},
		{[]string{"-kind", "Trace"}, 21 * 275, true},
		{[]string{"-kind", "Wafer"}, 21 * 150, true},
	}
	for _, c := range cases {
		var stdout, stderr strings.Builder
		if err := run(c.args, &stdout, &stderr); err != nil {
			t.Fatalf("%v: %v", c.args, err)
		}
		if got := countLines(stdout.String()); got != c.wantLines {
			t.Errorf("%v: %d values, want %d", c.args, got, c.wantLines)
		}
		hasTruth := strings.Contains(stderr.String(), "anomaly")
		if hasTruth != c.wantTruth {
			t.Errorf("%v: ground truth printed = %v, want %v", c.args, hasTruth, c.wantTruth)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b strings.Builder
	var e strings.Builder
	if err := run([]string{"-kind", "GunPoint", "-seed", "9"}, &a, &e); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "GunPoint", "-seed", "9"}, &b, &e); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("equal seeds must generate identical output")
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{},                      // missing kind
		{"-kind", "NoSuchKind"}, // unknown
		{"-kind", "rw", "-length", "0"},
		{"-kind", "fridge", "-length", "100"}, // too short for fridge
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}
