// Command egigen generates the synthetic time series used throughout the
// reproduction and writes them as one-value-per-line CSV. Ground truth
// (planted anomaly locations) is printed to stderr so it can be captured
// separately from the data.
//
// Usage:
//
//	egigen -kind Trace -seed 3 -out trace.csv           # planted UCR-style series
//	egigen -kind rw -length 160000 -out rw.csv          # random walk
//	egigen -kind fridge -length 600000 -out power.csv   # §7.4 case study data
//
// Kinds: the six dataset names of Table 3 (TwoLeadECG, ECGFiveDay,
// GunPoint, Wafer, Trace, StarLightCurve), plus rw, ecg, eeg, fridge,
// dishwasher.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"egi/internal/gen"
	"egi/internal/timeseries"
	"egi/internal/ucrsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "egigen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("egigen", flag.ContinueOnError)
	var (
		kind   = fs.String("kind", "", "series kind (required; see package comment)")
		length = fs.Int("length", 100000, "series length for rw/ecg/eeg/fridge")
		cycles = fs.Int("cycles", 20, "cycle count for dishwasher")
		seed   = fs.Int64("seed", 1, "random seed")
		out    = fs.String("out", "-", "output file; - for stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *kind == "" {
		return fmt.Errorf("-kind is required")
	}

	var series timeseries.Series
	switch *kind {
	case "rw":
		s, err := gen.RandomWalk(*length, *seed)
		if err != nil {
			return err
		}
		series = s
	case "ecg":
		s, err := gen.ECG(*length, 200, *seed)
		if err != nil {
			return err
		}
		series = s
	case "eeg":
		s, err := gen.EEG(*length, 256, *seed)
		if err != nil {
			return err
		}
		series = s
	case "fridge":
		fsr, err := gen.FridgeFreezer(*length, *seed)
		if err != nil {
			return err
		}
		series = fsr.Series
		for _, a := range fsr.Anomalies {
			fmt.Fprintf(stderr, "anomaly\t%s\t%d\t%d\n", a.Kind, a.Pos, a.Length)
		}
	case "dishwasher":
		ds, err := gen.Dishwasher(*cycles, 200, *seed)
		if err != nil {
			return err
		}
		series = ds.Series
		fmt.Fprintf(stderr, "anomaly\tshort-cycle\t%d\t%d\n", ds.Anomaly.Pos, ds.Anomaly.Length)
	default:
		d, err := ucrsim.ByName(*kind)
		if err != nil {
			return fmt.Errorf("unknown kind %q", *kind)
		}
		planted, err := d.Generate(rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
		series = planted.Series
		for _, a := range planted.Anomalies {
			fmt.Fprintf(stderr, "anomaly\tclass-%d\t%d\t%d\n", a.Class, a.Pos, a.Length)
		}
	}

	var w io.Writer = stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return timeseries.WriteCSV(w, series)
}
