package gen

import (
	"math"
	"testing"
)

func TestCyclicRepeats(t *testing.T) {
	const period = 50
	s, err := Cyclic(10*period, period, 3, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Noise-free cycles are exact repetitions — the property that makes
	// the carrier grammar-compressible.
	for i := period; i < len(s); i++ {
		if s[i] != s[i-period] {
			t.Fatalf("point %d differs from previous cycle: %v vs %v", i, s[i], s[i-period])
		}
	}
	var amp float64
	for _, v := range s[:period] {
		if a := math.Abs(v); a > amp {
			amp = a
		}
	}
	if amp < 0.1 {
		t.Fatalf("waveform amplitude %v, want a visible signal", amp)
	}
}

func TestCyclicDeterministicAndSeeded(t *testing.T) {
	a, _ := Cyclic(200, 20, 2, 0.1, 1)
	b, _ := Cyclic(200, 20, 2, 0.1, 1)
	c, _ := Cyclic(200, 20, 2, 0.1, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical series")
	}
}

func TestCyclicErrors(t *testing.T) {
	if _, err := Cyclic(0, 10, 1, 0, 1); err == nil {
		t.Error("length 0 accepted")
	}
	if _, err := Cyclic(10, 3, 1, 0, 1); err == nil {
		t.Error("period 3 accepted")
	}
	if _, err := Cyclic(10, 10, 0, 0, 1); err == nil {
		t.Error("0 harmonics accepted")
	}
}

func TestNoiseRegimes(t *testing.T) {
	const block = 500
	s, err := NoiseRegimes(4*block, block, []float64{0.0, 1.0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		var ss float64
		for _, v := range s[b*block : (b+1)*block] {
			ss += v * v
		}
		sd := math.Sqrt(ss / block)
		want := float64(b % 2)
		if math.Abs(sd-want) > 0.15 {
			t.Errorf("block %d: empirical sigma %.3f, want about %.1f", b, sd, want)
		}
	}
	if _, err := NoiseRegimes(10, 0, []float64{1}, 1); err == nil {
		t.Error("block length 0 accepted")
	}
	if _, err := NoiseRegimes(10, 5, nil, 1); err == nil {
		t.Error("empty sigma list accepted")
	}
}
