// Package gen synthesizes the long time series the paper's scalability
// study (§7.3, Fig. 8), case study (§7.4, Fig. 9) and the motivating
// example (Fig. 1) are run on: random walks, ECG and EEG recordings, a
// ~600k-point fridge-freezer power usage trace with planted anomalies, and
// a dishwasher-style power cycle series. The originals are external data
// the repository cannot ship; these generators preserve the properties the
// experiments measure — see DESIGN.md §2.
package gen

import (
	"errors"
	"math"
	"math/rand"

	"egi/internal/timeseries"
)

// ErrBadLength is returned when a generator is asked for a non-positive
// number of points.
var ErrBadLength = errors.New("gen: length must be positive")

// RandomWalk returns a Gaussian random walk of the given length — the "RW"
// series of Fig. 8(a).
func RandomWalk(length int, seed int64) (timeseries.Series, error) {
	if length < 1 {
		return nil, ErrBadLength
	}
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s, nil
}

// ECG returns a synthetic electrocardiogram: periodic PQRST complexes with
// heart-rate variability and baseline wander — the shape family of the ECG
// series of Fig. 8(b). period is the nominal beat length in samples.
func ECG(length, period int, seed int64) (timeseries.Series, error) {
	if length < 1 {
		return nil, ErrBadLength
	}
	if period < 10 {
		return nil, errors.New("gen: ECG period must be >= 10 samples")
	}
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	beatStart := 0
	beatLen := period
	for i := range s {
		if i-beatStart >= beatLen {
			beatStart = i
			// Heart-rate variability: ±10% beat-to-beat.
			beatLen = period + int(0.1*float64(period)*rng.NormFloat64())
			if beatLen < period/2 {
				beatLen = period / 2
			}
		}
		x := float64(i-beatStart) / float64(beatLen)
		v := 0.12*bump(x, 0.18, 0.04) + // P
			1.2*bump(x, 0.38, 0.012) - // R
			0.28*bump(x, 0.42, 0.01) + // S
			0.3*bump(x, 0.62, 0.05) // T
		wander := 0.1 * math.Sin(2*math.Pi*float64(i)/(13.7*float64(period)))
		s[i] = v + wander + 0.03*rng.NormFloat64()
	}
	return s, nil
}

// EEG returns a synthetic electroencephalogram: a mixture of delta, alpha
// and beta band oscillations with slowly varying amplitudes plus broadband
// noise — the shape family of the EEG series of Fig. 8(c). sampleRate is
// in Hz (e.g. 256).
func EEG(length int, sampleRate float64, seed int64) (timeseries.Series, error) {
	if length < 1 {
		return nil, ErrBadLength
	}
	if sampleRate <= 0 {
		return nil, errors.New("gen: sample rate must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	bands := []struct{ freq, amp, mod float64 }{
		{2.3, 1.0, 0.05},   // delta
		{10.1, 0.7, 0.11},  // alpha
		{21.7, 0.35, 0.23}, // beta
	}
	phases := make([]float64, len(bands))
	for i := range phases {
		phases[i] = rng.Float64() * 2 * math.Pi
	}
	for i := range s {
		t := float64(i) / sampleRate
		var v float64
		for b, band := range bands {
			env := 1 + 0.5*math.Sin(2*math.Pi*band.mod*t+phases[b])
			v += band.amp * env * math.Sin(2*math.Pi*band.freq*t+phases[b])
		}
		s[i] = v + 0.25*rng.NormFloat64()
	}
	return s, nil
}

// bump is a Gaussian bump used by the waveform generators.
func bump(x, c, w float64) float64 {
	d := (x - c) / w
	return math.Exp(-0.5 * d * d)
}
