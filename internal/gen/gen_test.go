package gen

import (
	"math"
	"testing"
)

func TestRandomWalk(t *testing.T) {
	s, err := RandomWalk(10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 10000 {
		t.Fatalf("length %d", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Steps are standard normal increments.
	var ss float64
	for i := 1; i < len(s); i++ {
		d := s[i] - s[i-1]
		ss += d * d
	}
	stepVar := ss / float64(len(s)-1)
	if stepVar < 0.8 || stepVar > 1.2 {
		t.Errorf("step variance %v, want ~1", stepVar)
	}
	// Determinism.
	s2, _ := RandomWalk(10000, 1)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("random walk not deterministic per seed")
		}
	}
	if _, err := RandomWalk(0, 1); err == nil {
		t.Error("length 0 should error")
	}
}

func TestECG(t *testing.T) {
	s, err := ECG(20000, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Quasi-periodic: autocorrelation near the beat period must clearly
	// exceed autocorrelation at half the period.
	ac := func(lag int) float64 {
		var num float64
		for i := 0; i+lag < len(s); i++ {
			num += s[i] * s[i+lag]
		}
		return num / float64(len(s)-lag)
	}
	if ac(200) < ac(100)+0.005 {
		t.Errorf("ECG not periodic at the beat length: ac(200)=%v ac(100)=%v", ac(200), ac(100))
	}
	if _, err := ECG(100, 5, 1); err == nil {
		t.Error("tiny period should error")
	}
	if _, err := ECG(0, 200, 1); err == nil {
		t.Error("length 0 should error")
	}
}

func TestEEG(t *testing.T) {
	s, err := EEG(20000, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean near zero, bounded amplitude.
	var mu float64
	for _, v := range s {
		mu += v
	}
	mu /= float64(len(s))
	if math.Abs(mu) > 0.3 {
		t.Errorf("EEG mean %v, want ~0", mu)
	}
	if _, err := EEG(100, 0, 1); err == nil {
		t.Error("zero sample rate should error")
	}
	if _, err := EEG(-1, 256, 1); err == nil {
		t.Error("negative length should error")
	}
}

func TestFridgeFreezer(t *testing.T) {
	fs, err := FridgeFreezer(100000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Series) != 100000 {
		t.Fatalf("length %d", len(fs.Series))
	}
	if err := fs.Series.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fs.Anomalies) != 2 {
		t.Fatalf("%d anomalies, want 2", len(fs.Anomalies))
	}
	a1, a2 := fs.Anomalies[0], fs.Anomalies[1]
	if a1.Kind != "distorted-cycle" || a2.Kind != "spike-episode" {
		t.Errorf("anomaly kinds %q %q", a1.Kind, a2.Kind)
	}
	if a1.Pos+a1.Length > len(fs.Series) || a2.Pos+a2.Length > len(fs.Series) {
		t.Error("anomalies out of range")
	}
	if a2.Pos < a1.Pos+a1.Length {
		t.Error("anomalies overlap")
	}
	// The spike episode must actually contain values well above the
	// compressor's on-power.
	maxIn := 0.0
	for i := a2.Pos; i < a2.Pos+a2.Length; i++ {
		if fs.Series[i] > maxIn {
			maxIn = fs.Series[i]
		}
	}
	if maxIn < 150 {
		t.Errorf("spike episode max %v, want > 150", maxIn)
	}
	if _, err := FridgeFreezer(1000, 1); err == nil {
		t.Error("too-short series should error")
	}
}

func TestDishwasher(t *testing.T) {
	ds, err := Dishwasher(12, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Series) != 12*200 {
		t.Fatalf("length %d", len(ds.Series))
	}
	if err := ds.Series.Validate(); err != nil {
		t.Fatal(err)
	}
	a := ds.Anomaly
	if a.Length != 200 || a.Pos%200 != 0 {
		t.Errorf("anomaly %+v not cycle-aligned", a)
	}
	// The anomalous cycle's high-power duration must be much shorter than
	// a normal cycle's.
	countHigh := func(pos int) int {
		c := 0
		for j := 0; j < 200; j++ {
			if ds.Series[pos+j] > 1000 {
				c++
			}
		}
		return c
	}
	anomHigh := countHigh(a.Pos)
	normHigh := countHigh(0)
	if anomHigh*2 >= normHigh {
		t.Errorf("anomalous cycle high samples %d not well below normal %d", anomHigh, normHigh)
	}
	if _, err := Dishwasher(2, 200, 1); err == nil {
		t.Error("too few cycles should error")
	}
	if _, err := Dishwasher(10, 10, 1); err == nil {
		t.Error("too-short cycle should error")
	}
}
