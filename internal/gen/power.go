package gen

import (
	"errors"
	"math"
	"math/rand"

	"egi/internal/timeseries"
)

// FridgeAnomaly locates one planted anomaly in a FridgeFreezer series.
type FridgeAnomaly struct {
	Pos, Length int
	Kind        string // "distorted-cycle" or "spike-episode"
}

// FridgeSeries is the §7.4 case-study series with its ground truth.
type FridgeSeries struct {
	Series    timeseries.Series
	Anomalies []FridgeAnomaly
	CycleLen  int // nominal compressor cycle length in samples
}

// FridgeFreezer synthesizes a fridge-freezer power usage trace in the
// spirit of the REFIT data used in §7.4: a compressor duty cycle
// (rectangular on/off pulses with on-power around 85 W), periodic
// defrost-heater events, sensor noise — and two planted anomalies matching
// Fig. 9's findings: one cycle with a distorted shape (top-1) and one
// episode of normal cycles overlaid with short spikes (top-2). The paper
// runs with a ~900-sample window, one nominal cycle.
func FridgeFreezer(length int, seed int64) (*FridgeSeries, error) {
	const cycle = 900 // nominal compressor cycle (on + off), in samples
	if length < 20*cycle {
		return nil, errors.New("gen: fridge-freezer series must be at least 20 cycles long")
	}
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)

	// Base duty cycle: ~40% on at ~85 W, off at ~2 W standby, with
	// per-cycle jitter in both duration and power.
	i := 0
	for i < length {
		onLen := int(float64(cycle) * (0.35 + 0.1*rng.Float64()))
		offLen := int(float64(cycle) * (0.55 + 0.1*rng.Float64()))
		onPower := 82 + 6*rng.Float64()
		for j := 0; j < onLen && i < length; j, i = j+1, i+1 {
			// Compressor start transient decaying to steady state.
			tr := 25 * math.Exp(-float64(j)/12)
			s[i] = onPower + tr + 1.5*rng.NormFloat64()
		}
		for j := 0; j < offLen && i < length; j, i = j+1, i+1 {
			s[i] = 2 + 0.4*rng.NormFloat64()
		}
	}
	// Defrost heater: a ~15-minute high-power event every ~12000 samples.
	for start := 11000; start+450 < length; start += 12000 + rng.Intn(2000) {
		for j := 0; j < 450; j++ {
			s[start+j] = 160 + 8*rng.NormFloat64()
		}
	}

	// Planted anomaly 1: a distorted cycle — power sags mid-cycle and the
	// cycle runs long (a failing compressor), around 35% of the series.
	a1 := int(0.35 * float64(length))
	for j := 0; j < cycle; j++ {
		x := float64(j) / float64(cycle)
		v := 55 + 30*math.Sin(3*math.Pi*x) // slow irregular hump, unlike the crisp duty cycle
		if v < 2 {
			v = 2
		}
		s[a1+j] = v + 1.5*rng.NormFloat64()
	}

	// Planted anomaly 2: an episode of otherwise-normal cycles overlaid
	// with short high spikes, around 65% of the series. Spikes are ~30
	// samples — short relative to the 900-sample cycle but wide enough to
	// survive PAA averaging at the coarsest ensemble resolutions.
	a2 := int(0.65 * float64(length))
	episode := 2 * cycle
	for k := 0; k < 15; k++ {
		p := a2 + rng.Intn(episode-40)
		for j := 0; j < 30; j++ {
			s[p+j] += 200 + 30*rng.Float64()
		}
	}

	return &FridgeSeries{
		Series: s,
		Anomalies: []FridgeAnomaly{
			{Pos: a1, Length: cycle, Kind: "distorted-cycle"},
			{Pos: a2, Length: episode, Kind: "spike-episode"},
		},
		CycleLen: cycle,
	}, nil
}

// DishwasherAnomaly locates the planted anomaly in a Dishwasher series.
type DishwasherAnomaly struct {
	Pos, Length int
}

// DishwasherSeries is the Fig. 1 motivating-example series: dishwasher
// electricity usage cycles with one anomalous cycle that has an unusually
// short high-power period.
type DishwasherSeries struct {
	Series   timeseries.Series
	Anomaly  DishwasherAnomaly
	CycleLen int
}

// Dishwasher synthesizes the Fig. 1 snippet: numCycles wash cycles, each a
// two-phase high-power pattern, with the anomalous cycle's heating phase
// cut unusually short. cycleLen is the cycle length in samples.
func Dishwasher(numCycles, cycleLen int, seed int64) (*DishwasherSeries, error) {
	if numCycles < 3 || cycleLen < 40 {
		return nil, errors.New("gen: need >= 3 cycles of >= 40 samples")
	}
	rng := rand.New(rand.NewSource(seed))
	anomCycle := numCycles/2 + rng.Intn(numCycles/4) // mid-series
	s := make(timeseries.Series, 0, numCycles*cycleLen)
	var anomaly DishwasherAnomaly
	for c := 0; c < numCycles; c++ {
		heatFrac := 0.45 + 0.05*rng.Float64()
		if c == anomCycle {
			heatFrac = 0.12 // the unusually short power-usage period
			anomaly = DishwasherAnomaly{Pos: len(s), Length: cycleLen}
		}
		for j := 0; j < cycleLen; j++ {
			x := float64(j) / float64(cycleLen)
			var v float64
			switch {
			case x < heatFrac: // heating phase, high power
				v = 2000 + 40*rng.NormFloat64()
			case x < heatFrac+0.25: // wash/rinse phase, medium
				v = 300 + 25*rng.NormFloat64()
			default: // drain/idle
				v = 10 + 4*rng.NormFloat64()
			}
			s = append(s, v)
		}
	}
	return &DishwasherSeries{Series: s, Anomaly: anomaly, CycleLen: cycleLen}, nil
}
