package gen

// This file holds the building blocks of the detection-quality corpora
// (internal/quality): repetitive cyclic waveforms whose grammar an
// induction detector can learn, and piecewise noise regimes that stress it
// without being anomalies themselves. They are deliberately primitive —
// the quality harness composes them with drifts, level shifts and planted
// anomaly windows on top.

import (
	"errors"
	"math"
	"math/rand"

	"egi/internal/timeseries"
)

// Cyclic returns a repetitive waveform: every period repeats the same
// seeded random harmonic shape (a sum of `harmonics` sinusoids of the
// period's fundamental with seeded amplitudes and phases), plus white
// noise of the given sigma. The repetition is what makes the series
// grammar-compressible; anomalies are planted by breaking it.
func Cyclic(length, period, harmonics int, noise float64, seed int64) (timeseries.Series, error) {
	if length < 1 {
		return nil, ErrBadLength
	}
	if period < 4 {
		return nil, errors.New("gen: cyclic period must be >= 4 samples")
	}
	if harmonics < 1 {
		return nil, errors.New("gen: cyclic needs at least one harmonic")
	}
	rng := rand.New(rand.NewSource(seed))
	amps := make([]float64, harmonics)
	phases := make([]float64, harmonics)
	for h := range amps {
		// Decaying harmonic amplitudes keep the fundamental dominant so
		// the waveform stays band-limited relative to the period.
		amps[h] = (0.4 + 0.6*rng.Float64()) / float64(h+1)
		phases[h] = rng.Float64() * 2 * math.Pi
	}
	s := make(timeseries.Series, length)
	for i := range s {
		x := float64(i%period) / float64(period)
		var v float64
		for h := range amps {
			v += amps[h] * math.Sin(2*math.Pi*float64(h+1)*x+phases[h])
		}
		s[i] = v + noise*rng.NormFloat64()
	}
	return s, nil
}

// NoiseRegimes returns white noise whose standard deviation switches
// between the given sigmas in consecutive blocks of blockLen points,
// cycling through sigmas in order. Regime changes are *not* anomalies —
// the quality corpora add this on top of a Cyclic carrier to measure how
// many false events a noise-floor change provokes.
func NoiseRegimes(length, blockLen int, sigmas []float64, seed int64) (timeseries.Series, error) {
	if length < 1 {
		return nil, ErrBadLength
	}
	if blockLen < 1 {
		return nil, errors.New("gen: noise regime block length must be positive")
	}
	if len(sigmas) == 0 {
		return nil, errors.New("gen: noise regimes need at least one sigma")
	}
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	for i := range s {
		sigma := sigmas[(i/blockLen)%len(sigmas)]
		s[i] = sigma * rng.NormFloat64()
	}
	return s, nil
}
