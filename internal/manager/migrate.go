package manager

// Stream migration surface: ExportStream captures a stream's complete
// durable state (versioned snapshot + WAL tail + accounting) without
// disturbing it, ImportStream resumes that state on another manager, and
// ReleaseStream detaches the source copy once the move has committed.
// The routing tier sequences the three under an exclusive per-stream
// latch; the commit point is ImportStream's single atomic checkpoint on
// the target, so a fault anywhere before it leaves the stream whole on
// the source.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"egi/internal/stream"
)

// StreamState is a stream's complete portable state, as captured by
// ExportStream and consumed by ImportStream. Snapshot is the versioned
// manager wrap around the detector snapshot (settings and accounting
// travel inside it); Tail is the raw input suffix logged after that
// snapshot, replayed on import.
type StreamState struct {
	// ID is the stream id.
	ID string
	// Created is when the stream was first created.
	Created time.Time
	// LastPush is the stream's idle clock at export.
	LastPush time.Time
	// Overrides holds the stream's pinned effective settings (zero means
	// the template).
	Overrides Overrides
	// WalPos is the consumed-input coordinate the state resumes at.
	WalPos int
	// Snapshot is the wrapped detector snapshot; nil for a stream that
	// has only a WAL tail.
	Snapshot []byte
	// Tail is the logged input after the snapshot.
	Tail []float64
}

// Bytes approximates the serialized size of the state, for migration
// accounting.
func (s StreamState) Bytes() int64 {
	return int64(len(s.Snapshot) + 8*len(s.Tail))
}

// ExportStream captures the stream's state for migration without
// mutating it: the source keeps running (and keeps its disk state) until
// ReleaseStream. A healthy durable stream exports its persisted snapshot
// + tail — the exact bytes a restart would resume from; a degraded or
// non-durable stream exports a fresh in-memory snapshot instead, which
// is also how migration heals a degraded stream (the import checkpoints
// it on a healthy target). A hibernated stream exports straight from
// disk. Fails with ErrUnknownStream when no state exists anywhere, and
// with the quarantine error for quarantined streams — a poisoned stream
// must not propagate.
func (m *Manager) ExportStream(id string) (StreamState, error) {
	e, _, err := m.get(id, false, Overrides{})
	if err != nil {
		if errors.Is(err, ErrUnknownStream) && m.store != nil {
			return m.exportPersisted(id)
		}
		return StreamState{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quarantined.Load() {
		return StreamState{}, e.quarantineErrLocked()
	}
	if e.closed {
		if e.d != nil {
			// Detached for hibernation but the state is still in memory and
			// the hibernate checkpoint is queued behind our lock: export
			// from memory. Worst case the source leaves a stale shadowed
			// directory behind, never a loss.
			return m.exportMemoryLocked(e), nil
		}
		if m.store != nil {
			return m.exportPersisted(id)
		}
		return StreamState{}, fmt.Errorf("%w: %q (evicted)", ErrUnknownStream, id)
	}
	if m.store != nil && !e.degraded.Load() && e.log != nil {
		rec, err := m.store.Read(id)
		// The persisted coordinate must cover everything acked; a lagging
		// or unreadable store falls back to the in-memory state.
		if err == nil && rec.SnapTotal+len(rec.Tail) == e.walPos {
			return StreamState{
				ID:        id,
				Created:   e.created,
				LastPush:  time.Unix(0, e.lastPush.Load()),
				Overrides: e.overrides,
				WalPos:    e.walPos,
				Snapshot:  rec.Snapshot,
				Tail:      rec.Tail,
			}, nil
		}
	}
	return m.exportMemoryLocked(e), nil
}

// exportMemoryLocked captures the live in-memory state as a fresh
// snapshot with no tail. Callers hold e.mu.
func (m *Manager) exportMemoryLocked(e *entry) StreamState {
	return StreamState{
		ID:        e.id,
		Created:   e.created,
		LastPush:  time.Unix(0, e.lastPush.Load()),
		Overrides: e.overrides,
		WalPos:    e.walPos,
		Snapshot:  e.wrapSnapshot(e.d.Snapshot()),
	}
}

// exportPersisted captures a non-live (hibernated) stream's state from
// its on-disk snapshot + tail.
func (m *Manager) exportPersisted(id string) (StreamState, error) {
	rec, err := m.store.Read(id)
	if err != nil {
		return StreamState{}, fmt.Errorf("manager: reading persisted stream %q: %w", id, err)
	}
	if rec.Snapshot == nil && len(rec.Tail) == 0 {
		return StreamState{}, fmt.Errorf("%w: %q", ErrUnknownStream, id)
	}
	st := StreamState{
		ID:     id,
		WalPos: rec.SnapTotal + len(rec.Tail),
		Tail:   rec.Tail,
	}
	if rec.Snapshot != nil {
		meta, _, err := unwrapSnapshot(rec.Snapshot)
		if err != nil {
			return StreamState{}, fmt.Errorf("manager: reading persisted stream %q: %w", id, err)
		}
		st.Snapshot = rec.Snapshot
		st.Overrides = meta.overrides
		st.Created = time.Unix(0, meta.createdNano)
	}
	return st, nil
}

// ImportStream resumes an exported stream on this manager. The state is
// rebuilt in memory (snapshot restore + tail replay) and, on a durable
// manager, persisted as ONE atomic checkpoint — the migration's commit
// point: any failure before that checkpoint succeeds leaves this manager
// without the stream and the source copy authoritative. Importing over a
// live stream of the same id fails; stale on-disk state from an earlier
// incarnation is removed first. Admission (MaxStreams/MaxBytes) applies
// as for a new stream.
func (m *Manager) ImportStream(st StreamState) error {
	if st.ID == "" {
		return errors.New("manager: importing stream with empty id")
	}
	if st.Snapshot == nil && len(st.Tail) == 0 {
		return fmt.Errorf("manager: importing stream %q with no state", st.ID)
	}
	var evicted []*entry
	err := m.importLocked(st, &evicted)
	m.retire(evicted)
	return err
}

// importLocked is ImportStream's admission + construction under createMu;
// entries evicted to make room are appended to *evicted for the caller to
// retire after the lock is released.
func (m *Manager) importLocked(st StreamState, evicted *[]*entry) error {
	sh := m.shardFor(st.ID)
	m.createMu.Lock()
	defer m.createMu.Unlock()
	if m.closed.Load() {
		return ErrManagerClosed
	}
	sh.mu.RLock()
	_, live := sh.streams[st.ID]
	sh.mu.RUnlock()
	if live {
		return fmt.Errorf("manager: importing stream %q: already live here", st.ID)
	}
	if m.cfg.MaxStreams > 0 && int(m.count.Load()) >= m.cfg.MaxStreams {
		ev := m.evictLRU()
		if ev == nil {
			return fmt.Errorf("%w: %d live, none idle for %v", ErrTooManyStreams, m.count.Load(), m.cfg.IdleAfter)
		}
		*evicted = append(*evicted, ev)
	}

	e := &entry{id: st.ID, created: m.now()}
	cfg := m.cfg.Stream
	cfg.OnEvent = func(ev stream.Event) {
		e.pending = append(e.pending, Event{Stream: st.ID, Anomaly: ev})
		e.events.Add(1)
	}
	eff := st.Overrides
	if eff.IsZero() {
		eff = m.templateOv
	}
	e.overrides = eff
	eff.applyEffective(&cfg)
	var meta snapMeta
	var det []byte
	if st.Snapshot != nil {
		var err error
		if meta, det, err = unwrapSnapshot(st.Snapshot); err != nil {
			return fmt.Errorf("manager: importing stream %q: %w", st.ID, err)
		}
	}
	if err := m.resumeEntry(e, cfg, st.Snapshot != nil, meta, det, st.Tail); err != nil {
		return fmt.Errorf("manager: importing stream %q: %w", st.ID, err)
	}
	// The source already delivered every event up to the export point;
	// confirmations replayed from the tail must not be re-announced here.
	e.pending = nil
	e.walPos = st.WalPos
	e.sinceSnap = 0
	e.points.Store(int64(e.d.Total()))
	if !st.Created.IsZero() {
		e.created = st.Created
	}
	if st.LastPush.IsZero() {
		e.lastPush.Store(m.now().UnixNano())
	} else {
		e.lastPush.Store(st.LastPush.UnixNano())
	}

	// Admit against the byte budget BEFORE the durable commit, so a
	// rejection needs no disk rollback.
	fp := e.d.MemoryFootprint()
	if m.cfg.MaxBytes > 0 {
		for m.totalBytes.Load()+fp > m.cfg.MaxBytes {
			ev := m.evictLRU()
			if ev == nil {
				return fmt.Errorf("%w: %d of %d bytes in use, imported stream needs %d",
					ErrOverBudget, m.totalBytes.Load(), m.cfg.MaxBytes, fp)
			}
			*evicted = append(*evicted, ev)
		}
	}

	if m.store != nil {
		// Clear any stale state from an earlier incarnation of this id,
		// then persist the imported state as one atomic checkpoint — the
		// commit point.
		if err := m.store.Remove(st.ID); err != nil {
			return fmt.Errorf("manager: importing stream %q: clearing stale state: %w", st.ID, err)
		}
		log, _, err := m.store.OpenStream(st.ID)
		if err != nil {
			return fmt.Errorf("manager: importing stream %q: %w", st.ID, err)
		}
		e.log = log
		if err := m.checkpointLocked(e); err != nil {
			_ = e.log.Close()
			e.log = nil
			_ = m.store.Remove(st.ID)
			return fmt.Errorf("manager: importing stream %q: %w", st.ID, err)
		}
	}

	e.footprint.Store(fp)
	m.totalBytes.Add(fp)
	sh.mu.Lock()
	sh.streams[st.ID] = e
	sh.mu.Unlock()
	m.count.Add(1)
	return nil
}

// ReleaseStream detaches the stream from this manager WITHOUT flushing
// its detector and removes its persisted state: the post-commit cleanup
// on a migration's source side. Unlike CloseStream no final events are
// produced — the target continues the stream, so flushing here would
// announce events the target will also announce; events already
// confirmed (they precede the export point) are still drained to
// subscribers. Fails with ErrUnknownStream only when the stream is
// neither live nor on disk.
func (m *Manager) ReleaseStream(id string) error {
	m.createMu.Lock()
	if m.closed.Load() {
		m.createMu.Unlock()
		return ErrManagerClosed
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	if e != nil {
		m.detach(e)
	}
	m.createMu.Unlock()
	if e != nil {
		e.mu.Lock()
		if e.log != nil {
			// No checkpoint: the target owns the state now, and this
			// directory is about to be removed.
			_ = e.log.Close()
			e.log = nil
		}
		e.d = nil
		e.mu.Unlock()
		m.drain(e)
	}
	if m.store != nil {
		if err := m.store.Remove(id); err != nil {
			return fmt.Errorf("manager: releasing stream %q: %w", id, err)
		}
		return nil
	}
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownStream, id)
	}
	return nil
}

// StreamIDs lists every stream this manager holds — live entries plus
// hibernated on-disk state — sorted and deduplicated. Nil after Close.
func (m *Manager) StreamIDs() []string {
	if m.closed.Load() {
		return nil
	}
	seen := make(map[string]struct{})
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for id := range sh.streams {
			seen[id] = struct{}{}
		}
		sh.mu.RUnlock()
	}
	if m.store != nil {
		if ids, err := m.store.List(); err == nil {
			for _, id := range ids {
				seen[id] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
