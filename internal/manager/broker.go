package manager

import (
	"sync"

	"egi/internal/stream"
)

// Event is one event from a managed stream: a confirmed anomaly, or —
// when Health is non-empty — a health transition (the stream degraded,
// healed, or was quarantined). Within one stream, events are delivered to
// every subscriber in stream order; across streams the interleaving is
// arbitrary.
type Event struct {
	// Stream is the id of the stream the event belongs to.
	Stream string
	// Anomaly is the underlying confirmed anomaly (position, length,
	// density), with Pos counting from the first point pushed to that
	// stream. Meaningless when Health is set.
	Anomaly stream.Event
	// Health, when non-empty, marks this as a health-transition event
	// (HealthDegraded, HealthHealed, HealthQuarantined) instead of an
	// anomaly.
	Health string
	// Cause is the failure text behind a degraded or quarantined
	// transition.
	Cause string
}

// Health transition values carried by Event.Health.
const (
	// HealthDegraded: the stream's durability started failing; it keeps
	// detecting in memory while the manager retries with backoff.
	HealthDegraded = "degraded"
	// HealthHealed: a checkpoint succeeded and the stream is fully
	// durable again.
	HealthHealed = "healed"
	// HealthQuarantined: the stream's engine panicked (or its state
	// could not be recovered) and the stream is now a tombstone.
	HealthQuarantined = "quarantined"
)

// subscription is one subscriber's mailbox. Sends are serialized with the
// channel close by mu (a send on a closed channel panics); done, closed by
// cancel or broker shutdown, wakes any sender blocked on a full mailbox.
type subscription struct {
	mu       sync.Mutex // serializes sends against close(ch)
	ch       chan Event
	done     chan struct{}
	doneOnce sync.Once
	stream   string // filter: only this stream's events; "" = all streams
	cancel   sync.Once
}

// stop wakes blocked senders and marks the subscription dead; idempotent.
func (s *subscription) stop() { s.doneOnce.Do(func() { close(s.done) }) }

// deliver sends one event, blocking while the mailbox is full
// (backpressure) until the subscriber reads, cancels, or the broker
// closes.
func (s *subscription) deliver(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return
	default:
	}
	select {
	case s.ch <- ev:
	case <-s.done:
	}
}

// Broker fans confirmed events out to subscribers. Delivery applies
// backpressure, never loss: a publisher blocks on a full subscriber
// channel until the subscriber reads or cancels. Subscriptions are
// independent — a stalled subscriber delays only publishers whose events
// match its filter, never delivery to other subscribers' streams.
// Per-stream ordering is preserved because each stream's events reach the
// broker through that stream's serialized drain.
//
// A Broker is normally private to one Manager; NewBroker builds one to
// share between several managers via Config.Events, which keeps
// per-stream event order intact when a stream migrates between them.
type Broker struct {
	mu     sync.Mutex // guards subs and closed
	subs   map[*subscription]struct{}
	closed bool
}

func newBroker() *Broker {
	return &Broker{subs: make(map[*subscription]struct{})}
}

// NewBroker builds a broker for sharing between managers (Config.Events).
// The caller owns its lifetime: Close it after every sharing manager has
// shut down.
func NewBroker() *Broker { return newBroker() }

// Close ends event delivery on a shared broker: subscriber channels are
// closed, blocked deliveries are woken and abandoned, later publishes are
// dropped. Idempotent. Managers close their own private brokers; call
// this only on brokers built with NewBroker.
func (b *Broker) Close() { b.close() }

// subscribe registers a mailbox of the given capacity for one stream's
// events ("" for all streams). The returned cancel is idempotent and frees
// the subscription; the channel itself is closed only when the broker
// closes (manager shutdown), so a canceled subscriber should stop reading
// rather than wait for close. Subscribing to a closed broker returns an
// already-closed channel.
func (b *Broker) subscribe(stream string, buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 1
	}
	s := &subscription{ch: make(chan Event, buf), done: make(chan struct{}), stream: stream}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(s.ch)
		return s.ch, func() {}
	}
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	cancel := func() {
		s.cancel.Do(func() {
			b.mu.Lock()
			delete(b.subs, s)
			b.mu.Unlock()
			s.stop()
		})
	}
	return s.ch, cancel
}

// publish delivers the events, in order, to every matching subscriber.
func (b *Broker) publish(evs []Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	targets := make([]*subscription, 0, len(b.subs))
	for s := range b.subs {
		targets = append(targets, s)
	}
	b.mu.Unlock()
	for _, s := range targets {
		for _, ev := range evs {
			if s.stream != "" && s.stream != ev.Stream {
				continue
			}
			s.deliver(ev)
		}
	}
}

// close ends event delivery: every subscriber channel is closed (their
// receive loops terminate), in-flight blocked deliveries are woken and
// abandoned, and later publishes are dropped.
func (b *Broker) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	targets := make([]*subscription, 0, len(b.subs))
	for s := range b.subs {
		targets = append(targets, s)
		delete(b.subs, s)
	}
	b.mu.Unlock()
	for _, s := range targets {
		// Wake any sender blocked on this mailbox first; only then is
		// it safe to take the send lock and close the channel.
		s.stop()
		s.mu.Lock()
		close(s.ch)
		s.mu.Unlock()
	}
}
