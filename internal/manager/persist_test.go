package manager

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"egi/internal/stream"
)

// collector gathers subscribed events in the background so pushes never
// block on the broker. stop works whether or not the manager ever closes
// (an abandoned "crashed" manager never closes its subscriber channels).
type collector struct {
	mu     sync.Mutex
	events []Event
	cancel func()
	quit   chan struct{}
	done   chan struct{}
}

// openDurable creates a durable manager over dir plus a background global
// subscriber.
func openDurable(t *testing.T, dir string, snapEvery int) (*Manager, *collector) {
	t.Helper()
	m, err := New(Config{
		Stream:        testStreamConfig(),
		DataDir:       dir,
		SnapshotEvery: snapEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, attachCollector(m)
}

// attachCollector subscribes a background global collector to m.
func attachCollector(m *Manager) *collector {
	c := &collector{quit: make(chan struct{}), done: make(chan struct{})}
	ch, cancel := m.Subscribe("", 64)
	c.cancel = cancel
	go func() {
		defer close(c.done)
		add := func(ev Event) {
			c.mu.Lock()
			c.events = append(c.events, ev)
			c.mu.Unlock()
		}
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					return
				}
				add(ev)
			case <-c.quit:
				for { // drain what the broker already buffered
					select {
					case ev, ok := <-ch:
						if !ok {
							return
						}
						add(ev)
					default:
						return
					}
				}
			}
		}
	}()
	return c
}

func (c *collector) stop() []Event {
	c.cancel()
	close(c.quit)
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// dedup removes exact-duplicate events (the footprint of at-least-once
// redelivery across a crash) while preserving order.
func dedup(events []Event) []Event {
	seen := map[Event]bool{}
	var out []Event
	for _, ev := range events {
		if !seen[ev] {
			seen[ev] = true
			out = append(out, ev)
		}
	}
	return out
}

// liveSegment finds the one stream's live WAL segment file under dir.
func liveSegment(t *testing.T, dir string) string {
	t.Helper()
	streams, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	var newestFrom int = -1
	for _, sd := range streams {
		if !sd.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sd.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
				var from int
				if _, err := fmt.Sscanf(name, "wal-%d.log", &from); err != nil {
					continue
				}
				if from > newestFrom {
					newestFrom = from
					newest = filepath.Join(dir, sd.Name(), name)
				}
			}
		}
	}
	if newest == "" {
		t.Fatal("no live WAL segment found")
	}
	return newest
}

// TestCrashRecoveryBitIdentical is the PR's acceptance property: kill the
// process at an arbitrary WAL byte offset (simulated by truncating the
// live segment at a random point), restart the manager over the same data
// directory, resend the tail the server reports as unapplied — and the
// events that come out are bit-identical to a manager that never crashed,
// modulo exact-duplicate redelivery (at-least-once across the crash). The
// final in-horizon anomaly ranking matches float for float too.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const id = "sensor-1"
	for trial := 0; trial < 4; trial++ {
		series := sineSeries(3200, 40, rng.Int63(), 400, 1500, 2700)
		snapEvery := 200 + rng.Intn(500)

		// Reference: never crashed.
		refDir := t.TempDir()
		ref, refC := openDurable(t, refDir, snapEvery)
		if err := ref.PushBatch(id, series); err != nil {
			t.Fatal(err)
		}
		refAnoms, err := ref.Anomalies(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Close(); err != nil {
			t.Fatal(err)
		}
		refEvents := refC.stop()
		if len(refEvents) == 0 {
			t.Fatalf("trial %d: reference produced no events; fixture too tame", trial)
		}

		// Crashy: push in batches, crash 2-3 times at random offsets.
		dir := t.TempDir()
		m, c := openDurable(t, dir, snapEvery)
		var got []Event
		sent := 0
		crashes := 2 + rng.Intn(2)
		for crash := 0; crash <= crashes; crash++ {
			limit := len(series)
			if crash < crashes {
				limit = sent + rng.Intn(len(series)-sent+1)
			}
			for sent < limit {
				n := 1 + rng.Intn(97)
				if sent+n > limit {
					n = limit - sent
				}
				acc, err := m.PushBatchN(id, series[sent:sent+n])
				if err != nil {
					t.Fatalf("trial %d: push at %d: %v", trial, sent, err)
				}
				sent += acc
			}
			if crash == crashes {
				break
			}
			// Crash: abandon the manager mid-flight and tear the live
			// segment at a random byte offset.
			got = append(got, c.stop()...)
			seg := liveSegment(t, dir)
			if info, err := os.Stat(seg); err == nil && info.Size() > 0 {
				if err := os.Truncate(seg, rng.Int63n(info.Size()+1)); err != nil {
					t.Fatal(err)
				}
			}
			m, c = openDurable(t, dir, snapEvery)
			// The client resumes from the server's recovered position —
			// points acked but torn out of the log are resent.
			st, err := m.StreamStats(id)
			if err != nil {
				t.Fatalf("trial %d: stats after recovery: %v", trial, err)
			}
			if int(st.Points) > sent {
				t.Fatalf("trial %d: recovered %d points, only sent %d", trial, st.Points, sent)
			}
			sent = int(st.Points)
		}

		gotAnoms, err := m.Anomalies(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		got = append(got, c.stop()...)

		gotD, refD := dedup(got), dedup(refEvents)
		if len(gotD) != len(refD) {
			t.Fatalf("trial %d: %d distinct events, reference %d\n got: %v\n ref: %v",
				trial, len(gotD), len(refD), gotD, refD)
		}
		for i := range refD {
			if gotD[i] != refD[i] {
				t.Fatalf("trial %d: event[%d] = %+v, reference %+v", trial, i, gotD[i], refD[i])
			}
		}
		if len(gotAnoms) != len(refAnoms) {
			t.Fatalf("trial %d: %d ranked anomalies, reference %d", trial, len(gotAnoms), len(refAnoms))
		}
		for i := range refAnoms {
			if gotAnoms[i] != refAnoms[i] {
				t.Fatalf("trial %d: anomaly[%d] = %+v, reference %+v", trial, i, gotAnoms[i], refAnoms[i])
			}
		}
	}
}

// TestRestartResumesStreams: a clean shutdown and restart resumes every
// stream — same accounting, same detector position — and continues
// confirming events exactly where it left off.
func TestRestartResumesStreams(t *testing.T) {
	dir := t.TempDir()
	series := sineSeries(2000, 40, 3, 600, 1500)

	m, c := openDurable(t, dir, 300)
	for _, idx := range []string{"a", "b"} {
		if err := m.PushBatch(idx, series[:1200]); err != nil {
			t.Fatal(err)
		}
	}
	stBefore, err := m.StreamStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	firstEvents := dedup(c.stop())

	m2, c2 := openDurable(t, dir, 300)
	defer m2.Close()
	if m2.Len() != 2 {
		t.Fatalf("recovered %d streams, want 2", m2.Len())
	}
	st, err := m2.StreamStats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != stBefore.Points {
		t.Fatalf("recovered Points = %d, want %d", st.Points, stBefore.Points)
	}
	if st.Events != stBefore.Events {
		t.Fatalf("recovered Events = %d, want %d", st.Events, stBefore.Events)
	}
	if !st.Created.Equal(stBefore.Created) {
		t.Fatalf("recovered Created = %v, want %v", st.Created, stBefore.Created)
	}
	for _, idx := range []string{"a", "b"} {
		if err := m2.PushBatch(idx, series[1200:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	secondEvents := dedup(c2.stop())

	want := directEvents(t, testStreamConfig(), series, false)
	var all []Event
	all = append(all, firstEvents...)
	all = append(all, secondEvents...)
	perStream := map[string][]Event{}
	for _, ev := range all {
		perStream[ev.Stream] = append(perStream[ev.Stream], ev)
	}
	for _, idx := range []string{"a", "b"} {
		evs := dedup(perStream[idx])
		if len(evs) != len(want) {
			t.Fatalf("stream %q: %d events across restart, want %d", idx, len(evs), len(want))
		}
		for i := range want {
			if evs[i].Anomaly != want[i] {
				t.Fatalf("stream %q: event[%d] = %+v, want %+v", idx, i, evs[i].Anomaly, want[i])
			}
		}
	}
}

// TestEvictionHibernatesDurableStreams: evicting a durable stream keeps
// it resumable — a later push continues the stream (with its buffered
// tail intact) rather than restarting it, and confirmed events across the
// hibernation match an uninterrupted detector.
func TestEvictionHibernatesDurableStreams(t *testing.T) {
	clock := &fakeClock{}
	dir := t.TempDir()
	m, err := New(Config{
		Stream:        testStreamConfig(),
		DataDir:       dir,
		SnapshotEvery: 250,
		IdleAfter:     time.Minute,
		Now:           clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := m.Subscribe("", 64)
	var events []Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			events = append(events, ev)
		}
	}()

	series := sineSeries(2000, 40, 5, 600, 1500)
	if err := m.PushBatch("s", series[:900]); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	if evicted := m.EvictIdle(); len(evicted) != 1 {
		t.Fatalf("evicted %d streams, want 1", len(evicted))
	}
	if m.Len() != 0 {
		t.Fatalf("%d live streams after eviction", m.Len())
	}
	// Push resumes the hibernated stream from disk.
	if err := m.PushBatch("s", series[900:]); err != nil {
		t.Fatal(err)
	}
	st, err := m.StreamStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != int64(len(series)) {
		t.Fatalf("resumed stream has %d points, want %d", st.Points, len(series))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done

	want := directEvents(t, testStreamConfig(), series, false)
	got := dedup(events)
	if len(got) != len(want) {
		t.Fatalf("%d events across hibernation, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Anomaly != want[i] {
			t.Fatalf("event[%d] = %+v, want %+v", i, got[i].Anomaly, want[i])
		}
	}
}

// TestCloseStreamDeletesPersistedState: the terminal close removes the
// stream's directory, so a recreated stream starts fresh.
func TestCloseStreamDeletesPersistedState(t *testing.T) {
	dir := t.TempDir()
	m, _ := openDurable(t, dir, 100)
	defer m.Close()
	if err := m.PushBatch("gone", sineSeries(500, 40, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CloseStream("gone"); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("data dir still holds %d entries after CloseStream", len(ents))
	}
	if err := m.Push("gone", 1.0); err != nil {
		t.Fatal(err)
	}
	st, err := m.StreamStats("gone")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 1 {
		t.Fatalf("recreated stream has %d points, want 1", st.Points)
	}
}

// TestSnapshotAndReplay: SnapshotStream checkpoints on demand;
// ReplayStream re-derives the post-checkpoint events deterministically
// without touching the live stream.
func TestSnapshotAndReplay(t *testing.T) {
	dir := t.TempDir()
	m, c := openDurable(t, dir, 1<<20) // cadence effectively off; checkpoints are manual
	series := sineSeries(2000, 40, 7, 600, 1500)
	if err := m.PushBatch("s", series[:700]); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotStream("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.PushBatch("s", series[700:]); err != nil {
		t.Fatal(err)
	}

	type hopEvent struct {
		hop int
		ev  Event
	}
	var replayed []hopEvent
	n, err := m.ReplayStream("s", func(hop int, ev stream.Event) error {
		replayed = append(replayed, hopEvent{hop, Event{Stream: "s", Anomaly: ev}})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(series)-700 {
		t.Fatalf("replayed %d points, want %d", n, len(series)-700)
	}

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	live := dedup(c.stop())

	if len(replayed) == 0 {
		t.Fatal("replay confirmed no events; fixture too tame")
	}
	got := make([]Event, len(replayed))
	for i, r := range replayed {
		if r.hop < 0 {
			t.Fatalf("replayed event %d carries hop %d", i, r.hop)
		}
		got[i] = r.ev
	}
	// Every replayed event must appear, bit-identical, in the live run.
	liveSet := map[Event]bool{}
	for _, ev := range live {
		liveSet[ev] = true
	}
	for i, ev := range got {
		if !liveSet[ev] {
			t.Fatalf("replayed event %d (%+v) never confirmed live", i, ev)
		}
	}

	// An unknown stream refuses to replay.
	if _, err := m.ReplayStream("nope", func(int, stream.Event) error { return nil }); err == nil {
		t.Fatal("replay of unknown stream succeeded")
	}
}
