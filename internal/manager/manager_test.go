package manager

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"egi/internal/stream"
)

// sineSeries builds a noisy sine with triangular pulses planted at the
// given positions, each one period long (the stream tests' fixture).
func sineSeries(length, period int, seed int64, planted ...int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.1*rng.NormFloat64()
	}
	for _, p := range planted {
		for i := p; i < p+period && i < length; i++ {
			x := float64(i-p) / float64(period)
			s[i] = 1.5 - 3*math.Abs(x-0.5) + 0.1*rng.NormFloat64()
		}
	}
	return s
}

// fakeClock is an injectable manual clock.
type fakeClock struct{ nanos atomic.Int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.nanos.Add(int64(d)) }

// testStreamConfig is a small, fast detector configuration shared by the
// tests; Seed fixed so direct-detector comparisons are exact.
func testStreamConfig() stream.Config {
	return stream.Config{Window: 40, BufLen: 320, EnsembleSize: 8, Seed: 11}
}

// directEvents runs a plain detector over the series (plus Flush when
// flush is set) and returns its events — the ground truth a managed
// stream's delivered events must match exactly.
func directEvents(t *testing.T, cfg stream.Config, series []float64, flush bool) []stream.Event {
	t.Helper()
	var out []stream.Event
	cfg.OnEvent = func(e stream.Event) { out = append(out, e) }
	d, err := stream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	if flush {
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// collect receives events from ch into a per-stream map until the channel
// closes, signalling done.
func collect(ch <-chan Event) (map[string][]stream.Event, chan struct{}) {
	got := map[string][]stream.Event{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			got[ev.Stream] = append(got[ev.Stream], ev.Anomaly)
		}
	}()
	return got, done
}

func eventsEqual(a, b []stream.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEventsMatchDirectDetector: events delivered through the manager's
// subscription are identical — position, length, density, order — to a
// plain detector fed the same points, for several independent streams, and
// Close (flush) delivers the same tail a direct Flush would.
func TestEventsMatchDirectDetector(t *testing.T) {
	cfg := testStreamConfig()
	m, err := New(Config{Stream: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := m.Subscribe("", 64)
	defer cancel()
	got, done := collect(ch)

	const nStreams = 5
	want := map[string][]stream.Event{}
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("s%d", i)
		series := sineSeries(2000, 40, int64(100+i), 700+40*i, 1500)
		want[id] = directEvents(t, cfg, series, true)
		if err := m.PushBatch(id, series); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	for id, w := range want {
		if !eventsEqual(got[id], w) {
			t.Errorf("%s: managed events %v != direct events %v", id, got[id], w)
		}
		if len(w) == 0 {
			t.Errorf("%s: fixture produced no events; test is vacuous", id)
		}
	}
}

// TestEvictionLosesNoConfirmedEvents: a stream evicted mid-hop — points
// pushed past the last re-induction, eviction before the next — delivers
// every event already confirmed before eviction, and its flush-on-evict
// tail equals a direct detector's Flush tail at the same point. Nothing
// already emitted is lost or changed.
func TestEvictionLosesNoConfirmedEvents(t *testing.T) {
	cfg := testStreamConfig()
	clk := &fakeClock{}
	m, err := New(Config{Stream: cfg, IdleAfter: time.Minute, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ch, cancel := m.Subscribe("victim", 64)
	defer cancel()
	got, done := collect(ch)

	// Cut mid-hop: 2.5 buffers plus a third of a hop.
	series := sineSeries(3*320, 40, 7, 400, 600)
	cut := 2*320 + 160 + 93
	if err := m.PushBatch("victim", series[:cut]); err != nil {
		t.Fatal(err)
	}

	confirmedBefore, evErr := func() (int64, error) {
		st, err := m.StreamStats("victim")
		return st.Events, err
	}()
	if evErr != nil {
		t.Fatal(evErr)
	}
	if confirmedBefore == 0 {
		t.Fatal("no events confirmed before eviction; pick a longer prefix")
	}

	clk.Advance(2 * time.Minute)
	stats := m.EvictIdle()
	if len(stats) != 1 || stats[0].ID != "victim" {
		t.Fatalf("EvictIdle = %+v, want exactly the victim", stats)
	}
	if m.Len() != 0 {
		t.Fatalf("victim still live after eviction")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	want := directEvents(t, cfg, series[:cut], true)
	if !eventsEqual(got["victim"], want) {
		t.Fatalf("evicted stream delivered %v, want %v", got["victim"], want)
	}
	if int64(len(want)) < confirmedBefore {
		t.Fatalf("events shrank: %d confirmed before eviction, %d delivered", confirmedBefore, len(want))
	}
	if stats[0].Events != int64(len(want)) {
		t.Fatalf("evicted stats count %d events, %d delivered", stats[0].Events, len(want))
	}
}

// TestMaxStreamsRejectsWithoutIdle: at the stream cap with nothing idle,
// opening another stream is rejected with ErrTooManyStreams and the live
// streams keep working — the limit rejects, it does not corrupt.
func TestMaxStreamsRejectsWithoutIdle(t *testing.T) {
	cfg := testStreamConfig()
	clk := &fakeClock{}
	m, err := New(Config{Stream: cfg, MaxStreams: 2, IdleAfter: time.Minute, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Advance the clock between pushes so every stream has a distinct
	// last-push time ("b" becomes the LRU one below).
	series := sineSeries(400, 40, 3)
	if err := m.PushBatch("b", series); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := m.PushBatch("a", series); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := m.Push("c", 1.0); !errors.Is(err, ErrTooManyStreams) {
		t.Fatalf("third stream: err = %v, want ErrTooManyStreams", err)
	}
	// The rejected id left no trace, and the live streams still accept.
	if _, err := m.StreamStats("c"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("rejected stream exists: %v", err)
	}
	if err := m.PushBatch("a", series); err != nil {
		t.Fatalf("live stream corrupted by rejected open: %v", err)
	}
	clk.Advance(2 * time.Minute)
	if err := m.Push("c", 1.0); err != nil {
		t.Fatalf("open after idle: %v", err)
	}
	if _, err := m.StreamStats("b"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("LRU eviction kept b: %v", err)
	}
	if _, err := m.StreamStats("a"); err != nil {
		t.Fatalf("LRU eviction took the wrong stream: %v", err)
	}
}

// TestMaxBytesRejectsAndEvicts: a byte budget too small for two streams
// rejects the second stream's pushes while the first is busy, then admits
// them by evicting the first once it goes idle; the rolled-up total drops
// accordingly.
func TestMaxBytesRejectsAndEvicts(t *testing.T) {
	cfg := testStreamConfig()
	clk := &fakeClock{}
	series := sineSeries(2000, 40, 5)

	// Size the budget from a warmed-up single stream: 1.5x one stream's
	// plateau fits one stream comfortably but never two.
	probe, err := New(Config{Stream: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.PushBatch("p", series); err != nil {
		t.Fatal(err)
	}
	budget := probe.TotalBytes() + probe.TotalBytes()/2
	probe.Close()

	m, err := New(Config{Stream: cfg, MaxBytes: budget, IdleAfter: time.Minute, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.PushBatch("a", series); err != nil {
		t.Fatal(err)
	}
	// Warm "b" to the point where the pair exceeds the budget; the push
	// that crosses is rejected (a is not idle), with nothing corrupted.
	var rejected bool
	for i := 0; i < len(series); i += 100 {
		err := m.PushBatch("b", series[i:i+100])
		if errors.Is(err, ErrOverBudget) {
			rejected = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second) // keep both streams recently pushed
	}
	if !rejected {
		t.Fatalf("budget %d never rejected a push; total %d", budget, m.TotalBytes())
	}
	if m.Len() != 2 {
		t.Fatalf("rejection corrupted the stream set: %d live", m.Len())
	}

	// Let "a" go idle: the next over-budget push evicts it and succeeds.
	clk.Advance(2 * time.Minute)
	if err := m.PushBatch("b", series[:100]); err != nil {
		t.Fatalf("push after idle eviction: %v", err)
	}
	if _, err := m.StreamStats("a"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("a not evicted for budget: %v", err)
	}
	if got := m.TotalBytes(); got > budget {
		t.Fatalf("total %d still over budget %d after eviction", got, budget)
	}
	if st := m.Stats(); st.Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", st.Evicted)
	}
}

// TestConcurrentCreationRespectsBudget: many producers racing to create
// new streams under a budget that fits only a few must not collectively
// overshoot it — admission is atomic, the rest are rejected cleanly.
func TestConcurrentCreationRespectsBudget(t *testing.T) {
	cfg := testStreamConfig()
	// Budget sized from one fresh detector: room for ~3 of them.
	probe, err := New(Config{Stream: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Push("p", 1); err != nil {
		t.Fatal(err)
	}
	one := probe.TotalBytes()
	probe.Close()
	budget := 3*one + one/2

	m, err := New(Config{Stream: cfg, MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	var admitted, rejected atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			err := m.Push(fmt.Sprintf("s%d", g), 1)
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrOverBudget):
				rejected.Add(1)
			default:
				t.Errorf("s%d: unexpected error %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if got := m.TotalBytes(); got > budget {
		t.Fatalf("concurrent creation overshot: %d > budget %d", got, budget)
	}
	if admitted.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("admitted %d, rejected %d; budget %d did not bite both ways", admitted.Load(), rejected.Load(), budget)
	}
	if int(admitted.Load()) != m.Len() {
		t.Fatalf("admitted %d but %d live", admitted.Load(), m.Len())
	}
}

// TestAccountingConsistency: the manager total equals the sum of the
// per-stream footprints, before and after closes, and reaches zero when
// the last stream leaves.
func TestAccountingConsistency(t *testing.T) {
	cfg := testStreamConfig()
	m, err := New(Config{Stream: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("s%d", i)
		if err := m.PushBatch(id, sineSeries(500+137*i, 40, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	var sum int64
	for _, s := range st.Streams {
		if s.MemoryBytes <= 0 {
			t.Fatalf("%s: footprint %d, want > 0", s.ID, s.MemoryBytes)
		}
		sum += s.MemoryBytes
	}
	if st.TotalBytes != sum {
		t.Fatalf("TotalBytes %d != sum of stream footprints %d", st.TotalBytes, sum)
	}
	for _, s := range st.Streams {
		if _, err := m.CloseStream(s.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.TotalBytes(); got != 0 {
		t.Fatalf("TotalBytes %d after closing every stream, want 0", got)
	}
}

// TestSubscribeFilter: a per-stream subscriber sees exactly its stream's
// events while a global subscriber sees everything.
func TestSubscribeFilter(t *testing.T) {
	cfg := testStreamConfig()
	m, err := New(Config{Stream: cfg})
	if err != nil {
		t.Fatal(err)
	}
	chA, cancelA := m.Subscribe("a", 64)
	defer cancelA()
	chAll, cancelAll := m.Subscribe("", 64)
	defer cancelAll()
	gotA, doneA := collect(chA)
	gotAll, doneAll := collect(chAll)

	seriesA := sineSeries(2000, 40, 101, 740, 1500)
	seriesB := sineSeries(2000, 40, 102, 780, 1500)
	if err := m.PushBatch("a", seriesA); err != nil {
		t.Fatal(err)
	}
	if err := m.PushBatch("b", seriesB); err != nil {
		t.Fatal(err)
	}
	m.Close()
	<-doneA
	<-doneAll

	if len(gotA["b"]) != 0 {
		t.Fatalf("per-stream subscriber leaked %d events of b", len(gotA["b"]))
	}
	if !eventsEqual(gotA["a"], gotAll["a"]) {
		t.Fatalf("filtered view %v != global view %v for a", gotA["a"], gotAll["a"])
	}
	if len(gotAll["a"]) == 0 || len(gotAll["b"]) == 0 {
		t.Fatalf("fixtures produced no events (a=%d b=%d); test is vacuous", len(gotAll["a"]), len(gotAll["b"]))
	}
}

// TestConcurrentPushers: many goroutines hammer disjoint and shared
// streams while a subscriber consumes and an evictor sweeps — the race
// detector is the assertion, plus conservation: delivered events per
// stream never exceed confirmed counts and all deliveries are in order.
func TestConcurrentPushers(t *testing.T) {
	cfg := testStreamConfig()
	clk := &fakeClock{}
	m, err := New(Config{Stream: cfg, MaxStreams: 8, IdleAfter: time.Hour, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := m.Subscribe("", 1024)
	defer cancel()

	ordered := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := map[string]int{}
		for ev := range ch {
			if prev, ok := last[ev.Stream]; ok && ev.Anomaly.Pos < prev {
				select {
				case ordered <- fmt.Errorf("%s: event pos %d after %d", ev.Stream, ev.Anomaly.Pos, prev):
				default:
				}
			}
			last[ev.Stream] = ev.Anomaly.Pos
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", g%4) // four streams, two producers each
			series := sineSeries(1200, 40, int64(g%4), 600)
			for i := 0; i < len(series); i += 60 {
				if err := m.PushBatch(id, series[i:i+60]); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	select {
	case err := <-ordered:
		t.Fatal(err)
	default:
	}
}

// TestClosedManager: every operation after Close fails cleanly.
func TestClosedManager(t *testing.T) {
	m, err := New(Config{Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := m.Push("x", 1); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Push after Close: %v", err)
	}
	if err := m.Open("x"); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Open after Close: %v", err)
	}
	if _, err := m.CloseStream("x"); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("CloseStream after Close: %v", err)
	}
	ch, cancel := m.Subscribe("", 1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("subscription to closed manager delivered an event")
	}
}

// TestBadConfig: template and limit validation happens at construction.
func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Stream: stream.Config{Window: 1}}); err == nil {
		t.Fatal("bad stream template accepted")
	}
	if _, err := New(Config{Stream: testStreamConfig(), MaxStreams: -1}); err == nil {
		t.Fatal("negative MaxStreams accepted")
	}
	if _, err := New(Config{Stream: testStreamConfig(), MaxBytes: -1}); err == nil {
		t.Fatal("negative MaxBytes accepted")
	}
	cfg := testStreamConfig()
	cfg.OnEvent = func(stream.Event) {}
	if _, err := New(Config{Stream: cfg}); err == nil {
		t.Fatal("template with OnEvent accepted")
	}
}
