package manager

import (
	"errors"
	"testing"
)

// TestStatsSortedByID: the rendered stream listing is sorted by id no
// matter the creation or push order, so operators and diffing tools see
// a stable view.
func TestStatsSortedByID(t *testing.T) {
	m, err := New(Config{Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, id := range []string{"c", "a", "delta", "b"} {
		if err := m.Open(id); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if len(st.Streams) != 4 {
		t.Fatalf("%d streams, want 4", len(st.Streams))
	}
	for i := 1; i < len(st.Streams); i++ {
		if st.Streams[i-1].ID >= st.Streams[i].ID {
			t.Fatalf("streams out of order: %q before %q", st.Streams[i-1].ID, st.Streams[i].ID)
		}
	}
}

// TestOpenStreamOverrides: per-stream overrides pin effective settings
// at create; re-opening with the same effective settings is idempotent,
// different settings are an ErrStreamConfig conflict, and explicitly
// requesting the template's own values never conflicts.
func TestOpenStreamOverrides(t *testing.T) {
	m, err := New(Config{Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.OpenStream("s", Overrides{Threshold: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := m.OpenStream("s", Overrides{Threshold: 0.5}); err != nil {
		t.Fatalf("idempotent reopen: %v", err)
	}
	if err := m.Open("s"); err != nil {
		t.Fatalf("zero-override open of an overridden stream: %v", err)
	}
	if err := m.OpenStream("s", Overrides{Threshold: 0.4}); !errors.Is(err, ErrStreamConfig) {
		t.Fatalf("conflicting reopen: err = %v, want ErrStreamConfig", err)
	}
	if _, err := m.PushBatchN("s", []float64{1, 2, 3}); err != nil {
		t.Fatalf("push after rejected reopen: %v", err)
	}

	// A template-created stream accepts an explicit spelling of the
	// template's effective settings: equality is on effective values.
	if err := m.Open("t"); err != nil {
		t.Fatal(err)
	}
	cfg, err := testStreamConfig().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	explicit := Overrides{Window: cfg.Window, BufLen: cfg.BufLen, Hop: cfg.Hop, Threshold: cfg.Threshold, RebaseEvery: cfg.RebaseEvery}
	if err := m.OpenStream("t", explicit); err != nil {
		t.Fatalf("explicit template settings conflict: %v", err)
	}

	// Invalid overrides are rejected up front, not silently normalized
	// into something else.
	if err := m.OpenStream("u", Overrides{Threshold: 3}); err == nil {
		t.Fatal("threshold 3 accepted")
	}
}

// TestOverridesPersistAcrossRestart: pinned settings live in the
// snapshot meta — after a restart the conflict check still has them,
// live or hibernated.
func TestOverridesPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m, _ := openDurable(t, dir, 200)
	ov := Overrides{Window: 20, Threshold: 0.5}
	if err := m.OpenStream("s", ov); err != nil {
		t.Fatal(err)
	}
	pushChunks(t, m, "s", sineSeries(600, 20, 5, 300), 100)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, _ := openDurable(t, dir, 200)
	defer m2.Close()
	if fails := m2.RecoveryFailures(); len(fails) != 0 {
		t.Fatalf("recovery failures: %v", fails)
	}
	if err := m2.OpenStream("s", ov); err != nil {
		t.Fatalf("reopening with the pinned settings after restart: %v", err)
	}
	if err := m2.OpenStream("s", Overrides{Threshold: 0.4}); !errors.Is(err, ErrStreamConfig) {
		t.Fatalf("conflicting reopen after restart: err = %v, want ErrStreamConfig", err)
	}
	pushChunks(t, m2, "s", sineSeries(100, 20, 6), 100)
	st, err := m2.StreamStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 700 {
		t.Fatalf("points after restart = %d, want 700", st.Points)
	}
}

// TestExportImportRoundTrip: a stream exported from one manager and
// imported into another continues exactly — accounting intact, source
// fully released, further pushes served by the target.
func TestExportImportRoundTrip(t *testing.T) {
	src, _ := openDurable(t, t.TempDir(), 200)
	defer src.Close()
	dst, _ := openDurable(t, t.TempDir(), 200)
	defer dst.Close()

	full := sineSeries(1200, 40, 9, 500)
	pushChunks(t, src, "s", full[:800], 100)

	st, err := src.ExportStream("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.WalPos != 800 {
		t.Fatalf("export WalPos = %d, want 800", st.WalPos)
	}
	if st.Bytes() <= 0 {
		t.Fatal("export reports no bytes")
	}
	if err := dst.ImportStream(st); err != nil {
		t.Fatal(err)
	}
	// Importing over a live copy must be refused.
	if err := dst.ImportStream(st); err == nil {
		t.Fatal("double import succeeded")
	}
	if err := src.ReleaseStream("s"); err != nil {
		t.Fatal(err)
	}
	if ids := src.StreamIDs(); len(ids) != 0 {
		t.Fatalf("source still holds %v after release", ids)
	}
	got, err := dst.StreamStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Points != 800 {
		t.Fatalf("imported points = %d, want 800", got.Points)
	}
	pushChunks(t, dst, "s", full[800:], 100)
	if got, _ = dst.StreamStats("s"); got.Points != int64(len(full)) {
		t.Fatalf("points after continued ingest = %d, want %d", got.Points, len(full))
	}

	// The export source must fail cleanly on unknown streams.
	if _, err := src.ExportStream("nope"); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("exporting unknown stream: err = %v, want ErrUnknownStream", err)
	}
}

// TestNonDurableExportTracksWalPos: a memory-only manager still tracks
// the consumed-input coordinate, so its exports resume at the right
// position on a durable target.
func TestNonDurableExportTracksWalPos(t *testing.T) {
	m, err := New(Config{Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	pushChunks(t, m, "s", sineSeries(500, 40, 13), 100)

	st, err := m.ExportStream("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.WalPos != 500 {
		t.Fatalf("non-durable export WalPos = %d, want 500", st.WalPos)
	}
	if st.Snapshot == nil || len(st.Tail) != 0 {
		t.Fatalf("non-durable export shape: snapshot=%d bytes tail=%d", len(st.Snapshot), len(st.Tail))
	}

	// Round-trip into a durable manager: the coordinate carries over.
	dst, _ := openDurable(t, t.TempDir(), 200)
	defer dst.Close()
	if err := dst.ImportStream(st); err != nil {
		t.Fatal(err)
	}
	got, err := dst.StreamStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Points != 500 {
		t.Fatalf("imported points = %d, want 500", got.Points)
	}
}
