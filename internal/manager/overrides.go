package manager

// Per-stream configuration overrides: a stream may be created with a
// subset of the manager's stream template pinned to different values
// (window scale, buffer, hop, threshold, rebase schedule). The pinned
// settings are normalized to their effective values at create time,
// persisted in the stream's snapshot meta, and travel with the stream
// when it migrates between shards — so a migrated or restarted stream
// always restores under exactly the configuration it was created with,
// which is what keeps its snapshot fingerprint valid. Opening a stream
// that already exists with different effective settings is rejected with
// ErrStreamConfig; serving layers surface that as HTTP 409.

import (
	"errors"
	"fmt"

	"egi/internal/stream"
)

// ErrStreamConfig rejects opening (or pushing with overrides to) a
// stream that already exists with different effective settings. The
// existing stream is untouched; close it first if the new settings are
// intended.
var ErrStreamConfig = errors.New("manager: stream exists with different settings")

// Overrides pins per-stream detector settings at create time, overriding
// the manager's stream template for that stream only. Zero fields
// inherit the template; only positive values override (the streaming
// knobs have no meaningful zero settings). The zero Overrides value
// means "template settings" everywhere it is accepted.
type Overrides struct {
	// Window overrides the sliding window length (anomaly scale).
	Window int
	// BufLen overrides the ring buffer capacity.
	BufLen int
	// Hop overrides the points between ensemble re-inductions.
	Hop int
	// Threshold overrides the fixed event threshold in (0, 1].
	Threshold float64
	// RebaseEvery overrides the grammar rebase schedule (K runs).
	RebaseEvery int
}

// IsZero reports whether no field is set, i.e. the stream runs purely on
// the template.
func (o Overrides) IsZero() bool { return o == Overrides{} }

// apply lays the set fields over cfg and returns the result.
func (o Overrides) apply(cfg stream.Config) stream.Config {
	if o.Window > 0 {
		cfg.Window = o.Window
	}
	if o.BufLen > 0 {
		cfg.BufLen = o.BufLen
	}
	if o.Hop > 0 {
		cfg.Hop = o.Hop
	}
	if o.Threshold > 0 {
		cfg.Threshold = o.Threshold
	}
	if o.RebaseEvery > 0 {
		cfg.RebaseEvery = o.RebaseEvery
	}
	return cfg
}

// applyEffective writes effective (fully normalized) settings into cfg
// unconditionally. Only valid on an effective Overrides value, where
// every field holds the concrete setting the stream runs with
// (RebaseEvery 0 is the adaptive schedule and is concrete).
func (o Overrides) applyEffective(cfg *stream.Config) {
	cfg.Window = o.Window
	cfg.BufLen = o.BufLen
	cfg.Hop = o.Hop
	cfg.Threshold = o.Threshold
	cfg.RebaseEvery = o.RebaseEvery
}

// effectiveOverrides resolves a requested override set against the
// manager's template into the effective settings a stream created with
// it would run with: defaults filled, knobs validated. Two override
// requests denote the same stream configuration exactly when their
// effective forms are equal, which is the equality ErrStreamConfig is
// decided on — requesting the template's own values explicitly is not a
// conflict.
func (m *Manager) effectiveOverrides(ov Overrides) (Overrides, error) {
	if ov.IsZero() {
		return m.templateOv, nil
	}
	cfg := ov.apply(m.cfg.Stream)
	cfg.OnEvent = nil
	n, err := cfg.Normalized()
	if err != nil {
		return Overrides{}, fmt.Errorf("manager: stream overrides: %w", err)
	}
	return Overrides{Window: n.Window, BufLen: n.BufLen, Hop: n.Hop, Threshold: n.Threshold, RebaseEvery: n.RebaseEvery}, nil
}

// checkOverrides rejects a lookup that requests settings different from
// the ones the live entry runs with. A zero request never conflicts (it
// means "whatever the stream has"), and quarantined tombstones are
// exempt — the quarantine error, raised at use, is the meaningful one.
func (m *Manager) checkOverrides(e *entry, ov Overrides) error {
	if ov.IsZero() || e.quarantined.Load() {
		return nil
	}
	want, err := m.effectiveOverrides(ov)
	if err != nil {
		return err
	}
	if want != e.overrides {
		return overridesConflict(e.id, want, e.overrides)
	}
	return nil
}

// overridesConflict formats the ErrStreamConfig for a settings mismatch,
// naming both sides so the 409 body is actionable.
func overridesConflict(id string, want, have Overrides) error {
	return fmt.Errorf("%w: %q runs with window=%d buflen=%d hop=%d threshold=%v rebase_every=%d; requested window=%d buflen=%d hop=%d threshold=%v rebase_every=%d",
		ErrStreamConfig, id,
		have.Window, have.BufLen, have.Hop, have.Threshold, have.RebaseEvery,
		want.Window, want.BufLen, want.Hop, want.Threshold, want.RebaseEvery)
}

// OpenStream is Open with per-stream setting overrides: the stream is
// created running with the template plus the set override fields, and
// the effective settings are pinned — they survive hibernation,
// restarts, and migration between shards (persisted in the snapshot
// meta). Opening an existing stream with the same effective settings is
// an idempotent no-op, like Open; opening one whose settings differ
// fails with ErrStreamConfig and leaves the stream untouched. A zero
// Overrides makes OpenStream identical to Open.
func (m *Manager) OpenStream(id string, ov Overrides) error {
	_, evicted, err := m.get(id, true, ov)
	m.retire(evicted)
	return err
}
