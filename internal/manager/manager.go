// Package manager is the multi-stream serving core: one Manager owns many
// independent streaming detectors keyed by stream id, each safe for
// concurrent fan-in, with rolled-up memory accounting, configurable limits
// (maximum stream count, total byte budget) and idle-stream eviction (LRU
// on last-push time, plus explicit close). It is the machinery behind the
// public egi.Manager API and the egiserve HTTP server.
//
// The stream table is sharded: ids are distributed across a fixed set of
// shards by FNV-1a hash, each shard guarding its slice of the table with
// its own RWMutex. The ingest hot path — look up an entry, push under its
// lock — therefore takes only a shard read lock plus the per-stream lock,
// so producers for different streams never contend on a global mutex, and
// producers for one stream serialize exactly like egi.ConcurrentStream.
// Structural changes (creating a stream, evicting, closing) serialize on a
// single createMu so limit admission stays atomic; the lock hierarchy is
// createMu → shard.mu → entry.mu, and no hot-path operation ever takes
// createMu. Confirmed anomaly events flow through a broker to subscribers
// (per-stream or global), with backpressure rather than loss: a full
// subscriber channel blocks the delivery of every stream matching its
// filter — only that stream for a per-stream subscription, all of them for
// a global one — but never drops events, and never holds up streams
// outside the filter. Subscribers must therefore keep receiving until they
// cancel; Close likewise blocks delivering final events until stalled
// subscribers read or cancel (egiserve pairs this with per-write SSE
// deadlines so a stuck client cancels itself).
//
// Memory is governed end to end: each detector's MemoryFootprint (ring +
// member pipelines + stitch buffers, all bounded) is re-read after every
// push and summed into the manager total via atomics. When the total would
// exceed MaxBytes the manager first evicts idle streams, least-recently-
// pushed first; if nothing is evictable the offending push is rejected
// with ErrOverBudget — limits reject, they do not corrupt. Eviction
// flushes the stream, so every event that could still be confirmed from
// buffered data is delivered before the stream's memory is released.
package manager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"egi/internal/stream"
	"egi/internal/vfs"
	"egi/internal/wal"
)

// Errors reported by the manager.
var (
	// ErrManagerClosed is returned by every operation after Close.
	ErrManagerClosed = errors.New("manager: manager closed")
	// ErrTooManyStreams rejects opening a stream when the manager is at
	// MaxStreams and no idle stream can be evicted.
	ErrTooManyStreams = errors.New("manager: too many streams")
	// ErrOverBudget rejects a push while the rolled-up memory footprint
	// exceeds MaxBytes and no idle stream can be evicted.
	ErrOverBudget = errors.New("manager: memory budget exceeded")
	// ErrUnknownStream is returned for lookups of ids that do not exist.
	ErrUnknownStream = errors.New("manager: unknown stream")
	// ErrStreamQuarantined rejects operations on a stream whose detection
	// engine panicked or whose persisted state could not be recovered: the
	// stream is held as a tombstone (its memory released, its disk state
	// preserved for inspection) so one poisoned stream cannot take down
	// the process. CloseStream deletes it; a restart retries recovery.
	ErrStreamQuarantined = errors.New("manager: stream quarantined")
)

// Config parameterizes a Manager.
type Config struct {
	// Stream is the detector configuration every managed stream is
	// created with. Its OnEvent must be nil: the manager owns event
	// delivery (events reach subscribers through Subscribe).
	Stream stream.Config
	// MaxStreams caps the number of live streams; 0 means unlimited.
	// At the cap, opening a new stream evicts the least-recently-pushed
	// idle stream, or fails with ErrTooManyStreams if none is idle.
	MaxStreams int
	// MaxBytes caps the rolled-up MemoryFootprint across streams; 0
	// means unlimited. New streams are admitted against the budget
	// atomically (concurrent creations serialize and cannot collectively
	// overshoot); growth of existing streams is checked before each
	// push, so the total may transiently overshoot by at most one hop's
	// growth per concurrently pushing stream. In both cases the manager
	// evicts idle streams first and rejects with ErrOverBudget only if
	// that does not make room.
	MaxBytes int64
	// IdleAfter is how long a stream must go without a push before it is
	// evictable. Zero disables automatic eviction entirely: streams then
	// only leave through CloseStream or Close, and the limits above
	// reject rather than evict.
	IdleAfter time.Duration
	// DataDir, when non-empty, makes every stream durable: accepted
	// points are write-ahead logged under this directory, snapshot
	// checkpoints bound replay, eviction hibernates streams instead of
	// flushing them, and New recovers every persisted stream. Empty
	// keeps the manager fully in-memory (the previous behavior).
	DataDir string
	// SnapshotEvery is the number of accepted points between snapshot
	// checkpoints of a durable stream; 0 selects 8192. Checkpoints bound
	// both recovery replay time and on-disk log growth.
	SnapshotEvery int
	// Fsync, when set, fsyncs the write-ahead log after every accepted
	// push batch, making acked points survive power loss rather than
	// just process death. Off, durability rides on the OS page cache.
	Fsync bool
	// FS is the filesystem the durability layer reads and writes
	// through; nil means the real OS. Fault-injection tests use it to
	// fail specific operations and exercise degraded mode.
	FS vfs.FS
	// Events, when non-nil, is a shared event broker: the manager
	// publishes into it instead of creating its own, and Close leaves it
	// open (the sharer owns its lifecycle). A routing tier passes one
	// broker to every member shard so a merged subscription sees events
	// in per-stream order even across a stream migration — the source
	// shard's last events are already in the subscriber channels before
	// the target shard publishes its first.
	Events *Broker
	// Now is the clock, injectable for tests; nil means time.Now.
	Now func() time.Time
}

// StreamStats is a point-in-time snapshot of one managed stream's
// accounting.
type StreamStats struct {
	// ID is the stream's key.
	ID string
	// Points is the number of points accepted so far.
	Points int64
	// Events is the number of confirmed anomaly events emitted so far.
	Events int64
	// MemoryBytes is the stream's current MemoryFootprint.
	MemoryBytes int64
	// Created is when the stream was opened.
	Created time.Time
	// LastPush is when the stream last accepted a push (Created until
	// the first push).
	LastPush time.Time
	// Degraded reports that the stream's durability is failing: it keeps
	// detecting in memory and accepting pushes, but accepted points are
	// not reaching the write-ahead log. The manager retries with capped
	// backoff and heals by checkpoint once writes succeed.
	Degraded bool
	// Quarantined reports that the stream is a tombstone after a panic
	// or an unrecoverable persisted state: pushes are rejected with
	// ErrStreamQuarantined and its memory has been released.
	Quarantined bool
	// Fault is the text of the failure behind Degraded or Quarantined;
	// empty on a healthy stream.
	Fault string
	// Shard names the serving shard hosting the stream. A standalone
	// manager leaves it empty; the routing tier (internal/router) fills
	// it in when merging stats across shards.
	Shard string
}

// Stats is a point-in-time snapshot of the whole manager.
type Stats struct {
	// Streams holds one snapshot per live stream, sorted by id.
	Streams []StreamStats
	// TotalBytes is the rolled-up MemoryFootprint across live streams.
	TotalBytes int64
	// Evicted counts streams evicted for idleness or budget since the
	// manager was created (explicit CloseStream calls not included).
	Evicted int64
	// Degraded counts live streams currently in degraded (memory-only)
	// mode.
	Degraded int64
	// Quarantined counts quarantined tombstone streams.
	Quarantined int64
}

// entry is one managed stream: a detector behind its own mutex, its
// counters, and its pending-event queue (filled under mu by the detector's
// OnEvent callback, drained to the broker outside mu).
type entry struct {
	id      string
	created time.Time

	// overrides holds the stream's effective (normalized) settings for
	// the overridable knobs; immutable after construction. Equal to the
	// template's effective values unless the stream was created with
	// per-stream overrides.
	overrides Overrides

	mu        sync.Mutex // guards d, pending, spare, closed, log, sinceSnap, faultErr, retryAt, backoff
	d         *stream.Detector
	pending   []Event
	spare     []Event
	closed    bool
	log       *wal.StreamLog // non-nil when the stream is durable and healthy
	walPos    int            // log coordinate: input points consumed so far
	sinceSnap int            // consumed points since the last checkpoint
	faultErr  error          // durability fault (degraded) or quarantine cause
	retryAt   time.Time      // earliest next healing attempt while degraded
	backoff   time.Duration  // current healing backoff

	sendMu sync.Mutex // serializes this stream's broker publishes

	// Accounting, atomically readable without mu (Stats, LRU scans).
	points      atomic.Int64
	events      atomic.Int64
	footprint   atomic.Int64
	lastPush    atomic.Int64 // unix nanos
	degraded    atomic.Bool
	quarantined atomic.Bool
	fault       atomic.Value // string mirror of faultErr for lock-free stats
}

// shardCount is the width of the stream table. 64 shards keep the chance
// of two concurrently pushed streams hashing together below 2% at 8
// producers while the per-manager overhead stays a few kilobytes.
const shardCount = 64

// shard is one slice of the stream table. The RWMutex is read-locked on
// the ingest hot path (entry lookup) and write-locked only for insert and
// detach, so lookups — including Stats scans — never contend with each
// other.
type shard struct {
	mu      sync.RWMutex
	streams map[string]*entry
}

// fnv32a is 32-bit FNV-1a, inlined to keep stream-id hashing
// allocation-free on the hot path.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Manager multiplexes many streaming detectors behind one surface. All
// methods are safe for concurrent use.
//
// Locking discipline: the hot path (PushBatchN on an existing stream)
// takes the id's shard read lock to find the entry, releases it, then
// pushes under the entry's own mutex — no global lock. Structural
// mutations (create, evict, CloseStream, Close) serialize on createMu and
// take shard write locks one at a time; they never hold two shard locks
// at once. The hierarchy is createMu → shard.mu → entry.mu, always in
// that order, and reads of the rolled-up accounting (Stats, TotalBytes,
// Len) go through atomics so they block nothing.
type Manager struct {
	cfg       Config
	now       func() time.Time
	broker    *Broker
	store     *wal.Store // nil when DataDir is empty
	snapEvery int

	// templateOv is the template's effective values for the overridable
	// knobs, precomputed at New; the settings a stream created without
	// overrides runs with.
	templateOv Overrides

	shards [shardCount]shard

	// createMu serializes stream creation, eviction, and close, keeping
	// limit admission atomic (concurrent creations cannot collectively
	// overshoot MaxStreams/MaxBytes). The ingest hot path never takes it.
	createMu sync.Mutex
	closed   atomic.Bool

	count            atomic.Int64 // live streams across all shards
	totalBytes       atomic.Int64
	evicted          atomic.Int64
	degradedCount    atomic.Int64
	quarantinedCount atomic.Int64

	// recoveryFailures records the streams startup recovery skipped and
	// quarantined; written only inside New, immutable afterwards.
	recoveryFailures []RecoveryFailure
}

func (m *Manager) shardFor(id string) *shard {
	return &m.shards[fnv32a(id)%shardCount]
}

// New creates a Manager. The stream template is validated eagerly so a bad
// configuration fails here, not on the first push.
func New(cfg Config) (*Manager, error) {
	if cfg.Stream.OnEvent != nil {
		return nil, errors.New("manager: Stream.OnEvent must be nil (the manager owns event delivery)")
	}
	if cfg.MaxStreams < 0 {
		return nil, fmt.Errorf("manager: MaxStreams must be >= 0, got %d", cfg.MaxStreams)
	}
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("manager: MaxBytes must be >= 0, got %d", cfg.MaxBytes)
	}
	if cfg.IdleAfter < 0 {
		return nil, fmt.Errorf("manager: IdleAfter must be >= 0, got %v", cfg.IdleAfter)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("manager: SnapshotEvery must be >= 0, got %d", cfg.SnapshotEvery)
	}
	if _, err := stream.New(cfg.Stream); err != nil {
		return nil, fmt.Errorf("manager: stream template: %w", err)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	b := cfg.Events
	if b == nil {
		b = newBroker()
	}
	m := &Manager{
		cfg:       cfg,
		now:       now,
		broker:    b,
		snapEvery: cfg.SnapshotEvery,
	}
	// The template was just validated, so its normalized form cannot fail.
	tpl, err := cfg.Stream.Normalized()
	if err != nil {
		return nil, fmt.Errorf("manager: stream template: %w", err)
	}
	m.templateOv = Overrides{Window: tpl.Window, BufLen: tpl.BufLen, Hop: tpl.Hop, Threshold: tpl.Threshold, RebaseEvery: tpl.RebaseEvery}
	for i := range m.shards {
		m.shards[i].streams = make(map[string]*entry)
	}
	if m.snapEvery == 0 {
		m.snapEvery = 8192
	}
	if cfg.DataDir != "" {
		store, err := wal.Open(cfg.DataDir, wal.Options{Fsync: cfg.Fsync, FS: cfg.FS})
		if err != nil {
			return nil, fmt.Errorf("manager: opening data directory: %w", err)
		}
		m.store = store
		if err := m.recoverAll(); err != nil {
			_ = m.Close() // best effort: the recovery error is the one to report
			return nil, err
		}
	}
	return m, nil
}

// Open creates the stream if it does not exist yet, applying the
// MaxStreams limit (evicting an idle stream if necessary). It is
// idempotent: opening an existing stream is a no-op.
func (m *Manager) Open(id string) error {
	return m.OpenStream(id, Overrides{})
}

// get looks up (and under create, makes) the entry for id. The lookup is
// the ingest hot path: one shard read lock, no global state. A non-zero
// ov either pins the settings of a newly created stream or is checked
// against an existing one (ErrStreamConfig on mismatch); the hot path
// passes the zero Overrides, which skips the check entirely. get returns
// any entries evicted to make room; the caller must drain them after all
// locks are released — which has already happened by the time get returns.
func (m *Manager) get(id string, create bool, ov Overrides) (*entry, []*entry, error) {
	if m.closed.Load() {
		return nil, nil, ErrManagerClosed
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	if e != nil {
		if err := m.checkOverrides(e, ov); err != nil {
			return nil, nil, err
		}
		return e, nil, nil
	}
	if !create {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownStream, id)
	}
	return m.create(id, sh, ov)
}

// create admits a new stream under createMu, so concurrent creations
// serialize and the MaxStreams/MaxBytes checks stay atomic.
func (m *Manager) create(id string, sh *shard, ov Overrides) (*entry, []*entry, error) {
	m.createMu.Lock()
	defer m.createMu.Unlock()
	if m.closed.Load() {
		return nil, nil, ErrManagerClosed
	}
	// Re-check under createMu: a concurrent creator may have won the race
	// between our shard read-unlock and here.
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	if e != nil {
		if err := m.checkOverrides(e, ov); err != nil {
			return nil, nil, err
		}
		return e, nil, nil
	}
	var evicted []*entry
	if m.cfg.MaxStreams > 0 && int(m.count.Load()) >= m.cfg.MaxStreams {
		ev := m.evictLRU()
		if ev == nil {
			return nil, nil, fmt.Errorf("%w: %d live, none idle for %v", ErrTooManyStreams, m.count.Load(), m.cfg.IdleAfter)
		}
		evicted = append(evicted, ev)
	}
	// openEntry recovers persisted state when the manager is durable, so
	// a previously evicted (hibernated) stream resumes here transparently.
	e, err := m.openEntry(id, ov)
	if err != nil {
		return nil, evicted, err
	}
	fp := e.d.MemoryFootprint()
	// Admit the new stream against the byte budget while createMu is
	// held: concurrent creations serialize here, so they cannot
	// collectively overshoot — the budget admits a stream or rejects it,
	// atomically.
	if m.cfg.MaxBytes > 0 {
		for m.totalBytes.Load()+fp > m.cfg.MaxBytes {
			ev := m.evictLRU()
			if ev == nil {
				m.hibernate(e) // release the log handle; persisted state stays resumable
				return nil, evicted, fmt.Errorf("%w: %d of %d bytes in use, new stream needs %d",
					ErrOverBudget, m.totalBytes.Load(), m.cfg.MaxBytes, fp)
			}
			evicted = append(evicted, ev)
		}
	}
	e.footprint.Store(fp)
	m.totalBytes.Add(fp)
	sh.mu.Lock()
	sh.streams[id] = e
	sh.mu.Unlock()
	m.count.Add(1)
	return e, evicted, nil
}

// Push appends one point to the stream, creating it on first use.
func (m *Manager) Push(id string, x float64) error {
	return m.PushBatch(id, []float64{x})
}

// PushBatch appends the points, in order, to the stream, creating it on
// first use; no other producer's points interleave with the batch. Limit
// errors (ErrTooManyStreams, ErrOverBudget) reject the batch without
// corrupting anything; detector errors (e.g. a non-finite point) reject
// the remainder of the batch, with everything before the bad point
// accepted, exactly like Streamer.PushBatch.
func (m *Manager) PushBatch(id string, xs []float64) error {
	_, err := m.PushBatchN(id, xs)
	return err
}

// PushBatchN is PushBatch reporting how many points were accepted —
// applied to the stream (and write-ahead logged, when the manager is
// durable) before any error. On success that is len(xs); on a detector
// error it is the index of the offending point, so a client can resend
// exactly the unapplied remainder.
func (m *Manager) PushBatchN(id string, xs []float64) (int, error) {
	// A stream can be evicted between lookup and lock; recreating it and
	// retrying is correct (the eviction already delivered everything the
	// old incarnation could confirm — or, durable, hibernated state the
	// recreation resumes), and bounded so a pathological eviction loop
	// degrades to an error instead of spinning.
	for attempt := 0; ; attempt++ {
		if err := m.reserveBytes(); err != nil {
			return 0, err
		}
		e, evicted, err := m.get(id, true, Overrides{})
		m.retire(evicted)
		if err != nil {
			return 0, err
		}
		n, pushErr := m.pushLocked(e, xs)
		m.drain(e)
		if errors.Is(pushErr, ErrUnknownStream) && attempt < 3 {
			continue
		}
		return n, pushErr
	}
}

// pushLocked performs the push under the entry lock, write-ahead logs the
// consumed prefix, and settles the stream's accounting. An entry evicted
// between lookup and lock rejects the push with ErrUnknownStream (the
// caller may simply retry, recreating the stream); a quarantined entry
// rejects it with ErrStreamQuarantined. The returned count is the number
// of input points consumed.
//
// This is one of the manager's panic-quarantine boundaries: a panic
// escaping the detection engine is recovered here, the stream becomes a
// quarantined tombstone, and the push is reported failed — the process,
// the shard, and every other stream continue untouched. A WAL failure
// does NOT fail the push: the stream degrades (keeps detecting in
// memory, retries durability with backoff) and the caller sees success,
// with the degraded flag raised in stats and a health event published.
func (m *Manager) pushLocked(e *entry, xs []float64) (n int, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, fmt.Errorf("%w: %q (evicted)", ErrUnknownStream, e.id)
	}
	if e.quarantined.Load() {
		return 0, e.quarantineErrLocked()
	}
	defer func() {
		if r := recover(); r != nil {
			cause := fmt.Errorf("panic during push: %v", r)
			m.quarantineLocked(e, cause)
			n, err = 0, fmt.Errorf("%w: %q: %v", ErrStreamQuarantined, e.id, cause)
		}
	}()
	if testHookPush != nil {
		testHookPush(e.id)
	}
	m.maybeHealLocked(e)
	before := e.d.Total()
	n, err = e.d.PushBatchN(xs)
	if e.d.Total() > before {
		e.points.Add(int64(e.d.Total() - before))
	}
	if n > 0 {
		e.lastPush.Store(m.now().UnixNano())
	}
	m.settleFootprint(e)
	// Log the consumed prefix — raw inputs, so replay re-applies the same
	// non-finite policy deterministically.
	m.appendWALLocked(e, xs[:n])
	return n, err
}

// settleFootprint re-reads the entry's footprint and folds the delta into
// the manager total. Callers hold e.mu.
func (m *Manager) settleFootprint(e *entry) {
	fp := e.d.MemoryFootprint()
	m.totalBytes.Add(fp - e.footprint.Swap(fp))
}

// reserveBytes enforces MaxBytes before a push: if the rolled-up footprint
// exceeds the budget it evicts idle streams, least-recently-pushed first,
// and rejects with ErrOverBudget if the total still does not fit. Within
// budget — the hot-path case — it is one atomic load.
func (m *Manager) reserveBytes() error {
	if m.cfg.MaxBytes == 0 || m.totalBytes.Load() <= m.cfg.MaxBytes {
		return nil
	}
	m.createMu.Lock()
	if m.closed.Load() {
		m.createMu.Unlock()
		return ErrManagerClosed
	}
	var evicted []*entry
	for m.totalBytes.Load() > m.cfg.MaxBytes {
		ev := m.evictLRU()
		if ev == nil {
			break
		}
		evicted = append(evicted, ev)
	}
	m.createMu.Unlock()
	m.retire(evicted)
	if m.totalBytes.Load() > m.cfg.MaxBytes {
		return fmt.Errorf("%w: %d of %d bytes in use", ErrOverBudget, m.totalBytes.Load(), m.cfg.MaxBytes)
	}
	return nil
}

// evictLRU detaches the least-recently-pushed evictable stream, if any,
// scanning every shard under its read lock, and returns its entry; the
// caller must retire it (flush + drain) once createMu is released.
// Callers hold createMu.
func (m *Manager) evictLRU() *entry {
	if m.cfg.IdleAfter <= 0 {
		return nil
	}
	cutoff := m.now().Add(-m.cfg.IdleAfter).UnixNano()
	var victim *entry
	var victimT int64
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, e := range sh.streams {
			// Degraded streams are not evictable: hibernation could not
			// persist their unlogged suffix, so evicting one would turn a
			// reported degradation into silent loss. Quarantined
			// tombstones hold no memory and only leave via CloseStream.
			if e.degraded.Load() || e.quarantined.Load() {
				continue
			}
			if t := e.lastPush.Load(); t <= cutoff && (victim == nil || t < victimT) {
				victim, victimT = e, t
			}
		}
		sh.mu.RUnlock()
	}
	if victim == nil {
		return nil
	}
	m.detach(victim)
	m.evicted.Add(1)
	return victim
}

// detach closes the entry to further pushes and removes it from its shard
// and the accounting. It is deliberately cheap — the expensive flush
// happens in retire, outside all table locks, so evicting or closing one
// stream never stalls the others' ingest. Callers hold createMu, which is
// what prevents two detaches of the same entry.
func (m *Manager) detach(e *entry) {
	e.mu.Lock()
	e.closed = true
	// A detached entry no longer counts toward the manager's health
	// tallies (its own flags stay set, so final stats still report how it
	// ended). Reading the flags under e.mu, after closed is set, is what
	// keeps the tallies exact: degrade/quarantine transitions also run
	// under e.mu and skip the tallies once closed is set.
	if e.degraded.Load() {
		m.degradedCount.Add(-1)
	}
	if e.quarantined.Load() {
		m.quarantinedCount.Add(-1)
	}
	e.mu.Unlock()
	sh := m.shardFor(e.id)
	sh.mu.Lock()
	delete(sh.streams, e.id)
	sh.mu.Unlock()
	m.count.Add(-1)
	m.totalBytes.Add(-e.footprint.Load())
}

// retire finishes detached entries. A non-durable entry is flushed —
// emitting its still-confirmable tail events into its pending queue — and
// drained to subscribers. A durable entry instead hibernates: checkpoint,
// close the log, keep the buffered tail buffered — the stream resumes
// exactly here on its next push or the next process start, and the tail's
// events are confirmed then, with full context, rather than force-flushed
// now. Runs outside createMu and all shard locks.
func (m *Manager) retire(entries []*entry) {
	for _, e := range entries {
		if m.store != nil {
			m.hibernate(e)
		} else {
			m.flush(e)
		}
		m.drain(e)
	}
}

// flush flushes a detached in-memory entry, emitting its still-
// confirmable tail events. Like pushLocked, it is a panic-quarantine
// boundary: a flush that trips the engine poisons only this stream.
func (m *Manager) flush(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quarantined.Load() || e.d == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			m.quarantineLocked(e, fmt.Errorf("panic during flush: %v", r))
		}
	}()
	// Flush only fails on detector errors already surfaced by pushes.
	_ = e.d.Flush()
}

// drain publishes the entry's pending events to the broker, preserving
// stream order (the same swap-under-lock, publish-outside-lock discipline
// as egi.ConcurrentStream).
func (m *Manager) drain(e *entry) {
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	for {
		e.mu.Lock()
		batch := e.pending
		e.pending = e.spare[:0]
		e.spare = batch[:0]
		e.mu.Unlock()
		if len(batch) == 0 {
			return
		}
		m.broker.publish(batch)
	}
}

// CloseStream is the terminal close: it flushes the stream (delivering
// its final events), releases its memory, deletes any persisted state —
// unlike eviction, which hibernates a durable stream for later resumption
// — and returns its final stats.
func (m *Manager) CloseStream(id string) (StreamStats, error) {
	m.createMu.Lock()
	if m.closed.Load() {
		m.createMu.Unlock()
		return StreamStats{}, ErrManagerClosed
	}
	sh := m.shardFor(id)
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	if e == nil {
		m.createMu.Unlock()
		return StreamStats{}, fmt.Errorf("%w: %q", ErrUnknownStream, id)
	}
	m.detach(e)
	m.createMu.Unlock()
	m.flush(e)
	e.mu.Lock()
	if e.log != nil {
		// The stream's state is about to be deleted; the close error is
		// irrelevant once the flush above has delivered the final events.
		_ = e.log.Close()
		e.log = nil
	}
	e.mu.Unlock()
	m.drain(e)
	if m.store != nil {
		if err := m.store.Remove(id); err != nil {
			return e.snapshot(), fmt.Errorf("manager: removing persisted state of %q: %w", id, err)
		}
	}
	return e.snapshot(), nil
}

// EvictIdle evicts every stream idle for at least IdleAfter (no-op when
// IdleAfter is zero), delivering their final events, and returns the final
// stats of the evicted streams. Serving layers call it on a timer so idle
// streams are reclaimed even when no limit forces the issue.
func (m *Manager) EvictIdle() []StreamStats {
	m.createMu.Lock()
	if m.closed.Load() {
		m.createMu.Unlock()
		return nil
	}
	var evicted []*entry
	for {
		ev := m.evictLRU()
		if ev == nil {
			break
		}
		evicted = append(evicted, ev)
	}
	m.createMu.Unlock()
	m.retire(evicted)
	stats := make([]StreamStats, len(evicted))
	for i, e := range evicted {
		stats[i] = e.snapshot()
	}
	return stats
}

// Subscribe registers for confirmed anomaly events — those of one stream,
// or all streams with id "". Events arrive in per-stream order on a
// channel of the given capacity (minimum 1); a full channel blocks the
// producing stream (backpressure, never loss), so keep receiving until
// cancel. The channel is closed when the manager closes; cancel is
// idempotent and only deregisters.
func (m *Manager) Subscribe(id string, buf int) (<-chan Event, func()) {
	return m.broker.subscribe(id, buf)
}

// Anomalies returns the stream's current top-K ranking within its retained
// horizon (see stream.Detector.Anomalies). The stream must exist.
func (m *Manager) Anomalies(id string) ([]stream.Event, error) {
	e, _, err := m.get(id, false, Overrides{})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("%w: %q (evicted)", ErrUnknownStream, e.id)
	}
	if e.quarantined.Load() {
		return nil, e.quarantineErrLocked()
	}
	return e.d.Anomalies()
}

// snapshot reads the entry's counters. Safe without e.mu: every field is
// atomic or immutable.
func (e *entry) snapshot() StreamStats {
	fault, _ := e.fault.Load().(string)
	return StreamStats{
		ID:          e.id,
		Points:      e.points.Load(),
		Events:      e.events.Load(),
		MemoryBytes: e.footprint.Load(),
		Created:     e.created,
		LastPush:    time.Unix(0, e.lastPush.Load()),
		Degraded:    e.degraded.Load(),
		Quarantined: e.quarantined.Load(),
		Fault:       fault,
	}
}

// StreamStats returns one live stream's snapshot. The read takes only the
// stream's shard read lock plus atomics, so it never blocks ingest.
func (m *Manager) StreamStats(id string) (StreamStats, error) {
	e, _, err := m.get(id, false, Overrides{})
	if err != nil {
		return StreamStats{}, err
	}
	return e.snapshot(), nil
}

// Stats returns a snapshot of every live stream plus the rolled-up
// accounting, the per-stream listing sorted by id — shard-map iteration
// order is random, and a listing that shuffles between calls is useless
// to diff, page through, or merge across shards. It walks the shards one
// read lock at a time and reads per-entry counters through atomics, so
// it can run continuously against hot shards without ever blocking a
// push: pushes hold only shard read locks (which share) and entry locks
// (which Stats never takes).
func (m *Manager) Stats() Stats {
	s := Stats{
		Streams:     make([]StreamStats, 0, m.count.Load()),
		TotalBytes:  m.totalBytes.Load(),
		Evicted:     m.evicted.Load(),
		Degraded:    m.degradedCount.Load(),
		Quarantined: m.quarantinedCount.Load(),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, e := range sh.streams {
			s.Streams = append(s.Streams, e.snapshot())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(s.Streams, func(i, j int) bool { return s.Streams[i].ID < s.Streams[j].ID })
	return s
}

// TotalBytes returns the rolled-up MemoryFootprint across live streams.
func (m *Manager) TotalBytes() int64 { return m.totalBytes.Load() }

// Len returns the number of live streams.
func (m *Manager) Len() int { return int(m.count.Load()) }

// Close shuts the manager down: every stream is flushed (delivering its
// final events to subscribers), all stream memory is released, and every
// subscriber channel is closed. Close is idempotent; all later operations
// return ErrManagerClosed.
func (m *Manager) Close() error {
	m.createMu.Lock()
	if m.closed.Load() {
		m.createMu.Unlock()
		return nil
	}
	m.closed.Store(true)
	var entries []*entry
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, e := range sh.streams {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
	}
	for _, e := range entries {
		m.detach(e)
	}
	m.createMu.Unlock()
	m.retire(entries)
	if m.cfg.Events == nil {
		// A shared broker (Config.Events) outlives this manager; its
		// owner closes it after every sharing manager is down.
		m.broker.close()
	}
	return nil
}
