package manager

import (
	"encoding/hex"
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"egi/internal/stream"
	"egi/internal/vfs"
)

// openFaulty creates a durable manager over dir with an injectable
// filesystem and clock, plus a background global subscriber.
func openFaulty(t *testing.T, dir string, snapEvery int, fsys vfs.FS, clk *fakeClock, fsync bool) (*Manager, *collector) {
	t.Helper()
	m, err := New(Config{
		Stream:        testStreamConfig(),
		DataDir:       dir,
		SnapshotEvery: snapEvery,
		Fsync:         fsync,
		FS:            fsys,
		Now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, attachCollector(m)
}

// pushChunks pushes xs in chunk-sized batches, requiring every batch to be
// fully accepted.
func pushChunks(t *testing.T, m *Manager, id string, xs []float64, chunk int) {
	t.Helper()
	for off := 0; off < len(xs); off += chunk {
		end := off + chunk
		if end > len(xs) {
			end = len(xs)
		}
		if n, err := m.PushBatchN(id, xs[off:end]); err != nil || n != end-off {
			t.Fatalf("push [%d:%d) = (%d, %v), want (%d, nil)", off, end, n, err, end-off)
		}
	}
}

// anomaliesOf filters a collector's events down to the anomaly stream.
func anomaliesOf(events []Event) []stream.Event {
	var out []stream.Event
	for _, ev := range events {
		if ev.Health == "" {
			out = append(out, ev.Anomaly)
		}
	}
	return out
}

// healthOf filters a collector's events down to health transitions.
func healthOf(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Health != "" {
			out = append(out, ev)
		}
	}
	return out
}

// TestWALFaultDegradesThenHeals: a disk fault mid-ingest degrades the
// stream — pushes keep succeeding, detection continues in memory, the
// degraded flag and a health event announce it — and once the disk heals
// and the backoff elapses, a checkpoint restores full durability. The
// events delivered throughout, and after a restart, are bit-identical to
// a never-faulted stream.
func TestWALFaultDegradesThenHeals(t *testing.T) {
	dir := t.TempDir()
	inj := vfs.NewInject(nil)
	clk := &fakeClock{}
	m, c := openFaulty(t, dir, 200, inj, clk, false)
	cfg := testStreamConfig()
	full := sineSeries(1600, 40, 21, 500, 1200)

	pushChunks(t, m, "s", full[:400], 50)
	if st, _ := m.StreamStats("s"); st.Degraded {
		t.Fatal("healthy stream reports degraded")
	}

	inj.FailNext(syscall.ENOSPC)
	pushChunks(t, m, "s", full[400:800], 50) // pushes must keep succeeding
	st, err := m.StreamStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded || !strings.Contains(st.Fault, "no space") {
		t.Fatalf("after ENOSPC: Degraded=%v Fault=%q", st.Degraded, st.Fault)
	}
	if got := m.Stats(); got.Degraded != 1 {
		t.Fatalf("Stats().Degraded = %d, want 1", got.Degraded)
	}

	inj.Heal()
	clk.Advance(time.Minute) // past any backoff
	pushChunks(t, m, "s", full[800:1200], 50)
	if st, _ := m.StreamStats("s"); st.Degraded || st.Fault != "" {
		t.Fatalf("after heal: Degraded=%v Fault=%q", st.Degraded, st.Fault)
	}
	if got := m.Stats(); got.Degraded != 0 {
		t.Fatalf("Stats().Degraded = %d after heal, want 0", got.Degraded)
	}
	m.Close()
	evs := c.stop()

	health := healthOf(evs)
	if len(health) != 2 || health[0].Health != HealthDegraded || health[1].Health != HealthHealed {
		t.Fatalf("health transitions = %+v, want [degraded healed]", health)
	}
	if health[0].Cause == "" {
		t.Fatal("degraded event carries no cause")
	}

	// A fresh process continues the healed stream bit-identically.
	m2, c2 := openFaulty(t, dir, 200, vfs.NewInject(nil), clk, false)
	if fails := m2.RecoveryFailures(); len(fails) != 0 {
		t.Fatalf("recovery failures after healed shutdown: %v", fails)
	}
	pushChunks(t, m2, "s", full[1200:], 50)
	m2.Close()
	got := append(anomaliesOf(evs), anomaliesOf(c2.stop())...)
	want := directEvents(t, cfg, full, false)
	if !eventsEqual(got, want) {
		t.Fatalf("events across fault+heal+restart: got %d, want %d", len(got), len(want))
	}
}

// TestForcedSnapshotHealsImmediately: SnapshotStream on a degraded stream
// heals it the moment the disk is back, without waiting out the backoff.
func TestForcedSnapshotHealsImmediately(t *testing.T) {
	dir := t.TempDir()
	inj := vfs.NewInject(nil)
	clk := &fakeClock{}
	m, c := openFaulty(t, dir, 10_000, inj, clk, false)
	series := sineSeries(600, 40, 7)

	pushChunks(t, m, "s", series[:300], 50)
	inj.FailNext(syscall.EIO)
	pushChunks(t, m, "s", series[300:], 50)
	if st, _ := m.StreamStats("s"); !st.Degraded {
		t.Fatal("stream did not degrade on EIO")
	}
	// Disk is back; the clock has NOT advanced, so the backoff retry has
	// not fired — only the forced checkpoint can heal this early.
	inj.Heal()
	if err := m.SnapshotStream("s"); err != nil {
		t.Fatalf("forced snapshot on healed disk: %v", err)
	}
	if st, _ := m.StreamStats("s"); st.Degraded {
		t.Fatal("stream still degraded after successful forced snapshot")
	}
	m.Close()
	health := healthOf(c.stop())
	if len(health) != 2 || health[0].Health != HealthDegraded || health[1].Health != HealthHealed {
		t.Fatalf("health transitions = %+v, want [degraded healed]", health)
	}
}

// TestPushPanicQuarantines: a panic escaping the detection engine during a
// push turns the stream into a quarantined tombstone — the push fails with
// ErrStreamQuarantined, later operations are rejected, its memory leaves
// the budget, a health event is published — while every other stream and
// the process itself continue untouched. Closing the tombstone frees the
// id for a fresh stream.
func TestPushPanicQuarantines(t *testing.T) {
	m, err := New(Config{Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c := attachCollector(m)
	testHookPush = func(id string) {
		if id == "poison" {
			panic("engine invariant tripped")
		}
	}
	t.Cleanup(func() { testHookPush = nil })
	series := sineSeries(400, 40, 5)

	pushChunks(t, m, "ok", series, 100)
	okBytes := m.TotalBytes()

	n, err := m.PushBatchN("poison", series[:100])
	if n != 0 || !errors.Is(err, ErrStreamQuarantined) {
		t.Fatalf("panicking push = (%d, %v), want (0, ErrStreamQuarantined)", n, err)
	}
	if _, err := m.PushBatchN("poison", series[:100]); !errors.Is(err, ErrStreamQuarantined) {
		t.Fatalf("push to quarantined stream: %v", err)
	}
	if _, err := m.Anomalies("poison"); !errors.Is(err, ErrStreamQuarantined) {
		t.Fatalf("Anomalies on quarantined stream: %v", err)
	}
	st, err := m.StreamStats("poison")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Quarantined || st.MemoryBytes != 0 || !strings.Contains(st.Fault, "panic") {
		t.Fatalf("quarantined stats = %+v", st)
	}
	if got := m.Stats(); got.Quarantined != 1 {
		t.Fatalf("Stats().Quarantined = %d, want 1", got.Quarantined)
	}
	if m.TotalBytes() != okBytes {
		t.Fatalf("TotalBytes = %d after quarantine, want %d (tombstone holds no memory)", m.TotalBytes(), okBytes)
	}

	// The blast radius is one stream: others keep working.
	pushChunks(t, m, "ok", series, 100)

	// CloseStream deletes the tombstone; the id is reusable and the
	// manager's health tally returns to clean.
	if _, err := m.CloseStream("poison"); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats(); got.Quarantined != 0 {
		t.Fatalf("Stats().Quarantined = %d after close, want 0", got.Quarantined)
	}
	testHookPush = nil
	pushChunks(t, m, "poison", series, 100)

	m.Close()
	health := healthOf(c.stop())
	if len(health) != 1 || health[0].Health != HealthQuarantined || health[0].Stream != "poison" {
		t.Fatalf("health events = %+v, want one quarantined for poison", health)
	}
}

// TestReplayPanicQuarantinesAtStartup: a stream whose persisted state
// panics the engine during recovery replay is skipped and quarantined —
// reported in RecoveryFailures, rejecting pushes — while every other
// stream recovers normally. A detached ReplayStream that panics reports an
// error without touching the live stream.
func TestReplayPanicQuarantinesAtStartup(t *testing.T) {
	dir := t.TempDir()
	m1, c1 := openDurable(t, dir, 100)
	series := sineSeries(300, 40, 9)
	pushChunks(t, m1, "a", series, 60)
	pushChunks(t, m1, "b", series, 60)
	m1.Close()
	c1.stop()

	testHookReplay = func(id string) {
		if id == "a" {
			panic("poisoned snapshot")
		}
	}
	t.Cleanup(func() { testHookReplay = nil })
	m2, c2 := openDurable(t, dir, 100)
	testHookReplay = nil

	fails := m2.RecoveryFailures()
	if len(fails) != 1 || fails[0].Stream != "a" || !strings.Contains(fails[0].Err.Error(), "panic") {
		t.Fatalf("RecoveryFailures = %+v", fails)
	}
	if _, err := m2.PushBatchN("a", series[:60]); !errors.Is(err, ErrStreamQuarantined) {
		t.Fatalf("push to unrecoverable stream: %v", err)
	}
	pushChunks(t, m2, "b", series, 60) // the healthy stream is unaffected
	if got := m2.Stats(); got.Quarantined != 1 {
		t.Fatalf("Stats().Quarantined = %d, want 1", got.Quarantined)
	}

	// A panic inside the detached replay surface is contained too.
	testHookReplay = func(id string) { panic("replay bomb") }
	if _, err := m2.ReplayStream("b", func(int, stream.Event) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "panic") {
		t.Fatalf("ReplayStream with panicking engine: %v", err)
	}
	testHookReplay = nil
	pushChunks(t, m2, "b", series, 60) // live stream untouched by the replay panic

	// Closing the quarantined stream deletes its state: the next start is
	// clean.
	if _, err := m2.CloseStream("a"); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	c2.stop()
	m3, c3 := openDurable(t, dir, 100)
	if fails := m3.RecoveryFailures(); len(fails) != 0 {
		t.Fatalf("RecoveryFailures after deleting the bad stream = %+v", fails)
	}
	m3.Close()
	c3.stop()
}

// TestRecoverySkipsUnreadableStreamDir: a stream directory that cannot be
// read at startup (permission denied) is skipped and quarantined — startup
// succeeds, the failure is reported, and the other streams recover.
func TestRecoverySkipsUnreadableStreamDir(t *testing.T) {
	dir := t.TempDir()
	m1, c1 := openDurable(t, dir, 100)
	series := sineSeries(300, 40, 11)
	pushChunks(t, m1, "good", series, 60)
	pushChunks(t, m1, "bad", series, 60)
	m1.Close()
	c1.stop()

	// Deny every access to the bad stream's directory. (chmod 000 does not
	// stop root, which tests often run as; an injected EPERM always does.)
	badDir := hex.EncodeToString([]byte("bad"))
	inj := vfs.NewInject(nil)
	inj.SetKinds(vfs.OpsAll)
	inj.MatchPath(func(p string) bool { return strings.Contains(p, badDir) })
	inj.FailAt(0, os.ErrPermission)
	clk := &fakeClock{}
	m2, c2 := openFaulty(t, dir, 100, inj, clk, false)

	fails := m2.RecoveryFailures()
	if len(fails) != 1 || fails[0].Stream != "bad" || !errors.Is(fails[0].Err, os.ErrPermission) {
		t.Fatalf("RecoveryFailures = %+v", fails)
	}
	st, err := m2.StreamStats("good")
	if err != nil || st.Points != 300 {
		t.Fatalf("good stream after skip-recovery: (%+v, %v)", st, err)
	}
	if _, err := m2.PushBatchN("bad", series[:60]); !errors.Is(err, ErrStreamQuarantined) {
		t.Fatalf("push to unreadable stream: %v", err)
	}
	pushChunks(t, m2, "good", series, 60)
	m2.Close()
	c2.stop()
}

// TestDegradedStreamsAreNotEvicted: eviction skips degraded streams —
// hibernating one would silently drop the unlogged suffix the degraded
// flag is advertising.
func TestDegradedStreamsAreNotEvicted(t *testing.T) {
	dir := t.TempDir()
	inj := vfs.NewInject(nil)
	clk := &fakeClock{}
	m, err := New(Config{
		Stream:        testStreamConfig(),
		DataDir:       dir,
		SnapshotEvery: 10_000,
		IdleAfter:     time.Minute,
		FS:            inj,
		Now:           clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c := attachCollector(m)
	defer c.stop()
	series := sineSeries(300, 40, 13)

	pushChunks(t, m, "s", series, 60)
	inj.FailNext(syscall.ENOSPC)
	pushChunks(t, m, "s", series, 60)
	if st, _ := m.StreamStats("s"); !st.Degraded {
		t.Fatal("stream did not degrade")
	}
	clk.Advance(time.Hour) // idle long past IdleAfter
	if evicted := m.EvictIdle(); len(evicted) != 0 {
		t.Fatalf("EvictIdle evicted degraded stream: %+v", evicted)
	}
	if _, err := m.StreamStats("s"); err != nil {
		t.Fatalf("degraded stream gone after sweep: %v", err)
	}
}

// TestChaosFaultAtEveryOp is the fault-injection property sweep: a
// discovery run counts every mutating disk operation a scripted ingest
// performs, then the same script runs once per operation index with a
// sticky fault (ENOSPC or EIO, every third run with short writes) armed
// exactly there. Whatever the fault point:
//
//   - every push succeeds (durability failures degrade, never reject);
//   - the on-disk log never holds a torn record anywhere but the final
//     tail (reading it back mid-degradation must not error);
//   - the events delivered are bit-identical to a never-faulted stream;
//   - after the disk heals, the stream heals by checkpoint, survives a
//     graceful restart, and continues bit-identically; and
//   - a crash while degraded recovers clean — shortened history (the
//     advertised degraded window), never corrupt history.
func TestChaosFaultAtEveryOp(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is long")
	}
	t.Run("nofsync", func(t *testing.T) { chaosSweep(t, false) })
	t.Run("fsync", func(t *testing.T) { chaosSweep(t, true) })
}

func chaosSweep(t *testing.T, fsync bool) {
	cfg := testStreamConfig()
	full := sineSeries(1100, 40, 31, 250, 700, 1000)
	const cut1, cut2 = 600, 900 // fault phase | heal phase | post-restart phase
	const batch = 40
	const snapEvery = 150
	refAll := directEvents(t, cfg, full, false)
	refPhase1 := directEvents(t, cfg, full[:cut1], false)

	newManager := func(dir string, fsys vfs.FS, clk *fakeClock) (*Manager, error) {
		return New(Config{
			Stream:        cfg,
			DataDir:       dir,
			SnapshotEvery: snapEvery,
			Fsync:         fsync,
			FS:            fsys,
			Now:           clk.Now,
		})
	}

	// Discovery: count the operations a fault-free run performs, so the
	// sweep covers every one of them.
	discover := vfs.NewInject(nil)
	{
		clk := &fakeClock{}
		m, err := newManager(t.TempDir(), discover, clk)
		if err != nil {
			t.Fatal(err)
		}
		c := attachCollector(m)
		pushChunks(t, m, "s", full[:cut1], batch)
		m.Close()
		c.stop()
	}
	opsTotal := discover.Ops()
	if opsTotal < 20 {
		t.Fatalf("discovery counted only %d mutating ops; the script no longer exercises the log", opsTotal)
	}
	t.Logf("sweeping %d fault points (fsync=%v)", opsTotal, fsync)

	for i := int64(0); i < opsTotal; i++ {
		faultErr := error(syscall.ENOSPC)
		if i%2 == 1 {
			faultErr = syscall.EIO
		}
		dir := t.TempDir()
		inj := vfs.NewInject(nil)
		inj.ShortWrites(i%3 == 0)
		inj.FailAt(i, faultErr)
		clk := &fakeClock{}
		m, err := newManager(dir, inj, clk)
		if err != nil {
			// The fault hit manager construction itself (the data
			// directory's mkdir); failing loudly there is correct.
			continue
		}
		c := attachCollector(m)

		// Phase 1: ingest with the fault armed. Every push must succeed.
		for off := 0; off < cut1; off += batch {
			n, err := m.PushBatchN("s", full[off:off+batch])
			if err != nil || n != batch {
				t.Fatalf("op %d: push at %d = (%d, %v), want (%d, nil)", i, off, n, err, batch)
			}
		}

		// No torn middle: the persisted log reads back clean even while
		// the stream is degraded mid-fault.
		if _, err := m.store.Read("s"); err != nil {
			t.Fatalf("op %d: reading the store while degraded: %v", i, err)
		}

		if i%3 == 2 {
			// Crash-while-degraded: abandon the manager, heal the disk,
			// recover fresh. The degraded suffix is lost by design; the
			// prefix must recover without error.
			inj.Heal()
			evs := c.stop()
			if got := anomaliesOf(evs); !eventsEqual(got, refPhase1) {
				t.Fatalf("op %d: phase-1 events diverged: got %d, want %d", i, len(got), len(refPhase1))
			}
			clk2 := &fakeClock{}
			m2, err := newManager(dir, vfs.NewInject(nil), clk2)
			if err != nil {
				t.Fatalf("op %d: recovery after crash-while-degraded: %v", i, err)
			}
			if fails := m2.RecoveryFailures(); len(fails) != 0 {
				t.Fatalf("op %d: recovery failures after crash: %+v", i, fails)
			}
			st, err := m2.StreamStats("s")
			if err != nil || st.Points > cut1 {
				t.Fatalf("op %d: recovered stats = (%+v, %v)", i, st, err)
			}
			m2.Close()
			continue
		}

		// Phase 2: the disk heals, the backoff elapses, and ingest
		// continues; the stream must heal by checkpoint along the way.
		inj.Heal()
		clk.Advance(2 * time.Minute)
		for off := cut1; off < cut2; off += batch {
			if n, err := m.PushBatchN("s", full[off:off+batch]); err != nil || n != batch {
				t.Fatalf("op %d: post-heal push at %d = (%d, %v)", i, off, n, err)
			}
		}
		st, err := m.StreamStats("s")
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if st.Degraded {
			t.Fatalf("op %d: stream still degraded after heal + backoff (fault %q)", i, st.Fault)
		}
		m.Close() // graceful: the final checkpoint covers everything
		evs1 := c.stop()
		if health := healthOf(evs1); len(health) != 0 {
			if health[0].Health != HealthDegraded {
				t.Fatalf("op %d: first health event %+v, want degraded", i, health[0])
			}
			if last := health[len(health)-1]; last.Health != HealthHealed {
				t.Fatalf("op %d: last health event %+v, want healed", i, last)
			}
		}

		// Phase 3: healed logs replay clean — a fresh process continues
		// the stream bit-identically.
		clk2 := &fakeClock{}
		m2, err := newManager(dir, vfs.NewInject(nil), clk2)
		if err != nil {
			t.Fatalf("op %d: restart after healed shutdown: %v", i, err)
		}
		if fails := m2.RecoveryFailures(); len(fails) != 0 {
			t.Fatalf("op %d: recovery failures after healed shutdown: %+v", i, fails)
		}
		c2 := attachCollector(m2)
		for off := cut2; off < len(full); off += batch {
			if n, err := m2.PushBatchN("s", full[off:off+batch]); err != nil || n != batch {
				t.Fatalf("op %d: post-restart push at %d = (%d, %v)", i, off, n, err)
			}
		}
		m2.Close()
		got := append(anomaliesOf(evs1), anomaliesOf(c2.stop())...)
		if !eventsEqual(got, refAll) {
			t.Fatalf("op %d: events across fault+heal+restart diverged: got %d, want %d", i, len(got), len(refAll))
		}
	}
}
