package manager

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"egi/internal/stream"
)

// TestManagerBatchBitIdenticalToPush is the manager layer of the
// batch==per-point property: two durable managers fed the same series —
// one a point at a time, one in random-size batches — must agree
// bit-for-bit on consumed counts, error strings, delivered events, stats
// counters, WAL coordinates (snapshot total and logged raw inputs,
// compared as float bits so NaN payloads count), and checkpoint snapshot
// bytes, under every non-finite policy.
func TestManagerBatchBitIdenticalToPush(t *testing.T) {
	for _, policy := range []stream.NonFinitePolicy{stream.NonFiniteReject, stream.NonFiniteClamp, stream.NonFiniteDrop} {
		t.Run(fmt.Sprintf("policy=%d", policy), func(t *testing.T) {
			rng := rand.New(rand.NewSource(77 + int64(policy)))
			clk := &fakeClock{}
			mk := func(dir string) *Manager {
				cfg := testStreamConfig()
				cfg.NonFinite = policy
				m, err := New(Config{Stream: cfg, DataDir: dir, Now: clk.Now})
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			mA := mk(t.TempDir()) // per-point reference
			mB := mk(t.TempDir()) // batched
			defer mA.Close()
			defer mB.Close()

			chA, cancelA := mA.Subscribe("", 4096)
			chB, cancelB := mB.Subscribe("", 4096)
			defer cancelA()
			defer cancelB()
			gotA, doneA := collect(chA)
			gotB, doneB := collect(chB)

			const id = "s"
			series := sineSeries(1600, 40, 5, 600, 1200)
			for i := range series {
				if rng.Float64() < 0.03 {
					series[i] = math.NaN()
				}
			}

			for off := 0; off < len(series); {
				n := 1 + rng.Intn(300)
				if off+n > len(series) {
					n = len(series) - off
				}
				batch := series[off : off+n]
				na, errA := 0, error(nil)
				for i, x := range batch {
					if errA = mA.Push(id, x); errA != nil {
						break
					}
					na = i + 1
				}
				nb, errB := mB.PushBatchN(id, batch)
				if na != nb {
					t.Fatalf("batch at %d: consumed %d per-point vs %d batched", off, na, nb)
				}
				if (errA == nil) != (errB == nil) || (errA != nil && errA.Error() != errB.Error()) {
					t.Fatalf("batch at %d: per-point err %v vs batched err %v", off, errA, errB)
				}
				if errA != nil {
					off += na + 1 // skip the rejected point, resend the rest
				} else {
					off += n
				}
			}

			sA, err := mA.StreamStats(id)
			if err != nil {
				t.Fatal(err)
			}
			sB, err := mB.StreamStats(id)
			if err != nil {
				t.Fatal(err)
			}
			// MemoryBytes is deliberately not compared: the batched
			// detector honestly accounts the scratch buffer its fast path
			// allocates (bounded by one run segment), which the per-point
			// path never needs. Detector STATE stays identical — the
			// snapshot byte comparison below proves that.
			if sA.Points != sB.Points || sA.Events != sB.Events {
				t.Fatalf("stats diverge: per-point %+v vs batched %+v", sA, sB)
			}

			// WAL coordinates: record boundaries differ by design (one
			// record per call), but the logged raw-input sequence and the
			// snapshot coordinate must be identical.
			recA, err := mA.store.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			recB, err := mB.store.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if recA.SnapTotal != recB.SnapTotal || len(recA.Tail) != len(recB.Tail) {
				t.Fatalf("WAL coordinates diverge: snap %d tail %d vs snap %d tail %d",
					recA.SnapTotal, len(recA.Tail), recB.SnapTotal, len(recB.Tail))
			}
			for i := range recA.Tail {
				if math.Float64bits(recA.Tail[i]) != math.Float64bits(recB.Tail[i]) {
					t.Fatalf("WAL tail diverges at coordinate %d: %v vs %v", recA.SnapTotal+i, recA.Tail[i], recB.Tail[i])
				}
			}

			// Checkpoint both and compare the persisted snapshots byte for
			// byte (the wrapper holds the events count and creation time,
			// both pinned by the shared fake clock; the detector payload is
			// pinned by the stream-layer bit-identity).
			if err := mA.SnapshotStream(id); err != nil {
				t.Fatal(err)
			}
			if err := mB.SnapshotStream(id); err != nil {
				t.Fatal(err)
			}
			recA, _ = mA.store.Read(id)
			recB, _ = mB.store.Read(id)
			if recA.SnapTotal != recB.SnapTotal || len(recA.Snapshot) != len(recB.Snapshot) {
				t.Fatalf("checkpoints diverge: %d/%dB vs %d/%dB", recA.SnapTotal, len(recA.Snapshot), recB.SnapTotal, len(recB.Snapshot))
			}
			for i := range recA.Snapshot {
				if recA.Snapshot[i] != recB.Snapshot[i] {
					t.Fatalf("checkpoint snapshots differ at byte %d", i)
				}
			}

			mA.Close()
			mB.Close()
			<-doneA
			<-doneB
			if !eventsEqual(gotA[id], gotB[id]) {
				t.Fatalf("delivered events diverge: %d per-point vs %d batched", len(gotA[id]), len(gotB[id]))
			}
			if len(gotA[id]) == 0 {
				t.Fatal("fixture emitted no events; the comparison proved nothing")
			}
		})
	}
}

// shardmates returns n distinct stream ids that all hash to the shard of
// anchor — the worst case for shard contention.
func shardmates(anchor string, n int) []string {
	target := fnv32a(anchor) % shardCount
	ids := make([]string, 0, n)
	for i := 0; len(ids) < n; i++ {
		id := fmt.Sprintf("hot-%d", i)
		if fnv32a(id)%shardCount == target {
			ids = append(ids, id)
		}
	}
	return ids
}

// TestShardHammer drives GOMAXPROCS goroutines at streams that all live
// on ONE shard — maximum contention on a single shard lock — interleaved
// with continuous Stats/StreamStats/Len readers, then checks the
// accounting is exactly consistent. Run under -race this exercises the
// shard lookup, insert, and rollup paths with no global lock.
func TestShardHammer(t *testing.T) {
	m, err := New(Config{Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		procs = 4
	}
	ids := shardmates("hot-0", 8)
	series := sineSeries(256, 40, 9)

	var pushers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < procs; g++ {
		pushers.Add(1)
		go func(g int) {
			defer pushers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 60; i++ {
				id := ids[rng.Intn(len(ids))]
				off := rng.Intn(len(series) - 64)
				if _, err := m.PushBatchN(id, series[off:off+64]); err != nil {
					t.Errorf("push %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := m.Stats()
			if len(s.Streams) > len(ids) || m.Len() > len(ids) {
				t.Errorf("phantom streams: %d stats, %d len", len(s.Streams), m.Len())
				return
			}
			m.StreamStats(ids[0])
			m.TotalBytes()
		}
	}()
	pushers.Wait()
	close(stop)
	readers.Wait()

	if got := m.Len(); got != len(ids) {
		t.Fatalf("Len = %d, want %d", got, len(ids))
	}
	var sum int64
	s := m.Stats()
	for _, st := range s.Streams {
		sum += st.MemoryBytes
	}
	if sum != m.TotalBytes() {
		t.Fatalf("accounting drift: per-stream sum %d vs rolled-up %d", sum, m.TotalBytes())
	}
}

// TestStatsDoNotBlockIngest is the regression test for the global-lock
// hot path: with a structural operation in flight (createMu held — the
// lock evictions and creations serialize on), pushes to existing streams
// and stats reads must still complete, because neither takes the global
// lock. Before the shard refactor every push lookup went through one
// manager mutex and this deadline was missed.
func TestStatsDoNotBlockIngest(t *testing.T) {
	m, err := New(Config{Stream: testStreamConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const id = "live"
	if err := m.Open(id); err != nil {
		t.Fatal(err)
	}

	m.createMu.Lock()
	defer m.createMu.Unlock()

	done := make(chan error, 2)
	go func() { done <- m.Push(id, 0.5) }()
	go func() {
		if s := m.Stats(); len(s.Streams) != 1 {
			done <- fmt.Errorf("stats saw %d streams, want 1", len(s.Streams))
			return
		}
		_, err := m.StreamStats(id)
		done <- err
	}()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("push or stats blocked behind the structural lock")
		}
	}
}
