package manager

// This file is the manager's durability wiring. With Config.DataDir set,
// every managed stream is backed by an internal/wal log: accepted points
// are write-ahead logged (batched, one record per push), a snapshot
// checkpoint is taken every SnapshotEvery accepted points, and eviction
// hibernates a stream — checkpoint, close the log, release memory —
// instead of flushing it, so the stream resumes exactly where it left off
// on its next push or at the next process start. New recovers every
// persisted stream by restoring its snapshot and re-pushing the logged
// tail; the detector's bit-identical snapshot/restore contract makes the
// recovered stream indistinguishable from one that never stopped.
// Explicitly closing a stream (CloseStream) remains terminal: it flushes
// the final events and deletes the persisted state.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"egi/internal/stream"
)

// metaVersion versions the manager's wrapper around detector snapshots:
// the accounting that must survive alongside the detector state.
const metaVersion = 1

// wrapSnapshot prefixes a detector snapshot with the entry's durable
// accounting (events count, creation time). Callers hold e.mu.
func (e *entry) wrapSnapshot(det []byte) []byte {
	buf := make([]byte, 0, len(det)+24)
	buf = binary.AppendUvarint(buf, metaVersion)
	buf = binary.AppendUvarint(buf, uint64(e.events.Load()))
	buf = binary.AppendVarint(buf, e.created.UnixNano())
	return append(buf, det...)
}

// unwrapSnapshot splits a wrapped payload into accounting and the
// detector snapshot.
func unwrapSnapshot(payload []byte) (events int64, createdNano int64, det []byte, err error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 || v != metaVersion {
		return 0, 0, nil, fmt.Errorf("manager: unsupported snapshot meta version")
	}
	payload = payload[n:]
	ev, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, 0, nil, errors.New("manager: truncated snapshot meta")
	}
	payload = payload[n:]
	created, n := binary.Varint(payload)
	if n <= 0 {
		return 0, 0, nil, errors.New("manager: truncated snapshot meta")
	}
	return int64(ev), created, payload[n:], nil
}

// openEntry constructs the entry for id. Without a store this is a fresh
// detector; with one, it opens the stream's log and resumes from whatever
// state is persisted — snapshot restore plus tail replay. Events confirmed
// during tail replay land in the entry's pending queue (at-least-once
// across a crash: a point acked but confirmed just before the crash may
// be re-announced after it).
func (m *Manager) openEntry(id string) (*entry, error) {
	e := &entry{id: id, created: m.now()}
	cfg := m.cfg.Stream
	cfg.OnEvent = func(ev stream.Event) {
		// Runs synchronously inside d.Push/Flush, which only happen
		// under e.mu — appending here is race-free.
		e.pending = append(e.pending, Event{Stream: id, Anomaly: ev})
		e.events.Add(1)
	}

	if m.store == nil {
		d, err := stream.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("manager: creating stream %q: %w", id, err)
		}
		e.d = d
		e.lastPush.Store(e.created.UnixNano())
		return e, nil
	}

	log, rec, err := m.store.OpenStream(id)
	if err != nil {
		return nil, fmt.Errorf("manager: opening log for stream %q: %w", id, err)
	}
	var d *stream.Detector
	if rec.Snapshot != nil {
		events, createdNano, det, err := unwrapSnapshot(rec.Snapshot)
		if err == nil {
			d, err = stream.Restore(cfg, det)
		}
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("manager: restoring stream %q: %w", id, err)
		}
		e.events.Store(events)
		e.created = time.Unix(0, createdNano)
	} else {
		d, err = stream.New(cfg)
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("manager: creating stream %q: %w", id, err)
		}
	}
	e.d = d
	e.log = log
	if err := d.PushBatch(rec.Tail); err != nil {
		// The logged tail was accepted once; failing to re-accept it means
		// the store and configuration disagree. Fail loud.
		log.Close()
		return nil, fmt.Errorf("manager: replaying %d logged points for stream %q: %w", len(rec.Tail), id, err)
	}
	e.walPos = rec.SnapTotal + len(rec.Tail)
	e.sinceSnap = len(rec.Tail)
	e.points.Store(int64(d.Total()))
	e.lastPush.Store(m.now().UnixNano())
	return e, nil
}

// recoverAll resumes every persisted stream at startup, in id order. It
// stops quietly at the MaxStreams/MaxBytes limits — the remainder stays
// hibernated on disk and resumes lazily on first push — but fails loud on
// corruption or configuration mismatch.
func (m *Manager) recoverAll() error {
	ids, err := m.store.List()
	if err != nil {
		return fmt.Errorf("manager: listing persisted streams: %w", err)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e, evicted, err := m.get(id, true)
		m.retire(evicted)
		switch {
		case errors.Is(err, ErrTooManyStreams) || errors.Is(err, ErrOverBudget):
			return nil
		case err != nil:
			return err
		}
		// Replayed events have no subscribers yet; clear them rather than
		// holding them for an arbitrary first subscriber.
		m.drain(e)
	}
	return nil
}

// appendWALLocked logs the consumed prefix of a push at the entry's log
// coordinate and advances the snapshot cadence, checkpointing when due.
// The coordinate counts consumed input points, which under the Clamp/Drop
// non-finite policies runs ahead of the detector's Total — the log stores
// raw inputs and replay re-applies the policy. Callers hold e.mu; no-op
// for non-durable entries.
func (m *Manager) appendWALLocked(e *entry, pts []float64) error {
	if e.log == nil || len(pts) == 0 {
		return nil
	}
	if err := e.log.Append(e.walPos, pts); err != nil {
		return fmt.Errorf("manager: logging %d points for stream %q: %w", len(pts), e.id, err)
	}
	e.walPos += len(pts)
	e.sinceSnap += len(pts)
	if e.sinceSnap >= m.snapEvery {
		return m.checkpointLocked(e)
	}
	return nil
}

// checkpointLocked snapshots the entry into its log, superseding the
// logged tail. Callers hold e.mu.
func (m *Manager) checkpointLocked(e *entry) error {
	if err := e.log.Snapshot(e.walPos, e.wrapSnapshot(e.d.Snapshot())); err != nil {
		return fmt.Errorf("manager: checkpointing stream %q: %w", e.id, err)
	}
	e.sinceSnap = 0
	return nil
}

// SnapshotStream forces a checkpoint of the stream now, superseding its
// logged tail. It fails with ErrUnknownStream when the stream is not
// live, and with an error when the manager has no data directory.
func (m *Manager) SnapshotStream(id string) error {
	if m.store == nil {
		return errors.New("manager: no data directory configured")
	}
	e, _, err := m.get(id, false)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("%w: %q (evicted)", ErrUnknownStream, e.id)
	}
	return m.checkpointLocked(e)
}

// hibernate checkpoints a detached durable entry and closes its log,
// leaving the stream resumable from disk. The detector is NOT flushed:
// buffered points stay buffered, exactly as if the process had paused.
// Best-effort on errors — every acked point is already in the WAL, so a
// failed checkpoint only means recovery replays a longer tail.
func (e *entry) hibernate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.log == nil {
		return
	}
	e.log.Snapshot(e.d.Total(), e.wrapSnapshot(e.d.Snapshot()))
	e.log.Close()
	e.log = nil
}

// ReplayStream re-derives a stream's events from its persisted state: it
// restores the last checkpoint into a detached detector, re-pushes the
// logged tail, and calls fn for every event confirmed during that replay
// with the hop (detection run) index that confirmed it. The live stream
// is not disturbed — replay reads the store read-only — and determinism
// makes the output exact: these are precisely the events a crash-restart
// at the last checkpoint would re-announce. Returns the number of tail
// points replayed. fn returning an error aborts the replay.
func (m *Manager) ReplayStream(id string, fn func(hop int, ev stream.Event) error) (int, error) {
	if m.store == nil {
		return 0, errors.New("manager: no data directory configured")
	}
	rec, err := m.store.Read(id)
	if err != nil {
		return 0, fmt.Errorf("manager: reading persisted stream %q: %w", id, err)
	}
	if rec.Snapshot == nil && len(rec.Tail) == 0 {
		return 0, fmt.Errorf("%w: %q has no persisted state", ErrUnknownStream, id)
	}
	var d *stream.Detector
	var fnErr error
	cfg := m.cfg.Stream
	cfg.OnEvent = func(ev stream.Event) {
		if fnErr == nil {
			fnErr = fn(d.Runs(), ev)
		}
	}
	if rec.Snapshot != nil {
		_, _, det, err := unwrapSnapshot(rec.Snapshot)
		if err == nil {
			d, err = stream.Restore(cfg, det)
		}
		if err != nil {
			return 0, fmt.Errorf("manager: restoring snapshot of stream %q: %w", id, err)
		}
	} else {
		if d, err = stream.New(cfg); err != nil {
			return 0, err
		}
	}
	for i, x := range rec.Tail {
		if err := d.Push(x); err != nil {
			return i, fmt.Errorf("manager: replaying stream %q at point %d: %w", id, rec.SnapTotal+i, err)
		}
		if fnErr != nil {
			return i + 1, fnErr
		}
	}
	return len(rec.Tail), nil
}
