package manager

// This file is the manager's durability wiring and its failure policy.
//
// With Config.DataDir set, every managed stream is backed by an
// internal/wal log: accepted points are write-ahead logged (batched, one
// record per push), a snapshot checkpoint is taken every SnapshotEvery
// accepted points, and eviction hibernates a stream — checkpoint, close
// the log, release memory — instead of flushing it, so the stream resumes
// exactly where it left off on its next push or at the next process
// start. New recovers every persisted stream by restoring its snapshot
// and re-pushing the logged tail; the detector's bit-identical
// snapshot/restore contract makes the recovered stream indistinguishable
// from one that never stopped. Explicitly closing a stream (CloseStream)
// remains terminal: it flushes the final events and deletes the persisted
// state.
//
// Failure policy — the serving tier must degrade, not die:
//
//   - A WAL or snapshot error (ENOSPC, EIO, failed fsync, failed rename)
//     puts the stream in DEGRADED mode: it keeps detecting in memory and
//     keeps accepting pushes, but suspends logging. The WAL itself has
//     already rewound any torn record, so the on-disk prefix stays
//     consistent; it is merely frozen in the past. Each push retries
//     durability under capped exponential backoff by writing a fresh
//     snapshot checkpoint — the healing operation — which supersedes the
//     frozen log the moment a write succeeds. While degraded, a crash
//     loses the points accepted since the last durable record; clients
//     see the degraded flag in stats and health endpoints, and a health
//     event is published to subscribers on every transition.
//
//   - A PANIC inside the detection engine (push, flush, or recovery
//     replay) QUARANTINES the stream: the panic is recovered at the
//     manager boundary, the entry stays in the table as a tombstone that
//     rejects pushes with ErrStreamQuarantined, its memory is released
//     from the budget, and its on-disk state is left untouched for
//     offline inspection (CloseStream deletes it). One poisoned stream
//     never takes down the process or its shard.
//
//   - A stream whose persisted state cannot even be opened at startup is
//     skipped and quarantined — recovery reports it and moves on instead
//     of aborting the whole manager.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"egi/internal/stream"
)

// metaVersion versions the manager's wrapper around detector snapshots:
// the accounting that must survive alongside the detector state. Version
// 2 added the stream's effective settings (per-stream overrides), so a
// stream restores under exactly the configuration it was created with;
// version-1 payloads are still readable and imply template settings.
const metaVersion = 2

// Healing retry backoff bounds for degraded streams: the first retry
// comes healBackoffMin after the fault, doubling per failed attempt up to
// healBackoffMax.
const (
	healBackoffMin = 100 * time.Millisecond
	healBackoffMax = 30 * time.Second
)

// errReplayPanic marks an openEntry failure caused by a panic while
// restoring or replaying persisted state, so create can quarantine the
// stream instead of letting every push retry the poisoned replay.
var errReplayPanic = errors.New("manager: panic during recovery replay")

// Test seams, called (when non-nil) under the entry lock on the push and
// recovery-replay paths; fault-injection tests use them to drive panics
// through the quarantine boundaries.
var (
	testHookPush   func(id string)
	testHookReplay func(id string)
)

// RecoveryFailure records one persisted stream that startup recovery
// could not resume and therefore quarantined.
type RecoveryFailure struct {
	// Stream is the id of the stream that failed to recover.
	Stream string
	// Err is why.
	Err error
}

// RecoveryFailures returns the streams skipped and quarantined by startup
// recovery, in id order. Empty on a healthy start.
func (m *Manager) RecoveryFailures() []RecoveryFailure {
	out := make([]RecoveryFailure, len(m.recoveryFailures))
	copy(out, m.recoveryFailures)
	return out
}

// snapMeta is the manager-level accounting wrapped around a detector
// snapshot: what must survive a restart or a migration besides the
// detector state itself.
type snapMeta struct {
	events      int64
	createdNano int64
	// overrides holds the stream's effective settings. Zero in payloads
	// written before metaVersion 2, meaning "the manager's template".
	overrides Overrides
}

// wrapSnapshot prefixes a detector snapshot with the entry's durable
// accounting (events count, creation time, effective settings). Callers
// hold e.mu.
func (e *entry) wrapSnapshot(det []byte) []byte {
	buf := make([]byte, 0, len(det)+64)
	buf = binary.AppendUvarint(buf, metaVersion)
	buf = binary.AppendUvarint(buf, uint64(e.events.Load()))
	buf = binary.AppendVarint(buf, e.created.UnixNano())
	ov := e.overrides
	buf = binary.AppendUvarint(buf, uint64(ov.Window))
	buf = binary.AppendUvarint(buf, uint64(ov.BufLen))
	buf = binary.AppendUvarint(buf, uint64(ov.Hop))
	buf = binary.AppendUvarint(buf, math.Float64bits(ov.Threshold))
	buf = binary.AppendUvarint(buf, uint64(ov.RebaseEvery))
	return append(buf, det...)
}

// unwrapSnapshot splits a wrapped payload into accounting and the
// detector snapshot. Both current (v2) and original (v1, no settings)
// payloads are accepted.
func unwrapSnapshot(payload []byte) (meta snapMeta, det []byte, err error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 || v < 1 || v > metaVersion {
		return snapMeta{}, nil, fmt.Errorf("manager: unsupported snapshot meta version")
	}
	payload = payload[n:]
	uvarint := func() (uint64, bool) {
		x, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, false
		}
		payload = payload[n:]
		return x, true
	}
	ev, ok := uvarint()
	if !ok {
		return snapMeta{}, nil, errors.New("manager: truncated snapshot meta")
	}
	created, n := binary.Varint(payload)
	if n <= 0 {
		return snapMeta{}, nil, errors.New("manager: truncated snapshot meta")
	}
	payload = payload[n:]
	meta = snapMeta{events: int64(ev), createdNano: created}
	if v >= 2 {
		w, ok1 := uvarint()
		bl, ok2 := uvarint()
		hop, ok3 := uvarint()
		thr, ok4 := uvarint()
		re, ok5 := uvarint()
		if !(ok1 && ok2 && ok3 && ok4 && ok5) {
			return snapMeta{}, nil, errors.New("manager: truncated snapshot meta")
		}
		meta.overrides = Overrides{
			Window:      int(w),
			BufLen:      int(bl),
			Hop:         int(hop),
			Threshold:   math.Float64frombits(thr),
			RebaseEvery: int(re),
		}
	}
	return meta, payload, nil
}

// openEntry constructs the entry for id. Without a store this is a fresh
// detector; with one, it opens the stream's log and resumes from whatever
// state is persisted — snapshot restore plus tail replay. Events confirmed
// during tail replay land in the entry's pending queue (at-least-once
// across a crash: a point acked but confirmed just before the crash may
// be re-announced after it).
//
// ov is the caller's requested per-stream settings. For a genuinely new
// stream they become the entry's pinned effective settings; for a stream
// resuming from disk the persisted settings win, and a non-zero ov that
// disagrees with them is an ErrStreamConfig conflict. A new durable
// stream created with non-template settings is checkpointed immediately,
// so the pin exists on disk before any WAL-only state could otherwise be
// replayed under the wrong configuration.
//
// If the log cannot be opened for writing but the persisted state is
// still readable (or there is none), the stream comes up DEGRADED: fully
// functional in memory, retrying durability with backoff. Only a stream
// whose state can neither be opened nor read fails here — resuming it
// fresh would silently fork its history.
func (m *Manager) openEntry(id string, ov Overrides) (*entry, error) {
	want, err := m.effectiveOverrides(ov)
	if err != nil {
		return nil, err
	}
	e := &entry{id: id, created: m.now()}
	cfg := m.cfg.Stream
	cfg.OnEvent = func(ev stream.Event) {
		// Runs synchronously inside d.Push/Flush, which only happen
		// under e.mu — appending here is race-free.
		e.pending = append(e.pending, Event{Stream: id, Anomaly: ev})
		e.events.Add(1)
	}

	if m.store == nil {
		e.overrides = want
		want.applyEffective(&cfg)
		d, err := stream.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("manager: creating stream %q: %w", id, err)
		}
		e.d = d
		e.lastPush.Store(e.created.UnixNano())
		return e, nil
	}

	log, rec, err := m.store.OpenStream(id)
	var openFault error
	if err != nil {
		// The write handle is unavailable. Resume from a read-only scan
		// and run degraded; refuse only if the state cannot be read at
		// all.
		rec2, rerr := m.store.Read(id)
		if rerr != nil {
			return nil, fmt.Errorf("manager: opening log for stream %q: %w (read-only recovery also failed: %v)", id, err, rerr)
		}
		rec, log, openFault = rec2, nil, err
	}
	closeLog := func() {
		if log != nil {
			// Close the handle we cannot use; its error is secondary to
			// the failure being reported.
			_ = log.Close()
		}
	}
	exists := rec.Snapshot != nil || len(rec.Tail) > 0
	var meta snapMeta
	var det []byte
	if rec.Snapshot != nil {
		if meta, det, err = unwrapSnapshot(rec.Snapshot); err != nil {
			closeLog()
			return nil, fmt.Errorf("manager: restoring stream %q: %w", id, err)
		}
	}
	// Resolve the settings this stream actually runs with: persisted pin
	// first, template for pre-pin (v1 or WAL-only) state, the request
	// only for a genuinely new stream.
	eff := meta.overrides
	if eff.IsZero() {
		if exists {
			eff = m.templateOv
		} else {
			eff = want
		}
	}
	if exists && !ov.IsZero() && want != eff {
		closeLog()
		return nil, overridesConflict(id, want, eff)
	}
	e.overrides = eff
	eff.applyEffective(&cfg)
	if err := m.resumeEntry(e, cfg, rec.Snapshot != nil, meta, det, rec.Tail); err != nil {
		closeLog()
		return nil, err
	}
	e.log = log
	e.walPos = rec.SnapTotal + len(rec.Tail)
	e.sinceSnap = len(rec.Tail)
	e.points.Store(int64(e.d.Total()))
	e.lastPush.Store(m.now().UnixNano())
	if openFault != nil {
		m.degradeLocked(e, fmt.Errorf("manager: opening log for stream %q: %w", id, openFault))
	} else if !exists && eff != m.templateOv {
		// Pin non-template settings on disk at create: a WAL-only
		// directory carries no configuration, so the first durable bytes
		// must be a checkpoint. Failure degrades rather than fails — the
		// documented degraded window applies.
		if err := m.checkpointLocked(e); err != nil {
			m.degradeLocked(e, err)
		}
	}
	return e, nil
}

// resumeEntry restores the snapshot (or creates a fresh detector) and
// replays the logged tail into e.d. cfg already carries the stream's
// effective settings. A panic anywhere inside the engine — poisoned
// snapshot bytes, a replay that trips an invariant — is recovered here,
// at the manager's recovery boundary, and reported as an errReplayPanic
// so the caller can quarantine the stream.
func (m *Manager) resumeEntry(e *entry, cfg stream.Config, hasSnap bool, meta snapMeta, det []byte, tail []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: stream %q: %v", errReplayPanic, e.id, r)
		}
	}()
	if hasSnap {
		d, err := stream.Restore(cfg, det)
		if err != nil {
			return fmt.Errorf("manager: restoring stream %q: %w", e.id, err)
		}
		e.d = d
		e.events.Store(meta.events)
		e.created = time.Unix(0, meta.createdNano)
	} else {
		d, err := stream.New(cfg)
		if err != nil {
			return fmt.Errorf("manager: creating stream %q: %w", e.id, err)
		}
		e.d = d
	}
	if testHookReplay != nil {
		testHookReplay(e.id)
	}
	if err := e.d.PushBatch(tail); err != nil {
		// The logged tail was accepted once; failing to re-accept it means
		// the store and configuration disagree. Fail loud.
		return fmt.Errorf("manager: replaying %d logged points for stream %q: %w", len(tail), e.id, err)
	}
	return nil
}

// recoverAll resumes every persisted stream at startup, in id order. It
// stops quietly at the MaxStreams/MaxBytes limits — the remainder stays
// hibernated on disk and resumes lazily on first push — and SKIPS a
// stream whose state cannot be resumed (unreadable directory, corrupt
// snapshot, panicking replay): the stream is quarantined, the failure is
// recorded in RecoveryFailures, and startup continues. One broken stream
// directory must not take down a server holding thousands of good ones.
func (m *Manager) recoverAll() error {
	ids, err := m.store.List()
	if err != nil {
		return fmt.Errorf("manager: listing persisted streams: %w", err)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e, evicted, err := m.get(id, true, Overrides{})
		m.retire(evicted)
		switch {
		case errors.Is(err, ErrTooManyStreams) || errors.Is(err, ErrOverBudget):
			return nil
		case err != nil:
			m.recoveryFailures = append(m.recoveryFailures, RecoveryFailure{Stream: id, Err: err})
			m.quarantineID(id, err)
			continue
		}
		// Replayed events have no subscribers yet; clear them rather than
		// holding them for an arbitrary first subscriber.
		m.drain(e)
	}
	return nil
}

// quarantineID inserts a quarantined tombstone entry for a stream that
// could not be resumed, so pushes to it are rejected with
// ErrStreamQuarantined instead of re-running the failing recovery (and
// possibly mangling its on-disk state further). CloseStream deletes the
// tombstone and the persisted state; a process restart retries recovery.
func (m *Manager) quarantineID(id string, cause error) {
	e := &entry{id: id, created: m.now()}
	e.quarantined.Store(true)
	e.faultErr = cause
	e.fault.Store(cause.Error())
	sh := m.shardFor(id)
	m.createMu.Lock()
	sh.mu.Lock()
	_, exists := sh.streams[id]
	if !exists {
		sh.streams[id] = e
	}
	sh.mu.Unlock()
	if !exists {
		m.count.Add(1)
		m.quarantinedCount.Add(1)
	}
	m.createMu.Unlock()
}

// quarantineLocked converts a live entry into a quarantined tombstone
// after a panic escaped the detection engine: further pushes are rejected
// with ErrStreamQuarantined, the (possibly corrupt) detector and its
// memory are released from the budget, the log handle is closed, and the
// on-disk state is preserved for inspection. Callers hold e.mu.
func (m *Manager) quarantineLocked(e *entry, cause error) {
	if e.quarantined.Load() {
		return
	}
	e.quarantined.Store(true)
	if !e.closed {
		m.quarantinedCount.Add(1)
	}
	if e.degraded.Load() {
		e.degraded.Store(false)
		if !e.closed {
			m.degradedCount.Add(-1)
		}
	}
	e.faultErr = cause
	e.fault.Store(cause.Error())
	e.d = nil // state after a panic is unknown; never touch it again
	if e.log != nil {
		// The handle is closed on a best-effort basis: the stream's
		// durable prefix is already consistent on disk.
		_ = e.log.Close()
		e.log = nil
	}
	m.totalBytes.Add(-e.footprint.Swap(0))
	e.pending = append(e.pending, Event{Stream: e.id, Health: HealthQuarantined, Cause: cause.Error()})
}

// quarantineErrLocked is the error a quarantined entry rejects operations
// with. Callers hold e.mu.
func (e *entry) quarantineErrLocked() error {
	return fmt.Errorf("%w: %q: %v", ErrStreamQuarantined, e.id, e.faultErr)
}

// degradeLocked puts the entry in degraded mode (or refreshes the fault
// while already degraded): detection continues in memory, durability is
// suspended, and healing retries start after healBackoffMin, doubling up
// to healBackoffMax. The first transition publishes a health event.
// Callers hold e.mu (or own the entry exclusively during construction).
func (m *Manager) degradeLocked(e *entry, cause error) {
	e.faultErr = cause
	e.fault.Store(cause.Error())
	if e.degraded.Load() {
		return
	}
	e.degraded.Store(true)
	m.degradedCount.Add(1)
	e.backoff = healBackoffMin
	e.retryAt = m.now().Add(e.backoff)
	e.pending = append(e.pending, Event{Stream: e.id, Health: HealthDegraded, Cause: cause.Error()})
}

// healedLocked clears degraded mode after a successful checkpoint and
// publishes the healing health event. Callers hold e.mu.
func (m *Manager) healedLocked(e *entry) {
	if !e.degraded.Load() {
		return
	}
	e.degraded.Store(false)
	m.degradedCount.Add(-1)
	e.faultErr = nil
	e.fault.Store("")
	e.backoff = 0
	e.pending = append(e.pending, Event{Stream: e.id, Health: HealthHealed})
}

// maybeHealLocked retries durability for a degraded entry once its
// backoff has elapsed. Callers hold e.mu.
func (m *Manager) maybeHealLocked(e *entry) {
	if !e.degraded.Load() || m.now().Before(e.retryAt) {
		return
	}
	if err := m.checkpointLocked(e); err != nil {
		e.backoff *= 2
		if e.backoff > healBackoffMax {
			e.backoff = healBackoffMax
		}
		e.retryAt = m.now().Add(e.backoff)
		e.faultErr = err
		e.fault.Store(err.Error())
		return
	}
	m.healedLocked(e)
}

// appendWALLocked advances the entry's log coordinate past the consumed
// prefix of a push and, when durability is healthy, logs it. The
// coordinate counts consumed input points, which under the Clamp/Drop
// non-finite policies runs ahead of the detector's Total — the log stores
// raw inputs and replay re-applies the policy. A failed append degrades
// the stream instead of failing the push: the WAL has already rewound the
// torn record, the points stay applied in memory, and the healing
// checkpoint will cover them. While degraded nothing is appended — a
// resumed append after a gap would corrupt the log; only a checkpoint can
// resume durability. The coordinate is advanced even without a store, so
// a non-durable stream still knows how much input it has consumed (its
// export coordinate for migration). Callers hold e.mu.
func (m *Manager) appendWALLocked(e *entry, pts []float64) {
	if len(pts) == 0 {
		return
	}
	pos := e.walPos
	e.walPos += len(pts)
	e.sinceSnap += len(pts)
	if m.store == nil || e.degraded.Load() || e.log == nil {
		return
	}
	if err := e.log.Append(pos, pts); err != nil {
		m.degradeLocked(e, fmt.Errorf("manager: logging %d points for stream %q: %w", len(pts), e.id, err))
		return
	}
	if e.sinceSnap >= m.snapEvery {
		if err := m.checkpointLocked(e); err != nil {
			m.degradeLocked(e, err)
		}
	}
}

// checkpointLocked snapshots the entry into its log at the consumed-input
// coordinate, superseding the logged tail — and, for a degraded entry,
// superseding the frozen log: this is the healing operation. A missing
// log handle (the stream came up degraded without one) is reopened first;
// the recovery state that reopen returns is discarded, because the
// in-memory detector is authoritative and the checkpoint about to be
// written supersedes everything on disk. Callers hold e.mu.
func (m *Manager) checkpointLocked(e *entry) error {
	if e.log == nil {
		log, _, err := m.store.OpenStream(e.id)
		if err != nil {
			return fmt.Errorf("manager: reopening log for stream %q: %w", e.id, err)
		}
		e.log = log
	}
	if err := e.log.Snapshot(e.walPos, e.wrapSnapshot(e.d.Snapshot())); err != nil {
		return fmt.Errorf("manager: checkpointing stream %q: %w", e.id, err)
	}
	e.sinceSnap = 0
	return nil
}

// SnapshotStream forces a checkpoint of the stream now, superseding its
// logged tail. On a degraded stream a successful forced checkpoint heals
// it immediately, without waiting out the backoff. It fails with
// ErrUnknownStream when the stream is not live, and with an error when
// the manager has no data directory.
func (m *Manager) SnapshotStream(id string) error {
	if m.store == nil {
		return errors.New("manager: no data directory configured")
	}
	e, _, err := m.get(id, false, Overrides{})
	if err != nil {
		return err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q (evicted)", ErrUnknownStream, e.id)
	}
	if e.quarantined.Load() {
		err = e.quarantineErrLocked()
		e.mu.Unlock()
		return err
	}
	err = m.checkpointLocked(e)
	if err == nil {
		m.healedLocked(e)
	} else {
		m.degradeLocked(e, err)
	}
	e.mu.Unlock()
	m.drain(e) // deliver any health transition this forced checkpoint caused
	return err
}

// hibernate checkpoints a detached durable entry and closes its log,
// leaving the stream resumable from disk. The detector is NOT flushed:
// buffered points stay buffered, exactly as if the process had paused.
// Best-effort on errors — every acked point of a healthy stream is
// already in the WAL, so a failed checkpoint only means recovery replays
// a longer tail; a degraded stream loses its unlogged suffix, which is
// exactly the window the degraded flag advertises.
func (m *Manager) hibernate(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quarantined.Load() {
		return
	}
	if e.log == nil && (m.store == nil || !e.degraded.Load()) {
		return
	}
	// One last healing attempt, degraded or not: if the disk has come
	// back, this checkpoint makes the hibernated state complete. Errors
	// are deliberately dropped — there is nothing left to degrade; the
	// durable prefix on disk is consistent regardless.
	_ = m.checkpointLocked(e)
	if e.log != nil {
		_ = e.log.Close() // best-effort: the checkpoint above is what matters
		e.log = nil
	}
}

// ReplayStream re-derives a stream's events from its persisted state: it
// restores the last checkpoint into a detached detector, re-pushes the
// logged tail, and calls fn for every event confirmed during that replay
// with the hop (detection run) index that confirmed it. The live stream
// is not disturbed — replay reads the store read-only — and determinism
// makes the output exact: these are precisely the events a crash-restart
// at the last checkpoint would re-announce. Returns the number of tail
// points replayed. fn returning an error aborts the replay. A panic
// inside the detached replay is recovered and reported as an error; the
// live stream is unaffected.
func (m *Manager) ReplayStream(id string, fn func(hop int, ev stream.Event) error) (n int, err error) {
	if m.store == nil {
		return 0, errors.New("manager: no data directory configured")
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("manager: panic replaying stream %q: %v", id, r)
		}
	}()
	rec, err := m.store.Read(id)
	if err != nil {
		return 0, fmt.Errorf("manager: reading persisted stream %q: %w", id, err)
	}
	if rec.Snapshot == nil && len(rec.Tail) == 0 {
		return 0, fmt.Errorf("%w: %q has no persisted state", ErrUnknownStream, id)
	}
	var d *stream.Detector
	var fnErr error
	cfg := m.cfg.Stream
	cfg.OnEvent = func(ev stream.Event) {
		if fnErr == nil {
			fnErr = fn(d.Runs(), ev)
		}
	}
	if rec.Snapshot != nil {
		meta, det, err := unwrapSnapshot(rec.Snapshot)
		if err == nil {
			// Replay under the stream's pinned settings, not the current
			// template — exactly what startup recovery would use.
			if !meta.overrides.IsZero() {
				meta.overrides.applyEffective(&cfg)
			}
			d, err = stream.Restore(cfg, det)
		}
		if err != nil {
			return 0, fmt.Errorf("manager: restoring snapshot of stream %q: %w", id, err)
		}
	} else {
		if d, err = stream.New(cfg); err != nil {
			return 0, err
		}
	}
	if testHookReplay != nil {
		testHookReplay(id)
	}
	for i, x := range rec.Tail {
		if err := d.Push(x); err != nil {
			return i, fmt.Errorf("manager: replaying stream %q at point %d: %w", id, rec.SnapTotal+i, err)
		}
		if fnErr != nil {
			return i + 1, fnErr
		}
	}
	return len(rec.Tail), nil
}
