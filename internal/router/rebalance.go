package router

// Rebalancing: Resize changes the member count and Drain empties one
// member; both then migrate every stream whose placement changed, one at
// a time, live. The protocol per stream:
//
//  1. quiesce — take the stream's latch exclusively, blocking its pushes
//     and queries (other streams flow untouched);
//  2. export — capture the versioned snapshot + WAL tail on the source,
//     without mutating it;
//  3. import — resume the state on the target; its single atomic
//     checkpoint is the commit point;
//  4. release — discard the source copy, repoint the placement (drop or
//     rewrite the pin), and unlatch: blocked operations resolve the
//     owner afresh and land on the target.
//
// A failure at any step before the commit leaves the stream whole and
// pinned on the source — a fault during migration degrades rebalancing,
// never durability, and acknowledged points are never lost.

import (
	"errors"
	"fmt"
	"sort"

	"egi/internal/manager"
)

// move is one planned stream migration.
type move struct {
	id       string
	from, to *member
}

// Resize grows or shrinks the member set to n members, migrating every
// stream whose rendezvous owner changed — ~1/M of them per member
// added or removed. Growing requires Config.Grow. Shrinking removes the
// highest-indexed members: each is first drained (its streams migrate to
// the survivors), then closed and dropped. Serialized with Drain and
// Close; serving traffic continues throughout.
func (r *Router) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("%w: resize to %d", ErrNoMembers, n)
	}
	r.adminMu.Lock()
	defer r.adminMu.Unlock()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("router: resize on closed router")
	}
	cur := len(r.members)
	if n == cur {
		r.mu.Unlock()
		return nil
	}
	if n > cur {
		if r.grow == nil {
			r.mu.Unlock()
			return ErrNoGrow
		}
		added := make([]*member, 0, n-cur)
		for len(r.members)+len(added) < n {
			m, err := r.grow(r.nextGrow)
			if err != nil {
				r.mu.Unlock()
				return fmt.Errorf("router: growing member %d: %w", r.nextGrow, err)
			}
			if m.Name == "" || m.Host == nil {
				r.mu.Unlock()
				return fmt.Errorf("router: Grow(%d) returned an invalid member", r.nextGrow)
			}
			r.nextGrow++
			added = append(added, &member{name: m.Name, h: m.Host})
		}
		r.members = append(r.members, added...)
	} else {
		live := 0
		for _, m := range r.members {
			if !m.draining {
				live++
			}
		}
		if live-(cur-n) < 1 {
			r.mu.Unlock()
			return fmt.Errorf("%w: resize to %d would drain every live member", ErrNoMembers, n)
		}
		for _, m := range r.members[n:] {
			m.draining = true
		}
	}
	r.version.Add(1)
	r.planMovesLocked() // install pins atomically with the table change
	prior := make([]*member, len(r.members))
	copy(prior, r.members)
	r.mu.Unlock()

	// Wait out operations routed under the old table — an in-flight push
	// can still create a stream on the owner it resolved before the
	// change — then replan to catch whatever they left behind, and
	// migrate everything in one pass.
	for _, m := range prior {
		m.quiesce()
	}
	r.mu.Lock()
	moves := r.planMovesLocked()
	r.mu.Unlock()

	err := r.runMoves(moves)

	if n < cur {
		var errs []error
		if err != nil {
			errs = append(errs, err)
		}
		// Drop the drained members that are now empty; a member still
		// holding streams (a migration failed) stays, draining, so its
		// streams keep serving — the next Resize or Drain retries. Each
		// empty member is removed from the table FIRST and quiesced, so
		// no in-flight call can land on it between the emptiness check
		// and the close.
		r.mu.Lock()
		kept := r.members[:0]
		var closing []*member
		for _, m := range r.members {
			if m.draining && len(m.h.StreamIDs()) == 0 {
				closing = append(closing, m)
				continue
			}
			kept = append(kept, m)
		}
		r.members = kept
		if len(closing) > 0 {
			r.version.Add(1)
		}
		r.mu.Unlock()
		for _, m := range closing {
			m.quiesce()
			if ids := m.h.StreamIDs(); len(ids) != 0 {
				// A straggler landed after the emptiness check: keep the
				// member rather than close acknowledged state away.
				r.mu.Lock()
				r.members = append(r.members, m)
				r.mu.Unlock()
				errs = append(errs, fmt.Errorf("router: member %q not empty after drain (%d streams); kept draining", m.name, len(ids)))
				continue
			}
			if cerr := m.h.Close(); cerr != nil {
				errs = append(errs, fmt.Errorf("router: closing drained member %q: %w", m.name, cerr))
			}
		}
		err = errors.Join(errs...)
	}
	return err
}

// Drain marks the named member draining — it receives no new streams —
// and migrates everything it holds to the remaining members. The member
// stays in the set, empty, until a shrinking Resize removes it. Returns
// the first migration error; partially drained is safe (unmoved streams
// stay pinned and serving on the draining member).
func (r *Router) Drain(name string) error {
	r.adminMu.Lock()
	defer r.adminMu.Unlock()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("router: drain on closed router")
	}
	var target *member
	live := 0
	for _, m := range r.members {
		if !m.draining {
			live++
		}
		if m.name == name {
			target = m
		}
	}
	if target == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	if !target.draining {
		if live <= 1 {
			r.mu.Unlock()
			return fmt.Errorf("%w: draining %q would leave none", ErrNoMembers, name)
		}
		target.draining = true
		r.version.Add(1)
	}
	r.planMovesLocked() // install pins atomically with the table change
	r.mu.Unlock()

	// Wait out calls routed while the member was still eligible — an
	// in-flight push can still create a stream on it — then replan so
	// those streams are moved too.
	target.quiesce()
	r.mu.Lock()
	moves := r.planMovesLocked()
	r.mu.Unlock()

	return r.runMoves(moves)
}

// planMovesLocked computes where every stream lives versus where the
// current table places it, and plans a migration for each mismatch. Each
// to-be-moved stream is pinned to its current holder first, so routing
// keeps landing on the live copy until its move commits. Duplicate
// holders (possible only after a crash between commit and release in a
// previous incarnation) resolve in favor of the rendezvous owner, then
// the first holder. Moves come out sorted by stream id, for
// deterministic progression. Callers hold r.mu.
func (r *Router) planMovesLocked() []move {
	holders := make(map[string]*member)
	for _, m := range r.members {
		for _, id := range m.h.StreamIDs() {
			if prev, dup := holders[id]; dup {
				owner := r.ownerLockedByName(id)
				if m != owner || prev == owner {
					continue // keep prev
				}
			}
			holders[id] = m
		}
	}
	var moves []move
	for id, holder := range holders {
		owner := r.ownerLockedByName(id)
		if owner == nil || owner == holder {
			if _, pinned := r.pins[id]; pinned && owner == holder {
				delete(r.pins, id) // already home; the pin is stale
			}
			continue
		}
		r.pins[id] = holder.name
		moves = append(moves, move{id: id, from: holder, to: owner})
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].id < moves[j].id })
	return moves
}

// ownerLockedByName resolves id's rendezvous owner member, nil when all
// members drain. Callers hold r.mu.
func (r *Router) ownerLockedByName(id string) *member {
	if i := r.ownerIndexLocked(id); i >= 0 {
		return r.members[i]
	}
	return nil
}

// runMoves migrates the planned streams one at a time, collecting
// per-stream failures; a failed move leaves its stream pinned and
// serving on the source.
func (r *Router) runMoves(moves []move) error {
	var errs []error
	for _, mv := range moves {
		if err := r.migrate(mv); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// migrate executes one stream's quiesce → export → import → release
// under its exclusive latch.
func (r *Router) migrate(mv move) error {
	l := r.latches.acquire(mv.id)
	l.Lock()
	defer func() {
		l.Unlock()
		r.latches.release(mv.id, l)
	}()

	st, err := mv.from.h.ExportStream(mv.id)
	if err != nil {
		if errors.Is(err, manager.ErrUnknownStream) {
			// The stream was closed while the plan was in flight; nothing
			// to move.
			r.mu.Lock()
			delete(r.pins, mv.id)
			r.mu.Unlock()
			return nil
		}
		r.migrationFails.Add(1)
		return fmt.Errorf("router: exporting %q from %q: %w", mv.id, mv.from.name, err)
	}
	if err := mv.to.h.ImportStream(st); err != nil {
		// Pre-commit failure: the source copy is untouched and stays
		// pinned; the stream keeps serving there.
		r.migrationFails.Add(1)
		return fmt.Errorf("router: importing %q on %q: %w", mv.id, mv.to.name, err)
	}
	// Committed: the target is authoritative from here on.
	relErr := mv.from.h.ReleaseStream(mv.id)
	r.mu.Lock()
	if owner := r.ownerLockedByName(mv.id); owner == mv.to {
		delete(r.pins, mv.id)
	} else {
		r.pins[mv.id] = mv.to.name
	}
	r.mu.Unlock()
	r.migrations.Add(1)
	r.migrationBytes.Add(st.Bytes())
	if relErr != nil {
		// The move itself succeeded; a failed source release only leaves
		// shadowed stale state behind, reported but not fatal.
		return fmt.Errorf("router: releasing %q from %q after move: %w", mv.id, mv.from.name, relErr)
	}
	return nil
}

// MemberMetrics is one member's slice of the router metrics.
type MemberMetrics struct {
	// Name is the member name.
	Name string
	// Draining reports the member is being emptied.
	Draining bool
	// Streams is the member's live stream count.
	Streams int
	// Bytes is the member's rolled-up memory footprint.
	Bytes int64
}

// Metrics is a point-in-time snapshot of the router's own counters, the
// feed for the /metrics exposition.
type Metrics struct {
	// Version is the current placement-table generation.
	Version uint64
	// Members lists per-member placement state.
	Members []MemberMetrics
	// Pinned is the number of streams placed by pin rather than
	// rendezvous.
	Pinned int
	// Lookups counts route resolutions since start.
	Lookups int64
	// Migrations counts committed stream moves since start.
	Migrations int64
	// MigrationBytes sums the state bytes of committed moves.
	MigrationBytes int64
	// MigrationFailures counts moves that failed before commit (the
	// stream stayed on its source).
	MigrationFailures int64
}

// Metrics snapshots the router counters.
func (r *Router) Metrics() Metrics {
	r.mu.RLock()
	m := Metrics{
		Version:           r.version.Load(),
		Members:           make([]MemberMetrics, 0, len(r.members)),
		Pinned:            len(r.pins),
		Lookups:           r.lookups.Load(),
		Migrations:        r.migrations.Load(),
		MigrationBytes:    r.migrationBytes.Load(),
		MigrationFailures: r.migrationFails.Load(),
	}
	members := make([]*member, len(r.members))
	copy(members, r.members)
	r.mu.RUnlock()
	for _, mem := range members {
		m.Members = append(m.Members, MemberMetrics{
			Name:     mem.name,
			Draining: mem.draining,
			Streams:  mem.h.Len(),
			Bytes:    mem.h.TotalBytes(),
		})
	}
	return m
}
