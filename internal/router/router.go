// Package router is the scale-out serving tier: a Router implements the
// same host.StreamHost surface as one manager over M member hosts,
// placing each stream on a member by rendezvous (highest-random-weight)
// hashing of its id. Placement is deterministic and table-free — every
// router instance over the same member names computes the same owners —
// and resizing remaps only the streams whose winning member changed,
// ~1/M of them.
//
// The placement table is versioned and layered: rendezvous decides the
// default owner, and a pin (stream id → member) overrides it for streams
// that are not where rendezvous now says, either because the member set
// just changed or because a previous migration was interrupted. Resize
// and Drain migrate pinned streams to their owners live: each stream is
// quiesced under an exclusive per-stream latch (pushes for that one
// stream block, everything else flows), its versioned snapshot + WAL
// tail are exported from the source, imported on the target — whose
// single atomic checkpoint is the commit point — and the source copy is
// released. A fault anywhere before the commit leaves the stream intact
// on the source, still pinned there; acknowledged points are never lost.
package router

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"egi/internal/host"
	"egi/internal/manager"
	"egi/internal/stream"
)

// Errors reported by the router.
var (
	// ErrUnknownMember is returned by Drain for a member name the router
	// does not have.
	ErrUnknownMember = errors.New("router: unknown member")
	// ErrNoMembers rejects an operation that would leave the router with
	// no live (non-draining) member.
	ErrNoMembers = errors.New("router: no live members")
	// ErrNoGrow rejects growing the member set when Config.Grow is nil.
	ErrNoGrow = errors.New("router: no Grow function configured")
)

// Member is one serving node behind the router: a name (the rendezvous
// identity — stable across restarts) and the host it serves on.
type Member struct {
	// Name identifies the member in the hash ring; placement depends
	// only on the set of names, so keep them stable.
	Name string
	// Host serves the member's streams and supports migration.
	Host host.MigratableHost
}

// Config parameterizes a Router.
type Config struct {
	// Members is the initial member set; at least one, names unique and
	// non-empty.
	Members []Member
	// Grow, when non-nil, builds the i-th additional member for
	// Resize-up (i counts monotonically from the initial set and never
	// repeats, so names stay collision-free across grow/shrink cycles).
	Grow func(i int) (Member, error)
}

// member is a Member plus its routing state.
type member struct {
	name     string
	h        host.MigratableHost
	draining bool // excluded from new placements; being emptied

	// gate tracks operations routed to this member: every routed call
	// holds it shared for its duration (acquired while r.mu is held, so a
	// membership change happens-before or happens-after any given route).
	// quiesce takes it exclusively as a barrier, letting Resize and Drain
	// wait out calls that routed under the previous placement table —
	// without it, an in-flight push could create a stream on a member
	// after its streams were planned (or worse, after it was emptied and
	// is about to close), silently stranding acknowledged points.
	gate sync.RWMutex
}

// quiesce returns once every operation routed to m before the call has
// finished. Callers must not hold r.mu.
func (m *member) quiesce() {
	m.gate.Lock()
	//lint:ignore SA2001 empty critical section is the barrier
	m.gate.Unlock()
}

// Router implements host.StreamHost over M member hosts. All methods
// are safe for concurrent use; Resize, Drain and Close serialize among
// themselves but run concurrently with serving traffic — only streams
// actually being moved block, one at a time, for the duration of their
// move.
type Router struct {
	grow func(i int) (Member, error)

	// mu guards the routing state: members, pins, closed. Read-locked on
	// every route resolution, write-locked only by membership changes and
	// pin updates.
	mu      sync.RWMutex
	members []*member
	pins    map[string]string // stream id → member name, overriding rendezvous
	closed  bool

	// version counts placement-table generations; it bumps on every
	// membership change.
	version atomic.Uint64

	// adminMu serializes Resize, Drain, and Close.
	adminMu  sync.Mutex
	nextGrow int // next index handed to grow; monotonic, never reused

	latches *latchSet

	lookups        atomic.Int64
	migrations     atomic.Int64
	migrationBytes atomic.Int64
	migrationFails atomic.Int64
}

// New builds a Router over the configured members and reconciles
// placement with what the members already hold: a stream found on a
// member other than its rendezvous owner (state from a previous member
// set, or from an interrupted move) is pinned where it lives, so it
// keeps serving correctly and the next Resize or Drain migrates it home.
func New(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("router: at least one member required")
	}
	seen := make(map[string]struct{}, len(cfg.Members))
	r := &Router{
		grow:     cfg.Grow,
		pins:     make(map[string]string),
		nextGrow: len(cfg.Members),
		latches:  newLatchSet(),
	}
	for _, m := range cfg.Members {
		if m.Name == "" {
			return nil, errors.New("router: member with empty name")
		}
		if m.Host == nil {
			return nil, fmt.Errorf("router: member %q has no host", m.Name)
		}
		if _, dup := seen[m.Name]; dup {
			return nil, fmt.Errorf("router: duplicate member name %q", m.Name)
		}
		seen[m.Name] = struct{}{}
		r.members = append(r.members, &member{name: m.Name, h: m.Host})
	}
	r.version.Store(1)
	r.reconcile()
	return r, nil
}

// hrwWeight is the rendezvous weight of (member, id): FNV-1a 64 over the
// member name, a zero separator byte, and the stream id, passed through
// a 64-bit avalanche finalizer. The finalizer matters: raw FNV of
// near-identical inputs (sequential stream ids) is biased enough that
// taking the per-member maximum skews placement by several x; the mix
// restores uniformity. The highest weight wins.
func hrwWeight(memberName, id string) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(memberName); i++ {
		h ^= uint64(memberName[i])
		h *= prime
	}
	h *= prime // separator byte 0x00: XOR with zero, then mix
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ownerIndexLocked returns the index of id's rendezvous owner among the
// non-draining members, or -1 when every member is draining. Ties break
// to the lower index. Callers hold r.mu.
func (r *Router) ownerIndexLocked(id string) int {
	best, bestW := -1, uint64(0)
	for i, m := range r.members {
		if m.draining {
			continue
		}
		w := hrwWeight(m.name, id)
		if best == -1 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// homeLocked resolves the member serving id right now: its pin if one
// exists, its rendezvous owner otherwise. Callers hold r.mu.
func (r *Router) homeLocked(id string) (*member, error) {
	if r.closed {
		return nil, manager.ErrManagerClosed
	}
	if name, ok := r.pins[id]; ok {
		for _, m := range r.members {
			if m.name == name {
				return m, nil
			}
		}
		// A pin to a vanished member cannot happen through the public
		// surface (members are only removed once empty), but fail loud
		// rather than silently rerouting if it ever does.
		return nil, fmt.Errorf("%w: pinned member %q", ErrUnknownMember, name)
	}
	if i := r.ownerIndexLocked(id); i >= 0 {
		return r.members[i], nil
	}
	return nil, ErrNoMembers
}

// route resolves id's serving member, counting the lookup and entering
// the member's gate; the caller must release the gate (m.gate.RUnlock)
// when its operation on the member finishes.
func (r *Router) route(id string) (*member, error) {
	r.lookups.Add(1)
	r.mu.RLock()
	m, err := r.homeLocked(id)
	if err == nil {
		m.gate.RLock()
	}
	r.mu.RUnlock()
	return m, err
}

// withStream runs fn against id's serving host under the stream's shared
// latch: operations on different streams proceed concurrently, while a
// migration of this stream (which holds the latch exclusively) quiesces
// them until the stream is resumed on its new home — where this very
// call then lands, because owner resolution happens inside the latch.
// The member's gate is held shared throughout fn, so membership changes
// can wait out calls routed under the table they replaced.
func (r *Router) withStream(id string, fn func(h host.MigratableHost) error) error {
	l := r.latches.acquire(id)
	l.RLock()
	defer func() {
		l.RUnlock()
		r.latches.release(id, l)
	}()
	m, err := r.route(id)
	if err != nil {
		return err
	}
	defer m.gate.RUnlock()
	return fn(m.h)
}

// reconcile pins every stream that is not on its rendezvous owner to the
// member actually holding it. When duplicates exist (a crash between a
// migration's commit and its source release), the rendezvous owner wins
// if it holds a copy; otherwise the first holder does — the losers'
// state is shadowed and cleaned up by the next migration of that id.
func (r *Router) reconcile() {
	r.mu.Lock()
	defer r.mu.Unlock()
	holders := make(map[string][]int)
	for i, m := range r.members {
		for _, id := range m.h.StreamIDs() {
			holders[id] = append(holders[id], i)
		}
	}
	for id, hs := range holders {
		owner := r.ownerIndexLocked(id)
		onOwner := false
		for _, i := range hs {
			if i == owner {
				onOwner = true
				break
			}
		}
		if onOwner {
			continue
		}
		r.pins[id] = r.members[hs[0]].name
	}
}

// Open creates the stream on its placed member if it does not exist yet;
// idempotent.
func (r *Router) Open(id string) error {
	return r.withStream(id, func(h host.MigratableHost) error { return h.Open(id) })
}

// OpenStream is Open with per-stream setting overrides; the pinned
// settings migrate with the stream.
func (r *Router) OpenStream(id string, ov manager.Overrides) error {
	return r.withStream(id, func(h host.MigratableHost) error { return h.OpenStream(id, ov) })
}

// Push appends one point to the stream on its placed member.
func (r *Router) Push(id string, x float64) error {
	return r.withStream(id, func(h host.MigratableHost) error { return h.Push(id, x) })
}

// PushBatch appends the points, in order, on the stream's placed member.
func (r *Router) PushBatch(id string, xs []float64) error {
	return r.withStream(id, func(h host.MigratableHost) error { return h.PushBatch(id, xs) })
}

// PushBatchN is PushBatch reporting how many points were accepted before
// any error.
func (r *Router) PushBatchN(id string, xs []float64) (n int, err error) {
	err = r.withStream(id, func(h host.MigratableHost) error {
		n, err = h.PushBatchN(id, xs)
		return err
	})
	return n, err
}

// Anomalies returns the stream's current top-K ranking from its placed
// member.
func (r *Router) Anomalies(id string) (evs []stream.Event, err error) {
	err = r.withStream(id, func(h host.MigratableHost) error {
		evs, err = h.Anomalies(id)
		return err
	})
	return evs, err
}

// Subscribe registers for confirmed events — one stream's, or all
// streams with id "". The member managers share one event broker (the
// router's builder wires manager.Config.Events), so subscribing through
// any member observes every member's events; delegating to the first
// also keeps per-stream order across migrations, because a moving
// stream's source events are delivered into subscriber channels before
// the target publishes its first.
func (r *Router) Subscribe(id string, buf int) (<-chan manager.Event, func()) {
	r.mu.RLock()
	m := r.members[0]
	r.mu.RUnlock()
	return m.h.Subscribe(id, buf)
}

// StreamStats snapshots one live stream, naming its serving shard.
func (r *Router) StreamStats(id string) (st manager.StreamStats, err error) {
	err = r.withStream(id, func(h host.MigratableHost) error {
		st, err = h.StreamStats(id)
		return err
	})
	if err == nil {
		st.Shard = r.shardOf(id)
	}
	return st, err
}

// shardOf names the member currently serving id ("" when the router is
// closed mid-call).
func (r *Router) shardOf(id string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, err := r.homeLocked(id)
	if err != nil {
		return ""
	}
	return m.name
}

// CloseStream terminally closes the stream on its placed member and
// drops any pin it held.
func (r *Router) CloseStream(id string) (st manager.StreamStats, err error) {
	err = r.withStream(id, func(h host.MigratableHost) error {
		st, err = h.CloseStream(id)
		if err == nil {
			r.mu.Lock()
			delete(r.pins, id)
			r.mu.Unlock()
		}
		return err
	})
	return st, err
}

// SnapshotStream forces a durability checkpoint of the stream on its
// placed member.
func (r *Router) SnapshotStream(id string) error {
	return r.withStream(id, func(h host.MigratableHost) error { return h.SnapshotStream(id) })
}

// ReplayStream re-derives the stream's events from its placed member's
// persisted state.
func (r *Router) ReplayStream(id string, fn func(hop int, ev stream.Event) error) (n int, err error) {
	err = r.withStream(id, func(h host.MigratableHost) error {
		n, err = h.ReplayStream(id, fn)
		return err
	})
	return n, err
}

// Stats merges every member's snapshot, naming each stream's shard; the
// combined listing is sorted by id.
func (r *Router) Stats() manager.Stats {
	var out manager.Stats
	for _, m := range r.membersNow() {
		s := m.h.Stats()
		for i := range s.Streams {
			s.Streams[i].Shard = m.name
		}
		out.Streams = append(out.Streams, s.Streams...)
		out.TotalBytes += s.TotalBytes
		out.Evicted += s.Evicted
		out.Degraded += s.Degraded
		out.Quarantined += s.Quarantined
	}
	sort.Slice(out.Streams, func(i, j int) bool { return out.Streams[i].ID < out.Streams[j].ID })
	return out
}

// EvictIdle sweeps every member, returning the evicted streams' final
// stats sorted by id, each naming the shard it was evicted from.
func (r *Router) EvictIdle() []manager.StreamStats {
	var out []manager.StreamStats
	for _, m := range r.membersNow() {
		evicted := m.h.EvictIdle()
		for i := range evicted {
			evicted[i].Shard = m.name
		}
		out = append(out, evicted...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RecoveryFailures merges every member's startup-recovery failures,
// sorted by stream id.
func (r *Router) RecoveryFailures() []manager.RecoveryFailure {
	var out []manager.RecoveryFailure
	for _, m := range r.membersNow() {
		out = append(out, m.h.RecoveryFailures()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// StreamIDs lists every stream across members, sorted and deduplicated.
func (r *Router) StreamIDs() []string {
	seen := make(map[string]struct{})
	for _, m := range r.membersNow() {
		for _, id := range m.h.StreamIDs() {
			seen[id] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums the members' rolled-up memory footprints.
func (r *Router) TotalBytes() int64 {
	var total int64
	for _, m := range r.membersNow() {
		total += m.h.TotalBytes()
	}
	return total
}

// Len sums the members' live stream counts.
func (r *Router) Len() int {
	total := 0
	for _, m := range r.membersNow() {
		total += m.h.Len()
	}
	return total
}

// membersNow snapshots the member slice under the read lock.
func (r *Router) membersNow() []*member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*member, len(r.members))
	copy(out, r.members)
	return out
}

// Close shuts every member down. Idempotent; later operations fail with
// manager.ErrManagerClosed.
func (r *Router) Close() error {
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	members := make([]*member, len(r.members))
	copy(members, r.members)
	r.mu.Unlock()
	var errs []error
	for _, m := range members {
		if err := m.h.Close(); err != nil {
			errs = append(errs, fmt.Errorf("router: closing member %q: %w", m.name, err))
		}
	}
	return errors.Join(errs...)
}

var _ host.StreamHost = (*Router)(nil)
