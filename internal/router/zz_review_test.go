package router

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"egi/internal/manager"
)

func mkMember(t *testing.T, name string) Member {
	t.Helper()
	m, err := manager.New(manager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return Member{Name: name, Host: m}
}

// Drain two members, then resize down past both: the live-count check
// should accept this (one live member remains) but may falsely reject.
func TestReviewResizeAfterDrains(t *testing.T) {
	r, err := New(Config{Members: []Member{mkMember(t, "a"), mkMember(t, "b"), mkMember(t, "c")}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 30; i++ {
		if err := r.Push(fmt.Sprintf("s-%d", i), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain("b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain("c"); err != nil {
		t.Fatal(err)
	}
	if err := r.Resize(1); err != nil {
		t.Fatalf("Resize(1) after draining b and c should succeed (a stays live): %v", err)
	}
}

// Concurrent CloseStream + routed pushes + Drain: lock-order inversion
// (route holds r.mu while taking gate; CloseStream holds gate while
// taking r.mu; quiesce's pending gate writer blocks new readers).
func TestReviewCloseStreamDrainDeadlock(t *testing.T) {
	r, err := New(Config{Members: []Member{mkMember(t, "a"), mkMember(t, "b")}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids := make([]string, 200)
	for i := range ids {
		ids[i] = fmt.Sprintf("s-%d", i)
		if err := r.Push(ids[i], 1.0); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // closer
		defer wg.Done()
		for i := 0; i < 100; i++ {
			r.CloseStream(ids[i])
		}
	}()
	go func() { // pusher
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			r.Push(ids[100+i%100], float64(i))
		}
	}()
	go func() { // admin
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Drain("b")
			r.Resize(2)
		}
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("deadlock: close/push/drain wedged")
	}
}
