package router

import (
	"fmt"
	"testing"
)

// owner returns the rendezvous winner for id among names (highest
// hrwWeight, ties to the lower index) — the pure placement function the
// Router applies through ownerIndexLocked.
func owner(names []string, id string) int {
	best, bestW := -1, uint64(0)
	for i, n := range names {
		w := hrwWeight(n, id)
		if best == -1 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%03d", i)
	}
	return names
}

// TestRendezvousUniformity: 10k stream ids over 8 members must land
// within ±25% of the perfectly uniform share per member — the placement
// is hash-balanced, with no member starved or doubled up.
func TestRendezvousUniformity(t *testing.T) {
	const nIDs, nMembers = 10000, 8
	names := shardNames(nMembers)
	counts := make([]int, nMembers)
	for i := 0; i < nIDs; i++ {
		counts[owner(names, fmt.Sprintf("stream-%05d", i))]++
	}
	mean := float64(nIDs) / nMembers
	lo, hi := int(mean*0.75), int(mean*1.25)
	for i, c := range counts {
		if c < lo || c > hi {
			t.Errorf("member %s holds %d of %d ids, outside [%d, %d] (counts %v)",
				names[i], c, nIDs, lo, hi, counts)
		}
	}
}

// TestResizeRemapBound: growing 4 members to 5 must remap at most
// 1/5 + ε of 10k ids — the rendezvous minimal-disruption property that
// makes Resize cheap — and every id that does move lands on the new
// member (an id never shuffles between surviving members).
func TestResizeRemapBound(t *testing.T) {
	const nIDs = 10000
	before := shardNames(4)
	after := shardNames(5)
	moved := 0
	for i := 0; i < nIDs; i++ {
		id := fmt.Sprintf("stream-%05d", i)
		was, is := owner(before, id), owner(after, id)
		if was == is {
			continue
		}
		moved++
		if is != 4 {
			t.Fatalf("id %q moved from member %d to surviving member %d; only moves to the new member are allowed", id, was, is)
		}
	}
	limit := int(float64(nIDs) * (1.0/5 + 0.05))
	if moved > limit {
		t.Fatalf("grow 4→5 remapped %d of %d ids, want <= %d (1/5 + ε)", moved, nIDs, limit)
	}
	if moved == 0 {
		t.Fatal("grow 4→5 remapped nothing; the new member is unreachable")
	}
}

// TestShrinkRemapOnlyEvictedMember: shrinking 5 members to 4 moves
// exactly the ids the removed member held; every other placement is
// untouched.
func TestShrinkRemapOnlyEvictedMember(t *testing.T) {
	const nIDs = 10000
	before := shardNames(5)
	after := shardNames(4)
	for i := 0; i < nIDs; i++ {
		id := fmt.Sprintf("stream-%05d", i)
		was, is := owner(before, id), owner(after, id)
		if was != 4 && was != is {
			t.Fatalf("id %q moved from surviving member %d to %d on shrink", id, was, is)
		}
	}
}

// TestOwnerDeterministic: placement depends only on the set of member
// names — recomputing it is stable, so independent routers agree.
func TestOwnerDeterministic(t *testing.T) {
	names := shardNames(6)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("s-%d", i)
		if a, b := owner(names, id), owner(names, id); a != b {
			t.Fatalf("owner(%q) unstable: %d then %d", id, a, b)
		}
	}
}
