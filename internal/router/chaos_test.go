package router

import (
	"fmt"
	"strings"
	"syscall"
	"testing"

	"egi/internal/manager"
	"egi/internal/vfs"
)

// findStreamOn returns an id whose rendezvous owner between the two
// members is the wanted one, so the tests control migration direction.
func findStreamOn(t *testing.T, r *Router, want string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("sensor-%d", i)
		if r.shardOf(id) == want {
			return id
		}
	}
	t.Fatalf("no id places on %q", want)
	return ""
}

// TestMigrationTargetDiskFaultKeepsSource: a dead target disk fails the
// migration BEFORE its commit point — the stream stays whole on the
// source, still serving, with no acknowledged point lost and no residue
// on the target; once the disk heals, the retried drain moves it, and
// the delivered events across fault + retry are bit-identical to a
// never-migrated stream.
func TestMigrationTargetDiskFaultKeepsSource(t *testing.T) {
	clk := &fakeClock{}
	srcFS, dstFS := vfs.NewInject(nil), vfs.NewInject(nil)
	c := newCluster(t, t.TempDir(), []string{"m0", "m1"}, clk,
		map[string]vfs.FS{"m0": srcFS, "m1": dstFS}, false)
	sub, cancel := c.r.Subscribe("", 256)
	defer cancel()
	got := collectEvents(sub)

	ref, err := manager.New(manager.Config{
		Stream: testStreamConfig(), DataDir: t.TempDir(), SnapshotEvery: 200, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	refSub, refCancel := ref.Subscribe("", 256)
	defer refCancel()
	want := collectEvents(refSub)

	id := findStreamOn(t, c.r, "m0")
	full := sineSeries(2000, 40, 31, 500, 1200)
	pushAll(t, c.r, id, full[:600], 100)
	pushAll(t, ref, id, full[:600], 100)

	// Kill the target disk; the drain must fail without moving the stream.
	dstFS.FailNext(syscall.ENOSPC)
	err = c.r.Drain("m0")
	if err == nil || !strings.Contains(err.Error(), "importing") {
		t.Fatalf("drain onto a dead disk: err = %v, want import failure", err)
	}
	if mt := c.r.Metrics(); mt.MigrationFailures != 1 || mt.Migrations != 0 {
		t.Fatalf("failures=%d migrations=%d after target fault, want 1/0", mt.MigrationFailures, mt.Migrations)
	}
	st, err := c.r.StreamStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard != "m0" || st.Points != 600 || st.Degraded {
		t.Fatalf("after target fault: shard=%q points=%d degraded=%v, want m0/600/false", st.Shard, st.Points, st.Degraded)
	}
	if ids := c.mgr("m1").StreamIDs(); len(ids) != 0 {
		t.Fatalf("target holds residue %v after failed import", ids)
	}

	// The source keeps serving while the target is down.
	pushAll(t, c.r, id, full[600:1000], 100)
	pushAll(t, ref, id, full[600:1000], 100)

	// Heal and retry: the stream moves, nothing lost.
	dstFS.Heal()
	if err := c.r.Drain("m0"); err != nil {
		t.Fatalf("drain after heal: %v", err)
	}
	st, err = c.r.StreamStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard != "m1" || st.Points != 1000 {
		t.Fatalf("after healed drain: shard=%q points=%d, want m1/1000", st.Shard, st.Points)
	}
	pushAll(t, c.r, id, full[1000:], 100)
	pushAll(t, ref, id, full[1000:], 100)

	c.close()
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	g, w := anomaliesOf(got.wait(t), id), anomaliesOf(want.wait(t), id)
	if !eventsEqual(g, w) {
		t.Fatalf("events across fault+retry: got %d, want %d", len(g), len(w))
	}
	if len(w) == 0 {
		t.Fatal("fixture produced no events; the comparison is vacuous")
	}
}

// TestMigrationDegradedSourceMoves: a stream running degraded (its
// source disk failed mid-ingest) migrates from its in-memory state, and
// the import's checkpoint on the healthy target heals it — migration is
// a repair path, and no acknowledged point is lost on the way.
func TestMigrationDegradedSourceMoves(t *testing.T) {
	clk := &fakeClock{}
	srcFS := vfs.NewInject(nil)
	c := newCluster(t, t.TempDir(), []string{"m0", "m1"}, clk,
		map[string]vfs.FS{"m0": srcFS, "m1": vfs.NewInject(nil)}, false)
	sub, cancel := c.r.Subscribe("", 256)
	defer cancel()
	got := collectEvents(sub)

	ref, err := manager.New(manager.Config{
		Stream: testStreamConfig(), DataDir: t.TempDir(), SnapshotEvery: 200, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	refSub, refCancel := ref.Subscribe("", 256)
	defer refCancel()
	want := collectEvents(refSub)

	id := findStreamOn(t, c.r, "m0")
	full := sineSeries(2000, 40, 57, 500, 1200)
	pushAll(t, c.r, id, full[:500], 100)
	pushAll(t, ref, id, full[:500], 100)

	// Degrade the source: pushes keep succeeding on memory alone.
	srcFS.FailNext(syscall.ENOSPC)
	pushAll(t, c.r, id, full[500:700], 100)
	pushAll(t, ref, id, full[500:700], 100)
	st, err := c.r.StreamStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded {
		t.Fatal("source stream not degraded after disk fault")
	}
	// The disk recovers but the backoff has not elapsed (the clock never
	// advances) — the stream stays degraded on the source.
	srcFS.Heal()
	if st, _ := c.r.StreamStats(id); !st.Degraded {
		t.Fatal("stream healed without the backoff elapsing")
	}

	if err := c.r.Drain("m0"); err != nil {
		t.Fatalf("draining the degraded source: %v", err)
	}
	st, err = c.r.StreamStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard != "m1" || st.Points != 700 {
		t.Fatalf("after drain: shard=%q points=%d, want m1/700", st.Shard, st.Points)
	}
	if st.Degraded {
		t.Fatal("stream still degraded after migrating to a healthy disk")
	}
	if s := c.r.Stats(); s.Degraded != 0 {
		t.Fatalf("Stats().Degraded = %d after migration healed the stream", s.Degraded)
	}
	if mt := c.r.Metrics(); mt.Migrations != 1 || mt.MigrationFailures != 0 {
		t.Fatalf("migrations=%d failures=%d, want 1/0", mt.Migrations, mt.MigrationFailures)
	}

	pushAll(t, c.r, id, full[700:], 100)
	pushAll(t, ref, id, full[700:], 100)
	c.close()
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	g, w := anomaliesOf(got.wait(t), id), anomaliesOf(want.wait(t), id)
	if !eventsEqual(g, w) {
		t.Fatalf("events across degrade+migrate: got %d, want %d", len(g), len(w))
	}
	if len(w) == 0 {
		t.Fatal("fixture produced no events; the comparison is vacuous")
	}
}

// TestMigrationSourceReadFaultFallsBackToMemory: when the source disk
// cannot be read at export time, the migration exports the live
// in-memory state instead and still completes — a read fault degrades
// nothing and loses nothing.
func TestMigrationSourceReadFaultFallsBackToMemory(t *testing.T) {
	clk := &fakeClock{}
	srcFS := vfs.NewInject(nil)
	c := newCluster(t, t.TempDir(), []string{"m0", "m1"}, clk,
		map[string]vfs.FS{"m0": srcFS, "m1": vfs.NewInject(nil)}, false)
	defer c.close()

	id := findStreamOn(t, c.r, "m0")
	pushAll(t, c.r, id, sineSeries(600, 40, 3, 300), 100)

	// Only reads fail: the snapshot+tail on disk is unreadable, but the
	// write path (and the source release's Remove) still works.
	srcFS.SetKinds(vfs.OpRead)
	srcFS.FailNext(syscall.EIO)
	if err := c.r.Drain("m0"); err != nil {
		t.Fatalf("drain with unreadable source: %v", err)
	}
	st, err := c.r.StreamStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shard != "m1" || st.Points != 600 {
		t.Fatalf("after drain: shard=%q points=%d, want m1/600", st.Shard, st.Points)
	}
	if mt := c.r.Metrics(); mt.Migrations != 1 || mt.MigrationFailures != 0 {
		t.Fatalf("migrations=%d failures=%d, want 1/0", mt.Migrations, mt.MigrationFailures)
	}
	srcFS.Heal()
	pushAll(t, c.r, id, sineSeries(100, 40, 4), 100)
}
