package router

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"egi/internal/manager"
	"egi/internal/stream"
	"egi/internal/vfs"
)

// fakeClock is an injectable manual clock (mirrors the manager tests').
type fakeClock struct{ nanos atomic.Int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.nanos.Add(int64(d)) }

// testStreamConfig is the small, fast detector template shared by the
// router tests; Seed fixed so cross-manager comparisons are exact.
func testStreamConfig() stream.Config {
	return stream.Config{Window: 40, BufLen: 320, EnsembleSize: 8, Seed: 11}
}

// sineSeries builds a noisy sine with triangular pulses planted at the
// given positions (the stream tests' fixture).
func sineSeries(length, period int, seed int64, planted ...int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.1*rng.NormFloat64()
	}
	for _, p := range planted {
		for i := p; i < p+period && i < length; i++ {
			x := float64(i-p) / float64(period)
			s[i] = 1.5 - 3*math.Abs(x-0.5) + 0.1*rng.NormFloat64()
		}
	}
	return s
}

// collected gathers a subscription's events in the background so pushes
// never block on the broker; wait returns them once the channel closes.
type collected struct {
	mu     sync.Mutex
	events []manager.Event
	done   chan struct{}
}

func collectEvents(ch <-chan manager.Event) *collected {
	c := &collected{done: make(chan struct{})}
	go func() {
		defer close(c.done)
		for ev := range ch {
			c.mu.Lock()
			c.events = append(c.events, ev)
			c.mu.Unlock()
		}
	}()
	return c
}

func (c *collected) wait(t *testing.T) []manager.Event {
	t.Helper()
	select {
	case <-c.done:
	case <-time.After(10 * time.Second):
		t.Fatal("event channel never closed")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// anomaliesOf filters events down to stream id's anomaly stream.
func anomaliesOf(events []manager.Event, id string) []stream.Event {
	var out []stream.Event
	for _, ev := range events {
		if ev.Health == "" && ev.Stream == id {
			out = append(out, ev.Anomaly)
		}
	}
	return out
}

func eventsEqual(a, b []stream.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cluster is a Router over named manager members sharing one broker,
// with every member manager reachable by name for white-box assertions.
type cluster struct {
	t    *testing.T
	r    *Router
	b    *manager.Broker
	mu   sync.Mutex
	mgrs map[string]*manager.Manager
}

// newCluster builds the members (durable under dir/<name> when dir is
// set, memory-only otherwise), each with an optional injected FS, and a
// Router over them; growable installs a Grow hook so Resize can add
// members.
func newCluster(t *testing.T, dir string, names []string, clk *fakeClock, fss map[string]vfs.FS, growable bool) *cluster {
	t.Helper()
	c := &cluster{t: t, b: manager.NewBroker(), mgrs: map[string]*manager.Manager{}}
	mk := func(name string) (*manager.Manager, error) {
		cfg := manager.Config{Stream: testStreamConfig(), SnapshotEvery: 200, Now: clk.Now, Events: c.b}
		if dir != "" {
			cfg.DataDir = filepath.Join(dir, name)
		}
		if fss != nil {
			cfg.FS = fss[name]
		}
		m, err := manager.New(cfg)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.mgrs[name] = m
		c.mu.Unlock()
		return m, nil
	}
	members := make([]Member, 0, len(names))
	for _, name := range names {
		m, err := mk(name)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, Member{Name: name, Host: m})
	}
	cfg := Config{Members: members}
	if growable {
		cfg.Grow = func(i int) (Member, error) {
			name := fmt.Sprintf("grown-%d", i)
			m, err := mk(name)
			if err != nil {
				return Member{}, err
			}
			return Member{Name: name, Host: m}, nil
		}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.r = r
	return c
}

func (c *cluster) close() {
	if err := c.r.Close(); err != nil {
		c.t.Errorf("closing cluster: %v", err)
	}
	c.b.Close()
}

// mgr returns the named member's manager.
func (c *cluster) mgr(name string) *manager.Manager {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.mgrs[name]
	if m == nil {
		c.t.Fatalf("no manager %q", name)
	}
	return m
}

// member returns the named live member, failing the test if absent.
func (c *cluster) member(name string) *member {
	c.r.mu.RLock()
	for _, m := range c.r.members {
		if m.name == name {
			c.r.mu.RUnlock()
			return m
		}
	}
	c.r.mu.RUnlock()
	c.t.Fatalf("no member %q", name)
	return nil
}

// moveStream forces one migration of id to the named member through the
// real quiesce → export → import → release path.
func (c *cluster) moveStream(id, to string) error {
	from := c.member(c.r.shardOf(id))
	return c.r.migrate(move{id: id, from: from, to: c.member(to)})
}

// pushAll pushes xs to id in chunk-sized batches through the router,
// requiring full acceptance.
func pushAll(t *testing.T, h interface {
	PushBatchN(string, []float64) (int, error)
}, id string, xs []float64, chunk int) {
	t.Helper()
	for off := 0; off < len(xs); off += chunk {
		end := off + chunk
		if end > len(xs) {
			end = len(xs)
		}
		if n, err := h.PushBatchN(id, xs[off:end]); err != nil || n != end-off {
			t.Fatalf("push %s [%d:%d) = (%d, %v), want (%d, nil)", id, off, end, n, err, end-off)
		}
	}
}

// TestMigrationBitIdentityRandomCuts is the migration acceptance bar:
// a stream migrated between members at random cut points mid-ingest
// delivers exactly the events of a never-migrated stream over the same
// points, reports the same anomalies ranking, and checkpoints to the
// same snapshot bytes.
func TestMigrationBitIdentityRandomCuts(t *testing.T) {
	names := []string{"m0", "m1", "m2"}
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			clk := &fakeClock{}
			c := newCluster(t, t.TempDir(), names, clk, nil, false)
			sub, cancel := c.r.Subscribe("", 256)
			defer cancel()
			got := collectEvents(sub)

			ref, err := manager.New(manager.Config{
				Stream: testStreamConfig(), DataDir: t.TempDir(), SnapshotEvery: 200, Now: clk.Now,
			})
			if err != nil {
				t.Fatal(err)
			}
			refSub, refCancel := ref.Subscribe("", 256)
			defer refCancel()
			want := collectEvents(refSub)

			const id = "sensor-7"
			full := sineSeries(2000, 40, int64(100+trial), 500, 1200)
			rng := rand.New(rand.NewSource(int64(900 + trial)))
			cuts := []int{100 + rng.Intn(600), 800 + rng.Intn(500), 1400 + rng.Intn(500)}

			next := 0
			for off := 0; off < len(full); off += 50 {
				end := off + 50
				pushAll(t, c.r, id, full[off:end], 50)
				pushAll(t, ref, id, full[off:end], 50)
				for next < len(cuts) && cuts[next] <= end {
					cur := c.r.shardOf(id)
					to := names[rng.Intn(len(names))]
					for to == cur {
						to = names[rng.Intn(len(names))]
					}
					if err := c.moveStream(id, to); err != nil {
						t.Fatalf("migrating %q to %q at point %d: %v", id, to, end, err)
					}
					if got := c.r.shardOf(id); got != to {
						t.Fatalf("after migration shardOf = %q, want %q", got, to)
					}
					next++
				}
			}
			if mt := c.r.Metrics(); mt.Migrations != int64(len(cuts)) || mt.MigrationFailures != 0 {
				t.Fatalf("migrations = %d (failures %d), want %d clean", mt.Migrations, mt.MigrationFailures, len(cuts))
			}

			// Same live ranking and accounting.
			gotAnoms, err := c.r.Anomalies(id)
			if err != nil {
				t.Fatal(err)
			}
			wantAnoms, err := ref.Anomalies(id)
			if err != nil {
				t.Fatal(err)
			}
			if !eventsEqual(gotAnoms, wantAnoms) {
				t.Fatalf("anomalies diverge: migrated %v, reference %v", gotAnoms, wantAnoms)
			}
			st, err := c.r.StreamStats(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.Points != int64(len(full)) {
				t.Fatalf("points = %d, want %d", st.Points, len(full))
			}

			// Same checkpoint bytes: force a snapshot on both sides and
			// compare the exported state.
			if err := c.r.SnapshotStream(id); err != nil {
				t.Fatal(err)
			}
			if err := ref.SnapshotStream(id); err != nil {
				t.Fatal(err)
			}
			gotSt, err := c.mgr(c.r.shardOf(id)).ExportStream(id)
			if err != nil {
				t.Fatal(err)
			}
			wantSt, err := ref.ExportStream(id)
			if err != nil {
				t.Fatal(err)
			}
			if gotSt.WalPos != wantSt.WalPos || len(gotSt.Tail) != 0 || len(wantSt.Tail) != 0 {
				t.Fatalf("export coords: migrated walpos=%d tail=%d, reference walpos=%d tail=%d",
					gotSt.WalPos, len(gotSt.Tail), wantSt.WalPos, len(wantSt.Tail))
			}
			if !bytes.Equal(gotSt.Snapshot, wantSt.Snapshot) {
				t.Fatalf("snapshot bytes diverge after %d migrations (%d vs %d bytes)",
					len(cuts), len(gotSt.Snapshot), len(wantSt.Snapshot))
			}

			// Same delivered events, in order.
			c.close()
			if err := ref.Close(); err != nil {
				t.Fatal(err)
			}
			g, w := anomaliesOf(got.wait(t), id), anomaliesOf(want.wait(t), id)
			if !eventsEqual(g, w) {
				t.Fatalf("delivered events diverge: migrated %d, reference %d", len(g), len(w))
			}
			if len(w) == 0 {
				t.Fatal("fixture produced no events; the comparison is vacuous")
			}
		})
	}
}

// TestDrainMovesAllStreams: Drain empties the named member onto the
// rest, every stream keeps serving from its new home, and draining down
// to the last live member is refused.
func TestDrainMovesAllStreams(t *testing.T) {
	clk := &fakeClock{}
	names := []string{"m0", "m1", "m2"}
	c := newCluster(t, t.TempDir(), names, clk, nil, false)
	defer c.close()

	const nStreams, nPoints = 9, 400
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("s-%d", i)
		pushAll(t, c.r, id, sineSeries(nPoints, 40, int64(i), 200), 100)
	}
	// Drain the most loaded member, so the test always moves something.
	drained, onDrained := "", -1
	for _, name := range names {
		if n := c.mgr(name).Len(); n > onDrained {
			drained, onDrained = name, n
		}
	}
	if onDrained == 0 {
		t.Fatal("fixture placed nothing anywhere")
	}

	if err := c.r.Drain(drained); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := c.mgr(drained).Len(); n != 0 {
		t.Fatalf("%s still holds %d live streams after drain", drained, n)
	}
	if ids := c.mgr(drained).StreamIDs(); len(ids) != 0 {
		t.Fatalf("%s still holds state for %v after drain", drained, ids)
	}
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("s-%d", i)
		st, err := c.r.StreamStats(id)
		if err != nil {
			t.Fatalf("%s after drain: %v", id, err)
		}
		if st.Shard == drained || st.Shard == "" {
			t.Fatalf("%s placed on %q after draining it", id, st.Shard)
		}
		if st.Points != nPoints {
			t.Fatalf("%s: %d points after drain, want %d", id, st.Points, nPoints)
		}
		// The stream keeps serving from its new home.
		pushAll(t, c.r, id, sineSeries(50, 40, int64(100+i)), 50)
	}
	mt := c.r.Metrics()
	if mt.Migrations != int64(onDrained) || mt.MigrationFailures != 0 {
		t.Fatalf("migrations = %d (failures %d), want %d", mt.Migrations, mt.MigrationFailures, onDrained)
	}
	if mt.Pinned != 0 {
		t.Fatalf("%d pins left after drain; drained streams should be home", mt.Pinned)
	}
	if c.r.Len() != nStreams {
		t.Fatalf("router serves %d streams, want %d", c.r.Len(), nStreams)
	}

	if err := c.r.Drain("nope"); err == nil {
		t.Fatal("draining an unknown member succeeded")
	}
	var rest []string
	for _, name := range names {
		if name != drained {
			rest = append(rest, name)
		}
	}
	if err := c.r.Drain(rest[0]); err != nil {
		t.Fatalf("draining %s: %v", rest[0], err)
	}
	if err := c.r.Drain(rest[1]); err == nil {
		t.Fatal("draining the last live member succeeded")
	}
}

// TestResizeGrowShrink: growing adds members and remaps only a bounded
// share of streams onto them; shrinking drains the removed members and
// closes them once empty; streams survive both directions intact.
func TestResizeGrowShrink(t *testing.T) {
	clk := &fakeClock{}
	c := newCluster(t, t.TempDir(), []string{"m0", "m1"}, clk, nil, true)
	defer c.close()

	const nStreams = 40
	homes := map[string]string{}
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("s-%02d", i)
		pushAll(t, c.r, id, sineSeries(120, 40, int64(i)), 60)
		homes[id] = c.r.shardOf(id)
	}

	if err := c.r.Resize(3); err != nil {
		t.Fatalf("grow: %v", err)
	}
	mt := c.r.Metrics()
	if len(mt.Members) != 3 {
		t.Fatalf("%d members after grow, want 3", len(mt.Members))
	}
	moved := 0
	for id, was := range homes {
		now := c.r.shardOf(id)
		if now != was {
			moved++
			if now != "grown-2" {
				t.Fatalf("%s moved %s→%s on grow; only moves to the new member are allowed", id, was, now)
			}
		}
	}
	if moved == 0 || moved > nStreams*3/5 {
		t.Fatalf("grow moved %d of %d streams; want a bounded nonzero share", moved, nStreams)
	}
	if c.r.Len() != nStreams {
		t.Fatalf("router serves %d streams after grow, want %d", c.r.Len(), nStreams)
	}

	if err := c.r.Resize(2); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	mt = c.r.Metrics()
	if len(mt.Members) != 2 || mt.Members[0].Name != "m0" || mt.Members[1].Name != "m1" {
		t.Fatalf("members after shrink = %+v, want [m0 m1]", mt.Members)
	}
	for id := range homes {
		st, err := c.r.StreamStats(id)
		if err != nil {
			t.Fatalf("%s after shrink: %v", id, err)
		}
		if st.Points != 120 {
			t.Fatalf("%s: %d points after shrink, want 120", id, st.Points)
		}
	}

	if err := c.r.Resize(0); err == nil {
		t.Fatal("resize to 0 succeeded")
	}
}

// TestResizeWithoutGrow: a router built without a Grow hook refuses to
// grow, with ErrNoGrow.
func TestResizeWithoutGrow(t *testing.T) {
	clk := &fakeClock{}
	c := newCluster(t, "", []string{"only"}, clk, nil, false)
	defer c.close()
	if err := c.r.Resize(2); err == nil {
		t.Fatal("grow without a Grow hook succeeded")
	}
}

// TestRouterConcurrentPushDuringResize: pushes race live resizes in both
// directions; every accepted point must land exactly once — the final
// per-stream count equals what the pushers were acknowledged.
func TestRouterConcurrentPushDuringResize(t *testing.T) {
	clk := &fakeClock{}
	c := newCluster(t, "", []string{"m0", "m1"}, clk, nil, true)
	defer c.close()

	const nStreams, iters = 8, 40
	var wg sync.WaitGroup
	accepted := make([]atomic.Int64, nStreams)
	errs := make(chan error, nStreams+3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, n := range []int{4, 2, 3} {
			if err := c.r.Resize(n); err != nil {
				errs <- fmt.Errorf("resize to %d: %w", n, err)
			}
		}
	}()
	for i := 0; i < nStreams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("s-%d", i)
			data := sineSeries(200, 40, int64(i))
			for k := 0; k < iters; k++ {
				n, err := c.r.PushBatchN(id, data[:25])
				if err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
				accepted[i].Add(int64(n))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("s-%d", i)
		st, err := c.r.StreamStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Points != accepted[i].Load() {
			t.Fatalf("%s: %d points live, but %d were acknowledged", id, st.Points, accepted[i].Load())
		}
	}
	if mt := c.r.Metrics(); mt.MigrationFailures != 0 {
		t.Fatalf("%d migration failures under concurrency", mt.MigrationFailures)
	}
}
