package router

import "sync"

// latch is a per-stream RWMutex with a reference count, living in the
// latchSet only while someone holds or waits on it. Normal operations
// read-lock it (they may proceed concurrently); a migration write-locks
// it, which quiesces the stream: every push and query for that id blocks
// on the latch until the move commits and owner resolution — performed
// inside the latch — then lands them on the new home.
type latch struct {
	sync.RWMutex
	refs int
}

// latchShardCount keeps unrelated streams' latch lookups from contending
// on one map mutex.
const latchShardCount = 64

type latchShard struct {
	mu sync.Mutex
	m  map[string]*latch
}

// latchSet is a sharded, refcounted registry of per-stream latches.
// Streams with no in-flight operation cost nothing.
type latchSet struct {
	shards [latchShardCount]latchShard
}

func newLatchSet() *latchSet {
	s := &latchSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*latch)
	}
	return s
}

// fnv32a is 32-bit FNV-1a for latch shard selection.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (s *latchSet) shardFor(id string) *latchShard {
	return &s.shards[fnv32a(id)%latchShardCount]
}

// acquire returns the latch for id, creating it on first use and
// incrementing its refcount. The caller locks it (read or write) and
// must pair the acquire with release.
func (s *latchSet) acquire(id string) *latch {
	sh := s.shardFor(id)
	sh.mu.Lock()
	l := sh.m[id]
	if l == nil {
		l = &latch{}
		sh.m[id] = l
	}
	l.refs++
	sh.mu.Unlock()
	return l
}

// release drops one reference to id's latch, removing it from the
// registry when no one holds or waits on it anymore.
func (s *latchSet) release(id string, l *latch) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
}
