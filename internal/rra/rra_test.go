package rra

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/sax"
	"egi/internal/timeseries"
)

func periodicWithAnomaly(length, period, pos int, seed int64) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.05*rng.NormFloat64()
	}
	for i := pos; i < pos+period && i < length; i++ {
		s[i] = 1.3 - 2.6*math.Abs(float64(i-pos)/float64(period)-0.5) + 0.05*rng.NormFloat64()
	}
	return s
}

func TestDetectFindsPlantedAnomaly(t *testing.T) {
	period := 50
	pos := 1000
	s := periodicWithAnomaly(2000, period, pos, 1)
	anomalies, err := Detect(s, Config{Window: period})
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) == 0 {
		t.Fatal("no anomalies")
	}
	hit := false
	for _, a := range anomalies {
		if a.Pos < pos+period && pos < a.Pos+a.Length {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no RRA anomaly overlaps the planted one at %d: %+v", pos, anomalies)
	}
}

func TestDetectRanksByDistanceNonOverlapping(t *testing.T) {
	s := periodicWithAnomaly(2500, 40, 1200, 3)
	anomalies, err := Detect(s, Config{Window: 40, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(anomalies); i++ {
		if anomalies[i].Dist > anomalies[i-1].Dist+1e-12 {
			t.Errorf("anomalies not sorted by distance: %+v", anomalies)
		}
	}
	for i := range anomalies {
		for j := i + 1; j < len(anomalies); j++ {
			a, b := anomalies[i], anomalies[j]
			if a.Pos < b.Pos+b.Length && b.Pos < a.Pos+a.Length {
				t.Errorf("anomalies overlap: %+v %+v", a, b)
			}
		}
	}
}

func TestVariableLengthOutput(t *testing.T) {
	// RRA reports intervals whose length comes from the grammar rules, so
	// lengths can differ from the window.
	s := periodicWithAnomaly(3000, 60, 1500, 7)
	anomalies, err := Detect(s, Config{Window: 60, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range anomalies {
		if a.Length < 2 {
			t.Errorf("anomaly with degenerate length: %+v", a)
		}
		if a.Pos < 0 || a.Pos+a.Length > len(s) {
			t.Errorf("anomaly out of range: %+v", a)
		}
		if a.RuleFreq < 0 {
			t.Errorf("negative rule frequency: %+v", a)
		}
		if a.Dist < 0 || math.IsNaN(a.Dist) {
			t.Errorf("bad distance: %+v", a)
		}
	}
}

func TestDetectValidation(t *testing.T) {
	s := periodicWithAnomaly(500, 25, 250, 2)
	if _, err := Detect(s, Config{Window: 1}); err == nil {
		t.Error("window=1 should error")
	}
	if _, err := Detect(s, Config{Window: 25, TopK: -1}); err == nil {
		t.Error("negative topK should error")
	}
	if _, err := Detect(s, Config{Window: 600}); err == nil {
		t.Error("window beyond series should error")
	}
	if _, err := Detect(timeseries.Series{}, Config{Window: 10}); err == nil {
		t.Error("empty series should error")
	}
	if _, err := Detect(s, Config{Window: 25, Params: sax.Params{W: 40, A: 4}}); err == nil {
		t.Error("w > window should error")
	}
}

func TestNearestNeighborDistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := make(timeseries.Series, 300)
	for i := range s {
		s[i] = rng.NormFloat64() + math.Sin(float64(i)/7)
	}
	m := 20
	for _, pos := range []int{0, 50, 280} {
		got := nearestNeighborDist(s, pos, m)
		// Naive reference without early abandoning.
		zq := znormRef(s[pos : pos+m])
		want := math.Inf(1)
		for q := 0; q+m <= len(s); q++ {
			if q < pos+m && pos < q+m {
				continue
			}
			z := znormRef(s[q : q+m])
			var acc float64
			for k := 0; k < m; k++ {
				d := zq[k] - z[k]
				acc += d * d
			}
			if d := math.Sqrt(acc); d < want {
				want = d
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("pos %d: nn dist %v, naive %v", pos, got, want)
		}
	}
}

func znormRef(x []float64) []float64 {
	var mu float64
	for _, v := range x {
		mu += v
	}
	mu /= float64(len(x))
	var ss float64
	for _, v := range x {
		ss += (v - mu) * (v - mu)
	}
	sd := math.Sqrt(ss / float64(len(x)))
	out := make([]float64, len(x))
	if sd < 1e-9 {
		return out
	}
	for i, v := range x {
		out[i] = (v - mu) / sd
	}
	return out
}
