// Package rra implements the Rare Rule Anomaly (RRA) algorithm of Senin et
// al., "Time series anomaly discovery with grammar-based compression"
// (EDBT 2015) — reference [18] of the paper and the immediate predecessor
// of its rule-density method. Where the rule density curve ranks *points*
// by how many grammar rules cover them, RRA ranks *grammar rule intervals*
// themselves: subsequences that correspond to rarely-used rules (and the
// stretches no rule covers) become variable-length discord candidates,
// which are then refined by an exact 1-NN distance search with early
// abandoning, visiting candidates in ascending rule-frequency order.
//
// RRA complements the ensemble detector: it reports anomalies with their
// natural variable lengths rather than a fixed window, at the cost of the
// distance-refinement step. It is included both for completeness of the
// GrammarViz framework this repository reproduces and as an additional
// baseline for the benchmark harness.
package rra

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"egi/internal/sax"
	"egi/internal/sequitur"
	"egi/internal/stat"
	"egi/internal/timeseries"
)

// Anomaly is one RRA result: a variable-length interval and its exact
// z-normalized 1-NN distance among same-length subsequences (higher =
// more anomalous).
type Anomaly struct {
	Pos    int
	Length int
	// RuleFreq is the usage count of the grammar rule the interval came
	// from; 0 marks an interval covered by no rule at all.
	RuleFreq int
	// Dist is the interval's 1-NN distance after refinement.
	Dist float64
}

// Config tunes Detect. Zero values select sensible defaults.
type Config struct {
	// Window is the SAX sliding window length. Required.
	Window int
	// Params are the discretization parameters (default w=4, a=4, the
	// GrammarViz generic choice).
	Params sax.Params
	// TopK is the number of anomalies to return (default 3).
	TopK int
	// MaxCandidates caps the number of rule intervals refined by the
	// exact distance search (default 200; rarest first).
	MaxCandidates int
}

func (c Config) normalized() (Config, error) {
	if c.Params.W == 0 {
		c.Params.W = 4
	}
	if c.Params.A == 0 {
		c.Params.A = 4
	}
	if c.TopK == 0 {
		c.TopK = 3
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 200
	}
	if c.Window < 2 {
		return c, fmt.Errorf("rra: window must be >= 2, got %d", c.Window)
	}
	if c.TopK < 1 {
		return c, errors.New("rra: topK must be >= 1")
	}
	return c, nil
}

// interval is a discord candidate: a span with the frequency of the rule
// that produced it.
type interval struct {
	pos, length int
	freq        int
}

// Detect runs RRA on the series.
func Detect(series timeseries.Series, cfg Config) ([]Anomaly, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if err := series.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window > len(series) {
		return nil, fmt.Errorf("rra: window %d exceeds series length %d", cfg.Window, len(series))
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	mr, err := sax.NewMultiResolver(cfg.Params.A)
	if err != nil {
		return nil, err
	}
	tokens, err := sax.Discretize(f, cfg.Window, cfg.Params, mr)
	if err != nil {
		return nil, err
	}
	words := make([]string, len(tokens))
	for i, t := range tokens {
		words[i] = t.Word
	}
	g, err := sequitur.Induce(words)
	if err != nil {
		return nil, err
	}

	cands := ruleIntervals(g, tokens, len(series), cfg.Window)
	if len(cands) == 0 {
		return nil, errors.New("rra: no candidate intervals (series too uniform?)")
	}
	// Rarest-first visiting order (the RRA heuristic); cap the number of
	// candidates handed to the quadratic refinement.
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].freq != cands[j].freq {
			return cands[i].freq < cands[j].freq
		}
		return cands[i].pos < cands[j].pos
	})
	if len(cands) > cfg.MaxCandidates {
		cands = cands[:cfg.MaxCandidates]
	}

	refined := refine(series, cands)
	sort.SliceStable(refined, func(i, j int) bool { return refined[i].Dist > refined[j].Dist })
	var out []Anomaly
	for _, a := range refined {
		if len(out) == cfg.TopK {
			break
		}
		overlaps := false
		for _, b := range out {
			if a.Pos < b.Pos+b.Length && b.Pos < a.Pos+a.Length {
				overlaps = true
				break
			}
		}
		if !overlaps {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("rra: refinement produced no anomalies")
	}
	return out, nil
}

// ruleIntervals converts every rule occurrence into a candidate interval
// tagged with the rule's usage count, and adds zero-frequency intervals
// for maximal stretches covered by no rule (the incompressible parts,
// which are the strongest anomaly candidates).
func ruleIntervals(g *sequitur.Grammar, tokens []sax.Token, seriesLen, window int) []interval {
	var out []interval
	covered := make([]bool, seriesLen)
	g.VisitOccurrences(func(rule, s, e int) {
		if s < 0 || e > len(tokens) || s >= e {
			return
		}
		lo := tokens[s].Pos
		hi := tokens[e-1].Pos + window
		if hi > seriesLen {
			hi = seriesLen
		}
		out = append(out, interval{pos: lo, length: hi - lo, freq: g.Rules[rule].Uses})
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
	})
	// Maximal uncovered runs -> zero-frequency candidates. Extend short
	// runs to at least one window so the refinement has enough points.
	i := 0
	for i < seriesLen {
		if covered[i] {
			i++
			continue
		}
		j := i
		for j < seriesLen && !covered[j] {
			j++
		}
		pos, length := i, j-i
		if length < window {
			length = window
			if pos+length > seriesLen {
				pos = seriesLen - length
			}
		}
		out = append(out, interval{pos: pos, length: length, freq: 0})
		i = j
	}
	return out
}

// refine computes, for each candidate interval, the exact z-normalized
// Euclidean distance to its nearest non-overlapping same-length
// subsequence, with early abandoning against the candidate's best-so-far.
func refine(series timeseries.Series, cands []interval) []Anomaly {
	out := make([]Anomaly, 0, len(cands))
	for _, c := range cands {
		if c.length < 2 || c.length > len(series) {
			continue
		}
		nn := nearestNeighborDist(series, c.pos, c.length)
		if math.IsInf(nn, 1) {
			continue // no valid non-self match exists
		}
		out = append(out, Anomaly{Pos: c.pos, Length: c.length, RuleFreq: c.freq, Dist: nn})
	}
	return out
}

// nearestNeighborDist is the exact 1-NN distance of the subsequence at
// [pos, pos+m) among all non-overlapping positions, with early abandon.
func nearestNeighborDist(series timeseries.Series, pos, m int) float64 {
	zq := stat.ZNormalize(series[pos:pos+m], sax.Eps)
	best := math.Inf(1)
	z := make([]float64, m)
	for q := 0; q+m <= len(series); q++ {
		if q < pos+m && pos < q+m { // overlap = trivial match
			continue
		}
		stat.ZNormalizeInto(z, series[q:q+m], sax.Eps)
		var acc float64
		abandoned := false
		for k := 0; k < m; k++ {
			d := zq[k] - z[k]
			acc += d * d
			if acc >= best*best {
				abandoned = true
				break
			}
		}
		if !abandoned {
			if d := math.Sqrt(acc); d < best {
				best = d
			}
		}
	}
	return best
}
