package quality

// Human rendering of a report — shared by `egibench -exp quality` and
// `tools/qualityjson` so the job log and the local tool print the same
// table.

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// latency renders a median latency, "-" for the -1 nothing-detected
// sentinel.
func latency(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// writeCells renders one cell table.
func writeCells(w io.Writer, cells []Cell, withRebase bool) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if withRebase {
		fmt.Fprintln(tw, "corpus\tconfig\trebase\tprec\trecall\tF1\tmed.latency\tTP/FP/FN")
	} else {
		fmt.Fprintln(tw, "corpus\tconfig\tprec\trecall\tF1\tmed.latency\tTP/FP/FN")
	}
	for _, c := range cells {
		if withRebase {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%.3f\t%.3f\t%s\t%d/%d/%d\n",
				c.Corpus, c.Config, c.Rebase, c.Precision, c.Recall, c.F1, latency(c.MedianLatency), c.TP, c.FP, c.FN)
		} else {
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\t%s\t%d/%d/%d\n",
				c.Corpus, c.Config, c.Precision, c.Recall, c.F1, latency(c.MedianLatency), c.TP, c.FP, c.FN)
		}
	}
	tw.Flush()
}

// WriteTable renders the whole report as the two human tables: the
// family-by-configuration grid and the RebaseEvery sweep.
func WriteTable(w io.Writer, r *Report) {
	fmt.Fprintf(w, "detection quality (seed %d, %d periods, %d anomalies per corpus)\n\n",
		r.Spec.Seed, r.Spec.Periods, r.Spec.Anomalies)
	writeCells(w, r.Grid, false)
	if len(r.RebaseSweep) > 0 {
		fmt.Fprintf(w, "\nRebaseEvery sweep (drifting families)\n")
		writeCells(w, r.RebaseSweep, true)
	}
}
