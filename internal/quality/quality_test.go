package quality

import (
	"bytes"
	"testing"

	"egi"
)

// TestReportByteDeterminism pins the harness determinism contract: two
// full harness runs (corpus generation, streaming detection across the
// whole config grid and the RebaseEvery sweep, JSON encoding) with the
// same spec must produce byte-identical BENCH_quality.json payloads.
func TestReportByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	gen := func() []byte {
		rep, err := Generate(smallSpec)
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := gen(), gen()
	if !bytes.Equal(a, b) {
		t.Fatalf("two harness runs with spec %+v differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", smallSpec, a, b)
	}
	rep, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Families) * len(GridConfigs()); len(rep.Grid) != want {
		t.Fatalf("grid has %d cells, want %d", len(rep.Grid), want)
	}
	if want := len(RebaseFamilies) * len(RebaseValues); len(rep.RebaseSweep) != want {
		t.Fatalf("rebase sweep has %d cells, want %d", len(rep.RebaseSweep), want)
	}
}

// TestStreamManagerQualityIdentity extends the batch/point bit-identity
// family to the quality path: the events the runner measures (chunked
// PushBatch through egi.Stream) must be identical to a per-point Push loop
// and to feeding the same corpus through egi.Manager.PushBatch — so the
// quality numbers describe every ingest face of the library, not one
// code path.
func TestStreamManagerQualityIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full streaming runs")
	}
	c, err := Burst(smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DetectorConfig{Name: "hop=w/2", HopDiv: 2}
	const seed = 99

	// Face 1: the runner (chunked PushBatch).
	_, runnerEvents, err := Run(c, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(runnerEvents) == 0 {
		t.Fatal("runner confirmed no events; corpus or config too weak for the identity test")
	}

	// Face 2: point-at-a-time Push.
	var pointEvents []egi.Anomaly
	opts := cfg.StreamOptions(c, seed)
	opts.OnAnomaly = func(a egi.Anomaly) { pointEvents = append(pointEvents, a) }
	s, err := egi.Stream(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range c.Series {
		if err := s.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Face 3: the serving layer — Manager.PushBatch in odd-sized chunks.
	m, err := egi.NewManager(egi.ManagerOptions{Stream: cfg.StreamOptions(c, seed)})
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := m.Subscribe("", 16)
	defer cancel()
	var managerEvents []egi.Anomaly
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			managerEvents = append(managerEvents, ev.Anomaly)
		}
	}()
	const chunk = 173
	for i := 0; i < len(c.Series); i += chunk {
		end := i + chunk
		if end > len(c.Series) {
			end = len(c.Series)
		}
		if err := m.PushBatch("q", c.Series[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	check := func(name string, got []egi.Anomaly) {
		t.Helper()
		if len(got) != len(runnerEvents) {
			t.Fatalf("%s: %d events, runner %d", name, len(got), len(runnerEvents))
		}
		for i, a := range got {
			r := runnerEvents[i]
			if a.Pos != r.Pos || a.Length != r.Length || a.Density != r.Density {
				t.Fatalf("%s: event %d = %+v, runner %+v", name, i, a, r)
			}
		}
	}
	check("per-point Push", pointEvents)
	check("Manager.PushBatch", managerEvents)
}
