package quality

import (
	"math"
	"testing"
)

// smallSpec keeps corpus tests fast; the full-size defaults are exercised
// by the committed BENCH_quality.json regeneration.
var smallSpec = CorpusSpec{Seed: 7, Periods: 20, Anomalies: 2}

func TestCorporaShape(t *testing.T) {
	corpora, err := Corpora(smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpora) != len(Families) {
		t.Fatalf("got %d corpora, want %d", len(corpora), len(Families))
	}
	for i, c := range corpora {
		if c.Family != Families[i] {
			t.Errorf("corpus %d: family %q, want %q", i, c.Family, Families[i])
		}
		if c.Window < 2 {
			t.Errorf("%s: window %d", c.Name, c.Window)
		}
		if len(c.Truth) != smallSpec.Anomalies {
			t.Errorf("%s: %d truth windows, want %d", c.Name, len(c.Truth), smallSpec.Anomalies)
		}
		for _, v := range c.Series {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite point", c.Name)
			}
		}
		prevEnd := -1
		for _, w := range c.Truth {
			if w.Pos < 0 || w.Length < 1 || w.Pos+w.Length > len(c.Series) {
				t.Errorf("%s: truth window %+v out of series [0,%d)", c.Name, w, len(c.Series))
			}
			if w.Pos <= prevEnd {
				t.Errorf("%s: truth windows overlap or unsorted at %+v", c.Name, w)
			}
			prevEnd = w.Pos + w.Length
		}
	}
}

func TestCorporaDeterministic(t *testing.T) {
	a, err := Corpora(smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpora(smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Series) != len(b[i].Series) {
			t.Fatalf("corpus %d shape differs across generations", i)
		}
		for j := range a[i].Series {
			if a[i].Series[j] != b[i].Series[j] {
				t.Fatalf("%s: point %d differs: %v vs %v", a[i].Name, j, a[i].Series[j], b[i].Series[j])
			}
		}
		if len(a[i].Truth) != len(b[i].Truth) {
			t.Fatalf("%s: truth count differs", a[i].Name)
		}
		for j := range a[i].Truth {
			if a[i].Truth[j] != b[i].Truth[j] {
				t.Fatalf("%s: truth %d differs", a[i].Name, j)
			}
		}
	}
	// A different seed must give a different workload.
	c, err := Corpora(CorpusSpec{Seed: 8, Periods: 20, Anomalies: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a[0].Series {
		if a[0].Series[j] != c[0].Series[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 7 and seed 8 produced an identical drift corpus")
	}
}

func TestLevelShiftHasPersistentSteps(t *testing.T) {
	c, err := LevelShift(smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	// The tail rides two +1 steps above the head: means of the clean
	// margins must differ by about 2.
	n := len(c.Series)
	head, tail := 0.0, 0.0
	k := n / 20
	for i := 0; i < k; i++ {
		head += c.Series[i]
		tail += c.Series[n-1-i]
	}
	if d := (tail - head) / float64(k); d < 1.5 {
		t.Fatalf("persistent level steps missing: head/tail mean delta %.2f, want about 2", d)
	}
}
