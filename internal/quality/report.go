package quality

// The report is the machine face of the harness: one Cell per (corpus,
// configuration) with precision/recall/F1 and median latency-to-detection,
// plus the RebaseEvery sweep on the drifting families, serialized as
// deterministic JSON (BENCH_quality.json). tools/qualityjson renders and
// compares these files.

import (
	"encoding/json"
	"fmt"
)

// Schema identifies the report layout for downstream tooling.
const Schema = "egi-quality/1"

// Cell is one (corpus, configuration) measurement.
type Cell struct {
	// Corpus and Family name the workload; Config the detector
	// parameterization; Rebase the RebaseEvery value as a label
	// ("adaptive" for the 0 default) — set only in the sweep.
	Corpus string `json:"corpus"`
	Family string `json:"family"`
	Config string `json:"config"`
	Rebase string `json:"rebase,omitempty"`
	// Window/BufLen/Hop/Ensemble are the resolved detector parameters;
	// Tolerance the matching tolerance; Points the series length.
	Window    int `json:"window"`
	BufLen    int `json:"buflen"`
	Hop       int `json:"hop"`
	Ensemble  int `json:"ensemble"`
	Tolerance int `json:"tolerance"`
	Points    int `json:"points"`
	// Truth counts planted anomaly windows; Events confirmed detector
	// events; TP/FP/FN the matching outcome.
	Truth  int `json:"truth"`
	Events int `json:"events"`
	TP     int `json:"tp"`
	FP     int `json:"fp"`
	FN     int `json:"fn"`
	// The quality metrics (see Metrics).
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	F1            float64 `json:"f1"`
	MedianLatency float64 `json:"median_latency"`
}

// Key identifies a cell across report generations — what -compare joins
// on.
func (c Cell) Key() string {
	if c.Rebase != "" {
		return c.Corpus + "|" + c.Config + "|rebase=" + c.Rebase
	}
	return c.Corpus + "|" + c.Config
}

// Report is one full harness run.
type Report struct {
	// Schema is the layout tag (Schema).
	Schema string `json:"schema"`
	// Spec reproduces the corpus sizing the run used.
	Spec CorpusSpec `json:"spec"`
	// Grid is corpus families x configurations.
	Grid []Cell `json:"grid"`
	// RebaseSweep is the RebaseEvery sweep over the drifting families.
	RebaseSweep []Cell `json:"rebase_sweep"`
}

// GridConfigs is the standard configuration grid: the zero-knob default,
// two lower-latency overlapping-hop settings, and the adaptive threshold.
func GridConfigs() []DetectorConfig {
	return []DetectorConfig{
		{Name: "defaults"},
		{Name: "hop=w/2", HopDiv: 2},
		{Name: "tight", BufFactor: 5, HopDiv: 4},
		{Name: "adaptive", HopDiv: 2, AdaptiveQuantile: 0.02},
	}
}

// RebaseValues are the swept RebaseEvery settings; 0 is the adaptive
// default.
var RebaseValues = []int{1, 0, 4, 16}

// RebaseFamilies are the drifting families the sweep runs on — the
// regimes where stale cross-hop grammar context could plausibly hurt.
var RebaseFamilies = []string{"drift", "noiseregime"}

// rebaseLabel renders a RebaseEvery value for the report.
func rebaseLabel(k int) string {
	if k == 0 {
		return "adaptive"
	}
	return fmt.Sprintf("%d", k)
}

// cell runs one (corpus, configuration) measurement.
func cell(c *Corpus, cfg DetectorConfig, seed int64) (Cell, error) {
	m, events, err := Run(c, cfg, seed)
	if err != nil {
		return Cell{}, err
	}
	opts := cfg.StreamOptions(c, seed)
	bufLen := opts.BufLen
	if bufLen == 0 {
		bufLen = 10 * c.Window
	}
	hop := opts.Hop
	if hop == 0 {
		hop = bufLen - c.Window + 1
	}
	ens := opts.EnsembleSize
	if ens == 0 {
		ens = 50
	}
	return Cell{
		Corpus: c.Name, Family: c.Family, Config: cfg.Name,
		Window: c.Window, BufLen: bufLen, Hop: hop, Ensemble: ens,
		Tolerance: Tolerance(c), Points: len(c.Series),
		Truth: len(c.Truth), Events: len(events),
		TP: m.TP, FP: m.FP, FN: m.FN,
		Precision: m.Precision, Recall: m.Recall, F1: m.F1,
		MedianLatency: m.MedianLatency,
	}, nil
}

// Generate runs the full harness — the standard grid over every corpus
// family, then the RebaseEvery sweep over the drifting families — and
// returns the report. It is sequential and seeded, so equal specs produce
// equal reports, byte for byte once encoded.
func Generate(spec CorpusSpec) (*Report, error) {
	spec = spec.normalized()
	corpora, err := Corpora(spec)
	if err != nil {
		return nil, err
	}
	rep := &Report{Schema: Schema, Spec: spec}
	for _, c := range corpora {
		for _, cfg := range GridConfigs() {
			cl, err := cell(c, cfg, spec.Seed)
			if err != nil {
				return nil, err
			}
			rep.Grid = append(rep.Grid, cl)
		}
	}
	sweepFamily := make(map[string]bool, len(RebaseFamilies))
	for _, f := range RebaseFamilies {
		sweepFamily[f] = true
	}
	for _, c := range corpora {
		if !sweepFamily[c.Family] {
			continue
		}
		for _, k := range RebaseValues {
			cfg := DetectorConfig{Name: "hop=w/2", HopDiv: 2, RebaseEvery: k}
			cl, err := cell(c, cfg, spec.Seed)
			if err != nil {
				return nil, err
			}
			cl.Rebase = rebaseLabel(k)
			rep.RebaseSweep = append(rep.RebaseSweep, cl)
		}
	}
	return rep, nil
}

// Encode serializes the report as the canonical BENCH_quality.json bytes:
// indented JSON with a trailing newline, deterministic for equal reports.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses Encode's output (or any JSON report).
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("quality: parsing report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("quality: unsupported report schema %q", r.Schema)
	}
	return &r, nil
}
