package quality

// The runner drives the real streaming push path — egi.Stream, PushBatch
// in serving-sized chunks, Flush at the end — not a batch shortcut, so the
// metrics measure exactly what a served stream would emit: confirmed
// events only, at their real confirmation positions. The batch/point/
// manager bit-identity properties (pinned by the stream and quality tests)
// make the chunking irrelevant to the result.

import (
	"fmt"

	"egi"
)

// pushChunk is the batch size the runner pushes with — the shape of one
// serving-layer ingest request.
const pushChunk = 256

// DetectorConfig is one grid cell's detector parameterization, expressed
// relative to the corpus's anomaly scale W so one config applies across
// corpora with different windows.
type DetectorConfig struct {
	// Name labels the configuration in the report, e.g. "hop=w/2".
	Name string
	// BufFactor sets BufLen = BufFactor*W; 0 selects the stream default
	// (10x the window).
	BufFactor int
	// HopDiv sets Hop = max(1, W/HopDiv); 0 selects the default hop
	// (BufLen-W+1, the DetectChunked stride).
	HopDiv int
	// AdaptiveQuantile, when nonzero, switches the event threshold to the
	// running-quantile mode (egi.StreamOptions.AdaptiveQuantile).
	AdaptiveQuantile float64
	// RebaseEvery is passed through to the detector: 0 adaptive, K >= 1
	// rebases the resumable grammars every K hop runs.
	RebaseEvery int
	// EnsembleSize overrides the ensemble size N; 0 keeps the paper
	// default (50).
	EnsembleSize int
}

// StreamOptions materializes the configuration against one corpus's
// window scale. Tests use it to build the identical detector the runner
// ran.
func (cfg DetectorConfig) StreamOptions(c *Corpus, seed int64) egi.StreamOptions {
	opts := egi.StreamOptions{
		Window:           c.Window,
		AdaptiveQuantile: cfg.AdaptiveQuantile,
		RebaseEvery:      cfg.RebaseEvery,
		EnsembleSize:     cfg.EnsembleSize,
		Seed:             seed,
	}
	if cfg.BufFactor > 0 {
		opts.BufLen = cfg.BufFactor * c.Window
	}
	if cfg.HopDiv > 0 {
		opts.Hop = c.Window / cfg.HopDiv
		if opts.Hop < 1 {
			opts.Hop = 1
		}
	}
	return opts
}

// Tolerance is the event-matching tolerance for a corpus: half its
// detection window. The detector reports the most anomalous window, which
// legitimately starts up to about half a window off the planted onset.
func Tolerance(c *Corpus) int { return c.Window / 2 }

// Run pushes the corpus through a fresh streaming detector under the
// given configuration and returns the matched quality metrics plus the
// raw confirmed events (with confirmation positions).
func Run(c *Corpus, cfg DetectorConfig, seed int64) (Metrics, []EventRecord, error) {
	var (
		s      *egi.Streamer
		events []EventRecord
	)
	opts := cfg.StreamOptions(c, seed)
	opts.OnAnomaly = func(a egi.Anomaly) {
		events = append(events, EventRecord{Pos: a.Pos, Length: a.Length, Density: a.Density, At: s.Total()})
	}
	s, err := egi.Stream(opts)
	if err != nil {
		return Metrics{}, nil, fmt.Errorf("quality: %s/%s: %w", c.Name, cfg.Name, err)
	}
	for i := 0; i < len(c.Series); i += pushChunk {
		end := i + pushChunk
		if end > len(c.Series) {
			end = len(c.Series)
		}
		if err := s.PushBatch(c.Series[i:end]); err != nil {
			return Metrics{}, nil, fmt.Errorf("quality: %s/%s at %d: %w", c.Name, cfg.Name, i, err)
		}
	}
	if err := s.Flush(); err != nil {
		return Metrics{}, nil, fmt.Errorf("quality: %s/%s flush: %w", c.Name, cfg.Name, err)
	}
	return Match(events, c.Truth, Tolerance(c)), events, nil
}
