// Package quality is the streaming detection-quality harness: labeled
// corpora with known anomaly windows, event-matching metrics (precision,
// recall, F1, latency-to-detection), and a runner that drives the real
// egi.Stream push path across a configuration grid. Where BENCH_stream.json
// tracks how fast the detector is, this package's BENCH_quality.json tracks
// whether it still finds the right anomalies, soon enough — so a perf PR
// cannot silently buy speed with worse or later detections.
//
// Everything is deterministic: a corpus is fully determined by its spec
// (seed, sizes), detection is seeded, and the runner is sequential, so two
// harness runs with the same spec produce byte-identical reports — a
// property the tests pin.
package quality

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"egi/internal/gen"
	"egi/internal/ucrsim"
)

// Window marks one ground-truth anomaly span [Pos, Pos+Length) in a corpus
// series.
type Window struct {
	// Pos is the onset: the first anomalous point.
	Pos int `json:"pos"`
	// Length is the span length in points.
	Length int `json:"length"`
}

// Corpus is one labeled streaming workload: a series plus the ground-truth
// anomaly windows planted in it.
type Corpus struct {
	// Name identifies the corpus (family plus variant), e.g. "drift/gunpoint".
	Name string
	// Family is the corpus family: drift, seasonality, burst, levelshift
	// or noiseregime.
	Family string
	// Window is the anomaly scale in points — what a detector should use
	// as its sliding window.
	Window int
	// Series is the workload, pushed point by point through the detector.
	Series []float64
	// Truth are the planted anomaly windows, sorted by position.
	Truth []Window
}

// CorpusSpec sizes the corpus set. The zero value selects the defaults
// (the committed-baseline size).
type CorpusSpec struct {
	// Seed determines every corpus byte-for-byte.
	Seed int64 `json:"seed"`
	// Periods is the number of background repetitions (cycles or
	// instances) per corpus; default 60.
	Periods int `json:"periods"`
	// Anomalies is the number of planted anomaly windows per corpus;
	// default 6.
	Anomalies int `json:"anomalies"`
}

func (s CorpusSpec) normalized() CorpusSpec {
	if s.Periods == 0 {
		s.Periods = 60
	}
	if s.Anomalies == 0 {
		s.Anomalies = 6
	}
	return s
}

// Families lists the corpus families in report order.
var Families = []string{"drift", "seasonality", "burst", "levelshift", "noiseregime"}

// Corpora generates the standard labeled corpus set, one corpus per
// family, fully determined by the spec.
func Corpora(spec CorpusSpec) ([]*Corpus, error) {
	spec = spec.normalized()
	gens := []func(CorpusSpec) (*Corpus, error){
		Drift, Seasonality, Burst, LevelShift, NoiseRegime,
	}
	out := make([]*Corpus, 0, len(gens))
	for _, g := range gens {
		c, err := g(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// anomalySlots draws count distinct background-slot indices in the middle
// band [15%, 90%) of n slots, every pair at least minGap slots apart, in
// ascending order. Slot granularity keeps planted windows aligned to the
// background period so the anomaly is the content, not a phase glitch at
// the paste boundary.
func anomalySlots(rng *rand.Rand, n, count, minGap int) ([]int, error) {
	lo, hi := int(0.15*float64(n)), int(0.9*float64(n))
	if hi <= lo {
		return nil, fmt.Errorf("quality: %d slots leave no anomaly band", n)
	}
	slots := make([]int, 0, count)
	const maxTries = 10000
	for tries := 0; len(slots) < count; tries++ {
		if tries > maxTries {
			return nil, fmt.Errorf("quality: cannot place %d anomalies in %d slots with gap %d", count, n, minGap)
		}
		s := lo + rng.Intn(hi-lo)
		ok := true
		for _, q := range slots {
			if abs(s-q) < minGap {
				ok = false
				break
			}
		}
		if ok {
			slots = append(slots, s)
		}
	}
	sort.Ints(slots)
	return slots, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Drift builds the drifting-baseline corpus: ucrsim GunPoint normal
// instances concatenated as in the paper's §7.1.1 protocol, with a linear
// mean drift of several signal amplitudes added across the whole series —
// the regime the RebaseEvery question is about, since cross-hop grammar
// context learned early describes a baseline that no longer exists later.
// Anomalies are instances of a non-normal class, like the batch evaluation
// plants.
func Drift(spec CorpusSpec) (*Corpus, error) {
	spec = spec.normalized()
	d, err := ucrsim.ByName("GunPoint")
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	L := d.SegmentLength
	slots, err := anomalySlots(rng, spec.Periods, spec.Anomalies, 3)
	if err != nil {
		return nil, err
	}
	anom := make(map[int]bool, len(slots))
	for _, s := range slots {
		anom[s] = true
	}
	series := make([]float64, 0, spec.Periods*L)
	truth := make([]Window, 0, len(slots))
	for s := 0; s < spec.Periods; s++ {
		class := 0
		if anom[s] {
			class = 1 + rng.Intn(d.NumClasses-1)
			truth = append(truth, Window{Pos: len(series), Length: L})
		}
		inst, err := d.Instance(rng, class)
		if err != nil {
			return nil, err
		}
		series = append(series, inst...)
	}
	// Linear drift worth ~4 instance amplitudes end to end: slow against
	// the window scale, so per-window z-normalization must absorb it.
	n := len(series)
	for i := range series {
		series[i] += 4 * float64(i) / float64(n)
	}
	return &Corpus{Name: "drift/gunpoint", Family: "drift", Window: L, Series: series, Truth: truth}, nil
}

// cyclicCorpus is the shared scaffold of the synthetic families: a
// repetitive gen.Cyclic carrier of `periods` cycles with anomaly windows
// planted at cycle-aligned slots by `plant`, which rewrites
// series[pos:pos+length] and returns the truth length actually planted.
func cyclicCorpus(spec CorpusSpec, name, family string, period int, noise float64, seedOff int64,
	plant func(rng *rand.Rand, series []float64, pos int) int) (*Corpus, error) {
	rng := rand.New(rand.NewSource(spec.Seed + seedOff))
	series, err := gen.Cyclic(spec.Periods*period, period, 3, noise, spec.Seed+seedOff)
	if err != nil {
		return nil, err
	}
	slots, err := anomalySlots(rng, spec.Periods, spec.Anomalies, 3)
	if err != nil {
		return nil, err
	}
	truth := make([]Window, 0, len(slots))
	for _, s := range slots {
		pos := s * period
		length := plant(rng, series, pos)
		truth = append(truth, Window{Pos: pos, Length: length})
	}
	return &Corpus{Name: name, Family: family, Window: period, Series: series, Truth: truth}, nil
}

// cyclicPeriod is the cycle length of the synthetic families.
const cyclicPeriod = 100

// Seasonality builds the seasonal corpus: a cyclic carrier whose amplitude
// is modulated by a slow season (about 7 cycles long), so the "normal"
// window content itself varies over time. Anomalies are half-cycle phase
// inversions — the waveform flips sign for one cycle, a shape no normal
// season produces.
func Seasonality(spec CorpusSpec) (*Corpus, error) {
	spec = spec.normalized()
	c, err := cyclicCorpus(spec, "seasonality/cyclic", "seasonality", cyclicPeriod, 0.05, 2,
		func(rng *rand.Rand, series []float64, pos int) int {
			for i := pos; i < pos+cyclicPeriod && i < len(series); i++ {
				series[i] = -series[i]
			}
			return cyclicPeriod
		})
	if err != nil {
		return nil, err
	}
	season := 7 * cyclicPeriod
	for i := range c.Series {
		c.Series[i] *= 1 + 0.3*math.Sin(2*math.Pi*float64(i)/float64(season))
	}
	return c, nil
}

// Burst builds the burst corpus: a quiet cyclic carrier with half-cycle
// windows of strong broadband noise planted on top — the sensor-glitch /
// load-spike shape.
func Burst(spec CorpusSpec) (*Corpus, error) {
	spec = spec.normalized()
	return cyclicCorpus(spec, "burst/cyclic", "burst", cyclicPeriod, 0.03, 3,
		func(rng *rand.Rand, series []float64, pos int) int {
			length := cyclicPeriod / 2
			for i := pos; i < pos+length && i < len(series); i++ {
				series[i] += 1.2 * rng.NormFloat64()
			}
			return length
		})
}

// LevelShift builds the level-shift corpus: one-cycle transient baseline
// excursions (+2 amplitudes, then back) are the anomalies, while two
// *persistent* baseline steps planted elsewhere are regime changes a good
// detector should absorb — they are deliberately absent from the ground
// truth, so every event they provoke costs precision.
func LevelShift(spec CorpusSpec) (*Corpus, error) {
	spec = spec.normalized()
	c, err := cyclicCorpus(spec, "levelshift/cyclic", "levelshift", cyclicPeriod, 0.05, 4,
		func(rng *rand.Rand, series []float64, pos int) int {
			for i := pos; i < pos+cyclicPeriod && i < len(series); i++ {
				series[i] += 2
			}
			return cyclicPeriod
		})
	if err != nil {
		return nil, err
	}
	// Two persistent regime steps in the clean margins (before/after the
	// anomaly band), far from every truth window.
	for _, frac := range []float64{0.10, 0.93} {
		from := int(frac * float64(len(c.Series)))
		for i := from; i < len(c.Series); i++ {
			c.Series[i] += 1
		}
	}
	return c, nil
}

// NoiseRegime builds the noise-regime corpus: the cyclic carrier rides on
// white noise whose sigma alternates between a quiet and a loud regime
// every five cycles (not anomalous). Anomalies are one-cycle dropouts —
// the signal flatlines at its last value, the stuck-sensor shape.
func NoiseRegime(spec CorpusSpec) (*Corpus, error) {
	spec = spec.normalized()
	c, err := cyclicCorpus(spec, "noiseregime/cyclic", "noiseregime", cyclicPeriod, 0.02, 5,
		func(rng *rand.Rand, series []float64, pos int) int {
			hold := series[pos]
			for i := pos; i < pos+cyclicPeriod && i < len(series); i++ {
				series[i] = hold + 0.01*rng.NormFloat64()
			}
			return cyclicPeriod
		})
	if err != nil {
		return nil, err
	}
	regimes, err := gen.NoiseRegimes(len(c.Series), 5*cyclicPeriod, []float64{0.02, 0.15}, spec.Seed+6)
	if err != nil {
		return nil, err
	}
	// Add regime noise outside the dropout windows only: a dropout means
	// the sensor is stuck, so it must stay flat.
	truthAt := make([]bool, len(c.Series))
	for _, t := range c.Truth {
		for i := t.Pos; i < t.Pos+t.Length && i < len(truthAt); i++ {
			truthAt[i] = true
		}
	}
	for i := range c.Series {
		if !truthAt[i] {
			c.Series[i] += regimes[i]
		}
	}
	return c, nil
}
