package quality

import (
	"math"
	"testing"
)

func TestMatchPerfect(t *testing.T) {
	truth := []Window{{Pos: 100, Length: 50}, {Pos: 300, Length: 50}}
	events := []EventRecord{
		{Pos: 110, Length: 50, At: 500},
		{Pos: 290, Length: 50, At: 700},
	}
	m := Match(events, truth, 25)
	if m.TP != 2 || m.FP != 0 || m.FN != 0 {
		t.Fatalf("got TP/FP/FN %d/%d/%d", m.TP, m.FP, m.FN)
	}
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("got P/R/F1 %v/%v/%v", m.Precision, m.Recall, m.F1)
	}
	// Latencies: 500-100=400 and 700-300=400 -> median 400.
	if m.MedianLatency != 400 {
		t.Fatalf("median latency %v, want 400", m.MedianLatency)
	}
}

func TestMatchMixed(t *testing.T) {
	truth := []Window{{Pos: 100, Length: 50}, {Pos: 500, Length: 50}}
	events := []EventRecord{
		{Pos: 120, Length: 40, At: 400},  // hits truth 0
		{Pos: 900, Length: 40, At: 1200}, // hits nothing
	}
	m := Match(events, truth, 10)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("got TP/FP/FN %d/%d/%d", m.TP, m.FP, m.FN)
	}
	if m.Precision != 0.5 || m.Recall != 0.5 {
		t.Fatalf("got P/R %v/%v", m.Precision, m.Recall)
	}
	if math.Abs(m.F1-0.5) > 1e-12 {
		t.Fatalf("got F1 %v", m.F1)
	}
	if m.MedianLatency != 300 {
		t.Fatalf("median latency %v, want 300", m.MedianLatency)
	}
}

func TestMatchTolerance(t *testing.T) {
	truth := []Window{{Pos: 1000, Length: 100}}
	// Event ends at 990: misses with tol 5, matches with tol 15.
	e := []EventRecord{{Pos: 940, Length: 50, At: 2000}}
	if m := Match(e, truth, 5); m.TP != 0 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("tol=5: got TP/FP/FN %d/%d/%d", m.TP, m.FP, m.FN)
	}
	if m := Match(e, truth, 15); m.TP != 1 || m.FP != 0 || m.FN != 0 {
		t.Fatalf("tol=15: got TP/FP/FN %d/%d/%d", m.TP, m.FP, m.FN)
	}
}

func TestMatchEarliestConfirmationWins(t *testing.T) {
	truth := []Window{{Pos: 100, Length: 100}}
	events := []EventRecord{
		{Pos: 150, Length: 50, At: 900},
		{Pos: 120, Length: 50, At: 600}, // earlier confirmation of the same truth
	}
	m := Match(events, truth, 0)
	if m.MedianLatency != 500 {
		t.Fatalf("median latency %v, want 500 (earliest confirming event)", m.MedianLatency)
	}
	if m.TP != 2 || m.FP != 0 {
		t.Fatalf("got TP/FP %d/%d", m.TP, m.FP)
	}
}

func TestMatchConventions(t *testing.T) {
	// No events at all: vacuously precise, zero recall against real truth.
	m := Match(nil, []Window{{Pos: 10, Length: 5}}, 0)
	if m.Precision != 1 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("no events: got P/R/F1 %v/%v/%v", m.Precision, m.Recall, m.F1)
	}
	if m.MedianLatency != -1 {
		t.Fatalf("no detections: median latency %v, want -1", m.MedianLatency)
	}
	// Clamped latency: an event confirmed before the truth onset counts 0.
	m = Match([]EventRecord{{Pos: 90, Length: 30, At: 95}}, []Window{{Pos: 100, Length: 50}}, 20)
	if m.MedianLatency != 0 {
		t.Fatalf("pre-onset confirmation: latency %v, want clamp to 0", m.MedianLatency)
	}
}
