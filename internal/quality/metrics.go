package quality

// Event matching: confirmed detector events are scored against a corpus's
// ground-truth windows. The matching is window-overlap with a tolerance —
// an event matches a truth window when the event's span, widened by the
// tolerance on both sides, overlaps the truth span. Tolerance exists
// because the detector reports the most anomalous *window position*, which
// legitimately sits up to about a window before or after the planted
// onset; the harness uses half a detection window.

import "egi/internal/eval"

// EventRecord is one confirmed anomaly event as the runner captured it:
// the event itself plus At, the stream position (points pushed so far) at
// the moment the event was confirmed — the quantity latency-to-detection
// is measured from.
type EventRecord struct {
	// Pos and Length locate the reported anomalous window in the stream.
	Pos, Length int
	// Density is the event's stitched score (lower = more anomalous).
	Density float64
	// At is the stream position when the event was confirmed. Confirmed
	// events are never retracted, so At-Pos is the decision delay for
	// this window.
	At int
}

// Metrics is the detection-quality summary of one (corpus, configuration)
// cell.
type Metrics struct {
	// TP counts events that matched at least one truth window, FP those
	// that matched none, FN truth windows no event matched.
	TP, FP, FN int
	// Precision is TP / (TP + FP); 1 when no events were emitted
	// (vacuously precise).
	Precision float64
	// Recall is detected truths / all truths; 1 when there was no truth.
	Recall float64
	// F1 is the harmonic mean of Precision and Recall (0 when both are 0).
	F1 float64
	// MedianLatency is the median, over detected truth windows, of the
	// points between the truth onset and the stream position at which the
	// first matching event was confirmed; -1 when nothing was detected.
	MedianLatency float64
}

// Match scores events against truth windows with the given tolerance (in
// points, widening each event's span on both sides). Events and truths
// must be in stream order; the latency of a detected truth is taken from
// its earliest-confirmed matching event.
func Match(events []EventRecord, truth []Window, tol int) Metrics {
	var m Metrics
	detectedAt := make([]int, len(truth)) // confirming stream position, -1 = undetected
	for i := range detectedAt {
		detectedAt[i] = -1
	}
	for _, e := range events {
		lo, hi := e.Pos-tol, e.Pos+e.Length+tol
		hit := false
		for ti, t := range truth {
			if lo < t.Pos+t.Length && t.Pos < hi {
				hit = true
				if detectedAt[ti] < 0 || e.At < detectedAt[ti] {
					detectedAt[ti] = e.At
				}
			}
		}
		if hit {
			m.TP++
		} else {
			m.FP++
		}
	}
	var latencies []float64
	for ti, at := range detectedAt {
		if at < 0 {
			m.FN++
			continue
		}
		lat := float64(at - truth[ti].Pos)
		if lat < 0 {
			lat = 0
		}
		latencies = append(latencies, lat)
	}
	m.Precision = 1
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	m.Recall = 1
	if len(truth) > 0 {
		m.Recall = float64(len(truth)-m.FN) / float64(len(truth))
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	m.MedianLatency = -1
	if len(latencies) > 0 {
		m.MedianLatency = eval.Median(latencies)
	}
	return m
}
