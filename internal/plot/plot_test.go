package plot

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	s, err := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("sparkline %q has %d runes, want 8", s, utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("monotone ramp should start low and end high: %q", s)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("ramp sparkline not monotone: %q", s)
		}
	}
}

func TestSparklineDownsamples(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i)
	}
	s, err := Sparkline(values, 20)
	if err != nil {
		t.Fatal(err)
	}
	if utf8.RuneCountInString(s) != 20 {
		t.Fatalf("got %d runes, want 20", utf8.RuneCountInString(s))
	}
}

func TestSparklineConstantAndErrors(t *testing.T) {
	s, err := Sparkline([]float64{5, 5, 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if utf8.RuneCountInString(s) != 3 {
		t.Errorf("short input should shrink width: %q", s)
	}
	if _, err := Sparkline(nil, 10); err == nil {
		t.Error("empty values should error")
	}
	if _, err := Sparkline([]float64{1}, 0); err == nil {
		t.Error("zero width should error")
	}
}

func TestMarkerLine(t *testing.T) {
	line, err := MarkerLine([]Span{{Start: 50, End: 60}}, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(line) != 10 {
		t.Fatalf("marker line %q has length %d", line, len(line))
	}
	if line[5] != '^' {
		t.Errorf("expected marker at bucket 5: %q", line)
	}
	if strings.Count(line, "^") == 0 {
		t.Error("no markers rendered")
	}
	// Degenerate span ignored.
	empty, err := MarkerLine([]Span{{Start: 5, End: 5}}, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty, "^") {
		t.Error("empty span should render no markers")
	}
	if _, err := MarkerLine(nil, 0, 10); err == nil {
		t.Error("zero series length should error")
	}
}

func TestChart(t *testing.T) {
	rows, err := Chart([]float64{0, 1, 0, 1, 0, 1}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Every column must contain exactly one '*'.
	for c := 0; c < 6; c++ {
		count := 0
		for r := 0; r < 3; r++ {
			if rows[r][c] == '*' {
				count++
			}
		}
		if count != 1 {
			t.Errorf("column %d has %d stars", c, count)
		}
	}
	if _, err := Chart(nil, 5, 5); err == nil {
		t.Error("empty values should error")
	}
	if _, err := Chart([]float64{1}, 0, 5); err == nil {
		t.Error("zero width should error")
	}
}
