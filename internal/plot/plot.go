// Package plot renders small ASCII/Unicode charts of time series and rule
// density curves for the command-line tools — a terminal-sized nod to the
// GrammarViz visualization lineage of the paper.
package plot

import (
	"errors"
	"math"
	"strings"
)

// blocks are the eighth-height bar glyphs used by Sparkline.
var blocks = []rune("▁▂▃▄▅▆▇█")

// ErrBadSize is returned for non-positive chart dimensions.
var ErrBadSize = errors.New("plot: width and height must be positive")

// downsample reduces values to exactly width buckets by averaging; when
// len(values) < width every value becomes one bucket (width shrinks).
func downsample(values []float64, width int) []float64 {
	if len(values) <= width {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, width)
	for b := range out {
		lo := b * len(values) / width
		hi := (b + 1) * len(values) / width
		if hi == lo {
			hi = lo + 1
		}
		var s float64
		for _, v := range values[lo:hi] {
			s += v
		}
		out[b] = s / float64(hi-lo)
	}
	return out
}

// Sparkline renders values as one line of block glyphs, at most width
// characters wide. A constant series renders as mid-height bars.
func Sparkline(values []float64, width int) (string, error) {
	if width < 1 {
		return "", ErrBadSize
	}
	if len(values) == 0 {
		return "", errors.New("plot: no values")
	}
	ds := downsample(values, width)
	min, max := ds[0], ds[0]
	for _, v := range ds[1:] {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	var sb strings.Builder
	for _, v := range ds {
		idx := len(blocks) / 2
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String(), nil
}

// Span marks an interval of the original series, e.g. an anomaly.
type Span struct {
	Start, End int // [Start, End) in series coordinates
}

// MarkerLine renders a width-character line with '^' under every bucket
// that intersects one of the spans, for printing beneath a Sparkline of a
// series with the given length.
func MarkerLine(spans []Span, seriesLen, width int) (string, error) {
	if width < 1 || seriesLen < 1 {
		return "", ErrBadSize
	}
	if seriesLen < width {
		width = seriesLen
	}
	line := make([]rune, width)
	for i := range line {
		line[i] = ' '
	}
	for _, sp := range spans {
		if sp.Start >= sp.End {
			continue
		}
		lo := sp.Start * width / seriesLen
		hi := (sp.End - 1) * width / seriesLen
		for b := lo; b <= hi && b < width; b++ {
			if b >= 0 {
				line[b] = '^'
			}
		}
	}
	return string(line), nil
}

// Chart renders values as a height-row ASCII chart (rows top to bottom),
// at most width characters wide, using '*' for the curve.
func Chart(values []float64, width, height int) ([]string, error) {
	if width < 1 || height < 1 {
		return nil, ErrBadSize
	}
	if len(values) == 0 {
		return nil, errors.New("plot: no values")
	}
	ds := downsample(values, width)
	min, max := ds[0], ds[0]
	for _, v := range ds[1:] {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	rows := make([][]rune, height)
	for r := range rows {
		rows[r] = []rune(strings.Repeat(" ", len(ds)))
	}
	for c, v := range ds {
		level := 0
		if max > min {
			level = int((v - min) / (max - min) * float64(height-1))
		}
		rows[height-1-level][c] = '*'
	}
	out := make([]string, height)
	for r := range rows {
		out[r] = string(rows[r])
	}
	return out, nil
}
