// Package paramselect implements the GI-Select baseline of §7.1.3: choosing
// a single (PAA size, alphabet size) combination via an optimization
// procedure on a prefix of the series assumed to be normal, following the
// parameter-selection idea of GrammarViz 3.0 (Senin et al. 2018, reference
// [19] of the paper).
//
// The objective mirrors what that procedure optimizes: a good
// discretization should (a) compress the normal data well — repeated
// structure collapses into grammar rules — while (b) not collapsing
// everything into one token (over-coarse parameters) or leaving everything
// unique (over-fine parameters). We grid-search the same parameter ranges
// the ensemble samples from and score each combination on the sample by
//
//	score = cover · (1 - |R|/|tokens|)
//
// where cover is the fraction of sample points covered by at least one
// grammar rule and |R|/|tokens| is the grammar size relative to the token
// count (small for compressible discretizations). Degenerate runs (fewer
// than 2 tokens) score zero. This is a documented substitution — see
// DESIGN.md §2 — preserving the baseline's role: a plausible data-driven
// single parameter choice obtained without access to the anomaly.
package paramselect

import (
	"errors"
	"fmt"

	"egi/internal/grammar"
	"egi/internal/sax"
	"egi/internal/timeseries"
)

// DefaultSampleFraction is the fraction of the series used for selection;
// §7.1.3 uses 10% of the normal time series.
const DefaultSampleFraction = 0.1

// Config controls the grid search.
type Config struct {
	// Window is the sliding window length n. Required.
	Window int
	// WMax and AMax bound the grid [2, WMax] × [2, AMax]; defaults 10.
	WMax, AMax int
	// SampleFraction is the prefix fraction used for scoring; default 10%.
	SampleFraction float64
}

func (c Config) normalized() (Config, error) {
	if c.WMax == 0 {
		c.WMax = 10
	}
	if c.AMax == 0 {
		c.AMax = 10
	}
	if c.SampleFraction == 0 {
		c.SampleFraction = DefaultSampleFraction
	}
	switch {
	case c.Window < 2:
		return c, fmt.Errorf("paramselect: window must be >= 2, got %d", c.Window)
	case c.WMax < 2 || c.AMax < 2 || c.AMax > sax.MaxAlphabet:
		return c, fmt.Errorf("paramselect: invalid grid bounds w<=%d a<=%d", c.WMax, c.AMax)
	case c.SampleFraction <= 0 || c.SampleFraction > 1:
		return c, fmt.Errorf("paramselect: sample fraction %v outside (0,1]", c.SampleFraction)
	}
	return c, nil
}

// Selection is the result of the grid search.
type Selection struct {
	Params sax.Params
	Score  float64
	// Grid records the score of every evaluated combination, for
	// diagnostics and the Fig. 1-style sensitivity sweeps.
	Grid map[sax.Params]float64
}

// ErrSampleTooShort is returned when the scoring prefix is shorter than
// the window.
var ErrSampleTooShort = errors.New("paramselect: sample prefix shorter than window")

// Select grid-searches the parameter ranges on the series prefix and
// returns the best-scoring combination.
func Select(series timeseries.Series, cfg Config) (*Selection, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if err := series.Validate(); err != nil {
		return nil, err
	}
	sampleLen := int(cfg.SampleFraction * float64(len(series)))
	if sampleLen < cfg.Window+1 {
		sampleLen = cfg.Window + 1
	}
	if sampleLen > len(series) {
		return nil, fmt.Errorf("%w: need %d points, have %d", ErrSampleTooShort, sampleLen, len(series))
	}
	sample := series[:sampleLen]
	f, err := timeseries.NewFeatures(sample)
	if err != nil {
		return nil, err
	}
	wmax := cfg.WMax
	if wmax > cfg.Window {
		wmax = cfg.Window
	}
	mr, err := sax.NewMultiResolver(cfg.AMax)
	if err != nil {
		return nil, err
	}

	sel := &Selection{Grid: make(map[sax.Params]float64)}
	best := -1.0
	for w := 2; w <= wmax; w++ {
		for a := 2; a <= cfg.AMax; a++ {
			p := sax.Params{W: w, A: a}
			score := scoreParams(f, cfg.Window, p, mr)
			sel.Grid[p] = score
			if score > best {
				best = score
				sel.Params = p
				sel.Score = score
			}
		}
	}
	if best < 0 {
		return nil, errors.New("paramselect: no parameter combination evaluated")
	}
	return sel, nil
}

// scoreParams evaluates one combination on the sample; see the package
// comment for the objective.
func scoreParams(f *timeseries.Features, window int, p sax.Params, mr *sax.MultiResolver) float64 {
	res, err := grammar.DetectWithFeatures(f, window, p, mr, 1)
	if err != nil {
		return 0
	}
	if res.NumTokens < 2 {
		return 0 // everything collapsed into one token: no information
	}
	covered := 0
	for _, v := range res.Curve {
		if v > 0 {
			covered++
		}
	}
	cover := float64(covered) / float64(len(res.Curve))
	compression := 1 - float64(res.NumRules)/float64(res.NumTokens)
	if compression < 0 {
		compression = 0
	}
	return cover * compression
}
