package paramselect

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/timeseries"
)

func periodic(length, period int, seed int64) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.05*rng.NormFloat64()
	}
	return s
}

func TestSelectReturnsValidParams(t *testing.T) {
	s := periodic(4000, 50, 1)
	sel, err := Select(s, Config{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Params.W < 2 || sel.Params.W > 10 || sel.Params.A < 2 || sel.Params.A > 10 {
		t.Errorf("selected params %v outside grid", sel.Params)
	}
	if sel.Score <= 0 {
		t.Errorf("selected score %v, want > 0 on periodic data", sel.Score)
	}
	if len(sel.Grid) != 9*9 {
		t.Errorf("grid has %d entries, want 81", len(sel.Grid))
	}
	// The selected combination must hold the grid maximum.
	for p, sc := range sel.Grid {
		if sc > sel.Score {
			t.Errorf("grid entry %v score %v exceeds selected %v", p, sc, sel.Score)
		}
	}
}

func TestSelectGridRespectsWindow(t *testing.T) {
	s := periodic(2000, 8, 2)
	sel, err := Select(s, Config{Window: 8, WMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	for p := range sel.Grid {
		if p.W > 8 {
			t.Errorf("grid contains w=%d > window", p.W)
		}
	}
}

func TestSelectValidation(t *testing.T) {
	s := periodic(1000, 20, 3)
	if _, err := Select(s, Config{Window: 1}); err == nil {
		t.Error("window=1 should error")
	}
	if _, err := Select(s, Config{Window: 20, SampleFraction: 2}); err == nil {
		t.Error("fraction > 1 should error")
	}
	if _, err := Select(s, Config{Window: 20, AMax: 40}); err == nil {
		t.Error("amax > 26 should error")
	}
	if _, err := Select(timeseries.Series{1, 2}, Config{Window: 20}); err == nil {
		t.Error("series shorter than window should error")
	}
	if _, err := Select(timeseries.Series{}, Config{Window: 5}); err == nil {
		t.Error("empty series should error")
	}
}

func TestSelectUsesOnlyPrefix(t *testing.T) {
	// Corrupting the tail of the series must not change the selection when
	// the sample fraction confines scoring to the prefix.
	s := periodic(5000, 40, 4)
	sel1, err := Select(s, Config{Window: 40, SampleFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s2 := s.Clone()
	for i := 4000; i < 5000; i++ {
		s2[i] = 100
	}
	sel2, err := Select(s2, Config{Window: 40, SampleFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if sel1.Params != sel2.Params || sel1.Score != sel2.Score {
		t.Errorf("selection changed when only the tail changed: %+v vs %+v",
			sel1.Params, sel2.Params)
	}
}

func TestSelectConstantSeries(t *testing.T) {
	s := make(timeseries.Series, 1000)
	for i := range s {
		s[i] = 5
	}
	sel, err := Select(s, Config{Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Every combination scores zero on constant data; selection still
	// returns some combination with score 0 rather than failing.
	if sel.Score != 0 {
		t.Errorf("constant series score %v, want 0", sel.Score)
	}
}

func TestScoreDiscriminates(t *testing.T) {
	// On strongly periodic data, very coarse discretizations (w=2, a=2)
	// should not beat every finer one: the grid must contain variation.
	s := periodic(4000, 64, 5)
	sel, err := Select(s, Config{Window: 64, SampleFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, sc := range sel.Grid {
		distinct[sc] = true
	}
	if len(distinct) < 5 {
		t.Errorf("grid scores show almost no variation: %v distinct values", len(distinct))
	}
}
