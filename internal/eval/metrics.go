// Package eval implements the paper's evaluation protocol (§7.1): the
// Score measure of Eq. (5), HitRate, win/tie/loss counting, the five
// compared methods wrapped behind a common Detector interface, and the
// harness that generates planted test series and scores every method on
// them — the machinery behind Tables 4–14 and Figs. 1, 8 and 10.
package eval

import (
	"errors"
	"math"

	"egi/internal/stat"
)

// Score implements Eq. (5) of the paper:
//
//	Score = 1 - min(1, |PredictLocation - GTLocation| / GTLength)
//
// It is 1 when the predicted anomaly location matches the ground truth
// exactly and 0 when the two are at least one ground-truth-length apart.
func Score(predictPos, gtPos, gtLen int) float64 {
	if gtLen <= 0 {
		return 0
	}
	d := float64(abs(predictPos-gtPos)) / float64(gtLen)
	if d > 1 {
		d = 1
	}
	return 1 - d
}

// BestScore returns the maximum Eq. (5) Score over a method's ranked
// candidate positions — the per-series quantity the paper averages
// (§7.1.2 uses the best of the top-3 candidates).
func BestScore(candidates []int, gtPos, gtLen int) float64 {
	best := 0.0
	for _, p := range candidates {
		if s := Score(p, gtPos, gtLen); s > best {
			best = s
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// HitRate returns the fraction of per-series scores that are positive,
// i.e. the fraction of series where some candidate overlapped the ground
// truth (Table 5's measure).
func HitRate(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	hits := 0
	for _, s := range scores {
		if s > 0 {
			hits++
		}
	}
	return float64(hits) / float64(len(scores))
}

// WTL counts wins, ties and losses of method a over method b from paired
// per-series scores (Table 6's measure). Scores within tieTol count as
// ties; the paper treats exactly-equal scores as ties, so pass 0 to match.
func WTL(a, b []float64, tieTol float64) (wins, ties, losses int, err error) {
	if len(a) != len(b) {
		return 0, 0, 0, errors.New("eval: paired score slices must have equal length")
	}
	for i := range a {
		switch {
		case math.Abs(a[i]-b[i]) <= tieTol:
			ties++
		case a[i] > b[i]:
			wins++
		default:
			losses++
		}
	}
	return wins, ties, losses, nil
}

// MeanStd returns the mean and sample standard deviation of xs — used for
// the Table 12 repeated-evaluation summary.
func MeanStd(xs []float64) (mean, std float64) {
	return stat.Mean(xs), stat.Std(xs)
}

// Median returns the median of xs (the mean of the two central values for
// even lengths) without modifying xs, and 0 for an empty slice. The
// streaming quality harness summarizes latency-to-detection with it —
// unlike a mean, one pathological straggler cannot dominate the cell.
func Median(xs []float64) float64 {
	m, err := stat.Median(xs)
	if err != nil {
		return 0
	}
	return m
}
