package eval

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/ucrsim"
)

func TestScoreEq5(t *testing.T) {
	cases := []struct {
		pred, gt, gtLen int
		want            float64
	}{
		{100, 100, 50, 1},    // exact match
		{125, 100, 50, 0.5},  // half a length off
		{150, 100, 50, 0},    // one full length off
		{300, 100, 50, 0},    // far off, clamped
		{75, 100, 50, 0.5},   // symmetric
		{100, 100, 0, 0},     // degenerate gt length
		{99, 100, 100, 0.99}, // small offset, long gt
	}
	for _, c := range cases {
		if got := Score(c.pred, c.gt, c.gtLen); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Score(%d,%d,%d) = %v, want %v", c.pred, c.gt, c.gtLen, got, c.want)
		}
	}
}

func TestBestScore(t *testing.T) {
	got := BestScore([]int{500, 120, 90}, 100, 50)
	want := Score(90, 100, 50) // 0.8, the closest candidate
	if got != want {
		t.Errorf("BestScore = %v, want %v", got, want)
	}
	if BestScore(nil, 100, 50) != 0 {
		t.Error("no candidates should score 0")
	}
}

func TestHitRate(t *testing.T) {
	if got := HitRate([]float64{0, 0.5, 1, 0}); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	if HitRate(nil) != 0 {
		t.Error("empty scores should give 0")
	}
}

func TestWTL(t *testing.T) {
	a := []float64{1, 0.5, 0.2, 0.7}
	b := []float64{0.5, 0.5, 0.4, 0.6}
	w, ti, l, err := WTL(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 || ti != 1 || l != 1 {
		t.Errorf("WTL = %d/%d/%d, want 2/1/1", w, ti, l)
	}
	if _, _, _, err := WTL(a, b[:2], 0); err == nil {
		t.Error("unequal lengths should error")
	}
	// Tolerance turns near-equal into ties.
	w, ti, l, _ = WTL([]float64{0.50001}, []float64{0.5}, 0.001)
	if ti != 1 || w != 0 || l != 0 {
		t.Errorf("tolerant WTL = %d/%d/%d, want 0/1/0", w, ti, l)
	}
}

func TestRunDatasetPairsMethods(t *testing.T) {
	d, err := ucrsim.ByName("Wafer")
	if err != nil {
		t.Fatal(err)
	}
	dets := []Detector{
		Ensemble(EnsembleOptions{Size: 10}),
		GIFix(),
		Discord(),
	}
	cfg := RunConfig{NumSeries: 4, Seed: 11}
	res, err := RunDataset(d, dets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d methods, want 3", len(res))
	}
	for _, m := range res {
		if len(m.Scores) != 4 {
			t.Errorf("%s has %d scores, want 4", m.Name, len(m.Scores))
		}
		for i, s := range m.Scores {
			if s < 0 || s > 1 {
				t.Errorf("%s score[%d] = %v outside [0,1]", m.Name, i, s)
			}
		}
	}
	// Determinism: re-running with the same seed gives identical scores.
	res2, err := RunDataset(d, dets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		for j := range res[i].Scores {
			if res[i].Scores[j] != res2[i].Scores[j] {
				t.Fatalf("%s score %d differs across identical runs", res[i].Name, j)
			}
		}
	}
}

func TestEnsembleDetectsOnEasyDataset(t *testing.T) {
	// Trace anomalies are gross structural changes; the ensemble should
	// hit most of them even with a small ensemble (paper: HitRate 0.96).
	d, _ := ucrsim.ByName("Trace")
	dets := []Detector{Ensemble(EnsembleOptions{Size: 20})}
	res, err := RunDataset(d, dets, RunConfig{NumSeries: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hr := res[0].HitRate(); hr < 0.5 {
		t.Errorf("ensemble HitRate on Trace = %v, want >= 0.5", hr)
	}
}

func TestAllDetectorsRunOnAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	dets := []Detector{
		Ensemble(EnsembleOptions{Size: 8}),
		GIRandom(0, 0),
		GIFix(),
		GISelect(0, 0),
		Discord(),
	}
	for _, d := range ucrsim.All() {
		res, err := RunDataset(d, dets, RunConfig{NumSeries: 2, Seed: 17})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		for _, m := range res {
			if len(m.Scores) != 2 {
				t.Fatalf("%s/%s: %d scores", d.Name, m.Name, len(m.Scores))
			}
		}
	}
}

func TestBestBaseline(t *testing.T) {
	ms := []MethodScores{
		{Name: "a", Scores: []float64{0.1, 0.9, 0.3}},
		{Name: "b", Scores: []float64{0.5, 0.2, 0.3}},
	}
	best, err := BestBaseline(ms)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.9, 0.3}
	for i := range want {
		if best.Scores[i] != want[i] {
			t.Errorf("BestBaseline = %v, want %v", best.Scores, want)
		}
	}
	if _, err := BestBaseline(nil); err == nil {
		t.Error("empty methods should error")
	}
	if _, err := BestBaseline([]MethodScores{{Scores: []float64{1}}, {Scores: []float64{1, 2}}}); err == nil {
		t.Error("ragged methods should error")
	}
}

func TestExtraDetectorsRun(t *testing.T) {
	d, _ := ucrsim.ByName("GunPoint")
	planted, err := d.Generate(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range []Detector{HotSAX(), RRA()} {
		cands, err := det.Detect(planted.Series, d.SegmentLength, 3, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", det.Name, err)
		}
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates", det.Name)
		}
		gt := planted.Anomalies[0]
		if s := BestScore(cands, gt.Pos, gt.Length); s <= 0 {
			t.Logf("%s missed the planted anomaly (score 0) — acceptable but noted", det.Name)
		}
	}
}

func TestBestMethodByAvg(t *testing.T) {
	ms := []MethodScores{
		{Name: "a", Scores: []float64{0.1, 0.9}},  // avg 0.5
		{Name: "b", Scores: []float64{0.6, 0.55}}, // avg 0.575
	}
	best, err := BestMethodByAvg(ms)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "b" {
		t.Errorf("best method = %s, want b", best.Name)
	}
	if _, err := BestMethodByAvg(nil); err == nil {
		t.Error("empty methods should error")
	}
}

func TestRunMultiAnomaly(t *testing.T) {
	d, _ := ucrsim.ByName("Trace")
	det := Ensemble(EnsembleOptions{Size: 10})
	res, err := RunMultiAnomaly(d, det, 2, 20, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.Total != 2 {
			t.Errorf("total = %d, want 2", r.Total)
		}
		if r.Detected < 0 || r.Detected > r.Total {
			t.Errorf("detected = %d out of %d", r.Detected, r.Total)
		}
	}
}

func TestWindowFraction(t *testing.T) {
	d, _ := ucrsim.ByName("Wafer")
	dets := []Detector{GIFix()}
	// Window fraction 0.6 must still run (Tables 13-14 protocol).
	res, err := RunDataset(d, dets, RunConfig{NumSeries: 2, Seed: 1, WindowFraction: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Scores) != 2 {
		t.Fatal("scores missing")
	}
}

func TestGIRandomUsesRng(t *testing.T) {
	// Different rngs must be able to produce different parameter choices;
	// over several seeds the candidate sets should not all be identical.
	d, _ := ucrsim.ByName("GunPoint")
	planted, err := d.Generate(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	det := GIRandom(10, 10)
	distinct := map[int]bool{}
	for seed := int64(0); seed < 8; seed++ {
		cands, err := det.Detect(planted.Series, d.SegmentLength, 1, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		distinct[cands[0]] = true
	}
	if len(distinct) < 2 {
		t.Error("GI-Random produced identical results across all seeds; rng unused?")
	}
}
