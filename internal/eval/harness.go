package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"egi/internal/ucrsim"
)

// TopK is the number of ranked candidates every method returns in the
// paper's protocol (§7.1.2).
const TopK = 3

// DefaultNumSeries is the number of planted test series generated per
// dataset (§7.1.1).
const DefaultNumSeries = 25

// MethodScores holds one method's per-series best scores on one dataset,
// in series order (so scores of different methods pair up for WTL and the
// Fig. 10 scatter plots).
type MethodScores struct {
	Name   string
	Scores []float64
}

// AvgScore returns the Table 4 quantity: the mean of the per-series best
// scores.
func (m MethodScores) AvgScore() float64 {
	mean, _ := MeanStd(m.Scores)
	return mean
}

// HitRate returns the Table 5 quantity.
func (m MethodScores) HitRate() float64 { return HitRate(m.Scores) }

// RunConfig controls a dataset evaluation run.
type RunConfig struct {
	// NumSeries is the number of planted series to generate; default 25.
	NumSeries int
	// Seed makes the run reproducible: series i of a dataset is generated
	// from Seed+i, and each detector gets an independent rng per series.
	Seed int64
	// WindowFraction scales the sliding window relative to the planted
	// instance length (Tables 13–14 use 0.6–1.0); default 1.0.
	WindowFraction float64
	// Parallelism caps concurrent series evaluations; <= 0 = GOMAXPROCS.
	Parallelism int
}

func (c RunConfig) normalized() RunConfig {
	if c.NumSeries == 0 {
		c.NumSeries = DefaultNumSeries
	}
	if c.WindowFraction == 0 {
		c.WindowFraction = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunDataset evaluates every detector on cfg.NumSeries planted series of
// the dataset and returns per-method paired scores. All methods see
// exactly the same series; the sliding window is
// round(WindowFraction × SegmentLength).
func RunDataset(d *ucrsim.Dataset, detectors []Detector, cfg RunConfig) ([]MethodScores, error) {
	cfg = cfg.normalized()
	if len(detectors) == 0 {
		return nil, fmt.Errorf("eval: no detectors")
	}
	window := int(cfg.WindowFraction*float64(d.SegmentLength) + 0.5)
	if window < 2 {
		window = 2
	}

	out := make([]MethodScores, len(detectors))
	for i, det := range detectors {
		out[i] = MethodScores{Name: det.Name, Scores: make([]float64, cfg.NumSeries)}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	errs := make([]error, cfg.NumSeries)
	for si := 0; si < cfg.NumSeries; si++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(si int) {
			defer wg.Done()
			defer func() { <-sem }()
			genRng := rand.New(rand.NewSource(cfg.Seed + int64(si)))
			planted, err := d.Generate(genRng)
			if err != nil {
				errs[si] = fmt.Errorf("series %d: %w", si, err)
				return
			}
			gt := planted.Anomalies[0]
			for di, det := range detectors {
				detRng := rand.New(rand.NewSource(cfg.Seed + int64(si)*1000 + int64(di)))
				cands, err := det.Detect(planted.Series, window, TopK, detRng)
				if err != nil {
					errs[si] = fmt.Errorf("series %d, %s: %w", si, det.Name, err)
					return
				}
				out[di].Scores[si] = BestScore(cands, gt.Pos, gt.Length)
			}
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BestBaseline returns, per series, the pointwise maximum score across the
// given methods — "the best of the GI-Random, GI-Fix, and GI-Select
// methods for each dataset" used as the comparison target in Tables 7–9.
//
// The paper's wording admits either a per-dataset or per-series best; we
// take the pointwise (per-series) maximum, the stricter comparison.
func BestBaseline(methods []MethodScores) (MethodScores, error) {
	if len(methods) == 0 {
		return MethodScores{}, fmt.Errorf("eval: no methods")
	}
	n := len(methods[0].Scores)
	for _, m := range methods[1:] {
		if len(m.Scores) != n {
			return MethodScores{}, fmt.Errorf("eval: methods have unequal series counts")
		}
	}
	best := MethodScores{Name: "BestGI", Scores: make([]float64, n)}
	for i := 0; i < n; i++ {
		for _, m := range methods {
			if m.Scores[i] > best.Scores[i] {
				best.Scores[i] = m.Scores[i]
			}
		}
	}
	return best, nil
}

// BestMethodByAvg returns the method with the highest average score — the
// paper's reading of "the best of the GI-Random, GI-Fix, and GI-Select
// methods for each dataset" (§7.2): one method is chosen per dataset and
// then compared per series. This is the comparison target of Tables 7–9;
// BestBaseline above is the strictly harder per-series oracle, kept for
// the stress-test variant.
func BestMethodByAvg(methods []MethodScores) (MethodScores, error) {
	if len(methods) == 0 {
		return MethodScores{}, fmt.Errorf("eval: no methods")
	}
	best := methods[0]
	for _, m := range methods[1:] {
		if m.AvgScore() > best.AvgScore() {
			best = m
		}
	}
	return best, nil
}

// MultiAnomalyResult reports the §7.5 experiment for one series.
type MultiAnomalyResult struct {
	Detected int // ground-truth anomalies overlapped by some top-3 candidate
	Total    int
}

// RunMultiAnomaly reproduces §7.5: numSeries series, each numNormal
// normal instances with numAnomalies planted anomalies; a ground-truth
// anomaly counts as detected when it overlaps at least one of the top-3
// ranked candidates of the detector.
func RunMultiAnomaly(d *ucrsim.Dataset, det Detector, numSeries, numNormal, numAnomalies int, seed int64) ([]MultiAnomalyResult, error) {
	out := make([]MultiAnomalyResult, numSeries)
	for si := 0; si < numSeries; si++ {
		rng := rand.New(rand.NewSource(seed + int64(si)))
		planted, err := d.GenerateMulti(rng, numNormal, numAnomalies)
		if err != nil {
			return nil, err
		}
		cands, err := det.Detect(planted.Series, d.SegmentLength, TopK, rng)
		if err != nil {
			return nil, err
		}
		res := MultiAnomalyResult{Total: len(planted.Anomalies)}
		for _, gt := range planted.Anomalies {
			for _, p := range cands {
				if p < gt.Pos+gt.Length && gt.Pos < p+d.SegmentLength {
					res.Detected++
					break
				}
			}
		}
		out[si] = res
	}
	return out, nil
}
