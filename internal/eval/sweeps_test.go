package eval

import (
	"testing"

	"egi/internal/ucrsim"
)

func TestNewSeriesSet(t *testing.T) {
	d, _ := ucrsim.ByName("Wafer")
	ss, err := NewSeriesSet(d, 3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Planted) != 3 {
		t.Fatalf("got %d series", len(ss.Planted))
	}
	if ss.Window != d.SegmentLength {
		t.Errorf("window %d, want %d", ss.Window, d.SegmentLength)
	}
	// Window fraction scales the window but not the data.
	ss2, err := NewSeriesSet(d, 3, 0.6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ss2.Window != 90 {
		t.Errorf("fractional window %d, want 90", ss2.Window)
	}
	for i := range ss.Planted {
		if ss.Planted[i].Anomalies[0] != ss2.Planted[i].Anomalies[0] {
			t.Error("same seed must generate identical series regardless of window fraction")
		}
	}
	if _, err := NewSeriesSet(d, 0, 1, 7); err == nil {
		t.Error("numSeries=0 should error")
	}
}

func TestSeriesSetRunMatchesRunDataset(t *testing.T) {
	// The two evaluation paths must agree on deterministic detectors run
	// over the same seed and series.
	d, _ := ucrsim.ByName("GunPoint")
	det := GIFix()
	ss, err := NewSeriesSet(d, 3, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := ss.Run(det, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Scores) != 3 {
		t.Fatalf("got %d scores", len(ms.Scores))
	}
	for _, s := range ms.Scores {
		if s < 0 || s > 1 {
			t.Errorf("score %v outside [0,1]", s)
		}
	}
	// Determinism.
	ms2, err := ss.Run(det, 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms.Scores {
		if ms.Scores[i] != ms2.Scores[i] {
			t.Fatal("SeriesSet.Run not deterministic")
		}
	}
}

func TestSweepSizeTau(t *testing.T) {
	d, _ := ucrsim.ByName("Trace")
	ss, err := NewSeriesSet(d, 3, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{2, 5, 10}
	taus := []float64{0.2, 1.0}
	bySize, byTau, err := ss.SweepSizeTau(10, 10, 10, sizes, taus, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySize) != 3 || len(byTau) != 2 {
		t.Fatalf("got %d sizes, %d taus", len(bySize), len(byTau))
	}
	for _, n := range sizes {
		ms := bySize[n]
		if len(ms.Scores) != 3 {
			t.Fatalf("N=%d has %d scores", n, len(ms.Scores))
		}
		for _, s := range ms.Scores {
			if s < 0 || s > 1 {
				t.Errorf("N=%d score %v outside [0,1]", n, s)
			}
		}
	}
	for _, tau := range taus {
		for _, s := range byTau[tau].Scores {
			if s < 0 || s > 1 {
				t.Errorf("tau=%g score %v outside [0,1]", tau, s)
			}
		}
	}
}

func TestSweepSizeTauFullSizeMatchesEnsembleRun(t *testing.T) {
	// The N = maxSize entry of the sweep is an ordinary ensemble run, so
	// it must agree with the Ensemble detector given identical seeds.
	d, _ := ucrsim.ByName("Wafer")
	ss, err := NewSeriesSet(d, 2, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	bySize, _, err := ss.SweepSizeTau(10, 10, 12, []int{12}, nil, 13)
	if err != nil {
		t.Fatal(err)
	}
	det := Ensemble(EnsembleOptions{Size: 12})
	direct, err := ss.Run(det, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Scores {
		if bySize[12].Scores[i] != direct.Scores[i] {
			t.Errorf("series %d: sweep %v vs direct %v",
				i, bySize[12].Scores[i], direct.Scores[i])
		}
	}
}
