package eval

import (
	"math/rand"

	"egi/internal/core"
	"egi/internal/grammar"
	"egi/internal/hotsax"
	"egi/internal/matrixprofile"
	"egi/internal/paramselect"
	"egi/internal/rra"
	"egi/internal/sax"
	"egi/internal/timeseries"
)

// Detector is one anomaly detection method under evaluation: given a
// series, a sliding window length and the number of candidates wanted, it
// returns ranked candidate start positions (best first). The rng carries
// per-series randomness for stochastic methods (GI-Random's parameter
// draw, the ensemble's parameter sampling); deterministic methods ignore
// it.
type Detector struct {
	Name   string
	Detect func(s timeseries.Series, window, topK int, rng *rand.Rand) ([]int, error)
}

// candidatePositions projects grammar candidates to their start positions.
func candidatePositions(cands []grammar.Candidate) []int {
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.Pos
	}
	return out
}

// EnsembleOptions tunes the proposed-method detector; zero values select
// the paper's defaults (N=50, wmax=amax=10, tau=40%).
type EnsembleOptions struct {
	Size       int
	WMax, AMax int
	Tau        float64
	Combine    core.Combiner
	Normalize  core.Normalizer
}

// Ensemble returns the proposed ensemble grammar induction detector
// ("Proposed Approach" in Tables 4–6).
func Ensemble(opts EnsembleOptions) Detector {
	return Detector{
		Name: "Ensemble",
		Detect: func(s timeseries.Series, window, topK int, rng *rand.Rand) ([]int, error) {
			cfg := core.DefaultConfig(window)
			if opts.Size != 0 {
				cfg.Size = opts.Size
			}
			if opts.WMax != 0 {
				cfg.WMax = opts.WMax
			}
			if opts.AMax != 0 {
				cfg.AMax = opts.AMax
			}
			if opts.Tau != 0 {
				cfg.Tau = opts.Tau
			}
			cfg.Combine = opts.Combine
			cfg.Normalize = opts.Normalize
			cfg.TopK = topK
			cfg.Seed = rng.Int63()
			res, err := core.Detect(s, cfg)
			if err != nil {
				return nil, err
			}
			return candidatePositions(res.Candidates), nil
		},
	}
}

// GIRandom returns the GI-Random baseline: a single grammar-induction run
// with (w, a) drawn uniformly from the same ranges the ensemble samples
// (§7.1.3).
func GIRandom(wmax, amax int) Detector {
	if wmax == 0 {
		wmax = core.DefaultWMax
	}
	if amax == 0 {
		amax = core.DefaultAMax
	}
	return Detector{
		Name: "GI-Random",
		Detect: func(s timeseries.Series, window, topK int, rng *rand.Rand) ([]int, error) {
			w := wmax
			if w > window {
				w = window
			}
			p := sax.Params{W: 2 + rng.Intn(w-1), A: 2 + rng.Intn(amax-1)}
			res, err := grammar.Detect(s, window, p, nil, topK)
			if err != nil {
				return nil, err
			}
			return candidatePositions(res.Candidates), nil
		},
	}
}

// GIFix returns the GI-Fix baseline: a single run with the fixed generic
// parameter values w=4, a=4 reported as the popular choice in [20].
func GIFix() Detector {
	return Detector{
		Name: "GI-Fix",
		Detect: func(s timeseries.Series, window, topK int, rng *rand.Rand) ([]int, error) {
			p := sax.Params{W: 4, A: 4}
			if p.W > window {
				p.W = window
			}
			res, err := grammar.Detect(s, window, p, nil, topK)
			if err != nil {
				return nil, err
			}
			return candidatePositions(res.Candidates), nil
		},
	}
}

// GISelect returns the GI-Select baseline: a single run with (w, a) chosen
// by the optimization procedure of internal/paramselect on the first 10%
// of the series (normal data under the planting protocol).
func GISelect(wmax, amax int) Detector {
	if wmax == 0 {
		wmax = core.DefaultWMax
	}
	if amax == 0 {
		amax = core.DefaultAMax
	}
	return Detector{
		Name: "GI-Select",
		Detect: func(s timeseries.Series, window, topK int, rng *rand.Rand) ([]int, error) {
			sel, err := paramselect.Select(s, paramselect.Config{
				Window: window, WMax: wmax, AMax: amax,
			})
			if err != nil {
				return nil, err
			}
			res, err := grammar.Detect(s, window, sel.Params, nil, topK)
			if err != nil {
				return nil, err
			}
			return candidatePositions(res.Candidates), nil
		},
	}
}

// HotSAX returns the original discord discovery algorithm of Keogh et al.
// [9] as an additional baseline; the paper benchmarks STOMP but cites
// HOTSAX as the reference discord method. Not part of the default Tables
// 4–6 method set, available for cross-checks.
func HotSAX() Detector {
	return Detector{
		Name: "HOTSAX",
		Detect: func(s timeseries.Series, window, topK int, rng *rand.Rand) ([]int, error) {
			ds, err := hotsax.TopK(s, window, topK, hotsax.Options{Seed: rng.Int63()})
			if err != nil {
				return nil, err
			}
			out := make([]int, len(ds))
			for i, d := range ds {
				out[i] = d.Pos
			}
			return out, nil
		},
	}
}

// RRA returns the Rare Rule Anomaly detector of Senin et al. [18] — the
// paper's predecessor method with variable-length output — as an
// additional baseline.
func RRA() Detector {
	return Detector{
		Name: "RRA",
		Detect: func(s timeseries.Series, window, topK int, rng *rand.Rand) ([]int, error) {
			as, err := rra.Detect(s, rra.Config{Window: window, TopK: topK})
			if err != nil {
				return nil, err
			}
			out := make([]int, len(as))
			for i, a := range as {
				out[i] = a.Pos
			}
			return out, nil
		},
	}
}

// Discord returns the distance-based state-of-the-art baseline: top-k
// discords from the STOMP matrix profile [23] (§7.1.3).
func Discord() Detector {
	return Detector{
		Name: "Discord",
		Detect: func(s timeseries.Series, window, topK int, rng *rand.Rand) ([]int, error) {
			p, err := matrixprofile.STOMP(s, window, 0)
			if err != nil {
				return nil, err
			}
			ds := p.TopDiscords(topK)
			out := make([]int, len(ds))
			for i, d := range ds {
				out[i] = d.Pos
			}
			return out, nil
		},
	}
}
