package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"egi/internal/core"
	"egi/internal/timeseries"
	"egi/internal/ucrsim"
)

// SeriesSet is a fixed collection of planted test series for one dataset,
// generated once so that every method and every parameter setting is
// evaluated on identical data — the pairing Tables 6–14 and Fig. 10 rely
// on.
type SeriesSet struct {
	Dataset *ucrsim.Dataset
	Planted []*ucrsim.Planted
	// Window is the sliding window length handed to detectors
	// (WindowFraction × segment length).
	Window int
}

// NewSeriesSet generates numSeries planted series (seed+i for series i).
func NewSeriesSet(d *ucrsim.Dataset, numSeries int, windowFraction float64, seed int64) (*SeriesSet, error) {
	if numSeries < 1 {
		return nil, errors.New("eval: numSeries must be >= 1")
	}
	if windowFraction <= 0 {
		windowFraction = 1
	}
	window := int(windowFraction*float64(d.SegmentLength) + 0.5)
	if window < 2 {
		window = 2
	}
	ss := &SeriesSet{Dataset: d, Window: window, Planted: make([]*ucrsim.Planted, numSeries)}
	for i := range ss.Planted {
		p, err := d.Generate(rand.New(rand.NewSource(seed + int64(i))))
		if err != nil {
			return nil, err
		}
		ss.Planted[i] = p
	}
	return ss, nil
}

// Run evaluates one detector on every series (in parallel) and returns its
// per-series best scores.
func (ss *SeriesSet) Run(det Detector, seed int64) (MethodScores, error) {
	out := MethodScores{Name: det.Name, Scores: make([]float64, len(ss.Planted))}
	errs := make([]error, len(ss.Planted))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for si, p := range ss.Planted {
		wg.Add(1)
		sem <- struct{}{}
		go func(si int, p *ucrsim.Planted) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(seed + int64(si)*7919))
			cands, err := det.Detect(p.Series, ss.Window, TopK, rng)
			if err != nil {
				errs[si] = fmt.Errorf("series %d, %s: %w", si, det.Name, err)
				return
			}
			gt := p.Anomalies[0]
			out.Scores[si] = BestScore(cands, gt.Pos, gt.Length)
		}(si, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return MethodScores{}, err
		}
	}
	return out, nil
}

// SweepSizeTau evaluates the ensemble under several ensemble sizes N and
// selectivities τ while computing each series' member curves only once (at
// maxSize members): the size-N ensemble uses the first N members of the
// shuffled parameter draw — a uniform random subset — and each τ reuses
// all members. This reproduces Tables 10–12 at a fraction of the naive
// cost; the paper's Algorithm 1 semantics are unchanged because members
// are independent.
//
// Returned maps are keyed by N and by τ. Entries for τ use N = maxSize;
// entries for N use τ = core.DefaultTau.
func (ss *SeriesSet) SweepSizeTau(wmax, amax, maxSize int, sizes []int, taus []float64, seed int64) (map[int]MethodScores, map[float64]MethodScores, error) {
	if wmax == 0 {
		wmax = core.DefaultWMax
	}
	if amax == 0 {
		amax = core.DefaultAMax
	}
	if maxSize == 0 {
		maxSize = core.DefaultEnsembleSize
	}
	bySize := make(map[int]MethodScores, len(sizes))
	for _, n := range sizes {
		bySize[n] = MethodScores{Name: fmt.Sprintf("Ensemble(N=%d)", n), Scores: make([]float64, len(ss.Planted))}
	}
	byTau := make(map[float64]MethodScores, len(taus))
	for _, tau := range taus {
		byTau[tau] = MethodScores{Name: fmt.Sprintf("Ensemble(tau=%g)", tau), Scores: make([]float64, len(ss.Planted))}
	}

	errs := make([]error, len(ss.Planted))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for si, p := range ss.Planted {
		wg.Add(1)
		sem <- struct{}{}
		go func(si int, p *ucrsim.Planted) {
			defer wg.Done()
			defer func() { <-sem }()
			baseCfg := core.DefaultConfig(ss.Window)
			baseCfg.WMax, baseCfg.AMax = wmax, amax
			baseCfg.Size = maxSize
			// Derive the seed exactly as the Ensemble detector does from
			// its per-series rng, so a full-size sweep entry reproduces an
			// ordinary ensemble run bit-for-bit.
			baseCfg.Seed = rand.New(rand.NewSource(seed + int64(si)*7919)).Int63()
			baseCfg.Parallelism = 1 // outer loop already saturates the cores
			f, err := timeseries.NewFeatures(p.Series)
			if err != nil {
				errs[si] = err
				return
			}
			members, err := core.ComputeMembers(f, baseCfg)
			if err != nil {
				errs[si] = err
				return
			}
			gt := p.Anomalies[0]
			score := func(ms []core.MemberCurve, cfg core.Config) (float64, error) {
				res, err := core.CombineMembers(ms, cfg)
				if err != nil {
					if errors.Is(err, core.ErrNoUsableCurves) {
						return 0, nil
					}
					return 0, err
				}
				return BestScore(candidatePositions(res.Candidates), gt.Pos, gt.Length), nil
			}
			for _, n := range sizes {
				cfg := baseCfg
				if n < len(members) {
					cfg.Size = n
				}
				subset := members
				if n < len(members) {
					subset = members[:n]
				}
				s, err := score(subset, cfg)
				if err != nil {
					errs[si] = err
					return
				}
				bySize[n].Scores[si] = s
			}
			for _, tau := range taus {
				cfg := baseCfg
				cfg.Tau = tau
				s, err := score(members, cfg)
				if err != nil {
					errs[si] = err
					return
				}
				byTau[tau].Scores[si] = s
			}
		}(si, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return bySize, byTau, nil
}
