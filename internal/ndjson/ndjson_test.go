package ndjson

import (
	"errors"
	"strings"
	"testing"
)

func TestForEachParsesBothForms(t *testing.T) {
	in := "1.5\n\n{\"value\": -2}\n  3e2 \n{\"value\": 4, \"ts\": 9}\n"
	var got []float64
	var lines []int
	err := ForEach(strings.NewReader(in), "value", func(line int, v float64) error {
		got = append(got, v)
		lines = append(lines, line)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2, 300, 4}
	wantLines := []int{1, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] || lines[i] != wantLines[i] {
			t.Fatalf("point %d: (%v, line %d), want (%v, line %d)", i, got[i], lines[i], want[i], wantLines[i])
		}
	}
}

func TestForEachErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct{ name, in, wantSub string }{
		{"garbage", "1\nbogus\n", "line 2"},
		{"bare null", "1\nnull\n", "line 2"},
		{"null member", "{\"value\": null}\n", "line 1"},
		{"missing member", "{\"other\": 1}\n", "line 1"},
		{"string member", "{\"value\": \"x\"}\n", "line 1"},
	}
	for _, tc := range cases {
		err := ForEach(strings.NewReader(tc.in), "value", func(int, float64) error { return nil })
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestForEachWrapsCallbackError(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := ForEach(strings.NewReader("1\n2\n3\n"), "value", func(line int, v float64) error {
		if v == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 context", err)
	}
}

func TestForEachOverlongLine(t *testing.T) {
	in := "1\n" + strings.Repeat("9", maxLine+10) + "\n"
	err := ForEach(strings.NewReader(in), "value", func(int, float64) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "after line 1") {
		t.Fatalf("err = %v, want scanner error with line context", err)
	}
}
