// Package ndjson parses newline-delimited JSON point streams — the ingest
// format shared by cmd/egistream (stdin) and cmd/egiserve (HTTP bodies).
// One line is one point: either a bare JSON number, or a JSON object
// whose configured member holds the value. Keeping the parser in one
// place keeps the two surfaces bit-for-bit compatible, which the serving
// integration test relies on.
package ndjson

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Scanner buffer sizing: lines up to maxLine bytes are accepted.
const (
	initialBuf = 64 * 1024
	maxLine    = 1024 * 1024
)

// ForEach reads r line by line and calls fn with each point's 1-based
// line number and value, stopping at the first error. Blank lines are
// skipped (but still numbered). Parse errors, I/O errors and errors
// returned by fn all carry the line number; fn errors are returned
// wrapped, so callers can match the cause with errors.Is/As.
func ForEach(r io.Reader, field string, fn func(line int, v float64) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, initialBuf), maxLine)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		v, err := ParsePoint(text, field)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := fn(line, v); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		// Without the context a bufio error ("token too long") reads
		// like an internal failure rather than a bad input line.
		return fmt.Errorf("reading NDJSON after line %d: %w", line, err)
	}
	return nil
}

// ParsePoint decodes one NDJSON line: a bare JSON number, or an object
// whose field member is the value. JSON null is rejected explicitly —
// unmarshalling null into a float64 is a silent no-op that would inject
// a zero where a reading is missing.
func ParsePoint(text, field string) (float64, error) {
	if text == "null" {
		return 0, errors.New("point is JSON null")
	}
	var num float64
	if err := json.Unmarshal([]byte(text), &num); err == nil {
		return num, nil
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal([]byte(text), &obj); err != nil {
		return 0, fmt.Errorf("not a JSON number or object: %q", text)
	}
	raw, ok := obj[field]
	if !ok {
		return 0, fmt.Errorf("object has no %q member: %q", field, text)
	}
	if string(raw) == "null" {
		return 0, fmt.Errorf("member %q is JSON null: %q", field, text)
	}
	if err := json.Unmarshal(raw, &num); err != nil {
		return 0, fmt.Errorf("member %q is not a number: %q", field, text)
	}
	return num, nil
}
