// Package engine is the reusable detection core both faces of the library
// are thin layers over: the batch detectors (internal/core, egi.Detect /
// egi.DetectChunked) and the online detector (internal/stream, egi.Stream).
//
// An Engine owns one ensemble configuration's long-lived resources — the
// multi-resolution SAX resolver, the (w,a) parameter grid, per-member
// incremental discretization pipelines, and pooled hot-path scratch
// (coefficient/word buffers, per-member token, word and curve arenas) — and
// runs Algorithm 1 of the paper over *spans* of one logical series:
//
//	res, err := eng.DetectSpan(src, start, end, seed)
//
// src is any global-coordinate prefix-sum store (timeseries.Features for a
// series in memory, timeseries.RingFeatures for a bounded stream window).
// Because every window's SAX word is computed from range sums addressed by
// global position, a word is the same float-for-float no matter which span
// asks for it. That makes re-discretization incremental: when a hop shifts
// the span by H points, each member pipeline keeps the token sequence for
// the overlapping region and encodes only the H new suffix windows, with
// numerosity-reduction run state resumed at the seam — and the result is
// bit-identical to discretizing the new span from scratch (the property
// tests pin this).
//
// Grammar induction is amortized the same way: each member holds a
// resumable sequitur.Builder fed the incremental token suffix its pipeline
// produces, so a hop appends O(hop) tokens instead of re-inducing the
// O(span) sequence, and the rule density curve is computed from the live
// grammar restricted to the span (grammar.WindowedDensityInto). The
// builder's grammar is anchored at an epoch base at or before the span
// start; a rebase rebuilds it over exactly the current span — on a
// member's first run, on seams (token gaps, trimmed history), whenever
// consecutive spans share no windows (which keeps the default-hop
// schedule, and with it the stream == DetectChunked identity, bit-exact),
// and periodically per Config.RebaseEvery so rules anchored in expired
// tokens don't accumulate. Between rebases the grammar sees the tokens of
// every span since the epoch base — more context than a per-span
// induction; the amortized property tests pin that the resumable state is
// always exactly the grammar a from-scratch induction over the epoch's
// tokens would build. Curve combination then runs per span exactly as in
// the batch detector.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"egi/internal/grammar"
	"egi/internal/sax"
	"egi/internal/sequitur"
	"egi/internal/stat"
	"egi/internal/timeseries"
)

// Defaults used by the paper's experiments (§7, first paragraph).
const (
	DefaultEnsembleSize = 50
	DefaultWMax         = 10
	DefaultAMax         = 10
	DefaultTau          = 0.4
	DefaultTopK         = 3
)

// SeedStride separates the parameter-generation seeds of consecutive spans
// on a chunk/hop grid: span k runs with seed base + k*SeedStride. Batch
// chunking (core.DetectChunked) and streaming hop runs (internal/stream)
// share it, which is what makes a default-hop stream bit-compatible with
// the chunked batch detector.
const SeedStride = 1000003

// Combiner selects how the surviving normalized curves are merged.
type Combiner int

const (
	// CombineMedian is the paper's combiner: the pointwise median.
	CombineMedian Combiner = iota
	// CombineMean is the ablation alternative: the pointwise mean.
	CombineMean
)

// Normalizer selects how each surviving curve is rescaled before merging.
type Normalizer int

const (
	// NormalizeMax divides by the curve maximum (the paper's choice: zero
	// densities stay exactly zero).
	NormalizeMax Normalizer = iota
	// NormalizeMinMax is the ablation alternative the paper argues
	// against: (x-min)/(max-min) moves nonzero minima to zero.
	NormalizeMinMax
)

// Config parameterizes the ensemble detector. The zero value is not valid;
// fill in Window and rely on Normalized() for the rest.
type Config struct {
	// Window is the sliding window length n. Required.
	Window int
	// Size is the ensemble size N (number of (w,a) combinations).
	Size int
	// WMax and AMax bound the random parameter ranges [2, WMax] × [2, AMax].
	WMax, AMax int
	// Tau is the ensemble selectivity: the fraction of curves, ranked by
	// descending standard deviation, kept for combination. (0, 1].
	Tau float64
	// TopK is the number of ranked anomaly candidates to return.
	TopK int
	// Seed drives the random parameter generation; runs with equal Seed
	// and otherwise equal inputs are deterministic.
	Seed int64
	// Combine selects the curve combiner (median by default).
	Combine Combiner
	// Normalize selects the per-curve normalization (max by default).
	Normalize Normalizer
	// Parallelism caps the number of concurrent member
	// induction/density-curve computations; <= 0 means GOMAXPROCS.
	Parallelism int
	// RebaseEvery bounds how many spans a member's resumable induction
	// epoch may cover before its grammar is rebuilt over the current span
	// alone. 0 (the default) selects the adaptive schedule: rebase when
	// consecutive spans share no windows, and whenever the epoch's window
	// extent exceeds twice the span's — which keeps per-span semantics at
	// non-overlapping hop schedules (stream == DetectChunked stays
	// bit-exact) and amortized-O(hop) induction at overlapping ones.
	// K >= 1 rebases each member after K spans it participated in; larger
	// K retains more grammar context (and more token history in memory)
	// between rebuilds, K = 1 forces per-span induction everywhere.
	RebaseEvery int
	// RebuildEachRun forces every run to rebuild its members' induction
	// state from scratch over the epoch's full token range instead of
	// appending the new suffix, following the exact same rebase schedule.
	// It is the reference semantics of the amortized induction — the
	// property tests assert the two modes are bit-identical — at O(span)
	// induction cost per run; leave it off outside tests and ablations.
	// It needs the full epoch token history, so it cannot be combined
	// with FromScratch and owners must not TrimBefore positions the
	// current epoch base still needs.
	RebuildEachRun bool
	// FromScratch disables incremental re-discretization: every span
	// re-encodes all of its windows. Results are identical either way
	// (the property tests assert exactly that); the flag exists as the
	// ablation baseline and for the tests themselves. It does not affect
	// grammar induction, which consumes the same tokens in both modes.
	FromScratch bool
}

// Normalized returns the config with defaults filled in, or an error if a
// field is out of range. Callers that build long-lived detectors on top of
// Config (e.g. internal/stream) use it to surface configuration errors at
// construction time rather than on the first detection run.
func (c Config) Normalized() (Config, error) {
	if c.Size == 0 {
		c.Size = DefaultEnsembleSize
	}
	if c.WMax == 0 {
		c.WMax = DefaultWMax
	}
	if c.AMax == 0 {
		c.AMax = DefaultAMax
	}
	if c.Tau == 0 {
		c.Tau = DefaultTau
	}
	if c.TopK == 0 {
		c.TopK = DefaultTopK
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.Window < 2:
		return c, fmt.Errorf("engine: window must be >= 2, got %d", c.Window)
	case c.Size < 1:
		return c, fmt.Errorf("engine: ensemble size must be >= 1, got %d", c.Size)
	case c.WMax < 2:
		return c, fmt.Errorf("engine: wmax must be >= 2, got %d", c.WMax)
	case c.AMax < 2 || c.AMax > sax.MaxAlphabet:
		return c, fmt.Errorf("engine: amax must be in [2, %d], got %d", sax.MaxAlphabet, c.AMax)
	case c.Tau < 0 || c.Tau > 1:
		return c, fmt.Errorf("engine: tau must be in (0, 1], got %v", c.Tau)
	case c.TopK < 1:
		return c, fmt.Errorf("engine: topK must be >= 1, got %d", c.TopK)
	case c.RebaseEvery < 0:
		return c, fmt.Errorf("engine: rebase interval must be >= 0, got %d", c.RebaseEvery)
	case c.RebuildEachRun && c.FromScratch:
		return c, errors.New("engine: RebuildEachRun needs the incremental token history; it cannot be combined with FromScratch")
	}
	return c, nil
}

// Member records one ensemble member's run.
type Member struct {
	Params sax.Params // the (w, a) combination
	Std    float64    // standard deviation of its rule density curve
	Kept   bool       // survived the selectivity cut
}

// MemberCurve is one ensemble member's full output: its parameters, its
// rule density curve, and the curve's standard deviation (the selection
// statistic of Algorithm 1). Exposing members separately lets parameter
// sweeps (ensemble size N, selectivity τ) reuse the expensive induction
// work across settings.
type MemberCurve struct {
	Params sax.Params
	Curve  []float64
	Std    float64
}

// Result is the outcome of one ensemble detection over a span. Positions
// (curve indices, candidate starts) are span-local.
type Result struct {
	// Curve is the ensemble rule density curve d_e, each point in [0, 1].
	Curve []float64
	// Candidates are the ranked anomaly candidates (ascending density).
	Candidates []grammar.Candidate
	// Members documents every ensemble member, in generation order.
	Members []Member
}

// ErrNoUsableCurves is returned when every member produced a degenerate
// (zero-variance, zero-max) curve — e.g. on a constant span.
var ErrNoUsableCurves = errors.New("engine: no usable rule density curves (is the series constant?)")

// Source is the data access an Engine needs: constant-time range sums over
// a retained span of global positions. timeseries.Features (First()==0,
// whole series) and timeseries.RingFeatures (rolling window of a stream)
// both implement it.
type Source interface {
	// First is the earliest retained (queryable) position.
	First() int
	// End is the exclusive end of the retained positions.
	End() int
	RangeSum(p, q int) float64
	RangeSum2(p, q int) float64
}

// slot is the pooled per-member scratch: one slot per member index, reused
// across spans so the steady-state hot path performs no per-span
// allocations for tokens or curves.
type slot struct {
	tokens []sax.Token
	curve  []float64
}

// memberState is one (w,a) member's resumable induction state, surviving
// across spans like its discretization pipeline: the live grammar over the
// epoch's tokens, the global window position of every token fed (aligned
// with the builder's token indices — what maps rule occurrences back to
// stream positions), and the epoch bookkeeping driving the rebase
// schedule.
type memberState struct {
	b     *sequitur.Builder
	pos   []int // global window start per fed token
	base  int   // global window position the epoch is anchored at
	fedTo int   // last global window index fed into the builder
	runs  int   // spans participated in since the last rebase
}

// Engine runs the ensemble pipeline over spans of one logical series. It
// is not safe for concurrent use (its internal parallelism is confined to
// member execution within a call); give each goroutine its own Engine or
// serialize access.
type Engine struct {
	cfg Config
	mr  *sax.MultiResolver

	// Parameter generation: the full (w,a) grid in generation order and a
	// reseedable rng, so drawing a span's members allocates nothing.
	grid   []sax.Params
	draw   []sax.Params
	rng    *rand.Rand
	seqSel []*sax.IncrementalSeq // members' pipelines for the current span

	// Incremental per-member pipelines, keyed by (w,a), surviving across
	// spans. Bound source and high-water mark guard against misuse: a new
	// source or a regressing span end resets every pipeline.
	pipes   map[sax.Params]*sax.IncrementalSeq
	src     Source
	lastEnd int

	// Amortized per-member induction states, keyed and lifecycled like
	// pipes; inductSel is the members' states for the current span, in
	// generation order (selected serially in prepare so the member
	// goroutines never touch the map).
	induct    map[sax.Params]*memberState
	inductSel []*memberState

	// Pooled hot-path scratch.
	coeffs  []float64               // one PAA coefficient buffer (max w)
	ivals   []int                   // one breakpoint-interval buffer (max w)
	word    []byte                  // one word buffer (max w)
	byW     [][]*sax.IncrementalSeq // active extension groups per PAA size
	ext     []*sax.IncrementalSeq   // extension worklist
	slots   []slot                  // per-member arenas
	curves  []MemberCurve           // member outputs for the current span
	stds    []float64
	kept    [][]float64
	errs    []error
	sem     chan struct{}
	running sync.WaitGroup
}

// New builds an engine for the configuration. The returned engine has no
// bound data yet; the first DetectSpan/MemberCurves call binds it to a
// Source.
func New(cfg Config) (*Engine, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	mr, err := sax.NewMultiResolver(cfg.AMax)
	if err != nil {
		return nil, err
	}
	wmax := cfg.WMax
	if wmax > cfg.Window {
		wmax = cfg.Window
	}
	var grid []sax.Params
	for w := 2; w <= wmax; w++ {
		for a := 2; a <= cfg.AMax; a++ {
			grid = append(grid, sax.Params{W: w, A: a})
		}
	}
	return &Engine{
		cfg:    cfg,
		mr:     mr,
		grid:   grid,
		rng:    rand.New(rand.NewSource(0)),
		pipes:  make(map[sax.Params]*sax.IncrementalSeq),
		induct: make(map[sax.Params]*memberState),
		coeffs: make([]float64, wmax),
		ivals:  make([]int, wmax),
		word:   make([]byte, wmax),
		byW:    make([][]*sax.IncrementalSeq, wmax+1),
		sem:    make(chan struct{}, cfg.Parallelism),
	}, nil
}

// Config returns the engine's normalized configuration.
func (e *Engine) Config() Config { return e.cfg }

// drawParams reproduces core.GenerateParams for this engine's grid without
// allocating: reseed, copy the pristine grid into the draw scratch,
// shuffle, truncate to the ensemble size.
func (e *Engine) drawParams(seed int64) []sax.Params {
	e.rng.Seed(seed)
	e.draw = append(e.draw[:0], e.grid...)
	e.rng.Shuffle(len(e.draw), func(i, j int) { e.draw[i], e.draw[j] = e.draw[j], e.draw[i] })
	if e.cfg.Size < len(e.draw) {
		e.draw = e.draw[:e.cfg.Size]
	}
	return e.draw
}

// bind attaches the engine to a source, resetting every pipeline when the
// source changes or the span end regresses (the incremental invariants
// hold only along one monotonically advancing series).
func (e *Engine) bind(src Source, end int) {
	if src != e.src || end < e.lastEnd {
		// Drop every pipeline and induction state; each is rebuilt from
		// scratch at the next span that draws its parameters.
		for p := range e.pipes {
			delete(e.pipes, p)
		}
		for p := range e.induct {
			delete(e.induct, p)
		}
		e.src = src
	}
	e.lastEnd = end
}

// checkSpan validates a span request against the configuration and source.
func (e *Engine) checkSpan(src Source, start, end int) error {
	if src == nil {
		return errors.New("engine: nil source")
	}
	if end-start < e.cfg.Window {
		return fmt.Errorf("engine: span [%d,%d) shorter than window %d", start, end, e.cfg.Window)
	}
	if start < src.First() || end > src.End() {
		return fmt.Errorf("engine: span [%d,%d) outside retained [%d,%d)", start, end, src.First(), src.End())
	}
	if len(e.grid) == 0 {
		return errors.New("engine: no valid parameter combinations")
	}
	return nil
}

// prepare draws the span's members and brings every member pipeline up to
// date through the span's last window: stale pipelines are reset to the
// span start (re-discretizing from scratch), current ones encode only the
// new suffix windows.
func (e *Engine) prepare(src Source, start, end int, seed int64) []sax.Params {
	params := e.drawParams(seed)
	e.seqSel = e.seqSel[:0]
	e.inductSel = e.inductSel[:0]
	for _, p := range params {
		seq, ok := e.pipes[p]
		if !ok {
			seq = sax.NewIncrementalSeq(p, start)
			e.pipes[p] = seq
		}
		if e.cfg.FromScratch || seq.NextWin() < src.First() {
			seq.Reset(start)
		}
		e.seqSel = append(e.seqSel, seq)
		st, ok := e.induct[p]
		if !ok {
			st = &memberState{b: sequitur.NewBuilder()}
			e.induct[p] = st
		}
		e.inductSel = append(e.inductSel, st)
	}
	e.extend(src, e.seqSel, start, end)
	return params
}

// extend encodes every not-yet-encoded window up to the span's last one
// for each sequence, sharing one FastPAA evaluation per (window, PAA size)
// across all members with that PAA size — the §6.2 multi-resolution fast
// path, restated incrementally.
func (e *Engine) extend(src Source, seqs []*sax.IncrementalSeq, start, end int) {
	n := e.cfg.Window
	lastWin := end - n
	ext := e.ext[:0]
	for _, s := range seqs {
		if s.NextWin() <= lastWin {
			ext = append(ext, s)
		}
	}
	e.ext = ext
	if len(ext) == 0 {
		return
	}
	sort.SliceStable(ext, func(i, j int) bool { return ext[i].NextWin() < ext[j].NextWin() })
	for w := range e.byW {
		e.byW[w] = e.byW[w][:0]
	}
	next := 0
	for win := ext[0].NextWin(); win <= lastWin; win++ {
		for next < len(ext) && ext[next].NextWin() == win {
			w := ext[next].Params().W
			e.byW[w] = append(e.byW[w], ext[next])
			next++
		}
		// The window's mean/std depend only on the window, not the PAA
		// size; compute them once and share across the size groups.
		statsDone := false
		var mu, sigma float64
		for w := 2; w < len(e.byW); w++ {
			group := e.byW[w]
			if len(group) == 0 {
				continue
			}
			if !statsDone {
				mu, sigma = timeseries.MeanStd(src, win, win+n)
				statsDone = true
			}
			coeffs := e.coeffs[:w]
			if err := sax.FastPAAWith(src, win, n, w, mu, sigma, coeffs); err != nil {
				// Bounds were validated by checkSpan; the only remaining
				// errors are programming mistakes.
				panic(err)
			}
			// Breakpoint intervals depend on the coefficients alone, so
			// the group's members share one resolution and encode only
			// their alphabet's symbols from it.
			ivals := e.ivals[:w]
			if err := e.mr.Intervals(coeffs, ivals); err != nil {
				panic(err)
			}
			word := e.word[:w]
			for _, s := range group {
				if err := e.mr.WordAt(ivals, s.Params().A, word); err != nil {
					panic(err)
				}
				s.Append(word)
			}
		}
	}
}

// runMembers executes grammar induction and density-curve construction for
// every member of the span, concurrently, into the pooled slots. On return
// e.curves[i] is member i's output (curve storage owned by slot i).
func (e *Engine) runMembers(params []sax.Params, start, end int) error {
	n := e.cfg.Window
	lastWin := end - n
	for len(e.slots) < len(params) {
		e.slots = append(e.slots, slot{})
	}
	if cap(e.curves) < len(params) {
		e.curves = make([]MemberCurve, len(params))
	}
	e.curves = e.curves[:len(params)]
	if cap(e.errs) < len(params) {
		e.errs = make([]error, len(params))
	}
	errs := e.errs[:len(params)]
	for i := range errs {
		errs[i] = nil
	}
	for i := range params {
		e.running.Add(1)
		e.sem <- struct{}{}
		go func(i int) {
			defer e.running.Done()
			defer func() { <-e.sem }()
			sl := &e.slots[i]
			st := e.inductSel[i]
			if err := e.advanceInduction(st, e.seqSel[i], sl, start, lastWin); err != nil {
				errs[i] = err
				return
			}
			curve, err := grammar.WindowedDensityInto(sl.curve, st.b, st.pos, start, end, n)
			if err != nil {
				errs[i] = err
				return
			}
			sl.curve = curve
			e.curves[i] = MemberCurve{Params: params[i], Curve: curve, Std: stat.PopStd(curve)}
		}(i)
	}
	e.running.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rebuildInduction re-induces one member's grammar from scratch over the
// windows [anchor, lastWin]: the builder is reset (storage stays warm) and
// fed the pipeline's token sequence for that range, with the fed-position
// record rebuilt in global coordinates.
func (e *Engine) rebuildInduction(st *memberState, seq *sax.IncrementalSeq, sl *slot, anchor, lastWin int) error {
	var err error
	sl.tokens, err = seq.SpanTokens(sl.tokens[:0], anchor, lastWin)
	if err != nil {
		return err
	}
	st.b.Reset()
	st.pos = st.pos[:0]
	for _, tk := range sl.tokens {
		st.b.Push(tk.Word)
		st.pos = append(st.pos, anchor+tk.Pos)
	}
	return nil
}

// advanceInduction brings one member's resumable induction state up to
// date with the span whose windows are [start, lastWin]: either a rebase —
// reset the builder and re-induce exactly the span's token sequence,
// re-anchoring the epoch at the span start — or an incremental append of
// the tokens for the windows fed since the member's last participation.
// The rebase schedule (see Config.RebaseEvery) depends only on the span
// grid and the member's participation history, never on discretization
// mode or timing, which is what keeps FromScratch/incremental and
// RebuildEachRun/amortized runs bit-identical. It touches only this
// member's state, so members advance concurrently.
func (e *Engine) advanceInduction(st *memberState, seq *sax.IncrementalSeq, sl *slot, start, lastWin int) error {
	spanW := lastWin - start + 1
	fresh := st.b.Len() == 0
	// A gap in the fed windows (the span grid jumped past the default
	// stride, or the member's pipeline lost the history it would need)
	// forces a rebase: the epoch's token sequence must stay contiguous.
	rebase := fresh || st.base > start || start > st.fedTo+1 || st.fedTo < seq.TrimmedTo()-1
	if !rebase {
		if k := e.cfg.RebaseEvery; k > 0 {
			rebase = st.runs >= k
		} else {
			// Adaptive: per-span semantics when spans don't overlap; with
			// overlap, rebuild once the epoch extent doubles the span's,
			// which caps retained history at ~2 spans and amortizes the
			// O(span) rebuild over at least a span's worth of appends.
			rebase = start > st.fedTo || lastWin+1-st.base > 2*spanW
		}
	}
	if rebase {
		if err := e.rebuildInduction(st, seq, sl, start, lastWin); err != nil {
			return err
		}
		st.base, st.fedTo, st.runs = start, lastWin, 1
		return nil
	}
	if e.cfg.RebuildEachRun {
		// Reference semantics: re-induce the whole epoch from scratch,
		// keeping the existing anchor.
		if err := e.rebuildInduction(st, seq, sl, st.base, lastWin); err != nil {
			return err
		}
	} else if lastWin > st.fedTo {
		suffix, err := seq.Suffix(st.fedTo, lastWin)
		if err != nil {
			return err
		}
		last, _ := st.b.LastWord()
		for _, tk := range suffix {
			if tk.Word == last {
				// A re-emitted run head at a pipeline reset seam (the
				// numerosity run restarted mid-word); the canonical
				// continuation of the epoch's sequence skips it.
				continue
			}
			st.b.Push(tk.Word)
			st.pos = append(st.pos, tk.Pos)
			last = tk.Word
		}
	}
	if lastWin > st.fedTo {
		st.runs++
		st.fedTo = lastWin
	}
	return nil
}

// DetectSpan runs Algorithm 1 over the span [start, end) of the source,
// with the given parameter-generation seed, and returns the combined curve
// (span-local, values in [0,1]), the ranked candidates, and the member
// bookkeeping. Member curves are normalized in place inside pooled
// buffers; the returned Result owns fresh memory and survives further
// engine use.
func (e *Engine) DetectSpan(src Source, start, end int, seed int64) (*Result, error) {
	if err := e.checkSpan(src, start, end); err != nil {
		return nil, err
	}
	e.bind(src, end)
	params := e.prepare(src, start, end, seed)
	if err := e.runMembers(params, start, end); err != nil {
		return nil, err
	}
	return e.combinePooled(e.curves)
}

// MemberCurves runs only the member stage of the span (lines 4–8 of
// Algorithm 1) and returns one MemberCurve per drawn (w,a) combination, in
// generation order. The curves are fresh copies, safe to retain across
// further engine use — this is the entry point for parameter sweeps that
// recombine one member set under many (τ, combiner) settings.
func (e *Engine) MemberCurves(src Source, start, end int, seed int64) ([]MemberCurve, error) {
	if err := e.checkSpan(src, start, end); err != nil {
		return nil, err
	}
	e.bind(src, end)
	params := e.prepare(src, start, end, seed)
	if err := e.runMembers(params, start, end); err != nil {
		return nil, err
	}
	out := make([]MemberCurve, len(e.curves))
	for i, m := range e.curves {
		out[i] = MemberCurve{
			Params: m.Params,
			Curve:  append([]float64(nil), m.Curve...),
			Std:    m.Std,
		}
	}
	return out, nil
}

// MemoryFootprint is the engine's retained-memory accounting in bytes: the
// per-member incremental pipelines (tokens + word bytes), the per-member
// resumable induction states (grammar arena + tables + fed-position
// records, each bounded by the rebase schedule's epoch extent) plus the
// pooled hot-path scratch (per-member slots, parameter grid and draw
// buffer, coefficient/word buffers, combination scratch). It deliberately
// counts the deterministic, capacity-based footprint of the buffers the
// engine owns — the quantities its bounded-memory guarantees are about —
// rather than chasing Go runtime allocator truth. The dominant terms are
// the pipelines, induction states and slots, all bounded by the span
// length (times the bounded epoch factor) the owner feeds it, so a
// streaming owner's engine footprint plateaus once the hop schedule
// reaches steady state.
func (e *Engine) MemoryFootprint() int64 {
	var total int64
	for _, seq := range e.pipes {
		total += seq.MemoryBytes()
	}
	for _, st := range e.induct {
		total += st.b.MemoryBytes() + int64(cap(st.pos))*8
	}
	const tokenSize, stringHeader, memberCurveSize = 24, 16, 48
	for i := range e.slots {
		sl := &e.slots[i]
		total += int64(cap(sl.tokens))*tokenSize +
			int64(cap(sl.curve))*8
	}
	total += int64(cap(e.grid)+cap(e.draw)) * stringHeader // sax.Params: two ints
	total += int64(cap(e.coeffs)+cap(e.ivals))*8 + int64(cap(e.word))
	total += int64(cap(e.seqSel)+cap(e.ext)+cap(e.inductSel)) * 8
	for _, g := range e.byW {
		total += int64(cap(g)) * 8
	}
	total += int64(cap(e.curves)) * memberCurveSize
	total += int64(cap(e.stds)) * 8
	total += int64(cap(e.kept)) * tokenSize // slice headers
	total += int64(cap(e.errs)) * stringHeader
	return total
}

// PipeState is the portable form of one member's discretization pipeline,
// tagged with the member's parameters.
type PipeState struct {
	// Params is the member's (w, a) combination.
	Params sax.Params
	// Seq is the pipeline's captured token state.
	Seq sax.SeqState
}

// InductState is the portable form of one member's resumable induction
// state. The grammar itself is not walked: a Sequitur grammar is a lossless
// encoding of its pushed token sequence, so Words (the expanded sequence)
// plus a deterministic re-induction reproduce it exactly.
type InductState struct {
	// Params is the member's (w, a) combination.
	Params sax.Params
	// Base is the global window position the epoch is anchored at.
	Base int
	// FedTo is the last global window index fed into the builder.
	FedTo int
	// Runs counts spans participated in since the last rebase.
	Runs int
	// Pos is the global window start of every fed token, in push order.
	Pos []int
	// Words is the fed token sequence, in push order (len == len(Pos)).
	Words []string
}

// State is the engine's complete resumable state: everything that survives
// across spans. Scratch buffers and pooled arenas are deliberately absent —
// they are rebuilt on demand and carry no detection semantics. Members are
// sorted by (w, a) so equal engines produce equal states.
type State struct {
	// LastEnd is the high-water span end, guarding bind's regression check.
	LastEnd int
	// Pipes holds every member pipeline's state.
	Pipes []PipeState
	// Induct holds every member's resumable induction state.
	Induct []InductState
}

// State captures the engine's resumable state for serialization.
func (e *Engine) State() State {
	st := State{LastEnd: e.lastEnd}
	for p, seq := range e.pipes {
		st.Pipes = append(st.Pipes, PipeState{Params: p, Seq: seq.State()})
	}
	for p, ms := range e.induct {
		st.Induct = append(st.Induct, InductState{
			Params: p,
			Base:   ms.base,
			FedTo:  ms.fedTo,
			Runs:   ms.runs,
			Pos:    append([]int(nil), ms.pos...),
			Words:  ms.b.AppendSequence(nil),
		})
	}
	sortParams := func(a, b sax.Params) bool { return a.W < b.W || (a.W == b.W && a.A < b.A) }
	sort.Slice(st.Pipes, func(i, j int) bool { return sortParams(st.Pipes[i].Params, st.Pipes[j].Params) })
	sort.Slice(st.Induct, func(i, j int) bool { return sortParams(st.Induct[i].Params, st.Induct[j].Params) })
	return st
}

// RestoreState rebinds the engine to src and reinstates a captured state:
// pipelines are reconstructed from their token records and induction
// grammars re-induced from their fed sequences (bit-identical to the
// captured grammars, by the resumable property). The engine must be freshly
// constructed with the same configuration the state was captured under;
// subsequent DetectSpan calls continue exactly where the captured engine
// left off.
func (e *Engine) RestoreState(src Source, st State) error {
	if len(e.pipes) != 0 || len(e.induct) != 0 {
		return errors.New("engine: RestoreState needs a fresh engine")
	}
	for _, ps := range st.Pipes {
		e.pipes[ps.Params] = sax.RestoreSeq(ps.Seq)
	}
	for _, is := range st.Induct {
		if len(is.Pos) != len(is.Words) {
			return fmt.Errorf("engine: induction state %v: %d positions, %d words", is.Params, len(is.Pos), len(is.Words))
		}
		ms := &memberState{
			b:     sequitur.NewBuilder(),
			pos:   append([]int(nil), is.Pos...),
			base:  is.Base,
			fedTo: is.FedTo,
			runs:  is.Runs,
		}
		for _, w := range is.Words {
			ms.b.Push(w)
		}
		e.induct[is.Params] = ms
	}
	e.src = src
	e.lastEnd = st.LastEnd
	return nil
}

// TrimBefore tells every pipeline that no future span will start before
// stream position pos, letting them drop tokens (and their words) that
// precede it. Owners with a hop schedule call it after each span.
func (e *Engine) TrimBefore(pos int) {
	for _, seq := range e.pipes {
		seq.TrimBefore(pos)
	}
}

// combinePooled performs lines 9–14 of Algorithm 1 on the pooled member
// curves, normalizing survivors in place (the pooled buffers are reused
// next span anyway).
func (e *Engine) combinePooled(memberCurves []MemberCurve) (*Result, error) {
	return combine(memberCurves, e.cfg, true, e)
}

// Combine performs lines 9–14 of Algorithm 1 on caller-owned precomputed
// member curves: rank by standard deviation, keep the top tau fraction,
// normalize each survivor (into a copy — the inputs are not mutated),
// merge, and rank anomalies on the combined curve. Only cfg.Tau,
// cfg.Window, cfg.TopK, cfg.Combine and cfg.Normalize are used, so callers
// can sweep those cheaply over one set of members.
func Combine(memberCurves []MemberCurve, cfg Config) (*Result, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	return combine(memberCurves, cfg, false, nil)
}

func combine(memberCurves []MemberCurve, cfg Config, inPlace bool, e *Engine) (*Result, error) {
	if len(memberCurves) == 0 {
		return nil, errors.New("engine: no member curves")
	}
	members := make([]Member, len(memberCurves))
	var stds []float64
	if e != nil {
		stds = e.stds[:0]
	}
	for i, m := range memberCurves {
		members[i] = Member{Params: m.Params, Std: m.Std}
		stds = append(stds, m.Std)
	}
	if e != nil {
		e.stds = stds
	}

	keep := int(cfg.Tau * float64(len(memberCurves)))
	if keep < 1 {
		keep = 1
	}
	if keep > len(memberCurves) {
		keep = len(memberCurves)
	}
	order := stat.ArgSortDesc(stds)
	var kept [][]float64
	if e != nil {
		kept = e.kept[:0]
	}
	for _, idx := range order[:keep] {
		if stds[idx] <= 0 {
			// A flat curve carries no anomaly signal; never include it,
			// even if that leaves fewer than keep survivors.
			continue
		}
		members[idx].Kept = true
		curve := memberCurves[idx].Curve
		if inPlace {
			if cfg.Normalize == NormalizeMinMax {
				stat.MinMaxNormalizeInPlace(curve)
			} else {
				stat.NormalizeByMaxInPlace(curve)
			}
		} else {
			if cfg.Normalize == NormalizeMinMax {
				curve = stat.MinMaxNormalize(curve)
			} else {
				curve = stat.NormalizeByMax(curve)
			}
		}
		kept = append(kept, curve)
	}
	if e != nil {
		e.kept = kept
	}
	if len(kept) == 0 {
		return nil, ErrNoUsableCurves
	}

	var curve []float64
	var err error
	switch cfg.Combine {
	case CombineMean:
		curve, err = stat.ColumnMeans(kept)
	default:
		curve, err = stat.ColumnMedians(kept)
	}
	if err != nil {
		return nil, err
	}
	cands, err := grammar.RankAnomalies(curve, cfg.Window, cfg.TopK)
	if err != nil {
		return nil, err
	}
	return &Result{Curve: curve, Candidates: cands, Members: members}, nil
}
