package engine

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/timeseries"
)

// genSeries builds a noisy periodic series with a planted pulse.
func genSeries(length, period int, seed int64) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.15*rng.NormFloat64()
	}
	p := length / 2
	for i := p; i < p+period && i < length; i++ {
		s[i] = 1.4 - 2.8*math.Abs(float64(i-p)/float64(period)-0.5)
	}
	return s
}

func resultsEqual(t *testing.T, ctx string, a, b *Result) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: one result nil", ctx)
	}
	if a == nil {
		return
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths %d vs %d", ctx, len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("%s: curve[%d] %v vs %v", ctx, i, a.Curve[i], b.Curve[i])
		}
	}
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("%s: candidate counts %d vs %d", ctx, len(a.Candidates), len(b.Candidates))
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			t.Fatalf("%s: candidate %d %+v vs %+v", ctx, i, a.Candidates[i], b.Candidates[i])
		}
	}
	if len(a.Members) != len(b.Members) {
		t.Fatalf("%s: member counts %d vs %d", ctx, len(a.Members), len(b.Members))
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			t.Fatalf("%s: member %d %+v vs %+v", ctx, i, a.Members[i], b.Members[i])
		}
	}
}

// TestIncrementalMatchesFromScratch is the engine-seam property test: one
// long-lived engine reusing per-member pipelines across overlapping spans
// must produce, for every span, exactly the result of a fresh engine (or
// the same engine in FromScratch mode) discretizing that span from
// scratch — bit for bit — across random hop sizes, buffer lengths, member
// counts and seeds.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		window := 10 + rng.Intn(30)
		bufLen := 4*window + rng.Intn(8*window)
		hop := 1 + rng.Intn(bufLen-window+1)
		size := 3 + rng.Intn(18)
		length := bufLen + hop*(2+rng.Intn(6)) + rng.Intn(window)
		seed := rng.Int63n(1 << 30)

		series := genSeries(length, window, seed)
		f, err := timeseries.NewFeatures(series)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Window: window, Size: size, Seed: seed}
		inc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scratchCfg := cfg
		scratchCfg.FromScratch = true
		ref, err := New(scratchCfg)
		if err != nil {
			t.Fatal(err)
		}

		runIdx := 0
		for start := 0; start+window <= length; start += hop {
			end := start + bufLen
			if end > length {
				end = length
			}
			if end-start < window {
				break
			}
			spanSeed := seed + int64(runIdx)*SeedStride
			a, errA := inc.DetectSpan(f, start, end, spanSeed)
			b, errB := ref.DetectSpan(f, start, end, spanSeed)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("trial %d span [%d,%d): errors differ: %v vs %v", trial, start, end, errA, errB)
			}
			if errA != nil {
				if errA != ErrNoUsableCurves {
					t.Fatalf("trial %d span [%d,%d): %v", trial, start, end, errA)
				}
				continue
			}
			resultsEqual(t, "span", a, b)
			inc.TrimBefore(start + hop)
			runIdx++
		}
	}
}

// TestRingSourceMatchesFeatures: the rolling prefix-sum ring drives the
// engine to the same bits as whole-series Features over the same global
// span — the identity that lets the stream and the batch detector share
// results.
func TestRingSourceMatchesFeatures(t *testing.T) {
	const (
		window = 25
		bufLen = 150
		hop    = 40
		length = 700
	)
	series := genSeries(length, window, 7)
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := timeseries.NewRingFeatures(bufLen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: window, Size: 10, Seed: 3}
	viaRing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaFeat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	next := bufLen // first span once the buffer is full
	runIdx := 0
	for i, x := range series {
		if err := ring.Append(x); err != nil {
			t.Fatal(err)
		}
		if i+1 == next {
			start, end := i+1-bufLen, i+1
			spanSeed := int64(runIdx) * SeedStride
			a, errA := viaRing.DetectSpan(ring, start, end, spanSeed)
			b, errB := viaFeat.DetectSpan(f, start, end, spanSeed)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("span [%d,%d): errors differ: %v vs %v", start, end, errA, errB)
			}
			if errA == nil {
				resultsEqual(t, "ring-vs-features", a, b)
			}
			viaRing.TrimBefore(start + hop)
			viaFeat.TrimBefore(start + hop)
			next += hop
			runIdx++
		}
	}
}

// TestMemberCurvesMatchDetectSpan: the sweep entry point returns the same
// members the combined path consumes, and Combine on them reproduces
// DetectSpan.
func TestMemberCurvesMatchDetectSpan(t *testing.T) {
	series := genSeries(900, 30, 11)
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: 30, Size: 12, Seed: 5}
	e1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := e1.DetectSpan(f, 0, len(series), cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	members, err := e2.MemberCurves(f, 0, len(series), cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Combine(members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "members+combine", full, combined)
}

// TestCombineDoesNotMutateInputs: the standalone Combine normalizes into
// copies; sweep callers rely on reusing the member curves.
func TestCombineDoesNotMutateInputs(t *testing.T) {
	series := genSeries(600, 20, 13)
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: 20, Size: 8, Seed: 2}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	members, err := e.MemberCurves(f, 0, len(series), cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	before := make([][]float64, len(members))
	for i, m := range members {
		before[i] = append([]float64(nil), m.Curve...)
	}
	if _, err := Combine(members, cfg); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		for j := range m.Curve {
			if m.Curve[j] != before[i][j] {
				t.Fatalf("member %d curve mutated at %d", i, j)
			}
		}
	}
}

// TestSpanValidation: malformed spans are rejected up front.
func TestSpanValidation(t *testing.T) {
	series := genSeries(300, 20, 17)
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Window: 20, Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DetectSpan(f, 0, 10, 0); err == nil {
		t.Error("sub-window span should error")
	}
	if _, err := e.DetectSpan(f, -5, 100, 0); err == nil {
		t.Error("negative start should error")
	}
	if _, err := e.DetectSpan(f, 0, len(series)+1, 0); err == nil {
		t.Error("overlong span should error")
	}
	if _, err := e.DetectSpan(nil, 0, 100, 0); err == nil {
		t.Error("nil source should error")
	}
}

// TestConstantSpan: every member degenerates on a constant span and the
// engine reports ErrNoUsableCurves, like the batch detector.
func TestConstantSpan(t *testing.T) {
	series := make(timeseries.Series, 200)
	for i := range series {
		series[i] = 4
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Window: 20, Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DetectSpan(f, 0, len(series), 1); err != ErrNoUsableCurves {
		t.Fatalf("got %v, want ErrNoUsableCurves", err)
	}
}
