package engine

import (
	"math/rand"
	"testing"

	"egi/internal/timeseries"
)

// TestAmortizedMatchesRebuildEachRun is the amortized-induction property
// pin, the induction analogue of TestIncrementalMatchesFromScratch: across
// random hop sizes, buffer lengths, member counts, seeds and rebase
// intervals (adaptive and every-K), an engine that appends each span's new
// tokens to its members' resumable grammars must produce, span for span,
// exactly the result of an engine that rebuilds every member's grammar
// from scratch over the same epoch token range on every run — bit for bit.
// A third engine re-discretizing from scratch (FromScratch) must agree
// too, which exercises the numerosity seam between a reset pipeline and a
// resumed grammar feed.
func TestAmortizedMatchesRebuildEachRun(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		window := 10 + rng.Intn(30)
		bufLen := 4*window + rng.Intn(8*window)
		hop := 1 + rng.Intn(bufLen-window+1)
		size := 3 + rng.Intn(18)
		rebaseEvery := rng.Intn(5) // 0 = adaptive, else every K runs
		length := bufLen + hop*(2+rng.Intn(6)) + rng.Intn(window)
		seed := rng.Int63n(1 << 30)

		series := genSeries(length, window, seed)
		f, err := timeseries.NewFeatures(series)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Window: window, Size: size, Seed: seed, RebaseEvery: rebaseEvery}
		amortized, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rebuildCfg := cfg
		rebuildCfg.RebuildEachRun = true
		rebuilt, err := New(rebuildCfg)
		if err != nil {
			t.Fatal(err)
		}
		scratchCfg := cfg
		scratchCfg.FromScratch = true
		scratch, err := New(scratchCfg)
		if err != nil {
			t.Fatal(err)
		}

		runIdx := 0
		for start := 0; start+window <= length; start += hop {
			end := start + bufLen
			if end > length {
				end = length
			}
			if end-start < window {
				break
			}
			spanSeed := seed + int64(runIdx)*SeedStride
			a, errA := amortized.DetectSpan(f, start, end, spanSeed)
			b, errB := rebuilt.DetectSpan(f, start, end, spanSeed)
			c, errC := scratch.DetectSpan(f, start, end, spanSeed)
			if (errA == nil) != (errB == nil) || (errA == nil) != (errC == nil) {
				t.Fatalf("trial %d (hop=%d buf=%d K=%d) span [%d,%d): errors differ: %v vs %v vs %v",
					trial, hop, bufLen, rebaseEvery, start, end, errA, errB, errC)
			}
			if errA != nil {
				if errA != ErrNoUsableCurves {
					t.Fatalf("trial %d span [%d,%d): %v", trial, start, end, errA)
				}
				continue
			}
			resultsEqual(t, "amortized-vs-rebuilt", a, b)
			resultsEqual(t, "amortized-vs-fromscratch", a, c)
			// Production trimming on the amortized engine only: the
			// rebuild reference needs its epochs' full history.
			amortized.TrimBefore(start + hop)
			runIdx++
		}
	}
}

// TestRebaseEveryOneMatchesPerSpan: RebaseEvery=1 is the pre-amortization
// semantics — every span induces over exactly its own tokens — so at any
// hop it must agree bit-for-bit with the adaptive engine at the default
// (non-overlapping) hop grid, where the adaptive schedule also rebases
// every span.
func TestRebaseEveryOneMatchesPerSpan(t *testing.T) {
	const (
		window = 25
		bufLen = 160
		length = 900
	)
	hop := bufLen - window + 1 // default grid: spans share no windows
	series := genSeries(length, window, 23)
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := New(Config{Window: window, Size: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	perSpan, err := New(Config{Window: window, Size: 8, Seed: 4, RebaseEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	runIdx := 0
	for start := 0; start+window <= length; start += hop {
		end := start + bufLen
		if end > length {
			end = length
		}
		if end-start < window {
			break
		}
		spanSeed := int64(runIdx) * SeedStride
		a, errA := adaptive.DetectSpan(f, start, end, spanSeed)
		b, errB := perSpan.DetectSpan(f, start, end, spanSeed)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("span [%d,%d): errors differ: %v vs %v", start, end, errA, errB)
		}
		if errA == nil {
			resultsEqual(t, "adaptive-vs-K1", a, b)
		}
		runIdx++
	}
}

// TestFootprintCountsInductionState: the engine's footprint accounting
// includes the retained resumable-induction state (builder arenas/tables
// and fed-position records), so serving-layer byte budgets see it.
func TestFootprintCountsInductionState(t *testing.T) {
	series := genSeries(800, 25, 31)
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Window: 25, Size: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DetectSpan(f, 0, len(series), 0); err != nil {
		t.Fatal(err)
	}
	var induction int64
	for _, st := range e.induct {
		induction += st.b.MemoryBytes() + int64(cap(st.pos))*8
	}
	if induction <= 0 {
		t.Fatal("no induction state retained after a span")
	}
	total := e.MemoryFootprint()
	var pipes int64
	for _, seq := range e.pipes {
		pipes += seq.MemoryBytes()
	}
	if total < pipes+induction {
		t.Fatalf("footprint %d smaller than pipelines %d + induction state %d", total, pipes, induction)
	}
}

// TestRebaseConfigValidation: negative intervals and the incompatible
// RebuildEachRun+FromScratch pairing are rejected at construction.
func TestRebaseConfigValidation(t *testing.T) {
	if _, err := New(Config{Window: 20, RebaseEvery: -1}); err == nil {
		t.Error("negative RebaseEvery should be rejected")
	}
	if _, err := New(Config{Window: 20, RebuildEachRun: true, FromScratch: true}); err == nil {
		t.Error("RebuildEachRun+FromScratch should be rejected")
	}
}
