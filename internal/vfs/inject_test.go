package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestPassthrough: an unarmed Inject behaves exactly like the wrapped OS.
func TestPassthrough(t *testing.T) {
	dir := t.TempDir()
	inj := NewInject(nil)
	path := filepath.Join(dir, "a.txt")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := inj.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = (%q, %v)", got, err)
	}
	if inj.Ops() == 0 {
		t.Fatal("no operations counted")
	}
}

// TestFailAtSticky: every counted operation at or past the armed index
// fails, with the planned error visible through errors.Is, until Heal.
func TestFailAtSticky(t *testing.T) {
	dir := t.TempDir()
	inj := NewInject(nil)
	path := filepath.Join(dir, "f")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one")); err != nil { // op 1
		t.Fatal(err)
	}
	inj.FailAt(2, syscall.ENOSPC)
	for i := 0; i < 3; i++ { // ops 2..4 must all fail (sticky)
		if _, err := f.Write([]byte("two")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d after arming: err = %v, want ENOSPC", i, err)
		}
	}
	if !inj.Failing() {
		t.Fatal("Failing() = false while armed and past the index")
	}
	inj.Heal()
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write after Heal: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The failed writes never reached the file.
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "onethree" {
		t.Fatalf("file = (%q, %v), want \"onethree\"", got, err)
	}
}

// TestFailNext: arming relative to the current count fails exactly the
// next counted operation.
func TestFailNext(t *testing.T) {
	dir := t.TempDir()
	inj := NewInject(nil)
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailNext(syscall.EIO)
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
	inj.Heal()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestShortWrites: a failing write with ShortWrites on lands the first
// half of the buffer — the torn footprint the WAL must rewind.
func TestShortWrites(t *testing.T) {
	dir := t.TempDir()
	inj := NewInject(nil)
	path := filepath.Join(dir, "f")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	inj.ShortWrites(true)
	inj.FailNext(syscall.ENOSPC)
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n != 4 {
		t.Fatalf("short write reported %d bytes, want 4", n)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "abcd" {
		t.Fatalf("file = (%q, %v), want \"abcd\"", got, rerr)
	}
}

// TestMatchPath: only matching paths are counted and failed; everything
// else passes through even while armed.
func TestMatchPath(t *testing.T) {
	dir := t.TempDir()
	inj := NewInject(nil)
	inj.MatchPath(func(p string) bool { return strings.Contains(p, "victim") })
	inj.FailAt(0, syscall.EIO)
	if err := inj.MkdirAll(filepath.Join(dir, "bystander"), 0o755); err != nil {
		t.Fatalf("non-matching op failed: %v", err)
	}
	if err := inj.MkdirAll(filepath.Join(dir, "victim"), 0o755); !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching op: err = %v, want EIO", err)
	}
	if inj.Ops() != 1 {
		t.Fatalf("Ops() = %d, want 1 (only the matching op counts)", inj.Ops())
	}
}

// TestKinds: only operations in the mask are counted; OpenFile is
// classified OpCreate with O_CREATE and OpOpen without.
func TestKinds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInject(nil)
	inj.SetKinds(OpCreate)
	inj.FailAt(0, syscall.ENOSPC)
	if _, err := inj.Open(path); err != nil { // OpOpen: not in mask
		t.Fatalf("Open failed under OpCreate-only mask: %v", err)
	}
	if _, err := inj.ReadFile(path); err != nil { // OpRead: not in mask
		t.Fatalf("ReadFile failed under OpCreate-only mask: %v", err)
	}
	if _, err := inj.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("OpenFile with O_CREATE: err = %v, want ENOSPC", err)
	}
	if inj.Ops() != 1 {
		t.Fatalf("Ops() = %d, want 1", inj.Ops())
	}
}

// TestReadFaults: with OpsAll armed, reads and directory listings fail
// too — the shape of an unreadable stream directory at recovery.
func TestReadFaults(t *testing.T) {
	dir := t.TempDir()
	inj := NewInject(nil)
	inj.SetKinds(OpsAll)
	inj.FailAt(0, os.ErrPermission)
	if _, err := inj.ReadDir(dir); !errors.Is(err, os.ErrPermission) {
		t.Fatalf("ReadDir err = %v, want permission denied", err)
	}
	if _, err := inj.ReadFile(filepath.Join(dir, "f")); !errors.Is(err, os.ErrPermission) {
		t.Fatalf("ReadFile err = %v, want permission denied", err)
	}
}

// TestFailedCloseStillClosesInner: a planned Close failure must not leak
// the descriptor — the inner file is closed before the error is returned.
func TestFailedCloseStillClosesInner(t *testing.T) {
	dir := t.TempDir()
	inj := NewInject(nil)
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailNext(syscall.EIO)
	if err := f.Close(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Close err = %v, want EIO", err)
	}
	inj.Heal()
	// A second close of the inner *os.File reports it already closed —
	// proof the descriptor was released despite the injected error.
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("second Close err = %v, want ErrClosed", err)
	}
}
