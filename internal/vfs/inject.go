package vfs

import (
	"io/fs"
	"os"
	"sync"
)

// Op is a bitmask of filesystem operation kinds, used to select which
// operations an Inject counts and fails.
type Op uint32

// Operation kinds. OpCreate is an OpenFile call that may create
// (os.O_CREATE set); plain opens are OpOpen.
const (
	// OpWrite is File.Write.
	OpWrite Op = 1 << iota
	// OpSync is File.Sync.
	OpSync
	// OpClose is File.Close.
	OpClose
	// OpCreate is FS.OpenFile with os.O_CREATE.
	OpCreate
	// OpOpen is FS.Open or FS.OpenFile without os.O_CREATE.
	OpOpen
	// OpRename is FS.Rename.
	OpRename
	// OpRemove is FS.Remove and FS.RemoveAll.
	OpRemove
	// OpTruncate is FS.Truncate and File.Truncate.
	OpTruncate
	// OpMkdir is FS.MkdirAll.
	OpMkdir
	// OpRead is FS.ReadFile.
	OpRead
	// OpReadDir is FS.ReadDir.
	OpReadDir
)

// OpsMutating covers every operation that changes the disk — the set a
// full disk or dying device fails first, and the default Inject mask.
const OpsMutating = OpWrite | OpSync | OpClose | OpCreate | OpRename | OpRemove | OpTruncate | OpMkdir

// OpsAll covers every operation, reads included.
const OpsAll = OpsMutating | OpOpen | OpRead | OpReadDir

// Inject is an FS that wraps another FS and fails operations according to
// an armed plan: every counted operation whose 0-based index is >= the
// armed index fails with the planned error, until Heal. That "sticky"
// shape models real disk faults (a full disk stays full) and is what
// degraded-mode retry logic needs to prove healing. Safe for concurrent
// use.
//
// Only operations in the Kinds mask are counted and failed; everything
// else passes straight through. A failed operation does not reach the
// inner FS at all — except short writes, which write a prefix first, the
// footprint of a torn record.
type Inject struct {
	// FS is the wrapped filesystem; nil means OS.
	FS FS

	mu    sync.Mutex
	kinds Op
	match func(path string) bool
	ops   int64
	armed bool
	at    int64
	err   error
	short bool
}

// NewInject wraps inner (nil for the real OS) with the default
// OpsMutating mask and no armed fault.
func NewInject(inner FS) *Inject {
	if inner == nil {
		inner = OS{}
	}
	return &Inject{FS: inner, kinds: OpsMutating}
}

// SetKinds replaces the mask of operations that are counted and failed.
func (f *Inject) SetKinds(kinds Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kinds = kinds
}

// MatchPath restricts counting and failing to paths for which match
// returns true; nil matches everything.
func (f *Inject) MatchPath(match func(path string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.match = match
}

// Ops returns how many counted operations have been observed so far.
func (f *Inject) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// FailAt arms the fault: every counted operation with 0-based index >= at
// fails with err until Heal. Arming with the current Ops() value fails
// the very next counted operation.
func (f *Inject) FailAt(at int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed, f.at, f.err = true, at, err
}

// FailNext arms the fault starting at the next counted operation.
func (f *Inject) FailNext(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed, f.at, f.err = true, f.ops, err
}

// ShortWrites, when on, makes a failing Write first write half the buffer
// to the inner FS before returning the error — the torn-record footprint
// of a crash or device failure mid-write.
func (f *Inject) ShortWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.short = on
}

// Heal disarms the fault; subsequent operations succeed (and keep being
// counted).
func (f *Inject) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = false
}

// Failing reports whether the fault is currently armed and triggered.
func (f *Inject) Failing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.armed && f.ops >= f.at
}

// step counts one operation of the given kind against path and reports
// whether it must fail (and whether a failing write should be short).
func (f *Inject) step(kind Op, path string) (fail bool, err error, short bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.kinds&kind == 0 || (f.match != nil && !f.match(path)) {
		return false, nil, false
	}
	idx := f.ops
	f.ops++
	if f.armed && idx >= f.at {
		return true, f.err, f.short
	}
	return false, nil, false
}

// OpenFile counts as OpCreate when flag includes os.O_CREATE, OpOpen
// otherwise.
func (f *Inject) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	kind := OpOpen
	if flag&os.O_CREATE != 0 {
		kind = OpCreate
	}
	if fail, err, _ := f.step(kind, name); fail {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{f: file, fs: f}, nil
}

// Open counts as OpOpen.
func (f *Inject) Open(name string) (File, error) {
	if fail, err, _ := f.step(OpOpen, name); fail {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{f: file, fs: f}, nil
}

// ReadFile counts as OpRead.
func (f *Inject) ReadFile(name string) ([]byte, error) {
	if fail, err, _ := f.step(OpRead, name); fail {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.FS.ReadFile(name)
}

// ReadDir counts as OpReadDir.
func (f *Inject) ReadDir(name string) ([]fs.DirEntry, error) {
	if fail, err, _ := f.step(OpReadDir, name); fail {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.FS.ReadDir(name)
}

// MkdirAll counts as OpMkdir.
func (f *Inject) MkdirAll(path string, perm os.FileMode) error {
	if fail, err, _ := f.step(OpMkdir, path); fail {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.FS.MkdirAll(path, perm)
}

// Rename counts as OpRename; a failed rename leaves both paths untouched.
func (f *Inject) Rename(oldpath, newpath string) error {
	if fail, err, _ := f.step(OpRename, newpath); fail {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.FS.Rename(oldpath, newpath)
}

// Remove counts as OpRemove.
func (f *Inject) Remove(name string) error {
	if fail, err, _ := f.step(OpRemove, name); fail {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.FS.Remove(name)
}

// RemoveAll counts as OpRemove.
func (f *Inject) RemoveAll(path string) error {
	if fail, err, _ := f.step(OpRemove, path); fail {
		return &os.PathError{Op: "removeall", Path: path, Err: err}
	}
	return f.FS.RemoveAll(path)
}

// Truncate counts as OpTruncate.
func (f *Inject) Truncate(name string, size int64) error {
	if fail, err, _ := f.step(OpTruncate, name); fail {
		return &os.PathError{Op: "truncate", Path: name, Err: err}
	}
	return f.FS.Truncate(name, size)
}

// injectFile wraps an open file so its write-side operations run through
// the owning Inject's plan.
type injectFile struct {
	f  File
	fs *Inject
}

// Write counts as OpWrite. A planned failure normally writes nothing; with
// ShortWrites on, it writes the first half of p to the inner file before
// returning the error, so the file ends mid-record.
func (w *injectFile) Write(p []byte) (int, error) {
	if fail, err, short := w.fs.step(OpWrite, w.f.Name()); fail {
		werr := &os.PathError{Op: "write", Path: w.f.Name(), Err: err}
		if short && len(p) > 1 {
			n, innerErr := w.f.Write(p[:len(p)/2])
			if innerErr != nil {
				return n, innerErr
			}
			return n, werr
		}
		return 0, werr
	}
	return w.f.Write(p)
}

// Sync counts as OpSync; a planned failure does not reach the device.
func (w *injectFile) Sync() error {
	if fail, err, _ := w.fs.step(OpSync, w.f.Name()); fail {
		return &os.PathError{Op: "sync", Path: w.f.Name(), Err: err}
	}
	return w.f.Sync()
}

// Truncate counts as OpTruncate.
func (w *injectFile) Truncate(size int64) error {
	if fail, err, _ := w.fs.step(OpTruncate, w.f.Name()); fail {
		return &os.PathError{Op: "truncate", Path: w.f.Name(), Err: err}
	}
	return w.f.Truncate(size)
}

// Close counts as OpClose. On a planned failure the inner file is still
// closed — the kernel releases the descriptor even when close reports a
// deferred write-back error — and the planned error is returned.
func (w *injectFile) Close() error {
	if fail, err, _ := w.fs.step(OpClose, w.f.Name()); fail {
		if cerr := w.f.Close(); cerr != nil {
			return cerr
		}
		return &os.PathError{Op: "close", Path: w.f.Name(), Err: err}
	}
	return w.f.Close()
}

// Name returns the wrapped file's path.
func (w *injectFile) Name() string { return w.f.Name() }
