// Package vfs is the filesystem seam under the durability layer: the
// handful of os operations the write-ahead log and snapshot writer
// actually perform, behind an interface, so tests can inject failures —
// ENOSPC at the Nth write, a short write mid-record, a rename that never
// happens — deterministically and observe how the layers above degrade.
//
// Production code uses OS, a zero-cost passthrough to package os. Tests
// use Inject, which wraps any FS and fails operations according to an
// armed plan. Nothing in this package knows about WAL framing or streams;
// it is purely "the disk, but breakable on demand".
package vfs

import (
	"io/fs"
	"os"
)

// File is the subset of *os.File the durability layer writes through.
type File interface {
	// Write appends len(p) bytes, returning how many were written. A
	// failing disk may write a prefix (a short write) before erroring —
	// callers that frame records must be prepared to rewind.
	Write(p []byte) (int, error)
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Close closes the file, surfacing any deferred write-back error.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the durability layer uses. Every method
// mirrors the package-os function of the same name.
type FS interface {
	// OpenFile opens a file with the given flags and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file (or directory, for directory fsyncs) read-only.
	Open(name string) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file or empty directory.
	Remove(name string) error
	// RemoveAll deletes a path and everything under it.
	RemoveAll(path string) error
	// Truncate changes the size of the named file.
	Truncate(name string, size int64) error
}

// OS is the production FS: a stateless passthrough to package os.
type OS struct{}

// OpenFile opens a file via os.OpenFile.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Open opens a file via os.Open.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// ReadFile reads a whole file via os.ReadFile.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir lists a directory via os.ReadDir.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll creates a directory tree via os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Rename renames a path via os.Rename.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes a path via os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// RemoveAll deletes a tree via os.RemoveAll.
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

// Truncate resizes a file via os.Truncate.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
