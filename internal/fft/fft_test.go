package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestIsPowerOfTwo(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 6: false, 1024: true, 1023: false,
	}
	for n, want := range cases {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for n, want := range cases {
		if got := NextPowerOfTwo(n); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTransformRejectsNonPowerOfTwo(t *testing.T) {
	if err := Transform(make([]complex128, 3)); err == nil {
		t.Error("length 3 should error")
	}
	if err := Inverse(make([]complex128, 6)); err == nil {
		t.Error("length 6 should error")
	}
}

func TestTransformKnownDFT(t *testing.T) {
	// DFT of [1,0,0,0] is all ones; DFT of constant is an impulse.
	x := []complex128{1, 0, 0, 0}
	if err := Transform(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse DFT[%d] = %v, want 1", i, v)
		}
	}
	c := []complex128{2, 2, 2, 2}
	if err := Transform(c); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(c[0]-8) > 1e-12 {
		t.Errorf("constant DFT[0] = %v, want 8", c[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(c[i]) > 1e-12 {
			t.Errorf("constant DFT[%d] = %v, want 0", i, c[i])
		}
	}
}

func TestTransformMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := make([]complex128, n)
		for k := 0; k < n; k++ {
			var s complex128
			for j := 0; j < n; j++ {
				ang := -2 * math.Pi * float64(j*k) / float64(n)
				s += x[j] * cmplx.Exp(complex(0, ang))
			}
			want[k] = s
		}
		got := append([]complex128(nil), x...)
		if err := Transform(got); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, naive %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 8, 256, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		if err := Transform(y); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(y); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d round trip [%d] = %v, want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		na := 1 + rng.Intn(40)
		nb := 1 + rng.Intn(40)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, err := Convolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, na+nb-1)
		for i := range a {
			for j := range b {
				want[i+j] += a[i] * b[j]
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: conv[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestConvolveErrors(t *testing.T) {
	if _, err := Convolve(nil, []float64{1}); err == nil {
		t.Error("empty a should error")
	}
	if _, err := Convolve([]float64{1}, nil); err == nil {
		t.Error("empty b should error")
	}
}

func TestSlidingDotProducts(t *testing.T) {
	q := []float64{1, 2}
	s := []float64{1, 0, 2, 3}
	got, err := SlidingDotProducts(q, s)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 4, 8} // [1*1+2*0, 1*0+2*2, 1*2+2*3]
	if len(got) != 3 {
		t.Fatalf("got %d products, want 3", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("sliding dot = %v, want %v", got, want)
		}
	}
}

func TestSlidingDotProductsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(30)
		n := m + rng.Intn(200)
		q := make([]float64, m)
		s := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		got, err := SlidingDotProducts(q, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= n-m; i++ {
			var want float64
			for j := 0; j < m; j++ {
				want += q[j] * s[i+j]
			}
			if math.Abs(got[i]-want) > 1e-8 {
				t.Fatalf("trial %d offset %d: %v, want %v", trial, i, got[i], want)
			}
		}
	}
}

func TestSlidingDotProductsErrors(t *testing.T) {
	if _, err := SlidingDotProducts(nil, []float64{1}); err == nil {
		t.Error("empty query should error")
	}
	if _, err := SlidingDotProducts([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("query longer than series should error")
	}
}
