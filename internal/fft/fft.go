// Package fft provides an iterative radix-2 complex fast Fourier transform
// and the real-valued convolution built on it. It exists as the substrate
// for the MASS sliding-dot-product used by the STAMP matrix profile
// baseline (§2 of the paper); the stdlib has no FFT.
package fft

import (
	"errors"
	"math"
	"math/bits"
)

// ErrNotPowerOfTwo is returned by Transform for unsupported lengths.
var ErrNotPowerOfTwo = errors.New("fft: length must be a power of two")

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two >= n (n must be >= 1).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Transform computes the in-place forward FFT of x, whose length must be a
// power of two. The convention is X[k] = sum_j x[j] * exp(-2πi jk/n).
func Transform(x []complex128) error {
	return transform(x, false)
}

// Inverse computes the in-place inverse FFT of x (including the 1/n
// scaling), whose length must be a power of two.
func Inverse(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	inv := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= inv
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return ErrNotPowerOfTwo
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return nil
	}
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Cooley-Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1) computed via FFT in O((n+m) log(n+m)).
func Convolve(a, b []float64) ([]float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, errors.New("fft: empty input to Convolve")
	}
	outLen := len(a) + len(b) - 1
	n := NextPowerOfTwo(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	if err := Transform(fa); err != nil {
		return nil, err
	}
	if err := Transform(fb); err != nil {
		return nil, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	if err := Inverse(fa); err != nil {
		return nil, err
	}
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out, nil
}

// SlidingDotProducts returns, for every alignment i in [0, len(t)-len(q)],
// the dot product of q with t[i:i+len(q)] — the core of the MASS algorithm.
// It reverses q and convolves, costing O(n log n) independent of len(q).
func SlidingDotProducts(q, t []float64) ([]float64, error) {
	m, n := len(q), len(t)
	if m == 0 || n == 0 || m > n {
		return nil, errors.New("fft: query must be non-empty and no longer than the series")
	}
	rq := make([]float64, m)
	for i, v := range q {
		rq[m-1-i] = v
	}
	conv, err := Convolve(rq, t)
	if err != nil {
		return nil, err
	}
	// conv[m-1+i] = sum_j q[j]*t[i+j].
	out := make([]float64, n-m+1)
	copy(out, conv[m-1:m-1+len(out)])
	return out, nil
}
