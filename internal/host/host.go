// Package host defines the serving-tier seam: StreamHost is the
// interface a stream-serving node exposes — everything internal/manager
// provides to the public API and the HTTP server — so callers can run
// against one Manager or a whole routed fleet of them without knowing
// which. internal/router implements StreamHost over many member hosts;
// MigratableHost is the extra surface (export / import / release) a
// member must provide for the router to move streams between members
// live.
package host

import (
	"egi/internal/manager"
	"egi/internal/stream"
)

// StreamHost is the serving surface of a stream-hosting node: ingest,
// queries, events, stats, durability operations, and lifecycle. Both
// *manager.Manager and *router.Router implement it; everything above the
// serving tier (the public egi API, egiserve, the quality and chaos
// harnesses) programs against this interface.
type StreamHost interface {
	// Open creates the stream if it does not exist yet; idempotent.
	Open(id string) error
	// OpenStream is Open with per-stream setting overrides, failing with
	// manager.ErrStreamConfig when the stream exists with different
	// effective settings.
	OpenStream(id string, ov manager.Overrides) error
	// Push appends one point to the stream, creating it on first use.
	Push(id string, x float64) error
	// PushBatch appends the points, in order, creating the stream on
	// first use.
	PushBatch(id string, xs []float64) error
	// PushBatchN is PushBatch reporting how many points were accepted
	// before any error.
	PushBatchN(id string, xs []float64) (int, error)
	// Anomalies returns the stream's current top-K ranking.
	Anomalies(id string) ([]stream.Event, error)
	// Subscribe registers for confirmed events of one stream ("" for
	// all); the cancel deregisters.
	Subscribe(id string, buf int) (<-chan manager.Event, func())
	// Stats snapshots every live stream plus rolled-up accounting.
	Stats() manager.Stats
	// StreamStats snapshots one live stream.
	StreamStats(id string) (manager.StreamStats, error)
	// CloseStream terminally closes the stream and returns its final
	// stats.
	CloseStream(id string) (manager.StreamStats, error)
	// EvictIdle evicts every stream idle past the configured horizon.
	EvictIdle() []manager.StreamStats
	// SnapshotStream forces a durability checkpoint of the stream now.
	SnapshotStream(id string) error
	// ReplayStream re-derives a stream's events from persisted state.
	ReplayStream(id string, fn func(hop int, ev stream.Event) error) (int, error)
	// RecoveryFailures lists streams quarantined by startup recovery.
	RecoveryFailures() []manager.RecoveryFailure
	// StreamIDs lists every held stream (live or hibernated), sorted.
	StreamIDs() []string
	// TotalBytes is the rolled-up memory footprint.
	TotalBytes() int64
	// Len is the number of live streams.
	Len() int
	// Close shuts the host down.
	Close() error
}

// MigratableHost is a StreamHost whose streams can be moved to another
// host: the router requires it of members so Resize and Drain can
// export a stream's versioned state, import it elsewhere, and release
// the source copy.
type MigratableHost interface {
	StreamHost
	// ExportStream captures the stream's complete portable state without
	// disturbing it.
	ExportStream(id string) (manager.StreamState, error)
	// ImportStream resumes exported state on this host; its durable
	// checkpoint is the migration commit point.
	ImportStream(st manager.StreamState) error
	// ReleaseStream discards this host's copy after a committed move.
	ReleaseStream(id string) error
}

var _ MigratableHost = (*manager.Manager)(nil)
