package wal

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pts(from, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(float64(from+i)) + float64(from+i)/1000
	}
	return out
}

// TestAppendRecover: points appended in batches come back exactly, in
// order, across close/reopen.
func TestAppendRecover(t *testing.T) {
	s := openTemp(t, Options{})
	l, rec, err := s.OpenStream("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || rec.SnapTotal != 0 || len(rec.Tail) != 0 {
		t.Fatalf("fresh stream recovered %+v", rec)
	}
	all := pts(0, 100)
	for i := 0; i < 100; i += 7 {
		n := 7
		if i+n > 100 {
			n = 100 - i
		}
		if err := l.Append(i, all[i:i+n]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err = s.OpenStream("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapTotal != 0 || len(rec.Tail) != 100 {
		t.Fatalf("recovered SnapTotal=%d, %d tail points", rec.SnapTotal, len(rec.Tail))
	}
	for i, x := range rec.Tail {
		if x != all[i] {
			t.Fatalf("tail[%d] = %v, want %v", i, x, all[i])
		}
	}
}

// TestSnapshotRotation: a snapshot checkpoint supersedes everything before
// it — recovery returns the snapshot plus only the points after, and the
// directory holds one snapshot and one live segment.
func TestSnapshotRotation(t *testing.T) {
	s := openTemp(t, Options{})
	l, _, err := s.OpenStream("mem")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, pts(0, 60)); err != nil {
		t.Fatal(err)
	}
	payload := []byte("opaque detector state at 60")
	if err := l.Snapshot(60, payload); err != nil {
		t.Fatal(err)
	}
	tail := pts(60, 25)
	if err := l.Append(60, tail); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := s.OpenStream("mem")
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapTotal != 60 || string(rec.Snapshot) != string(payload) {
		t.Fatalf("recovered snapshot (%d, %q)", rec.SnapTotal, rec.Snapshot)
	}
	if len(rec.Tail) != 25 {
		t.Fatalf("recovered %d tail points, want 25", len(rec.Tail))
	}
	for i, x := range rec.Tail {
		if x != tail[i] {
			t.Fatalf("tail[%d] = %v, want %v", i, x, tail[i])
		}
	}

	ents, err := os.ReadDir(s.streamDir("mem"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("stream dir holds %v, want exactly one snapshot and one segment", names)
	}
}

// TestTornTailEveryOffset is the byte-level crash property: truncate the
// live segment at EVERY byte offset, reopen, and recovery must succeed
// with a tail that is an exact batch-aligned-or-shorter prefix of what was
// appended — never garbage, never an error.
func TestTornTailEveryOffset(t *testing.T) {
	ref := openTemp(t, Options{})
	l, _, err := ref.OpenStream("x")
	if err != nil {
		t.Fatal(err)
	}
	all := pts(0, 40)
	for i := 0; i < 40; i += 10 {
		if err := l.Append(i, all[i:i+10]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(ref.streamDir("x"), segName(0))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sd := s.streamDir("x")
		if err := os.MkdirAll(sd, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sd, segName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lg, rec, err := s.OpenStream("x")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rec.Tail) > 40 || len(rec.Tail)%10 != 0 {
			t.Fatalf("cut %d: recovered %d points", cut, len(rec.Tail))
		}
		for i, x := range rec.Tail {
			if x != all[i] {
				t.Fatalf("cut %d: tail[%d] = %v, want %v", cut, i, x, all[i])
			}
		}
		// The truncated store must accept appends that continue the prefix.
		if err := lg.Append(len(rec.Tail), all[len(rec.Tail):]); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := lg.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec2, err := s.OpenStream("x")
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(rec2.Tail) != 40 {
			t.Fatalf("cut %d: after refill recovered %d points", cut, len(rec2.Tail))
		}
	}
}

// TestBitFlipDetected: a flipped payload byte fails the record CRC and is
// treated as the end of the log.
func TestBitFlipDetected(t *testing.T) {
	s := openTemp(t, Options{})
	l, _, err := s.OpenStream("y")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, pts(0, 8)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(8, pts(8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(s.streamDir("y"), segName(0))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x10
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := s.OpenStream("y")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 8 {
		t.Fatalf("recovered %d points past a corrupt record, want 8", len(rec.Tail))
	}
}

// TestCorruptSnapshotFailsLoud: if the only snapshot is corrupt, the
// segments after it cannot be anchored and recovery reports ErrCorrupt
// rather than silently restarting the stream from zero.
func TestCorruptSnapshotFailsLoud(t *testing.T) {
	s := openTemp(t, Options{})
	l, _, err := s.OpenStream("z")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, pts(0, 20)); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(20, []byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(20, pts(20, 5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(s.streamDir("z"), snapName(20))
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.OpenStream("z"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovery over a corrupt snapshot: %v, want ErrCorrupt", err)
	}
}

// TestListRemove: ids with filesystem-hostile characters round-trip
// through List, and Remove erases all persisted state.
func TestListRemove(t *testing.T) {
	s := openTemp(t, Options{Fsync: true})
	ids := []string{"plain", "with/slash", "dots..", "sp ace"}
	for _, id := range ids {
		l, _, err := s.OpenStream(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(0, pts(0, 3)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("List = %v", got)
	}
	seen := map[string]bool{}
	for _, id := range got {
		seen[id] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("List missing %q: %v", id, got)
		}
	}
	if err := s.Remove("with/slash"); err != nil {
		t.Fatal(err)
	}
	got, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids)-1 {
		t.Fatalf("after Remove, List = %v", got)
	}
}

// TestRandomInterruptions drives a longer random schedule of appends and
// snapshots, cutting the directory's live segment at a random offset
// between sessions, and checks the recovered state is always a consistent
// prefix: snapshots (written durably) are never lost, recovered tail
// points always carry the exact values appended at those positions, and
// the stream continues across any number of crashes.
func TestRandomInterruptions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := openTemp(t, Options{})
	var snapAt int

	for session := 0; session < 20; session++ {
		l, rec, err := s.OpenStream("w")
		if err != nil {
			t.Fatalf("session %d: %v", session, err)
		}
		if rec.SnapTotal != snapAt {
			t.Fatalf("session %d: SnapTotal = %d, want %d", session, rec.SnapTotal, snapAt)
		}
		for i, x := range rec.Tail {
			want := math.Sin(float64(snapAt+i)) + float64(snapAt+i)/1000
			if x != want {
				t.Fatalf("session %d: tail[%d] = %v, want %v", session, i, x, want)
			}
		}
		total := snapAt + len(rec.Tail)

		// Random work: a few appends, maybe a snapshot.
		for op := 0; op < 1+rng.Intn(4); op++ {
			n := 1 + rng.Intn(12)
			if err := l.Append(total, pts(total, n)); err != nil {
				t.Fatal(err)
			}
			total += n
			if rng.Intn(3) == 0 {
				if err := l.Snapshot(total, []byte{byte(total)}); err != nil {
					t.Fatal(err)
				}
				snapAt = total
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Crash: truncate the live segment at a random offset.
		ents, err := os.ReadDir(s.streamDir("w"))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.Name() == segName(snapAt) {
				info, err := e.Info()
				if err != nil {
					t.Fatal(err)
				}
				if info.Size() > 0 {
					cut := rng.Int63n(info.Size() + 1)
					if err := os.Truncate(filepath.Join(s.streamDir("w"), e.Name()), cut); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}
