package wal

import (
	"errors"
	"syscall"
	"testing"

	"egi/internal/vfs"
)

// faultStore opens a store over a fresh tempdir whose disk access runs
// through an unarmed Inject, returned for the test to arm.
func faultStore(t *testing.T, opts Options) (*Store, *vfs.Inject) {
	t.Helper()
	inj := vfs.NewInject(nil)
	opts.FS = inj
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, inj
}

// recoverTail re-opens the stream read-only and returns its durable state.
func recoverTail(t *testing.T, s *Store, id string) Recovered {
	t.Helper()
	rec, err := s.Read(id)
	if err != nil {
		t.Fatalf("recovering %q: %v", id, err)
	}
	return rec
}

// TestAppendShortWriteRewinds: a short write tears the record; Append
// reports the failure, truncates the torn bytes away, and the next append
// lands cleanly — recovery sees exactly the confirmed records.
func TestAppendShortWriteRewinds(t *testing.T) {
	s, inj := faultStore(t, Options{})
	l, _, err := s.OpenStream("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, pts(0, 10)); err != nil {
		t.Fatal(err)
	}
	inj.ShortWrites(true)
	inj.FailNext(syscall.ENOSPC)
	if err := l.Append(10, pts(10, 10)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("faulted append err = %v, want ENOSPC", err)
	}
	inj.Heal()
	// The torn bytes are gone: the caller may retry the same append.
	if err := l.Append(10, pts(10, 10)); err != nil {
		t.Fatalf("retry after rewind: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec := recoverTail(t, s, "cpu")
	want := pts(0, 20)
	if len(rec.Tail) != 20 {
		t.Fatalf("recovered %d points, want 20", len(rec.Tail))
	}
	for i, x := range rec.Tail {
		if x != want[i] {
			t.Fatalf("tail[%d] = %v, want %v", i, x, want[i])
		}
	}
}

// TestRewindDeferredUntilDiskHeals: when both the write and the rewind
// truncate fail, the log stays dirty and refuses appends; once the disk
// heals, the next append rewinds first, so the torn record is never
// followed by a good one.
func TestRewindDeferredUntilDiskHeals(t *testing.T) {
	s, inj := faultStore(t, Options{})
	l, _, err := s.OpenStream("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, pts(0, 5)); err != nil {
		t.Fatal(err)
	}
	inj.ShortWrites(true)
	inj.FailNext(syscall.EIO) // sticky: the write AND the rewind truncate fail
	if err := l.Append(5, pts(5, 5)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("faulted append err = %v, want EIO", err)
	}
	// Still failing: the retry must attempt the rewind first and fail.
	if err := l.Append(5, pts(5, 5)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append while dirty err = %v, want EIO", err)
	}
	inj.Heal()
	if err := l.Append(5, pts(5, 5)); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec := recoverTail(t, s, "cpu")
	if len(rec.Tail) != 10 {
		t.Fatalf("recovered %d points, want 10", len(rec.Tail))
	}
}

// TestFsyncFailureRewinds: in Fsync mode a failed sync means the record's
// durability was never confirmed — it is rewound away, and recovery sees
// only the records whose sync succeeded.
func TestFsyncFailureRewinds(t *testing.T) {
	s, inj := faultStore(t, Options{Fsync: true})
	l, _, err := s.OpenStream("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, pts(0, 8)); err != nil {
		t.Fatal(err)
	}
	inj.SetKinds(vfs.OpSync)
	inj.FailNext(syscall.EIO)
	if err := l.Append(8, pts(8, 8)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append with failing fsync err = %v, want EIO", err)
	}
	inj.Heal()
	inj.SetKinds(vfs.OpsMutating)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec := recoverTail(t, s, "cpu")
	if len(rec.Tail) != 8 {
		t.Fatalf("recovered %d points, want 8 (unconfirmed record must be gone)", len(rec.Tail))
	}
}

// TestSyncDirFailureSurfaces: a failed directory fsync after the snapshot
// rename is reported, not swallowed — the rename may not be durable, so
// the caller must treat the checkpoint as failed and retry.
func TestSyncDirFailureSurfaces(t *testing.T) {
	s, inj := faultStore(t, Options{})
	l, _, err := s.OpenStream("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, pts(0, 20)); err != nil {
		t.Fatal(err)
	}
	// The directory fsync is the only OpSync on a non-Fsync store's
	// snapshot path after the snapshot file's own sync; fail the second.
	inj.SetKinds(vfs.OpSync)
	inj.FailAt(1, syscall.EIO)
	if err := l.Snapshot(20, []byte("state@20")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("snapshot with failing dir sync err = %v, want EIO", err)
	}
	inj.Heal()
	// Retrying the checkpoint completes the heal.
	if err := l.Snapshot(20, []byte("state@20")); err != nil {
		t.Fatalf("retried snapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec := recoverTail(t, s, "cpu")
	if rec.SnapTotal != 20 || string(rec.Snapshot) != "state@20" || len(rec.Tail) != 0 {
		t.Fatalf("recovered SnapTotal=%d snap=%q tail=%d", rec.SnapTotal, rec.Snapshot, len(rec.Tail))
	}
}

// TestSnapshotFaultAtEveryOp: for every operation index inside Snapshot,
// inject a sticky fault there and assert the two invariants that make
// checkpoints safe to retry: (1) the store recovers, without error, to
// either the pre-snapshot or post-snapshot state — never something in
// between; (2) after the disk heals, retrying the same Snapshot succeeds
// and recovery converges on the checkpointed state.
func TestSnapshotFaultAtEveryOp(t *testing.T) {
	for i := int64(0); ; i++ {
		s, inj := faultStore(t, Options{})
		l, _, err := s.OpenStream("cpu")
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(0, pts(0, 30)); err != nil {
			t.Fatal(err)
		}
		inj.ShortWrites(i%2 == 0)
		inj.FailAt(inj.Ops()+i, syscall.ENOSPC)
		snapErr := l.Snapshot(30, []byte("state@30"))
		triggered := inj.Failing()
		inj.Heal()

		// Invariant 1: whatever the failure point, a read-only recovery
		// works and sees a consistent store.
		rec := recoverTail(t, s, "cpu")
		switch rec.SnapTotal {
		case 0:
			if len(rec.Tail) != 30 {
				t.Fatalf("op %d: pre-snapshot state has %d tail points, want 30", i, len(rec.Tail))
			}
		case 30:
			if string(rec.Snapshot) != "state@30" || len(rec.Tail) != 0 {
				t.Fatalf("op %d: post-snapshot state snap=%q tail=%d", i, rec.Snapshot, len(rec.Tail))
			}
		default:
			t.Fatalf("op %d: recovered impossible SnapTotal %d", i, rec.SnapTotal)
		}

		// Invariant 2: the retry heals. (Also reached on snapErr == nil,
		// where Snapshot merely left superseded files to clean up.)
		if err := l.Snapshot(30, []byte("state@30")); err != nil {
			t.Fatalf("op %d: retried snapshot after heal: %v (first error: %v)", i, err, snapErr)
		}
		if err := l.Append(30, pts(30, 5)); err != nil {
			t.Fatalf("op %d: append after healed snapshot: %v", i, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("op %d: close: %v", i, err)
		}
		rec = recoverTail(t, s, "cpu")
		if rec.SnapTotal != 30 || len(rec.Tail) != 5 {
			t.Fatalf("op %d: final state SnapTotal=%d tail=%d, want 30/5", i, rec.SnapTotal, len(rec.Tail))
		}

		if !triggered {
			if snapErr != nil {
				t.Fatalf("op %d: snapshot failed (%v) but no fault triggered", i, snapErr)
			}
			return // past the last operation Snapshot performs
		}
		if snapErr == nil && i < 6 {
			// The earliest ops (temp create, writes, sync, close, rename)
			// are all load-bearing; a swallowed failure there would mean
			// an error path got lost.
			t.Fatalf("op %d: fault triggered but Snapshot reported success", i)
		}
	}
}
