// Package wal gives a stream durable storage: an append-only,
// checksummed log of pushed points with periodic snapshot checkpoints.
//
// Each stream owns one directory holding at most a handful of files:
//
//	snap-<total>.snap   detector snapshot taken after <total> points
//	wal-<from>.log      points appended from global position <from>
//
// Appends go to the newest segment as CRC-framed records. Taking a
// snapshot durably writes the snapshot file (temp file, fsync, rename,
// directory fsync), rotates to a fresh segment, and then deletes every
// older segment and snapshot — so the directory stays small: recovery
// state is one snapshot plus the points pushed since.
//
// Recovery reads the newest valid snapshot and replays the segments after
// it, stopping at the first torn record (a partial append from the crash)
// and truncating it away. The contract with the detection layer is exact:
// restore the snapshot, re-push the recovered tail, and the stream
// continues bit-identically to one that never crashed. A crash can lose
// only points whose append was never reported durable — clients observe
// that through accepted-count responses and resend.
//
// All disk access goes through an injectable vfs.FS, and every write path
// maintains one invariant under arbitrary injected failures: a torn
// (partial) record can exist only at the very tail of the final segment,
// never in the middle of the log. A failed or short append is rewound —
// the active segment truncated back to the last durable record boundary —
// before any later record may land, so a fault can shorten history but
// can never poison it. Callers that keep accepting points after a log
// failure heal by writing a fresh snapshot checkpoint, which supersedes
// everything logged before it.
package wal

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"egi/internal/vfs"
)

// Record framing inside a segment:
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// payload = recPoints byte | uvarint pos | uvarint count | count × f64 LE.
const (
	recHeader = 8
	recPoints = 1
	// maxRecordLen bounds a single record so a corrupt length field can't
	// trigger a huge allocation during recovery.
	maxRecordLen = 1 << 26
)

// snapMagic heads every snapshot file, followed by a u32 CRC-32C and u32
// length of the opaque payload.
const snapMagic = "EGIWSNP1"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a store whose files are inconsistent beyond the
// recoverable torn-tail case — e.g. a gap in the recovered point sequence.
var ErrCorrupt = errors.New("wal: corrupt store")

// Options configures a Store.
type Options struct {
	// Fsync, when set, fsyncs the active segment after every append, so
	// an acknowledged point survives power loss, not just process death.
	// Appends are batched upstream (one record per pushed batch), so the
	// cost is per-batch, not per-point.
	Fsync bool
	// FS is the filesystem the store reads and writes through; nil means
	// the real OS. Tests inject vfs.Inject here to fail specific
	// operations.
	FS vfs.FS
}

// Store is a directory of per-stream write-ahead logs. Safe for use from
// one goroutine per stream; distinct streams are independent.
type Store struct {
	dir  string
	fs   vfs.FS
	opts Options
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, fs: fsys, opts: opts}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// List returns the ids of every stream with persisted state, in
// unspecified order.
func (s *Store) List() ([]string, error) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			continue // not one of ours
		}
		ids = append(ids, string(raw))
	}
	return ids, nil
}

// Remove deletes all persisted state for the stream. The stream must not
// have an open StreamLog.
func (s *Store) Remove(id string) error {
	return s.fs.RemoveAll(s.streamDir(id))
}

// streamDir maps a stream id to its directory; hex encoding keeps
// arbitrary ids filesystem-safe.
func (s *Store) streamDir(id string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(id)))
}

// Recovered is the durable state found for a stream at open: the newest
// valid snapshot (nil if none, with SnapTotal 0) and the contiguous tail
// of points logged after it. Restoring the snapshot and re-pushing Tail
// reproduces the stream exactly.
type Recovered struct {
	// SnapTotal is the stream's total point count at the snapshot.
	SnapTotal int
	// Snapshot is the opaque snapshot payload handed to StreamLog.Snapshot.
	Snapshot []byte
	// Tail holds the points at global positions [SnapTotal, SnapTotal+len).
	Tail []float64
}

// StreamLog is the open write-ahead log of one stream.
type StreamLog struct {
	store *Store
	dir   string
	f     vfs.File // active segment
	size  int64    // bytes of complete, confirmed records in the active segment
	dirty bool     // the active segment may end in a torn record past size
	buf   []byte   // record scratch
}

// OpenStream opens (creating if absent) the log for one stream and
// recovers its durable state. A torn record at the tail — the footprint of
// a crash mid-append — is truncated away; anything before it is returned.
func (s *Store) OpenStream(id string) (*StreamLog, Recovered, error) {
	dir := s.streamDir(id)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, err
	}
	rec, activeFrom, activeLen, err := scanDir(s.fs, dir, true)
	if err != nil {
		return nil, Recovered{}, err
	}
	l := &StreamLog{store: s, dir: dir, size: activeLen}
	seg := filepath.Join(dir, segName(activeFrom))
	l.f, err = s.fs.OpenFile(seg, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, Recovered{}, err
	}
	return l, rec, nil
}

// Recover reads a stream's durable state exactly like OpenStream —
// including torn-tail truncation and temp-file cleanup — without leaving
// the log open for writing. It exists for callers that need the state but
// may not be able to hold a write handle (e.g. a degraded stream retrying
// durability later).
func (s *Store) Recover(id string) (Recovered, error) {
	dir := s.streamDir(id)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return Recovered{}, err
	}
	rec, _, _, err := scanDir(s.fs, dir, true)
	return rec, err
}

func segName(from int) string   { return fmt.Sprintf("wal-%d.log", from) }
func snapName(total int) string { return fmt.Sprintf("snap-%d.snap", total) }

// Read recovers the stream's durable state without opening the log for
// writing and without modifying anything on disk — no torn-tail
// truncation, no temp-file cleanup. Safe concurrently with an open
// StreamLog appending to the same stream: a record the writer is mid-way
// through simply ends the recovered prefix. A stream with no persisted
// state reads as a zero Recovered.
func (s *Store) Read(id string) (Recovered, error) {
	rec, _, _, err := scanDir(s.fs, s.streamDir(id), false)
	if err != nil && os.IsNotExist(err) {
		return Recovered{}, nil
	}
	return rec, err
}

// scanDir scans a stream directory: picks the newest valid snapshot,
// replays the segments after it into a contiguous tail, and reports which
// segment should receive new appends along with that segment's current
// valid byte length. With mutate set it also truncates a torn final
// record and removes interrupted temp files; read-only scans leave the
// directory untouched.
func scanDir(fsys vfs.FS, dir string, mutate bool) (Recovered, int, int64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return Recovered{}, 0, 0, err
	}
	var snaps, segs []int
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if mutate {
				// Interrupted snapshot write; removal is cosmetic, and a
				// failure here must not block recovery.
				_ = fsys.Remove(filepath.Join(dir, name))
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if n, err := strconv.Atoi(name[len("snap-") : len(name)-len(".snap")]); err == nil {
				snaps = append(snaps, n)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if n, err := strconv.Atoi(name[len("wal-") : len(name)-len(".log")]); err == nil {
				segs = append(segs, n)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(snaps)))
	sort.Ints(segs)

	rec := Recovered{}
	for _, total := range snaps {
		payload, err := readSnapFile(fsys, filepath.Join(dir, snapName(total)))
		if err != nil {
			continue // corrupt or torn snapshot; fall back to an older one
		}
		rec.SnapTotal, rec.Snapshot = total, payload
		break
	}

	next := rec.SnapTotal
	var lastLen int64
	for i, from := range segs {
		valid, torn, err := replaySegment(fsys, filepath.Join(dir, segName(from)), mutate, &next, &rec.Tail)
		if err != nil {
			return Recovered{}, 0, 0, err
		}
		if torn && i != len(segs)-1 {
			return Recovered{}, 0, 0, fmt.Errorf("%w: torn record in non-final segment %s", ErrCorrupt, segName(from))
		}
		lastLen = valid
	}

	activeFrom := rec.SnapTotal
	activeLen := int64(0)
	if n := len(segs); n > 0 && segs[n-1] >= activeFrom {
		activeFrom = segs[n-1]
		activeLen = lastLen
	}
	return rec, activeFrom, activeLen, nil
}

// replaySegment appends the segment's points to tail, skipping records
// already covered by *next (pre-snapshot leftovers of an interrupted
// rotation) and clipping records that straddle the already-covered
// prefix. It returns the valid byte length of the segment and whether a
// torn record ended it; with truncate set the torn bytes are also removed
// from the file.
func replaySegment(fsys vfs.FS, path string, truncate bool, next *int, tail *[]float64) (int64, bool, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	off := 0
	for off < len(data) {
		if off+recHeader > len(data) {
			break // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordLen || off+recHeader+n > len(data) {
			break // torn or nonsense length
		}
		payload := data[off+recHeader : off+recHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn payload
		}
		pos, cnt, pts, err := decodePoints(payload)
		if err != nil {
			return 0, false, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
		}
		switch {
		case pos+cnt <= *next:
			// Entirely covered already (pre-snapshot leftover or replayed
			// overlap); skip.
		case pos <= *next:
			*tail = append(*tail, pts[*next-pos:]...)
			*next = pos + cnt
		default:
			return 0, false, fmt.Errorf("%w: gap at position %d (next record starts at %d)", ErrCorrupt, *next, pos)
		}
		off += recHeader + n
	}
	if off < len(data) {
		if truncate {
			if err := fsys.Truncate(path, int64(off)); err != nil {
				return 0, false, err
			}
		}
		return int64(off), true, nil
	}
	return int64(off), false, nil
}

// decodePoints parses a recPoints payload into (pos, count, points).
func decodePoints(p []byte) (int, int, []float64, error) {
	if len(p) < 1 || p[0] != recPoints {
		return 0, 0, nil, errors.New("unknown record type")
	}
	p = p[1:]
	pos, k := binary.Uvarint(p)
	if k <= 0 {
		return 0, 0, nil, errors.New("bad position varint")
	}
	p = p[k:]
	cnt, k := binary.Uvarint(p)
	if k <= 0 {
		return 0, 0, nil, errors.New("bad count varint")
	}
	p = p[k:]
	if uint64(len(p)) != cnt*8 {
		return 0, 0, nil, errors.New("point payload length mismatch")
	}
	pts := make([]float64, cnt)
	for i := range pts {
		pts[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return int(pos), int(cnt), pts, nil
}

// rewind restores the no-torn-record invariant after a failed append:
// truncate the active segment back to the last confirmed record boundary.
// Until it succeeds the log refuses further appends, so a torn record can
// never be followed by a good one.
func (l *StreamLog) rewind() error {
	if err := l.f.Truncate(l.size); err != nil {
		return fmt.Errorf("wal: rewinding torn segment to %d bytes: %w", l.size, err)
	}
	l.dirty = false
	return nil
}

// Append durably logs pts as the points at global positions
// [pos, pos+len(pts)). One call writes one record; callers batch at their
// natural push granularity.
//
// On failure the record is rewound away (or, if even the rewind fails,
// the log remembers the torn tail and retries the rewind before the next
// append), so the segment never gains a record after a torn one. The
// caller sees an error either way; positioned records make a retried or
// resent append idempotent.
func (l *StreamLog) Append(pos int, pts []float64) error {
	if len(pts) == 0 {
		return nil
	}
	if l.dirty {
		if err := l.rewind(); err != nil {
			return err
		}
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, make([]byte, recHeader)...)
	l.buf = append(l.buf, recPoints)
	l.buf = binary.AppendUvarint(l.buf, uint64(pos))
	l.buf = binary.AppendUvarint(l.buf, uint64(len(pts)))
	for _, x := range pts {
		l.buf = binary.LittleEndian.AppendUint64(l.buf, math.Float64bits(x))
	}
	payload := l.buf[recHeader:]
	binary.LittleEndian.PutUint32(l.buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.Checksum(payload, crcTable))
	n, err := l.f.Write(l.buf)
	if err != nil || n != len(l.buf) {
		if err == nil {
			err = fmt.Errorf("wal: short write: %d of %d bytes", n, len(l.buf))
		}
		if n > 0 {
			// A prefix of the record landed in the file: torn. Rewind now;
			// if the disk refuses that too, stay dirty and refuse appends
			// until a rewind succeeds.
			l.dirty = true
			if rerr := l.rewind(); rerr != nil {
				return fmt.Errorf("%w (rewind also failed: %v)", err, rerr)
			}
		}
		return err
	}
	if l.store.opts.Fsync {
		if err := l.f.Sync(); err != nil {
			// The record is complete in the file but its durability was
			// never confirmed — after a failed fsync the kernel may have
			// dropped the pages. Rewind it away so the log only ever holds
			// confirmed records; the caller re-appends or heals via a
			// checkpoint.
			l.dirty = true
			if rerr := l.rewind(); rerr != nil {
				return fmt.Errorf("%w (rewind also failed: %v)", err, rerr)
			}
			return err
		}
	}
	l.size += int64(len(l.buf))
	return nil
}

// Snapshot checkpoints the stream: durably writes the opaque payload as
// the snapshot at total points, rotates appends onto a fresh segment, and
// deletes every older segment and snapshot. After it returns, recovery
// needs only this snapshot plus subsequent appends.
//
// Snapshot is also the healing operation after append failures: the new
// checkpoint supersedes every record logged before it, so a stream whose
// appends have been failing becomes fully durable again the moment one
// Snapshot succeeds. Every failure point leaves the store consistent —
// at worst with superseded files awaiting deletion on the next attempt.
func (l *StreamLog) Snapshot(total int, payload []byte) error {
	fsys := l.store.fs
	// 0. Restore the torn-tail invariant first: a rotation must never
	// leave a torn record in what becomes a non-final segment.
	if l.dirty {
		if err := l.rewind(); err != nil {
			return err
		}
	}

	// 1. Snapshot file: temp, fsync, rename, directory fsync.
	final := filepath.Join(l.dir, snapName(total))
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, len(snapMagic)+8)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(payload, crcTable))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	if _, err = f.Write(hdr); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Removal of the dead temp file is cosmetic; recovery ignores and
		// cleans *.tmp anyway.
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := syncDir(fsys, l.dir); err != nil {
		// The rename may not be durable; report it like any other sync
		// failure so the caller retries the checkpoint. The store stays
		// consistent either way — recovery takes whichever snapshot
		// survives plus the still-intact segments.
		return fmt.Errorf("wal: syncing directory after snapshot rename: %w", err)
	}

	// 2. Rotate onto a fresh segment.
	old := l.f
	nf, err := fsys.OpenFile(filepath.Join(l.dir, segName(total)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Keep appending to the old segment; replay skips the records the
		// new snapshot covers, so the store stays consistent.
		return err
	}
	// Everything in the old segment is superseded by the snapshot just
	// written, so a close error cannot lose acknowledged state.
	_ = old.Close()
	l.f = nf
	l.size = 0
	l.dirty = false

	// 3. Drop everything the new snapshot supersedes. Failures leave only
	// already-superseded files behind; report the first so the caller can
	// retry the cleanup with its next checkpoint.
	ents, err := fsys.ReadDir(l.dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range ents {
		name := e.Name()
		var n int
		var perr error
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			n, perr = strconv.Atoi(name[len("snap-") : len(name)-len(".snap")])
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			n, perr = strconv.Atoi(name[len("wal-") : len(name)-len(".log")])
		default:
			continue
		}
		if perr == nil && n < total {
			if rerr := fsys.Remove(filepath.Join(l.dir, name)); rerr != nil && firstErr == nil {
				firstErr = rerr
			}
		}
	}
	return firstErr
}

// Sync flushes the active segment to stable storage regardless of the
// store's Fsync option.
func (l *StreamLog) Sync() error { return l.f.Sync() }

// Close flushes and closes the active segment. The log must not be used
// afterwards.
func (l *StreamLog) Close() error {
	if err := l.f.Sync(); err != nil {
		// Surface the sync failure; the close still runs so the handle is
		// not leaked, but its error is secondary.
		_ = l.f.Close()
		return err
	}
	return l.f.Close()
}

// readSnapFile validates and returns a snapshot file's payload.
func readSnapFile(fsys vfs.FS, path string) ([]byte, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	sum := binary.LittleEndian.Uint32(data[len(snapMagic):])
	n := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	payload := data[len(snapMagic)+8:]
	if uint32(len(payload)) != n || crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// syncDir fsyncs a directory so renames within it are durable, surfacing
// any failure to the caller — a sync error here means the rename may not
// survive power loss, which the durability layer must treat exactly like
// a failed data sync.
func syncDir(fsys vfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
