// Package wal gives a stream durable storage: an append-only,
// checksummed log of pushed points with periodic snapshot checkpoints.
//
// Each stream owns one directory holding at most a handful of files:
//
//	snap-<total>.snap   detector snapshot taken after <total> points
//	wal-<from>.log      points appended from global position <from>
//
// Appends go to the newest segment as CRC-framed records. Taking a
// snapshot durably writes the snapshot file (temp file, fsync, rename,
// directory fsync), rotates to a fresh segment, and then deletes every
// older segment and snapshot — so the directory stays small: recovery
// state is one snapshot plus the points pushed since.
//
// Recovery reads the newest valid snapshot and replays the segments after
// it, stopping at the first torn record (a partial append from the crash)
// and truncating it away. The contract with the detection layer is exact:
// restore the snapshot, re-push the recovered tail, and the stream
// continues bit-identically to one that never crashed. A crash can lose
// only points whose append was never reported durable — clients observe
// that through accepted-count responses and resend.
package wal

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Record framing inside a segment:
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// payload = recPoints byte | uvarint pos | uvarint count | count × f64 LE.
const (
	recHeader = 8
	recPoints = 1
	// maxRecordLen bounds a single record so a corrupt length field can't
	// trigger a huge allocation during recovery.
	maxRecordLen = 1 << 26
)

// snapMagic heads every snapshot file, followed by a u32 CRC-32C and u32
// length of the opaque payload.
const snapMagic = "EGIWSNP1"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a store whose files are inconsistent beyond the
// recoverable torn-tail case — e.g. a gap in the recovered point sequence.
var ErrCorrupt = errors.New("wal: corrupt store")

// Options configures a Store.
type Options struct {
	// Fsync, when set, fsyncs the active segment after every append, so
	// an acknowledged point survives power loss, not just process death.
	// Appends are batched upstream (one record per pushed batch), so the
	// cost is per-batch, not per-point.
	Fsync bool
}

// Store is a directory of per-stream write-ahead logs. Safe for use from
// one goroutine per stream; distinct streams are independent.
type Store struct {
	dir  string
	opts Options
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, opts: opts}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// List returns the ids of every stream with persisted state, in
// unspecified order.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			continue // not one of ours
		}
		ids = append(ids, string(raw))
	}
	return ids, nil
}

// Remove deletes all persisted state for the stream. The stream must not
// have an open StreamLog.
func (s *Store) Remove(id string) error {
	return os.RemoveAll(s.streamDir(id))
}

// streamDir maps a stream id to its directory; hex encoding keeps
// arbitrary ids filesystem-safe.
func (s *Store) streamDir(id string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(id)))
}

// Recovered is the durable state found for a stream at open: the newest
// valid snapshot (nil if none, with SnapTotal 0) and the contiguous tail
// of points logged after it. Restoring the snapshot and re-pushing Tail
// reproduces the stream exactly.
type Recovered struct {
	// SnapTotal is the stream's total point count at the snapshot.
	SnapTotal int
	// Snapshot is the opaque snapshot payload handed to StreamLog.Snapshot.
	Snapshot []byte
	// Tail holds the points at global positions [SnapTotal, SnapTotal+len).
	Tail []float64
}

// StreamLog is the open write-ahead log of one stream.
type StreamLog struct {
	store *Store
	dir   string
	f     *os.File // active segment
	buf   []byte   // record scratch
}

// OpenStream opens (creating if absent) the log for one stream and
// recovers its durable state. A torn record at the tail — the footprint of
// a crash mid-append — is truncated away; anything before it is returned.
func (s *Store) OpenStream(id string) (*StreamLog, Recovered, error) {
	dir := s.streamDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, err
	}
	rec, activeFrom, err := scanDir(dir, true)
	if err != nil {
		return nil, Recovered{}, err
	}
	l := &StreamLog{store: s, dir: dir}
	seg := filepath.Join(dir, segName(activeFrom))
	l.f, err = os.OpenFile(seg, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, Recovered{}, err
	}
	return l, rec, nil
}

func segName(from int) string   { return fmt.Sprintf("wal-%d.log", from) }
func snapName(total int) string { return fmt.Sprintf("snap-%d.snap", total) }

// Read recovers the stream's durable state without opening the log for
// writing and without modifying anything on disk — no torn-tail
// truncation, no temp-file cleanup. Safe concurrently with an open
// StreamLog appending to the same stream: a record the writer is mid-way
// through simply ends the recovered prefix. A stream with no persisted
// state reads as a zero Recovered.
func (s *Store) Read(id string) (Recovered, error) {
	rec, _, err := scanDir(s.streamDir(id), false)
	if err != nil && os.IsNotExist(err) {
		return Recovered{}, nil
	}
	return rec, err
}

// scanDir scans a stream directory: picks the newest valid snapshot,
// replays the segments after it into a contiguous tail, and reports which
// segment should receive new appends. With mutate set it also truncates a
// torn final record and removes interrupted temp files; read-only scans
// leave the directory untouched.
func scanDir(dir string, mutate bool) (Recovered, int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return Recovered{}, 0, err
	}
	var snaps, segs []int
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			if mutate {
				os.Remove(filepath.Join(dir, name)) // interrupted snapshot write
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if n, err := strconv.Atoi(name[len("snap-") : len(name)-len(".snap")]); err == nil {
				snaps = append(snaps, n)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if n, err := strconv.Atoi(name[len("wal-") : len(name)-len(".log")]); err == nil {
				segs = append(segs, n)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(snaps)))
	sort.Ints(segs)

	rec := Recovered{}
	for _, total := range snaps {
		payload, err := readSnapFile(filepath.Join(dir, snapName(total)))
		if err != nil {
			continue // corrupt or torn snapshot; fall back to an older one
		}
		rec.SnapTotal, rec.Snapshot = total, payload
		break
	}

	next := rec.SnapTotal
	for i, from := range segs {
		torn, err := replaySegment(filepath.Join(dir, segName(from)), mutate, &next, &rec.Tail)
		if err != nil {
			return Recovered{}, 0, err
		}
		if torn && i != len(segs)-1 {
			return Recovered{}, 0, fmt.Errorf("%w: torn record in non-final segment %s", ErrCorrupt, segName(from))
		}
	}

	activeFrom := rec.SnapTotal
	if n := len(segs); n > 0 && segs[n-1] > activeFrom {
		activeFrom = segs[n-1]
	}
	return rec, activeFrom, nil
}

// replaySegment appends the segment's points to tail, skipping records
// already covered by *next (pre-snapshot leftovers of an interrupted
// rotation) and clipping records that straddle the already-covered
// prefix. It reports whether a torn record ended the segment; with
// truncate set the torn bytes are also removed from the file.
func replaySegment(path string, truncate bool, next *int, tail *[]float64) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	off := 0
	for off < len(data) {
		if off+recHeader > len(data) {
			break // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordLen || off+recHeader+n > len(data) {
			break // torn or nonsense length
		}
		payload := data[off+recHeader : off+recHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break // torn payload
		}
		pos, cnt, pts, err := decodePoints(payload)
		if err != nil {
			return false, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
		}
		switch {
		case pos+cnt <= *next:
			// Entirely covered already (pre-snapshot leftover or replayed
			// overlap); skip.
		case pos <= *next:
			*tail = append(*tail, pts[*next-pos:]...)
			*next = pos + cnt
		default:
			return false, fmt.Errorf("%w: gap at position %d (next record starts at %d)", ErrCorrupt, *next, pos)
		}
		off += recHeader + n
	}
	if off < len(data) {
		if truncate {
			if err := os.Truncate(path, int64(off)); err != nil {
				return false, err
			}
		}
		return true, nil
	}
	return false, nil
}

// decodePoints parses a recPoints payload into (pos, count, points).
func decodePoints(p []byte) (int, int, []float64, error) {
	if len(p) < 1 || p[0] != recPoints {
		return 0, 0, nil, errors.New("unknown record type")
	}
	p = p[1:]
	pos, k := binary.Uvarint(p)
	if k <= 0 {
		return 0, 0, nil, errors.New("bad position varint")
	}
	p = p[k:]
	cnt, k := binary.Uvarint(p)
	if k <= 0 {
		return 0, 0, nil, errors.New("bad count varint")
	}
	p = p[k:]
	if uint64(len(p)) != cnt*8 {
		return 0, 0, nil, errors.New("point payload length mismatch")
	}
	pts := make([]float64, cnt)
	for i := range pts {
		pts[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return int(pos), int(cnt), pts, nil
}

// Append durably logs pts as the points at global positions
// [pos, pos+len(pts)). One call writes one record; callers batch at their
// natural push granularity.
func (l *StreamLog) Append(pos int, pts []float64) error {
	if len(pts) == 0 {
		return nil
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, make([]byte, recHeader)...)
	l.buf = append(l.buf, recPoints)
	l.buf = binary.AppendUvarint(l.buf, uint64(pos))
	l.buf = binary.AppendUvarint(l.buf, uint64(len(pts)))
	for _, x := range pts {
		l.buf = binary.LittleEndian.AppendUint64(l.buf, math.Float64bits(x))
	}
	payload := l.buf[recHeader:]
	binary.LittleEndian.PutUint32(l.buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	if l.store.opts.Fsync {
		return l.f.Sync()
	}
	return nil
}

// Snapshot checkpoints the stream: durably writes the opaque payload as
// the snapshot at total points, rotates appends onto a fresh segment, and
// deletes every older segment and snapshot. After it returns, recovery
// needs only this snapshot plus subsequent appends.
func (l *StreamLog) Snapshot(total int, payload []byte) error {
	// 1. Snapshot file: temp, fsync, rename, directory fsync.
	final := filepath.Join(l.dir, snapName(total))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, len(snapMagic)+8)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(payload, crcTable))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	if _, err = f.Write(hdr); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(l.dir)

	// 2. Rotate onto a fresh segment.
	old := l.f
	nf, err := os.OpenFile(filepath.Join(l.dir, segName(total)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if l.store.opts.Fsync {
		old.Sync()
	}
	old.Close()
	l.f = nf

	// 3. Drop everything the new snapshot supersedes.
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		var n int
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			n, err = strconv.Atoi(name[len("snap-") : len(name)-len(".snap")])
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			n, err = strconv.Atoi(name[len("wal-") : len(name)-len(".log")])
		default:
			continue
		}
		if err == nil && n < total {
			os.Remove(filepath.Join(l.dir, name))
		}
		err = nil
	}
	return nil
}

// Sync flushes the active segment to stable storage regardless of the
// store's Fsync option.
func (l *StreamLog) Sync() error { return l.f.Sync() }

// Close flushes and closes the active segment. The log must not be used
// afterwards.
func (l *StreamLog) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// readSnapFile validates and returns a snapshot file's payload.
func readSnapFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	sum := binary.LittleEndian.Uint32(data[len(snapMagic):])
	n := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	payload := data[len(snapMagic)+8:]
	if uint32(len(payload)) != n || crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// syncDir best-effort fsyncs a directory so renames within it are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
