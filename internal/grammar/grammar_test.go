package grammar

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/sax"
	"egi/internal/sequitur"
	"egi/internal/timeseries"
)

// periodicWithAnomaly builds a clean sine-like series of given length and
// period, with a structural anomaly (inverted half-cycle) planted at pos.
func periodicWithAnomaly(length, period, pos int, seed int64) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.05*rng.NormFloat64()
	}
	for i := pos; i < pos+period && i < length; i++ {
		// Replace one cycle with a flat-topped pulse: structurally different.
		s[i] = 1.2 - 2.4*math.Abs(float64(i-pos)/float64(period)-0.5) + 0.05*rng.NormFloat64()
	}
	return s
}

func TestDensityCurvePaperExample(t *testing.T) {
	// Table 1's sequence: the xx token is in no rule, so its span must have
	// zero density while the R1 spans have positive density.
	words := []string{"aa", "bb", "cc", "xx", "aa", "bb", "cc"}
	tokens := make([]sax.Token, len(words))
	for i, w := range words {
		tokens[i] = sax.Token{Word: w, Pos: i * 4} // windows every 4 points
	}
	n := 4
	seriesLen := tokens[len(tokens)-1].Pos + n
	g, err := sequitur.Induce(words)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := DensityCurve(g, tokens, seriesLen, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != seriesLen {
		t.Fatalf("curve length %d, want %d", len(curve), seriesLen)
	}
	// R1 covers tokens [0,3) -> points [0, 2*4+4) = [0,12) and tokens
	// [4,7) -> points [16, 28).
	for i := 0; i < 12; i++ {
		if curve[i] <= 0 {
			t.Fatalf("curve[%d] = %v, want > 0 (inside R1 span)", i, curve[i])
		}
	}
	for i := 12; i < 16; i++ {
		if curve[i] != 0 {
			t.Fatalf("curve[%d] = %v, want 0 (xx anomaly span)", i, curve[i])
		}
	}
	for i := 16; i < 28; i++ {
		if curve[i] <= 0 {
			t.Fatalf("curve[%d] = %v, want > 0 (second R1 span)", i, curve[i])
		}
	}
}

func TestDensityCurveNonNegativeAndErrors(t *testing.T) {
	words := []string{"a", "b", "a", "b"}
	tokens := make([]sax.Token, len(words))
	for i, w := range words {
		tokens[i] = sax.Token{Word: w, Pos: i}
	}
	g, _ := sequitur.Induce(words)
	curve, err := DensityCurve(g, tokens, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range curve {
		if v < 0 {
			t.Fatalf("curve[%d] = %v < 0", i, v)
		}
	}
	if _, err := DensityCurve(g, nil, 10, 3); err == nil {
		t.Error("empty tokens should error")
	}
	if _, err := DensityCurve(g, tokens, 10, 0); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := DensityCurve(g, tokens, 2, 3); err == nil {
		t.Error("n>seriesLen should error")
	}
}

func TestWindowScores(t *testing.T) {
	curve := []float64{0, 0, 3, 3, 3, 0}
	scores, err := WindowScores(curve, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 2}
	if len(scores) != len(want) {
		t.Fatalf("got %d scores, want %d", len(scores), len(want))
	}
	for i := range want {
		if math.Abs(scores[i]-want[i]) > 1e-12 {
			t.Fatalf("scores = %v, want %v", scores, want)
		}
	}
	if _, err := WindowScores(nil, 1); err == nil {
		t.Error("empty curve should error")
	}
	if _, err := WindowScores(curve, 7); err == nil {
		t.Error("n>len should error")
	}
}

func TestRankAnomaliesNonOverlapAndOrder(t *testing.T) {
	// Two separated dips; the deeper one must rank first.
	curve := make([]float64, 100)
	for i := range curve {
		curve[i] = 10
	}
	for i := 20; i < 25; i++ {
		curve[i] = 1 // shallow dip
	}
	for i := 70; i < 75; i++ {
		curve[i] = 0 // deep dip
	}
	cands, err := RankAnomalies(curve, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3", len(cands))
	}
	if cands[0].Pos != 70 {
		t.Errorf("top candidate at %d, want 70", cands[0].Pos)
	}
	if cands[1].Pos != 20 {
		t.Errorf("second candidate at %d, want 20", cands[1].Pos)
	}
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			a, b := cands[i], cands[j]
			if a.Pos < b.Pos+b.Length && b.Pos < a.Pos+a.Length {
				t.Errorf("candidates %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
	if cands[0].Density > cands[1].Density || cands[1].Density > cands[2].Density {
		t.Errorf("candidates not in ascending density order: %+v", cands)
	}
}

func TestRankAnomaliesFewerThanTopK(t *testing.T) {
	curve := []float64{1, 1, 1, 1}
	cands, err := RankAnomalies(curve, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Only windows 0 and 1 exist and they overlap, so one candidate.
	if len(cands) != 1 {
		t.Errorf("got %d candidates, want 1: %+v", len(cands), cands)
	}
	if _, err := RankAnomalies(curve, 3, 0); err == nil {
		t.Error("topK=0 should error")
	}
}

func TestDetectFindsPlantedAnomaly(t *testing.T) {
	period := 50
	pos := 1000
	s := periodicWithAnomaly(2000, period, pos, 1)
	res, err := Detect(s, period, sax.Params{W: 5, A: 5}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates returned")
	}
	best := math.Inf(1)
	for _, c := range res.Candidates {
		if d := math.Abs(float64(c.Pos - pos)); d < best {
			best = d
		}
	}
	if best > float64(period) {
		t.Errorf("no candidate within one period of the planted anomaly at %d; candidates %+v",
			pos, res.Candidates)
	}
	if len(res.Curve) != len(s) {
		t.Errorf("curve length %d, want %d", len(res.Curve), len(s))
	}
	if res.NumRules < 2 {
		t.Errorf("periodic series should induce rules, got %d", res.NumRules)
	}
}

func TestDetectWindowErrors(t *testing.T) {
	s := periodicWithAnomaly(200, 20, 100, 2)
	if _, err := Detect(s, 1, sax.Params{W: 1, A: 3}, nil, 3); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := Detect(s, 300, sax.Params{W: 4, A: 4}, nil, 3); err == nil {
		t.Error("n>len should error")
	}
	if _, err := Detect(timeseries.Series{}, 10, sax.Params{W: 4, A: 4}, nil, 3); err == nil {
		t.Error("empty series should error")
	}
	if _, err := Detect(s, 20, sax.Params{W: 25, A: 4}, nil, 3); err == nil {
		t.Error("w>n should error")
	}
}

func TestDetectConstantSeries(t *testing.T) {
	// A constant series discretizes to a single repeated word which the
	// numerosity reduction collapses to one token; no rules are induced and
	// the curve is all zeros. The detector must not panic and must still
	// return non-overlapping candidates.
	s := make(timeseries.Series, 300)
	for i := range s {
		s[i] = 42
	}
	res, err := Detect(s, 30, sax.Params{W: 4, A: 4}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Curve {
		if v != 0 {
			t.Fatalf("constant series should have zero density, got %v", v)
		}
	}
	if res.NumTokens != 1 {
		t.Errorf("constant series should reduce to 1 token, got %d", res.NumTokens)
	}
}

func TestDetectWithSharedResolver(t *testing.T) {
	s := periodicWithAnomaly(1500, 40, 700, 3)
	mr, err := sax.NewMultiResolver(10)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Detect(s, 40, sax.Params{W: 6, A: 6}, mr, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Detect(s, 40, sax.Params{W: 6, A: 6}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Curve {
		if r1.Curve[i] != r2.Curve[i] {
			t.Fatalf("curve differs at %d with/without shared resolver", i)
		}
	}
}

func TestDensityCurveClampsAtSeriesEnd(t *testing.T) {
	// Rule occurrences whose last window extends to the series end must not
	// write past the curve.
	words := []string{"a", "b", "a", "b"}
	tokens := []sax.Token{{Word: "a", Pos: 0}, {Word: "b", Pos: 1}, {Word: "a", Pos: 2}, {Word: "b", Pos: 3}}
	g, _ := sequitur.Induce(words)
	curve, err := DensityCurve(g, tokens, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 6 {
		t.Fatalf("curve length %d, want 6", len(curve))
	}
}
