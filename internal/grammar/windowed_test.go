package grammar

import (
	"math/rand"
	"testing"

	"egi/internal/sax"
	"egi/internal/sequitur"
)

// randWords draws a token-position sequence the way a numerosity-reduced
// discretization would emit it: strictly ascending positions starting at
// startWin, adjacent words always distinct.
func randWords(rng *rand.Rand, startWin, count, alphabet int) ([]string, []int) {
	words := make([]string, 0, count)
	pos := make([]int, 0, count)
	p := startWin
	prev := -1
	for len(words) < count {
		w := rng.Intn(alphabet)
		for w == prev {
			w = rng.Intn(alphabet)
		}
		prev = w
		words = append(words, string(rune('a'+w)))
		pos = append(pos, p)
		p += 1 + rng.Intn(3)
	}
	return words, pos
}

// TestWindowedDensityAnchoredEqualsDensityCurve: with the history anchored
// exactly at the span, WindowedDensityInto over the live builder reproduces
// DensityCurveInto over the frozen grammar and span-local tokens, bit for
// bit — the identity the engine's per-span (rebased) runs rely on.
func TestWindowedDensityAnchoredEqualsDensityCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		start := rng.Intn(500)
		words, pos := randWords(rng, start, 2+rng.Intn(200), 2+rng.Intn(4))
		end := pos[len(pos)-1] + n // span ends at the last window's end

		b := sequitur.NewBuilder()
		for _, w := range words {
			b.Push(w)
		}
		got, err := WindowedDensityInto(nil, b, pos, start, end, n)
		if err != nil {
			t.Fatal(err)
		}

		g, err := sequitur.Induce(words)
		if err != nil {
			t.Fatal(err)
		}
		local := make([]sax.Token, len(words))
		for i := range words {
			local[i] = sax.Token{Word: words[i], Pos: pos[i] - start}
		}
		want, err := DensityCurveInto(nil, g, local, end-start, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: curve lengths %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: curve[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestWindowedDensityRestrictsToSpan: with history extending before the
// span, the curve matches a brute-force accumulation over all occurrences
// clipped to the span, and equals the full-history curve's suffix only
// where no occurrence straddles the boundary — in particular, occurrences
// entirely before the span contribute nothing.
func TestWindowedDensityRestrictsToSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(15)
		base := rng.Intn(100)
		words, pos := randWords(rng, base, 30+rng.Intn(300), 2+rng.Intn(3))
		histEnd := pos[len(pos)-1] + n
		// Live span: a strict suffix of the history's coverage.
		start := base + 1 + rng.Intn(histEnd-base-n)
		end := histEnd

		b := sequitur.NewBuilder()
		for _, w := range words {
			b.Push(w)
		}
		got, err := WindowedDensityInto(nil, b, pos, start, end, n)
		if err != nil {
			t.Fatal(err)
		}

		// Brute force: enumerate every occurrence without a cutoff and
		// accumulate pointwise over the clipped global range.
		want := make([]float64, end-start)
		b.VisitOccurrencesAfter(0, func(_, s, e int) {
			lo, hi := pos[s], pos[e-1]+n
			for p := lo; p < hi; p++ {
				if p >= start && p < end {
					want[p-start]++
				}
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: curve[%d] = %v, brute force %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestWindowedDensityValidation: empty histories and malformed windows are
// rejected like DensityCurveInto rejects them.
func TestWindowedDensityValidation(t *testing.T) {
	b := sequitur.NewBuilder()
	if _, err := WindowedDensityInto(nil, b, nil, 0, 100, 10); err == nil {
		t.Error("empty history should error")
	}
	b.Push("ab")
	if _, err := WindowedDensityInto(nil, b, []int{0}, 0, 5, 10); err == nil {
		t.Error("window longer than span should error")
	}
	if _, err := WindowedDensityInto(nil, b, []int{0}, 0, 5, 0); err == nil {
		t.Error("zero window should error")
	}
}
