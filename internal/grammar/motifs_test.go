package grammar

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"egi/internal/sax"
	"egi/internal/timeseries"
)

func TestFindMotifsOnPeriodicSeries(t *testing.T) {
	// A periodic series is one big motif: the top motif's occurrences
	// should tile most of the series at roughly one-period spacing.
	period := 40
	rng := rand.New(rand.NewSource(2))
	s := make(timeseries.Series, 2000)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.03*rng.NormFloat64()
	}
	motifs, err := FindMotifs(s, period, sax.Params{W: 4, A: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) == 0 {
		t.Fatal("no motifs found in periodic data")
	}
	top := motifs[0]
	if top.Count() < 4 {
		t.Errorf("top motif has only %d occurrences", top.Count())
	}
	if !strings.HasPrefix(top.RuleString, "R") {
		t.Errorf("rule string %q", top.RuleString)
	}
	for _, o := range top.Occurrences {
		if o[0] < 0 || o[1] > len(s) || o[0] >= o[1] {
			t.Errorf("bad occurrence %v", o)
		}
	}
	// Motifs ranked by descending occurrence count.
	for i := 1; i < len(motifs); i++ {
		if motifs[i].Count() > motifs[i-1].Count() {
			t.Errorf("motifs not sorted by count: %d then %d",
				motifs[i-1].Count(), motifs[i].Count())
		}
	}
	if top.MeanLength() <= 0 {
		t.Error("mean length must be positive")
	}
}

func TestFindMotifsUniqueDataHasFew(t *testing.T) {
	// A random walk has little exactly-repeating structure under fine
	// discretization; whatever motifs exist must be non-trivial (>= 2
	// non-overlapping occurrences each).
	rng := rand.New(rand.NewSource(5))
	s := make(timeseries.Series, 1500)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	motifs, err := FindMotifs(s, 50, sax.Params{W: 8, A: 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range motifs {
		distinct := dedupeOverlaps(m.Occurrences)
		if len(distinct) < 2 {
			t.Errorf("motif %s has <2 non-overlapping occurrences", m.RuleString)
		}
	}
}

func TestTopMotifsErrors(t *testing.T) {
	s := make(timeseries.Series, 100)
	for i := range s {
		s[i] = math.Sin(float64(i) / 5)
	}
	if _, err := FindMotifs(s, 20, sax.Params{W: 4, A: 4}, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := FindMotifs(s, 1, sax.Params{W: 1, A: 4}, 3); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := FindMotifs(s, 200, sax.Params{W: 4, A: 4}, 3); err == nil {
		t.Error("n>len should error")
	}
}

func TestDedupeOverlaps(t *testing.T) {
	spans := [][2]int{{10, 20}, {0, 5}, {15, 25}, {30, 40}}
	got := dedupeOverlaps(spans)
	want := [][2]int{{0, 5}, {10, 20}, {30, 40}}
	if len(got) != len(want) {
		t.Fatalf("dedupe = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupe = %v, want %v", got, want)
		}
	}
	if out := dedupeOverlaps(nil); len(out) != 0 {
		t.Errorf("dedupe(nil) = %v", out)
	}
}
