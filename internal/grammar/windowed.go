package grammar

import (
	"fmt"
	"sort"
)

// This file implements the windowed rule density curve used by the
// amortized streaming engine: the grammar is induced over a retained token
// history that may begin *before* the live analysis span (the resumable
// induction epoch), and the curve must cover only the live span, with rule
// occurrences clipped to it and occurrences lying entirely in the expired
// prefix excluded — without freezing or rebuilding the grammar.

// RuleVisitor enumerates rule occurrences over a token sequence: for every
// occurrence of every rule other than the start rule whose token span
// [s, e) extends past index cutoff (e > cutoff), fn(ruleID, s, e) is
// called, nested occurrences reported per use of the enclosing rule. Both
// the frozen sequitur.Grammar and the live sequitur.Builder implement it.
type RuleVisitor interface {
	VisitOccurrencesAfter(cutoff int, fn func(ruleID, s, e int))
}

// WindowedDensityInto computes the rule density curve over the live stream
// span [start, end) from a grammar induced over a retained token history
// that may extend earlier than start. pos[i] is the global window-start
// position of token i of that history (ascending); n is the sliding window
// length. Each rule occurrence covering tokens [s, e) contributes one unit
// of density over the global range [pos[s], pos[e-1]+n) clipped to
// [start, end); occurrences whose range ends at or before start are
// excluded by visitation cutoff without being walked. The returned curve is
// span-local: curve[i] is the density at global position start+i.
//
// When the history is anchored exactly at the span (pos[0] maps the span's
// first window), the result is bit-identical to DensityCurveInto over the
// span-local tokens — the identity that makes per-span induction a special
// case of the windowed computation. dst is grown as needed and reused like
// DensityCurveInto's.
func WindowedDensityInto(dst []float64, v RuleVisitor, pos []int, start, end, n int) ([]float64, error) {
	if len(pos) == 0 {
		return nil, ErrNoTokens
	}
	spanLen := end - start
	if n < 1 || n > spanLen {
		return nil, fmt.Errorf("%w: n=%d span=%d", ErrBadSeries, n, spanLen)
	}
	if cap(dst) < spanLen+1 {
		dst = make([]float64, spanLen+1)
	}
	diff := dst[:spanLen+1]
	for i := range diff {
		diff[i] = 0
	}
	// Tokens whose window range [pos[i], pos[i]+n) ends at or before the
	// span start can never contribute; occurrences ending at or before the
	// last such token are pruned inside the visitation.
	cutoff := sort.Search(len(pos), func(i int) bool { return pos[i]+n > start })
	var visitErr error
	v.VisitOccurrencesAfter(cutoff, func(rule, s, e int) {
		if visitErr != nil {
			return
		}
		if s < 0 || e > len(pos) || s >= e {
			visitErr = fmt.Errorf("%w: rule R%d tokens [%d,%d) of %d", ErrBadSpan, rule, s, e, len(pos))
			return
		}
		lo := pos[s] - start
		if lo < 0 {
			lo = 0
		}
		hi := pos[e-1] + n - start
		if hi > spanLen {
			hi = spanLen
		}
		if lo >= hi {
			return
		}
		diff[lo]++
		diff[hi]--
	})
	if visitErr != nil {
		return nil, visitErr
	}
	curve := diff[:spanLen]
	acc := 0.0
	for i := range curve {
		acc += diff[i]
		curve[i] = acc
	}
	return curve, nil
}
