// Package grammar implements the grammar-induction-based anomaly detection
// pipeline of §5 of the paper: it turns a discretized, numerosity-reduced
// token sequence into a Sequitur grammar, computes the rule density curve
// (the meta time series counting how many grammar rules cover each point),
// and extracts ranked anomaly candidates from the curve's minima.
//
// This package is both a building block of the ensemble (internal/core) and
// a complete single-run detector — the GI-Fix and GI-Random baselines of
// §7.1.3 are thin wrappers around Detect.
package grammar

import (
	"errors"
	"fmt"

	"egi/internal/sax"
	"egi/internal/sequitur"
	"egi/internal/stat"
	"egi/internal/timeseries"
)

// Errors reported by the pipeline.
var (
	ErrBadCurve   = errors.New("grammar: empty density curve")
	ErrBadTopK    = errors.New("grammar: topK must be >= 1")
	ErrBadSpan    = errors.New("grammar: rule occurrence outside series")
	ErrNoTokens   = errors.New("grammar: empty token sequence")
	ErrBadSeries  = errors.New("grammar: series shorter than window")
	ErrBadWindowN = errors.New("grammar: window length must be >= 2")
)

// Candidate is one ranked anomaly candidate: the start of a window of
// Length points whose rule density is locally minimal. Candidates returned
// together never overlap each other (§7.1.2's requirement on the top-3).
type Candidate struct {
	Pos     int     // start index of the anomalous subsequence
	Length  int     // subsequence length (the sliding window length)
	Density float64 // mean rule density over the window; lower = more anomalous
}

// DensityCurve computes the rule density curve for a grammar induced from
// the given numerosity-reduced token sequence. Each occurrence of each rule
// (except the start rule) covering tokens [s, e) is mapped back to the time
// span [tokens[s].Pos, tokens[e-1].Pos + n - 1] — the union of the sliding
// windows its tokens were produced from — and contributes one unit of
// density to every point of that span. Accumulation uses a difference
// array, so the cost is O(#occurrences + seriesLen).
func DensityCurve(g *sequitur.Grammar, tokens []sax.Token, seriesLen, n int) ([]float64, error) {
	return DensityCurveInto(nil, g, tokens, seriesLen, n)
}

// DensityCurveInto is DensityCurve writing into dst, which is grown as
// needed and returned re-sliced to seriesLen; pass a retained slice to
// amortize the allocation across runs (the engine's hot path does). dst's
// previous contents are discarded.
func DensityCurveInto(dst []float64, g *sequitur.Grammar, tokens []sax.Token, seriesLen, n int) ([]float64, error) {
	if len(tokens) == 0 {
		return nil, ErrNoTokens
	}
	if n < 1 || n > seriesLen {
		return nil, fmt.Errorf("%w: n=%d seriesLen=%d", ErrBadSeries, n, seriesLen)
	}
	// The first seriesLen+1 slots serve as the difference array; the curve
	// is then integrated in place over the first seriesLen of them.
	if cap(dst) < seriesLen+1 {
		dst = make([]float64, seriesLen+1)
	}
	diff := dst[:seriesLen+1]
	for i := range diff {
		diff[i] = 0
	}
	var visitErr error
	g.VisitOccurrences(func(rule, s, e int) {
		if visitErr != nil {
			return
		}
		if s < 0 || e > len(tokens) || s >= e {
			visitErr = fmt.Errorf("%w: rule R%d tokens [%d,%d) of %d", ErrBadSpan, rule, s, e, len(tokens))
			return
		}
		lo := tokens[s].Pos
		hi := tokens[e-1].Pos + n // exclusive end of the last window
		if hi > seriesLen {
			hi = seriesLen
		}
		diff[lo]++
		diff[hi]--
	})
	if visitErr != nil {
		return nil, visitErr
	}
	curve := diff[:seriesLen]
	acc := 0.0
	for i := range curve {
		acc += diff[i]
		curve[i] = acc
	}
	return curve, nil
}

// WindowScores converts a pointwise density curve into per-window scores:
// score[p] is the mean density over [p, p+n). Ranking windows by their mean
// density rather than a single point makes the minima extraction robust to
// one-point dips. Computed with prefix sums in O(len).
func WindowScores(curve []float64, n int) ([]float64, error) {
	if len(curve) == 0 {
		return nil, ErrBadCurve
	}
	if n < 1 || n > len(curve) {
		return nil, fmt.Errorf("%w: n=%d len=%d", ErrBadSeries, n, len(curve))
	}
	prefix := make([]float64, len(curve)+1)
	for i, v := range curve {
		prefix[i+1] = prefix[i] + v
	}
	out := make([]float64, len(curve)-n+1)
	inv := 1 / float64(n)
	for p := range out {
		out[p] = (prefix[p+n] - prefix[p]) * inv
	}
	return out, nil
}

// RankAnomalies extracts up to topK non-overlapping anomaly candidates from
// a rule density curve: window start positions are ranked by ascending mean
// window density (ties broken toward the leftmost position), and a window
// is skipped if it overlaps an already selected candidate.
func RankAnomalies(curve []float64, n, topK int) ([]Candidate, error) {
	if topK < 1 {
		return nil, ErrBadTopK
	}
	scores, err := WindowScores(curve, n)
	if err != nil {
		return nil, err
	}
	order := stat.ArgSortAsc(scores)
	var out []Candidate
	for _, p := range order {
		if len(out) == topK {
			break
		}
		overlaps := false
		for _, c := range out {
			if p < c.Pos+c.Length && c.Pos < p+n {
				overlaps = true
				break
			}
		}
		if !overlaps {
			out = append(out, Candidate{Pos: p, Length: n, Density: scores[p]})
		}
	}
	return out, nil
}

// Result bundles everything a single grammar-induction run produces.
type Result struct {
	Params     sax.Params  // discretization parameters used
	Curve      []float64   // rule density curve, len == len(series)
	Candidates []Candidate // ranked anomaly candidates
	NumRules   int         // grammar size (including the start rule)
	NumTokens  int         // numerosity-reduced token count
}

// newFeaturesChecked validates the window against the series and computes
// the prefix-sum features.
func newFeaturesChecked(series timeseries.Series, n int) (*timeseries.Features, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadWindowN, n)
	}
	if n > len(series) {
		return nil, fmt.Errorf("%w: n=%d len=%d", ErrBadSeries, n, len(series))
	}
	return timeseries.NewFeatures(series)
}

// Detect runs the full single-parameter pipeline of §5 (the GrammarViz
// detector): discretize with sliding window n and parameters p, induce a
// grammar, build the density curve, and rank the topK anomaly candidates.
// The resolver mr must cover p.A; pass nil to have one built on the fly.
func Detect(series timeseries.Series, n int, p sax.Params, mr *sax.MultiResolver, topK int) (*Result, error) {
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	return DetectWithFeatures(f, n, p, mr, topK)
}

// DetectWithFeatures is Detect for callers that already computed the
// prefix-sum features (the ensemble shares one Features across members).
func DetectWithFeatures(f *timeseries.Features, n int, p sax.Params, mr *sax.MultiResolver, topK int) (*Result, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadWindowN, n)
	}
	if n > f.SeriesLen() {
		return nil, fmt.Errorf("%w: n=%d len=%d", ErrBadSeries, n, f.SeriesLen())
	}
	if mr == nil {
		mr, err := sax.NewMultiResolver(p.A)
		if err != nil {
			return nil, err
		}
		return detect(f, n, p, mr, topK)
	}
	return detect(f, n, p, mr, topK)
}

func detect(f *timeseries.Features, n int, p sax.Params, mr *sax.MultiResolver, topK int) (*Result, error) {
	tokens, err := sax.Discretize(f, n, p, mr)
	if err != nil {
		return nil, err
	}
	return DetectFromTokens(tokens, f.SeriesLen(), n, p, topK)
}

// DetectFromTokens runs induction, density curve and ranking over an
// already-discretized token sequence. The ensemble calls this per member
// after its shared multi-resolution discretization pass.
func DetectFromTokens(tokens []sax.Token, seriesLen, n int, p sax.Params, topK int) (*Result, error) {
	words := make([]string, len(tokens))
	for i, t := range tokens {
		words[i] = t.Word
	}
	g, err := sequitur.Induce(words)
	if err != nil {
		return nil, err
	}
	curve, err := DensityCurve(g, tokens, seriesLen, n)
	if err != nil {
		return nil, err
	}
	cands, err := RankAnomalies(curve, n, topK)
	if err != nil {
		return nil, err
	}
	return &Result{
		Params:     p,
		Curve:      curve,
		Candidates: cands,
		NumRules:   g.NumRules(),
		NumTokens:  len(tokens),
	}, nil
}
