package grammar

import (
	"fmt"
	"sort"

	"egi/internal/sax"
	"egi/internal/sequitur"
)

// Motif is a repeated pattern discovered through the induced grammar: a
// grammar rule together with the time series spans of all its occurrences.
// Grammar rules are repeating strings of SAX words, so their occurrences
// are (approximately) similar subsequences — the motif discovery view of
// GrammarViz that the anomaly detector inverts (§2 of the paper).
type Motif struct {
	// Rule is the grammar rule index the motif corresponds to.
	Rule int
	// RuleString renders the rule for display, e.g. "R2 -> ab bc aa".
	RuleString string
	// Occurrences holds the [start, end) spans in the original series.
	Occurrences [][2]int
}

// Count returns the number of occurrences.
func (m Motif) Count() int { return len(m.Occurrences) }

// MeanLength returns the average occurrence length in points.
func (m Motif) MeanLength() float64 {
	if len(m.Occurrences) == 0 {
		return 0
	}
	total := 0
	for _, o := range m.Occurrences {
		total += o[1] - o[0]
	}
	return float64(total) / float64(len(m.Occurrences))
}

// TopMotifs extracts the k most frequent motifs from a grammar induced
// over the numerosity-reduced token sequence. Ties on frequency are broken
// toward longer expansions (more specific patterns). Rules whose
// occurrences all overlap (trivial matches) are skipped.
func TopMotifs(g *sequitur.Grammar, tokens []sax.Token, seriesLen, n, k int) ([]Motif, error) {
	if k < 1 {
		return nil, ErrBadTopK
	}
	if len(tokens) == 0 {
		return nil, ErrNoTokens
	}
	if n < 1 || n > seriesLen {
		return nil, fmt.Errorf("%w: n=%d seriesLen=%d", ErrBadSeries, n, seriesLen)
	}
	occs := make(map[int][][2]int)
	var visitErr error
	g.VisitOccurrences(func(rule, s, e int) {
		if visitErr != nil {
			return
		}
		if s < 0 || e > len(tokens) || s >= e {
			visitErr = fmt.Errorf("%w: rule R%d tokens [%d,%d)", ErrBadSpan, rule, s, e)
			return
		}
		lo := tokens[s].Pos
		hi := tokens[e-1].Pos + n
		if hi > seriesLen {
			hi = seriesLen
		}
		occs[rule] = append(occs[rule], [2]int{lo, hi})
	})
	if visitErr != nil {
		return nil, visitErr
	}

	type scored struct {
		rule   int
		spans  [][2]int
		expLen int
	}
	var all []scored
	for rule, spans := range occs {
		distinct := dedupeOverlaps(spans)
		if len(distinct) < 2 {
			continue // all occurrences overlap: a trivial match, not a motif
		}
		all = append(all, scored{rule: rule, spans: spans, expLen: g.ExpansionLen(rule)})
	}
	sort.SliceStable(all, func(i, j int) bool {
		if len(all[i].spans) != len(all[j].spans) {
			return len(all[i].spans) > len(all[j].spans)
		}
		if all[i].expLen != all[j].expLen {
			return all[i].expLen > all[j].expLen
		}
		return all[i].rule < all[j].rule
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]Motif, 0, k)
	for _, s := range all[:k] {
		sort.Slice(s.spans, func(a, b int) bool { return s.spans[a][0] < s.spans[b][0] })
		out = append(out, Motif{
			Rule:        s.rule,
			RuleString:  g.RuleString(s.rule),
			Occurrences: s.spans,
		})
	}
	return out, nil
}

// dedupeOverlaps greedily selects non-overlapping spans (earliest first).
func dedupeOverlaps(spans [][2]int) [][2]int {
	sorted := append([][2]int(nil), spans...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a][0] < sorted[b][0] })
	var out [][2]int
	lastEnd := -1
	for _, s := range sorted {
		if s[0] >= lastEnd {
			out = append(out, s)
			lastEnd = s[1]
		}
	}
	return out
}

// FindMotifs runs the full discovery pipeline: discretize the series with
// window n and parameters p, induce a grammar, and return the top-k motifs.
func FindMotifs(series []float64, n int, p sax.Params, k int) ([]Motif, error) {
	res, tokens, err := detectKeepTokens(series, n, p)
	if err != nil {
		return nil, err
	}
	return TopMotifs(res, tokens, len(series), n, k)
}

// detectKeepTokens is the discretize+induce prefix of Detect that also
// returns the token sequence (Detect discards it).
func detectKeepTokens(series []float64, n int, p sax.Params) (*sequitur.Grammar, []sax.Token, error) {
	f, err := newFeaturesChecked(series, n)
	if err != nil {
		return nil, nil, err
	}
	mr, err := sax.NewMultiResolver(p.A)
	if err != nil {
		return nil, nil, err
	}
	tokens, err := sax.Discretize(f, n, p, mr)
	if err != nil {
		return nil, nil, err
	}
	words := make([]string, len(tokens))
	for i, t := range tokens {
		words[i] = t.Word
	}
	g, err := sequitur.Induce(words)
	if err != nil {
		return nil, nil, err
	}
	return g, tokens, nil
}
