package matrixprofile

import (
	"math"
	"runtime"
	"sync"

	"egi/internal/fft"
	"egi/internal/timeseries"
)

// STOMPParallel computes the same matrix profile as STOMP using multiple
// workers. The row range is split into contiguous blocks; each block seeds
// its own QT row with one FFT sliding-dot-product and then runs the O(1)
// per-cell recurrence privately, writing into a worker-local profile.
// Local profiles are merged by pointwise minimum at the end, so there is
// no locking on the hot path.
//
// workers <= 0 selects GOMAXPROCS. With one worker the computation is
// exactly STOMP (plus one extra FFT).
func STOMPParallel(series timeseries.Series, m, excl, workers int) (*Profile, error) {
	if err := series.Validate(); err != nil {
		return nil, err
	}
	numSub, excl, err := checkArgs(len(series), m, excl)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numSub {
		workers = numSub
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	means, stds, err := f.MovingMeansStds(m)
	if err != nil {
		return nil, err
	}
	flats := flatWindows(series, m)
	row0, err := fft.SlidingDotProducts(series[0:m], series)
	if err != nil {
		return nil, err
	}

	locals := make([]*Profile, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * numSub / workers
		hi := (wkr + 1) * numSub / workers
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			local := newProfile(numSub, m)
			locals[wkr] = local
			if lo >= hi {
				return
			}
			// Seed the block with QT(lo, ·).
			var qt []float64
			if lo == 0 {
				qt = append([]float64(nil), row0...)
			} else {
				seeded, err := fft.SlidingDotProducts(series[lo:lo+m], series)
				if err != nil {
					errs[wkr] = err
					return
				}
				qt = seeded
			}
			for i := lo; i < hi; i++ {
				if i > lo {
					for j := numSub - 1; j >= 1; j-- {
						qt[j] = qt[j-1] - series[i-1]*series[j-1] + series[i+m-1]*series[j+m-1]
					}
					qt[0] = row0[i]
				}
				for j := i + excl; j < numSub; j++ {
					d := zdist(qt[j], m, means[i], stds[i], flats[i], means[j], stds[j], flats[j])
					local.update(i, j, d)
				}
			}
		}(wkr, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := newProfile(numSub, m)
	for _, local := range locals {
		for i := range merged.P {
			if local.P[i] < merged.P[i] {
				merged.P[i] = local.P[i]
				merged.I[i] = local.I[i]
			}
		}
	}
	// Positions with no valid pair stay at +Inf / -1, same as STOMP.
	for i := range merged.P {
		if math.IsInf(merged.P[i], 1) {
			merged.I[i] = -1
		}
	}
	return merged, nil
}
