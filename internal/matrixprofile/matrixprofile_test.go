package matrixprofile

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/timeseries"
)

func sineWithAnomaly(length, period, pos int, seed int64) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.03*rng.NormFloat64()
	}
	for i := pos; i < pos+period && i < length; i++ {
		s[i] = -1.5 + 3*math.Abs(float64(i-pos)/float64(period)-0.5) + 0.03*rng.NormFloat64()
	}
	return s
}

func profilesEqual(t *testing.T, name string, a, b *Profile, tol float64) {
	t.Helper()
	if len(a.P) != len(b.P) {
		t.Fatalf("%s: profile lengths %d vs %d", name, len(a.P), len(b.P))
	}
	for i := range a.P {
		if math.Abs(a.P[i]-b.P[i]) > tol {
			t.Fatalf("%s: P[%d] = %v vs %v", name, i, a.P[i], b.P[i])
		}
	}
}

func TestSTOMPAndSTAMPMatchBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s := sineWithAnomaly(400, 40, 200, seed)
		bf, err := BruteForce(s, 40, 0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := STOMP(s, 40, 0)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := STAMP(s, 40, 0)
		if err != nil {
			t.Fatal(err)
		}
		profilesEqual(t, "STOMP vs brute", st, bf, 1e-6)
		profilesEqual(t, "STAMP vs brute", sa, bf, 1e-6)
	}
}

func TestSTOMPMatchesBruteForceRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		n := 150 + rng.Intn(200)
		m := 10 + rng.Intn(30)
		s := make(timeseries.Series, n)
		v := 0.0
		for i := range s {
			v += rng.NormFloat64()
			s[i] = v
		}
		bf, err := BruteForce(s, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := STOMP(s, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		profilesEqual(t, "STOMP vs brute (rw)", st, bf, 1e-5)
	}
}

func TestSTOMPWithFlatRegions(t *testing.T) {
	// Series containing perfectly flat stretches exercises the σ=0
	// conventions; all three implementations must agree.
	s := make(timeseries.Series, 300)
	rng := rand.New(rand.NewSource(5))
	for i := range s {
		switch {
		case i >= 50 && i < 120:
			s[i] = 2 // flat block
		case i >= 200 && i < 240:
			s[i] = -1 // second flat block
		default:
			s[i] = rng.NormFloat64()
		}
	}
	m := 20
	bf, err := BruteForce(s, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := STOMP(s, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := STAMP(s, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, "STOMP vs brute (flat)", st, bf, 1e-5)
	profilesEqual(t, "STAMP vs brute (flat)", sa, bf, 1e-5)
	// Two flat windows must be each other's zero-distance matches.
	if bf.P[60] != 0 {
		t.Errorf("flat window should have a zero-distance match, got %v", bf.P[60])
	}
}

func TestMASSMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := make(timeseries.Series, 300)
	for i := range s {
		s[i] = rng.NormFloat64() + math.Sin(float64(i)/9)
	}
	m := 25
	q := append([]float64(nil), s[40:40+m]...)
	got, err := MASS(q, s)
	if err != nil {
		t.Fatal(err)
	}
	// Naive z-normalized distances.
	znorm := func(x []float64) []float64 {
		mu, sd := 0.0, 0.0
		for _, v := range x {
			mu += v
		}
		mu /= float64(len(x))
		for _, v := range x {
			sd += (v - mu) * (v - mu)
		}
		sd = math.Sqrt(sd / float64(len(x)))
		out := make([]float64, len(x))
		if sd < Eps {
			return out
		}
		for i, v := range x {
			out[i] = (v - mu) / sd
		}
		return out
	}
	zq := znorm(q)
	for i := 0; i+m <= len(s); i++ {
		zi := znorm(s[i : i+m])
		var d float64
		for k := 0; k < m; k++ {
			d += (zq[k] - zi[k]) * (zq[k] - zi[k])
		}
		d = math.Sqrt(d)
		if math.Abs(got[i]-d) > 1e-6 {
			t.Fatalf("MASS[%d] = %v, naive %v", i, got[i], d)
		}
	}
	// The self-match at 40 must be ~0.
	if got[40] > 1e-6 {
		t.Errorf("self match distance %v, want ~0", got[40])
	}
}

func TestTopDiscordsFindPlantedAnomaly(t *testing.T) {
	period := 50
	pos := 600
	s := sineWithAnomaly(1200, period, pos, 4)
	p, err := STOMP(s, period, 0)
	if err != nil {
		t.Fatal(err)
	}
	discords := p.TopDiscords(3)
	if len(discords) == 0 {
		t.Fatal("no discords")
	}
	if d := math.Abs(float64(discords[0].Pos - pos)); d > float64(period) {
		t.Errorf("top discord at %d, planted anomaly at %d", discords[0].Pos, pos)
	}
	// Ranked descending, non-overlapping.
	for i := 1; i < len(discords); i++ {
		if discords[i].Dist > discords[i-1].Dist {
			t.Errorf("discords not sorted by distance: %+v", discords)
		}
	}
	for i := range discords {
		for j := i + 1; j < len(discords); j++ {
			a, b := discords[i], discords[j]
			if a.Pos < b.Pos+b.Length && b.Pos < a.Pos+a.Length {
				t.Errorf("discords overlap: %+v %+v", a, b)
			}
		}
	}
}

func TestExclusionZoneDefaultIsM(t *testing.T) {
	s := sineWithAnomaly(300, 30, 150, 8)
	p, err := STOMP(s, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, nn := range p.I {
		if nn >= 0 && abs(i-nn) < 30 {
			t.Errorf("subsequence %d matched %d inside default exclusion zone", i, nn)
		}
	}
	// Custom (smaller) exclusion zone allows closer matches and can only
	// lower profile values.
	p2, err := STOMP(s, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.P {
		if p2.P[i] > p.P[i]+1e-9 {
			t.Errorf("smaller exclusion zone increased P[%d]: %v > %v", i, p2.P[i], p.P[i])
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestArgumentValidation(t *testing.T) {
	s := sineWithAnomaly(100, 20, 50, 2)
	for _, fn := range []func(timeseries.Series, int, int) (*Profile, error){BruteForce, STAMP, STOMP} {
		if _, err := fn(s, 1, 0); err == nil {
			t.Error("m=1 should error")
		}
		if _, err := fn(s, 101, 0); err == nil {
			t.Error("m>n should error")
		}
		if _, err := fn(s, 95, 0); err == nil {
			t.Error("too few subsequences for exclusion zone should error")
		}
		if _, err := fn(timeseries.Series{}, 10, 0); err == nil {
			t.Error("empty series should error")
		}
	}
	if _, err := MASS([]float64{1}, s); err == nil {
		t.Error("m=1 MASS should error")
	}
	if _, err := MASS(make([]float64, 200), s); err == nil {
		t.Error("query longer than series should error")
	}
}

func TestTopDiscordsEdgeCases(t *testing.T) {
	s := sineWithAnomaly(400, 40, 200, 6)
	p, err := STOMP(s, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.TopDiscords(0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
	// Asking for more discords than fit returns fewer, without panic.
	many := p.TopDiscords(1000)
	if len(many) == 0 || len(many) > len(p.P) {
		t.Errorf("got %d discords", len(many))
	}
}

func TestProfileSymmetricUpdate(t *testing.T) {
	// Every nearest-neighbor distance must itself be witnessed: if I[i]=j
	// then P[j] <= P[i] + tolerance is not generally true, but P[i] must
	// equal the distance d(i, I[i]) which is also a candidate for P[I[i]],
	// so P[I[i]] <= P[i].
	s := sineWithAnomaly(500, 25, 250, 10)
	p, err := STOMP(s, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range p.I {
		if j >= 0 && p.P[j] > p.P[i]+1e-9 {
			t.Errorf("P[%d]=%v has NN %d with larger P=%v", i, p.P[i], j, p.P[j])
		}
	}
}

func BenchmarkSTOMP4k(b *testing.B) {
	s := sineWithAnomaly(4000, 100, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := STOMP(s, 100, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBruteForce1k(b *testing.B) {
	s := sineWithAnomaly(1000, 50, 500, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BruteForce(s, 50, 0); err != nil {
			b.Fatal(err)
		}
	}
}
