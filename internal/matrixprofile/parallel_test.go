package matrixprofile

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/timeseries"
)

func TestSTOMPParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		for seed := int64(1); seed <= 2; seed++ {
			s := sineWithAnomaly(500, 40, 250, seed)
			seq, err := STOMP(s, 40, 0)
			if err != nil {
				t.Fatal(err)
			}
			par, err := STOMPParallel(s, 40, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par.P) != len(seq.P) {
				t.Fatalf("workers=%d: profile lengths differ", workers)
			}
			for i := range seq.P {
				if math.Abs(par.P[i]-seq.P[i]) > 1e-6 {
					t.Fatalf("workers=%d seed=%d: P[%d] = %v vs %v",
						workers, seed, i, par.P[i], seq.P[i])
				}
			}
		}
	}
}

func TestSTOMPParallelRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := make(timeseries.Series, 600)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	seq, err := STOMP(s, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := STOMPParallel(s, 25, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, "parallel vs sequential (rw)", par, seq, 1e-5)
	// Discords must agree too.
	ds, dp := seq.TopDiscords(3), par.TopDiscords(3)
	if len(ds) != len(dp) {
		t.Fatalf("discord counts differ: %d vs %d", len(ds), len(dp))
	}
	for i := range ds {
		if ds[i].Pos != dp[i].Pos {
			t.Errorf("discord %d at %d vs %d", i, ds[i].Pos, dp[i].Pos)
		}
	}
}

func TestSTOMPParallelMoreWorkersThanRows(t *testing.T) {
	s := sineWithAnomaly(80, 10, 40, 5)
	par, err := STOMPParallel(s, 10, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := STOMP(s, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, "many workers", par, seq, 1e-6)
}

func TestSTOMPParallelValidation(t *testing.T) {
	s := sineWithAnomaly(100, 20, 50, 2)
	if _, err := STOMPParallel(s, 1, 0, 2); err == nil {
		t.Error("m=1 should error")
	}
	if _, err := STOMPParallel(timeseries.Series{}, 10, 0, 2); err == nil {
		t.Error("empty series should error")
	}
}
