// Package matrixprofile implements the distance-based discord discovery
// baseline of the paper (§2, §7.1.3, §7.3): the matrix profile — the
// 1-nearest-neighbor z-normalized Euclidean distance of every subsequence —
// computed three ways:
//
//   - BruteForce: the O(n² m) reference used to validate the fast paths;
//   - STAMP [21]: one MASS (FFT) distance profile per row, O(n² log n);
//   - STOMP [23]: the O(n²) dot-product-recurrence algorithm the paper
//     benchmarks against (its Discord baseline and Fig. 8 competitor).
//
// The time series discord (Keogh et al. [9]) is then the subsequence with
// the largest profile value; TopDiscords extracts the top-k non-overlapping
// ones.
//
// Conventions shared by all three implementations (and asserted equal in
// the tests): subsequences are z-normalized with the flat-window rule of
// package stat (σ≈0 ⇒ the zero vector), so the distance between two flat
// windows is 0 and between a flat and a non-flat window is √m. The
// exclusion zone around each subsequence defaults to the full window length
// m, the non-self-match requirement of the discord definition.
package matrixprofile

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"egi/internal/fft"
	"egi/internal/timeseries"
)

// Eps is the flat-window standard deviation threshold.
const Eps = 1e-9

// Errors reported by the profile computations.
var (
	ErrBadSubLen    = errors.New("matrixprofile: subsequence length out of range")
	ErrTooFewSubseq = errors.New("matrixprofile: series too short for any non-self match")
)

// Profile is a matrix profile: for every subsequence start i, P[i] is the
// z-normalized Euclidean distance to its nearest non-self match and I[i]
// that match's start index (-1 if none exists).
type Profile struct {
	P []float64
	I []int
	M int // subsequence length the profile was computed with
}

// Discord is one extracted anomaly: the subsequence at Pos whose nearest
// non-self match is Dist away.
type Discord struct {
	Pos    int
	Length int
	Dist   float64
	NN     int // nearest neighbor position
}

// checkArgs validates and returns the number of subsequences and the
// effective exclusion zone (excl <= 0 selects the default m).
func checkArgs(n, m, excl int) (numSub, exclOut int, err error) {
	if m < 2 || m > n {
		return 0, 0, fmt.Errorf("%w: m=%d n=%d", ErrBadSubLen, m, n)
	}
	numSub = n - m + 1
	if excl <= 0 {
		excl = m
	}
	if numSub <= excl {
		return 0, 0, fmt.Errorf("%w: %d subsequences, exclusion zone %d", ErrTooFewSubseq, numSub, excl)
	}
	return numSub, excl, nil
}

// zdist computes the z-normalized distance between subsequences i and j
// from their dot product qt and precomputed moments, applying the flat
// conventions. m is the subsequence length. Flatness flags are computed
// exactly (all window values equal) rather than from a σ threshold, because
// prefix-sum cancellation can leave a tiny nonzero σ on flat windows.
func zdist(qt float64, m int, mi, si float64, flatI bool, mj, sj float64, flatJ bool) float64 {
	fm := float64(m)
	flatI = flatI || si < Eps
	flatJ = flatJ || sj < Eps
	switch {
	case flatI && flatJ:
		return 0
	case flatI || flatJ:
		return math.Sqrt(fm)
	}
	corr := (qt - fm*mi*mj) / (fm * si * sj)
	if corr > 1 {
		corr = 1
	}
	if corr < -1 {
		corr = -1
	}
	return math.Sqrt(2 * fm * (1 - corr))
}

// flatWindows reports, for every window start, whether all m values of the
// window are identical. Computed in O(n) from run lengths of equal values.
func flatWindows(s timeseries.Series, m int) []bool {
	n := len(s)
	run := make([]int, n) // run[i] = length of the equal-value run starting at i
	for i := n - 1; i >= 0; i-- {
		if i == n-1 || s[i] != s[i+1] {
			run[i] = 1
		} else {
			run[i] = run[i+1] + 1
		}
	}
	out := make([]bool, n-m+1)
	for i := range out {
		out[i] = run[i] >= m
	}
	return out
}

// BruteForce computes the matrix profile by explicit pairwise z-normalized
// distances. O(n²m) time; the reference implementation for tests.
func BruteForce(series timeseries.Series, m, excl int) (*Profile, error) {
	if err := series.Validate(); err != nil {
		return nil, err
	}
	numSub, excl, err := checkArgs(len(series), m, excl)
	if err != nil {
		return nil, err
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	means, stds, err := f.MovingMeansStds(m)
	if err != nil {
		return nil, err
	}
	flats := flatWindows(series, m)
	p := newProfile(numSub, m)
	for i := 0; i < numSub; i++ {
		for j := i + excl; j < numSub; j++ {
			var qt float64
			for k := 0; k < m; k++ {
				qt += series[i+k] * series[j+k]
			}
			d := zdist(qt, m, means[i], stds[i], flats[i], means[j], stds[j], flats[j])
			p.update(i, j, d)
		}
	}
	return p, nil
}

func newProfile(numSub, m int) *Profile {
	p := &Profile{P: make([]float64, numSub), I: make([]int, numSub), M: m}
	for i := range p.P {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
	}
	return p
}

func (p *Profile) update(i, j int, d float64) {
	if d < p.P[i] {
		p.P[i] = d
		p.I[i] = j
	}
	if d < p.P[j] {
		p.P[j] = d
		p.I[j] = i
	}
}

// MASS computes the distance profile of query against every subsequence of
// series of the query's length, using the FFT sliding dot product
// (Mueen's Algorithm for Similarity Search). The query is z-normalized
// internally; flat conventions as in the package comment.
func MASS(query []float64, series timeseries.Series) ([]float64, error) {
	m := len(query)
	if m < 2 || m > len(series) {
		return nil, fmt.Errorf("%w: m=%d n=%d", ErrBadSubLen, m, len(series))
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	means, stds, err := f.MovingMeansStds(m)
	if err != nil {
		return nil, err
	}
	qf, err := timeseries.NewFeatures(query)
	if err != nil {
		return nil, err
	}
	qm, qs := qf.RangeMeanStd(0, m)
	qFlat := true
	for _, v := range query[1:] {
		if v != query[0] {
			qFlat = false
			break
		}
	}
	flats := flatWindows(series, m)
	qt, err := fft.SlidingDotProducts(query, series)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(qt))
	for i := range out {
		out[i] = zdist(qt[i], m, qm, qs, qFlat, means[i], stds[i], flats[i])
	}
	return out, nil
}

// STAMP computes the matrix profile using one MASS pass per subsequence.
// O(n² log n) total; kept both as a second fast implementation to
// cross-check STOMP and because the paper discusses it alongside STOMP.
func STAMP(series timeseries.Series, m, excl int) (*Profile, error) {
	if err := series.Validate(); err != nil {
		return nil, err
	}
	numSub, excl, err := checkArgs(len(series), m, excl)
	if err != nil {
		return nil, err
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	means, stds, err := f.MovingMeansStds(m)
	if err != nil {
		return nil, err
	}
	flats := flatWindows(series, m)
	p := newProfile(numSub, m)
	for i := 0; i < numSub; i++ {
		qt, err := fft.SlidingDotProducts(series[i:i+m], series)
		if err != nil {
			return nil, err
		}
		for j := i + excl; j < numSub; j++ {
			d := zdist(qt[j], m, means[i], stds[i], flats[i], means[j], stds[j], flats[j])
			p.update(i, j, d)
		}
	}
	return p, nil
}

// STOMP computes the matrix profile with the O(n²) dot-product recurrence
// of Zhu et al. [23]:
//
//	QT(i,j) = QT(i-1,j-1) - t[i-1]·t[j-1] + t[i+m-1]·t[j+m-1]
//
// seeded by one FFT sliding-dot-product row. This is the paper's Discord
// baseline and the quadratic competitor of the Fig. 8 scalability study.
func STOMP(series timeseries.Series, m, excl int) (*Profile, error) {
	if err := series.Validate(); err != nil {
		return nil, err
	}
	numSub, excl, err := checkArgs(len(series), m, excl)
	if err != nil {
		return nil, err
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	means, stds, err := f.MovingMeansStds(m)
	if err != nil {
		return nil, err
	}
	// Row 0: QT(0, j) for all j.
	row0, err := fft.SlidingDotProducts(series[0:m], series)
	if err != nil {
		return nil, err
	}
	flats := flatWindows(series, m)
	p := newProfile(numSub, m)
	qt := append([]float64(nil), row0...)
	for i := 0; i < numSub; i++ {
		if i > 0 {
			// Update in place right-to-left so QT(i-1, j-1) is still
			// available when computing QT(i, j).
			for j := numSub - 1; j >= 1; j-- {
				qt[j] = qt[j-1] - series[i-1]*series[j-1] + series[i+m-1]*series[j+m-1]
			}
			qt[0] = row0[i] // QT(i, 0) = QT(0, i) by symmetry
		}
		for j := i + excl; j < numSub; j++ {
			d := zdist(qt[j], m, means[i], stds[i], flats[i], means[j], stds[j], flats[j])
			p.update(i, j, d)
		}
	}
	return p, nil
}

// TopDiscords returns up to k discords: subsequences ranked by descending
// profile value, skipping any that overlaps an already selected one and any
// without a valid non-self match.
func (p *Profile) TopDiscords(k int) []Discord {
	if k < 1 {
		return nil
	}
	order := make([]int, len(p.P))
	for i := range order {
		order[i] = i
	}
	// Descending by profile value; stable, so ties resolve to the leftmost.
	sort.SliceStable(order, func(a, b int) bool { return p.P[order[a]] > p.P[order[b]] })
	var out []Discord
	for _, i := range order {
		if len(out) == k {
			break
		}
		if p.I[i] < 0 || math.IsInf(p.P[i], 1) {
			continue
		}
		overlaps := false
		for _, d := range out {
			if i < d.Pos+d.Length && d.Pos < i+p.M {
				overlaps = true
				break
			}
		}
		if !overlaps {
			out = append(out, Discord{Pos: i, Length: p.M, Dist: p.P[i], NN: p.I[i]})
		}
	}
	return out
}
