// Package timeseries provides the time series primitives the rest of the
// library builds on: the Series type, subsequence extraction, the
// prefix-sum feature vectors ESumx/ESumxx of §6.2.1 that power FastPAA
// (Algorithm 2 in the paper), and CSV input/output.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Series is a univariate time series: observations ordered by time.
type Series []float64

// Errors returned by subsequence and feature operations.
var (
	ErrEmptySeries  = errors.New("timeseries: empty series")
	ErrBadWindow    = errors.New("timeseries: window length out of range")
	ErrBadSubseq    = errors.New("timeseries: subsequence bounds out of range")
	ErrNonFinite    = errors.New("timeseries: series contains NaN or Inf")
	ErrShortSeries  = errors.New("timeseries: series shorter than window")
	ErrConstantData = errors.New("timeseries: constant series carries no shape information")
)

// Len returns the number of observations.
func (s Series) Len() int { return len(s) }

// Clone returns a deep copy of the series.
func (s Series) Clone() Series { return append(Series(nil), s...) }

// Validate checks that the series is non-empty and contains only finite
// values. All public entry points of the library validate their input once
// up front so internal code can assume clean data.
func (s Series) Validate() error {
	if len(s) == 0 {
		return ErrEmptySeries
	}
	for i, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w (index %d)", ErrNonFinite, i)
		}
	}
	return nil
}

// Subsequence returns s[p:p+n] (the paper's T_{p,q} with q = p+n-1) without
// copying. The caller must not modify the result.
func (s Series) Subsequence(p, n int) (Series, error) {
	if n <= 0 || p < 0 || p+n > len(s) {
		return nil, fmt.Errorf("%w: p=%d n=%d len=%d", ErrBadSubseq, p, n, len(s))
	}
	return s[p : p+n], nil
}

// NumWindows returns the number of sliding windows of length n, i.e.
// len(s)-n+1, or 0 when the series is shorter than the window.
func (s Series) NumWindows(n int) int {
	if n <= 0 || n > len(s) {
		return 0
	}
	return len(s) - n + 1
}

// Features holds the two prefix-sum vectors of §6.2.1:
//
//	ESumx(x)  = sum_{i=1..x} t_i
//	ESumxx(x) = sum_{i=1..x} t_i^2
//
// Both use the convention ESum(0) = 0 so that the sum over the half-open
// range [p, q) is ESum(q) - ESum(p). With these, the mean and standard
// deviation of any subsequence — and every PAA segment mean — come out in
// constant time, which is what makes the multi-resolution ensemble
// discretization cheap (§6.2.3).
type Features struct {
	sum  []float64 // sum[i] = s[0] + ... + s[i-1]
	sum2 []float64 // sum2[i] = s[0]^2 + ... + s[i-1]^2
	n    int
}

// NewFeatures computes the prefix sums for s in one pass.
func NewFeatures(s Series) (*Features, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	f := &Features{
		sum:  make([]float64, len(s)+1),
		sum2: make([]float64, len(s)+1),
		n:    len(s),
	}
	for i, v := range s {
		f.sum[i+1] = f.sum[i] + v
		f.sum2[i+1] = f.sum2[i] + v*v
	}
	return f, nil
}

// SeriesLen returns the length of the series the features were built from.
func (f *Features) SeriesLen() int { return f.n }

// First returns the earliest queryable position (always 0: a whole-series
// Features retains everything). Together with End it lets Features and
// RingFeatures interchangeably back the detection engine.
func (f *Features) First() int { return 0 }

// End returns the exclusive end of the queryable positions.
func (f *Features) End() int { return f.n }

// RangeSum returns the sum of s[p:q] (half-open) in constant time.
func (f *Features) RangeSum(p, q int) float64 { return f.sum[q] - f.sum[p] }

// RangeSum2 returns the sum of squares of s[p:q] in constant time.
func (f *Features) RangeSum2(p, q int) float64 { return f.sum2[q] - f.sum2[p] }

// RangeMean returns the mean of s[p:q] in constant time.
func (f *Features) RangeMean(p, q int) float64 {
	return f.RangeSum(p, q) / float64(q-p)
}

// SumSource is any constant-time range-sum store: Features, RingFeatures,
// or anything else exposing prefix sums. It is the seam the detection
// engine discretizes through.
type SumSource interface {
	RangeSum(p, q int) float64
	RangeSum2(p, q int) float64
}

// MeanStd returns the mean and population standard deviation of the points
// in [p, q) of any SumSource, in constant time (lines 3–5 of Algorithm 2).
// Numerical cancellation can push the variance slightly negative for
// near-constant data; it is clamped to zero. This is the single
// implementation behind every discretization path — the engine's
// incremental==from-scratch bit-identity depends on there being exactly
// one.
func MeanStd(src SumSource, p, q int) (mean, std float64) {
	if q-p == 1 {
		return src.RangeSum(p, q), 0
	}
	n := float64(q - p)
	ex := src.RangeSum(p, q)
	exx := src.RangeSum2(p, q)
	mean = ex / n
	v := exx/n - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}

// RangeMeanStd is MeanStd over the features' own prefix sums.
func (f *Features) RangeMeanStd(p, q int) (mean, std float64) {
	return MeanStd(f, p, q)
}

// MovingMeansStds returns the mean and population standard deviation of
// every window of length m, computed from the prefix sums. It is the
// precomputation step shared by the matrix profile algorithms.
func (f *Features) MovingMeansStds(m int) (means, stds []float64, err error) {
	if m <= 0 || m > f.n {
		return nil, nil, ErrBadWindow
	}
	k := f.n - m + 1
	means = make([]float64, k)
	stds = make([]float64, k)
	for i := 0; i < k; i++ {
		means[i], stds[i] = f.RangeMeanStd(i, i+m)
	}
	return means, stds, nil
}
