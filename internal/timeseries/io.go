package timeseries

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV reads a univariate time series from r. Accepted layouts:
//
//   - one value per line;
//   - CSV rows, in which case column col (0-based) is used;
//   - an optional header row, detected when the first row's chosen column
//     does not parse as a number.
//
// Blank lines are skipped. Any other parse failure is an error, so silent
// data corruption cannot slip into an experiment.
func ReadCSV(r io.Reader, col int) (Series, error) {
	if col < 0 {
		return nil, fmt.Errorf("timeseries: negative column %d", col)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // allow ragged rows; we validate per row below
	cr.TrimLeadingSpace = true
	var out Series
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("timeseries: reading CSV: %w", err)
		}
		row++
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue
		}
		if col >= len(rec) {
			return nil, fmt.Errorf("timeseries: row %d has %d columns, need column %d", row, len(rec), col)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[col]), 64)
		if err != nil {
			if row == 1 && len(out) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("timeseries: row %d column %d: %w", row, col, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, ErrEmptySeries
	}
	return out, nil
}

// WriteCSV writes the series to w, one value per line, in a round-trippable
// full-precision format.
func WriteCSV(w io.Writer, s Series) error {
	bw := bufio.NewWriter(w)
	for _, v := range s {
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
