package timeseries

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"egi/internal/stat"
)

func TestValidate(t *testing.T) {
	if err := (Series{}).Validate(); err == nil {
		t.Error("empty series should fail validation")
	}
	if err := (Series{1, math.NaN()}).Validate(); err == nil {
		t.Error("NaN should fail validation")
	}
	if err := (Series{1, math.Inf(1)}).Validate(); err == nil {
		t.Error("+Inf should fail validation")
	}
	if err := (Series{1, 2, 3}).Validate(); err != nil {
		t.Errorf("clean series failed validation: %v", err)
	}
}

func TestSubsequence(t *testing.T) {
	s := Series{0, 1, 2, 3, 4}
	sub, err := s.Subsequence(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 3 || sub[0] != 1 || sub[2] != 3 {
		t.Errorf("Subsequence = %v", sub)
	}
	for _, c := range []struct{ p, n int }{{-1, 2}, {0, 0}, {3, 3}, {0, 6}} {
		if _, err := s.Subsequence(c.p, c.n); err == nil {
			t.Errorf("Subsequence(%d,%d) should error", c.p, c.n)
		}
	}
}

func TestNumWindows(t *testing.T) {
	s := make(Series, 10)
	if got := s.NumWindows(3); got != 8 {
		t.Errorf("NumWindows(3) = %d, want 8", got)
	}
	if got := s.NumWindows(10); got != 1 {
		t.Errorf("NumWindows(10) = %d, want 1", got)
	}
	if got := s.NumWindows(11); got != 0 {
		t.Errorf("NumWindows(11) = %d, want 0", got)
	}
	if got := s.NumWindows(0); got != 0 {
		t.Errorf("NumWindows(0) = %d, want 0", got)
	}
}

func TestFeaturesRangeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := make(Series, 200)
	for i := range s {
		s[i] = rng.NormFloat64()*3 + 1
	}
	f, err := NewFeatures(s)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		p := rng.Intn(len(s) - 1)
		q := p + 1 + rng.Intn(len(s)-p-1)
		wantMean := stat.Mean(s[p:q])
		wantStd := stat.PopStd(s[p:q])
		mean, std := f.RangeMeanStd(p, q)
		if math.Abs(mean-wantMean) > 1e-9 {
			t.Fatalf("RangeMean(%d,%d) = %v, want %v", p, q, mean, wantMean)
		}
		if math.Abs(std-wantStd) > 1e-9 {
			t.Fatalf("RangeStd(%d,%d) = %v, want %v", p, q, std, wantStd)
		}
	}
}

func TestFeaturesConstantSeries(t *testing.T) {
	s := Series{5, 5, 5, 5}
	f, err := NewFeatures(s)
	if err != nil {
		t.Fatal(err)
	}
	mean, std := f.RangeMeanStd(0, 4)
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if std != 0 || math.IsNaN(std) {
		t.Errorf("std = %v, want 0 (and not NaN)", std)
	}
}

func TestFeaturesRejectBadInput(t *testing.T) {
	if _, err := NewFeatures(Series{}); err == nil {
		t.Error("empty series should error")
	}
	if _, err := NewFeatures(Series{1, math.NaN()}); err == nil {
		t.Error("NaN series should error")
	}
}

func TestMovingMeansStds(t *testing.T) {
	s := Series{1, 2, 3, 4, 5, 6}
	f, _ := NewFeatures(s)
	means, stds, err := f.MovingMeansStds(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(means) != 4 || len(stds) != 4 {
		t.Fatalf("got %d windows, want 4", len(means))
	}
	for i := 0; i < 4; i++ {
		if math.Abs(means[i]-stat.Mean(s[i:i+3])) > 1e-12 {
			t.Errorf("means[%d] = %v", i, means[i])
		}
		if math.Abs(stds[i]-stat.PopStd(s[i:i+3])) > 1e-12 {
			t.Errorf("stds[%d] = %v", i, stds[i])
		}
	}
	if _, _, err := f.MovingMeansStds(0); err == nil {
		t.Error("m=0 should error")
	}
	if _, _, err := f.MovingMeansStds(7); err == nil {
		t.Error("m>len should error")
	}
}

func TestFeaturesPropertyMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		s := make(Series, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e5 {
				s = append(s, v)
			}
		}
		if len(s) < 2 {
			return true
		}
		feat, err := NewFeatures(s)
		if err != nil {
			return false
		}
		mean, _ := feat.RangeMeanStd(0, len(s))
		return math.Abs(mean-stat.Mean(s)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadCSVSingleColumn(t *testing.T) {
	in := "1.5\n2.5\n\n3.5\n"
	s, err := ReadCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{1.5, 2.5, 3.5}
	if len(s) != 3 || s[0] != want[0] || s[2] != want[2] {
		t.Errorf("ReadCSV = %v, want %v", s, want)
	}
}

func TestReadCSVWithHeaderAndColumns(t *testing.T) {
	in := "time,value\n0,10\n1,20\n2,30\n"
	s, err := ReadCSV(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[0] != 10 || s[2] != 30 {
		t.Errorf("ReadCSV = %v", s)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), 0); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("1\nnot-a-number\n"), 0); err == nil {
		t.Error("mid-file garbage should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), 1); err == nil {
		t.Error("missing column should error")
	}
	if _, err := ReadCSV(strings.NewReader("1\n2\n"), -1); err == nil {
		t.Error("negative column should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := make(Series, 100)
	for i := range s {
		s[i] = rng.NormFloat64() * 100
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("round trip [%d] = %v, want %v", i, got[i], s[i])
		}
	}
}
