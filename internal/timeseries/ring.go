package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// ErrEvicted is returned when a range query touches positions that have
// scrolled out of a RingFeatures' retained horizon.
var ErrEvicted = errors.New("timeseries: position evicted from ring")

// RingFeatures is the streaming counterpart of Features: the prefix-sum
// vectors ESumx/ESumxx of §6.2.1 maintained over an unbounded stream in
// bounded memory. Positions are global (counted from the first point ever
// appended) and prefix values are accumulated in arrival order, exactly as
// NewFeatures accumulates them over a whole series — so for any retained
// range, RangeSum/RangeSum2 return floats bit-identical to a Features
// built over the entire stream. That identity is what lets the detection
// engine reuse discretization work across overlapping hops and still match
// the from-scratch batch detector bit for bit.
//
// Only the last `capacity` positions are queryable; the prefix values
// themselves keep growing, which costs precision on streams whose running
// sum dwarfs individual window sums — the same conditioning a batch
// Features has over an equally long series.
type RingFeatures struct {
	sum   []float64 // ring of S[p], p in [First(), End()], len cap+1
	sum2  []float64 // ring of S2[p], same indexing
	cap   int       // retained positions
	total int       // points appended so far
}

// NewRingFeatures creates a ring retaining the last capacity positions.
func NewRingFeatures(capacity int) (*RingFeatures, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("timeseries: ring capacity must be >= 1, got %d", capacity)
	}
	r := &RingFeatures{
		sum:  make([]float64, capacity+1),
		sum2: make([]float64, capacity+1),
		cap:  capacity,
	}
	// S[0] = 0 occupies slot 0.
	return r, nil
}

// Append accumulates one point. Non-finite values are rejected, mirroring
// Series.Validate.
func (r *RingFeatures) Append(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("%w (position %d)", ErrNonFinite, r.total)
	}
	prev := r.slot(r.total)
	next := r.slot(r.total + 1)
	r.sum[next] = r.sum[prev] + x
	r.sum2[next] = r.sum2[prev] + x*x
	r.total++
	return nil
}

// AppendBatch accumulates a run of points with one bounds pass: the
// running prefix values are carried in locals and stored slot by slot in
// exactly the float-operation order of repeated Append calls, so the
// resulting prefix vectors are bit-identical to per-point appends. It is
// the ring half of the streaming layer's batch ingest fast path. A
// non-finite point stops the batch at that point — everything before it
// is appended, mirroring a per-point Append loop — but callers on the hot
// path are expected to have settled their non-finite policy beforehand so
// the scan here never trips.
func (r *RingFeatures) AppendBatch(xs []float64) error {
	idx := r.slot(r.total)
	s, s2 := r.sum[idx], r.sum2[idx]
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w (position %d)", ErrNonFinite, r.total)
		}
		s += x
		s2 += x * x
		if idx++; idx == len(r.sum) {
			idx = 0
		}
		r.sum[idx], r.sum2[idx] = s, s2
		r.total++
	}
	return nil
}

// Total returns the number of points appended so far.
func (r *RingFeatures) Total() int { return r.total }

// First returns the earliest retained (queryable) position.
func (r *RingFeatures) First() int {
	if r.total <= r.cap {
		return 0
	}
	return r.total - r.cap
}

// End returns the exclusive end of the retained positions, i.e. Total().
func (r *RingFeatures) End() int { return r.total }

// MemoryBytes is the ring's retained-memory accounting: the two prefix-sum
// rings. It is constant for the life of the ring — the memory bound the
// type exists to provide.
func (r *RingFeatures) MemoryBytes() int64 {
	return int64(cap(r.sum)+cap(r.sum2)) * 8
}

// slot maps prefix index p (valid for p in [First(), Total()]) to its ring
// slot.
func (r *RingFeatures) slot(p int) int { return p % (r.cap + 1) }

// RingState is the portable form of a RingFeatures: the retained prefix
// values in position order. The absolute prefix sums are captured — not the
// raw points — because RangeSum answers are differences of these exact
// floats; re-accumulating raw points from zero on restore would round
// differently and break the bit-identity the detection engine depends on.
type RingState struct {
	// Cap is the ring capacity (retained positions).
	Cap int
	// Total is the number of points appended so far.
	Total int
	// Sum holds S[p] for p in [First(), Total()], ascending p.
	Sum []float64
	// Sum2 holds S2[p] over the same positions.
	Sum2 []float64
}

// State captures the ring for serialization, copying the retained prefix
// values into fresh storage.
func (r *RingFeatures) State() RingState {
	first := r.First()
	n := r.total - first + 1
	st := RingState{
		Cap:   r.cap,
		Total: r.total,
		Sum:   make([]float64, n),
		Sum2:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		st.Sum[i] = r.sum[r.slot(first+i)]
		st.Sum2[i] = r.sum2[r.slot(first+i)]
	}
	return st
}

// RestoreRing reconstructs a RingFeatures from a captured state. Range
// queries over the retained horizon — and every future Append — are
// bit-identical to the ring the state was captured from.
func RestoreRing(st RingState) (*RingFeatures, error) {
	r, err := NewRingFeatures(st.Cap)
	if err != nil {
		return nil, err
	}
	first := st.Total - len(st.Sum) + 1
	if first < 0 || len(st.Sum) != len(st.Sum2) || len(st.Sum) > st.Cap+1 {
		return nil, errors.New("timeseries: inconsistent ring state")
	}
	r.total = st.Total
	for i := range st.Sum {
		r.sum[r.slot(first+i)] = st.Sum[i]
		r.sum2[r.slot(first+i)] = st.Sum2[i]
	}
	return r, nil
}

// RangeSum returns the sum of the points in [p, q). Both bounds must lie
// within the retained horizon; out-of-horizon queries panic in the same
// spirit as out-of-range slice indexing (the engine checks spans up
// front).
func (r *RingFeatures) RangeSum(p, q int) float64 {
	r.check(p, q)
	return r.sum[r.slot(q)] - r.sum[r.slot(p)]
}

// RangeSum2 returns the sum of squares of the points in [p, q).
func (r *RingFeatures) RangeSum2(p, q int) float64 {
	r.check(p, q)
	return r.sum2[r.slot(q)] - r.sum2[r.slot(p)]
}

func (r *RingFeatures) check(p, q int) {
	if p < r.First() || q > r.total || p > q {
		panic(fmt.Errorf("%w: [%d,%d) outside retained [%d,%d]", ErrEvicted, p, q, r.First(), r.total))
	}
}
