package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

// TestRingFeaturesMatchesFeatures: for every retained range, the ring's
// range sums are bit-identical to a whole-series Features' — the identity
// incremental re-discretization rests on.
func TestRingFeaturesMatchesFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series := make(Series, 500)
	for i := range series {
		series[i] = rng.NormFloat64() * 10
	}
	f, err := NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 64
	r, err := NewRingFeatures(capacity)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range series {
		if err := r.Append(x); err != nil {
			t.Fatal(err)
		}
		if r.Total() != i+1 {
			t.Fatalf("total %d after %d appends", r.Total(), i+1)
		}
		first := r.First()
		if want := maxInt(0, i+1-capacity); first != want {
			t.Fatalf("First() = %d, want %d", first, want)
		}
		// Probe a few retained ranges each step.
		for k := 0; k < 5; k++ {
			p := first + rng.Intn(r.End()-first+1)
			q := p + rng.Intn(r.End()-p+1)
			if got, want := r.RangeSum(p, q), f.RangeSum(p, q); got != want {
				t.Fatalf("RangeSum(%d,%d) = %v, features %v", p, q, got, want)
			}
			if got, want := r.RangeSum2(p, q), f.RangeSum2(p, q); got != want {
				t.Fatalf("RangeSum2(%d,%d) = %v, features %v", p, q, got, want)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestRingFeaturesRejectsNonFinite: NaN and infinities are rejected like
// Series.Validate rejects them.
func TestRingFeaturesRejectsNonFinite(t *testing.T) {
	r, err := NewRingFeatures(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := r.Append(x); err == nil {
			t.Errorf("Append(%v) should error", x)
		}
	}
	if r.Total() != 0 {
		t.Fatalf("rejected appends advanced Total to %d", r.Total())
	}
}

// TestRingFeaturesEvictionPanics: touching evicted positions is a
// programming error and panics.
func TestRingFeaturesEvictionPanics(t *testing.T) {
	r, err := NewRingFeatures(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := r.Append(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("evicted range query should panic")
		}
	}()
	r.RangeSum(0, 4)
}

// TestRingFeaturesBadCapacity: capacities below 1 are rejected.
func TestRingFeaturesBadCapacity(t *testing.T) {
	if _, err := NewRingFeatures(0); err == nil {
		t.Error("capacity 0 should error")
	}
}
