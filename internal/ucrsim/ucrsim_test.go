package ucrsim

import (
	"math"
	"math/rand"
	"testing"
)

func TestAllMatchesTable3(t *testing.T) {
	want := []struct {
		name   string
		segLen int
	}{
		{"TwoLeadECG", 82},
		{"ECGFiveDay", 132},
		{"GunPoint", 150},
		{"Wafer", 150},
		{"Trace", 275},
		{"StarLightCurve", 1024},
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d datasets, want %d", len(all), len(want))
	}
	for i, w := range want {
		if all[i].Name != w.name {
			t.Errorf("dataset %d = %s, want %s", i, all[i].Name, w.name)
		}
		if all[i].SegmentLength != w.segLen {
			t.Errorf("%s segment length %d, want %d", w.name, all[i].SegmentLength, w.segLen)
		}
		if all[i].NumClasses < 2 {
			t.Errorf("%s has %d classes, want >= 2", w.name, all[i].NumClasses)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("Trace")
	if err != nil || d.Name != "Trace" {
		t.Errorf("ByName(Trace) = %v, %v", d, err)
	}
	if _, err := ByName("NoSuchDataset"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestInstanceNormalizedAndSeedable(t *testing.T) {
	for _, d := range All() {
		rng := rand.New(rand.NewSource(1))
		inst, err := d.Instance(rng, 0)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(inst) != d.SegmentLength {
			t.Errorf("%s instance length %d, want %d", d.Name, len(inst), d.SegmentLength)
		}
		var mu, ss float64
		for _, v := range inst {
			mu += v
		}
		mu /= float64(len(inst))
		for _, v := range inst {
			ss += (v - mu) * (v - mu)
		}
		sd := math.Sqrt(ss / float64(len(inst)))
		if math.Abs(mu) > 1e-9 || math.Abs(sd-1) > 1e-9 {
			t.Errorf("%s instance not z-normalized: mean %v std %v", d.Name, mu, sd)
		}
		// Determinism under equal seeds.
		rng2 := rand.New(rand.NewSource(1))
		inst2, _ := d.Instance(rng2, 0)
		for i := range inst {
			if inst[i] != inst2[i] {
				t.Fatalf("%s instance not deterministic at %d", d.Name, i)
			}
		}
		// Bad class errors.
		if _, err := d.Instance(rng, -1); err == nil {
			t.Errorf("%s: class -1 should error", d.Name)
		}
		if _, err := d.Instance(rng, d.NumClasses); err == nil {
			t.Errorf("%s: class %d should error", d.Name, d.NumClasses)
		}
	}
}

func TestClassesAreStructurallyDistinct(t *testing.T) {
	// Average within-class distance must be clearly below cross-class
	// distance — otherwise the planted "anomaly" would not be anomalous.
	for _, d := range All() {
		rng := rand.New(rand.NewSource(42))
		const reps = 10
		sameDist, crossDist := 0.0, 0.0
		for r := 0; r < reps; r++ {
			a0, _ := d.Instance(rng, 0)
			b0, _ := d.Instance(rng, 0)
			c1, _ := d.Instance(rng, 1)
			var ds, dc float64
			for i := range a0 {
				ds += (a0[i] - b0[i]) * (a0[i] - b0[i])
				dc += (a0[i] - c1[i]) * (a0[i] - c1[i])
			}
			sameDist += math.Sqrt(ds)
			crossDist += math.Sqrt(dc)
		}
		if crossDist < 1.5*sameDist {
			t.Errorf("%s: cross-class distance %.2f not well above within-class %.2f",
				d.Name, crossDist/reps, sameDist/reps)
		}
	}
}

func TestGenerateProtocol(t *testing.T) {
	for _, d := range All() {
		rng := rand.New(rand.NewSource(7))
		p, err := d.Generate(rng)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		wantLen := (NumNormalInstances + 1) * d.SegmentLength
		if len(p.Series) != wantLen {
			t.Errorf("%s series length %d, want %d", d.Name, len(p.Series), wantLen)
		}
		if len(p.Anomalies) != 1 {
			t.Fatalf("%s: %d anomalies, want 1", d.Name, len(p.Anomalies))
		}
		gt := p.Anomalies[0]
		if gt.Length != d.SegmentLength {
			t.Errorf("%s anomaly length %d, want %d", d.Name, gt.Length, d.SegmentLength)
		}
		if gt.Class < 1 || gt.Class >= d.NumClasses {
			t.Errorf("%s anomaly class %d invalid", d.Name, gt.Class)
		}
		// Insertion point within the 40–80% band of the normal length.
		base := NumNormalInstances * d.SegmentLength
		lo, hi := int(0.4*float64(base)), int(0.8*float64(base))+1
		if gt.Pos < lo || gt.Pos > hi {
			t.Errorf("%s anomaly at %d outside band [%d,%d]", d.Name, gt.Pos, lo, hi)
		}
		if err := p.Series.Validate(); err != nil {
			t.Errorf("%s generated series invalid: %v", d.Name, err)
		}
	}
}

func TestGenerateMulti(t *testing.T) {
	d, _ := ByName("StarLightCurve")
	rng := rand.New(rand.NewSource(3))
	// §7.5: longer series (more normals) with 2 planted anomalies.
	p, err := d.GenerateMulti(rng, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Anomalies) != 2 {
		t.Fatalf("got %d anomalies, want 2", len(p.Anomalies))
	}
	if len(p.Series) != 42*d.SegmentLength {
		t.Errorf("series length %d, want %d", len(p.Series), 42*d.SegmentLength)
	}
	a, b := p.Anomalies[0], p.Anomalies[1]
	if a.Pos >= b.Pos {
		t.Errorf("anomalies not ordered: %+v", p.Anomalies)
	}
	if b.Pos < a.Pos+a.Length {
		t.Errorf("anomalies overlap: %+v", p.Anomalies)
	}
	// Ground truth really points at the planted instance: the recorded
	// spans must not exceed the series.
	for _, gt := range p.Anomalies {
		if gt.Pos < 0 || gt.Pos+gt.Length > len(p.Series) {
			t.Errorf("ground truth out of range: %+v", gt)
		}
	}
}

func TestGenerateMultiValidation(t *testing.T) {
	d, _ := ByName("Wafer")
	rng := rand.New(rand.NewSource(1))
	if _, err := d.GenerateMulti(rng, 0, 1); err == nil {
		t.Error("numNormal=0 should error")
	}
	if _, err := d.GenerateMulti(rng, 2, -1); err == nil {
		t.Error("negative anomalies should error")
	}
	// Too many anomalies to place without overlap must error, not hang.
	if _, err := d.GenerateMulti(rng, 2, 50); err == nil {
		t.Error("unplaceable anomalies should error")
	}
	// Zero anomalies is legal (pure normal series).
	p, err := d.GenerateMulti(rng, 3, 0)
	if err != nil || len(p.Anomalies) != 0 {
		t.Errorf("GenerateMulti(3,0) = %v, %v", p, err)
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	d, _ := ByName("GunPoint")
	p1, err := d.Generate(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Generate(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Anomalies[0] != p2.Anomalies[0] {
		t.Errorf("ground truth differs across equal seeds")
	}
	for i := range p1.Series {
		if p1.Series[i] != p2.Series[i] {
			t.Fatalf("series differ at %d", i)
		}
	}
}
