// Package ucrsim provides self-contained, seedable simulators of the six
// UCR-archive datasets used in the paper's evaluation (Table 3):
// TwoLeadECG, ECGFiveDay, GunPoint, Wafer, Trace, and StarLightCurve. The
// real archive is third-party data this repository cannot ship; these
// generators reproduce what the experiments actually rely on — labeled
// instances with a fixed segment length whose classes are *structurally*
// distinct shapes with within-class variation — per the substitution policy
// in DESIGN.md §2.
//
// It also implements the §7.1.1 test-series construction protocol:
// concatenate 20 randomly drawn normal (class-0) instances and insert one
// instance of a different class at a random position between 40% and 80%
// of the series.
package ucrsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"egi/internal/timeseries"
)

// Dataset describes one simulated UCR dataset.
type Dataset struct {
	// Name matches the paper's Table 3 entry.
	Name string
	// SegmentLength is the instance length (Table 3, "Segment Length").
	SegmentLength int
	// NumClasses counts the labeled classes; class 0 is "normal" per the
	// paper's protocol, all others are anomalous.
	NumClasses int
	// Domain is a short human-readable data-type tag (Table 3).
	Domain string

	shape func(rng *rand.Rand, class int, out []float64)
}

// NumNormalInstances is the number of class-0 instances concatenated into
// each generated test series (§7.1.1).
const NumNormalInstances = 20

// Errors reported by the generators.
var (
	ErrUnknownDataset = errors.New("ucrsim: unknown dataset")
	ErrBadClass       = errors.New("ucrsim: class out of range")
)

// All returns the six datasets in the paper's Table 3 order.
func All() []*Dataset {
	return []*Dataset{
		twoLeadECG(), ecgFiveDay(), gunPoint(), wafer(), trace(), starLightCurve(),
	}
}

// ByName looks a dataset up by its Table 3 name (case-sensitive).
func ByName(name string) (*Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
}

// Instance draws one labeled instance of the given class. Instances are
// z-normalized like the UCR archive's.
func (d *Dataset) Instance(rng *rand.Rand, class int) (timeseries.Series, error) {
	if class < 0 || class >= d.NumClasses {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadClass, class, d.NumClasses)
	}
	out := make([]float64, d.SegmentLength)
	d.shape(rng, class, out)
	znormInPlace(out)
	return out, nil
}

func znormInPlace(x []float64) {
	var mu float64
	for _, v := range x {
		mu += v
	}
	mu /= float64(len(x))
	var ss float64
	for _, v := range x {
		ss += (v - mu) * (v - mu)
	}
	sd := math.Sqrt(ss / float64(len(x)))
	if sd < 1e-12 {
		for i := range x {
			x[i] = 0
		}
		return
	}
	for i := range x {
		x[i] = (x[i] - mu) / sd
	}
}

// Planted is a generated test series with ground truth.
type Planted struct {
	Series timeseries.Series
	// Anomalies records every planted anomalous instance as [pos, pos+len).
	Anomalies []GroundTruth
}

// GroundTruth locates one planted anomaly.
type GroundTruth struct {
	Pos, Length int
	Class       int
}

// Generate builds one test series per the §7.1.1 protocol: 20 random
// normal instances concatenated, with one anomalous instance (random
// non-zero class) inserted at a position drawn uniformly from 40–80% of
// the normal series length.
func (d *Dataset) Generate(rng *rand.Rand) (*Planted, error) {
	return d.GenerateMulti(rng, NumNormalInstances, 1)
}

// GenerateMulti generalizes Generate: numNormal normal instances with
// numAnomalies anomalous instances inserted at random non-overlapping
// positions in the 40–80% band (§7.5 uses 2 anomalies in longer series).
func (d *Dataset) GenerateMulti(rng *rand.Rand, numNormal, numAnomalies int) (*Planted, error) {
	if numNormal < 1 || numAnomalies < 0 {
		return nil, errors.New("ucrsim: instance counts must be positive")
	}
	L := d.SegmentLength
	base := make(timeseries.Series, 0, numNormal*L)
	for i := 0; i < numNormal; i++ {
		inst, err := d.Instance(rng, 0)
		if err != nil {
			return nil, err
		}
		base = append(base, inst...)
	}
	if numAnomalies == 0 {
		return &Planted{Series: base}, nil
	}

	// Draw insertion points in the 40–80% band of the normal series,
	// spaced at least one segment apart so planted anomalies don't abut.
	lo, hi := int(0.4*float64(len(base))), int(0.8*float64(len(base)))
	positions := make([]int, 0, numAnomalies)
	const maxTries = 10000
	for tries := 0; len(positions) < numAnomalies; tries++ {
		if tries > maxTries {
			return nil, errors.New("ucrsim: cannot place anomalies without overlap; series too short")
		}
		p := lo + rng.Intn(hi-lo+1)
		ok := true
		for _, q := range positions {
			if abs(p-q) < L {
				ok = false
				break
			}
		}
		if ok {
			positions = append(positions, p)
		}
	}
	// Insert left-to-right, tracking the offset shift each insertion adds.
	sortInts(positions)
	out := make(timeseries.Series, 0, len(base)+numAnomalies*L)
	gts := make([]GroundTruth, 0, numAnomalies)
	prev := 0
	for i, p := range positions {
		class := 1 + rng.Intn(d.NumClasses-1)
		inst, err := d.Instance(rng, class)
		if err != nil {
			return nil, err
		}
		out = append(out, base[prev:p]...)
		gts = append(gts, GroundTruth{Pos: len(out), Length: L, Class: class})
		out = append(out, inst...)
		prev = p
		_ = i
	}
	out = append(out, base[prev:]...)
	return &Planted{Series: out, Anomalies: gts}, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
