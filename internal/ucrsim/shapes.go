package ucrsim

import (
	"math"
	"math/rand"
)

// This file defines the per-dataset shape families. Each generator writes
// one raw (pre-z-normalization) instance into out. Classes differ in
// *shape*, not just amplitude, so that z-normalization does not erase the
// distinction; within-class variation comes from phase jitter, width and
// amplitude perturbations, and additive noise — mirroring what makes the
// real UCR instances of one class similar but not identical.

// gauss evaluates a Gaussian bump centered at c with width w.
func gauss(x, c, w float64) float64 {
	d := (x - c) / w
	return math.Exp(-0.5 * d * d)
}

// twoLeadECG: ECG beats of length 82. Class 0 is a normal lead-II-like
// beat (small P, sharp R, modest T); class 1 has a widened, partially
// inverted QRS complex — the morphology difference that distinguishes the
// two leads in the original data.
func twoLeadECG() *Dataset {
	d := &Dataset{Name: "TwoLeadECG", SegmentLength: 82, NumClasses: 2, Domain: "ECG"}
	d.shape = func(rng *rand.Rand, class int, out []float64) {
		n := len(out)
		jit := rng.Float64()*0.06 - 0.03 // phase jitter
		amp := 0.9 + 0.2*rng.Float64()
		noise := 0.04
		for i := range out {
			x := float64(i)/float64(n) + jit
			var v float64
			switch class {
			case 0:
				v = 0.15*gauss(x, 0.25, 0.04) + // P wave
					1.4*gauss(x, 0.45, 0.015) - // R peak
					0.25*gauss(x, 0.49, 0.012) + // S dip
					0.35*gauss(x, 0.72, 0.06) // T wave
			default:
				v = 0.15*gauss(x, 0.25, 0.04) -
					0.8*gauss(x, 0.42, 0.03) + // inverted, widened Q/R
					0.9*gauss(x, 0.50, 0.035) +
					0.25*gauss(x, 0.75, 0.08)
			}
			out[i] = amp*v + noise*rng.NormFloat64()
		}
	}
	return d
}

// ecgFiveDay: beats of length 132 recorded days apart; class 1 shifts the
// T wave and adds baseline drift, a realistic day-to-day change.
func ecgFiveDay() *Dataset {
	d := &Dataset{Name: "ECGFiveDay", SegmentLength: 132, NumClasses: 2, Domain: "ECG"}
	d.shape = func(rng *rand.Rand, class int, out []float64) {
		n := len(out)
		jit := rng.Float64()*0.05 - 0.025
		amp := 0.9 + 0.2*rng.Float64()
		drift := rng.Float64()*0.2 - 0.1
		for i := range out {
			x := float64(i)/float64(n) + jit
			var v float64
			switch class {
			case 0:
				v = 0.2*gauss(x, 0.2, 0.05) +
					1.3*gauss(x, 0.4, 0.018) -
					0.2*gauss(x, 0.44, 0.015) +
					0.45*gauss(x, 0.62, 0.05)
			default:
				v = 0.2*gauss(x, 0.2, 0.05) +
					1.3*gauss(x, 0.4, 0.018) -
					0.2*gauss(x, 0.44, 0.015) -
					0.35*gauss(x, 0.7, 0.07) + // inverted, late T
					drift*x
			}
			out[i] = amp*v + 0.05*rng.NormFloat64()
		}
	}
	return d
}

// gunPoint: hand-motion traces of length 150. Class 0 ("point") is a
// smooth raise-hold-lower bell; class 1 ("gun") adds the characteristic
// dip from drawing and re-holstering.
func gunPoint() *Dataset {
	d := &Dataset{Name: "GunPoint", SegmentLength: 150, NumClasses: 2, Domain: "Motion"}
	d.shape = func(rng *rand.Rand, class int, out []float64) {
		n := len(out)
		jit := rng.Float64()*0.04 - 0.02
		width := 0.16 + 0.04*rng.Float64()
		for i := range out {
			x := float64(i)/float64(n) + jit
			plateau := 1 / (1 + math.Exp(-(x-0.3)/0.04)) * (1 - 1/(1+math.Exp(-(x-0.7)/0.04)))
			var v float64
			switch class {
			case 0:
				v = plateau
			default:
				v = plateau - 0.5*gauss(x, 0.32, width*0.35) - 0.4*gauss(x, 0.68, width*0.3)
			}
			out[i] = v + 0.03*rng.NormFloat64()
		}
	}
	return d
}

// wafer: semiconductor process sensor traces of length 150: a staircase of
// process steps. Class 1 instances carry the classic wafer defects — a
// transient spike and a shifted step edge.
func wafer() *Dataset {
	d := &Dataset{Name: "Wafer", SegmentLength: 150, NumClasses: 2, Domain: "Sensor"}
	d.shape = func(rng *rand.Rand, class int, out []float64) {
		n := len(out)
		e1 := 0.2 + 0.01*rng.NormFloat64()
		e2 := 0.5 + 0.01*rng.NormFloat64()
		e3 := 0.8 + 0.01*rng.NormFloat64()
		spikePos := 0.35 + 0.2*rng.Float64()
		for i := range out {
			x := float64(i) / float64(n)
			var v float64
			step := func(edge float64) float64 { return 1 / (1 + math.Exp(-(x-edge)/0.01)) }
			switch class {
			case 0:
				v = step(e1) + step(e2) - 2*step(e3)
			default:
				// Shifted middle step plus a tall narrow spike.
				v = step(e1) + step(e2-0.2) - 2*step(e3) + 3.0*gauss(x, spikePos, 0.012)
			}
			out[i] = v + 0.03*rng.NormFloat64()
		}
	}
	return d
}

// trace: the synthetic nuclear-plant transients of length 275. Class 0 is
// a flat run followed by a damped oscillation; the other three classes
// change where the transient starts and whether a step offset occurs —
// Trace is a 4-class dataset in the archive.
func trace() *Dataset {
	d := &Dataset{Name: "Trace", SegmentLength: 275, NumClasses: 4, Domain: "Sensor"}
	d.shape = func(rng *rand.Rand, class int, out []float64) {
		n := len(out)
		onset := 0.35 + 0.06*rng.Float64()
		freq := 5.0 + rng.Float64()
		for i := range out {
			x := float64(i) / float64(n)
			var v float64
			switch class {
			case 0: // flat, then damped oscillation
				if x > onset {
					u := x - onset
					v = math.Exp(-3*u) * math.Sin(2*math.Pi*freq*u)
				}
			case 1: // step up, no oscillation
				if x > onset {
					v = 1
				}
			case 2: // early oscillation, then step down
				u := x
				v = math.Exp(-2*u) * math.Sin(2*math.Pi*freq*u)
				if x > onset+0.3 {
					v -= 1
				}
			default: // ramp with oscillation
				v = x
				if x > onset {
					u := x - onset
					v += 0.7 * math.Sin(2*math.Pi*freq*u)
				}
			}
			out[i] = v + 0.02*rng.NormFloat64()
		}
	}
	return d
}

// starLightCurve: periodic stellar brightness curves of length 1024. The
// three classes mimic the archive's variable-star types: a smooth
// sinusoidal pulsator, an asymmetric sawtooth-like Cepheid, and an
// eclipsing binary with two dips per period.
func starLightCurve() *Dataset {
	d := &Dataset{Name: "StarLightCurve", SegmentLength: 1024, NumClasses: 3, Domain: "Sensor"}
	d.shape = func(rng *rand.Rand, class int, out []float64) {
		// The archive's light curves are phase-aligned (folded on the
		// star's period), so within-class variation is small jitter, not
		// arbitrary phase.
		n := len(out)
		phase := 0.05 * rng.NormFloat64()
		cycles := 2.0 + 0.1*rng.Float64()
		for i := range out {
			x := float64(i)/float64(n)*cycles + phase
			frac := x - math.Floor(x)
			var v float64
			switch class {
			case 0: // smooth pulsator
				v = math.Sin(2*math.Pi*x) + 0.15*math.Sin(4*math.Pi*x)
			case 1: // asymmetric rise/fall (Cepheid-like)
				if frac < 0.3 {
					v = frac / 0.3
				} else {
					v = 1 - (frac-0.3)/0.7
				}
				v = 2*v - 1
			default: // eclipsing binary: baseline with two dips
				v = 0.3 * math.Sin(2*math.Pi*x)
				v -= 1.3 * gauss(frac, 0.25, 0.04)
				v -= 0.7 * gauss(frac, 0.75, 0.04)
			}
			out[i] = v + 0.05*rng.NormFloat64()
		}
	}
	return d
}
