package hotsax

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/matrixprofile"
	"egi/internal/timeseries"
)

func sineWithAnomaly(length, period, pos int, seed int64) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.03*rng.NormFloat64()
	}
	for i := pos; i < pos+period && i < length; i++ {
		s[i] = -1.5 + 3*math.Abs(float64(i-pos)/float64(period)-0.5) + 0.03*rng.NormFloat64()
	}
	return s
}

func TestTop1MatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s := sineWithAnomaly(400, 40, 200, seed)
		want, err := BruteForceTop1(s, 40)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Top1(s, 40, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got.Pos != want.Pos {
			t.Errorf("seed %d: HOTSAX discord at %d, brute force at %d", seed, got.Pos, want.Pos)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6 {
			t.Errorf("seed %d: HOTSAX dist %v, brute force %v", seed, got.Dist, want.Dist)
		}
	}
}

func TestTop1AgreesWithMatrixProfile(t *testing.T) {
	s := sineWithAnomaly(800, 50, 350, 7)
	d, err := Top1(s, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := matrixprofile.STOMP(s, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	mp := p.TopDiscords(1)[0]
	if d.Pos != mp.Pos {
		t.Errorf("HOTSAX discord at %d, STOMP discord at %d", d.Pos, mp.Pos)
	}
	if math.Abs(d.Dist-mp.Dist) > 1e-5 {
		t.Errorf("HOTSAX dist %v, STOMP dist %v", d.Dist, mp.Dist)
	}
}

func TestTopKNonOverlappingDescending(t *testing.T) {
	s := sineWithAnomaly(1000, 40, 300, 9)
	// Plant a second, different anomaly.
	for i := 700; i < 740; i++ {
		s[i] += 2.5
	}
	ds, err := TopK(s, 40, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("got %d discords, want 3", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Dist > ds[i-1].Dist+1e-9 {
			t.Errorf("discords not descending: %+v", ds)
		}
	}
	for i := range ds {
		for j := i + 1; j < len(ds); j++ {
			if ds[i].Pos < ds[j].Pos+ds[j].Length && ds[j].Pos < ds[i].Pos+ds[i].Length {
				t.Errorf("discords %d and %d overlap: %+v %+v", i, j, ds[i], ds[j])
			}
		}
	}
	// The two planted anomalies should be among the top discords.
	found300, found700 := false, false
	for _, d := range ds {
		if d.Pos > 260 && d.Pos < 340 {
			found300 = true
		}
		if d.Pos > 660 && d.Pos < 740 {
			found700 = true
		}
	}
	if !found300 || !found700 {
		t.Errorf("planted anomalies not both found: %+v", ds)
	}
}

func TestValidation(t *testing.T) {
	s := sineWithAnomaly(200, 20, 100, 1)
	if _, err := Top1(s, 1, Options{}); err == nil {
		t.Error("m=1 should error")
	}
	if _, err := Top1(s, 300, Options{}); err == nil {
		t.Error("m>n should error")
	}
	if _, err := Top1(s, 150, Options{}); err == nil {
		t.Error("too few non-self matches should error")
	}
	if _, err := TopK(s, 20, 0, Options{}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Top1(timeseries.Series{}, 10, Options{}); err == nil {
		t.Error("empty series should error")
	}
	if _, err := BruteForceTop1(s, 1); err == nil {
		t.Error("brute force m=1 should error")
	}
}

func TestFlatSeriesRegions(t *testing.T) {
	// Flat regions must not produce NaNs or crash; distances follow the
	// flat conventions.
	s := make(timeseries.Series, 400)
	rng := rand.New(rand.NewSource(3))
	for i := range s {
		if i >= 100 && i < 200 {
			s[i] = 1
		} else {
			s[i] = math.Sin(float64(i)/8) + 0.05*rng.NormFloat64()
		}
	}
	d, err := Top1(s, 30, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(d.Dist) || d.Dist < 0 {
		t.Errorf("bad discord distance %v", d.Dist)
	}
}

func BenchmarkHOTSAX2k(b *testing.B) {
	s := sineWithAnomaly(2000, 50, 1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Top1(s, 50, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
