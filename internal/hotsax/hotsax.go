// Package hotsax implements the HOTSAX discord discovery algorithm of
// Keogh, Lin & Fu (ICDM 2005), reference [9] of the paper. It finds the
// time series discord — the subsequence with the largest 1-NN z-normalized
// Euclidean distance to any non-self match — using the SAX-based outer/
// inner loop heuristics with early abandoning, which keeps the average
// cost far below the brute-force O(n²m).
//
// The paper uses STOMP as its Discord baseline but cites HOTSAX as the
// original discord algorithm and compares against it for robustness; this
// package completes that substrate and provides an independent
// implementation to cross-check the matrix profile discords.
package hotsax

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"egi/internal/sax"
	"egi/internal/stat"
	"egi/internal/timeseries"
)

// Errors reported by the search.
var (
	ErrBadSubLen = errors.New("hotsax: subsequence length out of range")
	ErrTooShort  = errors.New("hotsax: series too short for any non-self match")
)

// Discord mirrors matrixprofile.Discord: a subsequence and its 1-NN
// distance among non-self matches.
type Discord struct {
	Pos    int
	Length int
	Dist   float64
}

// Options tunes the search. The zero value selects the classic defaults.
type Options struct {
	// W and A are the SAX parameters used for the outer/inner heuristics
	// (not for the distances, which are exact). Defaults: W=3, A=3, the
	// values recommended in the HOTSAX paper.
	W, A int
	// Seed drives the randomized visit order of the inner loop.
	Seed int64
}

func (o Options) normalized() Options {
	if o.W == 0 {
		o.W = 3
	}
	if o.A == 0 {
		o.A = 3
	}
	return o
}

// Top1 returns the top discord of the series with subsequence length m.
func Top1(series timeseries.Series, m int, opts Options) (Discord, error) {
	ds, err := TopK(series, m, 1, opts)
	if err != nil {
		return Discord{}, err
	}
	return ds[0], nil
}

// TopK returns up to k non-overlapping discords in descending distance
// order. Subsequent discords are found by re-running the search with the
// already-found regions excluded, as in the original formulation of the
// k-th discord.
func TopK(series timeseries.Series, m, k int, opts Options) ([]Discord, error) {
	if err := series.Validate(); err != nil {
		return nil, err
	}
	if m < 2 || m > len(series) {
		return nil, fmt.Errorf("%w: m=%d n=%d", ErrBadSubLen, m, len(series))
	}
	numSub := len(series) - m + 1
	if numSub <= m {
		return nil, fmt.Errorf("%w: %d subsequences for window %d", ErrTooShort, numSub, m)
	}
	if k < 1 {
		return nil, errors.New("hotsax: k must be >= 1")
	}
	opts = opts.normalized()
	if err := (sax.Params{W: opts.W, A: opts.A}).Validate(m); err != nil {
		return nil, err
	}

	s := newSearch(series, m, opts)
	excluded := make([]bool, numSub)
	var out []Discord
	for len(out) < k {
		d, ok := s.search(excluded)
		if !ok {
			break
		}
		out = append(out, d)
		for p := d.Pos - m + 1; p < d.Pos+m; p++ {
			if p >= 0 && p < numSub {
				excluded[p] = true
			}
		}
	}
	if len(out) == 0 {
		return nil, errors.New("hotsax: no discord found")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist > out[j].Dist })
	return out, nil
}

// search holds the per-series state reused across the k iterations.
type search struct {
	series  timeseries.Series
	m       int
	numSub  int
	words   []string         // SAX word per subsequence
	buckets map[string][]int // word -> subsequence positions
	means   []float64
	stds    []float64
	rng     *rand.Rand
}

func newSearch(series timeseries.Series, m int, opts Options) *search {
	numSub := len(series) - m + 1
	f, _ := timeseries.NewFeatures(series) // series validated by caller
	means, stds, _ := f.MovingMeansStds(m)
	words := make([]string, numSub)
	buckets := make(map[string][]int)
	coeffs := make([]float64, opts.W)
	mr, _ := sax.NewMultiResolver(opts.A)
	buf := make([]byte, opts.W)
	for i := 0; i < numSub; i++ {
		_ = sax.FastPAA(f, i, m, opts.W, coeffs)
		_ = mr.EncodeWord(coeffs, opts.A, buf)
		words[i] = string(buf)
		buckets[words[i]] = append(buckets[words[i]], i)
	}
	return &search{
		series:  series,
		m:       m,
		numSub:  numSub,
		words:   words,
		buckets: buckets,
		means:   means,
		stds:    stds,
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
}

// dist computes the exact z-normalized Euclidean distance between
// subsequences p and q, abandoning early once it exceeds bound (returning
// +Inf in that case).
func (s *search) dist(p, q int, bound float64) float64 {
	mp, sp := s.means[p], s.stds[p]
	mq, sq := s.means[q], s.stds[q]
	flatP, flatQ := sp < sax.Eps, sq < sax.Eps
	switch {
	case flatP && flatQ:
		return 0
	case flatP || flatQ:
		return math.Sqrt(float64(s.m))
	}
	bound2 := bound * bound
	var acc float64
	ip, iq := p, q
	for k := 0; k < s.m; k++ {
		d := (s.series[ip+k]-mp)/sp - (s.series[iq+k]-mq)/sq
		acc += d * d
		if acc > bound2 {
			return math.Inf(1)
		}
	}
	return math.Sqrt(acc)
}

// search runs one HOTSAX outer/inner loop pass over the non-excluded
// subsequences and returns the best discord.
func (s *search) search(excluded []bool) (Discord, bool) {
	// Outer loop order: subsequences whose SAX word is rarest first
	// (they are the most promising discord candidates), then the rest in
	// random order — the HOTSAX heuristic.
	type cand struct {
		pos  int
		freq int
	}
	cands := make([]cand, 0, s.numSub)
	for i := 0; i < s.numSub; i++ {
		if !excluded[i] {
			cands = append(cands, cand{pos: i, freq: len(s.buckets[s.words[i]])})
		}
	}
	if len(cands) == 0 {
		return Discord{}, false
	}
	s.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].freq < cands[j].freq })

	best := Discord{Pos: -1, Dist: -1}
	randOrder := s.rng.Perm(s.numSub)
	for _, c := range cands {
		p := c.pos
		nn := math.Inf(1)
		// Inner loop phase 1: same-word bucket first — likeliest to give a
		// small distance quickly, enabling early abandoning.
		abandoned := false
		for _, q := range s.buckets[s.words[p]] {
			if absInt(p-q) < s.m {
				continue
			}
			if d := s.dist(p, q, math.Min(nn, math.Inf(1))); d < nn {
				nn = d
			}
			if nn < best.Dist {
				abandoned = true
				break
			}
		}
		if !abandoned {
			// Phase 2: everything else in random order.
			for _, q := range randOrder {
				if absInt(p-q) < s.m {
					continue
				}
				if d := s.dist(p, q, nn); d < nn {
					nn = d
				}
				if nn < best.Dist {
					abandoned = true
					break
				}
			}
		}
		if !abandoned && !math.IsInf(nn, 1) && nn > best.Dist {
			best = Discord{Pos: p, Length: s.m, Dist: nn}
		}
	}
	if best.Pos < 0 {
		return Discord{}, false
	}
	return best, true
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// BruteForceTop1 computes the top discord by exhaustive search. Reference
// implementation for tests; exported so the benchmark harness can quantify
// HOTSAX's pruning on the paper's workloads.
func BruteForceTop1(series timeseries.Series, m int) (Discord, error) {
	if err := series.Validate(); err != nil {
		return Discord{}, err
	}
	if m < 2 || m > len(series) {
		return Discord{}, fmt.Errorf("%w: m=%d n=%d", ErrBadSubLen, m, len(series))
	}
	numSub := len(series) - m + 1
	if numSub <= m {
		return Discord{}, fmt.Errorf("%w: %d subsequences for window %d", ErrTooShort, numSub, m)
	}
	zs := make([][]float64, numSub)
	for i := range zs {
		zs[i] = stat.ZNormalize(series[i:i+m], sax.Eps)
	}
	best := Discord{Pos: -1, Dist: -1}
	for p := 0; p < numSub; p++ {
		nn := math.Inf(1)
		for q := 0; q < numSub; q++ {
			if absInt(p-q) < m {
				continue
			}
			var acc float64
			for k := 0; k < m; k++ {
				d := zs[p][k] - zs[q][k]
				acc += d * d
			}
			if d := math.Sqrt(acc); d < nn {
				nn = d
			}
		}
		if !math.IsInf(nn, 1) && nn > best.Dist {
			best = Discord{Pos: p, Length: m, Dist: nn}
		}
	}
	if best.Pos < 0 {
		return Discord{}, errors.New("hotsax: no discord found")
	}
	return best, nil
}
