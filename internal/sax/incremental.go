package sax

import (
	"fmt"
	"sort"
)

// IncrementalSeq is a numerosity-reduced token sequence maintained
// incrementally over a growing stream of sliding windows, in *global*
// window coordinates: token Pos values are absolute window start positions,
// not span-relative ones. It is the per-member re-discretization state of
// the detection engine: when a hop shifts the analysis span by H points,
// the tokens for the overlapping region are kept and only the H new suffix
// windows are encoded, with the numerosity-reduction run state resumed at
// the seam.
//
// The incremental invariant (tested property): provided every window's word
// is computed from span-independent range sums (FastPAAFrom over a global-
// coordinate FeatureSource), SpanTokens(start, ...) is bit-identical to
// numerosity-reducing a from-scratch word-per-window pass over the span —
// the first retained token re-based to the span start stands in for the
// run it was cut out of, exactly as Discretize would have emitted it.
type IncrementalSeq struct {
	params    Params
	tokens    []Token // ascending global Pos; tokens[i].Pos < next
	prev      string  // word of the last appended window (empty before any)
	next      int     // global index of the next window to encode
	empty     bool    // no windows appended since the last reset
	wordBytes int64   // total len(Word) over retained tokens
	trimmed   int     // positions below this may have incomplete history
}

// NewIncrementalSeq creates an empty sequence for one (w, a) member,
// positioned to encode global window startWin first.
func NewIncrementalSeq(p Params, startWin int) *IncrementalSeq {
	return &IncrementalSeq{params: p, next: startWin, empty: true, trimmed: startWin}
}

// Params returns the member's discretization parameters.
func (s *IncrementalSeq) Params() Params { return s.params }

// NextWin returns the global index of the next window to be appended.
func (s *IncrementalSeq) NextWin() int { return s.next }

// Len returns the number of retained tokens.
func (s *IncrementalSeq) Len() int { return len(s.tokens) }

// Reset discards all state and positions the sequence at global window
// startWin, as if freshly constructed. Used when the member fell so far
// behind the stream that the points needed to extend it are gone.
func (s *IncrementalSeq) Reset(startWin int) {
	s.tokens = s.tokens[:0]
	s.prev = ""
	s.next = startWin
	s.empty = true
	s.wordBytes = 0
	s.trimmed = startWin
}

// Append encodes the next window (global index NextWin) from its word
// bytes, advancing the sequence by one window and emitting a token only
// when the word differs from the previous window's — numerosity reduction
// with its run state carried across spans.
func (s *IncrementalSeq) Append(word []byte) {
	if s.empty || string(word) != s.prev {
		w := string(word)
		s.tokens = append(s.tokens, Token{Word: w, Pos: s.next})
		s.prev = w
		s.empty = false
		s.wordBytes += int64(len(w))
	}
	s.next++
}

// tokenSize is the in-memory size of one Token (string header + int),
// excluding the word bytes it points at.
const tokenSize = 24

// MemoryBytes is the sequence's retained-memory accounting: the token
// backing array (at capacity, since trimmed slices keep their storage) plus
// the word bytes the retained tokens own. Maintained incrementally, so the
// call is O(1).
func (s *IncrementalSeq) MemoryBytes() int64 {
	return int64(cap(s.tokens))*tokenSize + s.wordBytes
}

// TrimBefore drops tokens that can no longer be the covering token of any
// span starting at or after win: every leading token whose successor also
// starts at or before win. The last token at or before win is always kept —
// it carries the word of window win itself.
func (s *IncrementalSeq) TrimBefore(win int) {
	if win > s.trimmed {
		s.trimmed = win
	}
	k := 0
	for k+1 < len(s.tokens) && s.tokens[k+1].Pos <= win {
		s.wordBytes -= int64(len(s.tokens[k].Word))
		k++
	}
	if k > 0 {
		s.tokens = s.tokens[:copy(s.tokens, s.tokens[k:])]
	}
}

// TrimmedTo returns the trim watermark: every token with
// Pos >= TrimmedTo() is retained, plus the last token at or before it
// (the covering token TrimBefore always keeps), while other tokens below
// the watermark may have been dropped by TrimBefore or discarded by
// Reset. Consumers resuming an induction feed use it to detect that the
// tokens they still need are gone.
func (s *IncrementalSeq) TrimmedTo() int { return s.trimmed }

// Suffix returns the retained tokens with Pos in (afterWin, endWin], the
// incremental continuation of a feed that has consumed windows up to and
// including afterWin. The sequence must cover endWin (NextWin() > endWin)
// and the caller must have established afterWin >= TrimmedTo()-1, so that
// no token in the range has been trimmed away. The returned slice aliases
// the sequence's storage and is valid until the next Append or TrimBefore.
func (s *IncrementalSeq) Suffix(afterWin, endWin int) ([]Token, error) {
	if s.empty || s.next <= endWin {
		return nil, fmt.Errorf("sax: sequence %v covers windows up to %d, suffix needs %d", s.params, s.next-1, endWin)
	}
	i := sort.Search(len(s.tokens), func(i int) bool { return s.tokens[i].Pos > afterWin })
	j := i + sort.Search(len(s.tokens)-i, func(k int) bool { return s.tokens[i+k].Pos > endWin })
	return s.tokens[i:j], nil
}

// SeqState is the portable form of an IncrementalSeq: everything needed to
// reconstruct the pipeline bit-for-bit on another process — the retained
// numerosity-reduced tokens (global positions), the run word at the feed
// head, and the trim watermark. Produced by State, consumed by RestoreSeq;
// the durability layer serializes it into stream snapshots.
type SeqState struct {
	// Params is the member's (w, a) combination.
	Params Params
	// Next is the global index of the next window to encode.
	Next int
	// Prev is the word of the last appended window ("" before any).
	Prev string
	// Empty reports that no window has been appended since the last reset.
	Empty bool
	// Trimmed is the TrimBefore watermark.
	Trimmed int
	// Tokens are the retained tokens, ascending global Pos.
	Tokens []Token
}

// State captures the sequence for serialization. The returned state copies
// the token slice header into fresh storage so it stays valid across
// further Appends; the word strings are shared (immutable).
func (s *IncrementalSeq) State() SeqState {
	return SeqState{
		Params:  s.params,
		Next:    s.next,
		Prev:    s.prev,
		Empty:   s.empty,
		Trimmed: s.trimmed,
		Tokens:  append([]Token(nil), s.tokens...),
	}
}

// RestoreSeq reconstructs an IncrementalSeq from a captured state. The
// result is behaviorally identical to the pipeline the state was captured
// from: subsequent Appends, Suffix and SpanTokens calls produce bit-equal
// output.
func RestoreSeq(st SeqState) *IncrementalSeq {
	s := &IncrementalSeq{
		params:  st.Params,
		tokens:  append([]Token(nil), st.Tokens...),
		prev:    st.Prev,
		next:    st.Next,
		empty:   st.Empty,
		trimmed: st.Trimmed,
	}
	for _, t := range s.tokens {
		s.wordBytes += int64(len(t.Word))
	}
	return s
}

// SpanTokens appends to dst the token sequence for the span whose windows
// are [startWin, endWin] (global, inclusive), re-based to span-local
// positions, and returns the extended slice. It is bit-identical to what a
// from-scratch Discretize over the span would produce. The sequence must
// already cover the span: its first token at or before startWin, and
// NextWin() > endWin.
func (s *IncrementalSeq) SpanTokens(dst []Token, startWin, endWin int) ([]Token, error) {
	if s.empty || s.next <= endWin {
		return dst, fmt.Errorf("sax: sequence %v covers windows up to %d, span needs %d", s.params, s.next-1, endWin)
	}
	if len(s.tokens) == 0 || s.tokens[0].Pos > startWin {
		return dst, fmt.Errorf("sax: sequence %v trimmed past span start window %d", s.params, startWin)
	}
	// The last token at or before startWin provides the word of the span's
	// first window; numerosity reduction would have emitted it at local 0.
	k := sort.Search(len(s.tokens), func(i int) bool { return s.tokens[i].Pos > startWin }) - 1
	dst = append(dst, Token{Word: s.tokens[k].Word, Pos: 0})
	for _, t := range s.tokens[k+1:] {
		if t.Pos > endWin {
			break
		}
		dst = append(dst, Token{Word: t.Word, Pos: t.Pos - startWin})
	}
	return dst, nil
}
