package sax

import (
	"fmt"
	"math"
)

// DistTable is the pairwise symbol distance lookup table of the SAX
// MINDIST function (Lin et al. 2007): cell(r, c) is zero when the symbols
// are adjacent or equal, and the breakpoint gap otherwise. MINDIST lower
// bounds the true z-normalized Euclidean distance between the original
// subsequences, which is what makes SAX admissible for pruning in discord
// and similarity search.
type DistTable struct {
	a     int
	cells [][]float64
}

// NewDistTable builds the table for alphabet size a.
func NewDistTable(a int) (*DistTable, error) {
	bps, err := Breakpoints(a)
	if err != nil {
		return nil, err
	}
	cells := make([][]float64, a)
	for r := 0; r < a; r++ {
		cells[r] = make([]float64, a)
		for c := 0; c < a; c++ {
			if absInt(r-c) <= 1 {
				continue // adjacent or equal symbols: distance 0
			}
			hi, lo := r, c
			if lo > hi {
				hi, lo = lo, hi
			}
			cells[r][c] = bps[hi-1] - bps[lo]
		}
	}
	return &DistTable{a: a, cells: cells}, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Cell returns the symbol distance between symbol indices r and c.
func (t *DistTable) Cell(r, c int) (float64, error) {
	if r < 0 || r >= t.a || c < 0 || c >= t.a {
		return 0, fmt.Errorf("sax: symbol index out of range for alphabet %d", t.a)
	}
	return t.cells[r][c], nil
}

// MinDist returns the MINDIST lower bound between two SAX words of equal
// length w produced from subsequences of length n:
//
//	MINDIST = sqrt(n/w) * sqrt(sum_i cell(q_i, c_i)^2)
func (t *DistTable) MinDist(q, c string, n int) (float64, error) {
	if len(q) != len(c) {
		return 0, fmt.Errorf("sax: word lengths differ: %d vs %d", len(q), len(c))
	}
	if len(q) == 0 {
		return 0, fmt.Errorf("sax: empty words")
	}
	if n < len(q) {
		return 0, fmt.Errorf("sax: subsequence length %d shorter than word length %d", n, len(q))
	}
	var ss float64
	for i := 0; i < len(q); i++ {
		qs, cs := int(q[i]-'a'), int(c[i]-'a')
		d, err := t.Cell(qs, cs)
		if err != nil {
			return 0, err
		}
		ss += d * d
	}
	return math.Sqrt(float64(n)/float64(len(q))) * math.Sqrt(ss), nil
}
