package sax

import (
	"testing"

	"egi/internal/timeseries"
)

// FuzzSAXDiscretize feeds arbitrary series and parameter choices through
// the accelerated discretizer and asserts, for every input that validates:
// no panics, agreement with the unaccelerated reference discretizer
// (NaiveDiscretize), and numerosity-reduction losslessness — expanding the
// token sequence reproduces one word per sliding window with the original
// run structure. Each input byte becomes one sample on a small grid, so
// the fuzzer can build flat stretches (the Eps path) as well as noise.
func FuzzSAXDiscretize(f *testing.F) {
	f.Add([]byte("\x00\x10\x20\x30\x40\x50\x60\x70\x80\x90"), uint8(5), uint8(3), uint8(4))
	f.Add([]byte("aaaaaaaaaaaaaaaa"), uint8(4), uint8(2), uint8(2))
	f.Add([]byte("abcabcabcabcabc"), uint8(6), uint8(6), uint8(10))
	f.Add([]byte{0, 255, 0, 255, 0, 255, 0, 255}, uint8(3), uint8(2), uint8(26))
	f.Add([]byte{}, uint8(2), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, nRaw, wRaw, aRaw uint8) {
		if len(data) == 0 {
			return
		}
		series := make(timeseries.Series, len(data))
		for i, b := range data {
			series[i] = float64(b)/16 - 8
		}
		// Map the raw fuzz bytes onto the valid grid; out-of-grid values
		// exercise the error paths below instead.
		n := int(nRaw)
		w := int(wRaw)
		a := int(aRaw)
		p := Params{W: w, A: a}

		f2, err := timeseries.NewFeatures(series)
		if err != nil {
			t.Fatalf("features over finite data: %v", err)
		}
		mr, mrErr := NewMultiResolver(a)
		if n <= 0 || n > len(series) || p.Validate(n) != nil || mrErr != nil {
			// Invalid inputs must be rejected, never panic.
			if mrErr == nil {
				if _, err := Discretize(f2, n, p, mr); err == nil {
					t.Fatalf("invalid n=%d p=%v accepted", n, p)
				}
			}
			if _, err := NaiveDiscretize(series, n, p); err == nil {
				t.Fatalf("invalid n=%d p=%v accepted by naive", n, p)
			}
			return
		}

		fast, err := Discretize(f2, n, p, mr)
		if err != nil {
			t.Fatalf("Discretize n=%d p=%v: %v", n, p, err)
		}
		naive, err := NaiveDiscretize(series, n, p)
		if err != nil {
			t.Fatalf("NaiveDiscretize n=%d p=%v: %v", n, p, err)
		}
		// The fast and naive paths compute each PAA coefficient by
		// different summation orders, so a coefficient landing exactly ON
		// a breakpoint arrives at the comparison with different last-ulp
		// noise (this fuzzer found a 16-point window whose single w=1
		// coefficient is the 0.0 middle breakpoint of a=16). The shared
		// BoundaryTol tie-break absorbs that noise, so fast and naive now
		// agree unconditionally; see TestBreakpointTieRegression for the
		// promoted finding.
		if len(fast) != len(naive) {
			t.Fatalf("n=%d p=%v: %d tokens fast vs %d naive", n, p, len(fast), len(naive))
		}
		for i := range fast {
			if fast[i] != naive[i] {
				t.Fatalf("n=%d p=%v token %d: fast=%v naive=%v", n, p, i, fast[i], naive[i])
			}
		}

		// Numerosity reduction round-trips: the expansion has one word
		// per window, each of length w, and re-reducing it gives the
		// token sequence back.
		numWin := len(series) - n + 1
		words, err := ExpandNumerosity(fast, numWin)
		if err != nil {
			t.Fatalf("ExpandNumerosity: %v", err)
		}
		if len(words) != numWin {
			t.Fatalf("expansion has %d words, want %d", len(words), numWin)
		}
		for i, word := range words {
			if len(word) != w {
				t.Fatalf("window %d word %q has length %d, want %d", i, word, len(word), w)
			}
			for _, c := range word {
				if c < 'a' || c >= rune('a'+a) {
					t.Fatalf("window %d word %q outside alphabet of size %d", i, word, a)
				}
			}
		}
		again := NumerosityReduce(words)
		if len(again) != len(fast) {
			t.Fatalf("re-reduction has %d tokens, want %d", len(again), len(fast))
		}
		for i := range again {
			if again[i] != fast[i] {
				t.Fatalf("re-reduction token %d: %v, want %v", i, again[i], fast[i])
			}
		}
	})
}
