package sax

import (
	"fmt"
	"sort"

	"egi/internal/stat"
	"egi/internal/timeseries"
)

// Token is one entry of a numerosity-reduced token sequence: a SAX word and
// the start offset, in the original time series, of the first sliding
// window that produced it (the subscripts of Eq. (3) in the paper).
type Token struct {
	Word string
	Pos  int
}

// NumerosityReduce compresses a raw word-per-window sequence by keeping
// only the first of each run of consecutive identical words, together with
// its window offset (§4.2). The result is lossless given the total window
// count: the run for token i extends to the position of token i+1.
func NumerosityReduce(words []string) []Token {
	out := make([]Token, 0, len(words))
	prev := ""
	for i, w := range words {
		if i == 0 || w != prev {
			out = append(out, Token{Word: w, Pos: i})
			prev = w
		}
	}
	return out
}

// ExpandNumerosity reconstructs the raw word-per-window sequence from a
// numerosity-reduced token sequence and the total number of windows. It is
// the inverse of NumerosityReduce and exists chiefly to state (and test)
// the losslessness property.
func ExpandNumerosity(tokens []Token, numWindows int) ([]string, error) {
	if numWindows < 0 {
		return nil, fmt.Errorf("sax: negative window count %d", numWindows)
	}
	out := make([]string, numWindows)
	for i, tok := range tokens {
		end := numWindows
		if i+1 < len(tokens) {
			end = tokens[i+1].Pos
		}
		if tok.Pos < 0 || tok.Pos >= end || end > numWindows {
			return nil, fmt.Errorf("sax: token %d has inconsistent position %d", i, tok.Pos)
		}
		for j := tok.Pos; j < end; j++ {
			out[j] = tok.Word
		}
	}
	return out, nil
}

// Discretize converts the whole series (represented by its prefix-sum
// features) into a numerosity-reduced token sequence using sliding windows
// of length n and SAX parameters p. It is the discretization front end of
// the single-run grammar-induction detector.
func Discretize(f *timeseries.Features, n int, p Params, mr *MultiResolver) ([]Token, error) {
	if n <= 0 || n > f.SeriesLen() {
		return nil, fmt.Errorf("%w: n=%d, len=%d", ErrBadWindow, n, f.SeriesLen())
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	if mr == nil || p.A > mr.AMax() {
		return nil, fmt.Errorf("%w: resolver missing or too small for a=%d", ErrBadAlphabet, p.A)
	}
	numWin := f.SeriesLen() - n + 1
	coeffs := make([]float64, p.W)
	wordBuf := make([]byte, p.W)
	tokens := make([]Token, 0, numWin/4+1)
	prev := ""
	for i := 0; i < numWin; i++ {
		if err := FastPAA(f, i, n, p.W, coeffs); err != nil {
			return nil, err
		}
		if err := mr.EncodeWord(coeffs, p.A, wordBuf); err != nil {
			return nil, err
		}
		if i == 0 || string(wordBuf) != prev {
			w := string(wordBuf)
			tokens = append(tokens, Token{Word: w, Pos: i})
			prev = w
		}
	}
	return tokens, nil
}

// DiscretizeMany produces one numerosity-reduced token sequence per
// parameter combination, sharing work across members: for every window the
// PAA coefficients are computed once per *distinct* w (O(w) each via
// FastPAA) and then resolved into words for every alphabet size through the
// multi-resolution symbol matrix. This is the §6.2 fast path that makes the
// ensemble's discretization cost comparable to a single resolution.
//
// The i-th returned sequence corresponds to params[i].
func DiscretizeMany(f *timeseries.Features, n int, params []Params, mr *MultiResolver) ([][]Token, error) {
	if n <= 0 || n > f.SeriesLen() {
		return nil, fmt.Errorf("%w: n=%d, len=%d", ErrBadWindow, n, f.SeriesLen())
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("sax: no parameter combinations")
	}
	for _, p := range params {
		if err := p.Validate(n); err != nil {
			return nil, err
		}
		if mr == nil || p.A > mr.AMax() {
			return nil, fmt.Errorf("%w: resolver missing or too small for a=%d", ErrBadAlphabet, p.A)
		}
	}

	// Group member indices by w so each distinct w costs one FastPAA pass.
	byW := make(map[int][]int)
	for i, p := range params {
		byW[p.W] = append(byW[p.W], i)
	}
	ws := make([]int, 0, len(byW))
	for w := range byW {
		ws = append(ws, w)
	}
	sort.Ints(ws)

	numWin := f.SeriesLen() - n + 1
	out := make([][]Token, len(params))
	prev := make([]string, len(params))
	for i := range out {
		out[i] = make([]Token, 0, numWin/4+1)
	}
	coeffs := make([]float64, 0, 64)
	wordBuf := make([]byte, 0, 64)
	for i := 0; i < numWin; i++ {
		for _, w := range ws {
			coeffs = coeffs[:w]
			if err := FastPAA(f, i, n, w, coeffs); err != nil {
				return nil, err
			}
			// One interval lookup per coefficient serves every member with
			// this w regardless of its alphabet size.
			for _, mi := range byW[w] {
				a := params[mi].A
				wordBuf = wordBuf[:w]
				if err := mr.EncodeWord(coeffs, a, wordBuf); err != nil {
					return nil, err
				}
				if i == 0 || string(wordBuf) != prev[mi] {
					word := string(wordBuf)
					out[mi] = append(out[mi], Token{Word: word, Pos: i})
					prev[mi] = word
				}
			}
		}
	}
	return out, nil
}

// NaiveDiscretize is the unaccelerated reference discretizer: it
// z-normalizes every window from scratch and encodes it with the plain
// breakpoint table. It exists to test the fast path against and to measure
// the §6.2.3 speedup in the ablation benchmarks.
func NaiveDiscretize(series timeseries.Series, n int, p Params) ([]Token, error) {
	if err := series.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 || n > len(series) {
		return nil, fmt.Errorf("%w: n=%d, len=%d", ErrBadWindow, n, len(series))
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	numWin := len(series) - n + 1
	z := make([]float64, n)
	tokens := make([]Token, 0, numWin/4+1)
	prev := ""
	for i := 0; i < numWin; i++ {
		stat.ZNormalizeInto(z, series[i:i+n], Eps)
		word, err := Encode(z, p.W, p.A)
		if err != nil {
			return nil, err
		}
		if i == 0 || word != prev {
			tokens = append(tokens, Token{Word: word, Pos: i})
			prev = word
		}
	}
	return tokens, nil
}
