package sax

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/stat"
)

func TestDistTableProperties(t *testing.T) {
	for a := 2; a <= 12; a++ {
		tab, err := NewDistTable(a)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < a; r++ {
			for c := 0; c < a; c++ {
				d, err := tab.Cell(r, c)
				if err != nil {
					t.Fatal(err)
				}
				// Symmetric, non-negative, zero on/next to the diagonal.
				d2, _ := tab.Cell(c, r)
				if d != d2 {
					t.Fatalf("a=%d: table not symmetric at (%d,%d)", a, r, c)
				}
				if d < 0 {
					t.Fatalf("a=%d: negative cell (%d,%d)", a, r, c)
				}
				if absInt(r-c) <= 1 && d != 0 {
					t.Fatalf("a=%d: adjacent symbols (%d,%d) have distance %v", a, r, c, d)
				}
				if absInt(r-c) > 1 && d == 0 {
					t.Fatalf("a=%d: distant symbols (%d,%d) have zero distance", a, r, c)
				}
			}
		}
	}
	if _, err := NewDistTable(1); err == nil {
		t.Error("a=1 should error")
	}
}

func TestDistTableKnownValues(t *testing.T) {
	// For a=4, breakpoints are {-0.67, 0, 0.67}; dist(a, c) = bps[1]-bps[0]
	// = 0.67, dist(a, d) = bps[2]-bps[0] = 1.34 (Lin et al. 2007's table).
	tab, err := NewDistTable(4)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := tab.Cell(0, 2)
	if math.Abs(d-0.67) > 0.01 {
		t.Errorf("dist(a,c) = %v, want ~0.67", d)
	}
	d, _ = tab.Cell(0, 3)
	if math.Abs(d-1.34) > 0.01 {
		t.Errorf("dist(a,d) = %v, want ~1.34", d)
	}
}

func TestMinDistLowerBoundsTrueDistance(t *testing.T) {
	// The defining property: MINDIST(q̂, ĉ) <= d(q, c) for z-normalized
	// subsequences q, c and their SAX words.
	rng := rand.New(rand.NewSource(3))
	for _, a := range []int{3, 4, 6, 10} {
		tab, err := NewDistTable(a)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			n := 16 + rng.Intn(64)
			w := 2 + rng.Intn(8)
			q := make([]float64, n)
			c := make([]float64, n)
			for i := 0; i < n; i++ {
				q[i] = rng.NormFloat64() + math.Sin(float64(i)/3)
				c[i] = rng.NormFloat64()*1.5 - math.Cos(float64(i)/5)
			}
			zq := stat.ZNormalize(q, Eps)
			zc := stat.ZNormalize(c, Eps)
			var trueDist float64
			for i := 0; i < n; i++ {
				d := zq[i] - zc[i]
				trueDist += d * d
			}
			trueDist = math.Sqrt(trueDist)
			wq, err := Encode(zq, w, a)
			if err != nil {
				t.Fatal(err)
			}
			wc, err := Encode(zc, w, a)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := tab.MinDist(wq, wc, n)
			if err != nil {
				t.Fatal(err)
			}
			if lb > trueDist+1e-9 {
				t.Fatalf("a=%d n=%d w=%d: MINDIST %v exceeds true distance %v (words %q %q)",
					a, n, w, lb, trueDist, wq, wc)
			}
		}
	}
}

func TestMinDistIdenticalWordsIsZero(t *testing.T) {
	tab, _ := NewDistTable(5)
	d, err := tab.MinDist("abcde", "abcde", 50)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("MINDIST of identical words = %v, want 0", d)
	}
}

func TestMinDistErrors(t *testing.T) {
	tab, _ := NewDistTable(4)
	if _, err := tab.MinDist("ab", "abc", 10); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := tab.MinDist("", "", 10); err == nil {
		t.Error("empty words should error")
	}
	if _, err := tab.MinDist("abcd", "abcd", 2); err == nil {
		t.Error("n < w should error")
	}
	if _, err := tab.Cell(-1, 0); err == nil {
		t.Error("negative symbol should error")
	}
	if _, err := tab.Cell(0, 4); err == nil {
		t.Error("symbol beyond alphabet should error")
	}
}
