package sax

import (
	"math"
	"math/rand"
	"testing"
)

func TestMultiResolverFigure6(t *testing.T) {
	// Figure 6 of the paper: with alphabets 2..4 the summary line has the
	// distinct breakpoints of a=2 {0}, a=3 {-0.43,0.43}, a=4 {-0.67,0,0.67},
	// i.e. 5 points and 6 intervals, and the quoted coefficients map to the
	// symbol sequences aaa, abb and bcd (rows a=2,3,4).
	mr, err := NewMultiResolver(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.merged) != 5 {
		t.Fatalf("merged breakpoints = %v, want 5 points", mr.merged)
	}
	cases := []struct {
		coeff float64
		want  string // symbols for a=2,3,4 concatenated
	}{
		{-1.0, "aaa"}, // (-inf, -0.67)
		{-0.2, "abb"}, // [-0.43, 0)
		{1.0, "bcd"},  // [0.67, +inf)
		{-0.5, "aab"}, // [-0.67, -0.43)
		{0.2, "bbc"},  // [0, 0.43)
		{0.5, "bcc"},  // [0.43, 0.67)
	}
	for _, c := range cases {
		got := make([]byte, 3)
		for a := 2; a <= 4; a++ {
			sym, err := mr.Symbol(c.coeff, a)
			if err != nil {
				t.Fatal(err)
			}
			got[a-2] = sym
		}
		if string(got) != c.want {
			t.Errorf("coeff %v -> %q, want %q", c.coeff, got, c.want)
		}
	}
}

func TestMultiResolverMatchesDirectSAX(t *testing.T) {
	mr, err := NewMultiResolver(20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		c := rng.NormFloat64() * 1.5
		a := 2 + rng.Intn(19)
		bps, _ := Breakpoints(a)
		want := byte('a' + SymbolFor(c, bps))
		got, err := mr.Symbol(c, a)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("coeff=%v a=%d: multires %q, direct %q", c, a, got, want)
		}
	}
}

func TestMultiResolverExactBreakpoints(t *testing.T) {
	// A coefficient exactly on a breakpoint belongs to the region above it
	// under both the direct and the multi-resolution path.
	mr, _ := NewMultiResolver(10)
	for a := 2; a <= 10; a++ {
		bps, _ := Breakpoints(a)
		for _, b := range bps {
			want := byte('a' + SymbolFor(b, bps))
			got, err := mr.Symbol(b, a)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("a=%d breakpoint %v: multires %q, direct %q", a, b, got, want)
			}
		}
	}
}

func TestWordMatrix(t *testing.T) {
	mr, _ := NewMultiResolver(4)
	coeffs := []float64{-1.0, -0.2, 1.0}
	matrix := mr.WordMatrix(coeffs)
	// Rows correspond to a=2,3,4; columns to the coefficients. Transposing
	// the Figure 6 case table gives these rows.
	want := []string{"aab", "abc", "abd"}
	if len(matrix) != 3 {
		t.Fatalf("matrix has %d rows, want 3", len(matrix))
	}
	for i := range want {
		if matrix[i] != want[i] {
			t.Errorf("matrix row %d = %q, want %q", i, matrix[i], want[i])
		}
	}
}

func TestWordMatrixAgreesWithEncodeWord(t *testing.T) {
	mr, _ := NewMultiResolver(12)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		w := 1 + rng.Intn(10)
		coeffs := make([]float64, w)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64()
		}
		matrix := mr.WordMatrix(coeffs)
		for a := 2; a <= 12; a++ {
			dst := make([]byte, w)
			if err := mr.EncodeWord(coeffs, a, dst); err != nil {
				t.Fatal(err)
			}
			if matrix[a-2] != string(dst) {
				t.Fatalf("a=%d: matrix %q vs EncodeWord %q", a, matrix[a-2], dst)
			}
		}
	}
}

func TestMultiResolverErrors(t *testing.T) {
	if _, err := NewMultiResolver(1); err == nil {
		t.Error("amax=1 should error")
	}
	if _, err := NewMultiResolver(27); err == nil {
		t.Error("amax=27 should error")
	}
	mr, _ := NewMultiResolver(5)
	if _, err := mr.Symbol(0, 1); err == nil {
		t.Error("a=1 should error")
	}
	if _, err := mr.Symbol(0, 6); err == nil {
		t.Error("a beyond amax should error")
	}
	if err := mr.EncodeWord([]float64{0, 0}, 3, make([]byte, 3)); err == nil {
		t.Error("mismatched dst should error")
	}
	if err := mr.EncodeWord([]float64{0}, 9, make([]byte, 1)); err == nil {
		t.Error("a beyond amax should error in EncodeWord")
	}
}

func TestMergedBreakpointsSortedDistinct(t *testing.T) {
	for amax := 2; amax <= 26; amax++ {
		mr, err := NewMultiResolver(amax)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(mr.merged); i++ {
			if mr.merged[i]-mr.merged[i-1] <= mergeTolerance {
				t.Fatalf("amax=%d: merged breakpoints not distinct ascending: %v",
					amax, mr.merged)
			}
		}
		// Symbols must be monotonically non-decreasing along the summary
		// line for every alphabet size.
		for a := 2; a <= amax; a++ {
			prev := byte(0)
			for k := range mr.symbols {
				s := mr.symbols[k][a-2]
				if s < prev {
					t.Fatalf("amax=%d a=%d: symbols not monotone", amax, a)
				}
				prev = s
			}
			first := mr.symbols[0][a-2]
			last := mr.symbols[len(mr.symbols)-1][a-2]
			if first != 'a' {
				t.Fatalf("amax=%d a=%d: leftmost interval symbol %q, want 'a'", amax, a, first)
			}
			if int(last-'a') != a-1 {
				t.Fatalf("amax=%d a=%d: rightmost interval symbol %q, want %q",
					amax, a, last, byte('a'+a-1))
			}
		}
	}
	_ = math.Pi
}
