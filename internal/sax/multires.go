package sax

import (
	"fmt"
	"sort"
)

// MultiResolver implements the fast multi-resolution SAX word computation
// of §6.2.2. It merges the breakpoint tables of every alphabet size from 2
// to amax into a single sorted "summary" line; each interval between two
// consecutive merged breakpoints stores the symbol the interval maps to
// under every alphabet size. Resolving a PAA coefficient then costs one
// binary search over the merged breakpoints (O(log amax) comparisons, the
// paper's "at most 3 comparisons" for amax in the tens) and yields its
// symbol for *all* alphabet sizes at once.
type MultiResolver struct {
	amax    int
	merged  []float64 // distinct breakpoints of all alphabets 2..amax, sorted
	symbols [][]byte  // symbols[k][a-2] = symbol byte of interval k under alphabet a
}

// mergeTolerance treats breakpoints closer than this as identical when
// building the summary line. Breakpoints are analytic quantiles of N(0,1),
// so genuinely distinct ones are far apart compared to this.
const mergeTolerance = 1e-9

// NewMultiResolver builds the resolver for alphabet sizes 2..amax.
func NewMultiResolver(amax int) (*MultiResolver, error) {
	if amax < 2 || amax > MaxAlphabet {
		return nil, fmt.Errorf("%w: amax=%d", ErrBadAlphabet, amax)
	}
	var all []float64
	tables := make([][]float64, amax+1) // tables[a] for a in 2..amax
	for a := 2; a <= amax; a++ {
		bps, err := Breakpoints(a)
		if err != nil {
			return nil, err
		}
		tables[a] = bps
		all = append(all, bps...)
	}
	sort.Float64s(all)
	merged := all[:0]
	for _, b := range all {
		if len(merged) == 0 || b-merged[len(merged)-1] > mergeTolerance {
			merged = append(merged, b)
		}
	}
	merged = append([]float64(nil), merged...)

	// Interval k holds coefficients in [merged[k-1], merged[k]) with the
	// convention that a coefficient equal to a breakpoint belongs to the
	// interval above it. The representative of interval k>=1 is its
	// inclusive lower bound merged[k-1]; interval 0 is (-inf, merged[0]).
	symbols := make([][]byte, len(merged)+1)
	for k := range symbols {
		row := make([]byte, amax-1)
		for a := 2; a <= amax; a++ {
			var sym int
			if k == 0 {
				sym = 0
			} else {
				lower := merged[k-1]
				bps := tables[a]
				// Count breakpoints <= lower (with tolerance: the identical
				// breakpoint may differ by < mergeTolerance across tables).
				sym = sort.Search(len(bps), func(i int) bool {
					return bps[i] > lower+mergeTolerance
				})
			}
			row[a-2] = byte('a' + sym)
		}
		symbols[k] = row
	}
	return &MultiResolver{amax: amax, merged: merged, symbols: symbols}, nil
}

// AMax returns the largest alphabet size the resolver supports.
func (m *MultiResolver) AMax() int { return m.amax }

// Interval returns the summary-line interval index for coefficient c,
// using the same BoundaryTol tie-break as SymbolFor so the multi-resolution
// path and the plain breakpoint-table path agree near breakpoints. The
// binary search is hand-rolled (same result as sort.Search over
// merged[i] > c+BoundaryTol): this is the inner loop of every window's
// encoding, and the closure indirection of sort.Search is measurable there.
func (m *MultiResolver) Interval(c float64) int {
	t := c + BoundaryTol
	lo, hi := 0, len(m.merged)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.merged[mid] > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Symbol returns the symbol byte for coefficient c under alphabet size a.
func (m *MultiResolver) Symbol(c float64, a int) (byte, error) {
	if a < 2 || a > m.amax {
		return 0, fmt.Errorf("%w: a=%d (resolver amax=%d)", ErrBadAlphabet, a, m.amax)
	}
	return m.symbols[m.Interval(c)][a-2], nil
}

// EncodeWord maps PAA coefficients to the SAX word under alphabet size a
// using the precomputed symbol matrix, writing into dst (len(coeffs) bytes).
func (m *MultiResolver) EncodeWord(coeffs []float64, a int, dst []byte) error {
	if a < 2 || a > m.amax {
		return fmt.Errorf("%w: a=%d (resolver amax=%d)", ErrBadAlphabet, a, m.amax)
	}
	if len(dst) != len(coeffs) {
		return fmt.Errorf("sax: dst length %d, want %d", len(dst), len(coeffs))
	}
	col := a - 2
	for i, c := range coeffs {
		dst[i] = m.symbols[m.Interval(c)][col]
	}
	return nil
}

// Intervals resolves every coefficient to its summary-line interval index,
// writing into dst (len(coeffs) entries). Intervals depend only on the
// coefficients, not the alphabet, so ensemble members sharing one PAA size
// resolve once and encode each alphabet with WordAt — the §6.2.2 symbol
// matrix split into its two halves.
func (m *MultiResolver) Intervals(coeffs []float64, dst []int) error {
	if len(dst) != len(coeffs) {
		return fmt.Errorf("sax: dst length %d, want %d", len(dst), len(coeffs))
	}
	for i, c := range coeffs {
		dst[i] = m.Interval(c)
	}
	return nil
}

// WordAt maps precomputed summary-line intervals (from Intervals) to the
// SAX word under alphabet size a, writing into dst (len(intervals) bytes).
// EncodeWord(coeffs, a, dst) == Intervals(coeffs, iv) + WordAt(iv, a, dst).
func (m *MultiResolver) WordAt(intervals []int, a int, dst []byte) error {
	if a < 2 || a > m.amax {
		return fmt.Errorf("%w: a=%d (resolver amax=%d)", ErrBadAlphabet, a, m.amax)
	}
	if len(dst) != len(intervals) {
		return fmt.Errorf("sax: dst length %d, want %d", len(dst), len(intervals))
	}
	col := a - 2
	for i, k := range intervals {
		dst[i] = m.symbols[k][col]
	}
	return nil
}

// WordMatrix returns, for one vector of PAA coefficients, the SAX words for
// every alphabet size from 2 to amax — the "symbol matrix" of Figure 6.
// Row i of the result is the word under alphabet size i+2.
func (m *MultiResolver) WordMatrix(coeffs []float64) []string {
	intervals := make([]int, len(coeffs))
	for i, c := range coeffs {
		intervals[i] = m.Interval(c)
	}
	out := make([]string, m.amax-1)
	buf := make([]byte, len(coeffs))
	for a := 2; a <= m.amax; a++ {
		col := a - 2
		for i, k := range intervals {
			buf[i] = m.symbols[k][col]
		}
		out[col] = string(buf)
	}
	return out
}
