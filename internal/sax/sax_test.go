package sax

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"egi/internal/stat"
	"egi/internal/timeseries"
)

func randomSeries(n int, seed int64) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v + 2*math.Sin(float64(i)/7)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		n  int
		ok bool
	}{
		{Params{4, 4}, 16, true},
		{Params{1, 2}, 4, true},
		{Params{0, 4}, 16, false},
		{Params{17, 4}, 16, false},
		{Params{4, 1}, 16, false},
		{Params{4, 27}, 16, false},
	}
	for _, c := range cases {
		err := c.p.Validate(c.n)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v, n=%d) error=%v, want ok=%v", c.p, c.n, err, c.ok)
		}
	}
}

func TestBreakpointsCachedAndCorrect(t *testing.T) {
	b3, err := Breakpoints(3)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3: a=3 breakpoints are approximately -0.43 and 0.43.
	if math.Abs(b3[0]+0.43) > 0.005 || math.Abs(b3[1]-0.43) > 0.005 {
		t.Errorf("a=3 breakpoints = %v", b3)
	}
	b3again, _ := Breakpoints(3)
	if &b3[0] != &b3again[0] {
		t.Error("breakpoints not cached")
	}
	if _, err := Breakpoints(1); err == nil {
		t.Error("a=1 should error")
	}
	if _, err := Breakpoints(27); err == nil {
		t.Error("a=27 should error")
	}
}

func TestSymbolForBoundaries(t *testing.T) {
	bps := []float64{-0.43, 0.43}
	cases := []struct {
		c    float64
		want int
	}{
		{-1, 0}, {-0.43, 1}, {0, 1}, {0.43, 2}, {1, 2},
	}
	for _, c := range cases {
		if got := SymbolFor(c.c, bps); got != c.want {
			t.Errorf("SymbolFor(%v) = %d, want %d", c.c, got, c.want)
		}
	}
}

func TestPAASimple(t *testing.T) {
	z := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	got, err := PAA(z, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PAA = %v, want %v", got, want)
		}
	}
	// w == n is the identity.
	id, _ := PAA(z, 8)
	for i := range z {
		if id[i] != z[i] {
			t.Fatalf("PAA w=n not identity: %v", id)
		}
	}
	if _, err := PAA(z, 0); err == nil {
		t.Error("w=0 should error")
	}
	if _, err := PAA(z, 9); err == nil {
		t.Error("w>n should error")
	}
}

func TestPAAUnevenSegments(t *testing.T) {
	// n=5, w=2: segments [0,2) and [2,5).
	z := []float64{2, 4, 3, 3, 3}
	got, err := PAA(z, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 3 {
		t.Errorf("PAA = %v, want [3 3]", got)
	}
}

func TestEncodeKnownWord(t *testing.T) {
	// A clean V-shape: high, low, low, high quarters under a=3 must give
	// symbols c,a,a,c (outer quarters above 0.43, inner below -0.43).
	sub := []float64{2, 2, -2, -2, -2, -2, 2, 2}
	word, err := EncodeSubsequence(sub, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if word != "caac" {
		t.Errorf("word = %q, want %q", word, "caac")
	}
}

func TestEncodeFlatWindow(t *testing.T) {
	word, err := EncodeSubsequence([]float64{5, 5, 5, 5}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Flat window z-normalizes to zeros; 0 falls in region [0, 0.67) of the
	// a=4 table, i.e. symbol index 2 = 'c'.
	if word != "cc" {
		t.Errorf("flat word = %q, want cc", word)
	}
}

func TestFastPAAMatchesNaive(t *testing.T) {
	s := randomSeries(500, 3)
	f, err := timeseries.NewFeatures(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(100)
		p := rng.Intn(len(s) - n)
		w := 1 + rng.Intn(n)
		fast := make([]float64, w)
		if err := FastPAA(f, p, n, w, fast); err != nil {
			t.Fatal(err)
		}
		z := stat.ZNormalize(s[p:p+n], Eps)
		naive, err := PAA(z, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range naive {
			if math.Abs(fast[i]-naive[i]) > 1e-8 {
				t.Fatalf("trial %d (p=%d n=%d w=%d): fast[%d]=%v naive=%v",
					trial, p, n, w, i, fast[i], naive[i])
			}
		}
	}
}

func TestFastPAAFlatWindow(t *testing.T) {
	s := timeseries.Series{3, 3, 3, 3, 3, 3, 1, 2}
	f, _ := timeseries.NewFeatures(s)
	dst := make([]float64, 3)
	if err := FastPAA(f, 0, 6, 3, dst); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst {
		if v != 0 {
			t.Errorf("flat window PAA = %v, want zeros", dst)
		}
	}
}

func TestFastPAAErrors(t *testing.T) {
	s := randomSeries(50, 1)
	f, _ := timeseries.NewFeatures(s)
	if err := FastPAA(f, -1, 10, 2, make([]float64, 2)); err == nil {
		t.Error("negative p should error")
	}
	if err := FastPAA(f, 45, 10, 2, make([]float64, 2)); err == nil {
		t.Error("window past end should error")
	}
	if err := FastPAA(f, 0, 10, 11, make([]float64, 11)); err == nil {
		t.Error("w>n should error")
	}
	if err := FastPAA(f, 0, 10, 2, make([]float64, 3)); err == nil {
		t.Error("wrong dst length should error")
	}
}

func TestNumerosityReducePaperExample(t *testing.T) {
	// Eq. (2) -> Eq. (3), zero-based offsets: ba@0, dc@3, aa@5, ac@6.
	words := []string{"ba", "ba", "ba", "dc", "dc", "aa", "ac", "ac"}
	got := NumerosityReduce(words)
	want := []Token{{"ba", 0}, {"dc", 3}, {"aa", 5}, {"ac", 6}}
	if len(got) != len(want) {
		t.Fatalf("NumerosityReduce = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NumerosityReduce[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumerosityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alphabet := []string{"aa", "ab", "ba", "bb"}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		words := make([]string, n)
		for i := range words {
			words[i] = alphabet[rng.Intn(len(alphabet))]
		}
		tokens := NumerosityReduce(words)
		back, err := ExpandNumerosity(tokens, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range words {
			if back[i] != words[i] {
				t.Fatalf("round trip mismatch at %d: %v vs %v", i, back, words)
			}
		}
		// No two consecutive tokens share a word.
		for i := 1; i < len(tokens); i++ {
			if tokens[i].Word == tokens[i-1].Word {
				t.Fatalf("consecutive duplicate tokens: %v", tokens)
			}
		}
	}
}

func TestExpandNumerosityErrors(t *testing.T) {
	if _, err := ExpandNumerosity([]Token{{"a", 0}}, -1); err == nil {
		t.Error("negative window count should error")
	}
	if _, err := ExpandNumerosity([]Token{{"a", 5}}, 3); err == nil {
		t.Error("out-of-range token position should error")
	}
	if _, err := ExpandNumerosity([]Token{{"a", 2}, {"b", 1}}, 5); err == nil {
		t.Error("non-monotonic positions should error")
	}
}

func TestDiscretizeMatchesNaive(t *testing.T) {
	s := randomSeries(300, 9)
	f, _ := timeseries.NewFeatures(s)
	mr, err := NewMultiResolver(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{{2, 2}, {4, 4}, {5, 3}, {8, 10}, {3, 7}} {
		fast, err := Discretize(f, 40, p, mr)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		naive, err := NaiveDiscretize(s, 40, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(fast) != len(naive) {
			t.Fatalf("%v: %d tokens fast vs %d naive", p, len(fast), len(naive))
		}
		for i := range fast {
			if fast[i] != naive[i] {
				t.Fatalf("%v token %d: fast=%v naive=%v", p, i, fast[i], naive[i])
			}
		}
	}
}

func TestDiscretizeManyMatchesSingle(t *testing.T) {
	s := randomSeries(400, 21)
	f, _ := timeseries.NewFeatures(s)
	mr, _ := NewMultiResolver(12)
	params := []Params{{3, 5}, {7, 2}, {3, 12}, {10, 7}, {7, 7}}
	many, err := DiscretizeMany(f, 60, params, mr)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != len(params) {
		t.Fatalf("got %d sequences, want %d", len(many), len(params))
	}
	for i, p := range params {
		single, err := Discretize(f, 60, p, mr)
		if err != nil {
			t.Fatal(err)
		}
		if len(many[i]) != len(single) {
			t.Fatalf("param %v: %d vs %d tokens", p, len(many[i]), len(single))
		}
		for j := range single {
			if many[i][j] != single[j] {
				t.Fatalf("param %v token %d: %v vs %v", p, j, many[i][j], single[j])
			}
		}
	}
}

func TestDiscretizeErrors(t *testing.T) {
	s := randomSeries(100, 2)
	f, _ := timeseries.NewFeatures(s)
	mr, _ := NewMultiResolver(5)
	if _, err := Discretize(f, 0, Params{2, 3}, mr); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := Discretize(f, 101, Params{2, 3}, mr); err == nil {
		t.Error("n>len should error")
	}
	if _, err := Discretize(f, 20, Params{2, 8}, mr); err == nil {
		t.Error("a beyond resolver amax should error")
	}
	if _, err := Discretize(f, 20, Params{2, 8}, nil); err == nil {
		t.Error("nil resolver should error")
	}
	if _, err := DiscretizeMany(f, 20, nil, mr); err == nil {
		t.Error("no params should error")
	}
	if _, err := NaiveDiscretize(timeseries.Series{}, 5, Params{2, 3}); err == nil {
		t.Error("empty series should error")
	}
}

func TestDiscretizeTokenInvariants(t *testing.T) {
	s := randomSeries(250, 13)
	f, _ := timeseries.NewFeatures(s)
	mr, _ := NewMultiResolver(8)
	p := Params{5, 6}
	tokens, err := Discretize(f, 30, p, mr)
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) == 0 || tokens[0].Pos != 0 {
		t.Fatalf("first token must start at window 0: %v", tokens[:1])
	}
	numWin := len(s) - 30 + 1
	for i, tok := range tokens {
		if len(tok.Word) != p.W {
			t.Fatalf("token %d word %q has length %d, want %d", i, tok.Word, len(tok.Word), p.W)
		}
		for _, ch := range tok.Word {
			if ch < 'a' || int(ch-'a') >= p.A {
				t.Fatalf("token %d word %q has symbol outside alphabet %d", i, tok.Word, p.A)
			}
		}
		if tok.Pos < 0 || tok.Pos >= numWin {
			t.Fatalf("token %d position %d outside [0,%d)", i, tok.Pos, numWin)
		}
		if i > 0 && tok.Pos <= tokens[i-1].Pos {
			t.Fatalf("token positions not strictly increasing: %v", tokens)
		}
	}
}

func TestWordLengthsAcrossParams(t *testing.T) {
	// Tokens of a single discretization all share one word length; two
	// members with different w can never collide on a word.
	s := randomSeries(150, 77)
	f, _ := timeseries.NewFeatures(s)
	mr, _ := NewMultiResolver(6)
	t1, _ := Discretize(f, 25, Params{3, 4}, mr)
	t2, _ := Discretize(f, 25, Params{6, 4}, mr)
	set := map[string]bool{}
	for _, tok := range t1 {
		set[tok.Word] = true
	}
	for _, tok := range t2 {
		if set[tok.Word] {
			t.Fatalf("word %q appears under both w=3 and w=6", tok.Word)
		}
	}
	_ = strings.Repeat // keep strings import if unused elsewhere
}
