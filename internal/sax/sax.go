// Package sax implements Symbolic Aggregate approXimation (§4.1 of the
// paper): Piecewise Aggregate Approximation (PAA), the Gaussian breakpoint
// alphabet, the FastPAA algorithm (Algorithm 2) built on prefix sums, the
// multi-resolution SAX word computation of §6.2, and the numerosity
// reduction of §4.2.
//
// Conventions:
//
//   - A SAX word is a string of w bytes; symbol i is 'a'+i.
//   - Breakpoint regions are (-inf, b1), [b1, b2), ..., [b_{a-1}, +inf):
//     a coefficient equal to a breakpoint belongs to the region above it,
//     and "equal" is taken with tolerance BoundaryTol so that the two
//     coefficient computation orders in use (naive per-window summation and
//     the prefix-sum fast path) agree on which side of a breakpoint a
//     coefficient falls even when float rounding puts them an ulp apart.
//   - A window whose standard deviation is below Eps is treated as flat:
//     its z-normalized form is all zeros (and hence its word is uniform).
package sax

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"egi/internal/stat"
	"egi/internal/timeseries"
)

// Eps is the standard-deviation threshold below which a subsequence is
// considered constant for z-normalization purposes.
const Eps = 1e-9

// MaxAlphabet is the largest supported alphabet size. 26 keeps every symbol
// a lowercase letter; the paper never goes beyond 20.
const MaxAlphabet = 26

// BoundaryTol is the symbolization tie-break tolerance: a PAA coefficient
// within BoundaryTol below a breakpoint is treated as lying exactly on it
// and therefore maps to the region above. Gaussian breakpoints for the
// supported alphabets are separated by at least ~0.05, so the band only
// ever captures coefficients that are "on" a breakpoint up to float noise;
// without it, the naive and prefix-sum coefficient paths — whose results
// can differ in the last ulp — could encode such a coefficient one symbol
// apart (found by FuzzSAXDiscretize; see TestBreakpointTieRegression).
//
// The tolerance moves the decision boundary from b to b-1e-9 rather than
// removing it, but unlike b itself the shifted boundary is not an
// attractor: analytically clean inputs land their coefficients exactly on
// breakpoints (0 especially), never at an irrational offset 1e-9 below
// one, so the two paths would have to disagree about a value straddling
// b-1e-9 to ulp precision — which the fuzzer has not produced.
const BoundaryTol = 1e-9

// Errors reported by discretization.
var (
	ErrBadPAASize  = errors.New("sax: PAA size must be >= 1 and <= window length")
	ErrBadAlphabet = fmt.Errorf("sax: alphabet size must be in [2, %d]", MaxAlphabet)
	ErrBadWindow   = errors.New("sax: window length out of range")
)

// Params is one discretization parameter combination: PAA size w and
// alphabet size a. Ensemble members are identified by their Params.
type Params struct {
	W int // PAA size (word length)
	A int // alphabet size
}

// String renders the combination as "w=<w>,a=<a>".
func (p Params) String() string { return fmt.Sprintf("w=%d,a=%d", p.W, p.A) }

// Validate checks the combination against a window of length n.
func (p Params) Validate(n int) error {
	if p.W < 1 || p.W > n {
		return fmt.Errorf("%w: w=%d, n=%d", ErrBadPAASize, p.W, n)
	}
	if p.A < 2 || p.A > MaxAlphabet {
		return fmt.Errorf("%w: a=%d", ErrBadAlphabet, p.A)
	}
	return nil
}

var breakpointCache sync.Map // int -> []float64

// Breakpoints returns the SAX breakpoint table row for alphabet size a:
// the a-1 values that split N(0,1) into equiprobable regions. Results are
// cached; callers must not modify the returned slice.
func Breakpoints(a int) ([]float64, error) {
	if a < 2 || a > MaxAlphabet {
		return nil, fmt.Errorf("%w: a=%d", ErrBadAlphabet, a)
	}
	if v, ok := breakpointCache.Load(a); ok {
		return v.([]float64), nil
	}
	bps, err := stat.GaussianBreakpoints(a)
	if err != nil {
		return nil, err
	}
	breakpointCache.Store(a, bps)
	return bps, nil
}

// SymbolFor maps a single z-normalized PAA coefficient to its symbol index
// under alphabet size a: the number of breakpoints <= c + BoundaryTol (the
// shared tie-break; see the package comment).
func SymbolFor(c float64, bps []float64) int {
	// sort.Search finds the first i with bps[i] > c+BoundaryTol, which
	// equals the count of breakpoints <= c+BoundaryTol and therefore the
	// region index.
	return sort.Search(len(bps), func(i int) bool { return bps[i] > c+BoundaryTol })
}

// PAA computes the Piecewise Aggregate Approximation of a z-normalized
// subsequence: w segment means over near-equal integer segments
// [i*n/w, (i+1)*n/w). The same integer segmentation is used by FastPAA so
// the two agree exactly.
func PAA(znormed []float64, w int) ([]float64, error) {
	n := len(znormed)
	if w < 1 || w > n {
		return nil, fmt.Errorf("%w: w=%d, n=%d", ErrBadPAASize, w, n)
	}
	out := make([]float64, w)
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		var s float64
		for _, v := range znormed[lo:hi] {
			s += v
		}
		out[i] = s / float64(hi-lo)
	}
	return out, nil
}

// Encode converts a z-normalized subsequence into a SAX word with PAA size
// w and alphabet size a, the naive (non-accelerated) path of §4.1. It is
// retained as the reference implementation and ablation baseline.
func Encode(znormed []float64, w, a int) (string, error) {
	coeffs, err := PAA(znormed, w)
	if err != nil {
		return "", err
	}
	bps, err := Breakpoints(a)
	if err != nil {
		return "", err
	}
	word := make([]byte, w)
	for i, c := range coeffs {
		word[i] = byte('a' + SymbolFor(c, bps))
	}
	return string(word), nil
}

// EncodeSubsequence z-normalizes raw and encodes it. Convenience wrapper
// used by tests and by HOTSAX.
func EncodeSubsequence(raw []float64, w, a int) (string, error) {
	z := stat.ZNormalize(raw, Eps)
	return Encode(z, w, a)
}

// FeatureSource is the prefix-sum view FastPAAFrom discretizes against: any
// store that can produce the sum and sum-of-squares of a position range in
// constant time. timeseries.Features (whole series in memory) and
// timeseries.RingFeatures (bounded rolling window of an unbounded stream)
// both satisfy it. Positions are in the coordinates of the source — global
// stream positions for a ring — which is what makes suffix/incremental
// discretization bit-identical to a from-scratch pass: the range sums for a
// given window are fixed floats no matter which span asks for them.
type FeatureSource = timeseries.SumSource

// FastPAA implements Algorithm 2 of the paper: the PAA coefficients of the
// z-normalized window [p, p+n) computed in O(w) from the prefix-sum
// features, instead of O(n) for the naive path. dst must have length w.
//
// For a (numerically) constant window all coefficients are zero, matching
// the z-normalization convention.
func FastPAA(f *timeseries.Features, p, n, w int, dst []float64) error {
	if n <= 0 || p < 0 || p+n > f.SeriesLen() {
		return fmt.Errorf("%w: p=%d n=%d len=%d", ErrBadWindow, p, n, f.SeriesLen())
	}
	return FastPAAFrom(f, p, n, w, dst)
}

// FastPAAFrom is FastPAA over any FeatureSource. The caller is responsible
// for p and p+n lying inside the source's retained range; mean and standard
// deviation come from the one shared timeseries.MeanStd implementation, so
// every entry point produces bit-equal coefficients.
func FastPAAFrom(src FeatureSource, p, n, w int, dst []float64) error {
	if n <= 0 {
		return fmt.Errorf("%w: p=%d n=%d", ErrBadWindow, p, n)
	}
	if w < 1 || w > n {
		return fmt.Errorf("%w: w=%d, n=%d", ErrBadPAASize, w, n)
	}
	if len(dst) != w {
		return fmt.Errorf("sax: dst length %d, want %d", len(dst), w)
	}
	mu, sigma := timeseries.MeanStd(src, p, p+n)
	return FastPAAWith(src, p, n, w, mu, sigma, dst)
}

// FastPAAWith is FastPAAFrom with the window's mean and standard deviation
// already computed by the caller: mu and sigma must be exactly
// timeseries.MeanStd(src, p, p+n). The engine's multi-resolution extension
// shares one MeanStd evaluation across every PAA size of the same window —
// the statistics depend on the window alone — instead of recomputing it
// per size group; the float arithmetic is identical either way, so words
// are bit-equal to FastPAAFrom's. Validation of p, n, w and dst matches
// FastPAAFrom (callers on the hot path have validated the span already).
func FastPAAWith(src FeatureSource, p, n, w int, mu, sigma float64, dst []float64) error {
	if n <= 0 {
		return fmt.Errorf("%w: p=%d n=%d", ErrBadWindow, p, n)
	}
	if w < 1 || w > n {
		return fmt.Errorf("%w: w=%d, n=%d", ErrBadPAASize, w, n)
	}
	if len(dst) != w {
		return fmt.Errorf("sax: dst length %d, want %d", len(dst), w)
	}
	if sigma < Eps {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	inv := 1 / sigma
	for i := 0; i < w; i++ {
		lo := p + i*n/w
		hi := p + (i+1)*n/w
		segMean := src.RangeSum(lo, hi) / float64(hi-lo)
		dst[i] = (segMean - mu) * inv
	}
	return nil
}
