package sax

import (
	"math"
	"testing"

	"egi/internal/timeseries"
)

// TestBreakpointTieRegression promotes the FuzzSAXDiscretize finding to a
// pinned regression: a 16-point window whose single w=1 PAA coefficient is
// analytically 0.0 — the middle breakpoint of every even alphabet. The
// fast path (prefix sums) computes the coefficient as exactly 0; the naive
// path (z-normalize, then average) accumulates in a different order and
// can come out a few ulps below 0, which used to encode one symbol lower.
// With the shared BoundaryTol tie-break both paths must agree.
func TestBreakpointTieRegression(t *testing.T) {
	// The fuzzer's input: bytes "0000101217100720" mapped by b/16 - 8.
	data := []byte("0000101217100720")
	series := make(timeseries.Series, len(data))
	for i, b := range data {
		series[i] = float64(b)/16 - 8
	}
	const n, w, a = 16, 1, 16

	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMultiResolver(a)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Discretize(f, n, Params{W: w, A: a}, mr)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveDiscretize(series, n, Params{W: w, A: a})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(naive) {
		t.Fatalf("token counts differ: fast %d, naive %d", len(fast), len(naive))
	}
	for i := range fast {
		if fast[i] != naive[i] {
			t.Fatalf("token %d: fast=%v naive=%v", i, fast[i], naive[i])
		}
	}
	// The case is only a regression test while the coefficient really is
	// on a breakpoint: the whole window's mean of its z-normalized self
	// is 0, the a=16 middle breakpoint.
	coeffs := make([]float64, w)
	if err := FastPAA(f, 0, n, w, coeffs); err != nil {
		t.Fatal(err)
	}
	if coeffs[0] != 0 {
		t.Fatalf("fast path coefficient = %v, expected exactly 0", coeffs[0])
	}
}

// TestSymbolForBoundaryTolerance: coefficients within BoundaryTol below a
// breakpoint are treated as on it (region above); coefficients clearly
// below stay below.
func TestSymbolForBoundaryTolerance(t *testing.T) {
	bps, err := Breakpoints(4) // {-0.6745, 0, 0.6745} approx
	if err != nil {
		t.Fatal(err)
	}
	mid := bps[1] // 0
	cases := []struct {
		c    float64
		want int
	}{
		{mid, 2},                     // exactly on: above
		{mid - BoundaryTol/2, 2},     // a hair below: treated as on
		{math.Nextafter(mid, -1), 2}, // one ulp below: treated as on
		{mid - 2*BoundaryTol, 1},     // clearly below: below
		{mid + BoundaryTol/2, 2},     // a hair above: above
	}
	for _, tc := range cases {
		if got := SymbolFor(tc.c, bps); got != tc.want {
			t.Errorf("SymbolFor(%v) = %d, want %d", tc.c, got, tc.want)
		}
	}
	// The multi-resolution path must agree everywhere near the breakpoint.
	mr, err := NewMultiResolver(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int{2, 4, 6, 10} {
		bpsA, err := Breakpoints(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bpsA {
			for _, c := range []float64{b, b - BoundaryTol/2, b + BoundaryTol/2, math.Nextafter(b, -1), math.Nextafter(b, 1)} {
				sym, err := mr.Symbol(c, a)
				if err != nil {
					t.Fatal(err)
				}
				want := byte('a' + SymbolFor(c, bpsA))
				if sym != want {
					t.Errorf("a=%d c=%v: multires %q, direct %q", a, c, sym, want)
				}
			}
		}
	}
}

// TestIncrementalSeqMatchesDiscretize: extending a member pipeline window
// by window and slicing span tokens out of it reproduces, bit for bit,
// what a from-scratch Discretize over each span produces — across several
// span grids including single-point hops and a stale gap.
func TestIncrementalSeqMatchesDiscretize(t *testing.T) {
	series := make(timeseries.Series, 400)
	for i := range series {
		series[i] = math.Sin(float64(i)/7) + math.Cos(float64(i)/3)*0.4
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	for _, p := range []Params{{W: 4, A: 5}, {W: 7, A: 3}, {W: 1, A: 2}} {
		mr, err := NewMultiResolver(p.A)
		if err != nil {
			t.Fatal(err)
		}
		for _, hop := range []int{1, 5, 37, 100} {
			seq := NewIncrementalSeq(p, 0)
			coeffs := make([]float64, p.W)
			word := make([]byte, p.W)
			var span []Token
			for start := 0; start+120 <= len(series); start += hop {
				end := start + 120
				// Extend the pipeline to the span's last window.
				for win := seq.NextWin(); win <= end-n; win++ {
					if err := FastPAAFrom(f, win, n, p.W, coeffs); err != nil {
						t.Fatal(err)
					}
					if err := mr.EncodeWord(coeffs, p.A, word); err != nil {
						t.Fatal(err)
					}
					seq.Append(word)
				}
				span, err = seq.SpanTokens(span[:0], start, end-n)
				if err != nil {
					t.Fatal(err)
				}
				// From-scratch reference over the same global positions.
				want, err := discretizeSpan(f, start, end, n, p, mr)
				if err != nil {
					t.Fatal(err)
				}
				if len(span) != len(want) {
					t.Fatalf("p=%v hop=%d span %d: %d tokens, want %d", p, hop, start, len(span), len(want))
				}
				for i := range span {
					if span[i] != want[i] {
						t.Fatalf("p=%v hop=%d span %d token %d: %v, want %v", p, hop, start, i, span[i], want[i])
					}
				}
				seq.TrimBefore(start + hop)
			}
		}
	}
}

// discretizeSpan is the from-scratch reference: one word per window of the
// global span, numerosity-reduced, with span-local positions. It uses the
// same global-coordinate FastPAAFrom the pipeline uses, so any divergence
// is in the incremental bookkeeping, not the arithmetic.
func discretizeSpan(f *timeseries.Features, start, end, n int, p Params, mr *MultiResolver) ([]Token, error) {
	coeffs := make([]float64, p.W)
	word := make([]byte, p.W)
	var out []Token
	prev := ""
	for win := start; win <= end-n; win++ {
		if err := FastPAAFrom(f, win, n, p.W, coeffs); err != nil {
			return nil, err
		}
		if err := mr.EncodeWord(coeffs, p.A, word); err != nil {
			return nil, err
		}
		if win == start || string(word) != prev {
			out = append(out, Token{Word: string(word), Pos: win - start})
			prev = string(word)
		}
	}
	return out, nil
}

// TestIncrementalSeqReset: a reset pipeline restarts cleanly mid-stream.
func TestIncrementalSeqReset(t *testing.T) {
	p := Params{W: 2, A: 3}
	seq := NewIncrementalSeq(p, 0)
	seq.Append([]byte("ab"))
	seq.Append([]byte("ab"))
	seq.Append([]byte("ba"))
	if seq.Len() != 2 || seq.NextWin() != 3 {
		t.Fatalf("len=%d next=%d, want 2, 3", seq.Len(), seq.NextWin())
	}
	seq.Reset(10)
	if seq.Len() != 0 || seq.NextWin() != 10 {
		t.Fatalf("after reset: len=%d next=%d, want 0, 10", seq.Len(), seq.NextWin())
	}
	// First append after reset always emits, even for a word equal to the
	// pre-reset tail.
	seq.Append([]byte("ba"))
	if seq.Len() != 1 {
		t.Fatalf("after reset+append: len=%d, want 1", seq.Len())
	}
	toks, err := seq.SpanTokens(nil, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0] != (Token{Word: "ba", Pos: 0}) {
		t.Fatalf("span tokens %v", toks)
	}
	// Asking for a span the sequence does not cover errors.
	if _, err := seq.SpanTokens(nil, 10, 11); err == nil {
		t.Fatal("uncovered span should error")
	}
	if _, err := seq.SpanTokens(nil, 9, 10); err == nil {
		t.Fatal("span before first token should error")
	}
}
