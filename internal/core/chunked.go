package core

import (
	"fmt"

	"egi/internal/engine"
	"egi/internal/grammar"
	"egi/internal/timeseries"
)

// DetectChunked runs the ensemble over a very long series in overlapping
// chunks of chunkLen points, bounding the working set (token sequences,
// member curves) to one chunk at a time. Consecutive chunks overlap by
// window-1 points so that every sliding window lies entirely inside at
// least one chunk; in overlap regions the per-chunk ensemble curves
// (each already normalized to [0,1]) are averaged. Anomalies are ranked
// globally on the stitched curve.
//
// All chunks run on one shared engine over one set of global prefix-sum
// features, so discretization work common to overlapping chunks is reused
// (and the per-chunk scratch is pooled rather than reallocated). The
// per-chunk results are exactly what internal/stream's hop runs compute
// for the same spans and seeds — the stream at its default hop is
// bit-identical to this function by construction, both being views over
// engine.Engine.DetectSpan.
//
// This trades a small amount of context at chunk boundaries (grammar
// rules cannot span chunks) for a working set — token sequences, member
// curves, grammar state — bounded by one chunk instead of the whole
// series. The prefix-sum features themselves are built once over the full
// series (O(len) floats, like Detect): since the engine refactor the
// chunks address the series in global coordinates so discretization can
// be shared across their overlaps. Callers needing strictly O(chunkLen)
// residency should drive the streaming detector instead, whose ring
// retains only the buffer. With chunkLen >= len(series) DetectChunked
// reduces to Detect exactly.
//
// The returned Result has Members == nil: member bookkeeping is
// per-chunk and is not aggregated.
func DetectChunked(series timeseries.Series, cfg Config, chunkLen int) (*Result, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if err := series.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window > len(series) {
		return nil, fmt.Errorf("core: window %d exceeds series length %d", cfg.Window, len(series))
	}
	if chunkLen >= len(series) {
		return Detect(series, cfg)
	}
	if chunkLen < 4*cfg.Window {
		return nil, fmt.Errorf("core: chunk length %d too small; need at least 4x the window (%d)",
			chunkLen, 4*cfg.Window)
	}
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}

	overlap := cfg.Window - 1
	stride := chunkLen - overlap
	sum := make([]float64, len(series))
	count := make([]float64, len(series))
	for chunkIdx, start := 0, 0; start < len(series); chunkIdx, start = chunkIdx+1, start+stride {
		end := start + chunkLen
		if end > len(series) {
			end = len(series)
			// The final chunk may be shorter than chunkLen but is always
			// at least `overlap+1 > window` points because stride leaves
			// the previous chunk's tail uncovered by exactly overlap.
			if end-start < cfg.Window {
				break // tail already fully covered by the previous chunk
			}
		}
		res, err := eng.DetectSpan(f, start, end, cfg.Seed+int64(chunkIdx)*engine.SeedStride)
		if err != nil {
			if err == ErrNoUsableCurves {
				// A locally-constant chunk contributes zero density, which
				// the stitched ranking treats as "unexplained", consistent
				// with how Detect treats flat regions inside a chunk.
				for i := start; i < end; i++ {
					count[i]++
				}
				if end == len(series) {
					break
				}
				continue
			}
			return nil, fmt.Errorf("core: chunk %d [%d,%d): %w", chunkIdx, start, end, err)
		}
		for i, v := range res.Curve {
			sum[start+i] += v
			count[start+i]++
		}
		eng.TrimBefore(start + stride)
		if end == len(series) {
			break
		}
	}

	curve := sum
	for i := range curve {
		if count[i] > 0 {
			curve[i] /= count[i]
		}
	}
	cands, err := grammar.RankAnomalies(curve, cfg.Window, cfg.TopK)
	if err != nil {
		return nil, err
	}
	return &Result{Curve: curve, Candidates: cands}, nil
}
