package core

import (
	"fmt"

	"egi/internal/grammar"
	"egi/internal/timeseries"
)

// DetectChunked runs the ensemble over a very long series in overlapping
// chunks of chunkLen points, bounding the working set (token sequences,
// member curves) to one chunk at a time. Consecutive chunks overlap by
// window-1 points so that every sliding window lies entirely inside at
// least one chunk; in overlap regions the per-chunk ensemble curves
// (each already normalized to [0,1]) are averaged. Anomalies are ranked
// globally on the stitched curve.
//
// This trades a small amount of context at chunk boundaries (grammar
// rules cannot span chunks) for O(chunkLen) memory, the practical mode
// for month-scale sensor data. With chunkLen >= len(series) it reduces
// to Detect exactly.
//
// The returned Result has Members == nil: member bookkeeping is
// per-chunk and is not aggregated.
func DetectChunked(series timeseries.Series, cfg Config, chunkLen int) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if err := series.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window > len(series) {
		return nil, fmt.Errorf("core: window %d exceeds series length %d", cfg.Window, len(series))
	}
	if chunkLen >= len(series) {
		return Detect(series, cfg)
	}
	if chunkLen < 4*cfg.Window {
		return nil, fmt.Errorf("core: chunk length %d too small; need at least 4x the window (%d)",
			chunkLen, 4*cfg.Window)
	}

	overlap := cfg.Window - 1
	stride := chunkLen - overlap
	sum := make([]float64, len(series))
	count := make([]float64, len(series))
	for chunkIdx, start := 0, 0; start < len(series); chunkIdx, start = chunkIdx+1, start+stride {
		end := start + chunkLen
		if end > len(series) {
			end = len(series)
			// The final chunk may be shorter than chunkLen but is always
			// at least `overlap+1 > window` points because stride leaves
			// the previous chunk's tail uncovered by exactly overlap.
			if end-start < cfg.Window {
				break // tail already fully covered by the previous chunk
			}
		}
		chunkCfg := cfg
		chunkCfg.Seed = cfg.Seed + int64(chunkIdx)*1000003
		res, err := Detect(series[start:end], chunkCfg)
		if err != nil {
			if err == ErrNoUsableCurves {
				// A locally-constant chunk contributes zero density, which
				// the stitched ranking treats as "unexplained", consistent
				// with how Detect treats flat regions inside a chunk.
				for i := start; i < end; i++ {
					count[i]++
				}
				if end == len(series) {
					break
				}
				continue
			}
			return nil, fmt.Errorf("core: chunk %d [%d,%d): %w", chunkIdx, start, end, err)
		}
		for i, v := range res.Curve {
			sum[start+i] += v
			count[start+i]++
		}
		if end == len(series) {
			break
		}
	}

	curve := sum
	for i := range curve {
		if count[i] > 0 {
			curve[i] /= count[i]
		}
	}
	cands, err := grammar.RankAnomalies(curve, cfg.Window, cfg.TopK)
	if err != nil {
		return nil, err
	}
	return &Result{Curve: curve, Candidates: cands}, nil
}
