package core

import (
	"math"
	"testing"

	"egi/internal/timeseries"
)

func TestDetectChunkedFindsPlantedAnomaly(t *testing.T) {
	period := 50
	pos := 5200
	s := noisyPeriodic(8000, period, pos, 17)
	cfg := DefaultConfig(period)
	cfg.Size = 20
	res, err := DetectChunked(s, cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != len(s) {
		t.Fatalf("curve length %d, want %d", len(res.Curve), len(s))
	}
	hit := false
	for _, c := range res.Candidates {
		if c.Pos < pos+period && pos < c.Pos+c.Length {
			hit = true
		}
	}
	if !hit {
		t.Errorf("chunked detection missed the planted anomaly at %d: %+v", pos, res.Candidates)
	}
	for i, v := range res.Curve {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("curve[%d] = %v outside [0,1]", i, v)
		}
	}
}

func TestDetectChunkedAnomalyNearBoundary(t *testing.T) {
	// Plant the anomaly right at a chunk boundary; the window-1 overlap
	// must keep it visible to at least one chunk.
	period := 40
	chunkLen := 1600
	pos := chunkLen - period/2 // straddles the first boundary
	s := noisyPeriodic(6000, period, pos, 23)
	cfg := DefaultConfig(period)
	cfg.Size = 20
	res, err := DetectChunked(s, cfg, chunkLen)
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, c := range res.Candidates {
		if c.Pos < pos+period && pos < c.Pos+c.Length {
			hit = true
		}
	}
	if !hit {
		t.Errorf("boundary anomaly at %d missed: %+v", pos, res.Candidates)
	}
}

func TestDetectChunkedDegeneratesToDetect(t *testing.T) {
	s := noisyPeriodic(1500, 50, 700, 5)
	cfg := DefaultConfig(50)
	cfg.Size = 10
	cfg.Seed = 3
	full, err := Detect(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := DetectChunked(s, cfg, len(s)+100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Curve {
		if full.Curve[i] != chunked.Curve[i] {
			t.Fatalf("chunkLen >= len should equal Detect; differs at %d", i)
		}
	}
}

func TestDetectChunkedValidation(t *testing.T) {
	s := noisyPeriodic(3000, 50, 1500, 1)
	cfg := DefaultConfig(50)
	if _, err := DetectChunked(s, cfg, 100); err == nil {
		t.Error("chunk smaller than 4x window should error")
	}
	if _, err := DetectChunked(timeseries.Series{}, cfg, 1000); err == nil {
		t.Error("empty series should error")
	}
	bad := cfg
	bad.Window = 5000
	if _, err := DetectChunked(s, bad, 1000); err == nil {
		t.Error("window beyond series should error")
	}
}

func TestDetectChunkedCandidatesNonOverlapping(t *testing.T) {
	s := noisyPeriodic(6000, 40, 3000, 9)
	cfg := DefaultConfig(40)
	cfg.Size = 15
	res, err := DetectChunked(s, cfg, 1500)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Candidates {
		for j := i + 1; j < len(res.Candidates); j++ {
			a, b := res.Candidates[i], res.Candidates[j]
			if a.Pos < b.Pos+b.Length && b.Pos < a.Pos+a.Length {
				t.Errorf("candidates overlap: %+v %+v", a, b)
			}
		}
	}
}
