// Package core implements the paper's primary contribution: ensemble
// grammar induction for time series anomaly detection (Algorithm 1, §6.1).
//
// Instead of committing to one discretization parameter combination, the
// ensemble runs the grammar-induction pipeline for N randomly chosen
// (PAA size, alphabet size) combinations, discards the least informative
// rule density curves (those with the lowest standard deviation), rescales
// the survivors onto [0, 1] by dividing by their maximum (preserving the
// significance of exact-zero densities), and combines them with a
// pointwise median. Anomalies are then ranked on the combined curve
// exactly as in the single-run detector.
//
// Since the engine refactor the heavy lifting lives in internal/engine:
// core is the batch face of the shared detection engine (internal/stream
// is the online face), delegating member execution, discretization and
// curve combination to an engine.Engine and keeping only the batch-shaped
// entry points (whole series in, Result out) and the chunked stitcher.
package core

import (
	"fmt"
	"math/rand"

	"egi/internal/engine"
	"egi/internal/sax"
	"egi/internal/timeseries"
)

// Defaults used by the paper's experiments (§7, first paragraph).
const (
	DefaultEnsembleSize = engine.DefaultEnsembleSize
	DefaultWMax         = engine.DefaultWMax
	DefaultAMax         = engine.DefaultAMax
	DefaultTau          = engine.DefaultTau
	DefaultTopK         = engine.DefaultTopK
)

// Combiner selects how the surviving normalized curves are merged.
type Combiner = engine.Combiner

const (
	// CombineMedian is the paper's combiner: the pointwise median.
	CombineMedian = engine.CombineMedian
	// CombineMean is the ablation alternative: the pointwise mean.
	CombineMean = engine.CombineMean
)

// Normalizer selects how each surviving curve is rescaled before merging.
type Normalizer = engine.Normalizer

const (
	// NormalizeMax divides by the curve maximum (the paper's choice: zero
	// densities stay exactly zero).
	NormalizeMax = engine.NormalizeMax
	// NormalizeMinMax is the ablation alternative the paper argues
	// against: (x-min)/(max-min) moves nonzero minima to zero.
	NormalizeMinMax = engine.NormalizeMinMax
)

// Config parameterizes the ensemble detector. It is the engine's
// configuration re-exported under the batch detector's name; the zero
// value is not valid — use DefaultConfig or fill in Window and rely on
// Normalized() for the rest.
type Config = engine.Config

// DefaultConfig returns the paper's experimental configuration for a given
// sliding window length.
func DefaultConfig(window int) Config {
	return Config{
		Window: window,
		Size:   DefaultEnsembleSize,
		WMax:   DefaultWMax,
		AMax:   DefaultAMax,
		Tau:    DefaultTau,
		TopK:   DefaultTopK,
	}
}

// Member records one ensemble member's run.
type Member = engine.Member

// MemberCurve is one ensemble member's full output; see engine.MemberCurve.
type MemberCurve = engine.MemberCurve

// Result is the outcome of one ensemble detection.
type Result = engine.Result

// ErrNoUsableCurves is returned when every member produced a degenerate
// (zero-variance, zero-max) curve — e.g. on a constant series.
var ErrNoUsableCurves = engine.ErrNoUsableCurves

// GenerateParams draws size distinct (w, a) combinations uniformly from
// [2, wmax] × [min(2,..), amax], each combination used at most once (the
// constraint stated in Algorithm 1, line 5). If fewer than size distinct
// combinations exist, all of them are returned in random order. Window
// caps w: combinations with w > window are never usable.
//
// The engine draws its members with exactly this procedure (grid built in
// the same order, shuffled by the same seeded generator), which is what
// keeps pre- and post-refactor results bit-identical.
func GenerateParams(rng *rand.Rand, size, wmax, amax, window int) []sax.Params {
	if wmax > window {
		wmax = window
	}
	var all []sax.Params
	for w := 2; w <= wmax; w++ {
		for a := 2; a <= amax; a++ {
			all = append(all, sax.Params{W: w, A: a})
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if size < len(all) {
		all = all[:size]
	}
	return all
}

// Detect runs Algorithm 1 on the series and returns the ensemble curve and
// ranked anomaly candidates.
func Detect(series timeseries.Series, cfg Config) (*Result, error) {
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	return DetectWithFeatures(f, cfg)
}

// DetectWithFeatures is Detect for callers that already computed prefix-sum
// features (e.g. to run several configurations over one long series).
func DetectWithFeatures(f *timeseries.Features, cfg Config) (*Result, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if cfg.Window > f.SeriesLen() {
		return nil, fmt.Errorf("core: window %d exceeds series length %d", cfg.Window, f.SeriesLen())
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	return eng.DetectSpan(f, 0, f.SeriesLen(), cfg.Seed)
}

// ComputeMembers runs lines 4–8 of Algorithm 1: draw cfg.Size distinct
// (w,a) combinations, discretize all of them in one shared multi-resolution
// pass, and induce one rule density curve per member (concurrently). It is
// a thin layer over engine.Engine.MemberCurves.
func ComputeMembers(f *timeseries.Features, cfg Config) ([]MemberCurve, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if cfg.Window > f.SeriesLen() {
		return nil, fmt.Errorf("core: window %d exceeds series length %d", cfg.Window, f.SeriesLen())
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	return eng.MemberCurves(f, 0, f.SeriesLen(), cfg.Seed)
}

// CombineMembers performs lines 9–14 of Algorithm 1 on precomputed member
// curves: rank by standard deviation, keep the top tau fraction, normalize
// each survivor, merge, and rank anomalies on the combined curve. Only
// cfg.Tau, cfg.Window, cfg.TopK, cfg.Combine and cfg.Normalize are used,
// so callers can sweep those cheaply over one set of members. The input
// curves are not mutated.
func CombineMembers(memberCurves []MemberCurve, cfg Config) (*Result, error) {
	return engine.Combine(memberCurves, cfg)
}
