// Package core implements the paper's primary contribution: ensemble
// grammar induction for time series anomaly detection (Algorithm 1, §6.1).
//
// Instead of committing to one discretization parameter combination, the
// ensemble runs the grammar-induction pipeline for N randomly chosen
// (PAA size, alphabet size) combinations, discards the least informative
// rule density curves (those with the lowest standard deviation), rescales
// the survivors onto [0, 1] by dividing by their maximum (preserving the
// significance of exact-zero densities), and combines them with a
// pointwise median. Anomalies are then ranked on the combined curve
// exactly as in the single-run detector.
//
// Discretization across members shares work through the multi-resolution
// SAX fast path of §6.2 (sax.DiscretizeMany); grammar induction and curve
// construction for the members run concurrently.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"egi/internal/grammar"
	"egi/internal/sax"
	"egi/internal/stat"
	"egi/internal/timeseries"
)

// Defaults used by the paper's experiments (§7, first paragraph).
const (
	DefaultEnsembleSize = 50
	DefaultWMax         = 10
	DefaultAMax         = 10
	DefaultTau          = 0.4
	DefaultTopK         = 3
)

// Combiner selects how the surviving normalized curves are merged.
type Combiner int

const (
	// CombineMedian is the paper's combiner: the pointwise median.
	CombineMedian Combiner = iota
	// CombineMean is the ablation alternative: the pointwise mean.
	CombineMean
)

// Normalizer selects how each surviving curve is rescaled before merging.
type Normalizer int

const (
	// NormalizeMax divides by the curve maximum (the paper's choice: zero
	// densities stay exactly zero).
	NormalizeMax Normalizer = iota
	// NormalizeMinMax is the ablation alternative the paper argues
	// against: (x-min)/(max-min) moves nonzero minima to zero.
	NormalizeMinMax
)

// Config parameterizes the ensemble detector. The zero value is not valid;
// use DefaultConfig or fill in Window and rely on Normalize() for the rest.
type Config struct {
	// Window is the sliding window length n. Required.
	Window int
	// Size is the ensemble size N (number of (w,a) combinations).
	Size int
	// WMax and AMax bound the random parameter ranges [2, WMax] × [2, AMax].
	WMax, AMax int
	// Tau is the ensemble selectivity: the fraction of curves, ranked by
	// descending standard deviation, kept for combination. (0, 1].
	Tau float64
	// TopK is the number of ranked anomaly candidates to return.
	TopK int
	// Seed drives the random parameter generation; runs with equal Seed
	// and otherwise equal inputs are deterministic.
	Seed int64
	// Combine selects the curve combiner (median by default).
	Combine Combiner
	// Normalize selects the per-curve normalization (max by default).
	Normalize Normalizer
	// Parallelism caps the number of concurrent member
	// induction/density-curve computations; <= 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultConfig returns the paper's experimental configuration for a given
// sliding window length.
func DefaultConfig(window int) Config {
	return Config{
		Window: window,
		Size:   DefaultEnsembleSize,
		WMax:   DefaultWMax,
		AMax:   DefaultAMax,
		Tau:    DefaultTau,
		TopK:   DefaultTopK,
	}
}

// Normalized returns the config with defaults filled in, or an error if a
// field is out of range. Callers that build long-lived detectors on top of
// Config (e.g. internal/stream) use it to surface configuration errors at
// construction time rather than on the first detection run.
func (c Config) Normalized() (Config, error) { return c.normalized() }

// normalized fills in defaults and validates.
func (c Config) normalized() (Config, error) {
	if c.Size == 0 {
		c.Size = DefaultEnsembleSize
	}
	if c.WMax == 0 {
		c.WMax = DefaultWMax
	}
	if c.AMax == 0 {
		c.AMax = DefaultAMax
	}
	if c.Tau == 0 {
		c.Tau = DefaultTau
	}
	if c.TopK == 0 {
		c.TopK = DefaultTopK
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.Window < 2:
		return c, fmt.Errorf("core: window must be >= 2, got %d", c.Window)
	case c.Size < 1:
		return c, fmt.Errorf("core: ensemble size must be >= 1, got %d", c.Size)
	case c.WMax < 2:
		return c, fmt.Errorf("core: wmax must be >= 2, got %d", c.WMax)
	case c.AMax < 2 || c.AMax > sax.MaxAlphabet:
		return c, fmt.Errorf("core: amax must be in [2, %d], got %d", sax.MaxAlphabet, c.AMax)
	case c.Tau < 0 || c.Tau > 1:
		return c, fmt.Errorf("core: tau must be in (0, 1], got %v", c.Tau)
	case c.TopK < 1:
		return c, fmt.Errorf("core: topK must be >= 1, got %d", c.TopK)
	}
	return c, nil
}

// Member records one ensemble member's run.
type Member struct {
	Params sax.Params // the (w, a) combination
	Std    float64    // standard deviation of its rule density curve
	Kept   bool       // survived the selectivity cut
}

// Result is the outcome of one ensemble detection.
type Result struct {
	// Curve is the ensemble rule density curve d_e, each point in [0, 1].
	Curve []float64
	// Candidates are the ranked anomaly candidates (ascending density).
	Candidates []grammar.Candidate
	// Members documents every ensemble member, in generation order.
	Members []Member
}

// ErrNoUsableCurves is returned when every member produced a degenerate
// (zero-variance, zero-max) curve — e.g. on a constant series.
var ErrNoUsableCurves = errors.New("core: no usable rule density curves (is the series constant?)")

// GenerateParams draws size distinct (w, a) combinations uniformly from
// [2, wmax] × [min(2,..), amax], each combination used at most once (the
// constraint stated in Algorithm 1, line 5). If fewer than size distinct
// combinations exist, all of them are returned in random order. Window
// caps w: combinations with w > window are never usable.
func GenerateParams(rng *rand.Rand, size, wmax, amax, window int) []sax.Params {
	if wmax > window {
		wmax = window
	}
	var all []sax.Params
	for w := 2; w <= wmax; w++ {
		for a := 2; a <= amax; a++ {
			all = append(all, sax.Params{W: w, A: a})
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if size < len(all) {
		all = all[:size]
	}
	return all
}

// MemberCurve is one ensemble member's full output: its parameters, its
// rule density curve, and the curve's standard deviation (the selection
// statistic of Algorithm 1). Exposing members separately lets parameter
// sweeps (ensemble size N, selectivity τ) reuse the expensive induction
// work across settings.
type MemberCurve struct {
	Params sax.Params
	Curve  []float64
	Std    float64
}

// Detect runs Algorithm 1 on the series and returns the ensemble curve and
// ranked anomaly candidates.
func Detect(series timeseries.Series, cfg Config) (*Result, error) {
	f, err := timeseries.NewFeatures(series)
	if err != nil {
		return nil, err
	}
	return DetectWithFeatures(f, cfg)
}

// DetectWithFeatures is Detect for callers that already computed prefix-sum
// features (e.g. to run several configurations over one long series).
func DetectWithFeatures(f *timeseries.Features, cfg Config) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	members, err := ComputeMembers(f, cfg)
	if err != nil {
		return nil, err
	}
	return CombineMembers(members, cfg)
}

// ComputeMembers runs lines 4–8 of Algorithm 1: draw cfg.Size distinct
// (w,a) combinations, discretize all of them in one shared multi-resolution
// pass, and induce one rule density curve per member (concurrently).
func ComputeMembers(f *timeseries.Features, cfg Config) ([]MemberCurve, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if cfg.Window > f.SeriesLen() {
		return nil, fmt.Errorf("core: window %d exceeds series length %d", cfg.Window, f.SeriesLen())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := GenerateParams(rng, cfg.Size, cfg.WMax, cfg.AMax, cfg.Window)
	if len(params) == 0 {
		return nil, errors.New("core: no valid parameter combinations")
	}
	mr, err := sax.NewMultiResolver(cfg.AMax)
	if err != nil {
		return nil, err
	}

	// Shared multi-resolution discretization pass (§6.2).
	tokenSeqs, err := sax.DiscretizeMany(f, cfg.Window, params, mr)
	if err != nil {
		return nil, err
	}

	// Per-member grammar induction and density curves, concurrently.
	members := make([]MemberCurve, len(params))
	errs := make([]error, len(params))
	sem := make(chan struct{}, cfg.Parallelism)
	var wg sync.WaitGroup
	for i := range params {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := grammar.DetectFromTokens(tokenSeqs[i], f.SeriesLen(), cfg.Window, params[i], 1)
			if err != nil {
				errs[i] = err
				return
			}
			members[i] = MemberCurve{
				Params: params[i],
				Curve:  res.Curve,
				Std:    stat.PopStd(res.Curve),
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return members, nil
}

// CombineMembers performs lines 9–14 of Algorithm 1 on precomputed member
// curves: rank by standard deviation, keep the top tau fraction, normalize
// each survivor, merge, and rank anomalies on the combined curve. Only
// cfg.Tau, cfg.Window, cfg.TopK, cfg.Combine and cfg.Normalize are used,
// so callers can sweep those cheaply over one set of members.
func CombineMembers(memberCurves []MemberCurve, cfg Config) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if len(memberCurves) == 0 {
		return nil, errors.New("core: no member curves")
	}
	members := make([]Member, len(memberCurves))
	stds := make([]float64, len(memberCurves))
	for i, m := range memberCurves {
		members[i] = Member{Params: m.Params, Std: m.Std}
		stds[i] = m.Std
	}

	keep := int(cfg.Tau * float64(len(memberCurves)))
	if keep < 1 {
		keep = 1
	}
	if keep > len(memberCurves) {
		keep = len(memberCurves)
	}
	order := stat.ArgSortDesc(stds)
	var kept [][]float64
	for _, idx := range order[:keep] {
		if stds[idx] <= 0 {
			// A flat curve carries no anomaly signal; never include it,
			// even if that leaves fewer than keep survivors.
			continue
		}
		members[idx].Kept = true
		norm := stat.NormalizeByMax(memberCurves[idx].Curve)
		if cfg.Normalize == NormalizeMinMax {
			norm = stat.MinMaxNormalize(memberCurves[idx].Curve)
		}
		kept = append(kept, norm)
	}
	if len(kept) == 0 {
		return nil, ErrNoUsableCurves
	}

	var curve []float64
	switch cfg.Combine {
	case CombineMean:
		curve, err = stat.ColumnMeans(kept)
	default:
		curve, err = stat.ColumnMedians(kept)
	}
	if err != nil {
		return nil, err
	}
	cands, err := grammar.RankAnomalies(curve, cfg.Window, cfg.TopK)
	if err != nil {
		return nil, err
	}
	return &Result{Curve: curve, Candidates: cands, Members: members}, nil
}
