package core

import (
	"math"
	"testing"

	"egi/internal/timeseries"
)

func TestComputeMembersMatchesDetect(t *testing.T) {
	s := noisyPeriodic(1500, 50, 700, 31)
	cfg := DefaultConfig(50)
	cfg.Size = 15
	cfg.Seed = 9

	direct, err := Detect(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := timeseries.NewFeatures(s)
	if err != nil {
		t.Fatal(err)
	}
	members, err := ComputeMembers(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := CombineMembers(members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Curve) != len(combined.Curve) {
		t.Fatal("curve lengths differ")
	}
	for i := range direct.Curve {
		if direct.Curve[i] != combined.Curve[i] {
			t.Fatalf("split pipeline diverges from Detect at %d", i)
		}
	}
	for i := range direct.Candidates {
		if direct.Candidates[i] != combined.Candidates[i] {
			t.Fatalf("candidate %d differs", i)
		}
	}
}

func TestComputeMembersProperties(t *testing.T) {
	s := noisyPeriodic(1200, 40, 600, 8)
	f, _ := timeseries.NewFeatures(s)
	cfg := DefaultConfig(40)
	cfg.Size = 12
	members, err := ComputeMembers(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 12 {
		t.Fatalf("got %d members, want 12", len(members))
	}
	seen := map[string]bool{}
	for _, m := range members {
		if len(m.Curve) != len(s) {
			t.Errorf("member %v curve length %d", m.Params, len(m.Curve))
		}
		if m.Std < 0 || math.IsNaN(m.Std) {
			t.Errorf("member %v std %v", m.Params, m.Std)
		}
		for _, v := range m.Curve {
			if v < 0 {
				t.Fatalf("member %v has negative density", m.Params)
			}
		}
		key := m.Params.String()
		if seen[key] {
			t.Errorf("duplicate member params %v", m.Params)
		}
		seen[key] = true
	}
}

func TestCombineMembersSubsetsBehaveLikeSmallerEnsembles(t *testing.T) {
	// A prefix subset of the shuffled member list is a valid random
	// ensemble of that size: combining must succeed for every N.
	s := noisyPeriodic(1500, 50, 700, 12)
	f, _ := timeseries.NewFeatures(s)
	cfg := DefaultConfig(50)
	cfg.Size = 30
	members, err := ComputeMembers(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 5, 10, 30} {
		res, err := CombineMembers(members[:n], cfg)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		for _, v := range res.Curve {
			if v < 0 || v > 1 {
				t.Fatalf("N=%d: curve value %v outside [0,1]", n, v)
			}
		}
	}
	if _, err := CombineMembers(nil, cfg); err == nil {
		t.Error("no members should error")
	}
}

func TestCombineMembersTauExtremes(t *testing.T) {
	s := noisyPeriodic(1000, 40, 500, 3)
	f, _ := timeseries.NewFeatures(s)
	cfg := DefaultConfig(40)
	cfg.Size = 20
	members, err := ComputeMembers(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// tau so small that only one curve survives.
	small := cfg
	small.Tau = 0.01
	res, err := CombineMembers(members, small)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, m := range res.Members {
		if m.Kept {
			kept++
		}
	}
	if kept != 1 {
		t.Errorf("tau=0.01 kept %d members, want 1", kept)
	}
	// tau = 1 keeps every non-degenerate curve.
	full := cfg
	full.Tau = 1
	res, err = CombineMembers(members, full)
	if err != nil {
		t.Fatal(err)
	}
	kept = 0
	for _, m := range res.Members {
		if m.Kept {
			kept++
		}
	}
	if kept < len(members)/2 {
		t.Errorf("tau=1 kept only %d of %d members", kept, len(members))
	}
}
