package core

import (
	"math"
	"math/rand"
	"testing"

	"egi/internal/sax"
	"egi/internal/timeseries"
)

// noisyPeriodic builds a periodic series with a structural anomaly planted
// at pos: one cycle is replaced by a triangle pulse.
func noisyPeriodic(length, period, pos int, seed int64) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(timeseries.Series, length)
	for i := range s {
		s[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.08*rng.NormFloat64()
	}
	for i := pos; i < pos+period && i < length; i++ {
		s[i] = 1.2 - 2.4*math.Abs(float64(i-pos)/float64(period)-0.5) + 0.08*rng.NormFloat64()
	}
	return s
}

func TestGenerateParamsUniqueAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := GenerateParams(rng, 50, 10, 10, 100)
	if len(params) != 50 {
		t.Fatalf("got %d params, want 50", len(params))
	}
	seen := map[sax.Params]bool{}
	for _, p := range params {
		if p.W < 2 || p.W > 10 || p.A < 2 || p.A > 10 {
			t.Errorf("param %v out of range", p)
		}
		if seen[p] {
			t.Errorf("param %v repeated", p)
		}
		seen[p] = true
	}
}

func TestGenerateParamsCapsAtAvailable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// [2,3] x [2,3] has only 4 combinations.
	params := GenerateParams(rng, 50, 3, 3, 100)
	if len(params) != 4 {
		t.Fatalf("got %d params, want all 4", len(params))
	}
}

func TestGenerateParamsRespectsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	params := GenerateParams(rng, 100, 20, 5, 6)
	for _, p := range params {
		if p.W > 6 {
			t.Errorf("param %v has w > window", p)
		}
	}
}

func TestDetectFindsPlantedAnomaly(t *testing.T) {
	period := 60
	pos := 1500
	s := noisyPeriodic(3000, period, pos, 7)
	res, err := Detect(s, DefaultConfig(period))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	best := math.Inf(1)
	for _, c := range res.Candidates {
		if d := math.Abs(float64(c.Pos - pos)); d < best {
			best = d
		}
	}
	if best > float64(period) {
		t.Errorf("no candidate within one period of %d: %+v", pos, res.Candidates)
	}
}

func TestDetectCurveBounds(t *testing.T) {
	s := noisyPeriodic(2000, 40, 900, 11)
	res, err := Detect(s, DefaultConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != len(s) {
		t.Fatalf("curve length %d, want %d", len(res.Curve), len(s))
	}
	for i, v := range res.Curve {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("curve[%d] = %v outside [0,1]", i, v)
		}
	}
}

func TestDetectDeterministicWithSeed(t *testing.T) {
	s := noisyPeriodic(1200, 30, 600, 5)
	cfg := DefaultConfig(30)
	cfg.Seed = 42
	r1, err := Detect(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Detect(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Curve) != len(r2.Curve) {
		t.Fatal("curve lengths differ")
	}
	for i := range r1.Curve {
		if r1.Curve[i] != r2.Curve[i] {
			t.Fatalf("curves differ at %d despite equal seed", i)
		}
	}
	if len(r1.Candidates) != len(r2.Candidates) {
		t.Fatal("candidate counts differ")
	}
	for i := range r1.Candidates {
		if r1.Candidates[i] != r2.Candidates[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, r1.Candidates[i], r2.Candidates[i])
		}
	}
}

func TestDetectMembersBookkeeping(t *testing.T) {
	s := noisyPeriodic(1500, 40, 700, 9)
	cfg := DefaultConfig(40)
	cfg.Size = 20
	cfg.Tau = 0.4
	res, err := Detect(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 20 {
		t.Fatalf("got %d members, want 20", len(res.Members))
	}
	keptCount := 0
	minKeptStd := math.Inf(1)
	maxDroppedStd := math.Inf(-1)
	for _, m := range res.Members {
		if m.Kept {
			keptCount++
			if m.Std < minKeptStd {
				minKeptStd = m.Std
			}
		} else if m.Std > maxDroppedStd {
			maxDroppedStd = m.Std
		}
	}
	if keptCount == 0 || keptCount > 8 {
		t.Errorf("kept %d members, want in (0, 8]", keptCount)
	}
	// Selection must be exactly the top-std members.
	if keptCount == 8 && minKeptStd < maxDroppedStd {
		t.Errorf("kept member with std %v below dropped member with std %v",
			minKeptStd, maxDroppedStd)
	}
}

func TestDetectCandidatesNonOverlapping(t *testing.T) {
	s := noisyPeriodic(2500, 50, 1200, 13)
	res, err := Detect(s, DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Candidates {
		for j := i + 1; j < len(res.Candidates); j++ {
			a, b := res.Candidates[i], res.Candidates[j]
			if a.Pos < b.Pos+b.Length && b.Pos < a.Pos+a.Length {
				t.Errorf("candidates overlap: %+v %+v", a, b)
			}
		}
	}
}

func TestDetectConstantSeriesErrors(t *testing.T) {
	s := make(timeseries.Series, 500)
	for i := range s {
		s[i] = 3
	}
	_, err := Detect(s, DefaultConfig(50))
	if err == nil {
		t.Fatal("constant series should return ErrNoUsableCurves")
	}
}

func TestDetectConfigValidation(t *testing.T) {
	s := noisyPeriodic(500, 25, 250, 1)
	bad := []Config{
		{Window: 1},
		{Window: 25, Size: -1},
		{Window: 25, Tau: 1.5},
		{Window: 25, Tau: -0.1},
		{Window: 25, TopK: -2},
		{Window: 25, AMax: 30},
		{Window: 600},
	}
	for i, cfg := range bad {
		if _, err := Detect(s, cfg); err == nil {
			t.Errorf("config %d (%+v) should fail validation", i, cfg)
		}
	}
	if _, err := Detect(timeseries.Series{}, DefaultConfig(10)); err == nil {
		t.Error("empty series should error")
	}
}

func TestDetectSmallEnsemble(t *testing.T) {
	s := noisyPeriodic(1000, 40, 500, 3)
	cfg := DefaultConfig(40)
	cfg.Size = 1
	cfg.Tau = 1
	if _, err := Detect(s, cfg); err != nil {
		t.Fatalf("size-1 ensemble should work: %v", err)
	}
}

func TestDetectCombinersAndNormalizersRun(t *testing.T) {
	s := noisyPeriodic(1000, 40, 500, 3)
	for _, comb := range []Combiner{CombineMedian, CombineMean} {
		for _, norm := range []Normalizer{NormalizeMax, NormalizeMinMax} {
			cfg := DefaultConfig(40)
			cfg.Size = 10
			cfg.Combine = comb
			cfg.Normalize = norm
			res, err := Detect(s, cfg)
			if err != nil {
				t.Fatalf("combiner %v normalizer %v: %v", comb, norm, err)
			}
			for i, v := range res.Curve {
				if v < 0 || v > 1 {
					t.Fatalf("combiner %v normalizer %v: curve[%d]=%v outside [0,1]",
						comb, norm, i, v)
				}
			}
		}
	}
}

func TestEnsembleBeatsWorstSingleRun(t *testing.T) {
	// The motivating claim (Fig. 1): single parameter choices vary wildly;
	// the ensemble should locate the anomaly at least as well as a bad
	// single choice. We verify the ensemble finds the planted anomaly in a
	// series where at least one single (w,a) run misses it.
	period := 64
	pos := 2000
	s := noisyPeriodic(4000, period, pos, 21)
	cfg := DefaultConfig(period)
	cfg.Seed = 99
	res, err := Detect(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, c := range res.Candidates {
		if c.Pos < pos+period && pos < c.Pos+c.Length {
			hit = true
		}
	}
	if !hit {
		t.Errorf("ensemble missed the planted anomaly at %d: %+v", pos, res.Candidates)
	}
}
