// Package sequitur implements the Sequitur grammar induction algorithm of
// Nevill-Manning & Witten (1997), as used in §5.1 of the paper: a greedy,
// linear-time construction of a context-free grammar from a token sequence,
// maintaining the two invariants
//
//   - digram uniqueness — no pair of adjacent symbols appears more than
//     once (without overlap) in the grammar, and
//   - rule utility — every rule other than the start rule is used at least
//     twice.
//
// The induction works on an intrusive doubly-linked list of symbols with a
// digram index, exactly as in the reference implementation; the result is
// then frozen into an immutable Grammar value that the rest of the library
// (rule density curves, anomaly ranking) consumes.
package sequitur

import (
	"errors"
	"fmt"
	"strings"
)

// ErrEmptyInput is returned when Induce is called with no tokens.
var ErrEmptyInput = errors.New("sequitur: empty input sequence")

// Symbol is one entry on the right-hand side of a production. It is either
// a terminal (an index into Grammar.Words) or a reference to another rule.
type Symbol struct {
	Rule int // rule index when >= 0; -1 for a terminal
	Term int // index into Grammar.Words; valid only when Rule < 0
}

// IsRule reports whether the symbol references a rule.
func (s Symbol) IsRule() bool { return s.Rule >= 0 }

// Rule is one production of the induced grammar.
type Rule struct {
	// RHS is the right-hand side of the production.
	RHS []Symbol
	// Uses is the number of references to this rule from other rules'
	// right-hand sides. It is 0 for the start rule and >= 2 for all others
	// (the rule-utility invariant).
	Uses int
	// expLen caches the number of terminals this rule expands to.
	expLen int
}

// Grammar is the immutable result of grammar induction. Rules[0] is the
// start rule R0; its full expansion reproduces the input token sequence.
type Grammar struct {
	// Words maps terminal ids to the original token strings.
	Words []string
	// Rules holds the productions; Rules[0] is the start rule.
	Rules []Rule
}

// NumRules returns the number of rules including the start rule.
func (g *Grammar) NumRules() int { return len(g.Rules) }

// ExpansionLen returns the number of terminals rule id expands to.
func (g *Grammar) ExpansionLen(id int) int { return g.Rules[id].expLen }

// Expansion returns the full terminal expansion of the start rule, which
// equals the input token sequence.
func (g *Grammar) Expansion() []string {
	out := make([]string, 0, g.Rules[0].expLen)
	return g.appendExpansion(out, 0)
}

// ExpandRule returns the terminal expansion of rule id.
func (g *Grammar) ExpandRule(id int) []string {
	out := make([]string, 0, g.Rules[id].expLen)
	return g.appendExpansion(out, id)
}

func (g *Grammar) appendExpansion(out []string, id int) []string {
	for _, s := range g.Rules[id].RHS {
		if s.IsRule() {
			out = g.appendExpansion(out, s.Rule)
		} else {
			out = append(out, g.Words[s.Term])
		}
	}
	return out
}

// RuleString renders rule id in the paper's notation, e.g. "R1 -> ab bc".
func (g *Grammar) RuleString(id int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "R%d ->", id)
	for _, s := range g.Rules[id].RHS {
		if s.IsRule() {
			fmt.Fprintf(&b, " R%d", s.Rule)
		} else {
			fmt.Fprintf(&b, " %s", g.Words[s.Term])
		}
	}
	return b.String()
}

// String renders the whole grammar, one rule per line.
func (g *Grammar) String() string {
	var b strings.Builder
	for i := range g.Rules {
		b.WriteString(g.RuleString(i))
		b.WriteByte('\n')
	}
	return b.String()
}

// VisitOccurrences calls fn(ruleID, start, end) for every occurrence of
// every rule other than R0 in the full expansion of the grammar, where
// [start, end) is the token index span the occurrence covers (indices into
// the input token sequence). Nested occurrences are reported for every use
// of the enclosing rule, which is exactly what the rule density curve
// needs: each point's density counts all rules covering it.
func (g *Grammar) VisitOccurrences(fn func(ruleID, start, end int)) {
	g.visit(0, 0, 0, fn)
}

// VisitOccurrencesAfter is VisitOccurrences restricted to occurrences that
// extend past token index cutoff: every reported span satisfies end >
// cutoff. Subtrees that lie entirely at or before the cutoff are pruned
// without being walked, which is what lets a windowed density computation
// over a long retained token history skip its expired prefix.
func (g *Grammar) VisitOccurrencesAfter(cutoff int, fn func(ruleID, start, end int)) {
	g.visit(0, 0, cutoff, fn)
}

func (g *Grammar) visit(id, offset, cutoff int, fn func(ruleID, start, end int)) {
	for _, s := range g.Rules[id].RHS {
		if s.IsRule() {
			n := g.Rules[s.Rule].expLen
			if offset+n > cutoff {
				fn(s.Rule, offset, offset+n)
				g.visit(s.Rule, offset, cutoff, fn)
			}
			offset += n
		} else {
			offset++
		}
	}
}

// Induce runs Sequitur over the token sequence and returns the frozen
// grammar. It is linear in len(tokens) up to hashing.
func Induce(tokens []string) (*Grammar, error) {
	if len(tokens) == 0 {
		return nil, ErrEmptyInput
	}
	b := newBuilder(len(tokens))
	for _, tok := range tokens {
		b.push(tok)
	}
	return b.freeze(), nil
}
