package sequitur

import (
	"math/rand"
	"sort"
	"testing"
)

// randTokens draws length tokens from a small alphabet, with enough
// repetition structure for Sequitur to build non-trivial rules.
func randTokens(rng *rand.Rand, length, alphabet int) []string {
	words := make([]string, alphabet)
	for i := range words {
		words[i] = string(rune('a' + i))
	}
	out := make([]string, 0, length)
	for len(out) < length {
		if len(out) > 4 && rng.Intn(3) == 0 {
			// Repeat a recent chunk to force digram collisions.
			n := 2 + rng.Intn(4)
			at := rng.Intn(len(out) - n + 1)
			out = append(out, out[at:at+n]...)
		} else {
			out = append(out, words[rng.Intn(alphabet)])
		}
	}
	return out[:length]
}

// occSpan is one rule occurrence's token span.
type occSpan struct{ s, e int }

func collectSpans(visit func(fn func(rule, s, e int))) []occSpan {
	var out []occSpan
	visit(func(_, s, e int) { out = append(out, occSpan{s, e}) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].s != out[j].s {
			return out[i].s < out[j].s
		}
		return out[i].e < out[j].e
	})
	return out
}

// TestResumableEqualsInduce is the resumable-induction pin: a Builder fed a
// token sequence in random-sized batches — interleaved with freezes, and
// reused across Resets — holds exactly the grammar Induce over the same
// sequence returns. Rendered rules (terminals resolved) must match string
// for string, and so must every rule occurrence span.
func TestResumableEqualsInduce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder() // reused across trials: each trial exercises Reset
	for trial := 0; trial < 60; trial++ {
		tokens := randTokens(rng, 1+rng.Intn(400), 2+rng.Intn(5))
		b.Reset()
		for at := 0; at < len(tokens); {
			n := 1 + rng.Intn(len(tokens)-at)
			for _, tok := range tokens[at : at+n] {
				b.Push(tok)
			}
			at += n
			if rng.Intn(3) == 0 {
				// Freezing mid-stream must not disturb the live state.
				if _, err := b.Grammar(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if b.Len() != len(tokens) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, b.Len(), len(tokens))
		}
		got, err := b.Grammar()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Induce(tokens)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRules() != want.NumRules() {
			t.Fatalf("trial %d: %d rules resumable, %d from scratch\nresumable:\n%s\nscratch:\n%s",
				trial, got.NumRules(), want.NumRules(), got, want)
		}
		for id := 0; id < want.NumRules(); id++ {
			if g, w := got.RuleString(id), want.RuleString(id); g != w {
				t.Fatalf("trial %d rule %d: %q resumable, %q from scratch", trial, id, g, w)
			}
		}
		gotSpans := collectSpans(func(fn func(rule, s, e int)) { b.VisitOccurrencesAfter(0, fn) })
		wantSpans := collectSpans(want.VisitOccurrences)
		if len(gotSpans) != len(wantSpans) {
			t.Fatalf("trial %d: %d occurrence spans live, %d frozen", trial, len(gotSpans), len(wantSpans))
		}
		for i := range gotSpans {
			if gotSpans[i] != wantSpans[i] {
				t.Fatalf("trial %d span %d: %+v live, %+v frozen", trial, i, gotSpans[i], wantSpans[i])
			}
		}
	}
}

// TestVisitOccurrencesAfterPrunes: the cutoff variant reports exactly the
// occurrences whose span extends past the cutoff, on both the live builder
// and the frozen grammar.
func TestVisitOccurrencesAfterPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		tokens := randTokens(rng, 40+rng.Intn(200), 3)
		b := NewBuilder()
		for _, tok := range tokens {
			b.Push(tok)
		}
		g, err := b.Grammar()
		if err != nil {
			t.Fatal(err)
		}
		all := collectSpans(g.VisitOccurrences)
		for _, cutoff := range []int{0, 1, len(tokens) / 2, len(tokens) - 1, len(tokens)} {
			var want []occSpan
			for _, o := range all {
				if o.e > cutoff {
					want = append(want, o)
				}
			}
			for name, spans := range map[string][]occSpan{
				"live":   collectSpans(func(fn func(rule, s, e int)) { b.VisitOccurrencesAfter(cutoff, fn) }),
				"frozen": collectSpans(func(fn func(rule, s, e int)) { g.VisitOccurrencesAfter(cutoff, fn) }),
			} {
				if len(spans) != len(want) {
					t.Fatalf("trial %d cutoff %d (%s): %d spans, want %d", trial, cutoff, name, len(spans), len(want))
				}
				for i := range spans {
					if spans[i] != want[i] {
						t.Fatalf("trial %d cutoff %d (%s) span %d: %+v, want %+v",
							trial, cutoff, name, i, spans[i], want[i])
					}
				}
			}
		}
	}
}

// TestBuilderMemoryBytes: the accounting is positive once tokens are
// pushed, grows with more retained state, and does not grow across Resets
// that reuse the warm storage at the same scale.
func TestBuilderMemoryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	empty := b.MemoryBytes()
	if empty < 0 {
		t.Fatalf("empty builder accounting = %d", empty)
	}
	tokens := randTokens(rng, 500, 4)
	for _, tok := range tokens {
		b.Push(tok)
	}
	small := b.MemoryBytes()
	if small <= empty {
		t.Fatalf("accounting did not grow with tokens: %d -> %d", empty, small)
	}
	for _, tok := range randTokens(rng, 2000, 4) {
		b.Push(tok)
	}
	large := b.MemoryBytes()
	if large <= small {
		t.Fatalf("accounting did not grow with more tokens: %d -> %d", small, large)
	}
	// Warm reuse at the same scale: the plateau the engine's footprint
	// accounting depends on.
	peak := large
	for cycle := 0; cycle < 5; cycle++ {
		b.Reset()
		for _, tok := range randTokens(rng, 2000, 4) {
			b.Push(tok)
		}
		if got := b.MemoryBytes(); got > peak+peak/10 {
			t.Fatalf("cycle %d: accounting %d exceeds warm plateau %d", cycle, got, peak)
		}
	}
	// A fresh vocabulary every epoch must not accumulate: the intern table
	// is epoch-local, so retained bytes plateau even when no word ever
	// recurs across resets — the non-stationary-stream guarantee.
	b.Reset()
	for _, tok := range randTokens(rng, 2000, 4) {
		b.Push(tok)
	}
	vocabPeak := b.MemoryBytes()
	for cycle := 0; cycle < 8; cycle++ {
		b.Reset()
		for i := 0; i < 2000; i++ {
			// Unique-per-cycle words: "c<cycle>w<i%97>".
			b.Push(string(rune('A'+cycle)) + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
		}
		if got := b.MemoryBytes(); got > 2*vocabPeak {
			t.Fatalf("cycle %d: accounting %d exceeds 2x first-epoch peak %d — intern table accumulating across resets", cycle, got, vocabPeak)
		}
	}

	// LastWord reflects the latest push and clears on Reset.
	if w, ok := b.LastWord(); !ok || w == "" {
		t.Fatalf("LastWord after pushes = %q, %v", w, ok)
	}
	b.Reset()
	if _, ok := b.LastWord(); ok {
		t.Fatal("LastWord should report no tokens after Reset")
	}
	if _, err := b.Grammar(); err != ErrEmptyInput {
		t.Fatalf("Grammar on empty builder: %v, want ErrEmptyInput", err)
	}
}
