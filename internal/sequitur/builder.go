package sequitur

import "sort"

// This file contains the mutable induction engine: an intrusive circular
// doubly-linked list per rule (with a guard node), and a digram index that
// maps a pair of adjacent symbol values to the leftmost live occurrence.
// The structure follows the reference Sequitur implementation; the triple
// fix-ups in join keep the digram index correct for runs like "aaa" where
// consecutive digrams overlap.

// node is one symbol in a rule's RHS during induction. val encodes the
// symbol identity: terminal word ids are >= 0, rule references are encoded
// as -(id+1) so that equal values mean equal symbols across the grammar.
type node struct {
	prev, next *node
	val        int
	rule       *irule // referenced rule (non-terminal) or owner (guard)
	guard      bool
}

// irule is a rule under construction.
type irule struct {
	id    int
	guard *node // guard.next = first RHS symbol, guard.prev = last
	uses  int
}

func (r *irule) first() *node { return r.guard.next }
func (r *irule) last() *node  { return r.guard.prev }

func ruleVal(id int) int { return -(id + 1) }

// digram packs a pair of adjacent symbol values into one map key. Symbol
// values are word ids (>= 0, far below 2^31) or encoded rule ids
// (-(id+1), bounded the same way), so each fits a uint32 half; a single
// 8-byte key keeps the index on the runtime's fast map path, which matters
// because the digram index dominates induction cost.
type digram uint64

func packDigram(a, b int) digram {
	return digram(uint64(uint32(a))<<32 | uint64(uint32(b)))
}

type builder struct {
	digrams   map[digram]*node
	rules     map[int]*irule // live rules by id
	nextID    int
	start     *irule
	wordIDs   map[string]int
	words     []string
	wordBytes int64 // total len over interned words (O(1) accounting)

	// Node arena: induction creates roughly one node per input token (plus
	// a few per rule), and allocating each individually dominated the
	// allocation profile of the streaming hot path. Nodes are handed out
	// of fixed-size blocks instead; the blocks stay alive in the blocks
	// list so reset can recycle them, and dead nodes are simply abandoned
	// between resets (Sequitur frees at most O(rules) of them, not worth a
	// free list).
	blocks   [][]node
	curBlock int
	blockAt  int
}

// nodeBlockSize is the arena granularity: one allocation per this many
// nodes.
const nodeBlockSize = 256

func (b *builder) newNode() *node {
	if b.curBlock == len(b.blocks) {
		b.blocks = append(b.blocks, make([]node, nodeBlockSize))
	}
	n := &b.blocks[b.curBlock][b.blockAt] // zeroed: fresh block or cleared by reset
	b.blockAt++
	if b.blockAt == nodeBlockSize {
		b.curBlock++
		b.blockAt = 0
	}
	return n
}

// reset returns the builder to its freshly-constructed state while keeping
// every allocation warm: the digram, rule and word-intern tables are
// cleared in place (keeping their buckets/storage), and the used prefix of
// the node arena is zeroed for reuse. Word ids are epoch-local — they only
// ever compare for equality, and clearing them keeps the retained
// vocabulary bounded by one epoch's distinct words instead of growing with
// every word ever seen on the stream.
func (b *builder) reset() {
	clear(b.digrams)
	clear(b.rules)
	clear(b.wordIDs)
	b.words = b.words[:0]
	b.wordBytes = 0
	b.nextID = 0
	for i := 0; i < b.curBlock; i++ {
		clear(b.blocks[i])
	}
	if b.curBlock < len(b.blocks) {
		clear(b.blocks[b.curBlock][:b.blockAt])
	}
	b.curBlock, b.blockAt = 0, 0
	b.start = b.newRule()
}

// newBuilder creates an induction engine; sizeHint is the expected input
// length, used to presize the digram and word tables.
func newBuilder(sizeHint int) *builder {
	b := &builder{
		digrams: make(map[digram]*node, sizeHint),
		rules:   make(map[int]*irule),
		wordIDs: make(map[string]int, sizeHint/2+1),
	}
	b.start = b.newRule()
	return b
}

func (b *builder) newRule() *irule {
	r := &irule{id: b.nextID}
	b.nextID++
	g := b.newNode()
	g.guard = true
	g.rule = r
	g.next, g.prev = g, g
	r.guard = g
	b.rules[r.id] = r
	return r
}

func (b *builder) internWord(w string) int {
	if id, ok := b.wordIDs[w]; ok {
		return id
	}
	id := len(b.words)
	b.words = append(b.words, w)
	b.wordIDs[w] = id
	b.wordBytes += int64(len(w))
	return id
}

// push appends one terminal token to the start rule and restores the
// grammar invariants.
func (b *builder) push(tok string) {
	n := b.newNode()
	n.val = b.internWord(tok)
	last := b.start.last()
	b.insertAfter(last, n)
	if !last.guard {
		b.check(last)
	}
}

// properDigram reports whether (a, a.next) is a digram of two real symbols.
func properDigram(a *node) bool {
	return a != nil && !a.guard && a.next != nil && !a.next.guard
}

func keyOf(a *node) digram { return packDigram(a.val, a.next.val) }

// deleteDigram removes the index entry for the digram starting at a, but
// only if the index currently points at a (the same key may have been
// re-registered by a different occurrence).
func (b *builder) deleteDigram(a *node) {
	if !properDigram(a) {
		return
	}
	k := keyOf(a)
	if b.digrams[k] == a {
		delete(b.digrams, k)
	}
}

// join links l -> r, keeping the digram index consistent. When l already
// had a successor, the digram starting at l dies; the triple fix-ups
// re-point the index for overlapping runs such as "aaa", where removing a
// middle symbol changes which occurrence of the (a,a) digram is canonical.
func (b *builder) join(l, r *node) {
	if l.next != nil {
		b.deleteDigram(l)
		if !r.guard && r.prev != nil && r.next != nil && !r.prev.guard && !r.next.guard &&
			r.val == r.prev.val && r.val == r.next.val {
			b.digrams[keyOf(r)] = r
		}
		if !l.guard && l.prev != nil && l.next != nil && !l.prev.guard && !l.next.guard &&
			l.val == l.prev.val && l.val == l.next.val {
			b.digrams[keyOf(l.prev)] = l.prev
		}
	}
	l.next = r
	r.prev = l
}

// insertAfter places n immediately after pos.
func (b *builder) insertAfter(pos, n *node) {
	b.join(n, pos.next)
	b.join(pos, n)
}

// unlink removes n from its list, cleaning up index entries for the two
// digrams that die with it and releasing its rule reference.
func (b *builder) unlink(n *node) {
	p, nx := n.prev, n.next
	b.join(p, nx)
	// The digram (n, old next) may still be indexed at n.
	if !n.guard && !nx.guard {
		k := packDigram(n.val, nx.val)
		if b.digrams[k] == n {
			delete(b.digrams, k)
		}
	}
	if !n.guard && n.rule != nil {
		n.rule.uses--
	}
}

// check enforces digram uniqueness for the digram starting at n. It returns
// true when a substitution took place (and n is no longer live).
func (b *builder) check(n *node) bool {
	if !properDigram(n) {
		return false
	}
	k := keyOf(n)
	m, ok := b.digrams[k]
	if !ok {
		b.digrams[k] = n
		return false
	}
	if m == n || m.next == n || n.next == m {
		// The same or an overlapping occurrence: nothing to do.
		return false
	}
	b.match(n, m)
	return true
}

// match resolves a repeated digram: n is the new occurrence, m the indexed
// one. Either the indexed occurrence is exactly the whole RHS of an
// existing rule (reuse it), or a fresh rule is created from the digram and
// both occurrences are substituted.
func (b *builder) match(n, m *node) {
	var r *irule
	if m.prev.guard && m.next.next.guard {
		r = m.prev.rule
		b.substitute(n, r)
	} else {
		r = b.newRule()
		// Build the rule body from copies of the matched digram.
		c1 := b.newNode()
		c1.val, c1.rule = m.val, m.rule
		c2 := b.newNode()
		c2.val, c2.rule = m.next.val, m.next.rule
		if c1.rule != nil {
			c1.rule.uses++
		}
		if c2.rule != nil {
			c2.rule.uses++
		}
		b.insertAfter(r.guard, c1)
		b.insertAfter(c1, c2)
		b.substitute(m, r)
		b.substitute(n, r)
		b.digrams[keyOf(r.first())] = r.first()
	}
	// Rule utility: the two collapsed occurrences may leave a rule
	// referenced from the new rule's body with only one remaining use;
	// inline it. The reference implementation checks only the first
	// symbol; the last symbol is symmetric, so we check it as well.
	f := r.first()
	if !f.guard && f.rule != nil && !f.rule.isStart(b) && f.rule.uses == 1 {
		b.expand(f)
	}
	l := r.last()
	if !l.guard && l != f && l.rule != nil && !l.rule.isStart(b) && l.rule.uses == 1 {
		b.expand(l)
	}
}

func (r *irule) isStart(b *builder) bool { return r == b.start }

// substitute replaces the digram starting at n with a reference to rule r.
func (b *builder) substitute(n *node, r *irule) {
	q := n.prev
	b.unlink(q.next) // n itself
	b.unlink(q.next) // what used to be n.next
	nt := b.newNode()
	nt.val, nt.rule = ruleVal(r.id), r
	r.uses++
	b.insertAfter(q, nt)
	if !b.check(q) {
		b.check(nt)
	}
}

// expand inlines the rule referenced by n (which must have uses == 1) into
// n's position and deletes the rule — the rule-utility constraint.
func (b *builder) expand(n *node) {
	r := n.rule
	left, right := n.prev, n.next
	f, l := r.first(), r.last()

	// Digrams (left, n) and (n, right) die with n.
	b.deleteDigram(left)
	b.deleteDigram(n)
	// Splice the rule body in place of n.
	left.next = f
	f.prev = left
	l.next = right
	right.prev = l
	// The junction digram (l, right) becomes live; register it. (left, f)
	// is registered by the caller's subsequent checks when applicable; the
	// reference implementation registers only the right junction here.
	if properDigram(l) {
		b.digrams[keyOf(l)] = l
	}
	delete(b.rules, r.id)
}

// freeze snapshots the mutable state into an immutable Grammar with dense
// rule ids (start rule first, then in ascending original id order), and
// computes expansion lengths.
func (b *builder) freeze() *Grammar {
	// Dense renumbering.
	ids := make([]int, 0, len(b.rules))
	for id := range b.rules {
		ids = append(ids, id)
	}
	// The start rule has the smallest id (0); keep ascending order.
	sort.Ints(ids)
	remap := make(map[int]int, len(ids))
	for dense, id := range ids {
		remap[id] = dense
	}

	g := &Grammar{Words: append([]string(nil), b.words...)}
	g.Rules = make([]Rule, len(ids))
	for dense, id := range ids {
		r := b.rules[id]
		var rhs []Symbol
		for n := r.first(); !n.guard; n = n.next {
			if n.rule != nil {
				rhs = append(rhs, Symbol{Rule: remap[n.rule.id], Term: -1})
			} else {
				rhs = append(rhs, Symbol{Rule: -1, Term: n.val})
			}
		}
		g.Rules[dense] = Rule{RHS: rhs, Uses: r.uses}
	}
	// Expansion lengths bottom-up: referenced rules always have a higher
	// original id than... not guaranteed after reuse; do a memoized DFS.
	memo := make([]int, len(g.Rules))
	for i := range memo {
		memo[i] = -1
	}
	var expLen func(int) int
	expLen = func(id int) int {
		if memo[id] >= 0 {
			return memo[id]
		}
		memo[id] = 0 // guards against cycles, which a correct grammar never has
		total := 0
		for _, s := range g.Rules[id].RHS {
			if s.IsRule() {
				total += expLen(s.Rule)
			} else {
				total++
			}
		}
		memo[id] = total
		return total
	}
	for i := range g.Rules {
		g.Rules[i].expLen = expLen(i)
	}
	return g
}
