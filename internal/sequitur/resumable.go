package sequitur

// This file exports the induction engine as a resumable Builder: the same
// greedy Sequitur construction as Induce, but with the mutable state kept
// alive between calls so a caller can append tokens to a grammar it already
// holds instead of re-inducing the whole sequence. Sequitur is inherently
// online — Induce itself is a loop of single-token pushes — so a Builder
// fed the tokens t1..tk in any grouping holds exactly the grammar that
// Induce(t1..tk) would return (the resumable property tests pin this).
//
// The streaming engine uses one Builder per ensemble member: each hop
// appends only the hop's new tokens (amortized O(hop) instead of O(span)
// induction per run), and Reset rebases the grammar onto the live span
// every K hops so rules anchored in expired tokens don't accumulate. Reset
// keeps every allocation warm — arena blocks, digram/rule tables, the word
// intern table — so even a rebase allocates almost nothing in steady state.

// Builder is a resumable Sequitur induction engine. The zero value is not
// usable; construct with NewBuilder. A Builder is not safe for concurrent
// use.
type Builder struct {
	b     *builder
	count int    // tokens pushed since the last Reset
	last  string // word of the most recently pushed token
	memo  []int  // expansion-length scratch by live rule id; -1 = unset
}

// NewBuilder creates an empty resumable induction engine.
func NewBuilder() *Builder {
	return &Builder{b: newBuilder(64)}
}

// Push appends one terminal token to the grammar and restores the Sequitur
// invariants. After pushing tokens t1..tk (across any number of calls since
// the last Reset) the builder holds exactly the grammar Induce(t1..tk)
// would produce.
func (r *Builder) Push(word string) {
	r.b.push(word)
	r.count++
	r.last = word
}

// Len returns the number of tokens pushed since the last Reset.
func (r *Builder) Len() int { return r.count }

// LastWord returns the most recently pushed token's word, and whether any
// token has been pushed since the last Reset. Streaming callers use it to
// resume numerosity reduction at a feed seam: a candidate token equal to
// the last pushed word is a re-emitted run head, not a new token.
func (r *Builder) LastWord() (string, bool) { return r.last, r.count > 0 }

// NumRules returns the number of live rules including the start rule.
func (r *Builder) NumRules() int { return len(r.b.rules) }

// Reset discards the grammar, re-anchoring the builder on an empty token
// sequence, while keeping its allocations (node arena, hash tables, word
// intern storage) warm for reuse. The interned vocabulary is cleared with
// the grammar — ids are epoch-local — so retained memory is bounded by one
// epoch's distinct words no matter how long the builder lives.
func (r *Builder) Reset() {
	r.b.reset()
	r.count = 0
	r.last = ""
}

// Grammar freezes the current state into an immutable Grammar, exactly as
// Induce over the tokens pushed since the last Reset would return it. The
// builder remains usable: freezing is non-destructive and further pushes
// continue the same grammar.
func (r *Builder) Grammar() (*Grammar, error) {
	if r.count == 0 {
		return nil, ErrEmptyInput
	}
	return r.b.freeze(), nil
}

// AppendSequence appends the exact token sequence pushed since the last
// Reset to dst and returns the extended slice: the start rule expanded
// terminal by terminal. A Sequitur grammar is a lossless encoding of its
// input, so a fresh Builder re-Pushed this sequence holds a grammar
// identical to this one (the resumable property) — which is how the
// durability layer serializes induction state without walking the graph:
// snapshot the sequence, restore by re-induction.
func (r *Builder) AppendSequence(dst []string) []string {
	if r.count == 0 {
		return dst
	}
	return r.appendExpansion(dst, r.b.start)
}

// appendExpansion appends rule ru's terminal expansion, in order, to dst.
func (r *Builder) appendExpansion(dst []string, ru *irule) []string {
	for n := ru.first(); !n.guard; n = n.next {
		if n.rule != nil {
			dst = r.appendExpansion(dst, n.rule)
		} else {
			dst = append(dst, r.b.words[n.val])
		}
	}
	return dst
}

// VisitOccurrencesAfter enumerates rule occurrences of the live grammar
// without freezing it: fn(ruleID, start, end) is called for every
// occurrence of every rule other than the start rule whose token span
// [start, end) extends past token index cutoff (end > cutoff), with nested
// occurrences reported per use of the enclosing rule — the same contract as
// Grammar.VisitOccurrencesAfter, minus the freeze. Rule ids are the live
// (non-dense) ids; occurrence spans are what density curves consume, and
// they are identical to the frozen grammar's. Subtrees entirely at or
// before the cutoff are pruned unwalked.
func (r *Builder) VisitOccurrencesAfter(cutoff int, fn func(ruleID, start, end int)) {
	if r.count == 0 {
		return
	}
	// Live rule ids are dense in [0, nextID) within an epoch; a flat memo
	// beats a map here because expLen is the visitation's inner lookup.
	if cap(r.memo) < r.b.nextID {
		r.memo = make([]int, r.b.nextID+r.b.nextID/2+1)
	}
	r.memo = r.memo[:r.b.nextID]
	for i := range r.memo {
		r.memo[i] = -1
	}
	r.visit(r.b.start, 0, cutoff, fn)
}

// expLen returns the number of terminals rule ru expands to, memoized in
// r.memo for the current visitation.
func (r *Builder) expLen(ru *irule) int {
	if v := r.memo[ru.id]; v >= 0 {
		return v
	}
	r.memo[ru.id] = 0 // cycle guard; a correct grammar never has one
	total := 0
	for n := ru.first(); !n.guard; n = n.next {
		if n.rule != nil {
			total += r.expLen(n.rule)
		} else {
			total++
		}
	}
	r.memo[ru.id] = total
	return total
}

func (r *Builder) visit(ru *irule, offset, cutoff int, fn func(ruleID, start, end int)) {
	for n := ru.first(); !n.guard; n = n.next {
		if n.rule != nil {
			l := r.expLen(n.rule)
			if offset+l > cutoff {
				fn(n.rule.id, offset, offset+l)
				r.visit(n.rule, offset, cutoff, fn)
			}
			offset += l
		} else {
			offset++
		}
	}
}

// Per-entry accounting constants for MemoryBytes: the in-memory size of an
// arena node, and approximations for one digram-index entry, one rule-table
// entry (header plus the irule it points at), and one word-intern entry
// (map header plus the []string slot), map bucket overhead included.
const (
	nodeSize        = 40
	digramEntrySize = 32
	ruleEntrySize   = 56
	wordEntrySize   = 48
)

// MemoryBytes is the builder's retained-memory accounting: the node arena
// at capacity, the digram and rule tables at their live sizes, the word
// intern table including the interned bytes, and the visitation scratch.
// Like the rest of the library's footprint accounting it is a
// deterministic capacity-based bookkeeping of the structures the builder
// owns, not Go allocator truth, and it is O(1) per call.
func (r *Builder) MemoryBytes() int64 {
	return int64(len(r.b.blocks))*nodeBlockSize*nodeSize +
		int64(len(r.b.digrams))*digramEntrySize +
		int64(len(r.b.rules))*ruleEntrySize +
		int64(len(r.b.words))*wordEntrySize +
		r.b.wordBytes +
		int64(cap(r.memo))*8
}
