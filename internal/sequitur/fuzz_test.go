package sequitur

import (
	"testing"
)

// FuzzSequitur feeds arbitrary token sequences through induction and
// asserts the two load-bearing properties on every input: the grammar's
// start-rule expansion reproduces the input exactly (losslessness), and
// the digram-uniqueness / rule-utility invariants hold. Each input byte
// becomes one token; alpha narrows the alphabet so the fuzzer explores
// repeat-heavy sequences (where rules actually form) as well as noise.
func FuzzSequitur(f *testing.F) {
	f.Add([]byte("abcdbcabcd"), uint8(26))
	f.Add([]byte("aaaaaaaa"), uint8(1))
	f.Add([]byte("abababab"), uint8(2))
	f.Add([]byte("xyxy zxyxy z"), uint8(4))
	f.Add([]byte{0, 1, 2, 0, 1, 2, 0, 1}, uint8(3))
	f.Add([]byte{}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, alpha uint8) {
		k := int(alpha%26) + 1
		tokens := make([]string, len(data))
		for i, b := range data {
			tokens[i] = string(rune('a' + int(b)%k))
		}
		g, err := Induce(tokens)
		if len(tokens) == 0 {
			if err != ErrEmptyInput {
				t.Fatalf("empty input: got %v, want ErrEmptyInput", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("Induce(%q): %v", tokens, err)
		}
		expansionEquals(t, g, tokens)
		checkInvariants(t, g)
		if got := g.ExpansionLen(0); got != len(tokens) {
			t.Fatalf("ExpansionLen(0) = %d, want %d", got, len(tokens))
		}
	})
}
