package sequitur

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// expansionEquals asserts that the grammar's start-rule expansion
// reproduces the input exactly — Sequitur is lossless.
func expansionEquals(t *testing.T, g *Grammar, input []string) {
	t.Helper()
	got := g.Expansion()
	if len(got) != len(input) {
		t.Fatalf("expansion has %d tokens, want %d\ngrammar:\n%s", len(got), len(input), g)
	}
	for i := range input {
		if got[i] != input[i] {
			t.Fatalf("expansion[%d] = %q, want %q\ngrammar:\n%s", i, got[i], input[i], g)
		}
	}
}

// checkInvariants verifies digram uniqueness (no digram appears twice
// without overlap across all rule bodies) and rule utility (every non-start
// rule used at least twice, and Uses matches the actual reference count).
func checkInvariants(t *testing.T, g *Grammar) {
	t.Helper()
	type loc struct{ rule, pos int }
	seen := map[string]loc{}
	for ri, r := range g.Rules {
		for i := 0; i+1 < len(r.RHS); i++ {
			a, b := r.RHS[i], r.RHS[i+1]
			key := fmt.Sprintf("%d.%d|%d.%d", a.Rule, a.Term, b.Rule, b.Term)
			if prev, ok := seen[key]; ok {
				// Overlapping occurrences in a run like "aaa" are legal.
				if prev.rule == ri && i-prev.pos == 1 && a == b {
					continue
				}
				t.Errorf("digram %s appears at R%d:%d and R%d:%d\ngrammar:\n%s",
					key, prev.rule, prev.pos, ri, i, g)
			} else {
				seen[key] = loc{ri, i}
			}
		}
	}
	refs := make([]int, len(g.Rules))
	for _, r := range g.Rules {
		for _, s := range r.RHS {
			if s.IsRule() {
				refs[s.Rule]++
			}
		}
	}
	if refs[0] != 0 {
		t.Errorf("start rule is referenced %d times", refs[0])
	}
	for ri := 1; ri < len(g.Rules); ri++ {
		if refs[ri] < 2 {
			t.Errorf("rule R%d used %d times, rule utility requires >= 2\ngrammar:\n%s",
				ri, refs[ri], g)
		}
		if g.Rules[ri].Uses != refs[ri] {
			t.Errorf("rule R%d Uses=%d but actual references=%d", ri, g.Rules[ri].Uses, refs[ri])
		}
		if len(g.Rules[ri].RHS) < 2 {
			t.Errorf("rule R%d has a %d-symbol body", ri, len(g.Rules[ri].RHS))
		}
	}
}

func TestInduceEmpty(t *testing.T) {
	if _, err := Induce(nil); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestInduceSingleToken(t *testing.T) {
	g, err := Induce([]string{"aa"})
	if err != nil {
		t.Fatal(err)
	}
	expansionEquals(t, g, []string{"aa"})
	if g.NumRules() != 1 {
		t.Errorf("single token grammar has %d rules, want 1", g.NumRules())
	}
}

func TestInduceTable1Example(t *testing.T) {
	// §3.2, Table 1: S = aa,bb,cc,xx,aa,bb,cc induces
	//   R0 -> R1 xx R1 ;  R1 -> aa bb cc
	in := []string{"aa", "bb", "cc", "xx", "aa", "bb", "cc"}
	g, err := Induce(in)
	if err != nil {
		t.Fatal(err)
	}
	expansionEquals(t, g, in)
	checkInvariants(t, g)
	if g.NumRules() != 2 {
		t.Fatalf("grammar has %d rules, want 2:\n%s", g.NumRules(), g)
	}
	r0 := g.Rules[0]
	if len(r0.RHS) != 3 || !r0.RHS[0].IsRule() || r0.RHS[1].IsRule() || !r0.RHS[2].IsRule() {
		t.Fatalf("R0 structure wrong:\n%s", g)
	}
	if g.Words[r0.RHS[1].Term] != "xx" {
		t.Errorf("middle terminal = %q, want xx", g.Words[r0.RHS[1].Term])
	}
	exp := g.ExpandRule(1)
	if strings.Join(exp, ",") != "aa,bb,cc" {
		t.Errorf("R1 expands to %v, want aa,bb,cc", exp)
	}
	if g.Rules[1].Uses != 2 {
		t.Errorf("R1 uses = %d, want 2", g.Rules[1].Uses)
	}
}

func TestInduceTable2Example(t *testing.T) {
	// §5.1, Table 2: SNR = ab,bc,aa,cc,ca,ab,bc,aa ends as
	//   R0 -> R2 cc ca R2 ;  R2 -> ab bc aa
	// (the intermediate R1 -> ab bc is removed by rule utility).
	in := []string{"ab", "bc", "aa", "cc", "ca", "ab", "bc", "aa"}
	g, err := Induce(in)
	if err != nil {
		t.Fatal(err)
	}
	expansionEquals(t, g, in)
	checkInvariants(t, g)
	if g.NumRules() != 2 {
		t.Fatalf("grammar has %d rules, want 2:\n%s", g.NumRules(), g)
	}
	r0 := g.Rules[0]
	if len(r0.RHS) != 4 {
		t.Fatalf("R0 has %d symbols, want 4:\n%s", len(r0.RHS), g)
	}
	if !r0.RHS[0].IsRule() || !r0.RHS[3].IsRule() || r0.RHS[0].Rule != r0.RHS[3].Rule {
		t.Fatalf("R0 should start and end with the same rule:\n%s", g)
	}
	if g.Words[r0.RHS[1].Term] != "cc" || g.Words[r0.RHS[2].Term] != "ca" {
		t.Fatalf("uncompressed middle should be cc,ca:\n%s", g)
	}
	body := g.ExpandRule(r0.RHS[0].Rule)
	if strings.Join(body, ",") != "ab,bc,aa" {
		t.Errorf("repeated rule expands to %v, want ab,bc,aa", body)
	}
}

func TestInduceRepeats(t *testing.T) {
	// A fully periodic sequence compresses into a hierarchy; expansion
	// must still round-trip and invariants must hold.
	var in []string
	for i := 0; i < 64; i++ {
		in = append(in, "x", "y")
	}
	g, err := Induce(in)
	if err != nil {
		t.Fatal(err)
	}
	expansionEquals(t, g, in)
	checkInvariants(t, g)
	if len(g.Rules[0].RHS) >= len(in)/2 {
		t.Errorf("periodic input barely compressed: |R0| = %d", len(g.Rules[0].RHS))
	}
}

func TestInduceTripleRun(t *testing.T) {
	// Runs of one symbol exercise the overlapping-digram handling.
	for n := 2; n <= 40; n++ {
		in := make([]string, n)
		for i := range in {
			in[i] = "a"
		}
		g, err := Induce(in)
		if err != nil {
			t.Fatal(err)
		}
		expansionEquals(t, g, in)
		checkInvariants(t, g)
	}
}

func TestInduceNoRepeats(t *testing.T) {
	in := []string{"a", "b", "c", "d", "e", "f", "g"}
	g, err := Induce(in)
	if err != nil {
		t.Fatal(err)
	}
	expansionEquals(t, g, in)
	checkInvariants(t, g)
	if g.NumRules() != 1 {
		t.Errorf("unique tokens should induce no rules, got:\n%s", g)
	}
}

func TestInduceRandomRoundTrip(t *testing.T) {
	alphabets := [][]string{
		{"a", "b"},
		{"aa", "ab", "ba", "bb"},
		{"u", "v", "w", "x", "y", "z"},
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		alpha := alphabets[trial%len(alphabets)]
		n := 1 + rng.Intn(200)
		in := make([]string, n)
		for i := range in {
			in[i] = alpha[rng.Intn(len(alpha))]
		}
		g, err := Induce(in)
		if err != nil {
			t.Fatal(err)
		}
		expansionEquals(t, g, in)
		checkInvariants(t, g)
	}
}

func TestInduceQuickProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]string, len(raw))
		for i, b := range raw {
			in[i] = string(rune('a' + int(b)%5))
		}
		g, err := Induce(in)
		if err != nil {
			return false
		}
		got := g.Expansion()
		if len(got) != len(in) {
			return false
		}
		for i := range in {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExpansionLen(t *testing.T) {
	in := []string{"aa", "bb", "cc", "xx", "aa", "bb", "cc"}
	g, _ := Induce(in)
	if g.ExpansionLen(0) != len(in) {
		t.Errorf("R0 expansion length %d, want %d", g.ExpansionLen(0), len(in))
	}
	for ri := 1; ri < g.NumRules(); ri++ {
		if g.ExpansionLen(ri) != len(g.ExpandRule(ri)) {
			t.Errorf("R%d expansion length %d != |expansion| %d",
				ri, g.ExpansionLen(ri), len(g.ExpandRule(ri)))
		}
	}
}

func TestVisitOccurrences(t *testing.T) {
	in := []string{"aa", "bb", "cc", "xx", "aa", "bb", "cc"}
	g, _ := Induce(in)
	type occ struct{ rule, start, end int }
	var occs []occ
	g.VisitOccurrences(func(rule, start, end int) {
		occs = append(occs, occ{rule, start, end})
	})
	// R1 -> aa bb cc occurs at token spans [0,3) and [4,7).
	if len(occs) != 2 {
		t.Fatalf("got %d occurrences, want 2: %v\n%s", len(occs), occs, g)
	}
	if occs[0] != (occ{1, 0, 3}) || occs[1] != (occ{1, 4, 7}) {
		t.Errorf("occurrences = %v, want [{1 0 3} {1 4 7}]", occs)
	}
}

func TestVisitOccurrencesNested(t *testing.T) {
	// Build a sequence with nested structure: (xy xy z) repeated.
	var in []string
	for i := 0; i < 8; i++ {
		in = append(in, "x", "y", "x", "y", "z")
	}
	g, _ := Induce(in)
	expansionEquals(t, g, in)
	// Every reported occurrence must expand to the right tokens.
	g.VisitOccurrences(func(rule, start, end int) {
		want := g.ExpandRule(rule)
		if end-start != len(want) {
			t.Fatalf("R%d occurrence [%d,%d) length %d != expansion %d",
				rule, start, end, end-start, len(want))
		}
		for i := start; i < end; i++ {
			if in[i] != want[i-start] {
				t.Fatalf("R%d occurrence [%d,%d): token %d is %q, want %q",
					rule, start, end, i, in[i], want[i-start])
			}
		}
	})
}

func TestVisitOccurrencesCountsMatchUses(t *testing.T) {
	// Top-level occurrence counting: a rule referenced k times from bodies
	// that expand m times in total must appear exactly sum(m) times.
	rng := rand.New(rand.NewSource(3))
	in := make([]string, 400)
	alpha := []string{"p", "q", "r"}
	for i := range in {
		in[i] = alpha[rng.Intn(3)]
	}
	g, _ := Induce(in)
	counts := make(map[int]int)
	g.VisitOccurrences(func(rule, start, end int) {
		counts[rule]++
		if start < 0 || end > len(in) || start >= end {
			t.Fatalf("R%d occurrence [%d,%d) out of bounds", rule, start, end)
		}
	})
	for ri := 1; ri < g.NumRules(); ri++ {
		if counts[ri] < g.Rules[ri].Uses {
			t.Errorf("R%d visited %d times, but has %d direct uses",
				ri, counts[ri], g.Rules[ri].Uses)
		}
	}
}

func TestRuleStringAndString(t *testing.T) {
	in := []string{"aa", "bb", "cc", "xx", "aa", "bb", "cc"}
	g, _ := Induce(in)
	s0 := g.RuleString(0)
	if !strings.HasPrefix(s0, "R0 ->") || !strings.Contains(s0, "xx") {
		t.Errorf("RuleString(0) = %q", s0)
	}
	full := g.String()
	if !strings.Contains(full, "R0 ->") || !strings.Contains(full, "R1 ->") {
		t.Errorf("String() = %q", full)
	}
}

func TestCompressionOnStructuredInput(t *testing.T) {
	// Grammar size on a highly repetitive sequence must be logarithmic-ish,
	// definitely far below the input length (this is what makes anomalies,
	// which stay uncompressed, stand out).
	var in []string
	for i := 0; i < 256; i++ {
		in = append(in, "m")
		in = append(in, "n")
	}
	g, _ := Induce(in)
	total := 0
	for _, r := range g.Rules {
		total += len(r.RHS)
	}
	if total > len(in)/4 {
		t.Errorf("grammar size %d too large for input %d", total, len(in))
	}
}

func BenchmarkInduceRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	alpha := []string{"aa", "ab", "ba", "bb", "ca", "cb"}
	in := make([]string, 10000)
	for i := range in {
		in[i] = alpha[rng.Intn(len(alpha))]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Induce(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInducePeriodic(b *testing.B) {
	in := make([]string, 10000)
	for i := range in {
		in[i] = string(rune('a' + i%7))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Induce(in); err != nil {
			b.Fatal(err)
		}
	}
}
