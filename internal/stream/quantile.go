package stream

import "sort"

// p2Quantile is the P² (piecewise-parabolic) running quantile estimator of
// Jain & Chlamtac (1985): a constant-memory, constant-time-per-observation
// estimate of the q-quantile of everything observed so far, without storing
// the observations. The streaming detector's adaptive threshold feeds every
// finalized window score through one of these; determinism matters (equal
// streams give equal thresholds give equal events), and P² is exactly
// deterministic in its input sequence.
type p2Quantile struct {
	q     float64    // target quantile in (0, 1)
	n     int        // observations so far
	heads [5]float64 // first five observations (before the estimator starts)
	pos   [5]float64 // marker positions (1-based observation counts)
	want  [5]float64 // desired marker positions
	inc   [5]float64 // desired-position increments per observation
	h     [5]float64 // marker heights
}

func newP2Quantile(q float64) *p2Quantile {
	p := &p2Quantile{q: q}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Count returns the number of observations so far.
func (p *p2Quantile) Count() int { return p.n }

// Add feeds one observation.
func (p *p2Quantile) Add(x float64) {
	if p.n < 5 {
		p.heads[p.n] = x
		p.n++
		if p.n == 5 {
			s := p.heads[:]
			sort.Float64s(s)
			for i := 0; i < 5; i++ {
				p.h[i] = s[i]
				p.pos[i] = float64(i + 1)
			}
			p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
		}
		return
	}
	p.n++

	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		k = 3
		for i := 1; i < 4; i++ {
			if x < p.h[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.inc[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i < 4; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			nh := p.parabolic(i, s)
			if p.h[i-1] < nh && nh < p.h[i+1] {
				p.h[i] = nh
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height update for marker i moved
// by d (±1).
func (p *p2Quantile) parabolic(i int, d float64) float64 {
	return p.h[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height update when the parabola overshoots a
// neighboring marker.
func (p *p2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.h[i] + d*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. Before five observations it
// falls back to the empirical quantile of what has been seen (0 when
// nothing has).
func (p *p2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		s := make([]float64, p.n)
		copy(s, p.heads[:p.n])
		sort.Float64s(s)
		idx := int(p.q * float64(p.n))
		if idx >= p.n {
			idx = p.n - 1
		}
		return s[idx]
	}
	return p.h[2]
}
