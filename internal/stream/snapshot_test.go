package stream

import (
	"math/rand"
	"testing"
)

// TestSnapshotRestoreBitIdentical is the durability acceptance property at
// the detector level: cut a stream at an arbitrary point, serialize,
// restore into a fresh detector, push the remainder — the restored stream's
// events and final curve are bit-identical to a detector that never
// stopped. Exercised across random hops, ensemble sizes, rebase schedules
// and both threshold modes, with up to two chained snapshot cuts.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		period := 30 + rng.Intn(40)
		bufLen := period * (4 + rng.Intn(6))
		hop := 1 + rng.Intn(bufLen-period+1)
		cfg := Config{
			Window:       period,
			BufLen:       bufLen,
			Hop:          hop,
			RebaseEvery:  rng.Intn(4), // 0 = adaptive default
			EnsembleSize: 6 + rng.Intn(10),
			Seed:         rng.Int63(),
		}
		if trial%3 == 0 {
			cfg.AdaptiveQuantile = 0.05
		}
		series := sineSeries(bufLen*3+rng.Intn(bufLen), period, rng.Int63(),
			bufLen/2, bufLen+bufLen/3, 2*bufLen+period)

		// Reference: never interrupted.
		var refEvents []Event
		refCfg := cfg
		refCfg.OnEvent = func(ev Event) { refEvents = append(refEvents, ev) }
		ref, err := New(refCfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, x := range series {
			if err := ref.Push(x); err != nil {
				t.Fatal(err)
			}
		}
		if err := ref.Flush(); err != nil {
			t.Fatal(err)
		}

		// Subject: snapshot/restore at 1-2 random cuts.
		var gotEvents []Event
		subCfg := cfg
		subCfg.OnEvent = func(ev Event) { gotEvents = append(gotEvents, ev) }
		sub, err := New(subCfg)
		if err != nil {
			t.Fatal(err)
		}
		cuts := []int{rng.Intn(len(series) + 1)}
		if trial%2 == 0 {
			cuts = append(cuts, cuts[0]+rng.Intn(len(series)-cuts[0]+1))
		}
		next := 0
		for _, cut := range cuts {
			for ; next < cut; next++ {
				if err := sub.Push(series[next]); err != nil {
					t.Fatal(err)
				}
			}
			snap := sub.Snapshot()
			sub, err = Restore(subCfg, snap)
			if err != nil {
				t.Fatalf("trial %d: restore at %d: %v", trial, cut, err)
			}
			if sub.Total() != cut {
				t.Fatalf("trial %d: restored Total = %d, want %d", trial, sub.Total(), cut)
			}
		}
		for ; next < len(series); next++ {
			if err := sub.Push(series[next]); err != nil {
				t.Fatal(err)
			}
		}
		if err := sub.Flush(); err != nil {
			t.Fatal(err)
		}

		if len(gotEvents) != len(refEvents) {
			t.Fatalf("trial %d (cuts %v): %d events, reference %d",
				trial, cuts, len(gotEvents), len(refEvents))
		}
		for i := range refEvents {
			if gotEvents[i] != refEvents[i] {
				t.Fatalf("trial %d (cuts %v): event[%d] = %+v, reference %+v",
					trial, cuts, i, gotEvents[i], refEvents[i])
			}
		}
		refStart, refCurve := ref.Curve()
		gotStart, gotCurve := sub.Curve()
		if gotStart != refStart || len(gotCurve) != len(refCurve) {
			t.Fatalf("trial %d: curve shape (%d,%d), reference (%d,%d)",
				trial, gotStart, len(gotCurve), refStart, len(refCurve))
		}
		for i := range refCurve {
			if gotCurve[i] != refCurve[i] {
				t.Fatalf("trial %d: curve[%d] = %v, reference %v",
					trial, i, gotCurve[i], refCurve[i])
			}
		}
	}
}

// TestRestoreRejectsConfigMismatch: a snapshot only restores under the
// configuration it was taken with.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	cfg := Config{Window: 40, BufLen: 400, EnsembleSize: 8, Seed: 1}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range sineSeries(600, 40, 3) {
		if err := d.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	snap := d.Snapshot()

	if _, err := Restore(cfg, snap); err != nil {
		t.Fatalf("same config: %v", err)
	}
	for _, bad := range []Config{
		{Window: 50, BufLen: 400, EnsembleSize: 8, Seed: 1},
		{Window: 40, BufLen: 440, EnsembleSize: 8, Seed: 1},
		{Window: 40, BufLen: 400, EnsembleSize: 9, Seed: 1},
		{Window: 40, BufLen: 400, EnsembleSize: 8, Seed: 2},
		{Window: 40, BufLen: 400, EnsembleSize: 8, Seed: 1, AdaptiveQuantile: 0.05},
	} {
		if _, err := Restore(bad, snap); err == nil {
			t.Fatalf("config %+v: restore accepted a mismatched snapshot", bad)
		}
	}
}

// TestRestoreRejectsCorruption: truncations and bit flips are detected,
// not silently restored.
func TestRestoreRejectsCorruption(t *testing.T) {
	cfg := Config{Window: 30, BufLen: 300, EnsembleSize: 6, Seed: 5}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range sineSeries(500, 30, 9) {
		if err := d.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	snap := d.Snapshot()

	if _, err := Restore(cfg, nil); err == nil {
		t.Fatal("restore accepted an empty payload")
	}
	if _, err := Restore(cfg, snap[:len(snap)/2]); err == nil {
		t.Fatal("restore accepted a truncated payload")
	}
	if _, err := Restore(cfg, append(append([]byte(nil), snap...), 0xff)); err == nil {
		t.Fatal("restore accepted trailing garbage")
	}
	bad := append([]byte(nil), snap...)
	bad[3] ^= 0x40 // corrupt the magic
	if _, err := Restore(cfg, bad); err == nil {
		t.Fatal("restore accepted a corrupted magic")
	}
}
